// Package bulkpreload is a from-scratch Go reproduction of "Two Level
// Bulk Preload Branch Prediction" (Bonanno, Collura, Lipetz, Mayer,
// Prasky, Saporito — HPCA 2013), the hierarchical branch predictor of
// the IBM zEnterprise EC12.
//
// The library lives under internal/:
//
//   - internal/core — the two-level hierarchy itself: BTB1, BTBP, BTB2,
//     bulk preload, semi-exclusive content movement, PHT/CTB/FIT and the
//     surprise BHT;
//   - internal/tracker and internal/steering — the BTB2 search trackers
//     and the ordering-table search steering of Sections 3.6-3.7;
//   - internal/predictor — the Table 1 search-pipeline throughput rules
//     and the Table 2 speculative BTB1-miss detector;
//   - internal/engine — the cycle-approximate zEC12 core model the
//     experiments run on;
//   - internal/workload — synthetic commercial workloads matched to the
//     Table 4 branch footprints;
//   - internal/sim and internal/report — experiment orchestration and
//     rendering for every table and figure of the evaluation.
//
// The benchmarks in bench_test.go regenerate each table and figure; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results against the paper's numbers.
package bulkpreload
