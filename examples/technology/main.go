// Technology study: the paper's Section 6 argument, quantified. The
// two-level design supports more predictions per square millimetre than
// a single-level SRAM BTB of comparable capacity, and an eDRAM BTB2
// improves both density and energy because the second level is only
// powered while bulk searches run.
package main

import (
	"fmt"

	"bulkpreload/internal/area"
	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

func main() {
	prof, err := workload.ByName("zos-daytrader-dbserv", 600_000)
	if err != nil {
		panic(err)
	}

	type design struct {
		name string
		cfg  core.Config
		tech area.Technology
	}
	designs := []design{
		{"two-level, SRAM BTB2 (zEC12)", core.DefaultConfig(), area.SRAM},
		{"two-level, eDRAM BTB2 (sec. 6)", core.DefaultConfig(), area.EDRAM},
		{"one-level 24k SRAM BTB1", core.LargeOneLevelConfig(), area.SRAM},
	}

	base := engine.Run(workload.New(prof), core.OneLevelConfig(), engine.DefaultParams(), "base")

	fmt.Println("design point                     | gain    | mm^2   | preds/mm^2 | BTB energy")
	fmt.Println("---------------------------------+---------+--------+------------+-----------")
	for _, d := range designs {
		res := engine.Run(workload.New(prof), d.cfg, engine.DefaultParams(), d.name)
		ar := area.Analyze(d.cfg, d.tech)
		en := area.EstimateEnergy(d.cfg, area.AccessCounts{
			BTB1: res.BTB1, BTBP: res.BTBP, BTB2: res.BTB2,
		}, d.tech, res.Cycles, float64(res.Tracker.RowsRead))
		fmt.Printf("%-33s| %+5.2f%%  | %6.3f | %10.0f | %6.1f uJ\n",
			d.name, res.Improvement(base), ar.TotalMm2, ar.PredictionsPerMm2,
			en.TotalPJ()/1e6)
	}
	fmt.Println("\nThe eDRAM second level keeps the two-level design's performance")
	fmt.Println("while more than doubling predictions per mm^2 — the paper's")
	fmt.Println("proposed optimal design point (SRAM BTB1 + eDRAM BTB2).")
}
