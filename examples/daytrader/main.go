// DayTrader DBServ study: the paper's headline workload. Reproduces the
// Figure 2 bars (CPI improvement of the BTB2 and of the unrealistically
// large BTB1) and the Figure 4 bad-branch-outcome breakdown for this
// trace.
package main

import (
	"fmt"
	"os"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/report"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/workload"
)

func main() {
	profile, err := workload.ByName("zos-daytrader-dbserv", 1_500_000)
	if err != nil {
		panic(err)
	}
	src := workload.New(profile)
	c := sim.Compare(src, engine.DefaultParams())

	fmt.Println("DayTrader DBServ (z/OS), the paper's maximum-benefit trace")
	fmt.Printf("  CPI: no BTB2 %.4f | BTB2 %.4f | 24k BTB1 %.4f\n",
		c.Base.CPI(), c.BTB2.CPI(), c.LargeBTB1.CPI())
	fmt.Printf("  BTB2 improvement      %6.2f%%   (paper: 13.8%%)\n", c.BTB2Improvement())
	fmt.Printf("  24k BTB1 improvement  %6.2f%%   (paper: 20.2%%)\n", c.LargeImprovement())
	fmt.Printf("  BTB2 effectiveness    %6.1f%%   (paper: ~68%% on this trace)\n\n", c.Effectiveness())

	report.Figure4(os.Stdout, profile.Name, c.Base, c.BTB2)
	fmt.Println("\n(paper: 25.9% bad without BTB2, 21.9% capacity; 14.3% bad with, 8.1% capacity)")
}
