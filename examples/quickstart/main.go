// Quickstart: build the zEC12 two-level bulk preload branch predictor,
// run a capacity-bound workload through the core model with and without
// the BTB2, and print the paper's headline metric — percent CPI
// improvement.
package main

import (
	"fmt"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

func main() {
	// A workload whose branch working set (~20k branches) exceeds the
	// 4k-entry BTB1 — the regime the BTB2 was designed for.
	profile := workload.Profile{
		Name:                "quickstart",
		UniqueBranches:      20_000,
		TakenFraction:       0.65,
		Instructions:        400_000,
		HotFraction:         0.12,
		WindowFunctions:     64,
		CallsPerTransaction: 8,
		Seed:                1,
	}
	src := workload.New(profile)
	params := engine.DefaultParams()

	// Configuration 1: one-level predictor (4k BTB1 + 768 BTBP).
	base := engine.Run(src, core.OneLevelConfig(), params, "no-btb2")
	// Configuration 2: the same first level backed by the 24k BTB2 with
	// bulk preload, search trackers, and steering.
	twoLevel := engine.Run(src, core.DefaultConfig(), params, "btb2")

	fmt.Printf("workload:               %s (%d instructions)\n", profile.Name, base.Instructions)
	fmt.Printf("one-level CPI:          %.4f  (%.1f%% bad branch outcomes)\n",
		base.CPI(), 100*base.Outcomes.BadRate())
	fmt.Printf("two-level CPI:          %.4f  (%.1f%% bad branch outcomes)\n",
		twoLevel.CPI(), 100*twoLevel.Outcomes.BadRate())
	fmt.Printf("BTB2 CPI improvement:   %.2f%%\n", twoLevel.Improvement(base))
	fmt.Printf("bulk transfers:         %d entries preloaded over %d BTB2 row reads\n",
		twoLevel.Hier.TransferredHits, twoLevel.Hier.TransferReads)
}
