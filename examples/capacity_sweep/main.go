// Capacity sweep: the paper's motivating observation is that large
// commercial workloads are limited by predictor *capacity* rather than
// algorithm accuracy. This example sweeps the branch working-set size
// from well under the BTB1's 4k entries to several times beyond it and
// prints where the two-level design starts to pay.
package main

import (
	"fmt"
	"strings"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/workload"
)

func main() {
	fmt.Println("BTB2 benefit vs branch working-set size (BTB1 holds 4k branches)")
	fmt.Printf("%10s %12s %12s %10s\n", "branches", "CPI(1-level)", "CPI(2-level)", "gain")
	params := engine.DefaultParams()
	params.WarmupInstructions = 60_000
	for _, unique := range []int{2_000, 4_000, 8_000, 16_000, 32_000, 64_000} {
		p := workload.Profile{
			Name:                fmt.Sprintf("sweep-%d", unique),
			UniqueBranches:      unique,
			TakenFraction:       0.65,
			Instructions:        400_000,
			HotFraction:         0.12,
			WindowFunctions:     clamp(unique/300, 8, 128),
			CallsPerTransaction: 8,
			Seed:                int64(unique),
		}
		src := workload.New(p)
		base := engine.Run(src, core.OneLevelConfig(), params, "no-btb2")
		two := engine.Run(src, core.DefaultConfig(), params, "btb2")
		gain := two.Improvement(base)
		bar := ""
		if gain > 0 {
			bar = strings.Repeat("#", int(gain*4))
		}
		fmt.Printf("%10d %12.4f %12.4f %9.2f%% %s\n",
			unique, base.CPI(), two.CPI(), gain, bar)
	}
	fmt.Println("\nBelow ~4k branches the first level suffices; beyond it the")
	fmt.Println("second level recovers the capacity misses the paper targets.")
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
