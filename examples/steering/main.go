// Steering demo: shows the Section 3.7 ordering table at work. A
// synthetic control flow enters a 4 KB block in quartile 1, touches a few
// sectors, jumps to quartile 3, and leaves. On the next BTB2 bulk search
// of that block, the demand quartile's active sectors transfer first,
// then the referenced quartile's, then everything else — compared
// side-by-side with the sequential order used on an ordering-table miss.
package main

import (
	"fmt"

	"bulkpreload/internal/steering"
	"bulkpreload/internal/zaddr"
)

func main() {
	table := steering.NewDefault()
	block := zaddr.Addr(0x40000) // a 4 KB block

	// First visit: enter at sector 9 (quartile 1), execute sectors 9-11,
	// jump into quartile 3 (sectors 24-25), then leave the block.
	fmt.Println("visit 1: executing sectors 9,10,11 (quartile 1) then 24,25 (quartile 3)")
	for _, sector := range []int{9, 10, 11, 24, 25} {
		for off := 0; off < zaddr.SectorBytes; off += 32 {
			table.ObserveComplete(block + zaddr.Addr(sector*zaddr.SectorBytes+off))
		}
	}
	table.ObserveComplete(0x90000) // leaving the block flushes the visit

	// A BTB2 bulk search for a re-entry at sector 9:
	entry := block + 9*zaddr.SectorBytes
	steered := table.Order(entry)

	// The order a table miss would produce (pure sequential wrap).
	miss := steering.NewDefault()
	sequential := miss.Order(entry)

	fmt.Println("\nbulk-transfer sector order on re-entry at sector 9:")
	fmt.Printf("  steered:    %v\n", steered[:12])
	fmt.Printf("  sequential: %v\n", sequential[:12])
	fmt.Println("\nsteered order transfers the demand quartile's active sectors")
	fmt.Println("(9,10,11), then the referenced quartile's (24,25), before any")
	fmt.Println("cold sectors — so the branches about to execute arrive first.")

	st := table.Stats()
	fmt.Printf("\nordering table: %d lookups, %d hits, %d installs\n",
		st.Lookups, st.Hits, st.Installs)
}
