# Development entry points. Everything here is plain `go` — the
# Makefile only names the invocations so they are one word long.

GO ?= go

.PHONY: build test race check bench bench-gate bench-append loadtest clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full static gate: vet plus the repo's analyzer suite (determinism,
# hot-path allocations, metric/span wiring, shared-state discipline...).
check:
	$(GO) vet ./...
	$(GO) run ./cmd/zbpcheck ./...

# One benchmark-trajectory measurement, printed as JSON. Touches no files.
bench:
	$(GO) run ./cmd/zsim -perfstat run

# Compare a fresh median-of-3 measurement against the committed
# BENCH_parallel.json baseline (same-GOMAXPROCS entry); exits non-zero
# on a >15% throughput regression or any correctness failure.
bench-gate:
	$(GO) run ./cmd/zsim -perfstat gate -perfstat-runs 3

# Append a median-of-3 entry to BENCH_parallel.json — run once per PR
# and commit the result so the trajectory grows with the repo.
# Usage: make bench-append LABEL="PR 7"
bench-append:
	$(GO) run ./cmd/zsim -perfstat append -perfstat-runs 3 -perfstat-label "$(LABEL)"

# The zsimd fault-injecting load testbed: steady load, burst overload,
# deadline dead-lettering, a slow client, and kill -9 mid-job with the
# recovered result checked bit-identical against a serial
# checkpoint+resume oracle. Built with -race like the CI selftest job.
# Usage: make loadtest [SCENARIO=kill9]
loadtest:
	$(GO) build -race -o zsimd ./cmd/zsimd
	./zsimd -selftest -scenario "$(SCENARIO)"

clean:
	rm -f zsim experiments zbpcheck tracegen zsimd
