// Package packlayout defines the analyzer that proves every declared
// packed bit-layout in the tree at build time. PR 9 moved the
// predictor tables onto structure-of-arrays uint64 lanes whose
// correctness rests on hand-written shift/mask constants — exactly the
// geometry detail that is easy to get subtly wrong and that runtime
// tests only probe pointwise. This analyzer turns each format into a
// declarative contract:
//
//	//zbp:layout meta word:16 dir:0..1 usePHT:2 useCTB:3 length:4..11
//
// on the layout's constant block (or a function doc comment), and
//
//	//zbp:layout meta pack      // or unpack, or uses
//
// on each codec function. Per declaration it checks that fields fit
// the lane word and never overlap; per pack site that every field is
// written at its declared shift with a value provably no wider than
// the declared width (a narrowing store must be dominated by a mask);
// per unpack site that every field is read back with the matching
// shift and a mask/conversion no wider than the field — so pack and
// unpack are proven inverse up to the declared masking. Byte-granular
// formats (the ZBPT trace record, jobq's u32-length+CRC journal frame)
// declare unit:byte and are checked against slice/index extents.
//
// Bounds may reference package constants (a renamed or deleted
// constant fails the build — the fixture-drift guarantee) and at most
// one @ident symbolic term for runtime geometry (btb's tagShift),
// matched against selector field names at use sites. Declarations are
// exported as a package fact; a dependent package restates the layout
// as //zbp:layout pkg.name ... and the two are compared field by
// field, so core/fault/engine code touching btb's 72-bit fault payload
// cannot drift from btb's declaration.
//
// Intentional departures use //zbp:allow packlayout <reason>.
package packlayout

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "packlayout"

// Bound is one resolved field bound: Off units, plus an optional
// symbolic term (a runtime geometry quantity such as btb's tagShift)
// matched by selector field name at use sites.
type Bound struct {
	Sym string
	Off int64
}

func (b Bound) isConst() bool { return b.Sym == "" }

func (b Bound) String() string {
	if b.Sym == "" {
		return fmt.Sprintf("%d", b.Off)
	}
	if b.Off == 0 {
		return "@" + b.Sym
	}
	return fmt.Sprintf("@%s%+d", b.Sym, b.Off)
}

// Field is one resolved field of a layout: Count consecutive copies of
// a Lo..Hi extent (Count is 1 for scalar fields).
type Field struct {
	Name  string
	Count int64
	Lo    Bound
	Hi    Bound
}

// width returns the (element) width of the field when both bounds are
// constant.
func (f Field) width() (int64, bool) {
	if f.Lo.isConst() && f.Hi.isConst() {
		return f.Hi.Off - f.Lo.Off + 1, true
	}
	return 0, false
}

// extent returns the field's total constant extent [lo, hi] including
// array repetition.
func (f Field) extent() (lo, hi int64, ok bool) {
	w, ok := f.width()
	if !ok {
		return 0, 0, false
	}
	return f.Lo.Off, f.Lo.Off + f.Count*w - 1, true
}

// Spec is one resolved layout declaration.
type Spec struct {
	Word   int64
	Unit   string // "bit" or "byte"
	Fields []Field
}

// Layouts is the package fact carrying every layout a package
// declares, so dependent packages can restate and verify them.
type Layouts struct {
	Layouts map[string]Spec
}

func (*Layouts) AFact() {}

func (l *Layouts) String() string {
	names := make([]string, 0, len(l.Layouts))
	for n := range l.Layouts {
		names = append(names, n)
	}
	sort.Strings(names)
	return "layouts(" + strings.Join(names, ", ") + ")"
}

// Analyzer is the packlayout analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "prove declared packed bit-layouts: fields fit and never overlap, pack sites " +
		"write each field at its declared shift with a provably fitting value, unpack " +
		"sites read with the matching shift/mask, cross-package restatements agree",
	Run:       run,
	FactTypes: []analysis.Fact{(*Layouts)(nil)},
}

// decl is one declaration site being processed.
type decl struct {
	layout *directive.Layout
	spec   Spec
	ok     bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := directive.CollectAllows(pass, name)

	// Phase 1: resolve every declaration (const-block and function doc
	// comments alike) against the package scope.
	local := map[string]*decl{}   // unqualified name -> resolved spec
	imported := map[string]Spec{} // "pkg.name" restatements, resolved to the declaring package's spec
	var roleFns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok == token.CONST {
					for _, l := range directive.DocLayouts(d.Doc) {
						collectDecl(pass, allows, l, local, imported)
					}
				}
			case *ast.FuncDecl:
				hasRole := false
				for _, l := range directive.DocLayouts(d.Doc) {
					if len(l.Errs) == 0 && !l.Decl {
						hasRole = true
						continue
					}
					collectDecl(pass, allows, l, local, imported)
				}
				if hasRole {
					roleFns = append(roleFns, d)
				}
			}
		}
	}

	// Phase 2: export the package's own layouts so importers can
	// restate and verify them.
	if pass.ExportPackageFact != nil {
		fact := &Layouts{Layouts: map[string]Spec{}}
		for n, d := range local {
			if d.ok {
				fact.Layouts[n] = d.spec
			}
		}
		if len(fact.Layouts) > 0 {
			pass.ExportPackageFact(fact)
		}
	}

	// Phase 3: check every role-annotated function body against its
	// layout (local by name, restated or imported for "pkg.name").
	for _, fn := range roleFns {
		var binds []*binding
		for _, l := range directive.DocLayouts(fn.Doc) {
			if len(l.Errs) > 0 || l.Decl {
				continue
			}
			spec, ok := resolveSpec(pass, l.Name, local, imported)
			if !ok {
				allows.Report(pass, rangeAt(l.Pos),
					"//zbp:layout %s: no layout named %q is declared in this package or restatable from its imports", strings.Join(l.Roles, " "), l.Name)
				continue
			}
			b := &binding{name: l.Name, spec: spec}
			for _, r := range l.Roles {
				switch r {
				case "pack":
					b.pack = true
				case "unpack":
					b.unpack = true
				}
			}
			binds = append(binds, b)
		}
		if len(binds) > 0 && fn.Body != nil {
			checkFunc(pass, allows, fn, binds)
		}
	}

	allows.ReportUnused(pass)
	return nil, nil
}

// collectDecl resolves one declaration-form //zbp:layout and files it
// under the local or imported map. Malformed directives (Errs set) are
// staledirective's to report and are skipped here.
func collectDecl(pass *analysis.Pass, allows *directive.AllowSet, l *directive.Layout, local map[string]*decl, imported map[string]Spec) {
	if len(l.Errs) > 0 {
		return
	}
	if !l.Decl {
		// A bare role on a const block has no body to check.
		allows.Report(pass, rangeAt(l.Pos),
			"//zbp:layout %s %s: a pack/unpack role belongs on the codec function's doc comment, not a constant block", l.Name, strings.Join(l.Roles, " "))
		return
	}
	d := &decl{layout: l}
	ok := true
	word, err := resolveBound(pass, l.Word)
	if err != nil {
		allows.Report(pass, rangeAt(l.Pos), "layout %s: word width %q: %v", l.Name, l.Word, err)
		ok = false
	} else if !word.isConst() {
		allows.Report(pass, rangeAt(l.Pos), "layout %s: word width %q must resolve to a constant, not a @symbolic term", l.Name, l.Word)
		ok = false
	} else if word.Off < 1 {
		allows.Report(pass, rangeAt(l.Pos), "layout %s: word width %d is not positive", l.Name, word.Off)
		ok = false
	}
	d.spec = Spec{Word: word.Off, Unit: l.Unit}
	seen := map[string]bool{}
	for _, rf := range l.Fields {
		if seen[rf.Name] {
			continue // duplicate names are staledirective's diagnostic; keep the first
		}
		seen[rf.Name] = true
		lo, errLo := resolveBound(pass, rf.Lo)
		hi, errHi := resolveBound(pass, rf.Hi)
		if errLo != nil {
			allows.Report(pass, rangeAt(l.Pos), "layout %s field %s: %v", l.Name, rf.Name, errLo)
			ok = false
			continue
		}
		if errHi != nil {
			allows.Report(pass, rangeAt(l.Pos), "layout %s field %s: %v", l.Name, rf.Name, errHi)
			ok = false
			continue
		}
		d.spec.Fields = append(d.spec.Fields, Field{Name: rf.Name, Count: rf.Count, Lo: lo, Hi: hi})
	}
	d.ok = ok
	if pkg, base, qualified := strings.Cut(l.Name, "."); qualified {
		if !d.ok {
			return
		}
		if truth, usable := checkRestatement(pass, allows, l, pkg, base, d.spec); usable {
			// Role checks always run against the declaring package's
			// spec — a diverging restatement was reported above and must
			// not also skew the body checks.
			imported[l.Name] = truth
		}
		return
	}
	if prev, dup := local[l.Name]; dup {
		allows.Report(pass, rangeAt(l.Pos),
			"layout %s redeclared in package %s (first declaration at %s)", l.Name, pass.Pkg.Name(), pass.Fset.Position(prev.layout.Pos))
		return
	}
	if d.ok {
		d.ok = checkGeometry(pass, allows, l, d.spec)
	}
	local[l.Name] = d
}

// checkGeometry verifies a declaration's self-consistency: constant
// fields must fit the word and never overlap. Symbolic bounds are
// checked only against each other where the symbols coincide.
func checkGeometry(pass *analysis.Pass, allows *directive.AllowSet, l *directive.Layout, spec Spec) bool {
	unit := "bit"
	if spec.Unit == "byte" {
		unit = "byte"
	}
	ok := true
	type ext struct {
		name   string
		lo, hi int64
	}
	var exts []ext
	for _, f := range spec.Fields {
		if f.Lo.Sym == f.Hi.Sym && f.Hi.Off < f.Lo.Off {
			allows.Report(pass, rangeAt(l.Pos), "layout %s field %s: bounds %s..%s are inverted", l.Name, f.Name, f.Lo, f.Hi)
			ok = false
			continue
		}
		lo, hi, isConst := f.extent()
		if !isConst {
			continue
		}
		if lo < 0 {
			allows.Report(pass, rangeAt(l.Pos), "layout %s field %s starts at negative %s %d", l.Name, f.Name, unit, lo)
			ok = false
			continue
		}
		if hi > spec.Word-1 {
			allows.Report(pass, rangeAt(l.Pos),
				"layout %s field %s (%ss %d..%d) exceeds the %d-%s word", l.Name, f.Name, unit, lo, hi, spec.Word, unit)
			ok = false
			continue
		}
		exts = append(exts, ext{f.Name, lo, hi})
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].lo < exts[j].lo })
	for i := 1; i < len(exts); i++ {
		if exts[i].lo <= exts[i-1].hi {
			allows.Report(pass, rangeAt(l.Pos),
				"layout %s: fields %s (%ss %d..%d) and %s (%ss %d..%d) overlap",
				l.Name, exts[i-1].name, unit, exts[i-1].lo, exts[i-1].hi, exts[i].name, unit, exts[i].lo, exts[i].hi)
			ok = false
		}
	}
	return ok
}

// checkRestatement compares a "pkg.name" declaration against the
// imported package fact of the declaring package. It reports every
// divergence and, when the declaring side exists, returns its spec —
// the single source of truth for role checks in this package.
func checkRestatement(pass *analysis.Pass, allows *directive.AllowSet, l *directive.Layout, pkgElem, base string, spec Spec) (Spec, bool) {
	var from *Layouts
	for _, imp := range pass.Pkg.Imports() {
		if directive.PkgLastElem(imp.Path()) != pkgElem {
			continue
		}
		var fact Layouts
		if pass.ImportPackageFact != nil && pass.ImportPackageFact(imp, &fact) {
			from = &fact
		}
		break
	}
	if from == nil {
		allows.Report(pass, rangeAt(l.Pos),
			"layout %s restates a layout from package %q, but no imported package of that name exports layout facts", l.Name, pkgElem)
		return Spec{}, false
	}
	theirs, ok := from.Layouts[base]
	if !ok {
		allows.Report(pass, rangeAt(l.Pos),
			"layout %s: package %s declares no //zbp:layout named %q", l.Name, pkgElem, base)
		return Spec{}, false
	}
	clean := true
	if spec.Word != theirs.Word {
		allows.Report(pass, rangeAt(l.Pos),
			"layout %s declares word:%d here but %d at %s's declaration", l.Name, spec.Word, theirs.Word, pkgElem)
		clean = false
	}
	if spec.Unit != theirs.Unit {
		allows.Report(pass, rangeAt(l.Pos),
			"layout %s declares unit:%s here but unit:%s at %s's declaration", l.Name, spec.Unit, theirs.Unit, pkgElem)
		clean = false
	}
	byName := map[string]Field{}
	for _, f := range theirs.Fields {
		byName[f.Name] = f
	}
	seen := map[string]bool{}
	for _, f := range spec.Fields {
		seen[f.Name] = true
		tf, ok := byName[f.Name]
		if !ok {
			allows.Report(pass, rangeAt(l.Pos),
				"layout %s adds field %q, which %s's declaration does not have", l.Name, f.Name, pkgElem)
			clean = false
			continue
		}
		if f.Lo != tf.Lo || f.Hi != tf.Hi || f.Count != tf.Count {
			allows.Report(pass, rangeAt(l.Pos),
				"layout %s field %q is %s here but %s at %s's declaration",
				l.Name, f.Name, fieldStr(f), fieldStr(tf), pkgElem)
			clean = false
		}
	}
	for _, f := range theirs.Fields {
		if !seen[f.Name] {
			allows.Report(pass, rangeAt(l.Pos),
				"layout %s omits field %q (%s at %s's declaration)", l.Name, f.Name, fieldStr(f), pkgElem)
			clean = false
		}
	}
	// Divergence was reported precisely above; the declaring package's
	// spec remains the usable truth either way.
	_ = clean
	return theirs, true
}

func fieldStr(f Field) string {
	s := f.Lo.String()
	if f.Hi != f.Lo {
		s += ".." + f.Hi.String()
	}
	if f.Count > 1 {
		return fmt.Sprintf("[%d]x %s", f.Count, s)
	}
	return s
}

// resolveSpec resolves a role binding's layout name: a local
// declaration, a same-package restatement, or directly the declaring
// package's fact for an un-restated "pkg.name".
func resolveSpec(pass *analysis.Pass, n string, local map[string]*decl, imported map[string]Spec) (Spec, bool) {
	if d, ok := local[n]; ok && d.ok {
		return d.spec, true
	}
	if s, ok := imported[n]; ok {
		return s, true
	}
	pkgElem, base, qualified := strings.Cut(n, ".")
	if !qualified {
		return Spec{}, false
	}
	for _, imp := range pass.Pkg.Imports() {
		if directive.PkgLastElem(imp.Path()) != pkgElem {
			continue
		}
		var fact Layouts
		if pass.ImportPackageFact != nil && pass.ImportPackageFact(imp, &fact) {
			if s, ok := fact.Layouts[base]; ok {
				return s, true
			}
		}
		break
	}
	return Spec{}, false
}

// rangeAt adapts a bare position to the analysis.Range the allow-aware
// reporter wants.
type rangeAt token.Pos

func (r rangeAt) Pos() token.Pos { return token.Pos(r) }
func (r rangeAt) End() token.Pos { return token.Pos(r) }
