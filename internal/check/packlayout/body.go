package packlayout

// Intraprocedural bit-width and shift propagation for role-annotated
// pack/unpack bodies. The checker collects every packing write
// (|=, ^=, &^=, an = / := / return whose right side is an or/xor/shift
// tree) and every field read (x>>s with its dominating mask, x&mask,
// const-indexed byte slices) and verifies each against the bound
// layout: the shift must land on a declared field boundary and the
// value's provable width must not exceed the field.
//
// The propagation is deliberately three-valued. A shift amount is a
// known constant, a symbolic selector (+offset) like t.tagShift, a
// constant multiple like 4*k (nibble and lane-slot striding), or
// unknown; a value width is a known bit count, symbolic, or unknown.
// Unknown never produces a diagnostic — only provable mismatches do —
// and negative findings ("no field starts at bit N") fire only on
// bases that some other access has definitively tied to the layout,
// so reconstruction arithmetic on non-lane locals stays silent.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"math/bits"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

// ---------------------------------------------------------------------
// Bound resolution: "<int>|<const>|@<sym>" joined by + and -.

var symNameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// resolveBound evaluates one raw bound expression against the package
// scope: a sum of integer literals, package-level integer constants,
// and at most one additive @ident symbolic term.
func resolveBound(pass *analysis.Pass, expr string) (Bound, error) {
	if expr == "" {
		return Bound{}, fmt.Errorf("empty bound")
	}
	var b Bound
	sign := int64(1)
	for i := 0; i < len(expr); {
		switch expr[i] {
		case '+':
			sign = 1
			i++
			continue
		case '-':
			sign = -1
			i++
			continue
		}
		j := i
		for j < len(expr) && expr[j] != '+' && expr[j] != '-' {
			j++
		}
		term := expr[i:j]
		i = j
		switch {
		case term[0] == '@':
			name := term[1:]
			if !symNameRE.MatchString(name) {
				return Bound{}, fmt.Errorf("bound %q: invalid symbolic term %q", expr, term)
			}
			if sign < 0 {
				return Bound{}, fmt.Errorf("bound %q: a @symbolic term cannot be subtracted", expr)
			}
			if b.Sym != "" {
				return Bound{}, fmt.Errorf("bound %q: at most one @symbolic term is allowed", expr)
			}
			b.Sym = name
		case term[0] >= '0' && term[0] <= '9':
			v, err := strconv.ParseInt(term, 0, 64)
			if err != nil {
				return Bound{}, fmt.Errorf("bound %q: bad integer %q", expr, term)
			}
			b.Off += sign * v
		default:
			if !symNameRE.MatchString(term) {
				return Bound{}, fmt.Errorf("bound %q: bad term %q", expr, term)
			}
			cst, ok := pass.Pkg.Scope().Lookup(term).(*types.Const)
			if !ok {
				return Bound{}, fmt.Errorf("references constant %q, which does not exist in package %s — the layout directive has drifted from the code",
					term, pass.Pkg.Name())
			}
			v, ok := constant.Int64Val(constant.ToInt(cst.Val()))
			if !ok {
				return Bound{}, fmt.Errorf("constant %q is not an integer", term)
			}
			b.Off += sign * v
		}
		sign = 1
	}
	return b, nil
}

// ---------------------------------------------------------------------
// Shift and width lattices.

type sKind int

const (
	sUnknown sKind = iota
	sConst         // exactly c
	sSym           // sym + off, sym a selector field name (runtime geometry)
	sFactor        // an unknown multiple of c (array striding)
)

type shiftVal struct {
	kind sKind
	c    int64 // sConst value, sFactor stride
	sym  string
	off  int64
}

func (s shiftVal) String() string {
	switch s.kind {
	case sConst:
		return fmt.Sprintf("%d", s.c)
	case sSym:
		return Bound{Sym: s.sym, Off: s.off}.String()
	case sFactor:
		return fmt.Sprintf("k*%d", s.c)
	}
	return "?"
}

type wKind int

const (
	wUnknown wKind = iota
	wConst         // value provably fits in `bits` bits
	wSym           // fits in sym+bits bits
	wMasked        // dominated by an explicit prefix mask of runtime width
)

type widthVal struct {
	kind wKind
	bits int64
	sym  string
}

// minW combines two upper bounds under &: any sound bound of either
// side bounds the result. Prefer the symbolic one when kinds mix — it
// is the semantically intended mask in every idiom in the tree.
func minW(a, b widthVal) widthVal {
	switch {
	case a.kind == wUnknown:
		return b
	case b.kind == wUnknown:
		return a
	case a.kind == wConst && b.kind == wConst:
		if b.bits < a.bits {
			return b
		}
		return a
	case a.kind == wSym:
		return a
	}
	return b
}

// widthFromShift turns a shift amount into the width of the prefix
// mask (1<<shift)-1.
func widthFromShift(s shiftVal) widthVal {
	switch s.kind {
	case sConst:
		return widthVal{kind: wConst, bits: s.c}
	case sSym:
		return widthVal{kind: wSym, sym: s.sym, bits: s.off}
	}
	return widthVal{}
}

// ---------------------------------------------------------------------
// The per-function checker.

// binding ties one checked function to one resolved layout.
type binding struct {
	name         string
	spec         Spec
	pack, unpack bool
	written      map[string]bool
	read         map[string]bool
}

// access is one collected packing write, field read, or byte-extent
// access within the function body.
type access struct {
	pos, end token.Pos
	base     string
	write    bool
	clear    bool // &^ mask: containment checked, no coverage credit
	sh       shiftVal
	w        widthVal // value width (writes) or read cap (reads)
	capped   bool     // read: an explicit mask/conversion bounds it
	byteAcc  bool
	bLo, bHi int64
}

func (a *access) Pos() token.Pos { return a.pos }
func (a *access) End() token.Pos { return a.end }

type checker struct {
	pass     *analysis.Pass
	allows   *directive.AllowSet
	fn       *ast.FuncDecl
	binds    []*binding
	defs     map[types.Object]ast.Expr
	bad      map[types.Object]bool
	parents  map[ast.Node]ast.Node
	accesses []*access
}

func checkFunc(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, binds []*binding) {
	c := &checker{
		pass: pass, allows: allows, fn: fn, binds: binds,
		defs:    map[types.Object]ast.Expr{},
		bad:     map[types.Object]bool{},
		parents: map[ast.Node]ast.Node{},
	}
	for _, b := range binds {
		b.written = map[string]bool{}
		b.read = map[string]bool{}
	}
	c.collectDefs()
	c.collectParents()
	c.collectAccesses()
	c.evaluate()
	c.coverage()
}

// collectDefs records single-assignment locals (x := expr, never
// reassigned) so shift/width propagation can look through them.
func (c *checker) collectDefs() {
	disqualify := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			c.bad[obj] = true
		}
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			c.bad[obj] = true
		}
	}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
						if _, dup := c.defs[obj]; dup {
							c.bad[obj] = true
						} else {
							c.defs[obj] = n.Rhs[0]
						}
						return true
					}
				}
			}
			for _, lhs := range n.Lhs {
				disqualify(lhs)
			}
		case *ast.IncDecStmt:
			disqualify(n.X)
		case *ast.RangeStmt:
			disqualify(n.Key)
			disqualify(n.Value)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				disqualify(n.X) // address taken: anything may write it
			}
		}
		return true
	})
}

func (c *checker) collectParents() {
	var stack []ast.Node
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			c.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// defOf resolves an identifier to its single-assignment definition.
func (c *checker) defOf(id *ast.Ident) (ast.Expr, types.Object) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || c.bad[obj] {
		return nil, nil
	}
	return c.defs[obj], obj
}

func (c *checker) intConst(e ast.Expr) (int64, bool) {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// ---------------------------------------------------------------------
// Access collection.

func (c *checker) collectAccesses() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isPackRHS(r) {
					c.addTerms("<packed return>", r, nil)
				}
			}
		case *ast.BinaryExpr:
			c.maybeRead(n)
		case *ast.IndexExpr:
			c.maybeByteIndex(n)
		case *ast.SliceExpr:
			c.maybeByteSlice(n)
		}
		return true
	})
}

// isPackRHS reports whether an assigned value is an or/xor/shift tree
// worth decomposing into packing terms.
func isPackRHS(e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.OR, token.XOR, token.SHL, token.AND_NOT:
		return true
	}
	return false
}

func (c *checker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		base := render(c.pass.Fset, n.Lhs[i])
		switch n.Tok {
		case token.OR_ASSIGN, token.XOR_ASSIGN:
			c.addTerms(base, rhs, nil)
		case token.AND_NOT_ASSIGN:
			c.addClear(base, rhs)
		case token.ASSIGN, token.DEFINE:
			if isPackRHS(rhs) {
				c.addTerms(base, rhs, nil)
			}
		}
	}
}

// addTerms decomposes a packing expression into or-terms and records a
// write access per term.
func (c *checker) addTerms(base string, e ast.Expr, seen map[types.Object]bool) {
	e = ast.Unparen(e)
	if v, ok := c.intConst(e); ok {
		if v <= 0 {
			return // zero contributes no field; negative is not a pack
		}
		tz := int64(bits.TrailingZeros64(uint64(v)))
		c.accesses = append(c.accesses, &access{
			pos: e.Pos(), end: e.End(), base: base, write: true,
			sh: shiftVal{kind: sConst, c: tz},
			w:  widthVal{kind: wConst, bits: int64(bits.Len64(uint64(v))) - tz},
		})
		return
	}
	if bin, ok := e.(*ast.BinaryExpr); ok {
		switch bin.Op {
		case token.OR, token.XOR:
			c.addTerms(base, bin.X, seen)
			c.addTerms(base, bin.Y, seen)
			return
		case token.SHL:
			c.accesses = append(c.accesses, &access{
				pos: e.Pos(), end: e.End(), base: base, write: true,
				sh: c.shiftOf(bin.Y, nil),
				w:  c.widthOf(bin.X, nil),
			})
			return
		case token.AND_NOT:
			// old &^ mask: the kept remainder of a read-modify-write.
			c.addClear(base, bin.Y)
			return
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if def, obj := c.defOf(id); def != nil && !seen[obj] {
			if seen == nil {
				seen = map[types.Object]bool{}
			}
			seen[obj] = true
			c.addTerms(base, def, seen)
			return
		}
	}
	c.accesses = append(c.accesses, &access{
		pos: e.Pos(), end: e.End(), base: base, write: true,
		sh: shiftVal{kind: sConst},
		w:  c.widthOf(e, nil),
	})
}

// addClear records a &^-style clear of the masked extent.
func (c *checker) addClear(base string, mask ast.Expr) {
	lo, w, ok := c.maskExtent(mask, nil)
	if !ok {
		return
	}
	c.accesses = append(c.accesses, &access{
		pos: mask.Pos(), end: mask.End(), base: base,
		write: true, clear: true, sh: lo, w: w,
	})
}

// maskExtent decomposes a mask expression into (low bit, width):
// constants, prefix masks (1<<e)-1, shifted masks m<<s, and
// single-assignment locals thereof.
func (c *checker) maskExtent(e ast.Expr, seen map[types.Object]bool) (shiftVal, widthVal, bool) {
	e = ast.Unparen(e)
	if v, ok := c.intConst(e); ok {
		if v <= 0 {
			return shiftVal{}, widthVal{}, false
		}
		tz := int64(bits.TrailingZeros64(uint64(v)))
		return shiftVal{kind: sConst, c: tz},
			widthVal{kind: wConst, bits: int64(bits.Len64(uint64(v))) - tz}, true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.SHL:
			lo, w, ok := c.maskExtent(e.X, seen)
			if !ok {
				return shiftVal{}, widthVal{}, false
			}
			sh := c.shiftOf(e.Y, nil)
			if sh.kind == sUnknown {
				return shiftVal{}, widthVal{}, false
			}
			if lo.kind != sConst || lo.c != 0 {
				// Shifting an already-offset mask: give up rather than
				// mis-add heterogeneous shift kinds.
				if lo.kind == sConst && sh.kind == sConst {
					return shiftVal{kind: sConst, c: lo.c + sh.c}, w, true
				}
				return shiftVal{}, widthVal{}, false
			}
			return sh, w, true
		case token.SUB:
			// (1 << e) - 1: the prefix mask idiom.
			if v, ok := c.intConst(e.Y); ok && v == 1 {
				if shl, ok := ast.Unparen(e.X).(*ast.BinaryExpr); ok && shl.Op == token.SHL {
					if one, ok := c.intConst(shl.X); ok && one == 1 {
						w := widthFromShift(c.shiftOf(shl.Y, nil))
						if w.kind == wUnknown {
							return shiftVal{}, widthVal{}, false
						}
						return shiftVal{kind: sConst, c: 0}, w, true
					}
				}
			}
		}
	case *ast.CallExpr:
		if t, inner := c.conversion(e); t != nil {
			_ = t
			return c.maskExtent(inner, seen)
		}
	case *ast.Ident:
		if def, obj := c.defOf(e); def != nil && !seen[obj] {
			if seen == nil {
				seen = map[types.Object]bool{}
			}
			seen[obj] = true
			return c.maskExtent(def, seen)
		}
	}
	return shiftVal{}, widthVal{}, false
}

// isPrefixMask recognizes the (1<<e)-1 shape (directly or through a
// single-assignment local) without needing its width to resolve.
func (c *checker) isPrefixMask(e ast.Expr, seen map[types.Object]bool) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.SUB {
			return false
		}
		if v, ok := c.intConst(e.Y); !ok || v != 1 {
			return false
		}
		shl, ok := ast.Unparen(e.X).(*ast.BinaryExpr)
		if !ok || shl.Op != token.SHL {
			return false
		}
		one, ok := c.intConst(shl.X)
		return ok && one == 1
	case *ast.CallExpr:
		if t, inner := c.conversion(e); t != nil {
			return c.isPrefixMask(inner, seen)
		}
	case *ast.Ident:
		if def, obj := c.defOf(e); def != nil && !seen[obj] {
			if seen == nil {
				seen = map[types.Object]bool{}
			}
			seen[obj] = true
			return c.isPrefixMask(def, seen)
		}
	}
	return false
}

// maybeRead collects x>>s and x&mask reads on simple unsigned bases.
func (c *checker) maybeRead(bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.SHR:
		baseE := ast.Unparen(bin.X)
		if !c.simpleUnsignedBase(baseE) {
			return
		}
		sh := c.shiftOf(bin.Y, nil)
		cap, capped := c.readCap(bin)
		c.accesses = append(c.accesses, &access{
			pos: bin.Pos(), end: bin.End(), base: render(c.pass.Fset, baseE),
			sh: sh, w: cap, capped: capped,
		})
	case token.AND:
		var baseE, maskE ast.Expr
		x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
		if c.simpleUnsignedBase(x) {
			baseE, maskE = x, y
		} else if c.simpleUnsignedBase(y) {
			baseE, maskE = y, x
		} else {
			return
		}
		lo, w, ok := c.maskExtent(maskE, nil)
		if !ok {
			return
		}
		c.accesses = append(c.accesses, &access{
			pos: bin.Pos(), end: bin.End(), base: render(c.pass.Fset, baseE),
			sh: lo, w: w, capped: true,
		})
	}
}

// readCap climbs the parent chain of a shift-read looking for the
// dominating mask or narrowing conversion that bounds the bits
// actually consumed.
func (c *checker) readCap(n ast.Node) (widthVal, bool) {
	best := widthVal{}
	capped := false
	for {
		p := c.parents[n]
		switch p := p.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.BinaryExpr:
			if p.Op == token.AND {
				other := p.Y
				if ast.Node(other) == n || other.Pos() == n.(ast.Expr).Pos() {
					other = p.X
				}
				if lo, w, ok := c.maskExtent(other, nil); ok && lo.kind == sConst && lo.c == 0 {
					best = minW(best, w)
					capped = true
					n = p
					continue
				}
			}
		case *ast.CallExpr:
			if t, _ := c.conversion(p); t != nil {
				if tw, ok := unsignedWidth(t); ok {
					best = minW(best, widthVal{kind: wConst, bits: tw})
					capped = true
					n = p
					continue
				}
			}
		}
		return best, capped
	}
}

// maybeByteIndex collects const-indexed single-byte accesses on byte
// slices/arrays.
func (c *checker) maybeByteIndex(idx *ast.IndexExpr) {
	baseE := ast.Unparen(idx.X)
	if !c.simpleBase(baseE) || !isByteSeq(c.pass.TypesInfo.TypeOf(idx.X)) {
		return
	}
	v, ok := c.intConst(idx.Index)
	if !ok || v < 0 {
		return
	}
	write := false
	if asg, ok := c.parents[idx].(*ast.AssignStmt); ok {
		for _, lhs := range asg.Lhs {
			if lhs == ast.Expr(idx) {
				write = true
			}
		}
	}
	c.accesses = append(c.accesses, &access{
		pos: idx.Pos(), end: idx.End(), base: render(c.pass.Fset, baseE),
		write: write, byteAcc: true, bLo: v, bHi: v,
	})
}

// putSizes maps the binary.ByteOrder codec names to their fixed widths.
var putSizes = map[string]int64{
	"PutUint16": 2, "PutUint32": 4, "PutUint64": 8,
	"Uint16": 2, "Uint32": 4, "Uint64": 8,
}

// maybeByteSlice collects const-bounded subslices of byte slices — the
// byte-granular twin of a shift/mask access.
func (c *checker) maybeByteSlice(sl *ast.SliceExpr) {
	baseE := ast.Unparen(sl.X)
	if !c.simpleBase(baseE) || !isByteSeq(c.pass.TypesInfo.TypeOf(sl.X)) {
		return
	}
	lo := int64(0)
	if sl.Low != nil {
		v, ok := c.intConst(sl.Low)
		if !ok {
			return
		}
		lo = v
	}
	if sl.High == nil {
		return // open extent: not a field access
	}
	hi, ok := c.intConst(sl.High)
	if !ok || hi <= lo {
		return
	}
	write := false
	if call, ok := c.parents[sl].(*ast.CallExpr); ok && len(call.Args) > 0 && call.Args[0] == ast.Expr(sl) {
		name := calleeName(call)
		if strings.HasPrefix(name, "Put") || name == "copy" {
			write = true
		}
		if want, known := putSizes[name]; known && hi-lo != want {
			c.allows.Report(c.pass, &access{pos: sl.Pos(), end: sl.End()},
				"%s wants exactly %d bytes but the slice spans bytes %d..%d (%d bytes)",
				name, want, lo, hi-1, hi-lo)
		}
	}
	c.accesses = append(c.accesses, &access{
		pos: sl.Pos(), end: sl.End(), base: render(c.pass.Fset, baseE),
		write: write, byteAcc: true, bLo: lo, bHi: hi - 1,
	})
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// ---------------------------------------------------------------------
// Shift and width propagation.

func (c *checker) shiftOf(e ast.Expr, seen map[types.Object]bool) shiftVal {
	e = ast.Unparen(e)
	if v, ok := c.intConst(e); ok {
		if v < 0 {
			return shiftVal{}
		}
		return shiftVal{kind: sConst, c: v}
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return shiftVal{kind: sSym, sym: e.Sel.Name}
	case *ast.Ident:
		if def, obj := c.defOf(e); def != nil && !seen[obj] {
			if seen == nil {
				seen = map[types.Object]bool{}
			}
			seen[obj] = true
			return c.shiftOf(def, seen)
		}
	case *ast.CallExpr:
		if t, inner := c.conversion(e); t != nil {
			return c.shiftOf(inner, seen)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD:
			if v, ok := c.intConst(e.Y); ok {
				return shiftPlus(c.shiftOf(e.X, seen), v)
			}
			if v, ok := c.intConst(e.X); ok {
				return shiftPlus(c.shiftOf(e.Y, seen), v)
			}
		case token.SUB:
			if v, ok := c.intConst(e.Y); ok {
				return shiftPlus(c.shiftOf(e.X, seen), -v)
			}
		case token.MUL:
			if v, ok := c.intConst(e.Y); ok && v > 0 {
				return shiftTimes(c.shiftOf(e.X, seen), v)
			}
			if v, ok := c.intConst(e.X); ok && v > 0 {
				return shiftTimes(c.shiftOf(e.Y, seen), v)
			}
		}
	}
	return shiftVal{}
}

func shiftPlus(s shiftVal, v int64) shiftVal {
	switch s.kind {
	case sConst:
		if s.c+v >= 0 {
			return shiftVal{kind: sConst, c: s.c + v}
		}
	case sSym:
		return shiftVal{kind: sSym, sym: s.sym, off: s.off + v}
	case sFactor:
		if v == 0 {
			return s
		}
		if v > 0 {
			return shiftVal{kind: sFactor, c: gcd(s.c, v)}
		}
	}
	return shiftVal{}
}

func shiftTimes(s shiftVal, v int64) shiftVal {
	switch s.kind {
	case sFactor:
		return shiftVal{kind: sFactor, c: s.c * v}
	case sUnknown, sSym:
		// v times anything — even a symbolic quantity — is a multiple
		// of v, which is all array-element matching needs.
		return shiftVal{kind: sFactor, c: v}
	}
	return shiftVal{} // const handled by intConst on the whole expr
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// conversion recognizes a type-conversion call T(x), returning the
// target type and operand.
func (c *checker) conversion(call *ast.CallExpr) (types.Type, ast.Expr) {
	if len(call.Args) != 1 {
		return nil, nil
	}
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return tv.Type, call.Args[0]
	}
	return nil, nil
}

func (c *checker) widthOf(e ast.Expr, seen map[types.Object]bool) widthVal {
	e = ast.Unparen(e)
	if v, ok := c.intConst(e); ok {
		if v < 0 {
			return widthVal{}
		}
		return widthVal{kind: wConst, bits: int64(bits.Len64(uint64(v)))}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AND:
			for _, side := range []ast.Expr{e.X, e.Y} {
				if c.isPrefixMask(side, nil) {
					if _, _, ok := c.maskExtent(side, nil); !ok {
						// The bulk-move idiom: word & (1<<(4*pos) - 1).
						// The mask's width is runtime-computed, but its
						// presence is the explicit bounding the layout
						// contract asks for.
						return widthVal{kind: wMasked}
					}
				}
			}
			return minW(c.widthOf(e.X, seen), c.widthOf(e.Y, seen))
		case token.AND_NOT:
			return c.widthOf(e.X, seen)
		case token.OR, token.XOR:
			wx, wy := c.widthOf(e.X, seen), c.widthOf(e.Y, seen)
			if wx.kind == wConst && wy.kind == wConst {
				if wy.bits > wx.bits {
					return wy
				}
				return wx
			}
			if wx.kind == wSym && wy.kind == wSym && wx.sym == wy.sym {
				if wy.bits > wx.bits {
					return wy
				}
				return wx
			}
			return widthVal{}
		case token.SHR:
			wx := c.widthOf(e.X, seen)
			s := c.shiftOf(e.Y, nil)
			if s.kind != sConst {
				return widthVal{}
			}
			switch wx.kind {
			case wConst:
				if wx.bits > s.c {
					return widthVal{kind: wConst, bits: wx.bits - s.c}
				}
				return widthVal{kind: wConst, bits: 0}
			case wSym:
				return widthVal{kind: wSym, sym: wx.sym, bits: wx.bits - s.c}
			}
			return widthVal{}
		case token.SHL:
			wx := c.widthOf(e.X, seen)
			s := c.shiftOf(e.Y, nil)
			if wx.kind == wConst && s.kind == sConst {
				if wx.bits == 0 {
					return wx
				}
				return widthVal{kind: wConst, bits: wx.bits + s.c}
			}
			return widthVal{}
		case token.REM:
			if v, ok := c.intConst(e.Y); ok && v > 0 {
				return widthVal{kind: wConst, bits: int64(bits.Len64(uint64(v - 1)))}
			}
			return widthVal{}
		case token.ADD:
			wx, wy := c.widthOf(e.X, seen), c.widthOf(e.Y, seen)
			if wx.kind == wConst && wy.kind == wConst {
				m := wx.bits
				if wy.bits > m {
					m = wy.bits
				}
				return widthVal{kind: wConst, bits: m + 1}
			}
			return widthVal{}
		case token.SUB:
			// (1<<e)-1 prefix mask.
			if _, w, ok := c.maskExtent(e, nil); ok {
				return w
			}
			return widthVal{}
		}
		return widthVal{}
	case *ast.CallExpr:
		if t, inner := c.conversion(e); t != nil {
			tw, unsigned := unsignedWidth(t)
			if !unsigned {
				return widthVal{}
			}
			w := c.widthOf(inner, seen)
			if w.kind == wUnknown {
				// A widening conversion of an unproven value proves
				// nothing (uint64(w) is not evidence w fits anywhere),
				// and claiming the target width would flag every such
				// store. Narrowing conversions genuinely truncate, but
				// the tree always masks explicitly; stay unknown.
				return widthVal{}
			}
			return minW(widthVal{kind: wConst, bits: tw}, w)
		}
		return widthVal{}
	case *ast.Ident:
		if def, obj := c.defOf(e); def != nil && !seen[obj] {
			if seen == nil {
				seen = map[types.Object]bool{}
			}
			seen[obj] = true
			if w := c.widthOf(def, seen); w.kind != wUnknown {
				return w
			}
		}
		return typeWidth(c.pass.TypesInfo.TypeOf(e))
	case *ast.SelectorExpr, *ast.IndexExpr:
		return typeWidth(c.pass.TypesInfo.TypeOf(e))
	}
	return widthVal{}
}

// typeWidth gives the width bound an expression's unsigned type
// implies; signed types imply nothing (their bit patterns can carry
// sign extensions wider than any field).
func typeWidth(t types.Type) widthVal {
	if tw, ok := unsignedWidth(t); ok {
		return widthVal{kind: wConst, bits: tw}
	}
	return widthVal{}
}

func unsignedWidth(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0, false
	}
	switch b.Kind() {
	case types.Uint8:
		return 8, true
	case types.Uint16:
		return 16, true
	case types.Uint32:
		return 32, true
	case types.Uint64, types.Uint, types.Uintptr:
		return 64, true
	}
	return 0, false
}

func isByteSeq(t types.Type) bool {
	var elem types.Type
	switch t := t.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	case *types.Pointer:
		if arr, ok := t.Elem().Underlying().(*types.Array); ok {
			elem = arr.Elem()
		}
	}
	if elem == nil {
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// simpleBase admits identifier / selector / index chains — the lane
// words and locals the formats live in.
func (c *checker) simpleBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return c.simpleBase(ast.Unparen(e.X))
	case *ast.IndexExpr:
		return c.simpleBase(ast.Unparen(e.X))
	}
	return false
}

func (c *checker) simpleUnsignedBase(e ast.Expr) bool {
	if !c.simpleBase(e) {
		return false
	}
	_, ok := unsignedWidth(c.pass.TypesInfo.TypeOf(e))
	return ok
}

func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	return buf.String()
}

// ---------------------------------------------------------------------
// Evaluation: match accesses against bindings, report, track coverage.

// fieldWidth returns the (element) width bound a field declares.
func fieldWidth(f Field) widthVal {
	if f.Lo.Sym == f.Hi.Sym {
		return widthVal{kind: wConst, bits: f.Hi.Off - f.Lo.Off + 1}
	}
	if f.Lo.isConst() && f.Hi.Sym != "" {
		return widthVal{kind: wSym, sym: f.Hi.Sym, bits: f.Hi.Off - f.Lo.Off + 1}
	}
	return widthVal{}
}

// verdict is one access judged against one binding.
type verdict struct {
	matched bool
	field   string
	msg     string // non-empty: a provable violation (matched or not)
}

func (c *checker) evaluate() {
	anchored := map[string]bool{}
	for _, a := range c.accesses {
		if !a.byteAcc && a.sh.kind == sUnknown {
			continue
		}
		for _, b := range c.binds {
			if c.anchors(b, a) {
				anchored[a.base] = true
			}
		}
	}
	for _, a := range c.accesses {
		if !a.byteAcc && a.sh.kind == sUnknown {
			continue
		}
		var verdicts []verdict
		for _, b := range c.binds {
			if a.byteAcc != (b.spec.Unit == "byte") {
				continue
			}
			v := c.judge(b, a)
			verdicts = append(verdicts, v)
			if v.matched {
				if a.write && !a.clear {
					b.written[v.field] = true
				}
				if !a.write {
					b.read[v.field] = true
				}
			}
		}
		if len(verdicts) == 0 {
			continue
		}
		ok := false
		for _, v := range verdicts {
			if v.matched && v.msg == "" {
				ok = true
			}
		}
		if ok || !anchored[a.base] {
			continue
		}
		// Faulty against every compatible binding: report, preferring a
		// matched-field violation over a no-such-field message.
		msg := verdicts[0].msg
		for _, v := range verdicts {
			if v.matched {
				msg = v.msg
			}
		}
		c.allows.Report(c.pass, a, "%s", msg)
	}
}

// anchors reports whether the access definitively ties its base to the
// binding's layout: a nonzero constant, symbolic, or strided shift
// landing on a field start, an exact extent match, or an exact byte
// extent.
func (c *checker) anchors(b *binding, a *access) bool {
	if a.byteAcc != (b.spec.Unit == "byte") {
		return false
	}
	if a.byteAcc {
		for _, f := range b.spec.Fields {
			if lo, hi, ok := f.extent(); ok && a.bLo == lo && a.bHi == hi {
				return true
			}
		}
		return false
	}
	f, matched := matchField(b.spec, a.sh)
	if !matched {
		return false
	}
	switch a.sh.kind {
	case sSym, sFactor:
		return true
	case sConst:
		if a.sh.c != 0 {
			return true
		}
		fw := fieldWidth(*f)
		return a.w.kind == wConst && fw.kind == wConst && a.w.bits == fw.bits
	}
	return false
}

// matchField finds the field a shift amount lands on.
func matchField(spec Spec, sh shiftVal) (*Field, bool) {
	for i := range spec.Fields {
		f := &spec.Fields[i]
		switch sh.kind {
		case sConst:
			if !f.Lo.isConst() {
				continue
			}
			if f.Count == 1 {
				if sh.c == f.Lo.Off {
					return f, true
				}
				continue
			}
			lo, hi, ok := f.extent()
			if !ok {
				continue
			}
			w, _ := f.width()
			if sh.c >= lo && sh.c <= hi && (sh.c-lo)%w == 0 {
				return f, true
			}
		case sSym:
			if f.Lo.Sym == sh.sym && f.Lo.Off == sh.off {
				return f, true
			}
		case sFactor:
			if f.Count > 1 && f.Lo.isConst() && f.Lo.Off == 0 {
				if w, ok := f.width(); ok && sh.c%w == 0 {
					return f, true
				}
			}
		}
	}
	return nil, false
}

// judge evaluates one access against one binding.
func (c *checker) judge(b *binding, a *access) verdict {
	if a.byteAcc {
		return c.judgeByte(b, a)
	}
	f, matched := matchField(b.spec, a.sh)
	if !matched {
		return verdict{msg: c.noFieldMsg(b, a)}
	}
	v := verdict{matched: true, field: f.Name}
	fw := fieldWidth(*f)
	w := a.w
	if !a.write && !a.capped && w.kind == wUnknown && a.sh.kind == sConst {
		// An unmasked read runs to the top of the word.
		w = widthVal{kind: wConst, bits: b.spec.Word - a.sh.c}
	}
	over := false
	switch {
	case w.kind == wConst && fw.kind == wConst:
		over = w.bits > fw.bits
	case w.kind == wSym && fw.kind == wSym && w.sym == fw.sym:
		over = w.bits > fw.bits
	}
	if !over {
		return v
	}
	if !a.write {
		// Reading past the field is harmless when nothing sits above it:
		// the top field of the word, or a bulk shift over a whole array.
		if f.Count > 1 || (f.Hi.isConst() && f.Hi.Off+1 == b.spec.Word) {
			return v
		}
		v.msg = fmt.Sprintf(
			"unpacks %s bits starting at bit %s, wider than the %s-bit field %q of layout %s; mask the read so neighboring fields cannot leak in",
			widthStr(w), a.sh, widthStr(fw), f.Name, b.name)
		return v
	}
	if a.clear {
		v.msg = fmt.Sprintf(
			"clear mask %s bits wide crosses out of the %s-bit field %q of layout %s",
			widthStr(w), widthStr(fw), f.Name, b.name)
		return v
	}
	v.msg = fmt.Sprintf(
		"packs a value up to %s bits wide into the %s-bit field %q of layout %s; mask the value so the store provably fits",
		widthStr(w), widthStr(fw), f.Name, b.name)
	return v
}

func widthStr(w widthVal) string {
	switch w.kind {
	case wConst:
		return fmt.Sprintf("%d", w.bits)
	case wSym:
		return Bound{Sym: w.sym, Off: w.bits}.String()
	}
	return "?"
}

// noFieldMsg phrases an unmatched shift, pointing at the nearest field
// when the bit provably lands inside one.
func (c *checker) noFieldMsg(b *binding, a *access) string {
	if a.sh.kind == sConst {
		for _, f := range b.spec.Fields {
			lo, hi, ok := f.extent()
			if !ok || a.sh.c <= lo || a.sh.c > hi {
				continue
			}
			return fmt.Sprintf(
				"bit %d lands inside field %q (bits %d..%d) of layout %s but not on a field boundary — shift off by %d?",
				a.sh.c, f.Name, lo, hi, b.name, a.sh.c-lo)
		}
	}
	return fmt.Sprintf("no field of layout %s starts at bit %s", b.name, a.sh)
}

func (c *checker) judgeByte(b *binding, a *access) verdict {
	for i := range b.spec.Fields {
		f := &b.spec.Fields[i]
		lo, hi, ok := f.extent()
		if !ok {
			continue
		}
		if a.bLo == lo && a.bHi == hi {
			return verdict{matched: true, field: f.Name}
		}
		if a.bHi >= lo && a.bLo <= hi {
			return verdict{matched: true, field: f.Name, msg: fmt.Sprintf(
				"bytes %d..%d overlap field %q (bytes %d..%d) of layout %s without covering it exactly",
				a.bLo, a.bHi, f.Name, lo, hi, b.name)}
		}
	}
	return verdict{msg: fmt.Sprintf("no field of layout %s occupies bytes %d..%d", b.name, a.bLo, a.bHi)}
}

// coverage demands that pack roles write and unpack roles read every
// declared field — the drift half of the pack/unpack inverse proof.
func (c *checker) coverage() {
	for _, b := range c.binds {
		for _, f := range b.spec.Fields {
			if b.pack && !b.written[f.Name] {
				c.allows.Report(c.pass, c.fn.Name,
					"pack site %s never writes field %q of layout %s; pack and unpack have drifted apart",
					c.fn.Name.Name, f.Name, b.name)
			}
			if b.unpack && !b.read[f.Name] {
				c.allows.Report(c.pass, c.fn.Name,
					"unpack site %s never reads field %q of layout %s; pack and unpack have drifted apart",
					c.fn.Name.Name, f.Name, b.name)
			}
		}
	}
}
