package packlayout_test

import (
	"testing"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/facts"
	"bulkpreload/internal/check/load"
	"bulkpreload/internal/check/packlayout"
)

func TestPackLayout(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), packlayout.Analyzer, "packfmt")
}

// TestPackLayoutCrossPackage proves the fact path: client restates
// wire's frame layout and binds codec roles to it; the layout is known
// only through the exported package fact.
func TestPackLayoutCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), packlayout.Analyzer, "layoutdeps/wire", "layoutdeps/client")
}

// TestRealTreeLayouts is the fixture-drift smoke: it runs packlayout
// alone over the real module exactly the way zbpcheck does and demands
// zero diagnostics. A //zbp:layout directive referencing a constant
// that no longer exists — or a codec that drifted from its declared
// geometry — fails this test without needing the full suite.
func TestRealTreeLayouts(t *testing.T) {
	root, modPath, err := load.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	l := load.New(root, modPath)
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	store := facts.NewStore()
	for _, pkg := range load.DependencyOrder(pkgs) {
		pass := &analysis.Pass{
			Analyzer:   packlayout.Analyzer,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypeSizes,
			Report: func(d analysis.Diagnostic) {
				t.Errorf("%s: %s", pkg.Fset.Position(d.Pos), d.Message)
			},
		}
		facts.Bind(pass, store)
		if _, err := packlayout.Analyzer.Run(pass); err != nil {
			t.Fatalf("packlayout on %s: %v", pkg.PkgPath, err)
		}
	}
}
