package erring_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/erring"
)

// TestErring exercises bare-call and blank-assignment error discards in
// the in-scope "sim" fixture, and the scope gate on "other".
func TestErring(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), erring.Analyzer, "sim", "other")
}
