// Package erring defines an analyzer that forbids discarding errors
// returned by the simulator's own APIs in the binaries (cmd/...) and
// the study layer (internal/sim). PR 2 made the study, engine, and
// checkpoint entry points return errors precisely so shard failures
// and corrupt inputs surface instead of silently skewing results; a
// bare call or a blank-assigned error at those call sites reintroduces
// the silent-skew bug class. Standard-library calls (fmt.Println and
// friends) are out of scope — the contract covers module-internal
// APIs.
package erring

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "erring"

// Analyzer is the erring analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "module-internal calls in cmd/ and internal/sim must not discard returned errors",
	Run:  run,
}

// ModulePath scopes "module-internal callee": a callee package path
// equal to it or under it is checked, as is the analyzed package
// itself (which is how analysistest fixtures exercise the check).
var ModulePath = "bulkpreload"

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	allows := directive.CollectAllows(pass, name)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareCall(pass, allows, call)
				}
			case *ast.DeferStmt:
				checkBareCall(pass, allows, n.Call)
			case *ast.GoStmt:
				checkBareCall(pass, allows, n.Call)
			case *ast.AssignStmt:
				checkBlankError(pass, allows, n)
			}
			return true
		})
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// InScope reports whether the analyzer checks the package; exported so
// staledirective can reject //zbp:allow erring directives in packages
// this analyzer never reads.
func InScope(path string) bool { return inScope(path) }

// inScope reports whether the analyzed package is a command or the
// study layer: any path with a "cmd" segment, or a path whose last
// element is "sim".
func inScope(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return directive.PkgLastElem(path) == "sim"
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// errorPositions returns the result indices of call that are of type
// error, and the total result count.
func errorPositions(pass *analysis.Pass, call *ast.CallExpr) (idx []int, n int) {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return nil, 0
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				idx = append(idx, i)
			}
		}
		return idx, tuple.Len()
	}
	if types.Identical(t, errorType) {
		return []int{0}, 1
	}
	return nil, 1
}

// moduleInternal reports whether the call's callee belongs to this
// module (or the analyzed package itself).
func moduleInternal(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// A called func-typed variable or field: attribute it to the
		// package that declared it.
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return samePkgOrModule(pass, v.Pkg())
	}
	return samePkgOrModule(pass, fn.Pkg())
}

func samePkgOrModule(pass *analysis.Pass, pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pkg == pass.Pkg {
		return true
	}
	p := pkg.Path()
	return p == ModulePath || strings.HasPrefix(p, ModulePath+"/")
}

func checkBareCall(pass *analysis.Pass, allows *directive.AllowSet, call *ast.CallExpr) {
	idx, n := errorPositions(pass, call)
	if len(idx) == 0 || !moduleInternal(pass, call) {
		return
	}
	if allows.Permit(call.Pos()) {
		return
	}
	d := analysis.Diagnostic{
		Pos: call.Pos(), End: call.End(),
		Message: fmt.Sprintf("result of %s contains an error that is silently discarded; handle it or annotate //zbp:allow erring <reason>", callLabel(pass, call)),
	}
	// Cheap fix for the single-error statement-call shape.
	if n == 1 {
		src := render(pass, call)
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "handle the error",
			TextEdits: []analysis.TextEdit{{
				Pos: call.Pos(), End: call.End(),
				NewText: []byte("if err := " + src + "; err != nil {\n\tpanic(err) // TODO: handle\n}"),
			}},
		}}
	}
	pass.Report(d)
}

// checkBlankError flags assignments that put an error result into the
// blank identifier: _ = f(), v, _ := g().
func checkBlankError(pass *analysis.Pass, allows *directive.AllowSet, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !moduleInternal(pass, call) {
			return
		}
		idx, _ := errorPositions(pass, call)
		for _, i := range idx {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				allows.Report(pass, as,
					"error result of %s is assigned to _; handle it or annotate //zbp:allow erring <reason>",
					callLabel(pass, call))
				return
			}
		}
		return
	}
	// Parallel assignment: x, _ = f(), g() — check each RHS call.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !moduleInternal(pass, call) {
			continue
		}
		idx, n := errorPositions(pass, call)
		if n == 1 && len(idx) == 1 && i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			allows.Report(pass, as,
				"error result of %s is assigned to _; handle it or annotate //zbp:allow erring <reason>",
				callLabel(pass, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func callLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && f.Pkg() != nil {
			if recv := f.Type().(*types.Signature).Recv(); recv != nil {
				return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)), f.Name())
			}
			return f.Pkg().Name() + "." + f.Name()
		}
		return fun.Sel.Name
	}
	return "this call"
}

func render(pass *analysis.Pass, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, n); err != nil {
		return "<src>"
	}
	return buf.String()
}
