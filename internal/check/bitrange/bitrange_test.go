package bitrange_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/bitrange"
)

// TestBitrange exercises constant bit-range propagation, btb.Config
// geometry checking, and the raw shift/mask check against the zaddr and
// btb fixture stubs.
func TestBitrange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), bitrange.Analyzer, "geometry")
}
