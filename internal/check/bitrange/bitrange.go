// Package bitrange defines an analyzer that enforces the paper's
// address bit-geometry at build time. The HPCA 2013 tables are indexed
// with big-endian z/Architecture bit ranges (BTB1 49:58, BTBP 52:58,
// BTB2 47:58, bit 0 = MSB) — exactly the index-geometry details that
// BTB reverse-engineering work shows are easy to get subtly wrong. The
// analyzer:
//
//  1. constant-propagates zaddr.Bits / zaddr.SetBits call sites and
//     rejects hi > lo (arguments swapped — the little-endian reflex)
//     and lo > 63, with a suggested fix for the swap;
//  2. checks declared structure geometry: a btb.Config composite
//     literal whose Rows, IndexHi and IndexLo are constants must
//     satisfy 2^(IndexLo-IndexHi+1) == Rows, the static twin of
//     Config.Validate;
//  3. flags raw shift/mask arithmetic on zaddr.Addr values outside
//     package zaddr itself — bit extraction must go through the named
//     helpers so the geometry stays auditable in one place.
package bitrange

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "bitrange"

// Analyzer is the bitrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "constant-check zaddr bit ranges (big-endian, hi <= lo <= 63), btb.Config " +
		"index geometry, and raw shift/mask arithmetic bypassing the zaddr helpers",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if directive.PkgLastElem(pass.Pkg.Path()) == "zaddr" {
		return nil, nil // the helpers themselves implement the geometry
	}
	allows := directive.CollectAllows(pass, name)
	for _, f := range pass.Files {
		// Functions bound to a //zbp:layout are the packlayout
		// analyzer's jurisdiction: their raw shift/mask arithmetic is
		// checked against the declared field geometry there, so the
		// blanket raw-arithmetic rule stands down instead of demanding
		// an allow escape per codec.
		var layoutBodies [][2]token.Pos
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil && directive.HasLayout(fn) {
				layoutBodies = append(layoutBodies, [2]token.Pos{fn.Body.Pos(), fn.Body.End()})
			}
		}
		inLayout := func(pos token.Pos) bool {
			for _, r := range layoutBodies {
				if pos >= r[0] && pos < r[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBitsCall(pass, allows, n)
			case *ast.CompositeLit:
				checkConfigLit(pass, allows, n)
			case *ast.BinaryExpr:
				if !inLayout(n.Pos()) {
					checkRawBitArith(pass, allows, n)
				}
			}
			return true
		})
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// isZaddrFunc reports whether call invokes a package-level function
// named name from a package whose path ends in "zaddr".
func isZaddrFunc(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return directive.PkgLastElem(fn.Pkg().Path()) == "zaddr"
}

// intConst returns the exact int64 value of expr if the type checker
// proved it constant.
func intConst(pass *analysis.Pass, expr ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

func checkBitsCall(pass *analysis.Pass, allows *directive.AllowSet, call *ast.CallExpr) {
	var hiArg, loArg ast.Expr
	switch {
	case isZaddrFunc(pass, call, "Bits") && len(call.Args) == 3:
		hiArg, loArg = call.Args[1], call.Args[2]
	case isZaddrFunc(pass, call, "SetBits") && len(call.Args) == 4:
		hiArg, loArg = call.Args[1], call.Args[2]
	default:
		return
	}
	hi, hiOK := intConst(pass, hiArg)
	lo, loOK := intConst(pass, loArg)
	if hiOK && loOK && hi > lo {
		pos := call.Pos()
		if !allows.Permit(pos) {
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(), End: call.End(),
				Message: fmt.Sprintf("zaddr bit range %d:%d has hi > lo; ranges are big-endian (bit 0 = MSB, hi <= lo) — arguments are likely swapped", hi, lo),
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: fmt.Sprintf("swap to %d:%d", lo, hi),
					TextEdits: []analysis.TextEdit{
						{Pos: hiArg.Pos(), End: hiArg.End(), NewText: render(pass.Fset, loArg)},
						{Pos: loArg.Pos(), End: loArg.End(), NewText: render(pass.Fset, hiArg)},
					},
				}},
			})
		}
		return
	}
	if loOK && lo > 63 {
		allows.Report(pass, call,
			"zaddr bit range %s:%d is out of range: lo must be <= 63 (bit 63 is the LSB)", fmtConst(hi, hiOK), lo)
	}
	if hiOK && (hi < 0 || hi > 63) {
		allows.Report(pass, call,
			"zaddr bit range %d:%s is out of range: hi must be in 0..63", hi, fmtConst(lo, loOK))
	}
}

func fmtConst(v int64, ok bool) string {
	if !ok {
		return "?"
	}
	return fmt.Sprintf("%d", v)
}

// checkConfigLit verifies declared index geometry on btb.Config
// composite literals: the index bit range must address exactly Rows
// congruence classes (width == log2(rows)).
func checkConfigLit(pass *analysis.Pass, allows *directive.AllowSet, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Config" || named.Obj().Pkg() == nil ||
		directive.PkgLastElem(named.Obj().Pkg().Path()) != "btb" {
		return
	}
	vals := map[string]int64{}
	known := map[string]bool{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: give up rather than miscount
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := intConst(pass, kv.Value); ok {
			vals[key.Name] = v
			known[key.Name] = true
		}
	}
	if !known["Rows"] || !known["IndexHi"] || !known["IndexLo"] {
		return
	}
	rows, hi, lo := vals["Rows"], vals["IndexHi"], vals["IndexLo"]
	if hi > lo || lo > 63 {
		allows.Report(pass, lit,
			"btb.Config index range %d:%d is invalid: ranges are big-endian (hi <= lo <= 63)", hi, lo)
		return
	}
	width := lo - hi + 1
	if width > 62 || 1<<uint(width) != rows {
		allows.Report(pass, lit,
			"btb.Config geometry mismatch: index bits %d:%d address %d rows but Rows is %d (width must equal log2(rows))",
			hi, lo, int64(1)<<uint(width), rows)
	}
}

// checkRawBitArith flags shift/mask operators applied to zaddr.Addr
// values (directly or through an integer conversion), which bypass the
// named bit-geometry helpers.
func checkRawBitArith(pass *analysis.Pass, allows *directive.AllowSet, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.SHL, token.SHR, token.AND, token.AND_NOT, token.OR, token.XOR:
	default:
		return
	}
	if !involvesAddr(pass, bin.X) && !involvesAddr(pass, bin.Y) {
		return
	}
	allows.Report(pass, bin,
		"raw %q arithmetic on a zaddr.Addr bypasses the zaddr bit-geometry helpers; use zaddr.Bits/SetBits/RowBase/BlockOffset/... so index geometry stays auditable",
		bin.Op.String())
}

// involvesAddr reports whether expr is of type zaddr.Addr or is a
// direct integer conversion of a zaddr.Addr value.
func involvesAddr(pass *analysis.Pass, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if isAddrType(pass.TypesInfo.TypeOf(expr)) {
		return true
	}
	// uint64(a) >> n: a conversion call whose sole argument is an Addr.
	if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return isAddrType(pass.TypesInfo.TypeOf(call.Args[0]))
		}
	}
	return false
}

func isAddrType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Addr" && obj.Pkg() != nil &&
		directive.PkgLastElem(obj.Pkg().Path()) == "zaddr"
}

func render(fset *token.FileSet, n ast.Node) []byte {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	return buf.Bytes()
}
