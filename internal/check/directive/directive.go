// Package directive parses the zbpcheck source annotations shared by
// every analyzer in the suite:
//
//	//zbp:hotpath
//	    On a function declaration's doc comment: the function is a
//	    zero-allocation hot path; the hotalloc analyzer checks its body.
//
//	//zbp:allow <analyzer> <reason>
//	    On (or immediately above) an offending line: suppress the named
//	    analyzer's diagnostics on that line. The reason is mandatory,
//	    and an allow that suppresses nothing is itself reported, so
//	    stale escape hatches cannot accumulate.
//
//	//zbp:wallclock <reason>
//	    Determinism-analyzer shorthand for an annotated wall-clock
//	    site: equivalent to //zbp:allow determinism <reason>, kept
//	    distinct so intent is greppable.
//
//	//zbp:inert
//	    On a function declaration's doc comment: the function is on the
//	    bulk fast path's eligibility scan and must be provably
//	    side-effect-free; the inertpath analyzer checks its body and
//	    propagates the claim across packages as an analysis fact.
//
//	//zbp:bounded <reason>
//	    On (or immediately above) a loop with no statically evident
//	    bound (for {} or range over a channel): asserts termination for
//	    the ctxflow analyzer, with a mandatory reason naming the actual
//	    bound (EOF, closed channel, ...).
//
//	//zbp:locked <reason>
//	    For the lockorder analyzer. On (or immediately above) a
//	    blocking operation: the block-while-holding-a-mutex is
//	    sanctioned, with a mandatory reason. On a function
//	    declaration's doc comment: every blocking operation in the
//	    body is sanctioned and the function's blocking summary is not
//	    propagated to callers (the fsync-under-lock durability idiom).
//
//	//zbp:guardedby <field>
//	    On a struct field: every read or write of the field must hold
//	    the named sibling mutex; the guardedby analyzer checks all
//	    access sites.
//
//	//zbp:caller-holds <field>
//	    On a function declaration's doc comment: the function is only
//	    called with the named mutex (a receiver field or package-level
//	    sync var) already held; guardedby and lockorder treat it as
//	    held on entry.
//
//	//zbp:durable <description...>
//	    On a function declaration's doc comment: the function is part
//	    of the crash-durability protocol; the durable analyzer checks
//	    its effect order (journal append fsynced before state
//	    mutation; temp-file Sync -> Rename -> directory Sync).
//
//	//zbp:layout <name> word:<w> [unit:byte] <field>[<count>]:<lo>[..<hi>] ...
//	//zbp:layout <name> pack|unpack|uses
//	    For the packlayout analyzer. The first (declaration) form, on a
//	    constant block's or function's doc comment, declares a packed
//	    binary layout: a <w>-unit word (bits by default, bytes with
//	    unit:byte) carved into named fields. Bounds are sums of integer
//	    literals, package constants, and at most one @ident symbolic
//	    term (a runtime geometry quantity, matched against selector
//	    field names at use sites); <field>[<count>] declares an array
//	    of <count> consecutive copies. The second (role) form, on a
//	    pack/unpack function's doc comment, binds the function's body
//	    to a declared layout — local by name, cross-package as
//	    "pkg.name" — so every shift/mask/or is checked against the
//	    declaration; "uses" checks accesses without demanding full
//	    field coverage.
//
// Annotations are plain line comments and must start exactly with
// "//zbp:" (no space), mirroring the //go: directive convention.
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Allow is one parsed //zbp:allow (or //zbp:wallclock) directive.
type Allow struct {
	Pos       token.Pos // position of the comment
	File      string    // file the comment lives in
	Line      int       // line the comment starts on
	Analyzer  string    // analyzer name the allow addresses
	Reason    string    // mandatory justification
	Used      bool      // set when the allow suppresses a diagnostic
	Malformed bool      // missing analyzer name or reason
}

// AllowSet holds the directives of one package that address one
// analyzer, plus enough position context to match them to diagnostics.
type AllowSet struct {
	analyzer string
	fset     *token.FileSet
	allows   []*Allow
}

const (
	prefix          = "//zbp:"
	allowPrefix     = "//zbp:allow"
	wallclockPrefix = "//zbp:wallclock"
	hotpathPrefix   = "//zbp:hotpath"
	inertPrefix     = "//zbp:inert"
	boundedPrefix   = "//zbp:bounded"
	lockedPrefix    = "//zbp:locked"
	durablePrefix   = "//zbp:durable"
	holdsPrefix     = "//zbp:caller-holds"
	layoutPrefix    = "//zbp:layout"
)

// CollectAllows scans every comment in the pass for //zbp:allow
// directives addressing the named analyzer. //zbp:wallclock is folded
// in as an allow for "determinism".
func CollectAllows(pass *analysis.Pass, analyzer string) *AllowSet {
	s := &AllowSet{analyzer: analyzer, fset: pass.Fset}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parseAllow(c)
				if !ok {
					continue
				}
				a.File = pass.Fset.Position(c.Pos()).Filename
				a.Line = pass.Fset.Position(c.Pos()).Line
				a.Pos = c.Pos()
				// A malformed allow with no analyzer name is collected by
				// every analyzer; the multichecker dedupes the identical
				// diagnostics.
				if a.Analyzer == analyzer || (a.Malformed && a.Analyzer == "") {
					s.allows = append(s.allows, a)
				}
			}
		}
	}
	return s
}

// parseAllow recognizes //zbp:allow and //zbp:wallclock comments.
func parseAllow(c *ast.Comment) (*Allow, bool) {
	switch {
	case strings.HasPrefix(c.Text, allowPrefix):
		rest := strings.TrimPrefix(c.Text, allowPrefix)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			return nil, false // e.g. //zbp:allowance
		}
		fields := strings.Fields(rest)
		a := &Allow{}
		if len(fields) == 0 {
			a.Malformed = true
			return a, true
		}
		a.Analyzer = fields[0]
		if len(fields) < 2 {
			a.Malformed = true
			return a, true
		}
		a.Reason = strings.Join(fields[1:], " ")
		return a, true
	case strings.HasPrefix(c.Text, wallclockPrefix):
		rest := strings.TrimPrefix(c.Text, wallclockPrefix)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			return nil, false
		}
		a := &Allow{Analyzer: "determinism", Reason: strings.TrimSpace(rest)}
		if a.Reason == "" {
			a.Malformed = true
		}
		return a, true
	}
	return nil, false
}

// Permit reports whether a diagnostic at pos is suppressed by an allow
// on the same line or the line immediately above, and marks the
// matching allow used.
func (s *AllowSet) Permit(pos token.Pos) bool {
	p := s.fset.Position(pos)
	for _, a := range s.allows {
		if a.Malformed || a.File != p.Filename {
			continue
		}
		if a.Line == p.Line || a.Line == p.Line-1 {
			a.Used = true
			return true
		}
	}
	return false
}

// Report is the allow-aware reporting helper every analyzer in the
// suite funnels through: the diagnostic is dropped (and the allow
// consumed) when a directive covers rng's position.
func (s *AllowSet) Report(pass *analysis.Pass, rng analysis.Range, format string, args ...interface{}) {
	if s.Permit(rng.Pos()) {
		return
	}
	pass.ReportRangef(rng, format, args...)
}

// ReportUnused reports every malformed allow and every allow that
// suppressed nothing. Run it after the analyzer's main pass: an
// escape hatch that is not load-bearing is itself a finding.
func (s *AllowSet) ReportUnused(pass *analysis.Pass) {
	for _, a := range s.allows {
		switch {
		case a.Malformed:
			pass.Reportf(a.Pos, "malformed //zbp:allow: want //zbp:allow <analyzer> <reason>")
		case !a.Used:
			pass.Reportf(a.Pos, "unused //zbp:allow %s: no %s diagnostic on this or the next line; delete the stale escape hatch", s.analyzer, s.analyzer)
		}
	}
}

// HasHotpath reports whether fn's doc comment carries //zbp:hotpath.
func HasHotpath(fn *ast.FuncDecl) bool {
	return hasDocDirective(fn, hotpathPrefix)
}

// HasInert reports whether fn's doc comment carries //zbp:inert.
func HasInert(fn *ast.FuncDecl) bool {
	return hasDocDirective(fn, inertPrefix)
}

func hasDocDirective(fn *ast.FuncDecl, want string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// Bounded is one parsed //zbp:bounded directive.
type Bounded struct {
	Pos       token.Pos // position of the comment
	File      string    // file the comment lives in
	Line      int       // line the comment starts on
	Reason    string    // mandatory termination argument
	Used      bool      // set when the directive exempts a loop
	Malformed bool      // missing reason
}

// BoundedSet holds one package's //zbp:bounded directives with enough
// position context to match them to loops.
type BoundedSet struct {
	fset    *token.FileSet
	bounded []*Bounded
}

// CollectBounded scans every comment in the pass for //zbp:bounded.
func CollectBounded(pass *analysis.Pass) *BoundedSet {
	s := &BoundedSet{fset: pass.Fset}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				b, ok := parseBounded(c)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				b.File, b.Line, b.Pos = p.Filename, p.Line, c.Pos()
				s.bounded = append(s.bounded, b)
			}
		}
	}
	return s
}

func parseBounded(c *ast.Comment) (*Bounded, bool) {
	if !strings.HasPrefix(c.Text, boundedPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(c.Text, boundedPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //zbp:boundedness
	}
	b := &Bounded{Reason: strings.TrimSpace(rest)}
	if b.Reason == "" {
		b.Malformed = true
	}
	return b, true
}

// Exempt reports whether a loop starting at pos carries a //zbp:bounded
// directive on the same line or the line immediately above, and marks
// the matching directive used.
func (s *BoundedSet) Exempt(pos token.Pos) bool {
	p := s.fset.Position(pos)
	for _, b := range s.bounded {
		if b.Malformed || b.File != p.Filename {
			continue
		}
		if b.Line == p.Line || b.Line == p.Line-1 {
			b.Used = true
			return true
		}
	}
	return false
}

// ReportUnused reports every malformed //zbp:bounded and every one that
// exempted no loop: a termination assertion on a statically bounded (or
// since-deleted) loop is rot.
func (s *BoundedSet) ReportUnused(pass *analysis.Pass) {
	for _, b := range s.bounded {
		switch {
		case b.Malformed:
			pass.Reportf(b.Pos, "malformed //zbp:bounded: want //zbp:bounded <reason>")
		case !b.Used:
			pass.Reportf(b.Pos, "unused //zbp:bounded: no unbounded loop on this or the next line; delete the stale annotation")
		}
	}
}

// HasDurable reports whether fn's doc comment carries //zbp:durable.
func HasDurable(fn *ast.FuncDecl) bool {
	return hasDocDirective(fn, durablePrefix)
}

// DocLocked reports whether fn's doc comment carries //zbp:locked,
// sanctioning every blocking operation in the body (and truncating the
// function's blocking summary). The reason is mandatory; a bare
// //zbp:locked in a doc comment reads as declared with an empty reason
// so lockorder can reject it.
func DocLocked(fn *ast.FuncDecl) (reason string, ok bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if c.Text == lockedPrefix {
			return "", true
		}
		if rest, found := strings.CutPrefix(c.Text, lockedPrefix+" "); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// CallerHolds returns the mutex names fn's doc comment declares via
// //zbp:caller-holds (one name per directive line). Empty when the
// function carries no such directive.
func CallerHolds(fn *ast.FuncDecl) []string {
	if fn.Doc == nil {
		return nil
	}
	var names []string
	for _, c := range fn.Doc.List {
		if c.Text == holdsPrefix {
			names = append(names, "") // malformed: consumer reports it
			continue
		}
		rest, found := strings.CutPrefix(c.Text, holdsPrefix+" ")
		if !found {
			rest, found = strings.CutPrefix(c.Text, holdsPrefix+"\t")
		}
		if !found {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			names = append(names, "")
			continue
		}
		names = append(names, fields...)
	}
	return names
}

// Locked is one parsed line-level //zbp:locked directive.
type Locked struct {
	Pos       token.Pos // position of the comment
	File      string    // file the comment lives in
	Line      int       // line the comment starts on
	Reason    string    // mandatory justification
	Used      bool      // set when the directive sanctions a blocking op
	Malformed bool      // missing reason
	InFuncDoc bool      // doc-comment form; usedness is tracked per function instead
}

// LockedSet holds one package's //zbp:locked directives with enough
// position context to match them to blocking operations.
type LockedSet struct {
	fset   *token.FileSet
	locked []*Locked
}

// CollectLocked scans every comment in the pass for //zbp:locked.
// Directives inside function doc comments are collected but marked
// InFuncDoc; DocLocked is their consumer and ReportUnused skips them.
func CollectLocked(pass *analysis.Pass) *LockedSet {
	s := &LockedSet{fset: pass.Fset}
	for _, f := range pass.Files {
		docs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				docs[fn.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				l, ok := parseLocked(c)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				l.File, l.Line, l.Pos = p.Filename, p.Line, c.Pos()
				l.InFuncDoc = docs[cg]
				s.locked = append(s.locked, l)
			}
		}
	}
	return s
}

func parseLocked(c *ast.Comment) (*Locked, bool) {
	if !strings.HasPrefix(c.Text, lockedPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(c.Text, lockedPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //zbp:lockedness
	}
	l := &Locked{Reason: strings.TrimSpace(rest)}
	if l.Reason == "" {
		l.Malformed = true
	}
	return l, true
}

// Exempt reports whether a blocking operation at pos carries a
// line-level //zbp:locked on the same line or the line immediately
// above, and marks the matching directive used.
func (s *LockedSet) Exempt(pos token.Pos) bool {
	p := s.fset.Position(pos)
	for _, l := range s.locked {
		if l.Malformed || l.InFuncDoc || l.File != p.Filename {
			continue
		}
		if l.Line == p.Line || l.Line == p.Line-1 {
			l.Used = true
			return true
		}
	}
	return false
}

// Covers reports whether a line-level //zbp:locked sits on pos's line
// or the line immediately above, without marking it used — the summary
// pass asks, only the reporting pass consumes.
func (s *LockedSet) Covers(pos token.Pos) bool {
	p := s.fset.Position(pos)
	for _, l := range s.locked {
		if l.Malformed || l.InFuncDoc || l.File != p.Filename {
			continue
		}
		if l.Line == p.Line || l.Line == p.Line-1 {
			return true
		}
	}
	return false
}

// ReportUnused reports every malformed line-level //zbp:locked and
// every one that sanctioned no blocking operation. Doc-comment forms
// are owned by DocLocked's consumer and skipped here.
func (s *LockedSet) ReportUnused(pass *analysis.Pass) {
	for _, l := range s.locked {
		if l.InFuncDoc {
			continue
		}
		switch {
		case l.Malformed:
			pass.Reportf(l.Pos, "malformed //zbp:locked: want //zbp:locked <reason>")
		case !l.Used:
			pass.Reportf(l.Pos, "unused //zbp:locked: no blocking operation on this or the next line; delete the stale annotation")
		}
	}
}

// Split decomposes any //zbp: comment into its directive kind (the
// token after the colon) and the remaining text. It is the shared
// front end of the staledirective analyzer; ok is false for ordinary
// comments.
func Split(c *ast.Comment) (kind, rest string, ok bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(c.Text, prefix)
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// PkgLastElem returns the final slash-separated element of a package
// path: "bulkpreload/internal/btb" and a fixture's bare "btb" both map
// to "btb", which is how the analyzers scope themselves to the
// reproducibility-critical packages in real and test trees alike.
func PkgLastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// LayoutField is one raw field spec of a //zbp:layout declaration. The
// bound strings are unresolved expressions (sums of integer literals,
// package constant names, and at most one @ident symbolic term); the
// packlayout analyzer resolves them against the package scope.
type LayoutField struct {
	Name  string
	Count int64  // array repetition; 1 for scalar fields
	Lo    string // raw lower-bound expression
	Hi    string // raw upper-bound expression; equals Lo for single-unit fields
}

// Layout is one parsed //zbp:layout comment: either a declaration
// (Decl with Word/Unit/Fields set) or a role binding (Roles set).
type Layout struct {
	Pos    token.Pos
	Name   string // layout name, possibly qualified "pkg.name"
	Decl   bool   // declaration form
	Word   string // raw word-width expression (declaration form)
	Unit   string // "bit" (default) or "byte"
	Fields []LayoutField
	Roles  []string // "pack", "unpack", "uses" (role form)
	Errs   []string // malformed-spec messages; staledirective reports them
}

// layoutNameRE admits a layout or field name, with an optional single
// package qualifier on layout names.
var layoutNameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// layoutQualifiedRE admits "name" or "pkg.name".
var layoutQualifiedRE = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*\.)?[A-Za-z_][A-Za-z0-9_]*$`)

// ParseLayout recognizes //zbp:layout comments. ok is false for other
// comments; a recognized but malformed directive comes back with Errs
// set so staledirective can report it (and packlayout can skip it).
func ParseLayout(c *ast.Comment) (*Layout, bool) {
	if !strings.HasPrefix(c.Text, layoutPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(c.Text, layoutPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //zbp:layouts
	}
	l := &Layout{Pos: c.Pos(), Unit: "bit"}
	fields := strings.Fields(rest)
	for i, tok := range fields {
		if strings.HasPrefix(tok, "//") {
			fields = fields[:i] // trailing commentary after // is not part of the spec
			break
		}
	}
	if len(fields) == 0 {
		l.Errs = append(l.Errs, "missing layout name: want //zbp:layout <name> word:<w> <field>:<lo>[..<hi>] ... or //zbp:layout <name> pack|unpack|uses")
		return l, true
	}
	l.Name = fields[0]
	if !layoutQualifiedRE.MatchString(l.Name) {
		l.Errs = append(l.Errs, fmt.Sprintf("invalid layout name %q", l.Name))
	}
	sawUnit := false
	for _, tok := range fields[1:] {
		switch {
		case tok == "pack" || tok == "unpack" || tok == "uses":
			l.Roles = append(l.Roles, tok)
		case strings.HasPrefix(tok, "word:"):
			if l.Word != "" {
				l.Errs = append(l.Errs, "word: given twice")
			}
			l.Word = strings.TrimPrefix(tok, "word:")
			if l.Word == "" {
				l.Errs = append(l.Errs, "empty word: width")
			}
		case strings.HasPrefix(tok, "unit:"):
			sawUnit = true
			l.Unit = strings.TrimPrefix(tok, "unit:")
			if l.Unit != "bit" && l.Unit != "byte" {
				l.Errs = append(l.Errs, fmt.Sprintf("unknown unit %q: want bit or byte", l.Unit))
			}
		default:
			f, err := parseLayoutField(tok)
			if err != "" {
				l.Errs = append(l.Errs, err)
				continue
			}
			l.Fields = append(l.Fields, f)
		}
	}
	l.Decl = l.Word != "" || len(l.Fields) > 0 || sawUnit
	switch {
	case l.Decl && len(l.Roles) > 0:
		l.Errs = append(l.Errs, "mixes a layout declaration with a pack/unpack role; use separate //zbp:layout lines")
	case l.Decl && l.Word == "":
		l.Errs = append(l.Errs, "declaration is missing its word:<width>")
	case l.Decl && len(l.Fields) == 0:
		l.Errs = append(l.Errs, "declaration has no fields")
	case !l.Decl && len(l.Roles) == 0:
		l.Errs = append(l.Errs, "want a declaration (word:<w> <field>:<lo>[..<hi>] ...) or a role (pack, unpack, uses) after the layout name")
	}
	return l, true
}

// parseLayoutField parses one <name>[<count>]:<lo>[..<hi>] token.
func parseLayoutField(tok string) (LayoutField, string) {
	i := strings.IndexByte(tok, ':')
	if i < 0 {
		return LayoutField{}, fmt.Sprintf("field spec %q has no ':<lo>[..<hi>]' bounds", tok)
	}
	f := LayoutField{Name: tok[:i], Count: 1}
	bounds := tok[i+1:]
	if open := strings.IndexByte(f.Name, '['); open >= 0 {
		if !strings.HasSuffix(f.Name, "]") {
			return LayoutField{}, fmt.Sprintf("field spec %q has an unterminated [count]", tok)
		}
		cnt := f.Name[open+1 : len(f.Name)-1]
		f.Name = f.Name[:open]
		n, err := strconv.ParseInt(cnt, 10, 64)
		if err != nil || n < 1 {
			return LayoutField{}, fmt.Sprintf("field spec %q has a bad [count] %q (want a positive integer)", tok, cnt)
		}
		f.Count = n
	}
	if !layoutNameRE.MatchString(f.Name) {
		return LayoutField{}, fmt.Sprintf("invalid field name %q", f.Name)
	}
	f.Lo = bounds
	f.Hi = bounds
	if j := strings.Index(bounds, ".."); j >= 0 {
		f.Lo, f.Hi = bounds[:j], bounds[j+2:]
	}
	if f.Lo == "" || f.Hi == "" {
		return LayoutField{}, fmt.Sprintf("field spec %q has empty bounds", tok)
	}
	return f, ""
}

// DocLayouts parses every //zbp:layout line of a doc comment,
// well-formed or not. Nil when the group carries none.
func DocLayouts(doc *ast.CommentGroup) []*Layout {
	if doc == nil {
		return nil
	}
	var out []*Layout
	for _, c := range doc.List {
		if l, ok := ParseLayout(c); ok {
			out = append(out, l)
		}
	}
	return out
}

// HasLayout reports whether fn's doc comment carries any //zbp:layout
// directive — the hook bitrange uses to defer raw shift/mask policing
// to packlayout inside declared pack/unpack bodies.
func HasLayout(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if _, ok := ParseLayout(c); ok {
			return true
		}
	}
	return false
}
