// Package load type-checks Go packages for the zbpcheck analyzer suite
// without consulting a module proxy or build cache: module packages are
// resolved by path mapping under the module root, vendored dependencies
// under vendor/, and standard-library imports straight from GOROOT
// source (with cgo disabled so every package has a pure-Go file set).
// Dependencies are checked with IgnoreFuncBodies — only the packages
// under analysis pay for full syntax and type information.
//
// This is deliberately a small, self-contained stand-in for
// golang.org/x/tools/go/packages, which cannot be used offline; see
// docs/STATIC_ANALYSIS.md.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	TypeSizes types.Sizes
}

// Loader resolves and type-checks packages.
type Loader struct {
	// ModuleRoot is the absolute directory of the module being
	// analyzed; ModulePath is its module path from go.mod.
	ModuleRoot string
	ModulePath string
	// ExtraSrcRoots are GOPATH-style src directories (used by the
	// analysistest harness for testdata fixtures); they take priority
	// over GOROOT so fixture stubs can shadow nothing by accident.
	ExtraSrcRoots []string

	ctxt    build.Context
	fset    *token.FileSet
	deps    map[string]*types.Package
	loading map[string]bool
}

// New returns a loader rooted at the module directory.
func New(moduleRoot, modulePath string) *Loader {
	ctxt := build.Default
	// Pure-Go view of every package: with cgo enabled, GoFiles would
	// reference declarations that only exist in cgo-generated code.
	ctxt.CgoEnabled = false
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		ctxt:       ctxt,
		fset:       token.NewFileSet(),
		deps:       make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
}

// Fset returns the file set shared by everything the loader touches.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to the directory holding its source.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	for _, root := range l.ExtraSrcRoots {
		if d := filepath.Join(root, filepath.FromSlash(path)); isDir(d) {
			return d, nil
		}
	}
	if d := filepath.Join(l.ModuleRoot, "vendor", filepath.FromSlash(path)); isDir(d) {
		return d, nil
	}
	if d := filepath.Join(l.ctxt.GOROOT, "src", filepath.FromSlash(path)); isDir(d) {
		return d, nil
	}
	if d := filepath.Join(l.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path)); isDir(d) {
		return d, nil
	}
	return "", fmt.Errorf("load: cannot resolve import %q", path)
}

func isDir(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// Import type-checks path as a dependency (no function bodies, no
// syntax retained). It implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, _, err := l.parseDir(dir, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // collect via returned error only
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %v", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// parseDir parses the build-constrained non-test GoFiles of dir.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, *build.Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("load: %s: %v", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, bp, nil
}

// LoadTarget fully type-checks the package in dir under the given
// import path, retaining syntax (with comments) and complete type
// information for analysis.
func (l *Loader) LoadTarget(dir, path string) (*Package, error) {
	files, _, err := l.parseDir(dir, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	sizes := types.SizesFor("gc", l.ctxt.GOARCH)
	conf := types.Config{Importer: l, Sizes: sizes}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%v", err)
	}
	return &Package{
		PkgPath:   path,
		Dir:       dir,
		Fset:      l.fset,
		Syntax:    files,
		Types:     pkg,
		TypesInfo: info,
		TypeSizes: sizes,
	}, nil
}

// ModulePackages enumerates every non-test package directory under the
// module root (skipping vendor/, testdata/, hidden and underscore
// directories) and fully type-checks each. Directories with no
// buildable Go files are skipped silently.
func (l *Loader) ModulePackages() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "vendor" || name == "testdata" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.ctxt.ImportDir(dir, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("load: %s: %v", dir, err)
		}
		pkg, err := l.LoadTarget(dir, path)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// FindModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", abs)
		}
	}
}

// DependencyOrder topologically sorts loaded packages so every package
// follows the module-internal packages it imports — the schedule
// fact-exporting analyzers require (a fact must exist before its
// importer asks for it). Ties keep the input's deterministic order.
func DependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	var out []*Package
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.PkgPath] {
		case 1, 2:
			return // cycle (impossible in a compiling module) or done
		}
		state[p.PkgPath] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[p.PkgPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
