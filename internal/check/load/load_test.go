package load_test

import (
	"os"
	"path/filepath"
	"testing"

	"bulkpreload/internal/check/load"
)

func TestFindModule(t *testing.T) {
	root, path, err := load.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	if path != "bulkpreload" {
		t.Fatalf("module path = %q, want bulkpreload", path)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("returned root %s has no go.mod: %v", root, err)
	}
	// Walking up from the root itself lands on the same module.
	root2, _, err := load.FindModule(root)
	if err != nil || root2 != root {
		t.Fatalf("FindModule(root) = %s, %v; want %s", root2, err, root)
	}
}

// loadFixturePair loads the lockdeps fixture pair (svc imports store)
// through the offline loader with the testdata src root.
func loadFixturePair(t *testing.T) (store, svc *load.Package) {
	t.Helper()
	root, path, err := load.FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	testdata := filepath.Join(root, "internal", "check", "testdata", "src")
	l := load.New(root, path)
	l.ExtraSrcRoots = []string{testdata}
	// Load the importer first, so a correct result can only come from
	// DependencyOrder, not input order.
	svc, err = l.LoadTarget(filepath.Join(testdata, "lockdeps", "svc"), "lockdeps/svc")
	if err != nil {
		t.Fatalf("load lockdeps/svc: %v", err)
	}
	store, err = l.LoadTarget(filepath.Join(testdata, "lockdeps", "store"), "lockdeps/store")
	if err != nil {
		t.Fatalf("load lockdeps/store: %v", err)
	}
	return store, svc
}

func TestDependencyOrder(t *testing.T) {
	store, svc := loadFixturePair(t)
	for name, input := range map[string][]*load.Package{
		"importer first":   {svc, store},
		"dependency first": {store, svc},
	} {
		got := load.DependencyOrder(input)
		if len(got) != 2 {
			t.Fatalf("%s: %d packages out, want 2", name, len(got))
		}
		if got[0].PkgPath != "lockdeps/store" || got[1].PkgPath != "lockdeps/svc" {
			t.Fatalf("%s: order = [%s %s], want [lockdeps/store lockdeps/svc]",
				name, got[0].PkgPath, got[1].PkgPath)
		}
	}
}
