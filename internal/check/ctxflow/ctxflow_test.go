package ctxflow_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/ctxflow"
)

// TestCtxFlow exercises unbounded loops that observe ctx.Err/ctx.Done
// (accepted), documented //zbp:bounded loops (accepted), uninterruptible
// loops (flagged), and stale or unused annotations (flagged).
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxloops/sim")
}

// TestCtxFlowServiceLoops covers the daemon-era scope: worker pools
// observing a struct-field context, blocking dequeues, journal-replay
// bounds, and the wedged worker loop SIGTERM cannot stop.
func TestCtxFlowServiceLoops(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxloops/zsimd")
}

// TestInScope pins the analyzer's package set: the simulation paths it
// has always covered plus the zsimd service paths (jobq, zsimd,
// loadtest) where a wedged loop strands a daemon drain.
func TestInScope(t *testing.T) {
	for _, pkg := range []string{
		"bulkpreload/internal/sim", "bulkpreload/internal/fault",
		"bulkpreload/internal/trace", "bulkpreload/internal/engine",
		"bulkpreload/internal/jobq", "bulkpreload/internal/zsimd",
		"bulkpreload/internal/loadtest",
	} {
		if !ctxflow.InScope(pkg) {
			t.Errorf("InScope(%q) = false, want true", pkg)
		}
	}
	for _, pkg := range []string{"bulkpreload/internal/report", "bulkpreload/internal/obs"} {
		if ctxflow.InScope(pkg) {
			t.Errorf("InScope(%q) = true, want false", pkg)
		}
	}
}
