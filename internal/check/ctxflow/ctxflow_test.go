package ctxflow_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/ctxflow"
)

// TestCtxFlow exercises unbounded loops that observe ctx.Err/ctx.Done
// (accepted), documented //zbp:bounded loops (accepted), uninterruptible
// loops (flagged), and stale or unused annotations (flagged).
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxloops/sim")
}
