// Package ctxflow defines an analyzer that keeps long simulations
// interruptible: in the scheduler, study, fault-injection, trace, and
// engine packages, a loop with no statically evident bound — for {}
// with no condition, or range over a channel — must either observe
// cancellation (a ctx.Done() receive or a ctx.Err() check anywhere in
// its body) or carry //zbp:bounded <reason> naming the actual
// termination argument (source EOF, closed channel, drained queue...).
//
// Multi-hour sweeps and the work-stealing worker pool are exactly the
// loops an operator needs to be able to stop; a loop that neither
// checks the context nor documents its bound is how "ctrl-C does
// nothing" regressions ship. Conditional loops (for cond {}) are out of
// scope — their bound is the condition, and proving it terminates is
// not a build-time job. A //zbp:bounded that exempts nothing is itself
// reported, so termination claims cannot outlive their loops.
// Departures use //zbp:allow ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "ctxflow"

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "unbounded loops in the scheduler, study, fault, trace, and engine packages " +
		"must observe ctx.Done()/ctx.Err() or be annotated //zbp:bounded <reason>",
	Run: run,
}

// InScope reports whether the analyzer checks the package: the paths
// where a wedged loop strands a long-running simulation — and, since
// the zsimd service, the paths where one strands a daemon: the job
// queue's blocking dequeue, the service worker pool, and the load
// testbed that drives them.
func InScope(pkgPath string) bool {
	switch directive.PkgLastElem(pkgPath) {
	case "sim", "fault", "trace", "engine", "jobq", "zsimd", "loadtest":
		return true
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	allows := directive.CollectAllows(pass, name)
	bounded := directive.CollectBounded(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				if loop.Cond != nil {
					return true
				}
				body = loop.Body
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(loop.X)
				if t == nil {
					return true
				}
				if _, isChan := t.Underlying().(*types.Chan); !isChan {
					return true
				}
				body = loop.Body
			default:
				return true
			}
			if observesContext(pass, body) || bounded.Exempt(n.Pos()) {
				return true
			}
			allows.Report(pass, n, "unbounded loop does not observe cancellation; check ctx.Err() / select on ctx.Done() in the body, or annotate //zbp:bounded <reason> naming the termination argument")
			return true
		})
	}
	bounded.ReportUnused(pass)
	allows.ReportUnused(pass)
	return nil, nil
}

// observesContext reports whether the loop body contains a ctx.Done()
// or ctx.Err() call on a context.Context value (directly or through a
// field), at any nesting depth.
func observesContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if isContext(pass.TypesInfo.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContext reports whether t is context.Context (or an alias of it).
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
