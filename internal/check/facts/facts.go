// Package facts is the zbpcheck driver's cross-package fact store: the
// offline stand-in for the fact plumbing of golang.org/x/tools
// drivers. Analyzers speak the upstream API (Pass.ExportObjectFact /
// ImportObjectFact and the package-fact twins); Bind wires those
// closures to a Store shared across every package of one checker run.
//
// Facts never cross a package boundary as live values: every export is
// immediately serialized with encoding/gob and every import decodes a
// fresh copy, exactly as the upstream driver does between separate
// compilations. That keeps analyzers honest — a fact type that is not
// gob-serializable, or an analyzer that mutates an imported fact and
// expects the change to stick, fails loudly here instead of subtly in
// a real build system.
//
// Because the loader type-checks a package twice — once fully for its
// own analysis pass, once body-free as a dependency of downstream
// packages — the two copies of an object are distinct *types.Object
// values. The store therefore keys facts by stable coordinates
// (package path, receiver-qualified object name, fact type) rather
// than by object identity.
package facts

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Store holds the serialized facts of one analyzer suite run. The
// zero value is not ready; use NewStore. A Store is not safe for
// concurrent use: the driver analyzes packages sequentially in
// dependency order, which is what gives facts their meaning.
type Store struct {
	objects  map[factKey][]byte
	packages map[factKey][]byte
}

// factKey addresses one fact: the owning package, the
// receiver-qualified object name ("" for package facts), the analyzer
// namespace, and the concrete fact type.
type factKey struct {
	pkg      string
	obj      string
	analyzer string
	typ      string
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{
		objects:  make(map[factKey][]byte),
		packages: make(map[factKey][]byte),
	}
}

// objPath names an object stably across separate type-checks of its
// package: package-level objects by name, methods by "Recv.Name".
func objPath(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

func encode(fact analysis.Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// allowed reports whether the analyzer declared the fact's concrete
// type in FactTypes — the upstream contract that keeps a fact type
// owned by exactly one analyzer.
func allowed(a *analysis.Analyzer, fact analysis.Fact) bool {
	t := fmt.Sprintf("%T", fact)
	for _, ft := range a.FactTypes {
		if fmt.Sprintf("%T", ft) == t {
			return true
		}
	}
	return false
}

// Bind installs the Store-backed fact closures on pass. Call it after
// the pass's Analyzer, Pkg, and Report fields are set and before Run.
func Bind(pass *analysis.Pass, s *Store) {
	var exported []analysis.ObjectFact
	var pkgExported []analysis.PackageFact

	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		if obj == nil || obj.Pkg() == nil {
			panic(fmt.Sprintf("%s: ExportObjectFact on object without a package", pass.Analyzer.Name))
		}
		if !allowed(pass.Analyzer, fact) {
			panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", pass.Analyzer.Name, fact))
		}
		b, err := encode(fact)
		if err != nil {
			panic(fmt.Sprintf("%s: fact %T is not gob-serializable: %v", pass.Analyzer.Name, fact, err))
		}
		s.objects[factKey{obj.Pkg().Path(), objPath(obj), pass.Analyzer.Name, fmt.Sprintf("%T", fact)}] = b
		exported = append(exported, analysis.ObjectFact{Object: obj, Fact: fact})
	}
	pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		b, ok := s.objects[factKey{obj.Pkg().Path(), objPath(obj), pass.Analyzer.Name, fmt.Sprintf("%T", fact)}]
		if !ok {
			return false
		}
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(fact); err != nil {
			panic(fmt.Sprintf("%s: decoding fact %T: %v", pass.Analyzer.Name, fact, err))
		}
		return true
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		if !allowed(pass.Analyzer, fact) {
			panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", pass.Analyzer.Name, fact))
		}
		b, err := encode(fact)
		if err != nil {
			panic(fmt.Sprintf("%s: fact %T is not gob-serializable: %v", pass.Analyzer.Name, fact, err))
		}
		s.packages[factKey{pass.Pkg.Path(), "", pass.Analyzer.Name, fmt.Sprintf("%T", fact)}] = b
		pkgExported = append(pkgExported, analysis.PackageFact{Package: pass.Pkg, Fact: fact})
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact analysis.Fact) bool {
		if pkg == nil {
			return false
		}
		b, ok := s.packages[factKey{pkg.Path(), "", pass.Analyzer.Name, fmt.Sprintf("%T", fact)}]
		if !ok {
			return false
		}
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(fact); err != nil {
			panic(fmt.Sprintf("%s: decoding fact %T: %v", pass.Analyzer.Name, fact, err))
		}
		return true
	}
	// The subset's AllObjectFacts/AllPackageFacts enumerate what this
	// pass exported (the store holds serialized bytes keyed by path, not
	// live objects, so earlier packages' facts are reachable only
	// through Import*Fact with a concrete object in hand).
	pass.AllObjectFacts = func() []analysis.ObjectFact { return append([]analysis.ObjectFact(nil), exported...) }
	pass.AllPackageFacts = func() []analysis.PackageFact { return append([]analysis.PackageFact(nil), pkgExported...) }
}
