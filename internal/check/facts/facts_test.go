package facts_test

import (
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/facts"
)

// testFact is a well-behaved object fact.
type testFact struct{ Keys []string }

func (*testFact) AFact() {}

// pkgFact is a well-behaved package fact.
type pkgFact struct{ N int }

func (*pkgFact) AFact() {}

// undeclaredFact is never listed in FactTypes.
type undeclaredFact struct{ X int }

func (*undeclaredFact) AFact() {}

// opaqueFact has no exported fields, so gob refuses it — the store must
// fail loudly rather than silently dropping the fact.
type opaqueFact struct{ ch chan int }

func (*opaqueFact) AFact() {}

var probe = &analysis.Analyzer{
	Name:      "factsprobe",
	Doc:       "exercises the fact store",
	Run:       func(*analysis.Pass) (interface{}, error) { return nil, nil },
	FactTypes: []analysis.Fact{(*testFact)(nil), (*pkgFact)(nil), (*opaqueFact)(nil)},
}

func newPass(s *facts.Store, pkg *types.Package) *analysis.Pass {
	p := &analysis.Pass{Analyzer: probe, Pkg: pkg}
	facts.Bind(p, s)
	return p
}

// pkgCopy builds an independent copy of the same package: a fresh
// *types.Package with the same path and same-named members, the way the
// loader's body-free re-typecheck produces distinct objects for
// identical source coordinates.
func pkgCopy() (pkg *types.Package, topVar *types.Var, method, plainFn *types.Func) {
	pkg = types.NewPackage("example.com/p", "p")
	topVar = types.NewVar(token.NoPos, pkg, "Guarded", types.Typ[types.Int])
	tn := types.NewTypeName(token.NoPos, pkg, "Queue", nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "q", types.NewPointer(named))
	method = types.NewFunc(token.NoPos, pkg, "Append", types.NewSignatureType(recv, nil, nil, nil, nil, false))
	plainFn = types.NewFunc(token.NoPos, pkg, "Append", types.NewSignatureType(nil, nil, nil, nil, nil, false))
	return pkg, topVar, method, plainFn
}

func TestObjectFactRoundTrip(t *testing.T) {
	s := facts.NewStore()
	pkg1, v1, _, _ := pkgCopy()
	pass1 := newPass(s, pkg1)
	pass1.ExportObjectFact(v1, &testFact{Keys: []string{"a", "b"}})

	// Import through a distinct object with the same coordinates, the
	// situation every downstream package is in.
	_, v2, _, _ := pkgCopy()
	pass2 := newPass(s, types.NewPackage("example.com/q", "q"))
	var got testFact
	if !pass2.ImportObjectFact(v2, &got) {
		t.Fatal("fact did not round-trip to an object copy")
	}
	if len(got.Keys) != 2 || got.Keys[0] != "a" || got.Keys[1] != "b" {
		t.Fatalf("decoded fact = %+v", got)
	}

	// Every import decodes a fresh copy: mutating one must not leak
	// back into the store.
	got.Keys[0] = "mutated"
	var again testFact
	if !pass2.ImportObjectFact(v2, &again) {
		t.Fatal("second import failed")
	}
	if again.Keys[0] != "a" {
		t.Fatalf("store leaked a live value: %+v", again)
	}
}

func TestMissingFactIsFalse(t *testing.T) {
	s := facts.NewStore()
	pkg, v, _, _ := pkgCopy()
	pass := newPass(s, pkg)
	var got testFact
	if pass.ImportObjectFact(v, &got) {
		t.Fatal("import of a never-exported fact returned true")
	}
	// A different fact type on the same object is its own key.
	pass.ExportObjectFact(v, &testFact{Keys: []string{"a"}})
	var other pkgFact
	if pass.ImportObjectFact(v, &other) {
		t.Fatal("import found a fact of a different type")
	}
	if pass.ImportObjectFact(nil, &got) {
		t.Fatal("import on nil object returned true")
	}
}

func TestMethodPathDisambiguates(t *testing.T) {
	s := facts.NewStore()
	pkg1, _, m1, f1 := pkgCopy()
	pass1 := newPass(s, pkg1)
	pass1.ExportObjectFact(m1, &testFact{Keys: []string{"method"}})
	pass1.ExportObjectFact(f1, &testFact{Keys: []string{"plain"}})

	_, _, m2, f2 := pkgCopy()
	pass2 := newPass(s, types.NewPackage("example.com/q", "q"))
	var gm, gf testFact
	if !pass2.ImportObjectFact(m2, &gm) || !pass2.ImportObjectFact(f2, &gf) {
		t.Fatal("method/function facts did not round-trip")
	}
	if gm.Keys[0] != "method" || gf.Keys[0] != "plain" {
		t.Fatalf("Queue.Append and Append collided: method=%v plain=%v", gm.Keys, gf.Keys)
	}
}

func TestPackageFactRoundTrip(t *testing.T) {
	s := facts.NewStore()
	pkg1, _, _, _ := pkgCopy()
	pass1 := newPass(s, pkg1)
	pass1.ExportPackageFact(&pkgFact{N: 7})

	pkg2, _, _, _ := pkgCopy()
	pass2 := newPass(s, types.NewPackage("example.com/q", "q"))
	var got pkgFact
	if !pass2.ImportPackageFact(pkg2, &got) || got.N != 7 {
		t.Fatalf("package fact did not round-trip: ok=%v got=%+v", got.N == 7, got)
	}
	if pass2.ImportPackageFact(types.NewPackage("example.com/other", "other"), &got) {
		t.Fatal("package fact found for a package that never exported one")
	}
	if pass2.ImportPackageFact(nil, &got) {
		t.Fatal("package fact found for nil package")
	}
}

func TestAllFactsEnumerateOwnExports(t *testing.T) {
	s := facts.NewStore()
	pkg, v, _, _ := pkgCopy()
	pass := newPass(s, pkg)
	if n := len(pass.AllObjectFacts()); n != 0 {
		t.Fatalf("fresh pass has %d object facts", n)
	}
	pass.ExportObjectFact(v, &testFact{Keys: []string{"a"}})
	pass.ExportPackageFact(&pkgFact{N: 1})
	if n := len(pass.AllObjectFacts()); n != 1 {
		t.Fatalf("AllObjectFacts = %d, want 1", n)
	}
	if n := len(pass.AllPackageFacts()); n != 1 {
		t.Fatalf("AllPackageFacts = %d, want 1", n)
	}
}

func wantPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected a panic", name)
		}
	}()
	f()
}

func TestStoreFailsLoudly(t *testing.T) {
	s := facts.NewStore()
	pkg, v, _, _ := pkgCopy()
	pass := newPass(s, pkg)
	wantPanic(t, "undeclared fact type", func() {
		pass.ExportObjectFact(v, &undeclaredFact{X: 1})
	})
	wantPanic(t, "non-gob-serializable fact", func() {
		pass.ExportObjectFact(v, &opaqueFact{ch: make(chan int)})
	})
	wantPanic(t, "object without a package", func() {
		pass.ExportObjectFact(types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int]), &testFact{})
	})
	wantPanic(t, "undeclared package fact type", func() {
		pass.ExportPackageFact(&undeclaredFact{X: 1})
	})
}
