package guardedby_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "guarded")
}

// TestGuardedByCrossPackage proves the fact path: user reads
// cell.Box.N, whose guard is known only through the exported object
// fact on the field.
func TestGuardedByCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "guarddeps/cell", "guarddeps/user")
}
