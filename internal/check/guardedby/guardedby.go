// Package guardedby checks declared data-race contracts: a struct
// field annotated
//
//	st *state //zbp:guardedby mu
//
// may only be read or written while the named sibling mutex is held.
// An access site satisfies the contract either by a mu.Lock() that
// dominates it in the same function (tracked by the lockset walker,
// including through the manual early-unlock-and-return ladders the
// defer idiom can't express) or by running inside a method whose doc
// comment declares //zbp:caller-holds mu.
//
// Two companion checks keep the annotations honest:
//
//   - every //zbp:guardedby and //zbp:caller-holds name must resolve to
//     an actual sync mutex (a sibling field, or for caller-holds a
//     receiver field or package-level sync var) — a typo'd mutex name
//     silently guarding nothing is itself a finding;
//   - unlock-on-all-paths: a function that acquires a mutex without
//     defer must release it on every return path. The held-at-exit set
//     the walker computes makes the jobq.Queue ladder checkable.
//
// The guard key is type-level ("jobq.Queue.mu" guards Queue.st on every
// instance), the same granularity the lockorder graph uses. Guarded
// exported fields export a fact so cross-package accesses are checked
// too. Constructor writes that predate sharing use //zbp:allow
// guardedby <reason>.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
	"bulkpreload/internal/check/lockset"
)

const name = "guardedby"

// guardFact marks an exported guarded field; Mutex is the full lock key
// ("pkg.Owner.mu") access sites must hold.
type guardFact struct {
	Mutex string
}

func (*guardFact) AFact()         {}
func (f *guardFact) String() string { return "guardedby " + f.Mutex }

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "accesses to //zbp:guardedby fields must hold the named mutex (locked in-function " +
		"or declared //zbp:caller-holds); manual unlock ladders must release on every path",
	Run:       run,
	FactTypes: []analysis.Fact{(*guardFact)(nil)},
}

// guard is one annotated field's contract.
type guard struct {
	owner  string // declaring struct type
	field  string
	muName string
	muKey  string // lock key accesses must hold
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := directive.CollectAllows(pass, name)
	walker := &lockset.Walker{
		Info:    pass.TypesInfo,
		Fset:    pass.Fset,
		PkgName: directive.PkgLastElem(pass.Pkg.Path()),
	}

	guards := collectGuards(pass, allows)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			checkFunc(pass, allows, walker, guards, fn)
		}
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// collectGuards parses every //zbp:guardedby field annotation in the
// package, validates the named mutex, and exports facts for exported
// guarded fields.
func collectGuards(pass *analysis.Pass, allows *directive.AllowSet) map[types.Object]*guard {
	guards := make(map[types.Object]*guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, isSpec := n.(*ast.TypeSpec)
			if !isSpec {
				return true
			}
			st, isStruct := ts.Type.(*ast.StructType)
			if !isStruct {
				return true
			}
			for _, fld := range st.Fields.List {
				ann, muName := guardAnnotation(fld)
				if ann == nil {
					continue
				}
				if muName == "" {
					allows.Report(pass, ann, "malformed //zbp:guardedby: want //zbp:guardedby <mutex field>")
					continue
				}
				if !hasMutexField(pass, st, muName) {
					allows.Report(pass, ann, "//zbp:guardedby names %q, which is not a sync mutex field of %s", muName, ts.Name.Name)
					continue
				}
				g := &guard{
					owner:  ts.Name.Name,
					muName: muName,
					muKey:  lockset.FieldKey(pass.Pkg.Path(), ts.Name.Name, muName),
				}
				for _, nm := range fld.Names {
					obj := pass.TypesInfo.Defs[nm]
					if obj == nil {
						continue
					}
					fg := *g
					fg.field = nm.Name
					guards[obj] = &fg
					// Only exported fields cross package boundaries; the
					// fact store keys object facts by name, so exporting
					// unexported fields would collide same-named fields
					// of sibling types.
					if nm.IsExported() && pass.ExportObjectFact != nil {
						pass.ExportObjectFact(obj, &guardFact{Mutex: fg.muKey})
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation scans a struct field's doc and trailing comments for
// //zbp:guardedby, returning the directive comment and the named mutex
// ("" when the name is missing).
func guardAnnotation(fld *ast.Field) (*ast.Comment, string) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			kind, rest, ok := directive.Split(c)
			if !ok || kind != "guardedby" {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return c, ""
			}
			return c, fields[0]
		}
	}
	return nil, ""
}

// hasMutexField reports whether the struct syntax declares a sync mutex
// field named muName, counting an embedded sync.Mutex as "Mutex".
func hasMutexField(pass *analysis.Pass, st *ast.StructType, muName string) bool {
	for _, fld := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(fld.Type)
		if !lockset.IsSyncMutex(t) {
			continue
		}
		if len(fld.Names) == 0 { // embedded
			if muName == "Mutex" || muName == "RWMutex" {
				return true
			}
			continue
		}
		for _, nm := range fld.Names {
			if nm.Name == muName {
				return true
			}
		}
	}
	return false
}

// checkFunc walks one function: guarded accesses against the held set,
// held-at-exit for the unlock-on-all-paths rule, and //zbp:caller-holds
// resolution (this analyzer owns the directive's validation; lockorder
// consumes the same names silently).
func checkFunc(pass *analysis.Pass, allows *directive.AllowSet, walker *lockset.Walker, guards map[types.Object]*guard, fn *ast.FuncDecl) {
	fname := fn.Name.Name
	var entry []lockset.Lock
	for _, mu := range directive.CallerHolds(fn) {
		if mu == "" {
			allows.Report(pass, fn.Name, "malformed //zbp:caller-holds on %s: want //zbp:caller-holds <mutex>", fname)
			continue
		}
		key, ok := lockset.ResolveHold(pass.TypesInfo, pass.Pkg, fn, mu)
		if !ok {
			allows.Report(pass, fn.Name, "//zbp:caller-holds on %s names %q, which is neither a sync mutex field of the receiver nor a package-level sync var", fname, mu)
			continue
		}
		entry = append(entry, lockset.Lock{Key: key, Pos: fn.Name.Pos(), Synthetic: true})
	}

	walker.Walk(fn, entry, lockset.Hooks{
		Node: func(n ast.Node, held []lockset.Lock) {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return
			}
			v, isVar := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !isVar || !v.IsField() {
				return
			}
			var muKey, muName, owner string
			if g := guards[v]; g != nil {
				muKey, muName, owner = g.muKey, g.muName, g.owner
			} else if v.Pkg() != nil && v.Pkg() != pass.Pkg && v.Exported() {
				var fact guardFact
				if pass.ImportObjectFact != nil && pass.ImportObjectFact(v, &fact) {
					muKey, muName, owner = fact.Mutex, keyTail(fact.Mutex), ""
				}
			}
			if muKey == "" || lockset.Held(held, muKey) {
				return
			}
			qual := v.Name()
			if owner != "" {
				qual = owner + "." + v.Name()
			}
			allows.Report(pass, sel, "%s accesses %s without holding %s (//zbp:guardedby %s); lock it here or annotate the function //zbp:caller-holds %s", fname, qual, muKey, muName, muName)
		},
		Exit: func(pos token.Pos, held []lockset.Lock) {
			for _, l := range held {
				if l.Deferred || l.Synthetic {
					continue
				}
				lp := pass.Fset.Position(l.Pos)
				allows.Report(pass, posRange(pos), "%s can exit with %s still held (locked at line %d); unlock on every path or defer the unlock", fname, l.Key, lp.Line)
			}
		},
	})
}

// keyTail returns the field name of a "pkg.Owner.mu" lock key, for
// message text when only the imported fact is available.
func keyTail(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// posRange adapts a bare position (a return site) to analysis.Range.
type posRange token.Pos

func (p posRange) Pos() token.Pos { return token.Pos(p) }
func (p posRange) End() token.Pos { return token.Pos(p) }
