// Package determinism defines an analyzer that enforces bit-exact
// reproducibility in the simulator's determinism-critical packages.
// Checkpoint/resume equivalence and seeded fault injection are only
// sound if a run is a pure function of (trace, config, seeds); this
// analyzer rejects the three ways nondeterminism has historically
// leaked into simulators:
//
//  1. wall-clock reads (time.Now, time.Since) outside sites annotated
//     //zbp:wallclock <reason>;
//  2. the global math/rand source (rand.Intn, rand.Seed, ...) — the
//     allowed idiom is an explicit seeded stream, rand.New(rand.NewSource(s)),
//     as used by internal/workload;
//  3. iteration over a map whose body lets Go's randomized iteration
//     order reach results: appends, writes to variables declared
//     outside the loop, bare calls (which may emit output), or returns
//     that mention the iteration variables. Order-independent bodies —
//     deleting from the ranged map, commutative updates (+=, ^=, ...),
//     writes keyed by the iteration key — are accepted.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

// criticalPkgs are the reproducibility-critical package names (matched
// against the last element of the package path, so fixtures under
// testdata behave like the real tree).
var criticalPkgs = map[string]bool{
	"core": true, "engine": true, "fault": true, "btb": true,
	"pht": true, "ctb": true, "bht": true, "history": true,
	"tracker": true, "steering": true, "sim": true,
}

const name = "determinism"

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid wall-clock reads, the global math/rand source, and " +
		"order-dependent map iteration in reproducibility-critical packages",
	Run: run,
}

// globalRandAllowed are the math/rand package-level functions that do
// not touch the shared global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// InScope reports whether the analyzer checks the package; exported so
// staledirective can reject //zbp:wallclock and //zbp:allow determinism
// directives in packages this analyzer never reads.
func InScope(pkgPath string) bool {
	return criticalPkgs[directive.PkgLastElem(pkgPath)]
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	allows := directive.CollectAllows(pass, name)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, allows, n)
			case *ast.RangeStmt:
				checkMapRange(pass, allows, n)
			}
			return true
		})
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// calleeFunc resolves a call to the package-level *types.Func it
// invokes, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func checkCall(pass *analysis.Pass, allows *directive.AllowSet, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			allows.Report(pass, call,
				"time.%s in determinism-critical package %s: simulated time must come from the engine clock; annotate intentional wall-clock sites with //zbp:wallclock <reason>",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand carry an explicit seeded source and are
		// the sanctioned idiom; only package-level functions hit the
		// global source.
		if fn.Type().(*types.Signature).Recv() != nil || globalRandAllowed[fn.Name()] {
			return
		}
		allows.Report(pass, call,
			"global math/rand.%s uses the shared process-wide source; use a seeded stream: rand.New(rand.NewSource(seed))",
			fn.Name())
	}
}

// checkMapRange flags range-over-map statements whose body is not
// provably order-independent.
func checkMapRange(pass *analysis.Pass, allows *directive.AllowSet, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := rangeVars(pass, rng)
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if r := checkRangeAssign(pass, rng, loopVars, n); r != "" {
				reason = r
			}
			return true
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && !isOrderFreeCall(pass, rng, call) {
				reason = "calls " + callName(pass, call) + ", whose effects observe iteration order"
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsAny(pass, res, loopVars) {
					reason = "returns a value derived from the iteration variables"
					return false
				}
			}
			return true
		case *ast.SendStmt:
			reason = "sends on a channel in iteration order"
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			reason = "launches calls in iteration order"
			return false
		}
		return true
	})
	if reason != "" {
		allows.Report(pass, rng,
			"map iteration order is randomized but this loop %s; iterate a sorted copy of the keys, restructure to an order-free body, or annotate //zbp:allow determinism <reason>",
			reason)
	}
}

// rangeVars returns the objects of the loop's key/value variables.
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out = append(out, obj) // "=" range form
			}
		}
	}
	return out
}

// checkRangeAssign classifies an assignment inside a map-range body.
// Returns a non-empty reason if it is order-dependent.
func checkRangeAssign(pass *analysis.Pass, rng *ast.RangeStmt, loopVars []types.Object, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.DEFINE:
		return "" // new variables scoped to the body are harmless
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		return "" // commutative accumulation is order-independent
	}
	for _, lhs := range as.Lhs {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Uses[lhs]
			if obj == nil || declaredInside(pass, obj, rng) {
				continue
			}
			// Writing a loop-dependent value to an outer variable: the
			// final value depends on which key iterates last.
			return "assigns to " + lhs.Name + ", declared outside the loop"
		case *ast.IndexExpr:
			// m2[k] = v keyed by the iteration key touches a distinct
			// element per iteration — order-free.
			if id, ok := ast.Unparen(lhs.Index).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && isAny(obj, loopVars) {
					continue
				}
			}
			return "writes through an index that is not the iteration key"
		default:
			return "assigns through " + nodeString(pass, lhs)
		}
	}
	// RHS append grows a slice in iteration order even when assigned to
	// a body-local (it may escape via the backing array).
	for _, rhs := range as.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return "appends to a slice in iteration order"
				}
			}
		}
	}
	return ""
}

// isOrderFreeCall accepts the statement calls whose effects cannot
// observe iteration order: delete(m, k) on the ranged map and the
// clear builtin.
func isOrderFreeCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return id.Name == "delete" || id.Name == "clear"
}

func callName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	return nodeString(pass, call.Fun)
}

// declaredInside reports whether obj's declaration lies within the
// range statement.
func declaredInside(pass *analysis.Pass, obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

func isAny(obj types.Object, set []types.Object) bool {
	for _, o := range set {
		if o == obj {
			return true
		}
	}
	return false
}

// mentionsAny reports whether expr references any of the objects.
func mentionsAny(pass *analysis.Pass, expr ast.Expr, objs []types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && isAny(obj, objs) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func nodeString(pass *analysis.Pass, n ast.Node) string {
	if e, ok := n.(ast.Expr); ok {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return id.Name
		}
	}
	return "a composite expression"
}
