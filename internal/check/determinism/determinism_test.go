package determinism_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/determinism"
)

// TestDeterminism exercises the wall-clock, global-rand, and map-order
// checks on the "core" fixture, and the package-scope gate on "other"
// (same constructs, zero diagnostics expected).
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "core", "other")
}
