// Package sharedstate defines an analyzer that enforces the sharding
// discipline of the work-stealing scheduler (internal/sim) and the
// batched engine (internal/engine): a worker goroutine owns its engine,
// source, and obs registry, and the only state it may share with other
// goroutines is its result slot (out[i] addressed by a worker-local
// index), atomics, and mutex-guarded fields. Everything the
// differential gate proves about RunUnits — bit-identical results
// regardless of steal interleaving — rests on that ownership rule, so
// the analyzer rejects the ways it has historically been broken:
//
//   - a goroutine closure that reads an iteration variable of an
//     enclosing loop instead of taking it as an argument (the classic
//     captured-loop-variable race; Go 1.22 made it per-iteration, but
//     the scheduler's discipline is explicit hand-off);
//   - a goroutine closure that assigns to a variable declared outside
//     it. The two sanctioned shapes are a result slot — an element of a
//     captured slice or map addressed only through worker-local
//     indices — and a write issued after a mutex Lock in the same
//     closure;
//   - taking the address of captured state inside a goroutine other
//     than a result slot (&out[i] with a worker-local index);
//   - a send on a provably unbuffered channel outside a select: the
//     scheduler's sanctioned pattern pairs every handoff send with a
//     cancellation case, so a worker that died cannot wedge the feeder.
//
// The analyzer is intentionally shallow across calls: a closure that
// mutates shared state inside a helper it calls is caught when that
// helper's own package is checked, not at the call site. Intentional
// departures use //zbp:allow sharedstate <reason>.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "sharedstate"

// Analyzer is the sharedstate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "goroutines in the scheduler and engine may touch only worker-local state, " +
		"result slots, atomics, and mutex-guarded fields",
	Run: run,
}

// InScope reports whether the analyzer checks the package: the shard
// scheduler (sim) and the batched engine (engine).
func InScope(pkgPath string) bool {
	switch directive.PkgLastElem(pkgPath) {
	case "sim", "engine":
		return true
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	allows := directive.CollectAllows(pass, name)
	for _, f := range pass.Files {
		loopVars := collectLoopVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					checkGoroutine(pass, allows, lit, loopVars)
				}
			}
			return true
		})
		checkSends(pass, allows, f)
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// collectLoopVars maps every per-iteration variable object declared by
// a for/range clause in the file to its loop statement.
func collectLoopVars(pass *analysis.Pass, f *ast.File) map[types.Object]ast.Stmt {
	out := make(map[types.Object]ast.Stmt)
	def := func(e ast.Expr, loop ast.Stmt) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = loop
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				def(n.Key, n)
				def(n.Value, n)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					def(lhs, n)
				}
			}
		}
		return true
	})
	return out
}

// localTo reports whether the object is declared within the node's
// source extent (parameters and body locals of a closure both qualify).
func localTo(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// checkGoroutine applies the ownership rules to one go-statement
// closure (nested literals — deferred snapshot publishes and the like —
// are part of the same goroutine and are walked as its body).
func checkGoroutine(pass *analysis.Pass, allows *directive.AllowSet, lit *ast.FuncLit, loopVars map[types.Object]ast.Stmt) {
	reported := make(map[types.Object]bool) // one capture report per variable per goroutine
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || localTo(obj, lit) || reported[obj] {
				return true
			}
			if loop, isLoopVar := loopVars[obj]; isLoopVar && within(lit, loop) {
				reported[obj] = true
				allows.Report(pass, n,
					"goroutine captures iteration variable %s of the enclosing loop; pass it as a call argument so each worker owns its copy", obj.Name())
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := always binds fresh closure-local objects
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, allows, lit, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(pass, allows, lit, n.X, n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				checkAddr(pass, allows, lit, n)
			}
		}
		return true
	})
}

// within reports whether node n lies inside container's extent.
func within(n, container ast.Node) bool {
	return n.Pos() >= container.Pos() && n.End() <= container.End()
}

// checkWrite classifies one assignment target inside a goroutine.
func checkWrite(pass *analysis.Pass, allows *directive.AllowSet, lit *ast.FuncLit, lhs ast.Expr, at token.Pos) {
	base, viaIndex, localIdx := lvalueShape(pass, lit, lhs)
	if base == nil {
		return
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil || localTo(obj, lit) {
		return // worker-local state
	}
	if viaIndex && localIdx {
		return // sanctioned result slot: captured[workerLocalIndex] = ...
	}
	if lockedBefore(pass, lit, at) {
		return // mutex-guarded region
	}
	what := "shared variable " + obj.Name()
	if viaIndex {
		what = obj.Name() + "[...] through a non-worker-local index"
	}
	allows.Report(pass, lhs,
		"goroutine writes %s; route results through a worker-owned slot (a captured slice element addressed by a worker-local index), an atomic, or a mutex held in this goroutine", what)
}

// checkAddr flags &captured and &captured.field inside a goroutine;
// &captured[workerLocalIndex] is the sanctioned result-slot address.
func checkAddr(pass *analysis.Pass, allows *directive.AllowSet, lit *ast.FuncLit, ue *ast.UnaryExpr) {
	base, viaIndex, localIdx := lvalueShape(pass, lit, ue.X)
	if base == nil {
		return
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil || localTo(obj, lit) {
		return
	}
	if viaIndex && localIdx {
		return
	}
	allows.Report(pass, ue,
		"goroutine takes the address of shared %s; only &slice[i] with a worker-local index is a sanctioned result slot", obj.Name())
}

// lvalueShape peels an lvalue to its base identifier, reporting whether
// the path goes through an index expression and, if so, whether every
// index mentions only literal-local objects or constants.
func lvalueShape(pass *analysis.Pass, lit *ast.FuncLit, e ast.Expr) (base *ast.Ident, viaIndex, localIdx bool) {
	localIdx = true
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil, false, false
			}
			return x, viaIndex, localIdx
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			viaIndex = true
			if !indexIsLocal(pass, lit, x.Index) {
				localIdx = false
			}
			e = x.X
		default:
			return nil, false, false
		}
	}
}

// indexIsLocal reports whether every identifier in the index expression
// is declared inside the goroutine literal or is a constant.
func indexIsLocal(pass *analysis.Pass, lit *ast.FuncLit, idx ast.Expr) bool {
	ok := true
	ast.Inspect(idx, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || !ok {
			return ok
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true
		}
		if !localTo(obj, lit) {
			ok = false
		}
		return ok
	})
	return ok
}

// lockedBefore reports whether the goroutine literal contains a
// sync.Mutex/RWMutex Lock call positioned before at — the coarse
// "mutex-guarded" exemption. It deliberately does not match Lock/Unlock
// pairs; a goroutine that locks at all is presumed to know what it
// guards, and the race detector gate covers the rest.
func lockedBefore(pass *analysis.Pass, lit *ast.FuncLit, at token.Pos) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= at {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			(fn.Name() == "Lock" || fn.Name() == "RLock") &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkSends flags sends on provably unbuffered channels that are not a
// select case: outside the select-with-cancellation pattern a blocked
// receiver wedges the sender forever.
func checkSends(pass *analysis.Pass, allows *directive.AllowSet, f *ast.File) {
	// Sends that are the comm statement of a select case are sanctioned.
	inSelect := make(map[*ast.SendStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if s, ok := cc.Comm.(*ast.SendStmt); ok {
						inSelect[s] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok || inSelect[send] {
				return true
			}
			ch, ok := ast.Unparen(send.Chan).(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[ch]
			if obj == nil || !madeUnbuffered(pass, fd, obj) {
				return true
			}
			allows.Report(pass, send,
				"send on unbuffered channel %s outside a select can block forever; use select { case %s <- v: case <-ctx.Done(): }", ch.Name, ch.Name)
			return true
		})
		return false // already walked the body
	})
}

// madeUnbuffered reports whether obj is assigned make(chan T) with no
// capacity argument somewhere in fn — the only case the analyzer can
// prove unbuffered without cross-function tracking.
func madeUnbuffered(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	unbuffered := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lobj := pass.TypesInfo.Defs[id]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[id]
			}
			if lobj != obj {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fun.Name == "make" {
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					unbuffered = true
				}
			}
		}
		return true
	})
	return unbuffered
}
