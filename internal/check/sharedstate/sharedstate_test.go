package sharedstate_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/sharedstate"
)

// TestSharedState exercises the scheduler's sanctioned goroutine shapes
// (argument hand-off, worker-owned result slots, mutex-guarded writes,
// select-paired sends) and every flagged ownership violation: captured
// loop variables, shared writes, leaked addresses, and bare sends on
// unbuffered channels.
func TestSharedState(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedstate.Analyzer, "sharded/sim")
}
