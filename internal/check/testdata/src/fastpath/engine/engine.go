// Package engine mirrors the real engine's bulk fast path: the anchor
// rule pins //zbp:inert on every stepBulkOK eligibility predicate, and
// cross-package callees are proven through facts exported when
// fastpath/lib was analyzed.
package engine

import (
	"fastpath/lib"
)

// Engine is a stand-in engine with a bulk fast path.
type Engine struct {
	cur   uint64
	calls int
}

// stepBulkOK is the annotated anchor: reads, conversions, and inert
// callees (in-package and cross-package) only.
//
//zbp:inert
func (e *Engine) stepBulkOK(addr uint64) bool {
	if lib.Align(addr, 64) != e.cur {
		return false
	}
	return rowOf(addr) == e.cur
}

// rowOf forwards to an inert cross-package callee.
//
//zbp:inert
func rowOf(addr uint64) uint64 { return lib.RowBase(addr) }

// Bare is a second engine whose eligibility predicate lost its
// annotation; the anchor rule refuses to let the proof root disappear.
type Bare struct{ cur uint64 }

func (b *Bare) stepBulkOK(addr uint64) bool { // want `bulk fast-path eligibility predicate stepBulkOK must be annotated //zbp:inert`
	return addr == b.cur
}

// CrossBad calls a cross-package function that exported no inert fact.
//
//zbp:inert
func CrossBad(addr uint64) uint64 {
	return lib.Touch(addr) // want `inert function CrossBad calls lib.Touch, which is not annotated //zbp:inert in its own package`
}

// Mutates writes through its pointer receiver.
//
//zbp:inert
func (e *Engine) Mutates() {
	e.calls++ // want `inert function Mutates writes e.calls through a pointer`
}

//zbp:allow inertpath stale escape hatch // want `unused //zbp:allow inertpath`
