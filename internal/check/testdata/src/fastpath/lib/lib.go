// Package lib mirrors zaddr: the pure address helpers the engine's
// bulk eligibility scan calls across a package boundary. Its inert
// annotations become analysis facts that the fastpath/engine fixture
// imports.
package lib

// Align truncates a to a multiple of n (n must be a power of two).
// Contract assertions may panic: they abort, they do not mutate.
//
//zbp:inert
func Align(a, n uint64) uint64 {
	if n == 0 || n&(n-1) != 0 {
		panic("lib: Align size must be a power of two")
	}
	return a &^ (n - 1)
}

// RowBase is inert and calls another inert function in-package.
//
//zbp:inert
func RowBase(a uint64) uint64 { return Align(a, 32) }

// Touch is deliberately unannotated; inert callers anywhere must be
// flagged.
func Touch(a uint64) uint64 { return a + 1 }

var counter int

// Count mutates package state behind an inert claim.
//
//zbp:inert
func Count() {
	counter++ // want `inert function Count assigns to counter, declared outside the function`
}

// Bad calls a same-package function that is not annotated.
//
//zbp:inert
func Bad(a uint64) uint64 {
	return Touch(a) // want `inert function Bad calls Touch, which is not annotated //zbp:inert`
}

// Sums shows the accepted vocabulary: locals, len, conversions,
// indexed reads, and inert callees.
//
//zbp:inert
func Sums(xs [4]uint64) uint64 {
	total := uint64(0)
	for i := 0; i < len(xs); i++ {
		total += RowBase(xs[i])
	}
	return total
}

// Src is a trace-source stand-in.
type Src interface{ Next() uint64 }

// Iface calls through an interface, which cannot be proven inert.
//
//zbp:inert
func Iface(s Src) uint64 {
	return s.Next() // want `inert function Iface calls interface method Next`
}

// Closures split the proof across a literal the analyzer will not
// follow.
//
//zbp:inert
func Closures() func() {
	return func() {} // want `inert function Closures declares a function literal`
}

// Defers schedules work past the scan.
//
//zbp:inert
func Defers(c chan int) {
	defer close(c) // want `inert function Defers defers a call` `inert function Defers calls builtin close`
}

// Allowed departs intentionally; the escape hatch suppresses the
// write.
//
//zbp:inert
func Allowed() {
	//zbp:allow inertpath fixture exercises the escape hatch
	counter++
}
