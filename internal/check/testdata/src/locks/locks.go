// Package locks exercises the lockorder analyzer inside one package:
// self-deadlocks, blocking under a held mutex (directly and through an
// unannotated helper), the //zbp:locked sanctioning forms, and a
// same-package acquisition-order cycle closed through a
// //zbp:caller-holds contract.
package locks

import (
	"os"
	"sync"
)

type box struct {
	mu    sync.Mutex
	other sync.Mutex
	ch    chan int
	f     *os.File
}

func (b *box) relock() {
	b.mu.Lock()
	b.mu.Lock() // want `relock acquires locks\.box\.mu while already holding it`
	b.mu.Unlock()
	b.mu.Unlock()
}

func (b *box) sendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want `sendUnderLock blocks \(channel send\) while holding locks\.box\.mu`
	b.mu.Unlock()
}

func (b *box) recvAfterUnlock() int {
	b.mu.Lock()
	b.mu.Unlock()
	return <-b.ch // fine: the mutex is released before the receive
}

func (b *box) syncUnderLock() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Sync() // want `syncUnderLock blocks \(file Sync\) while holding locks\.box\.mu`
}

func (b *box) waitUnderLock(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want `waitUnderLock blocks \(sync Wait\) while holding locks\.box\.mu`
	b.mu.Unlock()
}

func (b *box) sanctioned() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//zbp:locked the fsync is the critical section: the record must be durable before the lock is released
	return b.f.Sync()
}

// docSanctioned is the whole-function form: every blocking operation in
// the body is sanctioned and callers do not inherit the blocking
// summary (the jobq append idiom — the caller owns the lock, the helper
// owns the durable write).
//
//zbp:locked append-then-fsync inside the lock is the journal's durability contract
//zbp:caller-holds mu
func (b *box) docSanctioned() error {
	if _, err := b.f.Write([]byte("x")); err != nil {
		return err
	}
	return b.f.Sync()
}

func (b *box) callsDocSanctioned() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.docSanctioned() // fine: docSanctioned's blocking is sanctioned where it lives
}

// blockyHelper blocks but holds nothing itself; the finding belongs to
// whoever calls it with a lock held.
func (b *box) blockyHelper() {
	b.ch <- 2
}

func (b *box) callsBlockyUnderLock() {
	b.mu.Lock()
	b.blockyHelper() // want `callsBlockyUnderLock calls blockyHelper, which blocks \(channel send\), while holding locks\.box\.mu`
	b.mu.Unlock()
}

func (b *box) wakeIdiom() {
	b.mu.Lock()
	select { // fine: a default clause never blocks
	case b.ch <- 1:
	default:
	}
	b.mu.Unlock()
}

func (b *box) selectUnderLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `selectUnderLock blocks \(select with no default\) while holding locks\.box\.mu`
	case v := <-b.ch:
		return v
	}
}

// holdsEntry runs with mu already held per its contract, so taking
// other nests other under mu.
//
//zbp:caller-holds mu
func (b *box) holdsEntry() {
	b.other.Lock() // want `lock acquisition order cycle: locks\.box\.mu -> locks\.box\.other -> locks\.box\.mu`
	b.other.Unlock()
}

// inverted nests mu under other — the opposite order, closing the cycle
// reported at the first edge above.
func (b *box) inverted() {
	b.other.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	b.other.Unlock()
}

func harmless() int {
	//zbp:locked stale reason // want `unused //zbp:locked: no blocking operation`
	return 2 + 2
}

//zbp:locked
func (b *box) docMalformed() { // want `malformed //zbp:locked on docMalformed`
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 3
}

//zbp:locked nothing in this body blocks
func docUnused() int { // want `unused //zbp:locked on docUnused`
	return 1
}

type rw struct {
	mu sync.RWMutex
	n  int
}

// doubleRead: RLock under RLock is legal (read locks are shared).
func (r *rw) doubleRead() int {
	r.mu.RLock()
	v := r.n
	r.mu.RLock()
	v += r.n
	r.mu.RUnlock()
	r.mu.RUnlock()
	return v
}
