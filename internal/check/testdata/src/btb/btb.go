// Package btb is a fixture stub mirroring the real
// bulkpreload/internal/btb Config surface the bitrange analyzer's
// geometry check recognizes (matched by package-path last element).
package btb

// Config fixes a table's geometry.
type Config struct {
	Name    string
	Rows    int
	Ways    int
	IndexHi uint
	IndexLo uint
	TagBits uint
}
