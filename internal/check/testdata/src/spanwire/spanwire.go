// Package spanwire is the obsreg-analyzer span fixture: in a package
// that imports the span tracer, structs with //zbp:hotpath methods must
// declare a *span.Recorder field (or carry an allow), and unexported
// recorder fields must be assigned somewhere in the package.
package spanwire

import "span"

// traced declares hot paths and a wired recorder: compliant.
type traced struct {
	spans *span.Recorder
	n     int64
}

// SetSpans wires the recorder; nil keeps tracing disabled.
func (t *traced) SetSpans(r *span.Recorder) { t.spans = r }

//zbp:hotpath
func (t *traced) Step() {
	t.spans.Start()
	t.n++
}

// untraced has a hot path but no recorder field: flagged.
type untraced struct { // want `struct untraced has //zbp:hotpath methods but declares no \*span.Recorder field`
	n int64
}

//zbp:hotpath
func (u *untraced) Step() { u.n++ }

// exempt opts out explicitly: its spans come from a wrapping source.
//
//zbp:allow obsreg wrapped by traced, which records the spans
type exempt struct {
	n int64
}

//zbp:hotpath
func (e *exempt) Step() { e.n++ }

// dangling declares a recorder nothing in the package ever assigns.
type dangling struct {
	spans *span.Recorder // want `span recorder field dangling.spans is never assigned in this package`
	n     int64
}

//zbp:hotpath
func (d *dangling) Step() { d.n++ }

// Params carries an exported recorder wired by callers in other
// packages (like engine.Params.Spans): exempt from the wiring rule.
type Params struct {
	Spans *span.Recorder
	N     int64
}

// literalWired is assigned through a composite literal, which counts.
type literalWired struct {
	spans *span.Recorder
	n     int64
}

//zbp:hotpath
func (l *literalWired) Step() { l.n++ }

func newLiteralWired(r *span.Recorder) *literalWired {
	return &literalWired{spans: r}
}

// cold has no hot paths, so it needs no recorder.
type cold struct {
	n int64
}

func (c *cold) Step() { c.n++ }
