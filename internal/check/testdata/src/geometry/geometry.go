// Package geometry is the bitrange-analyzer fixture: zaddr.Bits /
// SetBits constant ranges, btb.Config declared geometry, and raw
// shift/mask arithmetic on zaddr.Addr.
package geometry

import (
	"btb"
	"zaddr"
)

const btb1Hi, btb1Lo = 49, 58

func ranges(a zaddr.Addr, hi uint) {
	_ = zaddr.Bits(a, 49, 58)           // ok: the BTB1 index range
	_ = zaddr.Bits(a, btb1Hi, btb1Lo)   // ok: constants propagate through names
	_ = zaddr.Bits(a, 58, 49)           // want `zaddr bit range 58:49 has hi > lo`
	_ = zaddr.Bits(a, 10, 70)           // want `zaddr bit range 10:70 is out of range: lo must be <= 63`
	_ = zaddr.SetBits(a, 58, 49, 1)     // want `zaddr bit range 58:49 has hi > lo`
	_ = zaddr.Bits(a, hi, 58)           // ok: hi is not a compile-time constant
	_ = zaddr.SetBits(a, 47, 58, 0xFFF) // ok: the BTB2 index range
}

var (
	good       = btb.Config{Name: "BTB1", Rows: 1024, Ways: 4, IndexHi: 49, IndexLo: 58}
	tooFewRows = btb.Config{Name: "BTB1", Rows: 512, Ways: 4, IndexHi: 49, IndexLo: 58} // want `btb.Config geometry mismatch: index bits 49:58 address 1024 rows but Rows is 512`
	swapped    = btb.Config{Name: "X", Rows: 1024, Ways: 4, IndexHi: 58, IndexLo: 49}   // want `btb.Config index range 58:49 is invalid`
)

func raw(a zaddr.Addr) uint64 {
	return uint64(a) >> 4 // want `raw ">>" arithmetic on a zaddr.Addr bypasses the zaddr bit-geometry helpers`
}

func rawMask(a zaddr.Addr) zaddr.Addr {
	return a & 31 // want `raw "&" arithmetic on a zaddr.Addr bypasses the zaddr bit-geometry helpers`
}

func viaHelpers(a zaddr.Addr) zaddr.Addr {
	return zaddr.RowBase(a) // ok: named helper keeps geometry auditable
}

func allowedFold(a zaddr.Addr) uint64 {
	//zbp:allow bitrange hash folding, not index geometry
	return uint64(a) >> 4
}

//zbp:allow bitrange stale escape hatch // want `unused //zbp:allow bitrange`
func nothingToAllow() int { return 1 }

// packedLane is bound to a //zbp:layout: the packlayout analyzer owns
// its shift/mask geometry, so the raw-arithmetic rule stands down
// without an allow escape.
//
//zbp:layout lane pack
func packedLane(a zaddr.Addr) uint64 {
	return uint64(a)>>4 | uint64(a&31)<<58 // ok: checked field-by-field by packlayout
}
