// Package guarded exercises the guardedby analyzer: guarded-field
// accesses with and without the mutex, the //zbp:caller-holds contract
// and its validation, annotation validation (a name that is not a
// mutex), the constructor //zbp:allow idiom, and unlock-on-all-paths
// over the manual early-unlock ladder.
package guarded

import "sync"

type box struct {
	mu sync.Mutex
	// n is the guarded payload.
	//
	//zbp:guardedby mu
	n int
}

func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++ // fine: mu is held
}

func (b *box) peek() int {
	return b.n // want `peek accesses box\.n without holding guarded\.box\.mu \(//zbp:guardedby mu\); lock it here or annotate the function //zbp:caller-holds mu`
}

// peekLocked runs under the caller's lock per its contract.
//
//zbp:caller-holds mu
func (b *box) peekLocked() int {
	return b.n // fine: the caller holds mu
}

func (b *box) viaContract() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peekLocked()
}

// newBox writes the guarded field before the value is shared; the
// allow records why that is safe.
func newBox() *box {
	b := &box{}
	//zbp:allow guardedby constructor write before the value escapes
	b.n = 1
	return b
}

// ladder is the manual early-unlock-and-return shape the defer idiom
// cannot express; every path releases, so nothing is reported.
func (b *box) ladder(fast bool) int {
	b.mu.Lock()
	if fast {
		v := b.n
		b.mu.Unlock()
		return v
	}
	b.n++
	v := b.n
	b.mu.Unlock()
	return v
}

// leaky forgets the early path's unlock.
func (b *box) leaky(fast bool) int {
	b.mu.Lock()
	if fast {
		return 0 // want `leaky can exit with guarded\.box\.mu still held \(locked at line \d+\); unlock on every path or defer the unlock`
	}
	v := b.n
	b.mu.Unlock()
	return v
}

//zbp:caller-holds
func (b *box) bareHolds() int { // want `malformed //zbp:caller-holds on bareHolds: want //zbp:caller-holds <mutex>`
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

//zbp:caller-holds nosuch
func (b *box) badHolds() int { // want `//zbp:caller-holds on badHolds names "nosuch", which is neither a sync mutex field of the receiver nor a package-level sync var`
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

type badbox struct {
	mu sync.Mutex
	n  int //zbp:guardedby lock // want `//zbp:guardedby names "lock", which is not a sync mutex field of badbox`
}
