// Package sim exercises the sharedstate analyzer: the scheduler's
// sanctioned worker shapes (argument hand-off, worker-owned result
// slots, mutex-guarded regions, select-paired sends) pass, and the
// historical ways the ownership rule has been broken are flagged.
package sim

import (
	"context"
	"sync"
)

// workers is the sanctioned shape: hand-off by argument, results
// through worker-owned slots, join by WaitGroup.
func workers(out []int) {
	var wg sync.WaitGroup
	for w := 0; w < len(out); w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out[id] = id * id
		}(w)
	}
	wg.Wait()
}

// capturesLoop reads the iteration variable inside the closure instead
// of taking it as an argument.
func capturesLoop(out []int) {
	for w := 0; w < len(out); w++ {
		go func() {
			out[w] = w // want `captures iteration variable w` `through a non-worker-local index`
		}()
	}
}

// sharedCounter increments a captured variable with no guard.
func sharedCounter() int {
	total := 0
	done := make(chan bool, 1)
	go func() {
		total++ // want `goroutine writes shared variable total`
		done <- true
	}()
	<-done
	return total
}

// guarded writes captured state under a mutex taken in the same
// goroutine; accepted.
func guarded(mu *sync.Mutex, total *int, done chan<- struct{}) {
	go func() {
		mu.Lock()
		defer mu.Unlock()
		*total = *total + 1
		done <- struct{}{}
	}()
}

// slotAddr takes the address of its own result slot; accepted.
func slotAddr(out []int, w int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(id int) {
		defer wg.Done()
		p := &out[id]
		*p = 7
	}(w)
	wg.Wait()
}

// leaksAddress hands out a pointer to state the goroutine does not own.
func leaksAddress(sink chan<- *int) {
	counter := 0
	go func() {
		sink <- &counter // want `takes the address of shared counter`
	}()
}

// feeds sends on an unbuffered channel with no cancellation case: a
// dead consumer wedges the feeder forever.
func feeds(n int) {
	next := make(chan int)
	go drain(next)
	for i := 0; i < n; i++ {
		next <- i // want `send on unbuffered channel next outside a select`
	}
	close(next)
}

// feedsWithCancel pairs every hand-off with cancellation; accepted.
func feedsWithCancel(ctx context.Context, n int) {
	next := make(chan int)
	defer close(next)
	go drain(next)
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			return
		}
	}
}

func drain(c chan int) {
	for range c {
	}
}

//zbp:allow sharedstate stale escape hatch // want `unused //zbp:allow sharedstate`

// allowed departs intentionally; the escape hatch suppresses it.
func allowed() int {
	hits := 0
	done := make(chan bool, 1)
	go func() {
		//zbp:allow sharedstate fixture exercises the escape hatch
		hits++
		done <- true
	}()
	<-done
	return hits
}
