// Package metrics is the obsreg-analyzer fixture: every obs metric
// field declared in a struct must reach a Registry method by address.
package metrics

import "obs"

type counters struct {
	hits    obs.Counter
	misses  obs.Counter // want `metric field counters.misses \(obs.Counter\) is never registered`
	depth   obs.Gauge
	stale   obs.Gauge // want `metric field counters.stale \(obs.Gauge\) is never registered`
	lat     obs.Histogram
	scratch obs.Counter //zbp:allow obsreg test-only scratch counter, never exported
}

type tracker struct {
	met counters
}

// RegisterMetrics wires the counters into the registry; misses and
// stale are deliberately omitted.
func (t *tracker) RegisterMetrics(r *obs.Registry) {
	r.Counter("hits_total", "ops", "demand hits", &t.met.hits)
	r.Gauge("depth", "entries", "queue depth", &t.met.depth)
	r.Histogram("latency_cycles", "cycles", "completion latency", &t.met.lat)
	t.met.hits.Inc()
}

//zbp:allow obsreg stale escape hatch // want `unused //zbp:allow obsreg`
func nothingToAllow() int { return 1 }
