// Package hot is the hotalloc-analyzer fixture: allocating constructs
// inside //zbp:hotpath functions are flagged; the same constructs in
// unannotated functions are not.
package hot

import "fmt"

type state struct {
	buf []int
	n   int
}

//zbp:hotpath
func (s *state) growInPlace(v int) {
	s.buf = append(s.buf, v) // ok: x = append(x, ...) amortizes into the buffer
	s.n += v
}

//zbp:hotpath
func (s *state) reuseBacking() {
	s.buf = append(s.buf[:0], 1, 2, 3) // ok: reslice of the same backing array
}

//zbp:hotpath
func growsOther(dst, src []int) []int {
	dst = append(dst, 1)  // ok
	out := append(src, 1) // want `appends into a different slice than it grows`
	return out
}

//zbp:hotpath
func concat(a, b string) string {
	return a + b // want `concatenates strings`
}

//zbp:hotpath
func constConcat() string {
	return "a" + "b" // ok: folded to a constant at compile time
}

//zbp:hotpath
func toString(b []byte) string {
	return string(b) // want `converts to string`
}

//zbp:hotpath
func builders(n int) {
	m := make(map[int]int, n) // want `calls make`
	_ = m
	p := new(int) // want `calls new`
	_ = p
	fmt.Println("fixed") // want `calls fmt.Println`
}

//zbp:hotpath
func literals() {
	s := []int{1, 2} // want `builds a slice literal`
	_ = s
	m := map[int]int{1: 2} // want `builds a map literal`
	_ = m
	p := &state{} // want `takes the address of a composite literal`
	_ = p
	v := state{} // ok: value struct literal stays on the stack
	_ = v
}

//zbp:hotpath
func closure() func() {
	return func() {} // want `declares a function literal`
}

func helper() {}

//zbp:hotpath
func control() {
	defer helper() // want `defers a call`
	go helper()    // want `starts a goroutine`
}

//zbp:hotpath
func boxing(v int, p *state) {
	var i interface{}
	i = v // want `converts non-pointer int to interface`
	i = p // ok: pointers box without copying to the heap
	_ = i
}

//zbp:hotpath
func lazyInit(s *state) {
	if s.buf == nil {
		//zbp:allow hotalloc one-time lazy initialization, amortized to zero
		s.buf = make([]int, 0, 64)
	}
}

// cold is unannotated: the same constructs draw no diagnostics.
func cold(n int) []int {
	out := make([]int, 0, n)
	fmt.Println(n)
	return append(out, n)
}

//zbp:allow hotalloc stale escape hatch // want `unused //zbp:allow hotalloc`
func nothingToAllow() int { return 1 }
