// Package zaddr is a fixture stub mirroring the real
// bulkpreload/internal/zaddr surface the bitrange analyzer recognizes
// (matched by package-path last element, so this stub behaves exactly
// like the real package). The analyzer skips the package body itself.
package zaddr

// Addr is a 64-bit instruction address.
type Addr uint64

// Bits extracts big-endian bit range hi..lo (bit 0 = MSB).
func Bits(a Addr, hi, lo uint) uint64 {
	width := lo - hi + 1
	shift := 63 - lo
	if width == 64 {
		return uint64(a)
	}
	return (uint64(a) >> shift) & ((1 << width) - 1)
}

// SetBits returns a with big-endian bit range hi..lo replaced by v.
func SetBits(a Addr, hi, lo uint, v uint64) Addr {
	width := lo - hi + 1
	shift := 63 - lo
	var mask uint64
	if width == 64 {
		mask = ^uint64(0)
	} else {
		mask = ((1 << width) - 1) << shift
	}
	return Addr((uint64(a) &^ mask) | ((v << shift) & mask))
}

// RowBase returns the lowest address of the 32-byte row containing a.
func RowBase(a Addr) Addr { return a &^ 31 }
