// Package cell owns an exported guarded field; the guard travels to
// importers as an object fact keyed by the exported field.
package cell

import "sync"

type Box struct {
	Mu sync.Mutex
	// N is the shared counter.
	//
	//zbp:guardedby Mu
	N int
}

// Add is the package's own locked accessor.
func (b *Box) Add(d int) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.N += d
}
