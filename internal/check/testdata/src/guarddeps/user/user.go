// Package user accesses cell.Box.N from outside its package; the
// guard is known only through the imported object fact.
package user

import "guarddeps/cell"

func Read(b *cell.Box) int {
	return b.N // want `Read accesses N without holding cell\.Box\.Mu \(//zbp:guardedby Mu\); lock it here or annotate the function //zbp:caller-holds Mu`
}

func ReadLocked(b *cell.Box) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.N // fine: the mutex named by the fact is held
}
