// Package sim is the erring-analyzer fixture: its path ends in "sim",
// putting it in the analyzer's scope, and calls within the package
// count as module-internal.
package sim

import (
	"errors"
	"fmt"
)

func fallible() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

func run() {
	fallible()      // want `result of fallible contains an error that is silently discarded`
	_ = fallible()  // want `error result of fallible is assigned to _`
	v, _ := value() // want `error result of value is assigned to _`
	_ = v
	if err := fallible(); err != nil { // ok: handled
		fmt.Println(err)
	}
	w, err := value() // ok: error bound to a variable
	_, _ = w, err
	fmt.Println("hello") // ok: stdlib calls are out of contract
	//zbp:allow erring best-effort cleanup on shutdown
	fallible()
}

func cleanup() {
	defer fallible() // want `result of fallible contains an error that is silently discarded`
}

//zbp:allow erring stale escape hatch // want `unused //zbp:allow erring`
func handled() error { return fallible() }
