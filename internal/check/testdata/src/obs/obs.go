// Package obs is a fixture stub mirroring the real
// bulkpreload/internal/obs surface the obsreg analyzer recognizes
// (matched by package-path last element). The analyzer skips the
// package body itself.
package obs

// Counter is a monotonically increasing metric.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Gauge is a point-in-time level metric.
type Gauge struct{ v int64 }

// Histogram is a bucketed distribution metric.
type Histogram struct{ buckets []int64 }

// Registry enumerates metrics for snapshots and exporters.
type Registry struct{}

// Counter registers a counter by address.
func (r *Registry) Counter(name, unit, help string, c *Counter) {}

// Gauge registers a gauge by address.
func (r *Registry) Gauge(name, unit, help string, g *Gauge) {}

// Histogram registers a histogram by address.
func (r *Registry) Histogram(name, unit, help string, h *Histogram) {}
