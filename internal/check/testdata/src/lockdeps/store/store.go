// Package store is the dependency half of the cross-package lock-order
// fixture: it owns two package-level mutexes, exports per-function
// acquisition facts (Get takes Mu), and contributes the
// store.Mu -> store.Mu2 edge to its package lock-graph fact.
package store

import "sync"

var (
	// Mu guards the primary map; Mu2 guards the overflow index.
	Mu  sync.Mutex
	Mu2 sync.Mutex

	hits int
)

// Get reads the store under Mu.
func Get() int {
	Mu.Lock()
	defer Mu.Unlock()
	hits++
	return hits
}

// Both nests Mu2 under Mu — the ordering every importer inherits
// through this package's lock-graph fact.
func Both() int {
	Mu.Lock()
	defer Mu.Unlock()
	Mu2.Lock()
	defer Mu2.Unlock()
	return hits
}
