// Package svc closes a cross-package acquisition-order cycle: it nests
// store.Get — whose store.Mu acquisition is known only through the
// exported lock fact — under store.Mu2, inverting the
// store.Mu -> store.Mu2 order carried by the dependency's package
// lock-graph fact.
package svc

import "lockdeps/store"

// Flush acquires store.Mu2 and then calls into the store, which takes
// store.Mu.
func Flush() int {
	store.Mu2.Lock()
	defer store.Mu2.Unlock()
	return store.Get() // want `lock acquisition order cycle: store\.Mu2 -> store\.Mu -> store\.Mu2`
}
