// Package wire declares the frame layout that dependent packages
// restate; the declaration is exported as a package fact.
package wire

// The wire frame: a 4-bit kind below a 12-bit sequence number.
//
//zbp:layout frame word:16 kind:0..3 seq:4..15
const kindBits = 4

// Pack encodes a frame.
//
//zbp:layout frame pack
func Pack(kind, seq uint16) uint16 {
	return kind&0xF | (seq&0xFFF)<<kindBits
}
