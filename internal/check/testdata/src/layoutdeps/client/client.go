// Package client restates wire's frame layout and codes against it;
// every divergence from the declaring package's fact is reported, and
// role checks always run against wire's own spec.
package client

import "layoutdeps/wire"

var _ = wire.Pack

// The faithful restatement: accepted, verified field by field.
//
//zbp:layout wire.frame word:16 kind:0..3 seq:4..15
const clientKindBits = 4

// Diverging restatements: each line reports its own mismatch.
//
//zbp:layout wire.frame word:32 kind:0..3 seq:4..15 // want `layout wire\.frame declares word:32 here but 16 at wire's declaration`
//zbp:layout wire.frame word:16 kind:0..3 seq:4..14 // want `layout wire\.frame field "seq" is 4\.\.14 here but 4\.\.15 at wire's declaration`
//zbp:layout wire.frame word:16 kind:0..3 seq:4..15 extra:0..0 // want `layout wire\.frame adds field "extra", which wire's declaration does not have`
//zbp:layout wire.frame word:16 kind:0..3 // want `layout wire\.frame omits field "seq" \(4\.\.15 at wire's declaration\)`
//zbp:layout wire.nosuch word:8 x:0..7 // want `layout wire\.nosuch: package wire declares no //zbp:layout named "nosuch"`
//zbp:layout ghost.frame word:8 x:0..7 // want `layout ghost\.frame restates a layout from package "ghost", but no imported package of that name exports layout facts`
const _ = 0

// Unpack decodes a frame against the restated layout.
//
//zbp:layout wire.frame unpack
func Unpack(w uint16) (kind, seq uint16) {
	return w & 0xF, w >> clientKindBits
}

// Repack binds straight to the imported fact and gets the same body
// checks; the kind store here misses its boundary.
//
//zbp:layout wire.frame pack
func Repack(kind, seq uint16) uint16 { // want `pack site Repack never writes field "kind" of layout wire\.frame; pack and unpack have drifted apart`
	return (kind&0xF)<<1 | (seq&0xFFF)<<clientKindBits // want `bit 1 lands inside field "kind" \(bits 0\.\.3\) of layout wire\.frame but not on a field boundary — shift off by 1\?`
}
