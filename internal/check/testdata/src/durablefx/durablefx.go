// Package durablefx exercises the durable analyzer: the
// journal-before-mutate rule (directly and through same-package callee
// splices), the temp-file atomic-install sequence in every misordering,
// error-branch exemption, and the no-effect annotation check.
package durablefx

import "os"

type q struct {
	f *os.File
	n int
}

// goodJournal is the protocol done right: frame, write, fsync, and only
// then the in-memory transition.
//
//zbp:durable
func (q *q) goodJournal() error {
	if _, err := q.f.Write([]byte("x")); err != nil {
		return err
	}
	if err := q.f.Sync(); err != nil {
		return err
	}
	q.n++
	return nil
}

//zbp:durable
func (q *q) ackEarly() error {
	if _, err := q.f.Write([]byte("x")); err != nil {
		return err
	}
	q.n++ // want `ackEarly makes an in-memory state transition before the journal write reaches Sync; a crash here forgets state the caller may already observe`
	return q.f.Sync()
}

//zbp:durable
func (q *q) ackFirst() error {
	q.n++ // want `ackFirst makes an in-memory state transition with no synced journal write in this function; a //zbp:durable function must journal before it mutates`
	if _, err := q.f.Write([]byte("x")); err != nil {
		return err
	}
	return q.f.Sync()
}

//zbp:durable
func (q *q) lostWrite() error {
	if _, err := q.f.Write([]byte("x")); err != nil {
		return err
	}
	return nil // want `lostWrite can return with a journal write that never reached Sync; an acknowledged record would be lost on crash`
}

// writeRec is an unannotated helper; its write effect splices into
// durable callers by summary.
func writeRec(f *os.File) error {
	_, err := f.Write([]byte("r"))
	return err
}

// writeRecSynced carries the fsync with it.
func writeRecSynced(f *os.File) error {
	if _, err := f.Write([]byte("r")); err != nil {
		return err
	}
	return f.Sync()
}

//zbp:durable
func (q *q) applySpliced() error {
	if err := writeRecSynced(q.f); err != nil {
		return err
	}
	q.n++ // fine: the callee's Sync splices in ahead of the mutation
	return nil
}

//zbp:durable
func (q *q) applyUnsynced() error {
	if err := writeRec(q.f); err != nil {
		return err
	}
	q.n++ // want `applyUnsynced makes an in-memory state transition before the journal write reaches Sync`
	return q.f.Sync()
}

// installGood is the full atomic-install sequence: temp, write, Sync,
// Rename, directory Sync.
//
//zbp:durable
func installGood(dir string) error {
	t, err := os.CreateTemp(dir, "state-*")
	if err != nil {
		return err
	}
	if _, err := t.Write([]byte("s")); err != nil {
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	if err := os.Rename(t.Name(), dir+"/state"); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

//zbp:durable
func installTorn(dir string) error {
	t, err := os.CreateTemp(dir, "state-*")
	if err != nil {
		return err
	}
	if _, err := t.Write([]byte("s")); err != nil {
		return err
	}
	if err := os.Rename(t.Name(), dir+"/state"); err != nil { // want `installTorn renames the temp file before Sync; a crash after the rename can install a torn or empty file`
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

//zbp:durable
func installDirFirst(dir string) error {
	t, err := os.CreateTemp(dir, "state-*")
	if err != nil {
		return err
	}
	if _, err := t.Write([]byte("s")); err != nil {
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil { // want `installDirFirst syncs the directory before the rename; the directory entry being made durable does not exist yet`
		return err
	}
	if err := os.Rename(t.Name(), dir+"/state"); err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

//zbp:durable
func installNoDirSync(dir string) error {
	t, err := os.CreateTemp(dir, "state-*")
	if err != nil {
		return err
	}
	if _, err := t.Write([]byte("s")); err != nil {
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	if err := os.Rename(t.Name(), dir+"/state"); err != nil {
		return err
	}
	return nil // want `installNoDirSync can return without syncing the directory after the rename; the rename itself can be lost on crash`
}

//zbp:durable
func installNeverRenamed(dir string) error {
	t, err := os.CreateTemp(dir, "state-*")
	if err != nil {
		return err
	}
	if _, err := t.Write([]byte("s")); err != nil {
		return err
	}
	if err := t.Sync(); err != nil {
		return err
	}
	return nil // want `installNeverRenamed can return with the temp file synced but never renamed into place; the new state is never installed`
}

//zbp:durable
func noEffect() int { // want `noEffect is annotated //zbp:durable but has no durability-relevant effect \(no write, sync, rename, or state transition\); drop the annotation`
	return 42
}
