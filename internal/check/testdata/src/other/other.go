// Package other is a scope fixture: its path is neither a
// determinism-critical name, a cmd path, nor "sim", so the determinism
// and erring analyzers must report nothing here.
package other

import (
	"errors"
	"time"
)

func fallible() error { return errors.New("boom") }

func unchecked() int64 {
	fallible() // out of erring scope: not cmd/ or sim
	m := map[int]int{1: 2}
	s := 0
	var last int
	for k := range m { // out of determinism scope
		last = k
		s += k
	}
	_ = last
	return time.Now().Unix() + int64(s) // out of determinism scope
}
