// Package zsimd exercises the ctxflow analyzer over the service-daemon
// loop shapes: worker pools holding their context in a struct field,
// blocking dequeue loops, and drain loops. The service packages (jobq,
// zsimd, loadtest) joined the analyzer's scope when the daemon shipped
// — a wedged worker loop strands a drain exactly like a wedged sweep
// strands a simulation.
package zsimd

import "context"

type pool struct {
	ctx  context.Context
	jobs chan int
}

// worker observes the pool's context through a field selector;
// accepted.
func (p *pool) worker(run func(int)) {
	for {
		if p.ctx.Err() != nil {
			return
		}
		run(<-p.jobs)
	}
}

// dequeue pairs the channel receive with ctx.Done; accepted.
func (p *pool) dequeue() (int, bool) {
	for {
		select {
		case <-p.ctx.Done():
			return 0, false
		case j, ok := <-p.jobs:
			return j, ok
		}
	}
}

// replay documents its bound (journal EOF); accepted.
func replay(next func() (int, bool)) int {
	sum := 0
	//zbp:bounded terminates when the journal stream hits EOF
	for {
		v, ok := next()
		if !ok {
			return sum
		}
		sum += v
	}
}

// wedgedWorker neither observes the context nor documents a bound: the
// loop SIGTERM cannot stop.
func (p *pool) wedgedWorker(run func(int)) {
	for v := range p.jobs { // want `unbounded loop does not observe cancellation`
		run(v)
	}
}
