// Package sim exercises the ctxflow analyzer: loops with no statically
// evident bound must observe cancellation or carry //zbp:bounded, and a
// //zbp:bounded that exempts nothing is itself reported.
package sim

import "context"

// polls observes ctx.Err directly; accepted.
func polls(ctx context.Context, work func() bool) {
	for {
		if ctx.Err() != nil || !work() {
			return
		}
	}
}

// selects pairs every receive with ctx.Done; accepted.
func selects(ctx context.Context, next chan int) int {
	sum := 0
	for {
		select {
		case <-ctx.Done():
			return sum
		case v, ok := <-next:
			if !ok {
				return sum
			}
			sum += v
		}
	}
}

// drains documents its termination argument; accepted.
func drains(next chan int) int {
	sum := 0
	//zbp:bounded next is closed by the producer when the trace ends
	for v := range next {
		sum += v
	}
	return sum
}

// counts is bounded by its condition; conditional loops are out of
// scope, so no annotation is needed.
func counts(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

// wedges neither observes the context nor documents a bound.
func wedges(next chan int) int {
	sum := 0
	for v := range next { // want `unbounded loop does not observe cancellation`
		sum += v
	}
	return sum
}

// spins is the classic uninterruptible worker loop.
func spins(step func()) {
	for { // want `unbounded loop does not observe cancellation`
		step()
	}
}

// stale claims termination for a loop whose bound is already its
// condition: the annotation exempts nothing and must be deleted.
func stale(n int) int {
	sum := 0
	//zbp:bounded terminates at n iterations // want `unused //zbp:bounded`
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

//zbp:allow ctxflow stale escape hatch // want `unused //zbp:allow ctxflow`

// allowed departs intentionally; the escape hatch suppresses it.
func allowed(step func()) {
	//zbp:allow ctxflow run loop, interrupted by the signal handler in cmd
	for {
		step()
	}
}
