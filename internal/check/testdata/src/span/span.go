// Package span is a fixture stub mirroring the real
// bulkpreload/internal/obs/span surface the obsreg analyzer recognizes
// (matched by package-path last element). The analyzer skips the
// package body itself.
package span

// ID identifies a span within a trace.
type ID uint64

// Recorder collects span events for one worker goroutine; a nil
// Recorder is the zero-cost disabled path.
type Recorder struct{ seq uint64 }

// Start opens a span.
func (r *Recorder) Start() ID {
	if r == nil {
		return 0
	}
	r.seq++
	return ID(r.seq)
}
