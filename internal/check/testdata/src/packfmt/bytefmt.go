// Byte-granular formats: unit:byte layouts are checked against
// constant slice extents and the fixed-width binary codec calls.
package packfmt

// le stands in for encoding/binary's little-endian codec; only the
// call shapes matter to the analyzer.
type byteOrder struct{}

func (byteOrder) PutUint16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func (byteOrder) PutUint32(b []byte, v uint32) { b[0] = byte(v); b[3] = byte(v >> 24) }
func (byteOrder) Uint16(b []byte) uint16       { return uint16(b[0]) | uint16(b[1])<<8 }
func (byteOrder) Uint32(b []byte) uint32       { return uint32(b[0]) | uint32(b[3])<<24 }

var le byteOrder

// The frame header: a u16 kind then a u32 body size.
//
//zbp:layout frame word:frameSize unit:byte kind:0..1 size:2..5
const frameSize = 6

// packFrame encodes the header correctly.
//
//zbp:layout frame pack
func packFrame(buf []byte, kind uint16, size uint32) {
	le.PutUint16(buf[0:2], kind)
	le.PutUint32(buf[2:6], size)
}

// packFrameStraddle writes the size short and off its boundary.
//
//zbp:layout frame pack
func packFrameStraddle(buf []byte, kind uint16, size uint32) {
	le.PutUint16(buf[0:2], kind)
	le.PutUint16(buf[3:5], uint16(size)) // want `bytes 3\.\.4 overlap field "size" \(bytes 2\.\.5\) of layout frame without covering it exactly`
}

// unpackFrame decodes the header; the size read is one byte short,
// which both the codec-width rule and the field-extent rule catch.
//
//zbp:layout frame unpack
func unpackFrame(buf []byte) (uint16, uint32) {
	kind := le.Uint16(buf[0:2])
	size := le.Uint32(buf[2:5]) // want `Uint32 wants exactly 4 bytes but the slice spans bytes 2\.\.4 \(3 bytes\)` `bytes 2\.\.4 overlap field "size" \(bytes 2\.\.5\) of layout frame without covering it exactly`
	return kind, size
}
