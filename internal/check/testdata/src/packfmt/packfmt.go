// Package packfmt exercises the packlayout analyzer: declaration
// geometry, pack/unpack body checks against the declared shifts and
// widths, coverage drift, and byte-granular formats.
package packfmt

// The good layout the codec functions below bind to: a 2-bit
// direction, a use flag, and an 8-bit length in a 16-bit word.
//
//zbp:layout meta word:wordBits dir:dirShift..dirShift+1 use:useBit length:lenShift..lenShift+7
const (
	dirShift = 0
	useBit   = 2
	lenShift = 4
	wordBits = 16
)

// Bad declarations: each line reports its own geometry failure.
//
//zbp:layout overlap word:16 a:0..3 b:3..7 // want `layout overlap: fields a \(bits 0\.\.3\) and b \(bits 3\.\.7\) overlap`
//zbp:layout toowide word:8 big:0..9 // want `layout toowide field big \(bits 0\.\.9\) exceeds the 8-bit word`
//zbp:layout inverted word:8 b:5..2 // want `layout inverted field b: bounds 5\.\.2 are inverted`
//zbp:layout ghost word:16 x:vanishedConst..5 // want `layout ghost field x: references constant "vanishedConst", which does not exist in package packfmt`
//zbp:layout meta word:16 dir:0..1 length:4..11 use:2 // want `layout meta redeclared in package packfmt`
const _ = 0

// A role on a constant block has no body to check.
//
//zbp:layout meta pack // want `a pack/unpack role belongs on the codec function's doc comment, not a constant block`
const _ = 1

// A role naming a layout nobody declares.
//
//zbp:layout nosuch pack // want `no layout named "nosuch" is declared in this package or restatable from its imports`
func badRole(x uint64) uint64 { return x }

// packMeta is the well-formed pack site: every field written at its
// declared shift, every value provably within its field.
//
//zbp:layout meta pack
func packMeta(dir uint8, use bool, length uint8) uint64 {
	m := uint64(dir&3) | uint64(length)<<lenShift
	if use {
		m |= 1 << useBit
	}
	return m
}

// packWide stores an unmasked 64-bit value into the 8-bit length
// field.
//
//zbp:layout meta pack
func packWide(dir uint8, length uint64) uint64 {
	return uint64(dir&3) | length<<lenShift | 1<<useBit // want `packs a value up to 64 bits wide into the 8-bit field "length" of layout meta; mask the value so the store provably fits`
}

// packShifted writes the direction one bit too high: the boundary miss
// reports at the store, and the drift shows up as dir never written.
//
//zbp:layout meta pack
func packShifted(dir uint8, length uint8) uint64 { // want `pack site packShifted never writes field "dir" of layout meta; pack and unpack have drifted apart`
	m := uint64(length)<<lenShift | 1<<useBit
	m |= uint64(dir&3) << 1 // want `bit 1 lands inside field "dir" \(bits 0\.\.1\) of layout meta but not on a field boundary — shift off by 1\?`
	return m
}

// packAllowed carries a sanctioned over-wide store; the allow on the
// preceding line suppresses it.
//
//zbp:layout meta pack
func packAllowed(dir uint8, length uint64) uint64 {
	//zbp:allow packlayout length is range-checked by the caller
	return uint64(dir&3) | length<<lenShift | 1<<useBit
}

//zbp:allow packlayout nothing on this line needs an escape // want `unused //zbp:allow packlayout: no packlayout diagnostic on this or the next line; delete the stale escape hatch`

// unpackMeta is the well-formed unpack site.
//
//zbp:layout meta unpack
func unpackMeta(m uint64) (uint8, bool, uint8) {
	dir := uint8(m & 3)
	use := m&(1<<useBit) != 0
	length := uint8(m >> lenShift)
	return dir, use, length
}

// unpackOverRead reads the direction with a mask that lets the use bit
// leak into it.
//
//zbp:layout meta unpack
func unpackOverRead(m uint64) (uint8, bool, uint8) {
	dir := uint8(m & 7) // want `unpacks 3 bits starting at bit 0, wider than the 2-bit field "dir" of layout meta; mask the read so neighboring fields cannot leak in`
	use := m&(1<<useBit) != 0
	length := uint8(m >> lenShift)
	return dir, use, length
}

// unpackPartial reads only the direction — unpack has drifted from
// pack.
//
//zbp:layout meta unpack
func unpackPartial(m uint64) uint8 { // want `unpack site unpackPartial never reads field "use" of layout meta; pack and unpack have drifted apart` `unpack site unpackPartial never reads field "length" of layout meta; pack and unpack have drifted apart`
	return uint8(m & 3)
}

// usesMeta only probes the use flag; the uses role checks accesses but
// demands no coverage.
//
//zbp:layout meta uses
func usesMeta(m uint64) bool {
	return m&(1<<useBit) != 0
}
