// Package core is a determinism-analyzer fixture: its path ends in
// "core", one of the reproducibility-critical package names.
package core

import (
	"math/rand"
	"time"
)

func wallclock() int64 {
	t := time.Now()    // want `time.Now in determinism-critical package core`
	d := time.Since(t) // want `time.Since in determinism-critical package core`
	_ = d
	//zbp:wallclock progress logging only, excluded from results
	t2 := time.Now()
	return t2.Unix()
}

func randomness(r *rand.Rand, seed int64) int {
	n := rand.Intn(4)                           // want `global math/rand.Intn uses the shared process-wide source`
	rand.Seed(seed)                             // want `global math/rand.Seed uses the shared process-wide source`
	n += r.Intn(4)                              // ok: method on an explicit seeded stream
	n += rand.New(rand.NewSource(seed)).Intn(4) // ok: the sanctioned construction idiom
	return n
}

func orderDependent(m map[uint64]int) ([]uint64, uint64) {
	var keys []uint64
	for k := range m { // want `map iteration order is randomized but this loop assigns to keys`
		keys = append(keys, k)
	}
	var last uint64
	for k := range m { // want `map iteration order is randomized but this loop assigns to last`
		last = k
	}
	return keys, last
}

func orderDependentReturn(m map[uint64]int) uint64 {
	for k, v := range m { // want `map iteration order is randomized but this loop returns a value derived from the iteration variables`
		if v > 0 {
			return k
		}
	}
	return 0
}

func emitsInOrder(m map[uint64]int, emit func(uint64)) {
	for k := range m { // want `map iteration order is randomized but this loop calls emit`
		emit(k)
	}
}

func orderFree(m map[uint64]int, out map[uint64]int) int {
	total := 0
	for _, v := range m { // ok: commutative accumulation
		total += v
	}
	for k, v := range m { // ok: writes keyed by the iteration key
		out[k] = v
	}
	for k := range m { // ok: deleting from the ranged map
		delete(m, k)
	}
	return total
}

func allowedCollect(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	//zbp:allow determinism keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

//zbp:allow determinism stale escape hatch // want `unused //zbp:allow determinism`
func nothingToAllow() int { return 1 }
