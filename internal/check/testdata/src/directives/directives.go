// Package directives exercises the staledirective analyzer: //zbp:
// annotations that no analyzer in the suite would consume — unknown
// kinds, allows naming unknown or out-of-scope analyzers, placements no
// consumer reads — are flagged here, in a package outside the scoped
// analyzers' reach.
package directives

//zbp:typo should be rejected // want `unknown //zbp: directive "typo"`

//zbp:allow nosuch totally convincing reason // want `names unknown analyzer "nosuch"`

//zbp:allow determinism keys are sorted upstream // want `which the determinism analyzer never checks`

//zbp:allow erring best-effort cleanup // want `which the erring analyzer never checks`

//zbp:wallclock progress logging only // want `//zbp:wallclock in package directives`

//zbp:bounded terminates at trace EOF // want `//zbp:bounded in package directives`

// scratch carries an in-scope allow: hotalloc checks every package, so
// the suppression is live and accepted here.
//
//zbp:allow hotalloc scratch buffer reused across calls
var scratch [64]byte

//zbp:hotpath // want `stray //zbp:hotpath`
var spins int

//zbp:inert // want `stray //zbp:inert`
var pure int

// fast is annotated in the one placement the consumers read: a
// function declaration's doc comment. Accepted.
//
//zbp:hotpath
//zbp:inert
func fast() int { return len(scratch) }

//zbp:durable // want `stray //zbp:durable`
var journal int

//zbp:caller-holds mu // want `stray //zbp:caller-holds`
var held int

//zbp:guardedby mu // want `stray //zbp:guardedby`
var loose int

// guardedHome shows the one placement guardedby reads: a struct
// field's comment. Accepted (whether the named mutex exists is the
// guardedby analyzer's own business, not staledirective's).
type guardedHome struct {
	n int //zbp:guardedby mu
}

// persist carries the function-doc placements the durability and
// locking analyzers read. Accepted.
//
//zbp:durable
//zbp:caller-holds mu
//zbp:locked the doc form sanctions the whole body
func persist(g *guardedHome) int {
	//zbp:locked the line form is consumed by lockorder wherever it appears
	return g.n
}

//zbp:allow staledirective stale escape hatch // want `unused //zbp:allow staledirective`

//zbp:allow staledirective the next directive is kept for the changelog
//zbp:legacy retired kind, suppressed by the allow above
func quiet() {}

// The placements packlayout reads: a constant declaration's doc
// comment for declarations, a function's doc comment for either form.
// Accepted (whether the spec resolves is packlayout's own business).
//
//zbp:layout header word:16 kind:0..3 seq:4..15
const headerBits = 16

//zbp:layout header pack
func packHeader(kind, seq uint16) uint16 { return kind&0xF | seq<<4 }

//zbp:layout header word:16 kind:0..3 seq:4..15 // want `stray //zbp:layout: only a constant declaration's or function's doc comment is read \(by packlayout\); this placement is consumed by no analyzer`
var strayLayout int

// Malformed specs are this analyzer's diagnostics, reported even
// though packlayout skips the broken declarations.
//
//zbp:layout noword kind:0..3 // want `malformed //zbp:layout: declaration is missing its word:<width>`
//zbp:layout nofields word:16 // want `malformed //zbp:layout: declaration has no fields`
//zbp:layout nobounds word:16 ok:0..3 kind // want `malformed //zbp:layout: field spec "kind" has no ':<lo>\[\.\.<hi>\]' bounds`
//zbp:layout badunit word:16 unit:nibble kind:0..3 // want `malformed //zbp:layout: unknown unit "nibble": want bit or byte`
//zbp:layout mixed word:16 pack kind:0..3 // want `malformed //zbp:layout: mixes a layout declaration with a pack/unpack role; use separate //zbp:layout lines`
//zbp:layout badcount word:64 ok:0..15 lane[0]:16..31 // want `malformed //zbp:layout: field spec "lane\[0\]:16\.\.31" has a bad \[count\] "0" \(want a positive integer\)`
//zbp:layout dup word:16 kind:0..3 kind:4..7 // want `//zbp:layout dup declares field "kind" twice; rename or delete one`
//zbp:layout // want `malformed //zbp:layout: missing layout name: want //zbp:layout <name> word:<w> <field>:<lo>\[\.\.<hi>\] \.\.\. or //zbp:layout <name> pack\|unpack\|uses`
const _ = 0
