// Package directives exercises the staledirective analyzer: //zbp:
// annotations that no analyzer in the suite would consume — unknown
// kinds, allows naming unknown or out-of-scope analyzers, placements no
// consumer reads — are flagged here, in a package outside the scoped
// analyzers' reach.
package directives

//zbp:typo should be rejected // want `unknown //zbp: directive "typo"`

//zbp:allow nosuch totally convincing reason // want `names unknown analyzer "nosuch"`

//zbp:allow determinism keys are sorted upstream // want `which the determinism analyzer never checks`

//zbp:allow erring best-effort cleanup // want `which the erring analyzer never checks`

//zbp:wallclock progress logging only // want `//zbp:wallclock in package directives`

//zbp:bounded terminates at trace EOF // want `//zbp:bounded in package directives`

// scratch carries an in-scope allow: hotalloc checks every package, so
// the suppression is live and accepted here.
//
//zbp:allow hotalloc scratch buffer reused across calls
var scratch [64]byte

//zbp:hotpath // want `stray //zbp:hotpath`
var spins int

//zbp:inert // want `stray //zbp:inert`
var pure int

// fast is annotated in the one placement the consumers read: a
// function declaration's doc comment. Accepted.
//
//zbp:hotpath
//zbp:inert
func fast() int { return len(scratch) }

//zbp:durable // want `stray //zbp:durable`
var journal int

//zbp:caller-holds mu // want `stray //zbp:caller-holds`
var held int

//zbp:guardedby mu // want `stray //zbp:guardedby`
var loose int

// guardedHome shows the one placement guardedby reads: a struct
// field's comment. Accepted (whether the named mutex exists is the
// guardedby analyzer's own business, not staledirective's).
type guardedHome struct {
	n int //zbp:guardedby mu
}

// persist carries the function-doc placements the durability and
// locking analyzers read. Accepted.
//
//zbp:durable
//zbp:caller-holds mu
//zbp:locked the doc form sanctions the whole body
func persist(g *guardedHome) int {
	//zbp:locked the line form is consumed by lockorder wherever it appears
	return g.n
}

//zbp:allow staledirective stale escape hatch // want `unused //zbp:allow staledirective`

//zbp:allow staledirective the next directive is kept for the changelog
//zbp:legacy retired kind, suppressed by the allow above
func quiet() {}
