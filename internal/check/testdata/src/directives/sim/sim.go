// Package sim shows the same directives accepted where their consumers
// actually look: a package named sim is in scope for determinism,
// erring, sharedstate, and ctxflow, so every annotation below is live
// and the staledirective analyzer stays silent.
package sim

import "context"

// run's annotations all have a consumer here: wallclock and the
// determinism allow are read by determinism, bounded by ctxflow, and
// the sharedstate allow by sharedstate.
func run(ctx context.Context, next chan int) int {
	//zbp:wallclock progress logging only, excluded from results
	_ = ctx
	sum := 0
	//zbp:bounded next is closed by the producer when the trace ends
	for v := range next {
		sum += v
	}
	//zbp:allow sharedstate worker owns this slot by construction
	sum++
	//zbp:allow determinism keys are sorted by the caller before use
	//zbp:allow erring best-effort cleanup on shutdown
	return sum
}
