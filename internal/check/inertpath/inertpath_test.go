package inertpath_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/inertpath"
)

// TestInertPath exercises the purity proof across a package boundary:
// fastpath/lib is analyzed first so its //zbp:inert facts are in the
// store when fastpath/engine (which imports it) is checked — the same
// dependency order the zbpcheck driver guarantees. Covered: the
// stepBulkOK anchor rule, in-package and cross-package inert callees,
// every rejected effect class, and the escape hatch.
func TestInertPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), inertpath.Analyzer, "fastpath/lib", "fastpath/engine")
}
