// Package inertpath defines an interprocedural purity analyzer backing
// the engine's "provably-inert instruction run" claim
// (docs/PERFORMANCE.md): engine.RunBatched's bulk fast path may skip
// per-record stepping only because its eligibility predicate,
// Engine.stepBulkOK, inspects state without perturbing it — if the scan
// had any side effect, batched and record-at-a-time runs would diverge
// and the differential gate would be the only thing standing.
//
// The analyzer turns that argument into a build-time proof:
//
//   - Engine.stepBulkOK (any stepBulkOK method in a package named
//     engine) must be annotated //zbp:inert;
//   - a //zbp:inert function's body may read anything but write only
//     function-local values: no assignment through a pointer, slice,
//     or map; no channel operations, go, or defer; no closures;
//   - a //zbp:inert function may call only builtin len/cap/min/max,
//     panic (contract assertions abort, they do not mutate),
//     type conversions, and functions that are themselves inert —
//     same-package callees by annotation, cross-package callees by an
//     analysis fact exported when their package was analyzed.
//
// Facts make the proof transitive across the whole module: deleting
// the //zbp:inert annotation on any fast-path callee (say zaddr.Align)
// removes its fact, and every inert caller fails the build. Obs
// counters need no special case — obs has no inert functions, so a
// counter touch is rejected as a non-inert call, with a sharper
// message.
//
// Intentional departures (there should be none on the fast path) use
// //zbp:allow inertpath <reason>.
package inertpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "inertpath"

// inertFact marks a function annotated //zbp:inert; it crosses package
// boundaries through the driver's gob-serialized fact store.
type inertFact struct {
	// Declared is set for every annotated function (the claim is
	// exported even when the body check fails, so one violation does
	// not cascade spurious "non-inert callee" reports downstream).
	Declared bool
}

func (*inertFact) AFact()         {}
func (*inertFact) String() string { return "inert" }

// Analyzer is the inertpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "functions on the bulk fast path's eligibility scan must be annotated " +
		"//zbp:inert and provably side-effect-free, transitively across packages",
	Run:       run,
	FactTypes: []analysis.Fact{(*inertFact)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := directive.CollectAllows(pass, name)

	// Pass 1: collect the package's inert set and export the facts
	// before checking any body, so mutual recursion and source order
	// don't matter.
	inert := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !directive.HasInert(fn) {
				checkAnchor(pass, allows, fn)
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			inert[obj] = fn
			if pass.ExportObjectFact != nil {
				pass.ExportObjectFact(obj, &inertFact{Declared: true})
			}
		}
	}

	// Pass 2: prove each inert body.
	for obj, fn := range inert {
		if fn.Body == nil {
			allows.Report(pass, fn, "inert function %s has no body to verify; drop the annotation or provide a Go implementation", obj.Name())
			continue
		}
		checkBody(pass, allows, fn, inert)
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// checkAnchor pins the proof's root: the bulk fast path's eligibility
// predicate must itself be annotated, so the transitive callee rule has
// somewhere to start and deleting the root annotation cannot silently
// disable the whole check.
func checkAnchor(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl) {
	if directive.PkgLastElem(pass.Pkg.Path()) != "engine" {
		return
	}
	if fn.Name.Name != "stepBulkOK" || fn.Recv == nil {
		return
	}
	allows.Report(pass, fn.Name,
		"bulk fast-path eligibility predicate %s must be annotated //zbp:inert: RunBatched's equivalence to Run rests on this scan having no side effects", fn.Name.Name)
}

func checkBody(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, inert map[types.Object]*ast.FuncDecl) {
	fname := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if reason := writeEscapes(pass, fn, lhs); reason != "" {
					allows.Report(pass, lhs, "inert function %s %s; the bulk fast-path scan must not write reachable state", fname, reason)
				}
			}
		case *ast.IncDecStmt:
			if reason := writeEscapes(pass, fn, n.X); reason != "" {
				allows.Report(pass, n, "inert function %s %s; the bulk fast-path scan must not write reachable state", fname, reason)
			}
		case *ast.CallExpr:
			checkCall(pass, allows, fn, n, inert)
		case *ast.FuncLit:
			allows.Report(pass, n, "inert function %s declares a function literal; the purity proof does not cross closures", fname)
			return false
		case *ast.GoStmt:
			allows.Report(pass, n, "inert function %s starts a goroutine", fname)
		case *ast.DeferStmt:
			allows.Report(pass, n, "inert function %s defers a call", fname)
		case *ast.SendStmt:
			allows.Report(pass, n, "inert function %s sends on a channel", fname)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				allows.Report(pass, n, "inert function %s receives from a channel", fname)
			}
		}
		return true
	})
}

// writeEscapes classifies an assignment target inside an inert
// function. It returns "" when the write provably stays function-local:
// a plain local variable, or a selector/index chain rooted at a local
// that never crosses a pointer, slice, or map (those reach shared
// state). Anything else returns a human-readable reason.
func writeEscapes(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr) string {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return ""
			}
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				return ""
			}
			if obj.Pos() < fn.Pos() || obj.Pos() >= fn.End() {
				return "assigns to " + x.Name + ", declared outside the function"
			}
			return ""
		case *ast.SelectorExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return "writes " + exprString(x) + " through a pointer"
				}
			}
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			return "writes through an explicit pointer dereference"
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					return "writes a slice element, which aliases shared backing storage"
				case *types.Map:
					return "writes a map entry, which aliases the shared map"
				case *types.Pointer: // *[N]T auto-deref
					return "writes an array element through a pointer"
				}
			}
			e = ast.Unparen(x.X)
		default:
			return "assigns through a composite expression"
		}
	}
}

func checkCall(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, call *ast.CallExpr, inert map[types.Object]*ast.FuncDecl) {
	fname := fn.Name.Name
	// Type conversions are values, not effects.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "panic":
				return
			default:
				allows.Report(pass, call, "inert function %s calls builtin %s, which is not side-effect-free enough for the bulk fast-path scan", fname, b.Name())
				return
			}
		}
		checkCallee(pass, allows, fname, call, fun, inert)
	case *ast.SelectorExpr:
		checkCallee(pass, allows, fname, call, fun.Sel, inert)
	default:
		allows.Report(pass, call, "inert function %s calls a computed function value; inert calls must resolve statically", fname)
	}
}

// checkCallee resolves the called identifier and demands an inert
// callee: same-package by annotation, cross-package by imported fact.
func checkCallee(pass *analysis.Pass, allows *directive.AllowSet, fname string, call *ast.CallExpr, id *ast.Ident, inert map[types.Object]*ast.FuncDecl) {
	callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		allows.Report(pass, call, "inert function %s calls %s, a function value; inert calls must resolve statically", fname, id.Name)
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			allows.Report(pass, call, "inert function %s calls interface method %s, which cannot be proven inert statically", fname, callee.Name())
			return
		}
	}
	if callee.Pkg() == nil {
		return // error.Error and friends resolve without a package; unreachable for inert code
	}
	if callee.Pkg() == pass.Pkg {
		if _, ok := inert[callee]; ok {
			return
		}
		allows.Report(pass, call, "inert function %s calls %s, which is not annotated //zbp:inert", fname, callee.Name())
		return
	}
	var fact inertFact
	if pass.ImportObjectFact != nil && pass.ImportObjectFact(callee, &fact) && fact.Declared {
		return
	}
	if directive.PkgLastElem(callee.Pkg().Path()) == "obs" {
		allows.Report(pass, call, "inert function %s touches obs metric state via %s.%s; the bulk fast path must leave counters to the bulk update", fname, callee.Pkg().Name(), callee.Name())
		return
	}
	allows.Report(pass, call, "inert function %s calls %s.%s, which is not annotated //zbp:inert in its own package", fname, callee.Pkg().Name(), callee.Name())
}

// exprString renders a short selector chain for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
