package lockorder_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "locks")
}

// TestLockOrderCrossPackage proves the interprocedural half: the cycle
// in lockdeps/svc is only visible through lockdeps/store's exported
// object fact (Get acquires Mu) and package lock-graph fact
// (Mu -> Mu2 from Both).
func TestLockOrderCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockdeps/store", "lockdeps/svc")
}
