// Package lockorder proves the service layer's locking discipline at
// build time, the two properties the zsimd testbed can only sample:
//
//   - deadlock freedom by acquisition order: every "acquire B while
//     holding A" site contributes an A→B edge to a module-wide lock
//     graph, propagated across packages through analysis facts; a cycle
//     in that graph is a build error, as is re-acquiring a mutex the
//     function (or a //zbp:caller-holds contract) already holds;
//   - no blocking under a mutex: a channel send/receive, select without
//     a default, file Write/Sync/Close, filesystem call, sync.Wait, or
//     HTTP round-trip executed with any mutex held stalls every
//     contender behind one slow peer. Each such site is rejected unless
//     sanctioned by //zbp:locked <reason> — on the line for one
//     operation, in the function's doc comment for the deliberate
//     fsync-inside-the-critical-section durability idiom (which also
//     keeps the function's blocking summary out of its callers).
//
// Per-function summaries (locks acquired, ways the body blocks) flow
// interprocedurally: same-package callees by fixpoint, cross-package
// callees through the gob facts store, so jobq.Queue.Enqueue calling an
// exported helper three packages away is checked against the same
// graph as a direct Lock call.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
	"bulkpreload/internal/check/lockset"
)

const name = "lockorder"

// lockFact is a function's interprocedural locking summary, exported
// through the facts store: the lock keys its call may acquire and the
// ways it may block. Blocks is empty for doc-level //zbp:locked
// functions — their blocking is sanctioned where it lives.
type lockFact struct {
	Acquires []string
	Blocks   []string
}

func (*lockFact) AFact() {}
func (f *lockFact) String() string {
	return "acquires=" + strings.Join(f.Acquires, ",") + " blocks=" + strings.Join(f.Blocks, ",")
}

// lockEdge is one observed acquisition ordering: To was acquired while
// From was held, at File:Line inside Fn.
type lockEdge struct {
	From, To string
	Fn       string
	File     string
	Line     int
}

// lockGraphFact is a package's transitively merged lock graph (its own
// edges plus every dependency's), exported as a package fact so each
// package only has to look one import hop deep.
type lockGraphFact struct {
	Edges []lockEdge
}

func (*lockGraphFact) AFact() {}
func (f *lockGraphFact) String() string {
	parts := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		parts[i] = e.From + "->" + e.To
	}
	return strings.Join(parts, " ")
}

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "rejects cyclic lock-acquisition orders and blocking operations performed " +
		"while holding a mutex, interprocedurally via facts; sanctioned blocking " +
		"requires //zbp:locked <reason>",
	Run:       run,
	FactTypes: []analysis.Fact{(*lockFact)(nil), (*lockGraphFact)(nil)},
}

// callee is one same-package call site recorded during the summary
// scan. exempt marks a line-level //zbp:locked on the call: the
// callee's blocking stays out of the caller's summary (its acquisitions
// still propagate — an annotation cannot un-take a lock).
type callee struct {
	obj    types.Object
	exempt bool
}

// summary is one function's locking behavior, before and after the
// same-package fixpoint.
type summary struct {
	fn       *ast.FuncDecl
	obj      types.Object
	acquires map[string]bool
	blocks   map[string]bool
	callees  []callee

	docLocked bool
	docReason string
	entry     []lockset.Lock // synthetic locks from //zbp:caller-holds
}

type checker struct {
	pass      *analysis.Pass
	allows    *directive.AllowSet
	locked    *directive.LockedSet
	walker    *lockset.Walker
	sums      map[types.Object]*summary
	order     []*summary
	edges     map[string]*siteEdge // own edges, keyed From+"\x00"+To
	edgeOrder []*siteEdge
}

// siteEdge is an own-package edge plus the node to report cycles at.
type siteEdge struct {
	e  lockEdge
	at ast.Node
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:   pass,
		allows: directive.CollectAllows(pass, name),
		locked: directive.CollectLocked(pass),
		walker: &lockset.Walker{
			Info:    pass.TypesInfo,
			Fset:    pass.Fset,
			PkgName: directive.PkgLastElem(pass.Pkg.Path()),
		},
		sums:  make(map[types.Object]*summary),
		edges: make(map[string]*siteEdge),
	}

	// Phase A: direct per-function summaries (declaration order), with
	// cross-package callee facts merged in as they are seen.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			s := c.scanDirect(fn, obj)
			c.sums[obj] = s
			c.order = append(c.order, s)
		}
	}
	c.fixpoint()

	// Export each function's summary before reporting, so downstream
	// packages see facts even when this package has findings.
	for _, s := range c.order {
		fact := &lockFact{Acquires: sortedKeys(s.acquires)}
		if !s.docLocked {
			fact.Blocks = sortedKeys(s.blocks)
		}
		if len(fact.Acquires) > 0 || len(fact.Blocks) > 0 {
			if c.pass.ExportObjectFact != nil {
				c.pass.ExportObjectFact(s.obj, fact)
			}
		}
		if s.docLocked {
			switch {
			case s.docReason == "":
				c.allows.Report(c.pass, s.fn.Name, "malformed //zbp:locked on %s: a doc-comment form needs a reason naming why blocking inside the critical section is the design", s.fn.Name.Name)
			case len(s.blocks) == 0:
				c.allows.Report(c.pass, s.fn.Name, "unused //zbp:locked on %s: the body has no blocking operation; delete the stale annotation", s.fn.Name.Name)
			}
		}
	}

	// Phase B: walk each body with full summaries, reporting blocking
	// under held locks and collecting acquisition-order edges.
	for _, s := range c.order {
		c.checkBody(s)
	}

	c.cycles()
	c.locked.ReportUnused(pass)
	c.allows.ReportUnused(pass)
	return nil, nil
}

// scanDirect computes one function's direct summary with a lit-skipping
// lockset walk: acquisitions from the Acquire hook, blocking operations
// and call sites from the Node hook.
func (c *checker) scanDirect(fn *ast.FuncDecl, obj types.Object) *summary {
	s := &summary{
		fn:       fn,
		obj:      obj,
		acquires: make(map[string]bool),
		blocks:   make(map[string]bool),
	}
	s.docReason, s.docLocked = directive.DocLocked(fn)
	for _, mu := range directive.CallerHolds(fn) {
		if key, ok := lockset.ResolveHold(c.pass.TypesInfo, c.pass.Pkg, fn, mu); ok {
			s.entry = append(s.entry, lockset.Lock{Key: key, Pos: fn.Name.Pos(), Synthetic: true})
		}
	}
	c.walker.Walk(fn, nil, lockset.Hooks{
		SkipLits: true,
		Acquire: func(call *ast.CallExpr, l lockset.Lock, held []lockset.Lock) {
			s.acquires[l.Key] = true
		},
		Node: func(n ast.Node, held []lockset.Lock) {
			if desc, ok := c.classify(n); ok {
				if !c.locked.Covers(n.Pos()) {
					s.blocks[desc] = true
				}
				// A classified call (f.Sync, os.Remove...) is stdlib;
				// no summary will exist for it, so fall through safely.
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return
			}
			fnObj := calleeOf(c.pass.TypesInfo, call)
			if fnObj == nil || fnObj.Pkg() == nil {
				return
			}
			exempt := c.locked.Covers(call.Pos())
			if fnObj.Pkg() == c.pass.Pkg {
				s.callees = append(s.callees, callee{obj: fnObj, exempt: exempt})
				return
			}
			var fact lockFact
			if c.pass.ImportObjectFact != nil && c.pass.ImportObjectFact(fnObj, &fact) {
				for _, a := range fact.Acquires {
					s.acquires[a] = true
				}
				if !exempt {
					for _, b := range fact.Blocks {
						s.blocks[b] = true
					}
				}
			}
		},
	})
	return s
}

// fixpoint folds same-package callee summaries into their callers until
// nothing changes (the call graph may be cyclic; the sets only grow, so
// this terminates).
func (c *checker) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, s := range c.order {
			for _, call := range s.callees {
				cs := c.sums[call.obj]
				if cs == nil {
					continue
				}
				for k := range cs.acquires {
					if !s.acquires[k] {
						s.acquires[k] = true
						changed = true
					}
				}
				if cs.docLocked || call.exempt {
					continue
				}
				for b := range cs.blocks {
					if !s.blocks[b] {
						s.blocks[b] = true
						changed = true
					}
				}
			}
		}
	}
}

// checkBody is the reporting walk: entry locks seeded from
// //zbp:caller-holds, blocking flagged against the live held set,
// acquisition edges recorded for cycle detection.
func (c *checker) checkBody(s *summary) {
	fname := s.fn.Name.Name
	c.walker.Walk(s.fn, s.entry, lockset.Hooks{
		Acquire: func(call *ast.CallExpr, l lockset.Lock, held []lockset.Lock) {
			for _, h := range held {
				if h.Key != l.Key {
					continue
				}
				if l.Reader && h.Reader {
					return // RLock under RLock is legal
				}
				c.allows.Report(c.pass, call, "%s acquires %s while already holding it%s; sync mutexes are not reentrant — this deadlocks", fname, l.Key, heldVia(h))
				return
			}
			for _, h := range held {
				c.addEdge(h.Key, l.Key, fname, call)
			}
		},
		Node: func(n ast.Node, held []lockset.Lock) {
			if desc, ok := c.classify(n); ok && len(held) > 0 {
				if !s.docLocked && !c.locked.Exempt(n.Pos()) {
					c.allows.Report(c.pass, n, "%s blocks (%s) while holding %s; one stalled peer stops every contender — move it outside the critical section or annotate //zbp:locked <reason>", fname, desc, keysOf(held))
				}
				return
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return
			}
			fnObj := calleeOf(c.pass.TypesInfo, call)
			if fnObj == nil {
				return
			}
			acquires, blocks := c.summaryFor(fnObj)
			for _, a := range acquires {
				if lockset.Held(held, a) {
					c.allows.Report(c.pass, call, "%s calls %s, which acquires %s — already held here; sync mutexes are not reentrant — this deadlocks", fname, fnObj.Name(), a)
					continue
				}
				for _, h := range held {
					c.addEdge(h.Key, a, fname, call)
				}
			}
			if len(blocks) > 0 && len(held) > 0 && !s.docLocked && !c.locked.Exempt(call.Pos()) {
				c.allows.Report(c.pass, call, "%s calls %s, which blocks (%s), while holding %s; move the call outside the critical section or annotate //zbp:locked <reason>", fname, fnObj.Name(), blocks[0], keysOf(held))
			}
		},
	})
}

// summaryFor resolves a callee's final acquisition/blocking summary:
// same-package from the fixpointed map, cross-package from its fact.
func (c *checker) summaryFor(fnObj types.Object) (acquires, blocks []string) {
	if fnObj.Pkg() == c.pass.Pkg {
		s := c.sums[fnObj]
		if s == nil {
			return nil, nil
		}
		acquires = sortedKeys(s.acquires)
		if !s.docLocked {
			blocks = sortedKeys(s.blocks)
		}
		return acquires, blocks
	}
	var fact lockFact
	if c.pass.ImportObjectFact != nil && c.pass.ImportObjectFact(fnObj, &fact) {
		return fact.Acquires, fact.Blocks
	}
	return nil, nil
}

func (c *checker) addEdge(from, to, fname string, at ast.Node) {
	key := from + "\x00" + to
	if _, dup := c.edges[key]; dup {
		return
	}
	p := c.pass.Fset.Position(at.Pos())
	se := &siteEdge{
		e:  lockEdge{From: from, To: to, Fn: fname, File: p.Filename, Line: p.Line},
		at: at,
	}
	c.edges[key] = se
	c.edgeOrder = append(c.edgeOrder, se)
}

// cycles merges the dependency lock graphs with this package's edges,
// exports the union as this package's graph fact, and reports every
// acquisition-order cycle a local edge participates in — once per
// cycle, at the first local edge that closes it.
func (c *checker) cycles() {
	merged := make(map[string]lockEdge)
	var order []lockEdge
	add := func(e lockEdge) {
		key := e.From + "\x00" + e.To
		if _, dup := merged[key]; dup {
			return
		}
		merged[key] = e
		order = append(order, e)
	}
	for _, se := range c.edgeOrder {
		add(se.e)
	}
	imports := append([]*types.Package(nil), c.pass.Pkg.Imports()...)
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path() < imports[j].Path() })
	for _, imp := range imports {
		var gf lockGraphFact
		if c.pass.ImportPackageFact != nil && c.pass.ImportPackageFact(imp, &gf) {
			for _, e := range gf.Edges {
				add(e)
			}
		}
	}
	if len(order) > 0 && c.pass.ExportPackageFact != nil {
		exp := append([]lockEdge(nil), order...)
		sort.Slice(exp, func(i, j int) bool {
			if exp[i].From != exp[j].From {
				return exp[i].From < exp[j].From
			}
			return exp[i].To < exp[j].To
		})
		c.pass.ExportPackageFact(&lockGraphFact{Edges: exp})
	}

	adj := make(map[string][]lockEdge)
	for _, e := range order {
		adj[e.From] = append(adj[e.From], e)
	}
	seen := make(map[string]bool)
	for _, se := range c.edgeOrder {
		path := findPath(adj, se.e.To, se.e.From)
		if path == nil {
			continue
		}
		cycle := append([]lockEdge{se.e}, path...)
		id := cycleID(cycle)
		if seen[id] {
			continue
		}
		seen[id] = true
		chain := se.e.From
		for _, e := range cycle {
			chain += " -> " + e.To
		}
		closing := cycle[len(cycle)-1]
		c.allows.Report(c.pass, se.at,
			"lock acquisition order cycle: %s; this ordering conflicts with %s (%s:%d) — pick one global order",
			chain, closing.Fn, base(closing.File), closing.Line)
	}
}

// findPath BFS-searches the merged graph for a path from -> to,
// returning its edges (deterministic: adjacency lists are in insertion
// order, which is walk order plus sorted import order).
func findPath(adj map[string][]lockEdge, from, to string) []lockEdge {
	type node struct {
		key  string
		path []lockEdge
	}
	visited := map[string]bool{from: true}
	queue := []node{{key: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.key] {
			if visited[e.To] {
				continue
			}
			next := append(append([]lockEdge(nil), cur.path...), e)
			if e.To == to {
				return next
			}
			visited[e.To] = true
			queue = append(queue, node{key: e.To, path: next})
		}
	}
	return nil
}

// cycleID canonicalizes a cycle (rotation-invariant) so the same cycle
// reached from different local edges reports once.
func cycleID(cycle []lockEdge) string {
	keys := make([]string, len(cycle))
	for i, e := range cycle {
		keys[i] = e.From
	}
	best := 0
	for i := range keys {
		if keys[i] < keys[best] {
			best = i
		}
	}
	rotated := append(append([]string(nil), keys[best:]...), keys[:best]...)
	return strings.Join(rotated, "->")
}

// classify recognizes the blocking operations the analyzer rejects
// under a held mutex. Select statements with a default clause and
// ranges over non-channels are not blocking.
func (c *checker) classify(n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if comm, isComm := cl.(*ast.CommClause); isComm && comm.Comm == nil {
				return "", false
			}
		}
		return "select with no default", true
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "range over a channel", true
			}
		}
	case *ast.CallExpr:
		return c.classifyCall(n)
	}
	return "", false
}

// classifyCall recognizes blocking callees by identity: sync waits,
// file and stream writes, filesystem calls, HTTP round-trips, sleeps.
func (c *checker) classifyCall(call *ast.CallExpr) (string, bool) {
	fn := calleeOf(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	recv := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() == "Wait" {
			return "sync Wait", true
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "os":
		if recv {
			switch fn.Name() {
			case "Sync":
				return "file Sync", true
			case "Write", "WriteString", "WriteAt", "ReadFrom":
				return "file write", true
			case "Close":
				return "file Close", true
			}
			return "", false
		}
		switch fn.Name() {
		case "Remove", "RemoveAll", "Rename", "Create", "CreateTemp",
			"Open", "OpenFile", "Mkdir", "MkdirAll", "ReadFile", "WriteFile":
			return "filesystem " + fn.Name(), true
		}
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return "HTTP round-trip", true
		}
	}
	// Interface writes reach files through io.Writer and friends: a
	// journal append helper taking io.Writer blocks exactly like the
	// *os.File it is handed.
	if recv {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			switch fn.Name() {
			case "Write", "WriteString", "ReadFrom", "Flush", "Sync":
				return "stream write", true
			}
		}
	}
	return "", false
}

// calleeOf resolves a call's static callee, or nil for builtins,
// conversions, and computed function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func keysOf(held []lockset.Lock) string {
	keys := make([]string, len(held))
	for i, l := range held {
		keys[i] = l.Key
	}
	return strings.Join(keys, ", ")
}

func heldVia(h lockset.Lock) string {
	if h.Synthetic {
		return " (held per //zbp:caller-holds)"
	}
	return ""
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func base(file string) string {
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		return file[i+1:]
	}
	return file
}
