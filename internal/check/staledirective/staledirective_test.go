package staledirective_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/staledirective"
)

// TestStaleDirective exercises the directive-freshness rules: unknown
// kinds, allows naming unknown or out-of-scope analyzers, stray
// placements (directives package, where the scoped analyzers never
// look), and the same annotations accepted in a package their consumers
// actually check (directives/sim).
func TestStaleDirective(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), staledirective.Analyzer, "directives", "directives/sim")
}
