// Package staledirective defines the analyzer that keeps the //zbp:
// annotation language honest. Every other analyzer already reports its
// own unused suppressions, but only inside the packages it scans — a
// directive can still rot three ways that nothing else catches:
//
//   - a misspelled or retired kind (//zbp:hotpth, //zbp:pure) that no
//     analyzer will ever parse;
//   - an //zbp:allow naming an unknown analyzer, or naming a real one
//     in a package that analyzer never checks (an allow for
//     determinism in a non-critical package, an allow for erring
//     outside cmd/ and sim) — the suppression is dead on arrival and
//     silently stops meaning anything;
//   - a placement no consumer reads: //zbp:hotpath, //zbp:inert,
//     //zbp:durable, or //zbp:caller-holds anywhere but a function's
//     doc comment, //zbp:guardedby anywhere but a struct field's
//     comment, //zbp:wallclock outside the determinism-critical
//     packages, //zbp:bounded in a package ctxflow does not scan,
//     //zbp:layout anywhere but a constant declaration's or function's
//     doc comment.
//
// //zbp:layout additionally gets its spec linted here — grammar errors
// and duplicate field names are this analyzer's diagnostics, so a
// malformed declaration is reported even though packlayout skips it.
//
// In-scope usedness stays with the owning analyzer (unused allows with
// hotalloc &c., unused bounded with ctxflow); this analyzer owns the
// "no analyzer would even look" class, so the two never double-report.
package staledirective

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/ctxflow"
	"bulkpreload/internal/check/determinism"
	"bulkpreload/internal/check/directive"
	"bulkpreload/internal/check/erring"
	"bulkpreload/internal/check/sharedstate"
)

const name = "staledirective"

// Analyzer is the staledirective analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "reject //zbp: directives that no analyzer in the suite would consume",
	Run:  run,
}

func everywhere(string) bool { return true }

// scopes maps each analyzer in the suite to the packages it checks, so
// an allow can be validated against the consumer it names. The entries
// delegate to the analyzers' own exported scope predicates where the
// scope is nontrivial; drift is impossible there by construction.
var scopes = map[string]func(pkgPath string) bool{
	"determinism": determinism.InScope,
	"bitrange":    func(p string) bool { return directive.PkgLastElem(p) != "zaddr" },
	"hotalloc":    everywhere,
	"obsreg":      func(p string) bool { return directive.PkgLastElem(p) != "obs" },
	"erring":      erring.InScope,
	"sharedstate": sharedstate.InScope,
	"inertpath":   everywhere,
	"ctxflow":     ctxflow.InScope,
	"lockorder":   everywhere,
	"guardedby":   everywhere,
	"durable":     everywhere,
	"packlayout":  everywhere,
	name:          everywhere,
}

func knownAnalyzers() string {
	names := make([]string, 0, len(scopes))
	for n := range scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := directive.CollectAllows(pass, name)
	for _, f := range pass.Files {
		docs := funcDocRanges(f)
		fields := fieldDocRanges(f)
		consts := constDocRanges(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkComment(pass, allows, c, docs, fields, consts)
			}
		}
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// docRange is the extent of one function declaration's doc comment.
type docRange struct{ pos, end int }

// funcDocRanges returns the line extents of every doc comment attached
// to a function that has a body (the only placement hotalloc and
// inertpath read).
func funcDocRanges(f *ast.File) []docRange {
	var out []docRange
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil || fn.Body == nil {
			continue
		}
		out = append(out, docRange{int(fn.Doc.Pos()), int(fn.Doc.End())})
	}
	return out
}

// fieldDocRanges returns the extents of every struct field's doc and
// trailing comments — the only placement guardedby reads.
func fieldDocRanges(f *ast.File) []docRange {
	var out []docRange
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
				if cg != nil {
					out = append(out, docRange{int(cg.Pos()), int(cg.End())})
				}
			}
		}
		return true
	})
	return out
}

// constDocRanges returns the extents of every constant declaration's
// doc comment — the placement packlayout reads layout declarations
// from (alongside function doc comments).
func constDocRanges(f *ast.File) []docRange {
	var out []docRange
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST || gd.Doc == nil {
			continue
		}
		out = append(out, docRange{int(gd.Doc.Pos()), int(gd.Doc.End())})
	}
	return out
}

func inFuncDoc(c *ast.Comment, docs []docRange) bool {
	for _, d := range docs {
		if int(c.Pos()) >= d.pos && int(c.End()) <= d.end {
			return true
		}
	}
	return false
}

func checkComment(pass *analysis.Pass, allows *directive.AllowSet, c *ast.Comment, docs, fields, consts []docRange) {
	kind, rest, ok := directive.Split(c)
	if !ok {
		return
	}
	pkg := pass.Pkg.Path()
	switch kind {
	case "hotpath", "inert":
		if !inFuncDoc(c, docs) {
			allows.Report(pass, c,
				"stray //zbp:%s: only a function declaration's doc comment is read (by %s); this placement is consumed by no analyzer", kind, consumerOf(kind))
		}
	case "allow":
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return // malformed; every analyzer's CollectAllows already reports it
		}
		target := fields[0]
		scope, known := scopes[target]
		if !known {
			allows.Report(pass, c,
				"//zbp:allow names unknown analyzer %q (known: %s); the suppression is dead", target, knownAnalyzers())
			return
		}
		if !scope(pkg) {
			allows.Report(pass, c,
				"//zbp:allow %s in package %s, which the %s analyzer never checks; delete the dead suppression", target, pass.Pkg.Name(), target)
		}
	case "wallclock":
		if !determinism.InScope(pkg) {
			allows.Report(pass, c,
				"//zbp:wallclock in package %s, which the determinism analyzer never checks; delete the dead annotation", pass.Pkg.Name())
		}
	case "bounded":
		if !ctxflow.InScope(pkg) {
			allows.Report(pass, c,
				"//zbp:bounded in package %s, which the ctxflow analyzer never checks; delete the dead annotation", pass.Pkg.Name())
		}
	case "locked":
		// Consumed on (or above) a blocking line and in function doc
		// comments alike; lockorder itself reports the stale ones.
	case "durable", "caller-holds":
		if !inFuncDoc(c, docs) {
			allows.Report(pass, c,
				"stray //zbp:%s: only a function declaration's doc comment is read (by %s); this placement is consumed by no analyzer", kind, consumerOf(kind))
		}
	case "guardedby":
		if !inFuncDoc(c, fields) {
			allows.Report(pass, c,
				"stray //zbp:guardedby: only a struct field's comment is read (by guardedby); this placement is consumed by no analyzer")
		}
	case "layout":
		l, ok := directive.ParseLayout(c)
		if !ok {
			return // //zbp:layoutsomething — the default arm's problem
		}
		if !inFuncDoc(c, docs) && !inFuncDoc(c, consts) {
			allows.Report(pass, c,
				"stray //zbp:layout: only a constant declaration's or function's doc comment is read (by packlayout); this placement is consumed by no analyzer")
			return
		}
		for _, err := range l.Errs {
			allows.Report(pass, c, "malformed //zbp:layout: %s", err)
		}
		seen := map[string]bool{}
		for _, fl := range l.Fields {
			if seen[fl.Name] {
				allows.Report(pass, c,
					"//zbp:layout %s declares field %q twice; rename or delete one", l.Name, fl.Name)
			}
			seen[fl.Name] = true
		}
	default:
		allows.Report(pass, c,
			"unknown //zbp: directive %q; the suite consumes hotpath, allow, wallclock, inert, bounded, locked, guardedby, caller-holds, durable, and layout", kind)
	}
}

func consumerOf(kind string) string {
	switch kind {
	case "inert":
		return "inertpath"
	case "durable":
		return "durable"
	case "caller-holds":
		return "guardedby and lockorder"
	}
	return "hotalloc"
}
