// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest (which
// this offline harness stands in for; it additionally reuses the
// suite's own loader, so fixtures type-check against real stdlib
// source with no network or build cache).
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A line expecting
// diagnostics carries one want comment per diagnostic:
//
//	x := rand.Intn(4) // want `global math/rand`
//	y := f()          // want "first" "second"
//
// Each string is a regular expression that must match a diagnostic
// reported on that line; unmatched diagnostics and unmatched
// expectations both fail the test.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/facts"
	"bulkpreload/internal/check/load"
)

// TestData returns the shared fixture root internal/check/testdata,
// resolved relative to this source file so tests can run from any
// package directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	// .../internal/check/analysistest/analysistest.go -> .../internal/check/testdata
	return filepath.Join(filepath.Dir(filepath.Dir(file)), "testdata")
}

// Run applies the analyzer to each fixture package (a directory name
// under testdata/src) and reports mismatches against the // want
// expectations through t.
//
// All fixture packages in one call share a loader and a fact store and
// are analyzed in argument order, so a fact-exporting analyzer
// (inertpath) sees facts from earlier fixtures in later ones — list
// dependencies before their importers, exactly as the zbpcheck driver
// schedules real packages.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixturePkgs ...string) {
	t.Helper()
	root, modPath, err := load.FindModule(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l := load.New(root, modPath)
	l.ExtraSrcRoots = []string{filepath.Join(testdata, "src")}
	store := facts.NewStore()
	for _, pkgPath := range fixturePkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		pkg, err := l.LoadTarget(dir, pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypeSizes,
			Report:     func(d analysis.Diagnostic) { got = append(got, d) },
		}
		facts.Bind(pass, store)
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkgPath, err)
		}
		t.Run(pkgPath, func(t *testing.T) {
			checkWants(t, pkg.Fset, dir, pkg, got)
		})
	}
}

// wantRe is one expectation parsed from a // want comment.
type wantRe struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantComment = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the expectations from every fixture file.
func parseWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []*wantRe {
	t.Helper()
	var wants []*wantRe
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &wantRe{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitPatterns tokenizes the payload of a want comment: a sequence of
// double-quoted or backquoted regular expressions.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(out, s[1:]) // unterminated: take the rest
			}
			out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			// Not a recognized pattern start; stop (trailing prose).
			return out
		}
	}
	return out
}

func checkWants(t *testing.T, fset *token.FileSet, dir string, pkg *load.Package, got []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, pkg)
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", rel(dir, pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", rel(dir, w.file), w.line, w.raw)
		}
	}
}

// matchWant consumes the first unmatched expectation on the
// diagnostic's line whose regexp matches.
func matchWant(wants []*wantRe, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func rel(dir, file string) string {
	if r, err := filepath.Rel(dir, file); err == nil {
		return r
	}
	return file
}
