package obsreg_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/obsreg"
)

// TestObsreg exercises metric-field registration tracking against the
// obs fixture stub: unregistered fields are flagged, wired and allowed
// fields are not, and a stale allow is itself a finding.
func TestObsreg(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsreg.Analyzer, "metrics")
}

// TestObsregSpans exercises the span-instrumentation rules against the
// span fixture stub: hot-path structs without a recorder are flagged
// (unless allowed), and unexported recorder fields nothing assigns are
// flagged, while exported config fields and literal-wired ones pass.
func TestObsregSpans(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsreg.Analyzer, "spanwire")
}
