package obsreg_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/obsreg"
)

// TestObsreg exercises metric-field registration tracking against the
// obs fixture stub: unregistered fields are flagged, wired and allowed
// fields are not, and a stale allow is itself a finding.
func TestObsreg(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsreg.Analyzer, "metrics")
}
