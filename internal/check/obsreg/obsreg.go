// Package obsreg defines an analyzer that keeps metric declarations
// and registry wiring in lockstep: every obs.Counter / obs.Gauge /
// obs.Histogram field declared in a struct of a package that uses the
// internal/obs registry must be registered (passed by address to a
// Registry method) somewhere in that package. It is the static twin of
// the exporters' runtime reconciliation — a counter that increments but
// was never enumerated silently vanishes from snapshots, Prometheus
// text, and phase timelines, which runtime reconciliation can only
// catch on code paths a test happens to drive.
package obsreg

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "obsreg"

// Analyzer is the obsreg analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "every obs metric field must be wired into an obs.Registry",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if directive.PkgLastElem(pass.Pkg.Path()) == "obs" {
		return nil, nil // the registry implementation itself
	}
	allows := directive.CollectAllows(pass, name)

	// Pass 1: every obs metric field declared in this package.
	type fieldDecl struct {
		obj    *types.Var
		strct  string
		node   *ast.Field
		nameID *ast.Ident
	}
	var declared []fieldDecl
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || !isObsMetricType(obj.Type()) {
						continue
					}
					declared = append(declared, fieldDecl{obj: obj, strct: ts.Name.Name, node: field, nameID: name})
				}
			}
			return true
		})
	}
	if len(declared) == 0 {
		allows.ReportUnused(pass)
		return nil, nil
	}

	// Pass 2: every metric field whose address reaches an obs.Registry
	// method call.
	registered := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegistryCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					if s, ok := pass.TypesInfo.Selections[sel]; ok {
						if v, ok := s.Obj().(*types.Var); ok {
							registered[v] = true
						}
					}
				}
				if id, ok := ast.Unparen(un.X).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						registered[v] = true
					}
				}
			}
			return true
		})
	}

	for _, d := range declared {
		if registered[d.obj] {
			continue
		}
		allows.Report(pass, d.nameID,
			"metric field %s.%s (%s) is never registered into an obs.Registry; wire it in RegisterMetrics or it will be invisible to snapshots and exporters",
			d.strct, d.obj.Name(), types.TypeString(d.obj.Type(), types.RelativeTo(pass.Pkg)))
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// isObsMetricType reports whether t is obs.Counter, obs.Gauge, or
// obs.Histogram (by name, so testdata stubs behave like the real
// package).
func isObsMetricType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || directive.PkgLastElem(obj.Pkg().Path()) != "obs" {
		return false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

// isRegistryCall reports whether call invokes a method on obs.Registry
// (by receiver type, so any registration helper counts).
func isRegistryCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		directive.PkgLastElem(obj.Pkg().Path()) == "obs"
}
