// Package obsreg defines an analyzer that keeps metric declarations
// and registry wiring in lockstep: every obs.Counter / obs.Gauge /
// obs.Histogram field declared in a struct of a package that uses the
// internal/obs registry must be registered (passed by address to a
// Registry method) somewhere in that package. It is the static twin of
// the exporters' runtime reconciliation — a counter that increments but
// was never enumerated silently vanishes from snapshots, Prometheus
// text, and phase timelines, which runtime reconciliation can only
// catch on code paths a test happens to drive.
//
// In packages that import the span tracer, the analyzer additionally
// keeps hot paths and span instrumentation in lockstep:
//
//   - A struct with //zbp:hotpath methods must declare a *span.Recorder
//     field (nil is the zero-cost disabled path) or carry an explicit
//     //zbp:allow obsreg opting it out — otherwise a subsystem on the
//     hot path silently falls out of the span hierarchy.
//   - An unexported *span.Recorder field must be assigned somewhere in
//     its package; nothing outside the package can wire it, so an
//     unassigned one means spans recorded through it can never appear.
package obsreg

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "obsreg"

// fieldDecl is one struct field of interest (an obs metric or a span
// recorder) with enough context to report on it.
type fieldDecl struct {
	obj    *types.Var
	strct  string
	node   *ast.Field
	nameID *ast.Ident
}

// Analyzer is the obsreg analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "every obs metric field must be wired into an obs.Registry; hot-path structs must carry span instrumentation",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	switch directive.PkgLastElem(pass.Pkg.Path()) {
	case "obs", "span":
		return nil, nil // the registry / tracer implementations themselves
	}
	allows := directive.CollectAllows(pass, name)

	// Pass 1: every obs metric field and span recorder field declared in
	// this package, plus each struct's type spec for span reporting.
	var declared []fieldDecl
	var recorders []fieldDecl
	hasRecorder := map[string]bool{}  // struct name -> declares a recorder field
	typeSpecs := map[string]*ast.TypeSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeSpecs[ts.Name.Name] = ts
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					d := fieldDecl{obj: obj, strct: ts.Name.Name, node: field, nameID: name}
					switch {
					case isObsMetricType(obj.Type()):
						declared = append(declared, d)
					case isSpanRecorderType(obj.Type()):
						hasRecorder[ts.Name.Name] = true
						recorders = append(recorders, d)
					}
				}
			}
			return true
		})
	}
	checkSpans(pass, allows, recorders, hasRecorder, typeSpecs)
	if len(declared) == 0 {
		allows.ReportUnused(pass)
		return nil, nil
	}

	// Pass 2: every metric field whose address reaches an obs.Registry
	// method call.
	registered := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegistryCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					if s, ok := pass.TypesInfo.Selections[sel]; ok {
						if v, ok := s.Obj().(*types.Var); ok {
							registered[v] = true
						}
					}
				}
				if id, ok := ast.Unparen(un.X).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						registered[v] = true
					}
				}
			}
			return true
		})
	}

	for _, d := range declared {
		if registered[d.obj] {
			continue
		}
		allows.Report(pass, d.nameID,
			"metric field %s.%s (%s) is never registered into an obs.Registry; wire it in RegisterMetrics or it will be invisible to snapshots and exporters",
			d.strct, d.obj.Name(), types.TypeString(d.obj.Type(), types.RelativeTo(pass.Pkg)))
	}
	allows.ReportUnused(pass)
	return nil, nil
}

// checkSpans enforces the span-instrumentation rules in packages that
// import the span tracer: hot-path structs declare a recorder,
// unexported recorder fields get assigned.
func checkSpans(pass *analysis.Pass, allows *directive.AllowSet,
	recorders []fieldDecl, hasRecorder map[string]bool, typeSpecs map[string]*ast.TypeSpec) {
	if !importsSpan(pass.Pkg) {
		return
	}

	// Structs with //zbp:hotpath methods must declare a recorder field.
	flagged := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !directive.HasHotpath(fn) {
				continue
			}
			strct := recvTypeName(pass, fn)
			if strct == "" || hasRecorder[strct] || flagged[strct] {
				continue
			}
			ts, ok := typeSpecs[strct]
			if !ok {
				continue // receiver type declared in another package's file set
			}
			flagged[strct] = true
			allows.Report(pass, ts.Name,
				"struct %s has //zbp:hotpath methods but declares no *span.Recorder field; thread the span tracer through it (nil = zero-cost disabled path) or annotate the type with //zbp:allow obsreg",
				strct)
		}
	}

	// Unexported recorder fields must be assigned somewhere in the
	// package: nothing outside it can wire them. Exported ones are
	// caller-set configuration (e.g. engine.Params.Spans) and exempt.
	assigned := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						if s, ok := pass.TypesInfo.Selections[sel]; ok {
							if v, ok := s.Obj().(*types.Var); ok {
								assigned[v] = true
							}
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						assigned[v] = true
					}
				}
			}
			return true
		})
	}
	for _, r := range recorders {
		if r.obj.Exported() || assigned[r.obj] {
			continue
		}
		allows.Report(pass, r.nameID,
			"span recorder field %s.%s is never assigned in this package; spans recorded through it can never be enabled",
			r.strct, r.obj.Name())
	}
}

// importsSpan reports whether pkg imports a span tracer package
// (matched by package-path last element, like the obs match).
func importsSpan(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if directive.PkgLastElem(imp.Path()) == "span" {
			return true
		}
	}
	return false
}

// recvTypeName resolves a method's receiver base type name.
func recvTypeName(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isSpanRecorderType reports whether t is *span.Recorder (by name, so
// testdata stubs behave like the real package).
func isSpanRecorderType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil &&
		directive.PkgLastElem(obj.Pkg().Path()) == "span"
}

// isObsMetricType reports whether t is obs.Counter, obs.Gauge, or
// obs.Histogram (by name, so testdata stubs behave like the real
// package).
func isObsMetricType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || directive.PkgLastElem(obj.Pkg().Path()) != "obs" {
		return false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

// isRegistryCall reports whether call invokes a method on obs.Registry
// (by receiver type, so any registration helper counts).
func isRegistryCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		directive.PkgLastElem(obj.Pkg().Path()) == "obs"
}
