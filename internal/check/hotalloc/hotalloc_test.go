package hotalloc_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/hotalloc"
)

// TestHotalloc exercises every forbidden construct class inside
// //zbp:hotpath functions, the allowed idioms (in-place append, value
// literals, pointer boxing), and the escape hatch.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "hot")
}
