// Package hotalloc defines an analyzer that enforces the
// zero-allocation hot-path contract documented in docs/OBSERVABILITY.md
// and pinned at runtime by the AllocsPerRun tests: a function whose doc
// comment carries //zbp:hotpath must not contain allocating constructs.
// The analyzer is intentionally syntactic and conservative — it flags
// the construct classes that allocate (or defeat escape analysis) in
// practice rather than reimplementing the compiler's escape analysis:
//
//   - fmt calls (interface boxing plus formatting state);
//   - string concatenation and to-string conversions of non-constant
//     operands;
//   - make, new, and address-taken/map/slice composite literals;
//   - function literals (closures capture and escape);
//   - append whose destination is not the slice being grown in place
//     (x = append(x, ...) amortizes into a preallocated buffer; any
//     other shape grows a fresh backing array on the hot path);
//   - conversions of non-pointer concrete values to interface types
//     (boxing).
//
// Value struct/array literals, arithmetic, and calls are allowed; a
// callee that is itself hot must carry its own //zbp:hotpath
// annotation to be checked. Intentional one-time allocations (lazy
// init) use //zbp:allow hotalloc <reason>.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "hotalloc"

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid allocating constructs in functions annotated //zbp:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := directive.CollectAllows(pass, name)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !directive.HasHotpath(fn) || fn.Body == nil {
				continue
			}
			checkBody(pass, allows, fn)
		}
	}
	allows.ReportUnused(pass)
	return nil, nil
}

func checkBody(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, allows, fn, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				allows.Report(pass, n, "hot path %s concatenates strings, which allocates", fn.Name.Name)
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, allows, fn, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					allows.Report(pass, n, "hot path %s takes the address of a composite literal, which heap-allocates", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			allows.Report(pass, n, "hot path %s declares a function literal; closures capture state and allocate", fn.Name.Name)
			return false
		case *ast.AssignStmt:
			checkAppend(pass, allows, fn, n)
		case *ast.GoStmt:
			allows.Report(pass, n, "hot path %s starts a goroutine, which allocates a stack", fn.Name.Name)
		case *ast.DeferStmt:
			allows.Report(pass, n, "hot path %s defers a call; defer records allocate in loops and inhibit inlining", fn.Name.Name)
		}
		checkInterfaceBoxing(pass, allows, fn, n)
		return true
	})
}

// isNonConstString reports whether the binary expression produces a
// string value that is not fully constant-folded at compile time
// (constant concatenations live in rodata and do not allocate).
func isNonConstString(pass *analysis.Pass, bin *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[bin]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func checkCall(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, call *ast.CallExpr) {
	switch callee := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[callee].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				allows.Report(pass, call, "hot path %s calls make, which allocates; preallocate in the constructor", fn.Name.Name)
			case "new":
				allows.Report(pass, call, "hot path %s calls new, which heap-allocates", fn.Name.Name)
			}
			return
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[callee.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			allows.Report(pass, call, "hot path %s calls fmt.%s, which boxes arguments and allocates", fn.Name.Name, f.Name())
			return
		}
	}
	// String conversion of a non-string operand: string(b), string(r).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Kind() == types.String {
			argT := pass.TypesInfo.TypeOf(call.Args[0])
			if argB, ok := argT.Underlying().(*types.Basic); !ok || argB.Info()&types.IsString == 0 {
				if v, ok := pass.TypesInfo.Types[call.Args[0]]; !ok || v.Value == nil {
					allows.Report(pass, call, "hot path %s converts to string, which allocates", fn.Name.Name)
				}
			}
		}
	}
}

func checkCompositeLit(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		allows.Report(pass, lit, "hot path %s builds a map literal, which allocates", fn.Name.Name)
	case *types.Slice:
		allows.Report(pass, lit, "hot path %s builds a slice literal, which allocates a backing array", fn.Name.Name)
	}
	// Value struct/array literals stay on the stack unless their
	// address is taken (caught by the UnaryExpr case).
}

// checkAppend enforces the preallocated-growth idiom: only
// x = append(x, ...) — growing a buffer in place — is accepted.
func checkAppend(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if i < len(as.Lhs) && sameStorage(pass, as.Lhs[i], call.Args[0]) {
			continue
		}
		allows.Report(pass, call,
			"hot path %s appends into a different slice than it grows; only x = append(x, ...) on a preallocated buffer is allocation-free in steady state", fn.Name.Name)
	}
}

// sameStorage reports whether two expressions statically denote the
// same variable or field chain (x and x, h.buf and h.buf, or
// x and x[:0] / x[:n] reslices of it).
func sameStorage(pass *analysis.Pass, a, b ast.Expr) bool {
	b = ast.Unparen(b)
	if sl, ok := b.(*ast.SliceExpr); ok {
		b = sl.X // x = append(x[:0], ...) reuses x's backing array
	}
	return refString(pass, a) != "" && refString(pass, a) == refString(pass, b)
}

// refString renders a restricted reference expression (idents and
// field selections) to a comparable string; anything else yields "".
func refString(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			return obj.Name()
		}
		return e.Name
	case *ast.SelectorExpr:
		base := refString(pass, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// checkInterfaceBoxing flags implicit conversions of non-pointer
// concrete values to interface types in assignments and call
// arguments.
func checkInterfaceBoxing(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		sig, ok := pass.TypesInfo.TypeOf(n.Fun).(*types.Signature)
		if !ok {
			return // conversion or builtin
		}
		params := sig.Params()
		for i, arg := range n.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if n.Ellipsis.IsValid() {
					continue // forwarding a slice, no boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			reportBoxing(pass, allows, fn, arg, pt)
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i, rhs := range n.Rhs {
			if lt := pass.TypesInfo.TypeOf(n.Lhs[i]); lt != nil {
				reportBoxing(pass, allows, fn, rhs, lt)
			}
		}
	}
}

func reportBoxing(pass *analysis.Pass, allows *directive.AllowSet, fn *ast.FuncDecl, val ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[val]
	if !ok || tv.Value != nil { // constants box into rodata-backed values
		return
	}
	vt := tv.Type
	if vt == nil || types.IsInterface(vt) {
		return
	}
	switch vt.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return // pointer-shaped: boxing does not copy to the heap
	}
	if basic, ok := vt.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	allows.Report(pass, val,
		"hot path %s converts non-pointer %s to interface %s, which heap-allocates the boxed copy",
		fn.Name.Name, types.TypeString(vt, types.RelativeTo(pass.Pkg)), types.TypeString(target, types.RelativeTo(pass.Pkg)))
}
