// Package lockset is the structured held-lock walker shared by the
// lockorder and guardedby analyzers. It tracks which sync.Mutex /
// sync.RWMutex values are held at every point of a function body,
// approximating control flow the way a human reviewer does:
//
//   - if/else branches are walked independently and merged by union,
//     except that a branch ending in return/panic/break contributes
//     nothing to the fall-through state (the early-unlock-and-return
//     ladder in jobq verifies cleanly);
//   - loop and switch bodies are walked once with a cloned state;
//   - defer mu.Unlock() marks the lock deferred — still held for
//     blocking-under-lock checks, exempt from held-at-return checks;
//   - function literals are walked separately with an empty held set
//     (a closure's synchronization is its own);
//   - select communication clauses are scanned for sub-expressions
//     only, so the enclosing select — not its cases — is the one
//     blocking point hooks see.
//
// Lock identity is type-level, not alias-level: q.mu on any *Queue is
// the key "jobq.Queue.mu". That is the granularity a lock-order
// discipline is stated at (gVisor's checklocks makes the same call),
// and it keeps the walker honest about what it can actually prove.
package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"bulkpreload/internal/check/directive"
)

// Op classifies a sync mutex method call.
type Op int

// Mutex operations the walker updates held state on.
const (
	OpLock Op = iota
	OpRLock
	OpUnlock
	OpRUnlock
)

// Lock is one held mutex.
type Lock struct {
	Key       string    // stable type-level identity, e.g. "jobq.Queue.mu"
	Pos       token.Pos // acquisition site (directive position for synthetic locks)
	Reader    bool      // acquired via RLock
	Deferred  bool      // a defer mu.Unlock() covers it
	Synthetic bool      // injected by //zbp:caller-holds; the caller releases it
}

// Hooks receive walk events. Any field may be nil.
type Hooks struct {
	// Acquire fires at a Lock/RLock call site, before the lock joins
	// the held set (held is the prior state).
	Acquire func(call *ast.CallExpr, l Lock, held []Lock)
	// Node fires for every scanned expression/statement node with the
	// current held set. Lock-call internals and function-literal bodies
	// are not delivered through the enclosing walk.
	Node func(n ast.Node, held []Lock)
	// Exit fires at every return statement and at a reachable function
	// end, with the still-held set (including deferred and synthetic
	// locks — the consumer filters).
	Exit func(pos token.Pos, held []Lock)
	// SkipLits leaves function literals unwalked entirely. Summary
	// passes set it: a literal's effects belong to whoever runs the
	// closure, not to the function that merely builds it.
	SkipLits bool
}

// Walker walks function bodies of one package.
type Walker struct {
	Info *types.Info
	Fset *token.FileSet
	// PkgName is directive.PkgLastElem of the package under analysis,
	// the fallback namespace for local and unresolvable lock keys.
	PkgName string
}

// Classify recognizes call as a mutex operation and derives the lock
// key. Only methods of the sync package named Lock/RLock/Unlock/RUnlock
// qualify (sync.Mutex, sync.RWMutex, sync.Locker).
func (w *Walker) Classify(call *ast.CallExpr) (op Op, key string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, "", false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "RLock":
		op = OpRLock
	case "Unlock":
		op = OpUnlock
	case "RUnlock":
		op = OpRUnlock
	default:
		return 0, "", false
	}
	fn, isFn := w.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, "", false
	}
	return op, w.KeyFor(sel.X), true
}

// KeyFor derives the stable lock key of a mutex-valued expression:
// struct fields as "pkg.Owner.field", package-level vars as "pkg.name",
// locals as "pkg.name@line" (stable across re-typechecks), embedded
// sync.Mutex receivers as "pkg.Owner.Mutex".
func (w *Walker) KeyFor(recv ast.Expr) string {
	recv = ast.Unparen(recv)
	t := w.Info.TypeOf(recv)
	if !isSyncType(t) {
		// The method was selected through an embedded mutex: key by the
		// owning named type.
		if pkg, name := namedOf(t); name != "" {
			return pkg + "." + name + ".Mutex"
		}
		return w.anonKey(recv)
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		v, isVar := w.Info.Uses[r.Sel].(*types.Var)
		if !isVar || v.Pkg() == nil {
			return w.anonKey(recv)
		}
		if !v.IsField() {
			// Package-qualified or promoted package-level var.
			return directive.PkgLastElem(v.Pkg().Path()) + "." + v.Name()
		}
		if pkg, owner := namedOf(w.Info.TypeOf(r.X)); owner != "" {
			return pkg + "." + owner + "." + v.Name()
		}
		return directive.PkgLastElem(v.Pkg().Path()) + "." + v.Name()
	case *ast.Ident:
		obj := w.Info.Uses[r]
		if obj == nil || obj.Pkg() == nil {
			return w.anonKey(recv)
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return directive.PkgLastElem(obj.Pkg().Path()) + "." + obj.Name()
		}
		// Function-local mutex: disambiguate same-named locals by the
		// declaration line (stable across separate type-checks).
		return fmt.Sprintf("%s.%s@%d", w.PkgName, obj.Name(), w.Fset.Position(obj.Pos()).Line)
	default:
		return w.anonKey(recv)
	}
}

func (w *Walker) anonKey(e ast.Expr) string {
	return fmt.Sprintf("%s.mutex@%d", w.PkgName, w.Fset.Position(e.Pos()).Line)
}

// FieldKey is the key a guarded field's mutex resolves to: the sibling
// mutex field muName of the named type owner in package pkgPath.
func FieldKey(pkgPath, owner, muName string) string {
	return directive.PkgLastElem(pkgPath) + "." + owner + "." + muName
}

// isSyncType reports whether t (possibly behind a pointer) is a named
// type of the sync package — Mutex, RWMutex, or the Locker interface.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// namedOf returns (PkgLastElem, type name) of t behind at most one
// pointer, or ("", "") when t is not a named type.
func namedOf(t types.Type) (pkg, name string) {
	if t == nil {
		return "", ""
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return directive.PkgLastElem(named.Obj().Pkg().Path()), named.Obj().Name()
}

// IsSyncMutex reports whether t (possibly behind a pointer) is a sync
// package mutex type — what //zbp:guardedby and //zbp:caller-holds may
// legally name.
func IsSyncMutex(t types.Type) bool { return isSyncType(t) }

// ResolveHold maps a //zbp:caller-holds name on fn to its lock key: a
// mutex field of fn's receiver type, or a package-level sync var of the
// declaring package. ok is false when the name resolves to neither.
func ResolveHold(info *types.Info, pkg *types.Package, fn *ast.FuncDecl, name string) (string, bool) {
	if name == "" {
		return "", false
	}
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := info.TypeOf(fn.Recv.List[0].Type)
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			if st, isStruct := named.Underlying().(*types.Struct); isStruct {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Name() == name && isSyncType(f.Type()) {
						return FieldKey(pkg.Path(), named.Obj().Name(), name), true
					}
				}
			}
		}
	}
	if v, isVar := pkg.Scope().Lookup(name).(*types.Var); isVar && isSyncType(v.Type()) {
		return directive.PkgLastElem(pkg.Path()) + "." + name, true
	}
	return "", false
}

// Held reports whether the set holds key (reader or writer).
func Held(held []Lock, key string) bool {
	for _, l := range held {
		if l.Key == key {
			return true
		}
	}
	return false
}

// Walk traverses fn's body (and, afterwards, every function literal it
// contains, each with an empty held set), firing hooks. entry seeds the
// held set — synthetic locks from //zbp:caller-holds.
func (w *Walker) Walk(fn *ast.FuncDecl, entry []Lock, h Hooks) {
	if fn.Body == nil {
		return
	}
	st := &walkState{w: w, h: h, held: append([]Lock(nil), entry...)}
	if !st.stmt(fn.Body) {
		st.exit(fn.Body.Rbrace)
	}
	if h.SkipLits {
		return
	}
	for i := 0; i < len(st.lits); i++ {
		lit := st.lits[i]
		st.held = nil
		if !st.stmt(lit.Body) {
			st.exit(lit.Body.Rbrace)
		}
	}
}

type walkState struct {
	w    *Walker
	h    Hooks
	held []Lock
	lits []*ast.FuncLit
}

func (s *walkState) exit(pos token.Pos) {
	if s.h.Exit != nil {
		s.h.Exit(pos, s.held)
	}
}

func (s *walkState) node(n ast.Node) {
	if s.h.Node != nil {
		s.h.Node(n, s.held)
	}
}

func (s *walkState) acquire(call *ast.CallExpr, key string, reader bool) {
	l := Lock{Key: key, Pos: call.Pos(), Reader: reader}
	if s.h.Acquire != nil {
		s.h.Acquire(call, l, s.held)
	}
	s.held = append(s.held, l)
}

// release drops the most recent holding of key (ignoring a release of
// something not held — the conservative choice for helper-split
// lock/unlock pairs the walker cannot see across).
func (s *walkState) release(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].Key == key {
			s.held = append(s.held[:i:i], s.held[i+1:]...)
			return
		}
	}
}

func (s *walkState) markDeferred(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].Key == key {
			s.held[i].Deferred = true
			return
		}
	}
}

func clone(held []Lock) []Lock { return append([]Lock(nil), held...) }

// union merges the held sets of two joining paths: a lock held on
// either path is (possibly) held after the join.
func union(a, b []Lock) []Lock {
	out := clone(a)
	for _, l := range b {
		found := false
		for i := range out {
			if out[i].Key == l.Key {
				out[i].Deferred = out[i].Deferred || l.Deferred
				found = true
				break
			}
		}
		if !found {
			out = append(out, l)
		}
	}
	return out
}

// scan inspects an expression (or simple statement) tree in evaluation
// order, intercepting mutex operations and function literals and
// delivering every other node through the Node hook.
func (s *walkState) scan(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			s.lits = append(s.lits, x)
			return false
		case *ast.CallExpr:
			if op, key, ok := s.w.Classify(x); ok {
				switch op {
				case OpLock:
					s.acquire(x, key, false)
				case OpRLock:
					s.acquire(x, key, true)
				case OpUnlock, OpRUnlock:
					s.release(key)
				}
				return false
			}
			s.node(x)
			return true
		default:
			if x != nil {
				s.node(x)
			}
			return true
		}
	})
}

// stmt walks one statement; it reports whether control provably does
// not continue past it (return, panic, break/continue/goto).
func (s *walkState) stmt(stmt ast.Stmt) bool {
	switch st := stmt.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, inner := range st.List {
			if s.stmt(inner) {
				return true // the rest is unreachable on this path
			}
		}
		return false
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt)
	case *ast.ReturnStmt:
		s.scan(st)
		s.exit(st.Pos())
		return true
	case *ast.BranchStmt:
		return st.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		s.scan(st)
		return isTerminalCall(s.w.Info, st.X)
	case *ast.DeferStmt:
		if op, key, ok := s.w.Classify(st.Call); ok && (op == OpUnlock || op == OpRUnlock) {
			s.markDeferred(key)
			return false
		}
		// The deferred call runs at return, not here: scan only the
		// immediately evaluated arguments; a deferred closure body is
		// walked like any other literal.
		for _, arg := range st.Call.Args {
			s.scan(arg)
		}
		if lit, isLit := st.Call.Fun.(*ast.FuncLit); isLit {
			s.lits = append(s.lits, lit)
		}
		return false
	case *ast.GoStmt:
		// Blocking happens on the new goroutine, not at the go
		// statement; same argument-only treatment as defer.
		for _, arg := range st.Call.Args {
			s.scan(arg)
		}
		if lit, isLit := st.Call.Fun.(*ast.FuncLit); isLit {
			s.lits = append(s.lits, lit)
		}
		return false
	case *ast.IfStmt:
		s.stmt(st.Init)
		s.scan(st.Cond)
		saved := clone(s.held)
		bodyTerm := s.stmt(st.Body)
		bodyHeld := s.held
		s.held = clone(saved)
		elseTerm := false
		if st.Else != nil {
			elseTerm = s.stmt(st.Else)
		}
		elseHeld := s.held
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			s.held = elseHeld
		case elseTerm:
			s.held = bodyHeld
		default:
			s.held = union(bodyHeld, elseHeld)
		}
		return false
	case *ast.ForStmt:
		s.stmt(st.Init)
		s.scan(st.Cond)
		saved := clone(s.held)
		term := s.stmt(st.Body)
		s.stmt(st.Post)
		if term {
			s.held = saved
		} else {
			s.held = union(saved, s.held)
		}
		return false
	case *ast.RangeStmt:
		s.node(st) // range-over-channel is a blocking point
		s.scan(st.X)
		s.scan(st.Key)
		s.scan(st.Value)
		saved := clone(s.held)
		term := s.stmt(st.Body)
		if term {
			s.held = saved
		} else {
			s.held = union(saved, s.held)
		}
		return false
	case *ast.SwitchStmt:
		s.stmt(st.Init)
		s.scan(st.Tag)
		return s.clauses(st.Body, false)
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init)
		s.stmt(st.Assign)
		return s.clauses(st.Body, false)
	case *ast.SelectStmt:
		s.node(st) // the select, not its cases, is the blocking point
		return s.clauses(st.Body, true)
	default:
		// Assignments, declarations, sends, inc/dec, empty statements:
		// plain expression scans.
		s.scan(stmt)
		return false
	}
}

// clauses walks switch/select case bodies, each from a clone of the
// entry state, and merges the non-terminating ends. exhaustive marks
// constructs that always execute some clause (select); an expression
// switch without a default can skip every case.
func (s *walkState) clauses(body *ast.BlockStmt, exhaustive bool) bool {
	saved := clone(s.held)
	var ends [][]Lock
	hasDefault := false
	allTerm := true
	for _, raw := range body.List {
		s.held = clone(saved)
		var stmts []ast.Stmt
		switch c := raw.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				s.scan(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			s.commExprs(c.Comm)
			stmts = c.Body
		}
		term := false
		for _, inner := range stmts {
			if s.stmt(inner) {
				term = true
				break
			}
		}
		if !term {
			allTerm = false
			ends = append(ends, s.held)
		}
	}
	covered := exhaustive || hasDefault
	if covered && allTerm && len(body.List) > 0 {
		return true
	}
	merged := []Lock(nil)
	if !covered {
		merged = saved // some path skips every clause
	}
	first := merged == nil
	for _, e := range ends {
		if first {
			merged = clone(e)
			first = false
		} else {
			merged = union(merged, e)
		}
	}
	if merged == nil {
		merged = saved
	}
	s.held = merged
	return false
}

// commExprs scans a select communication's sub-expressions without
// delivering the send/receive itself as a blocking node (the enclosing
// select already was).
func (s *walkState) commExprs(comm ast.Stmt) {
	switch c := comm.(type) {
	case nil:
	case *ast.SendStmt:
		s.scan(c.Chan)
		s.scan(c.Value)
	case *ast.AssignStmt:
		for _, l := range c.Lhs {
			s.scan(l)
		}
		for _, r := range c.Rhs {
			if u, isRecv := ast.Unparen(r).(*ast.UnaryExpr); isRecv && u.Op == token.ARROW {
				s.scan(u.X)
				continue
			}
			s.scan(r)
		}
	case *ast.ExprStmt:
		if u, isRecv := ast.Unparen(c.X).(*ast.UnaryExpr); isRecv && u.Op == token.ARROW {
			s.scan(u.X)
			return
		}
		s.scan(c.X)
	default:
		s.stmt(comm)
	}
}

// isTerminalCall recognizes expression statements that abort control
// flow: panic(...) and os.Exit(...).
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
			return b.Name() == "panic"
		}
	case *ast.SelectorExpr:
		if fn, isFn := info.Uses[fun.Sel].(*types.Func); isFn && fn.Pkg() != nil {
			return fn.Pkg().Path() == "os" && fn.Name() == "Exit"
		}
	}
	return false
}
