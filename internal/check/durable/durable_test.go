package durable_test

import (
	"testing"

	"bulkpreload/internal/check/analysistest"
	"bulkpreload/internal/check/durable"
)

func TestDurable(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), durable.Analyzer, "durablefx")
}
