// Package durable turns the service's crash-durability protocol — the
// reason an acknowledged Enqueue survives kill -9 — into an ordered-
// effects check on every function annotated //zbp:durable:
//
//   - journal-append ordering: once a durable function writes to a file
//     or stream, no in-memory state transition may become observable
//     until an fsync lands. Acknowledging (or applying) a record that
//     only exists in the page cache is the classic lost-write bug.
//   - atomic-install ordering: a temp file created with os.CreateTemp
//     must move through write → Sync → Rename → directory-Sync, in that
//     order, on every non-error path. Renaming before the sync can
//     install a torn file; skipping the directory sync can lose the
//     rename itself.
//
// The check walks branches separately and merges pessimistically, so an
// ordering violation on any path is a finding; paths that exit through
// an `err != nil` guard are cleanup, not protocol, and are exempt from
// the completeness rules (the violation rules still apply inside them).
// Callee effects splice in by summary — same-package recursively,
// cross-package through the facts store — so jobq.Queue.append keeps
// its guarantee even though the framing, the write, and the fsync live
// three functions apart.
package durable

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"bulkpreload/internal/check/directive"
)

const name = "durable"

// Effect kinds, in the order the protocol wants them.
const (
	fxCreateTemp = "createtemp" // os.CreateTemp
	fxWrite      = "write"      // file/stream write (incl. encoders)
	fxSync       = "sync"       // File.Sync on a written handle
	fxRename     = "rename"     // os.Rename
	fxDirSync    = "dirsync"    // File.Sync on a read-only os.Open handle
	fxMutate     = "mutate"     // in-memory state transition
)

// maxEffects caps a summary; past this the sequence carries no more
// ordering information.
const maxEffects = 32

// durFact is a function's effect sequence, exported so durable callers
// in other packages can splice it in.
type durFact struct {
	Effects []string
}

func (*durFact) AFact()           {}
func (f *durFact) String() string { return strings.Join(f.Effects, ",") }

// Analyzer is the durable analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "//zbp:durable functions must order effects per the crash-durability protocol: " +
		"journal writes reach Sync before state mutates; temp files go write -> Sync -> " +
		"Rename -> directory Sync on every non-error path",
	Run:       run,
	FactTypes: []analysis.Fact{(*durFact)(nil)},
}

// dstate is the protocol state at one program point.
type dstate struct {
	synced  bool // some write has been fsynced
	pending bool // a write has happened since the last fsync
	// temp-file installation progress: 0 none, 1 created, 2 written,
	// 3 synced, 4 renamed, 5 dirsynced.
	temp int
}

// merge joins two branch states pessimistically: synced only if both
// paths synced, pending if either path has an unsynced write, temp at
// the least-progressed stage.
func merge(a, b dstate) dstate {
	out := dstate{synced: a.synced && b.synced, pending: a.pending || b.pending, temp: a.temp}
	if b.temp < out.temp {
		out.temp = b.temp
	}
	return out
}

type checker struct {
	pass   *analysis.Pass
	allows *directive.AllowSet
	decls  map[types.Object]*ast.FuncDecl
	memo   map[types.Object][]string
	inProg map[types.Object]bool
	errT   *types.Interface
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:   pass,
		allows: directive.CollectAllows(pass, name),
		decls:  make(map[types.Object]*ast.FuncDecl),
		memo:   make(map[types.Object][]string),
		inProg: make(map[types.Object]bool),
		errT:   types.Universe.Lookup("error").Type().Underlying().(*types.Interface),
	}

	var durables []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				c.decls[obj] = fn
			}
			if directive.HasDurable(fn) {
				durables = append(durables, fn)
			}
		}
	}

	// Export every function's effect summary (durable or not) so
	// downstream durable callers can splice it; empty summaries are
	// skipped.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			if !isFn {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				continue
			}
			if fx := c.effectsOf(obj); len(fx) > 0 && pass.ExportObjectFact != nil {
				pass.ExportObjectFact(obj, &durFact{Effects: fx})
			}
		}
	}

	for _, fn := range durables {
		c.checkDurable(fn)
	}
	c.allows.ReportUnused(pass)
	return nil, nil
}

// effectsOf returns obj's memoized effect sequence: direct effects plus
// callee splices, preorder over every branch (the summary is a may-
// sequence — the precise branch-aware ordering check only runs inside
// annotated bodies).
func (c *checker) effectsOf(obj types.Object) []string {
	if fx, done := c.memo[obj]; done {
		return fx
	}
	if c.inProg[obj] {
		return nil // recursion: the first visit owns the summary
	}
	if obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg {
		var fact durFact
		if c.pass.ImportObjectFact != nil && c.pass.ImportObjectFact(obj, &fact) {
			c.memo[obj] = fact.Effects
			return fact.Effects
		}
		c.memo[obj] = nil
		return nil
	}
	fn := c.decls[obj]
	if fn == nil || fn.Body == nil {
		c.memo[obj] = nil
		return nil
	}
	c.inProg[obj] = true
	var fx []string
	readonly := readonlyHandles(c.pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if len(fx) >= maxEffects {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // the closure's effects run on its caller's clock
		case *ast.GoStmt, *ast.DeferStmt:
			return false // not synchronous at this point
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					if escapes(c.pass, fn, lhs) {
						fx = append(fx, fxMutate)
					}
				}
			}
		case *ast.IncDecStmt:
			if escapes(c.pass, fn, n.X) {
				fx = append(fx, fxMutate)
			}
		case *ast.CallExpr:
			if kind, ok := c.classifyCall(n, readonly); ok {
				fx = append(fx, kind)
				return true
			}
			if callee := calleeOf(c.pass.TypesInfo, n); callee != nil {
				fx = append(fx, c.effectsOf(callee)...)
			}
		}
		return true
	})
	if len(fx) > maxEffects {
		fx = fx[:maxEffects]
	}
	delete(c.inProg, obj)
	c.memo[obj] = fx
	return fx
}

// checkDurable runs the branch-aware ordering check over one annotated
// body.
func (c *checker) checkDurable(fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	w := &dwalk{c: c, fn: fn, fname: fn.Name.Name, readonly: readonlyHandles(c.pass, fn)}
	if !w.stmt(fn.Body) {
		w.complete(fn.Body.Rbrace)
	}
	if !w.sawEffect {
		c.allows.Report(c.pass, fn.Name, "%s is annotated //zbp:durable but has no durability-relevant effect (no write, sync, rename, or state transition); drop the annotation", w.fname)
	}
}

// dwalk is the per-function ordering walk.
type dwalk struct {
	c         *checker
	fn        *ast.FuncDecl
	fname     string
	readonly  map[types.Object]bool
	st        dstate
	errDepth  int // > 0 inside an `err != nil` cleanup branch
	sawEffect bool
}

// apply advances the protocol state by one effect, reporting ordering
// violations at the node that caused them.
func (w *dwalk) apply(n ast.Node, kind string) {
	w.sawEffect = true
	st := &w.st
	switch kind {
	case fxCreateTemp:
		st.temp = 1
	case fxWrite:
		st.pending = true
		if st.temp == 1 {
			st.temp = 2
		}
	case fxSync:
		st.pending = false
		st.synced = true
		if st.temp == 1 || st.temp == 2 {
			st.temp = 3
		}
	case fxRename:
		switch st.temp {
		case 1, 2:
			w.c.allows.Report(w.c.pass, n, "%s renames the temp file before Sync; a crash after the rename can install a torn or empty file — Sync must precede Rename", w.fname)
			st.temp = 4
		case 3:
			st.temp = 4
		}
	case fxDirSync:
		switch st.temp {
		case 4:
			st.temp = 5
		case 1, 2, 3:
			w.c.allows.Report(w.c.pass, n, "%s syncs the directory before the rename; the directory entry being made durable does not exist yet — Rename must precede the directory Sync", w.fname)
		}
	case fxMutate:
		switch {
		case st.pending:
			w.c.allows.Report(w.c.pass, n, "%s makes an in-memory state transition before the journal write reaches Sync; a crash here forgets state the caller may already observe — Sync first", w.fname)
		case !st.synced:
			w.c.allows.Report(w.c.pass, n, "%s makes an in-memory state transition with no synced journal write in this function; a //zbp:durable function must journal before it mutates", w.fname)
		}
	}
}

// complete enforces the end-of-path rules at a non-error exit.
func (w *dwalk) complete(pos token.Pos) {
	st := w.st
	if st.pending {
		w.c.allows.Report(w.c.pass, posRange(pos), "%s can return with a journal write that never reached Sync; an acknowledged record would be lost on crash", w.fname)
	}
	switch st.temp {
	case 1, 2:
		w.c.allows.Report(w.c.pass, posRange(pos), "%s can return with the temp file never synced; the atomic-install sequence is write -> Sync -> Rename -> directory Sync", w.fname)
	case 3:
		w.c.allows.Report(w.c.pass, posRange(pos), "%s can return with the temp file synced but never renamed into place; the new state is never installed", w.fname)
	case 4:
		w.c.allows.Report(w.c.pass, posRange(pos), "%s can return without syncing the directory after the rename; the rename itself can be lost on crash", w.fname)
	}
}

// scan applies effects from an expression-bearing statement or
// expression, preorder, pruning closures and deferred work.
func (w *dwalk) scan(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				for _, lhs := range x.Lhs {
					if escapes(w.c.pass, w.fn, lhs) {
						w.apply(x, fxMutate)
					}
				}
			}
		case *ast.IncDecStmt:
			if escapes(w.c.pass, w.fn, x.X) {
				w.apply(x, fxMutate)
			}
		case *ast.CallExpr:
			if kind, ok := w.c.classifyCall(x, w.readonly); ok {
				w.apply(x, kind)
				return true
			}
			if callee := calleeOf(w.c.pass.TypesInfo, x); callee != nil {
				for _, kind := range w.c.effectsOf(callee) {
					w.apply(x, kind)
				}
			}
		}
		return true
	})
}

// stmt walks one statement, branch-aware; reports whether control
// provably does not continue past it.
func (w *dwalk) stmt(stmt ast.Stmt) bool {
	switch st := stmt.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, inner := range st.List {
			if w.stmt(inner) {
				return true
			}
		}
		return false
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scan(e)
		}
		if w.errDepth == 0 {
			w.complete(st.Pos())
		}
		return true
	case *ast.BranchStmt:
		return st.Tok != token.FALLTHROUGH
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.scan(st.Cond)
		errThen, errElse := w.errBranches(st.Cond)
		saved := w.st
		if errThen {
			w.errDepth++
		}
		thenTerm := w.stmt(st.Body)
		if errThen {
			w.errDepth--
		}
		thenSt := w.st
		w.st = saved
		elseTerm := false
		if st.Else != nil {
			if errElse {
				w.errDepth++
			}
			elseTerm = w.stmt(st.Else)
			if errElse {
				w.errDepth--
			}
		}
		elseSt := w.st
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			w.st = elseSt
		case elseTerm:
			w.st = thenSt
		default:
			w.st = merge(thenSt, elseSt)
		}
		return false
	case *ast.ForStmt:
		w.stmt(st.Init)
		w.scan(st.Cond)
		saved := w.st
		term := w.stmt(st.Body)
		w.stmt(st.Post)
		if term {
			w.st = saved
		} else {
			w.st = merge(saved, w.st)
		}
		return false
	case *ast.RangeStmt:
		w.scan(st.X)
		saved := w.st
		term := w.stmt(st.Body)
		if term {
			w.st = saved
		} else {
			w.st = merge(saved, w.st)
		}
		return false
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		w.scan(st.Tag)
		return w.clauses(st.Body, false)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		return w.clauses(st.Body, false)
	case *ast.SelectStmt:
		return w.clauses(st.Body, true)
	case *ast.ExprStmt:
		w.scan(st)
		return isTerminalCall(w.c.pass.TypesInfo, st.X)
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	default:
		w.scan(stmt)
		return false
	}
}

// clauses walks switch/select cases from a cloned state each and merges
// the survivors, mirroring the lockset walker's shape.
func (w *dwalk) clauses(body *ast.BlockStmt, exhaustive bool) bool {
	saved := w.st
	var ends []dstate
	hasDefault := false
	allTerm := true
	for _, raw := range body.List {
		w.st = saved
		var stmts []ast.Stmt
		switch cl := raw.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.scan(e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			w.stmt(cl.Comm)
			stmts = cl.Body
		}
		term := false
		for _, inner := range stmts {
			if w.stmt(inner) {
				term = true
				break
			}
		}
		if !term {
			allTerm = false
			ends = append(ends, w.st)
		}
	}
	covered := exhaustive || hasDefault
	if covered && allTerm && len(body.List) > 0 {
		return true
	}
	out := saved
	first := covered // when covered, the first surviving clause seeds the merge
	for _, e := range ends {
		if first {
			out = e
			first = false
		} else {
			out = merge(out, e)
		}
	}
	w.st = out
	return false
}

// errBranches classifies an if condition: (then-is-error, else-is-error)
// for the `err != nil` / `err == nil` cleanup-guard idioms.
func (w *dwalk) errBranches(cond ast.Expr) (bool, bool) {
	bin, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin {
		return false, false
	}
	isErrNil := func(x, y ast.Expr) bool {
		if id, isID := ast.Unparen(y).(*ast.Ident); !isID || id.Name != "nil" {
			return false
		}
		t := w.c.pass.TypesInfo.TypeOf(x)
		return t != nil && types.Implements(t, w.c.errT)
	}
	errCmp := isErrNil(bin.X, bin.Y) || isErrNil(bin.Y, bin.X)
	if !errCmp {
		return false, false
	}
	switch bin.Op {
	case token.NEQ:
		return true, false
	case token.EQL:
		return false, true
	}
	return false, false
}

// readonlyHandles pre-scans a function for `d, err := os.Open(dir)`
// handles: a Sync on one of these is a directory sync (provenance: the
// handle was opened read-only and the protocol's only reason to Sync it
// is entry durability), not a data-file sync.
func readonlyHandles(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	opened := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, isAsg := n.(*ast.AssignStmt)
		if !isAsg || len(asg.Rhs) != 1 {
			return true
		}
		call, isCall := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !isCall {
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "os" || callee.Name() != "Open" {
			return true
		}
		if id, isID := asg.Lhs[0].(*ast.Ident); isID {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				opened[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				opened[obj] = true
			}
		}
		return true
	})
	// A handle that is ever written through is a data file after all.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteAt", "ReadFrom":
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
				delete(opened, pass.TypesInfo.Uses[id])
			}
		}
		return true
	})
	return opened
}

// classifyCall recognizes direct protocol effects by callee identity.
func (c *checker) classifyCall(call *ast.CallExpr, readonly map[types.Object]bool) (string, bool) {
	fn := calleeOf(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "os":
		if hasRecv {
			switch fn.Name() {
			case "Sync":
				if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
					if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && readonly[c.pass.TypesInfo.Uses[id]] {
						return fxDirSync, true
					}
				}
				return fxSync, true
			case "Write", "WriteString", "WriteAt", "ReadFrom":
				return fxWrite, true
			}
			return "", false
		}
		switch fn.Name() {
		case "Rename":
			return fxRename, true
		case "CreateTemp":
			return fxCreateTemp, true
		case "WriteFile":
			return fxWrite, true
		}
	case "io":
		if fn.Name() == "WriteString" || fn.Name() == "Copy" {
			return fxWrite, true
		}
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Fprint") {
			return fxWrite, true
		}
	case "encoding/gob", "encoding/json":
		if hasRecv && fn.Name() == "Encode" {
			return fxWrite, true
		}
	case "encoding/binary":
		if fn.Name() == "Write" {
			return fxWrite, true
		}
	}
	if hasRecv {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			switch fn.Name() {
			case "Write", "WriteString", "ReadFrom":
				return fxWrite, true
			}
		}
	}
	return "", false
}

// escapes reports whether an assignment target reaches state outside
// the function: a non-local identifier, or any write through a pointer,
// slice, or map (the inertpath lvalue classification, reduced to a
// boolean).
func escapes(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr) bool {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return false
			}
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				return false
			}
			return obj.Pos() < fn.Pos() || obj.Pos() >= fn.End()
		case *ast.SelectorExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			return true
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					return true
				}
			}
			e = ast.Unparen(x.X)
		default:
			return false
		}
	}
}

// calleeOf resolves a call's static callee, or nil for builtins,
// conversions, and computed function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isTerminalCall recognizes panic(...) and os.Exit(...).
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
			return b.Name() == "panic"
		}
	case *ast.SelectorExpr:
		if fn, isFn := info.Uses[fun.Sel].(*types.Func); isFn && fn.Pkg() != nil {
			return fn.Pkg().Path() == "os" && fn.Name() == "Exit"
		}
	}
	return false
}

// posRange adapts a bare position to analysis.Range.
type posRange token.Pos

func (p posRange) Pos() token.Pos { return token.Pos(p) }
func (p posRange) End() token.Pos { return token.Pos(p) }
