package btb

import (
	"math/rand"
	"reflect"
	"testing"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/zaddr"
)

// TestFaultParityInvalidatesPackedWord pins the parity contract on the
// packed layout: a detected upset in a packed tag/state word clears
// every lane of the slot, demotes the way to LRU, and counts a
// recovery — byte-for-byte the behavior of the struct layout under the
// same injector seed.
func TestFaultParityInvalidatesPackedWord(t *testing.T) {
	cfg := Config{Name: "par", Rows: 16, Ways: 2, IndexHi: 55, IndexLo: 58}
	refCfg := cfg
	refCfg.StructLayout = true
	packed, ref := New(cfg), New(refCfg)
	// A rate of 1e6 per million reads arms a strike on (essentially)
	// every read, so the very first lookup is hit deterministically.
	packed.SetInjector(fault.NewInjector("btb", 1e6, fault.Parity, 42, false))
	ref.SetInjector(fault.NewInjector("btb", 1e6, fault.Parity, 42, false))

	e := Entry{Addr: 0x4010, Target: 0x8888, Dir: 3, UsePHT: true, Length: 6}
	packed.Insert(e)
	ref.Insert(e)

	var hits []Hit
	if hits = packed.LookupLine(e.Addr, hits[:0]); len(hits) != 0 {
		t.Fatalf("packed: parity strike should have dropped the entry, got %d hits", len(hits))
	}
	if hits = ref.LookupLine(e.Addr, hits[:0]); len(hits) != 0 {
		t.Fatalf("struct: parity strike should have dropped the entry, got %d hits", len(hits))
	}
	if got := packed.Injector().Stats(); got.Recovered != 1 {
		t.Fatalf("packed: recovered = %d, want 1", got.Recovered)
	}
	if pS, rS := packed.Injector().Stats(), ref.Injector().Stats(); pS != rS {
		t.Fatalf("fault stats diverged: packed %+v vs struct %+v", pS, rS)
	}
	// The slot must be canonically empty in every lane, not just
	// invalid: all-zero words and the way at LRU.
	row := packed.RowFor(e.Addr)
	i := row * cfg.Ways
	for w := 0; w < cfg.Ways; w++ {
		if packed.tags[i+w] != 0 || packed.targets[i+w] != 0 || packed.metaField(i+w) != 0 {
			t.Fatalf("packed slot %d holds residue after parity recovery", i+w)
		}
	}
	if !reflect.DeepEqual(packed.State(), ref.State()) {
		t.Fatal("State diverged after parity recovery")
	}
	if packed.CountValid() != 0 {
		t.Fatalf("packed CountValid = %d after recovery", packed.CountValid())
	}
}

// TestFaultStructVsPackedModel drives both layouts with identically
// seeded injectors through a randomized workload, under both protection
// models, and demands identical silent corruptions, recoveries, Stats,
// and State — the packed flip of a target/dir/flag/length/valid bit
// must land on exactly the logical bit the struct layout flips.
func TestFaultStructVsPackedModel(t *testing.T) {
	cfg := Config{Name: "flt", Rows: 16, Ways: 4, IndexHi: 55, IndexLo: 58}
	for _, prot := range []fault.Protection{fault.Unprotected, fault.Parity} {
		refCfg := cfg
		refCfg.StructLayout = true
		packed, ref := New(cfg), New(refCfg)
		packed.SetInjector(fault.NewInjector("btb", 5000, prot, 0xDEAD, false))
		ref.SetInjector(fault.NewInjector("btb", 5000, prot, 0xDEAD, false))
		rng := rand.New(rand.NewSource(77))
		var hitsP, hitsR []Hit
		for op := 0; op < 30000; op++ {
			a := zaddr.Addr(rng.Intn(1<<11)) &^ 1
			switch rng.Intn(4) {
			case 0:
				e := Entry{Addr: a, Target: zaddr.Addr(rng.Uint64()), Dir: 2, Length: uint8(rng.Intn(8))}
				vP, evP := packed.Insert(e)
				vR, evR := ref.Insert(e)
				if vP != vR || evP != evR {
					t.Fatalf("prot %v op %d: Insert diverged", prot, op)
				}
			case 1, 2:
				hitsP = packed.LookupLine(a, hitsP[:0])
				hitsR = ref.LookupLine(a, hitsR[:0])
				if !reflect.DeepEqual(hitsP, hitsR) {
					t.Fatalf("prot %v op %d: LookupLine diverged under faults:\npacked %+v\nstruct %+v",
						prot, op, hitsP, hitsR)
				}
			case 3:
				eP, okP := packed.Find(a)
				eR, okR := ref.Find(a)
				if eP != eR || okP != okR {
					t.Fatalf("prot %v op %d: Find diverged under faults", prot, op)
				}
			}
		}
		if pS, rS := packed.Injector().Stats(), ref.Injector().Stats(); pS != rS {
			t.Fatalf("prot %v: fault stats diverged: %+v vs %+v", prot, pS, rS)
		}
		if pS, rS := packed.Stats(), ref.Stats(); pS != rS {
			t.Fatalf("prot %v: table stats diverged: %+v vs %+v", prot, pS, rS)
		}
		if !reflect.DeepEqual(packed.State(), ref.State()) {
			t.Fatalf("prot %v: State diverged under identical fault seeds", prot)
		}
	}
}
