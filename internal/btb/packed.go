package btb

import (
	"bulkpreload/internal/bht"
	"bulkpreload/internal/zaddr"
)

// Packed word formats (little-endian bit positions within each lane
// word; docs/PERFORMANCE.md has the full diagrams).
//
// Tag lane, one word per slot:
//
//	bit  0              valid
//	bits 1 .. offBits   in-line byte offset (address bits IndexLo+1..63)
//	bits tagShift ..    full tag (address bits 0..IndexHi-1)
//
// With IndexHi + IndexLo spanning the whole address, the three fields
// always fit: 1 + (63-IndexLo) + IndexHi = 65 - (index width) <= 64.
// The full tag is stored even under TagBits truncation so the branch
// address reconstructs exactly; truncation applies at compare time via
// lineMask/entryMask, which keep only the low TagBits bits of the tag
// field — precisely the bits the struct layout's tagOf compared. An
// invalid slot is all-zero in every lane, and every probe key carries
// valid=1, so invalid slots can never match a masked compare.
//
// Target lane: the raw 64-bit target address, one word per slot.
//
// Meta lane: one 16-bit field per slot, four fields per word:
//
//	bits 0..1  dir (2-bit bimodal counter)
//	bit  2     usePHT
//	bit  3     useCTB
//	bits 4..11 length
//
// LRU word, one per row: 4-bit way numbers indexed by recency rank,
// rank 0 (bits 0..3) = MRU, rank Ways-1 = LRU. Promote/demote are a
// masked shift of the ranks between the way's old and new position.
//
// The packlayout analyzer proves every codec below against these
// declarations (docs/STATIC_ANALYSIS.md#packlayout):
//
//zbp:layout tagword word:64 valid:0 offset:1..@offBits tag:@tagShift..63
//zbp:layout meta word:16 dir:metaDirShift..metaDirShift+1 usePHT:metaUsePHTBit useCTB:metaUseCTBBit length:metaLenShift..metaLenShift+7
//zbp:layout metaslots word:64 slot[4]:0..metaFieldBits-1
//zbp:layout lruword word:64 rank[16]:0..3
const (
	metaDirShift  = 0
	metaUsePHTBit = 2
	metaUseCTBBit = 3
	metaLenShift  = 4
	metaFieldBits = 16
)

// packKey builds the tag-lane word for address a: the value a resident
// entry for a would store, and the probe key a lookup for a compares
// rows against.
//
//zbp:hotpath
//zbp:layout tagword pack
func (t *Table) packKey(a zaddr.Addr) uint64 {
	k := 1 | zaddr.OffsetWithin(a, t.lineBytes)<<1
	if t.hiBits > 0 {
		k |= zaddr.Bits(a, 0, t.cfg.IndexHi-1) << t.tagShift
	}
	return k
}

// packMeta builds the 16-bit meta field for e.
//
//zbp:hotpath
//zbp:layout meta pack
func packMeta(e Entry) uint64 {
	m := uint64(e.Dir)&3 | uint64(e.Length)<<metaLenShift
	if e.UsePHT {
		m |= 1 << metaUsePHTBit
	}
	if e.UseCTB {
		m |= 1 << metaUseCTBBit
	}
	return m
}

// unpackEntry decodes slot (row, w) into *e. The branch address is
// reconstructed from the stored tag + the row index + the stored
// offset, which is exact: the tag field keeps all bits above the index
// even when compares truncate to TagBits.
//
//zbp:hotpath
//zbp:layout tagword unpack
//zbp:layout meta unpack
func (t *Table) unpackEntry(row, w int, e *Entry) {
	i := row*t.cfg.Ways + w
	k := t.tags[i]
	if k&1 == 0 {
		*e = Entry{}
		return
	}
	addr := uint64(row)<<t.offBits | k>>1&((1<<t.offBits)-1)
	if t.hiBits > 0 {
		addr |= k >> t.tagShift << (64 - t.hiBits)
	}
	m := t.metaField(i)
	e.Valid = true
	e.Addr = zaddr.Addr(addr)
	e.Target = zaddr.Addr(t.targets[i])
	e.Dir = bht.Bimodal(m >> metaDirShift & 3)
	e.UsePHT = m&(1<<metaUsePHTBit) != 0
	e.UseCTB = m&(1<<metaUseCTBBit) != 0
	e.Length = uint8(m >> metaLenShift)
}

// writeSlot stores e into slot i (unconditionally valid, like the
// hardware array write it models).
//
//zbp:hotpath
func (t *Table) writeSlot(i int, e Entry) {
	t.tags[i] = t.packKey(e.Addr)
	t.targets[i] = uint64(e.Target)
	t.setMetaField(i, packMeta(e))
}

// clearSlot zeroes every lane of slot i; all-zero is the canonical
// invalid state.
//
//zbp:hotpath
func (t *Table) clearSlot(i int) {
	t.tags[i] = 0
	t.targets[i] = 0
	t.setMetaField(i, 0)
}

// metaField returns slot i's 16-bit meta field.
//
//zbp:hotpath
//zbp:layout metaslots unpack
func (t *Table) metaField(i int) uint64 {
	return t.meta[i>>2] >> (uint(i&3) * metaFieldBits) & 0xFFFF
}

// setMetaField overwrites slot i's 16-bit meta field with v. The
// store masks v to the slot width so a wide value can never smear
// into the neighboring slots.
//
//zbp:hotpath
//zbp:layout metaslots pack
func (t *Table) setMetaField(i int, v uint64) {
	sh := uint(i&3) * metaFieldBits
	t.meta[i>>2] = t.meta[i>>2]&^(uint64(0xFFFF)<<sh) | (v&0xFFFF)<<sh
}

// xorMetaField flips the given bits of slot i's meta field (the fault
// injector's single-event-upset primitive). Masking bits to the slot
// width keeps the flip from leaking into the neighboring slots.
//
//zbp:hotpath
//zbp:layout metaslots pack
func (t *Table) xorMetaField(i int, bits uint64) {
	t.meta[i>>2] ^= (bits & 0xFFFF) << (uint(i&3) * metaFieldBits)
}

// rankOf returns way w's recency rank in the LRU word. The word is a
// permutation of the row's ways (checkLRUInvariant), so the scan always
// terminates within Ways nibbles; the final rank is returned without a
// compare to keep the loop bounded even on corrupt words.
//
//zbp:hotpath
//zbp:layout lruword unpack
func rankOf(word uint64, w, ways int) uint {
	for k := uint(0); k < uint(ways-1); k++ {
		if int(word>>(4*k)&0xF) == w {
			return k
		}
	}
	return uint(ways - 1)
}

// promoteWay moves way w of row to recency rank 0 (MRU): the ranks
// below w's old position shift up one nibble and w drops into rank 0.
//
//zbp:hotpath
//zbp:layout lruword pack
func (t *Table) promoteWay(row, w int) {
	word := t.lru[row]
	pos := rankOf(word, w, t.cfg.Ways)
	keep := word >> (4 * (pos + 1)) << (4 * (pos + 1)) // ranks above pos
	moved := (word & (1<<(4*pos) - 1)) << 4            // ranks 0..pos-1 -> 1..pos
	t.lru[row] = keep | moved | uint64(w)
}

// demoteWay moves way w of row to recency rank Ways-1 (LRU): the ranks
// above w's old position shift down one nibble and w lands in the last
// rank.
//
//zbp:hotpath
//zbp:layout lruword pack
func (t *Table) demoteWay(row, w int) {
	word := t.lru[row]
	pos := rankOf(word, w, t.cfg.Ways)
	keep := word & (1<<(4*pos) - 1)             // ranks below pos
	moved := word >> (4 * (pos + 1)) << (4 * pos) // ranks pos+1.. -> pos..
	t.lru[row] = keep | moved | uint64(w)<<(4*uint(t.cfg.Ways-1))
}
