package btb

import (
	"fmt"

	"bulkpreload/internal/zaddr"
)

// structStore is the retained array-of-structs storage backend — the
// layout the packed lanes replaced, kept verbatim as the oracle the
// layout differential gate and the property battery judge the packed
// implementation against (Config.StructLayout selects it).
type structStore struct {
	slots []Entry // rows x ways, flat
	// order holds per-row recency order: order[row*ways+k] is the way
	// index at recency rank k (rank 0 = MRU, rank ways-1 = LRU).
	order []uint8
}

func newStructStore(cfg Config) *structStore {
	s := &structStore{
		slots: make([]Entry, cfg.Rows*cfg.Ways),
		order: make([]uint8, cfg.Rows*cfg.Ways),
	}
	s.resetOrder(cfg)
	return s
}

func (s *structStore) resetOrder(cfg Config) {
	for row := 0; row < cfg.Rows; row++ {
		for w := 0; w < cfg.Ways; w++ {
			s.order[row*cfg.Ways+w] = uint8(w)
		}
	}
}

func (s *structStore) reset(cfg Config) {
	for i := range s.slots {
		s.slots[i] = Entry{}
	}
	s.resetOrder(cfg)
}

// tagOf extracts the comparison tag for an address. With TagBits = 0 the
// tag is every bit above the index; otherwise only TagBits bits
// immediately above the index, which lets distinct lines alias.
//
//zbp:hotpath
func (t *Table) tagOf(a zaddr.Addr) uint64 {
	if t.cfg.IndexHi == 0 {
		return 0 // index consumes the whole address; no tag bits remain
	}
	hi := uint(0)
	if t.cfg.TagBits != 0 && t.cfg.TagBits <= t.cfg.IndexHi {
		hi = t.cfg.IndexHi - t.cfg.TagBits
	}
	return zaddr.Bits(a, hi, t.cfg.IndexHi-1)
}

// lineMatch reports whether entry address ea and probe address pa map to
// the same row with equal tags — i.e. whether hardware would consider
// them the same 32-byte line.
//
//zbp:hotpath
func (t *Table) lineMatch(ea, pa zaddr.Addr) bool {
	return t.RowFor(ea) == t.RowFor(pa) && t.tagOf(ea) == t.tagOf(pa)
}

// lineOffset returns a's byte offset within this table's row coverage.
//
//zbp:hotpath
func (t *Table) lineOffset(a zaddr.Addr) uint {
	return uint(zaddr.OffsetWithin(a, uint64(t.cfg.LineBytes())))
}

// entryMatch reports whether an entry would be recognized as the branch
// at address a: same line (per tag policy) and same offset in the line.
//
//zbp:hotpath
func (t *Table) entryMatch(e *Entry, a zaddr.Addr) bool {
	return e.Valid && t.lineMatch(e.Addr, a) && t.lineOffset(e.Addr) == t.lineOffset(a)
}

//zbp:hotpath
func (t *Table) refLookupLine(line zaddr.Addr, out []Hit) []Hit {
	t.met.lookups.Inc()
	row := t.RowFor(line)
	base := row * t.cfg.Ways
	mruWay := int(t.ref.order[base])
	found := false
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.ref.slots[base+w]
		if !e.Valid {
			continue
		}
		if t.inj != nil {
			t.refFaultCheck(row, w)
			if !e.Valid {
				continue // parity recovery (or tag upset) dropped it
			}
		}
		if t.lineMatch(e.Addr, line) {
			out = append(out, Hit{Way: w, MRU: w == mruWay, Entry: *e})
			found = true
		}
	}
	if found {
		t.met.lineHits.Inc()
	}
	return out
}

//zbp:hotpath
func (t *Table) refFind(a zaddr.Addr) *Entry {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.ref.slots[base+w]
		if t.inj != nil && e.Valid {
			t.refFaultCheck(row, w)
		}
		if t.entryMatch(e, a) {
			return e
		}
	}
	return nil
}

//zbp:hotpath
func (t *Table) refUpdate(e Entry) bool {
	slot := t.refFind(e.Addr)
	if slot == nil {
		return false
	}
	e.Valid = true
	*slot = e
	t.met.updates.Inc()
	return true
}

//zbp:hotpath
func (t *Table) refInsert(e Entry, atLRU bool) (victim Entry, evicted bool) {
	e.Valid = true
	row := t.RowFor(e.Addr)
	base := row * t.cfg.Ways
	// Already present: in-place update.
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.ref.slots[base+w], e.Addr) {
			t.ref.slots[base+w] = e
			t.met.updates.Inc()
			if atLRU {
				t.refDemoteWay(row, w)
			} else {
				t.refPromoteWay(row, w)
			}
			return Entry{}, false
		}
	}
	// Free way?
	way := -1
	for w := 0; w < t.cfg.Ways; w++ {
		if !t.ref.slots[base+w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		// Replace LRU.
		way = int(t.ref.order[base+t.cfg.Ways-1])
		victim = t.ref.slots[base+way]
		evicted = true
		t.met.evicts.Inc()
	}
	t.ref.slots[base+way] = e
	t.met.installs.Inc()
	if atLRU {
		t.refDemoteWay(row, way)
	} else {
		t.refPromoteWay(row, way)
	}
	return victim, evicted
}

//zbp:hotpath
func (t *Table) refTouch(a zaddr.Addr) bool {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.ref.slots[base+w], a) {
			t.refPromoteWay(row, w)
			return true
		}
	}
	return false
}

//zbp:hotpath
func (t *Table) refDemote(a zaddr.Addr) bool {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.ref.slots[base+w], a) {
			t.refDemoteWay(row, w)
			return true
		}
	}
	return false
}

//zbp:hotpath
func (t *Table) refInvalidate(a zaddr.Addr) bool {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.ref.slots[base+w], a) {
			t.ref.slots[base+w] = Entry{}
			t.refDemoteWay(row, w)
			return true
		}
	}
	return false
}

// refPromoteWay moves way w of row to recency rank 0 (MRU).
//
//zbp:hotpath
func (t *Table) refPromoteWay(row, w int) {
	base := row * t.cfg.Ways
	ord := t.ref.order[base : base+t.cfg.Ways]
	pos := 0
	for ; pos < len(ord); pos++ {
		if int(ord[pos]) == w {
			break
		}
	}
	copy(ord[1:pos+1], ord[0:pos])
	ord[0] = uint8(w)
}

// refDemoteWay moves way w of row to recency rank ways-1 (LRU).
//
//zbp:hotpath
func (t *Table) refDemoteWay(row, w int) {
	base := row * t.cfg.Ways
	ord := t.ref.order[base : base+t.cfg.Ways]
	pos := 0
	for ; pos < len(ord); pos++ {
		if int(ord[pos]) == w {
			break
		}
	}
	copy(ord[pos:], ord[pos+1:])
	ord[len(ord)-1] = uint8(w)
}

func (t *Table) refMRUWay(a zaddr.Addr) int {
	return int(t.ref.order[t.RowFor(a)*t.cfg.Ways])
}

func (t *Table) refLRUEntry(a zaddr.Addr) Entry {
	base := t.RowFor(a) * t.cfg.Ways
	return t.ref.slots[base+int(t.ref.order[base+t.cfg.Ways-1])]
}

func (t *Table) refEntries() []zaddr.Addr {
	out := make([]zaddr.Addr, 0, t.refCountValid())
	for i := range t.ref.slots {
		if t.ref.slots[i].Valid {
			out = append(out, t.ref.slots[i].Addr)
		}
	}
	return out
}

func (t *Table) refCountValid() int {
	n := 0
	for i := range t.ref.slots {
		if t.ref.slots[i].Valid {
			n++
		}
	}
	return n
}

func (s *structStore) checkLRUInvariant(cfg Config) error {
	for row := 0; row < cfg.Rows; row++ {
		var seen uint64
		base := row * cfg.Ways
		for k := 0; k < cfg.Ways; k++ {
			w := s.order[base+k]
			if int(w) >= cfg.Ways {
				return fmt.Errorf("btb %s row %d: rank %d holds invalid way %d", cfg.Name, row, k, w)
			}
			if seen&(1<<w) != 0 {
				return fmt.Errorf("btb %s row %d: way %d appears twice in LRU order", cfg.Name, row, w)
			}
			seen |= 1 << w
		}
	}
	return nil
}
