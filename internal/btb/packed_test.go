package btb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/zaddr"
)

// packedGeometries are the row widths the paper ships and studies:
// IndexLo 58/57/56 give 32/64/128-byte rows. Ways vary to cover the
// paper's 4-way and 6-way tables plus an odd width.
var packedGeometries = []Config{
	{Name: "g32", Rows: 16, Ways: 2, IndexHi: 55, IndexLo: 58},
	{Name: "g64", Rows: 16, Ways: 3, IndexHi: 54, IndexLo: 57},
	{Name: "g128", Rows: 16, Ways: 6, IndexHi: 53, IndexLo: 56},
}

// TestPackedRoundTripExtremes drives every Entry field at its extremes
// through the packed layout — install, Find, State, RestoreState — and
// demands exact reconstruction, across all three row widths and both
// tag policies (full and truncated).
func TestPackedRoundTripExtremes(t *testing.T) {
	dirs := []bht.Bimodal{bht.StrongNT, bht.WeakNT, bht.WeakT, bht.StrongT}
	addrs := []zaddr.Addr{
		0,                  // all-zero address
		^zaddr.Addr(0) - 1, // every tag/offset bit set (2-byte aligned)
		0x0001_0000_0000_4242,
		0x7FFF_FFFF_FFFF_0006,
	}
	for _, geo := range packedGeometries {
		for _, tagBits := range []uint{0, 4} {
			cfg := geo
			cfg.TagBits = tagBits
			cfg.Name = fmt.Sprintf("%s/tag%d", geo.Name, tagBits)
			tbl := New(cfg)
			for _, a := range addrs {
				for _, dir := range dirs {
					for _, length := range []uint8{0, 1, 255} {
						for flags := 0; flags < 4; flags++ {
							e := Entry{
								Addr:   a,
								Target: ^zaddr.Addr(0),
								Dir:    dir,
								UsePHT: flags&1 != 0,
								UseCTB: flags&2 != 0,
								Length: length,
							}
							tbl.Reset()
							if _, ev := tbl.Insert(e); ev {
								t.Fatalf("%s: eviction from empty table", cfg.Name)
							}
							want := e
							want.Valid = true
							got, ok := tbl.Find(a)
							if !ok || got != want {
								t.Fatalf("%s: Find(%#x) = %+v, %v; want %+v", cfg.Name, uint64(a), got, ok, want)
							}
							st := tbl.State()
							if err := tbl.RestoreState(st); err != nil {
								t.Fatalf("%s: RestoreState: %v", cfg.Name, err)
							}
							if st2 := tbl.State(); !reflect.DeepEqual(st, st2) {
								t.Fatalf("%s: State changed across restore round-trip", cfg.Name)
							}
							if got, ok := tbl.Find(a); !ok || got != want {
								t.Fatalf("%s: post-restore Find(%#x) = %+v, %v", cfg.Name, uint64(a), got, ok)
							}
						}
					}
				}
			}
		}
	}
}

// layoutPair is a packed table and its struct-layout twin, fed identical
// operations.
type layoutPair struct {
	packed *Table
	ref    *Table
}

func newLayoutPair(cfg Config) layoutPair {
	p := cfg
	p.StructLayout = false
	r := cfg
	r.StructLayout = true
	return layoutPair{packed: New(p), ref: New(r)}
}

// randomEntry draws entries from a small address pool so rows collide,
// tags alias (under truncation), and LRU churn is constant.
func randomEntry(rng *rand.Rand, cfg Config) Entry {
	// Row, in-line offset, and a handful of distinct tag values; keep
	// addresses 2-byte aligned like real instruction addresses.
	a := zaddr.SetBits(0, cfg.IndexHi, cfg.IndexLo, uint64(rng.Intn(cfg.Rows)))
	a = zaddr.SetBits(a, cfg.IndexLo+1, 63, uint64(rng.Intn(cfg.LineBytes()))&^1)
	if cfg.IndexHi > 0 {
		a = zaddr.SetBits(a, 0, cfg.IndexHi-1, uint64(rng.Intn(6))*0x0101)
	}
	return Entry{
		Addr:   a,
		Target: zaddr.Addr(rng.Uint64()),
		Dir:    bht.Bimodal(rng.Intn(4)),
		UsePHT: rng.Intn(2) == 0,
		UseCTB: rng.Intn(2) == 0,
		Length: uint8(rng.Intn(256)),
	}
}

// TestStructVsPackedModel drives long randomized Insert / InsertAtLRU /
// Update / LookupLine / Find / Touch / Demote / Invalidate / accessor
// sequences against both layouts and demands identical results at every
// step: identical hits, identical eviction victims, identical recency
// observations, and finally identical Stats and byte-identical State.
func TestStructVsPackedModel(t *testing.T) {
	for _, geo := range packedGeometries {
		for _, tagBits := range []uint{0, 3} {
			cfg := geo
			cfg.TagBits = tagBits
			t.Run(fmt.Sprintf("%s/tag%d", geo.Name, tagBits), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(0x9E3779B9 + tagBits + uint(len(geo.Name)))))
				pair := newLayoutPair(cfg)
				var hitsP, hitsR []Hit
				for op := 0; op < 20000; op++ {
					e := randomEntry(rng, cfg)
					switch rng.Intn(10) {
					case 0, 1, 2:
						vP, evP := pair.packed.Insert(e)
						vR, evR := pair.ref.Insert(e)
						if vP != vR || evP != evR {
							t.Fatalf("op %d: Insert(%+v) diverged: packed (%+v,%v) vs struct (%+v,%v)",
								op, e, vP, evP, vR, evR)
						}
					case 3:
						vP, evP := pair.packed.InsertAtLRU(e)
						vR, evR := pair.ref.InsertAtLRU(e)
						if vP != vR || evP != evR {
							t.Fatalf("op %d: InsertAtLRU diverged: (%+v,%v) vs (%+v,%v)", op, vP, evP, vR, evR)
						}
					case 4:
						if okP, okR := pair.packed.Update(e), pair.ref.Update(e); okP != okR {
							t.Fatalf("op %d: Update diverged: %v vs %v", op, okP, okR)
						}
					case 5:
						hitsP = pair.packed.LookupLine(e.Addr, hitsP[:0])
						hitsR = pair.ref.LookupLine(e.Addr, hitsR[:0])
						if !reflect.DeepEqual(hitsP, hitsR) {
							t.Fatalf("op %d: LookupLine(%#x) diverged:\npacked %+v\nstruct %+v",
								op, uint64(e.Addr), hitsP, hitsR)
						}
					case 6:
						gP, okP := pair.packed.Find(e.Addr)
						gR, okR := pair.ref.Find(e.Addr)
						if gP != gR || okP != okR {
							t.Fatalf("op %d: Find diverged: (%+v,%v) vs (%+v,%v)", op, gP, okP, gR, okR)
						}
					case 7:
						if okP, okR := pair.packed.Touch(e.Addr), pair.ref.Touch(e.Addr); okP != okR {
							t.Fatalf("op %d: Touch diverged", op)
						}
					case 8:
						if okP, okR := pair.packed.Demote(e.Addr), pair.ref.Demote(e.Addr); okP != okR {
							t.Fatalf("op %d: Demote diverged", op)
						}
					case 9:
						if okP, okR := pair.packed.Invalidate(e.Addr), pair.ref.Invalidate(e.Addr); okP != okR {
							t.Fatalf("op %d: Invalidate diverged", op)
						}
					}
					if op%97 == 0 {
						if mP, mR := pair.packed.MRUWay(e.Addr), pair.ref.MRUWay(e.Addr); mP != mR {
							t.Fatalf("op %d: MRUWay diverged: %d vs %d", op, mP, mR)
						}
						if lP, lR := pair.packed.LRUEntry(e.Addr), pair.ref.LRUEntry(e.Addr); lP != lR {
							t.Fatalf("op %d: LRUEntry diverged: %+v vs %+v", op, lP, lR)
						}
						if cP, cR := pair.packed.Contains(e.Addr), pair.ref.Contains(e.Addr); cP != cR {
							t.Fatalf("op %d: Contains diverged", op)
						}
					}
				}
				if sP, sR := pair.packed.Stats(), pair.ref.Stats(); sP != sR {
					t.Fatalf("Stats diverged: packed %+v vs struct %+v", sP, sR)
				}
				if cP, cR := pair.packed.CountValid(), pair.ref.CountValid(); cP != cR {
					t.Fatalf("CountValid diverged: %d vs %d", cP, cR)
				}
				stP, stR := pair.packed.State(), pair.ref.State()
				if !reflect.DeepEqual(stP, stR) {
					t.Fatal("State diverged between layouts")
				}
				if err := pair.packed.CheckLRUInvariant(); err != nil {
					t.Fatalf("packed LRU invariant: %v", err)
				}
				if !reflect.DeepEqual(pair.packed.Entries(), pair.ref.Entries()) {
					t.Fatal("Entries diverged between layouts")
				}
				// Cross-layout checkpoint restore: packed state into the
				// struct table and vice versa must both take cleanly.
				if err := pair.ref.RestoreState(stP); err != nil {
					t.Fatalf("restoring packed state into struct layout: %v", err)
				}
				if err := pair.packed.RestoreState(stR); err != nil {
					t.Fatalf("restoring struct state into packed layout: %v", err)
				}
				if !reflect.DeepEqual(pair.packed.State(), pair.ref.State()) {
					t.Fatal("State diverged after cross-layout restore")
				}
			})
		}
	}
}

// TestPackedRestoreRejectsMisplacedEntry pins the packed layout's
// pre-pack placement check: a valid entry parked in a row its address
// does not index must be rejected, not silently re-addressed (the
// packed tag word would otherwise reconstruct a different address from
// the row position).
func TestPackedRestoreRejectsMisplacedEntry(t *testing.T) {
	cfg := Config{Name: "mis", Rows: 16, Ways: 2, IndexHi: 55, IndexLo: 58}
	tbl := New(cfg)
	st := tbl.State()
	bad := Entry{Valid: true, Addr: zaddr.SetBits(0, cfg.IndexHi, cfg.IndexLo, 5), Length: 4}
	st.Slots[0] = bad // row 0, but the address indexes row 5
	if err := tbl.RestoreState(st); err == nil {
		t.Fatal("RestoreState accepted a misplaced entry")
	}
	ref := New(Config{Name: "mis", Rows: 16, Ways: 2, IndexHi: 55, IndexLo: 58, StructLayout: true})
	if err := ref.RestoreState(st); err == nil {
		t.Fatal("struct-layout RestoreState accepted a misplaced entry")
	}
}
