package btb

import (
	"testing"

	"bulkpreload/internal/zaddr"
)

func BenchmarkLookupLine(b *testing.B) {
	t := New(BTB1Config)
	for i := 0; i < 4096; i++ {
		t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
	}
	var hits []Hit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits = t.LookupLine(zaddr.Addr(0x100000+(i%4096)*32), hits[:0])
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	t := New(BTB1Config)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
	}
}

func BenchmarkFind(b *testing.B) {
	t := New(BTB2Config)
	for i := 0; i < 24576; i++ {
		t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Find(zaddr.Addr(0x100000 + (i%24576)*40))
	}
}
