package btb

import (
	"testing"

	"bulkpreload/internal/zaddr"
)

func BenchmarkLookupLine(b *testing.B) {
	t := New(BTB1Config)
	for i := 0; i < 4096; i++ {
		t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
	}
	var hits []Hit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits = t.LookupLine(zaddr.Addr(0x100000+(i%4096)*32), hits[:0])
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	t := New(BTB1Config)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
	}
}

func BenchmarkFind(b *testing.B) {
	t := New(BTB2Config)
	for i := 0; i < 24576; i++ {
		t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Find(zaddr.Addr(0x100000 + (i%24576)*40))
	}
}

// benchLayouts runs f once per storage layout: the packed
// structure-of-arrays default and the retained struct-layout oracle.
func benchLayouts(b *testing.B, base Config, f func(b *testing.B, cfg Config)) {
	for _, l := range []struct {
		name         string
		structLayout bool
	}{{"packed", false}, {"struct", true}} {
		cfg := base
		cfg.StructLayout = l.structLayout
		b.Run(l.name, func(b *testing.B) { f(b, cfg) })
	}
}

// BenchmarkLookupLineLayout compares the line-probe hot path across
// storage layouts on a warm BTB1-geometry table.
func BenchmarkLookupLineLayout(b *testing.B) {
	benchLayouts(b, BTB1Config, func(b *testing.B, cfg Config) {
		t := New(cfg)
		for i := 0; i < 4096; i++ {
			t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
		}
		var hits []Hit
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hits = t.LookupLine(zaddr.Addr(0x100000+(i%4096)*32), hits[:0])
		}
	})
}

// BenchmarkInsertEvictLayout compares the insert/evict path across
// storage layouts (the table stays full, so every insert evicts).
func BenchmarkInsertEvictLayout(b *testing.B) {
	benchLayouts(b, BTB1Config, func(b *testing.B, cfg Config) {
		t := New(cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
		}
	})
}

// BenchmarkFindLayout compares the single-entry probe across storage
// layouts on the 24k-entry BTB2 geometry.
func BenchmarkFindLayout(b *testing.B) {
	benchLayouts(b, BTB2Config, func(b *testing.B, cfg Config) {
		t := New(cfg)
		for i := 0; i < 24576; i++ {
			t.Insert(entry(zaddr.Addr(0x100000 + i*40)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Find(zaddr.Addr(0x100000 + (i%24576)*40))
		}
	})
}
