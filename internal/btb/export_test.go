package btb

// CheckLRUInvariant exposes the internal recency-order invariant check to
// tests in this package and keeps it out of the public API.
func (t *Table) CheckLRUInvariant() error { return t.checkLRUInvariant() }
