// Package btb implements the tagged set-associative branch target buffer
// array used for all three levels of the zEC12 hierarchy (BTB1, BTBP,
// BTB2). The three levels differ only in geometry (rows, ways, index bit
// range) and in how the surrounding logic manipulates LRU state, so a
// single Table type serves all of them.
//
// A row normally covers 32 bytes of instruction space; an entry
// identifies one branch by the line it lives in (index + tag) plus its
// byte offset within the line. The paper's future-work section proposes
// widening the BTB2's congruence class to 64 or 128 bytes to raise
// tag-matching branches per search, so row coverage is derived from the
// index bit range rather than fixed: IndexLo 58 gives 32-byte rows, 57
// gives 64, 56 gives 128. Tags may be truncated (TagBits) to model the
// aliasing of partial-tag hardware designs; TagBits = 0 means full tags.
//
// # Storage layouts
//
// The default storage is a structure-of-arrays of bit-packed uint64
// lanes (see packed.go): one tag word per slot carrying
// valid|offset|tag, one raw target word, a 16-bit metadata field
// (dir|usePHT|useCTB|length) packed four to a word, and one LRU word
// per row holding the whole recency order as 4-bit ranks — a row scan
// is a handful of masked word compares and an LRU update is a shift,
// the way hardware and constant-driven simulators store this state.
// The original array-of-structs layout survives in oracle.go behind
// Config.StructLayout; the two are observationally equivalent, which
// the layout differential gate and the property/fuzz battery in this
// package prove (docs/PERFORMANCE.md documents the word formats).
package btb

import (
	"fmt"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Entry is one branch's prediction record. The paper: "each BTB1 entry
// contains a 2-bit bimodal Branch History Table (BHT) direction
// prediction and a target address used for predicted taken branches",
// plus control bits gating PHT/CTB use for that branch. BTBP and BTB2
// entries hold the same content.
type Entry struct {
	Valid  bool
	Addr   zaddr.Addr  // full branch instruction address
	Target zaddr.Addr  // predicted target when taken
	Dir    bht.Bimodal // bimodal direction state
	// UsePHT marks branches that have shown multiple directions; the PHT
	// overrides the bimodal direction for them.
	UsePHT bool
	// UseCTB marks branches that have shown multiple targets; the CTB
	// overrides the stored target for them.
	UseCTB bool
	// Length of the branch instruction in bytes, kept so predictions can
	// compute the not-taken fall-through address.
	Length uint8
}

// MaxWays bounds the associativity: the packed layout keeps a whole
// row's recency order in one uint64 as 4-bit ranks, so a row can hold
// at most 16 ways (the paper's widest table uses 6).
const MaxWays = 16

// Config fixes a table's geometry.
type Config struct {
	Name    string // for diagnostics: "BTB1", "BTBP", "BTB2"
	Rows    int    // number of congruence classes; power of two
	Ways    int    // set associativity
	IndexHi uint   // big-endian high bit of the index range
	IndexLo uint   // big-endian low bit of the index range (inclusive)
	// TagBits is the number of address bits immediately above the index
	// that are compared on lookup. 0 compares all bits above the index
	// (exact, alias-free tagging).
	TagBits uint
	// StructLayout selects the retained array-of-structs storage backend
	// instead of the default bit-packed structure-of-arrays lanes. The
	// layouts are observationally equivalent (the layout differential
	// gate proves it); the struct layout survives as the serial oracle
	// the packed one is judged against.
	StructLayout bool
}

// Validate checks that the geometry is self-consistent: the index range
// must address exactly Rows rows, and the row coverage implied by
// IndexLo must be a sane line size (the paper ships 32-byte rows and
// studies 64/128-byte BTB2 rows as future work).
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Rows&(c.Rows-1) != 0 {
		return fmt.Errorf("btb %s: rows %d not a positive power of two", c.Name, c.Rows)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("btb %s: ways %d must be positive", c.Name, c.Ways)
	}
	if c.Ways > MaxWays {
		return fmt.Errorf("btb %s: ways %d exceeds %d (a packed LRU word holds one 4-bit rank per way)",
			c.Name, c.Ways, MaxWays)
	}
	if c.IndexHi > c.IndexLo || c.IndexLo > 63 {
		return fmt.Errorf("btb %s: invalid index bit range %d:%d", c.Name, c.IndexHi, c.IndexLo)
	}
	width := c.IndexLo - c.IndexHi + 1
	if 1<<width != c.Rows {
		return fmt.Errorf("btb %s: index bits %d:%d address %d rows, config says %d",
			c.Name, c.IndexHi, c.IndexLo, 1<<width, c.Rows)
	}
	if lb := c.LineBytes(); lb < zaddr.RowBytes || lb > zaddr.SectorBytes {
		return fmt.Errorf("btb %s: index low bit %d implies %d-byte rows, want %d..%d",
			c.Name, c.IndexLo, lb, zaddr.RowBytes, zaddr.SectorBytes)
	}
	return nil
}

// LineBytes returns the instruction bytes covered by one row, implied by
// the index bit range (bits below IndexLo are the in-line offset).
func (c Config) LineBytes() int { return 1 << (63 - c.IndexLo) }

// Capacity returns the total number of entries.
func (c Config) Capacity() int { return c.Rows * c.Ways }

// Paper geometries (Section 3.1 / Table 3).
var (
	// BTB1Config is the 4k-branch first level: 1k rows x 4 ways, indexed
	// with instruction address bits 49:58.
	BTB1Config = Config{Name: "BTB1", Rows: 1024, Ways: 4, IndexHi: 49, IndexLo: 58}
	// BTBPConfig is the 768-branch preload table: 128 rows x 6 ways,
	// indexed with bits 52:58.
	BTBPConfig = Config{Name: "BTBP", Rows: 128, Ways: 6, IndexHi: 52, IndexLo: 58}
	// BTB2Config is the 24k-branch second level: 4k rows x 6 ways,
	// indexed with bits 47:58.
	BTB2Config = Config{Name: "BTB2", Rows: 4096, Ways: 6, IndexHi: 47, IndexLo: 58}
	// LargeBTB1Config is Table 3 configuration 3: the "unrealistically
	// large" 24k one-level BTB1 (4k rows x 6 ways).
	LargeBTB1Config = Config{Name: "BTB1-24k", Rows: 4096, Ways: 6, IndexHi: 47, IndexLo: 58}
)

// Stats is a point-in-time view of the table's activity counters. The
// canonical storage is the obs metrics (see RegisterMetrics); Stats
// remains the convenient comparable value for tests and reports.
type Stats struct {
	Lookups  int64 // LookupLine calls
	LineHits int64 // lookups that found at least one matching entry
	Installs int64 // new entries written
	Updates  int64 // in-place updates of existing entries
	Evicts   int64 // valid victims displaced by installs
}

// metrics is the table's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	lineHits obs.Counter
	installs obs.Counter
	updates  obs.Counter
	evicts   obs.Counter
}

// Table is a set-associative tagged BTB.
type Table struct {
	cfg Config

	// Packed structure-of-arrays lanes (the default layout; all nil when
	// ref is set). See packed.go for the word formats.
	tags    []uint64 // per slot: valid | in-line offset | tag
	targets []uint64 // per slot: raw target address
	meta    []uint64 // four 16-bit dir/usePHT/useCTB/length fields per word
	lru     []uint64 // per row: recency order, 4-bit way per rank (rank 0 = MRU)

	// Precomputed packed-geometry constants (see packed.go).
	offBits   uint   // in-line offset width: 63 - IndexLo
	tagShift  uint   // tag field's shift within the tag word: 1 + offBits
	hiBits    uint   // address bits above the index: IndexHi
	lineBytes uint64 // LineBytes() as uint64
	entryMask uint64 // valid + compared tag bits + offset
	lineMask  uint64 // valid + compared tag bits
	initLRU   uint64 // reset recency order: way k at rank k

	// ref, when non-nil, is the retained array-of-structs storage and
	// the packed lanes are unused (Config.StructLayout).
	ref *structStore

	// inj, when non-nil, strikes soft errors on valid-entry reads; nil
	// (the default) is the zero-cost disabled state. See fault.go.
	inj *fault.Injector
	met metrics
}

// New builds an empty table; it panics if cfg is invalid (geometry is a
// programming error, not an input error).
func New(cfg Config) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Table{
		cfg:       cfg,
		offBits:   63 - cfg.IndexLo,
		hiBits:    cfg.IndexHi,
		lineBytes: uint64(cfg.LineBytes()),
	}
	t.tagShift = 1 + t.offBits
	cmp := t.hiBits
	if cfg.TagBits != 0 && cfg.TagBits <= t.hiBits {
		cmp = cfg.TagBits
	}
	t.lineMask = 1
	if cmp > 0 {
		t.lineMask |= ((uint64(1) << cmp) - 1) << t.tagShift
	}
	t.entryMask = t.lineMask | ((uint64(1)<<t.offBits)-1)<<1
	for w := 0; w < cfg.Ways; w++ {
		t.initLRU |= uint64(w) << (4 * uint(w))
	}
	if cfg.StructLayout {
		t.ref = newStructStore(cfg)
		return t
	}
	n := cfg.Rows * cfg.Ways
	t.tags = make([]uint64, n)
	t.targets = make([]uint64, n)
	t.meta = make([]uint64, (n+3)/4)
	t.lru = make([]uint64, cfg.Rows)
	for row := range t.lru {
		t.lru[row] = t.initLRU
	}
	return t
}

// Config returns the table geometry.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a view of the activity counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		LineHits: t.met.lineHits.Value(),
		Installs: t.met.installs.Value(),
		Updates:  t.met.updates.Value(),
		Evicts:   t.met.evicts.Value(),
	}
}

// RegisterMetrics enumerates the table's counters (plus a computed
// occupancy gauge) into r under the given prefix, e.g. "btb1_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "searches", "LookupLine congruence-class reads", &t.met.lookups)
	r.Counter(prefix+"line_hits_total", "searches", "lookups finding at least one matching entry", &t.met.lineHits)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.Counter(prefix+"updates_total", "entries", "in-place updates of existing entries", &t.met.updates)
	r.Counter(prefix+"evicts_total", "entries", "valid victims displaced by installs", &t.met.evicts)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// RowFor returns the congruence class the address maps to.
//
//zbp:hotpath
func (t *Table) RowFor(a zaddr.Addr) int {
	return int(zaddr.Bits(a, t.cfg.IndexHi, t.cfg.IndexLo))
}

// Hit describes one matching entry found by LookupLine.
type Hit struct {
	Way   int
	MRU   bool // entry is in the most-recently-used way of its row
	Entry Entry
}

// LookupLine returns all valid entries in the row of line whose tags
// match the line, in way order. This models the parallel read of a full
// congruence class performed each search cycle. The result shares no
// storage with the table.
//
//zbp:hotpath
func (t *Table) LookupLine(line zaddr.Addr, out []Hit) []Hit {
	if t.ref != nil {
		return t.refLookupLine(line, out)
	}
	t.met.lookups.Inc()
	row := t.RowFor(line)
	base := row * t.cfg.Ways
	key := t.packKey(line)
	mruWay := int(t.lru[row] & 0xF)
	found := false
	for w := 0; w < t.cfg.Ways; w++ {
		k := t.tags[base+w]
		if k&1 == 0 {
			continue
		}
		if t.inj != nil {
			t.faultCheck(row, w)
			k = t.tags[base+w]
			if k&1 == 0 {
				continue // parity recovery (or tag upset) dropped it
			}
		}
		if (k^key)&t.lineMask == 0 {
			var h Hit
			h.Way = w
			h.MRU = w == mruWay
			t.unpackEntry(row, w, &h.Entry)
			out = append(out, h)
			found = true
		}
	}
	if found {
		t.met.lineHits.Inc()
	}
	return out
}

// Find returns a copy of the entry recognized as branch a, if present.
//
//zbp:hotpath
func (t *Table) Find(a zaddr.Addr) (Entry, bool) {
	if t.ref != nil {
		if e := t.refFind(a); e != nil {
			return *e, true
		}
		return Entry{}, false
	}
	row := t.RowFor(a)
	if w := t.findWay(row, a); w >= 0 {
		var e Entry
		t.unpackEntry(row, w, &e)
		return e, true
	}
	return Entry{}, false
}

// findWay scans row for the entry recognized as branch a (striking
// scheduled faults on the valid entries it reads, like the hardware
// read it models) and returns its way, or -1.
//
//zbp:hotpath
func (t *Table) findWay(row int, a zaddr.Addr) int {
	base := row * t.cfg.Ways
	key := t.packKey(a)
	for w := 0; w < t.cfg.Ways; w++ {
		if t.inj != nil && t.tags[base+w]&1 != 0 {
			t.faultCheck(row, w)
		}
		if (t.tags[base+w]^key)&t.entryMask == 0 {
			return w
		}
	}
	return -1
}

// Contains reports whether branch a has an entry.
func (t *Table) Contains(a zaddr.Addr) bool {
	if t.ref != nil {
		return t.refFind(a) != nil
	}
	return t.findWay(t.RowFor(a), a) >= 0
}

// Update overwrites the existing entry for branch e.Addr in place,
// preserving its recency rank. It reports whether an entry was found.
//
//zbp:hotpath
func (t *Table) Update(e Entry) bool {
	if t.ref != nil {
		return t.refUpdate(e)
	}
	row := t.RowFor(e.Addr)
	w := t.findWay(row, e.Addr)
	if w < 0 {
		return false
	}
	t.writeSlot(row*t.cfg.Ways+w, e)
	t.met.updates.Inc()
	return true
}

// Insert writes e into the row for e.Addr. If the branch is already
// present it is updated in place and made MRU. Otherwise the entry is
// written over an invalid way if one exists, else over the LRU way, and
// made MRU; the displaced valid entry, if any, is returned as the victim.
//
//zbp:hotpath
func (t *Table) Insert(e Entry) (victim Entry, evicted bool) {
	return t.insert(e, false)
}

// InsertAtLRU writes e like Insert but leaves the new entry at the LRU
// recency rank instead of promoting it. The BTB2's semi-exclusive policy
// uses this for entries that were just copied *out* (made LRU so future
// victims overwrite them first).
//
//zbp:hotpath
func (t *Table) InsertAtLRU(e Entry) (victim Entry, evicted bool) {
	return t.insert(e, true)
}

//zbp:hotpath
func (t *Table) insert(e Entry, atLRU bool) (victim Entry, evicted bool) {
	if t.ref != nil {
		return t.refInsert(e, atLRU)
	}
	row := t.RowFor(e.Addr)
	base := row * t.cfg.Ways
	key := t.packKey(e.Addr)
	// Already present: in-place update.
	for w := 0; w < t.cfg.Ways; w++ {
		if (t.tags[base+w]^key)&t.entryMask == 0 {
			t.writeSlot(base+w, e)
			t.met.updates.Inc()
			if atLRU {
				t.demoteWay(row, w)
			} else {
				t.promoteWay(row, w)
			}
			return Entry{}, false
		}
	}
	// Free way?
	way := -1
	for w := 0; w < t.cfg.Ways; w++ {
		if t.tags[base+w]&1 == 0 {
			way = w
			break
		}
	}
	if way < 0 {
		// Replace LRU.
		way = int(t.lru[row] >> (4 * uint(t.cfg.Ways-1)) & 0xF)
		t.unpackEntry(row, way, &victim)
		evicted = true
		t.met.evicts.Inc()
	}
	t.writeSlot(base+way, e)
	t.met.installs.Inc()
	if atLRU {
		t.demoteWay(row, way)
	} else {
		t.promoteWay(row, way)
	}
	return victim, evicted
}

// Touch makes the entry for branch a most recently used. It reports
// whether the branch was present.
//
//zbp:hotpath
func (t *Table) Touch(a zaddr.Addr) bool {
	if t.ref != nil {
		return t.refTouch(a)
	}
	row := t.RowFor(a)
	if w := t.matchWay(row, a); w >= 0 {
		t.promoteWay(row, w)
		return true
	}
	return false
}

// Demote makes the entry for branch a least recently used. The paper's
// semi-exclusive policy: "When an entry is copied from BTB2 to BTBP, it
// is made LRU in the BTB2", so subsequent victims/installs replace it.
//
//zbp:hotpath
func (t *Table) Demote(a zaddr.Addr) bool {
	if t.ref != nil {
		return t.refDemote(a)
	}
	row := t.RowFor(a)
	if w := t.matchWay(row, a); w >= 0 {
		t.demoteWay(row, w)
		return true
	}
	return false
}

// Invalidate removes the entry for branch a, reporting whether it was
// present. The removed way becomes LRU.
//
//zbp:hotpath
func (t *Table) Invalidate(a zaddr.Addr) bool {
	if t.ref != nil {
		return t.refInvalidate(a)
	}
	row := t.RowFor(a)
	if w := t.matchWay(row, a); w >= 0 {
		t.clearSlot(row*t.cfg.Ways + w)
		t.demoteWay(row, w)
		return true
	}
	return false
}

// matchWay scans row for the entry recognized as branch a without
// striking faults (the write paths Touch/Demote/Invalidate/insert are
// not array reads in the fault model) and returns its way, or -1.
//
//zbp:hotpath
func (t *Table) matchWay(row int, a zaddr.Addr) int {
	base := row * t.cfg.Ways
	key := t.packKey(a)
	for w := 0; w < t.cfg.Ways; w++ {
		if (t.tags[base+w]^key)&t.entryMask == 0 {
			return w
		}
	}
	return -1
}

// MRUWay returns the most recently used way of the row containing a.
func (t *Table) MRUWay(a zaddr.Addr) int {
	if t.ref != nil {
		return t.refMRUWay(a)
	}
	return int(t.lru[t.RowFor(a)] & 0xF)
}

// LRUEntry returns a copy of the LRU entry of the row containing a.
func (t *Table) LRUEntry(a zaddr.Addr) Entry {
	if t.ref != nil {
		return t.refLRUEntry(a)
	}
	row := t.RowFor(a)
	way := int(t.lru[row] >> (4 * uint(t.cfg.Ways-1)) & 0xF)
	var e Entry
	t.unpackEntry(row, way, &e)
	return e
}

// Entries returns the branch addresses of all valid entries, in storage
// order. Intended for invariant checks and diagnostics.
func (t *Table) Entries() []zaddr.Addr {
	if t.ref != nil {
		return t.refEntries()
	}
	out := make([]zaddr.Addr, 0, t.CountValid())
	var e Entry
	for i := range t.tags {
		if t.tags[i]&1 != 0 {
			t.unpackEntry(i/t.cfg.Ways, i%t.cfg.Ways, &e)
			out = append(out, e.Addr)
		}
	}
	return out
}

// CountValid returns the number of valid entries in the whole table.
func (t *Table) CountValid() int {
	if t.ref != nil {
		return t.refCountValid()
	}
	n := 0
	for i := range t.tags {
		if t.tags[i]&1 != 0 {
			n++
		}
	}
	return n
}

// Reset invalidates every entry and restores initial LRU order.
func (t *Table) Reset() {
	if t.ref != nil {
		t.ref.reset(t.cfg)
	} else {
		for i := range t.tags {
			t.tags[i] = 0
			t.targets[i] = 0
		}
		for i := range t.meta {
			t.meta[i] = 0
		}
		for row := range t.lru {
			t.lru[row] = t.initLRU
		}
	}
	t.met = metrics{}
}

// checkLRUInvariant verifies that each row's recency order is a
// permutation of its ways. Exposed for tests via export_test.go.
func (t *Table) checkLRUInvariant() error {
	if t.ref != nil {
		return t.ref.checkLRUInvariant(t.cfg)
	}
	for row := 0; row < t.cfg.Rows; row++ {
		word := t.lru[row]
		var seen uint64
		for k := 0; k < t.cfg.Ways; k++ {
			w := word >> (4 * uint(k)) & 0xF
			if int(w) >= t.cfg.Ways {
				return fmt.Errorf("btb %s row %d: rank %d holds invalid way %d", t.cfg.Name, row, k, w)
			}
			if seen&(1<<w) != 0 {
				return fmt.Errorf("btb %s row %d: way %d appears twice in LRU order", t.cfg.Name, row, w)
			}
			seen |= 1 << w
		}
		if t.cfg.Ways < MaxWays && word>>(4*uint(t.cfg.Ways)) != 0 {
			return fmt.Errorf("btb %s row %d: LRU word %#x has bits above rank %d",
				t.cfg.Name, row, word, t.cfg.Ways-1)
		}
	}
	return nil
}
