// Package btb implements the tagged set-associative branch target buffer
// array used for all three levels of the zEC12 hierarchy (BTB1, BTBP,
// BTB2). The three levels differ only in geometry (rows, ways, index bit
// range) and in how the surrounding logic manipulates LRU state, so a
// single Table type serves all of them.
//
// A row normally covers 32 bytes of instruction space; an entry
// identifies one branch by the line it lives in (index + tag) plus its
// byte offset within the line. The paper's future-work section proposes
// widening the BTB2's congruence class to 64 or 128 bytes to raise
// tag-matching branches per search, so row coverage is derived from the
// index bit range rather than fixed: IndexLo 58 gives 32-byte rows, 57
// gives 64, 56 gives 128. Tags may be truncated (TagBits) to model the
// aliasing of partial-tag hardware designs; TagBits = 0 means full tags.
package btb

import (
	"fmt"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Entry is one branch's prediction record. The paper: "each BTB1 entry
// contains a 2-bit bimodal Branch History Table (BHT) direction
// prediction and a target address used for predicted taken branches",
// plus control bits gating PHT/CTB use for that branch. BTBP and BTB2
// entries hold the same content.
type Entry struct {
	Valid  bool
	Addr   zaddr.Addr  // full branch instruction address
	Target zaddr.Addr  // predicted target when taken
	Dir    bht.Bimodal // bimodal direction state
	// UsePHT marks branches that have shown multiple directions; the PHT
	// overrides the bimodal direction for them.
	UsePHT bool
	// UseCTB marks branches that have shown multiple targets; the CTB
	// overrides the stored target for them.
	UseCTB bool
	// Length of the branch instruction in bytes, kept so predictions can
	// compute the not-taken fall-through address.
	Length uint8
}

// Config fixes a table's geometry.
type Config struct {
	Name    string // for diagnostics: "BTB1", "BTBP", "BTB2"
	Rows    int    // number of congruence classes; power of two
	Ways    int    // set associativity
	IndexHi uint   // big-endian high bit of the index range
	IndexLo uint   // big-endian low bit of the index range (inclusive)
	// TagBits is the number of address bits immediately above the index
	// that are compared on lookup. 0 compares all bits above the index
	// (exact, alias-free tagging).
	TagBits uint
}

// Validate checks that the geometry is self-consistent: the index range
// must address exactly Rows rows, and the row coverage implied by
// IndexLo must be a sane line size (the paper ships 32-byte rows and
// studies 64/128-byte BTB2 rows as future work).
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Rows&(c.Rows-1) != 0 {
		return fmt.Errorf("btb %s: rows %d not a positive power of two", c.Name, c.Rows)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("btb %s: ways %d must be positive", c.Name, c.Ways)
	}
	if c.IndexHi > c.IndexLo || c.IndexLo > 63 {
		return fmt.Errorf("btb %s: invalid index bit range %d:%d", c.Name, c.IndexHi, c.IndexLo)
	}
	width := c.IndexLo - c.IndexHi + 1
	if 1<<width != c.Rows {
		return fmt.Errorf("btb %s: index bits %d:%d address %d rows, config says %d",
			c.Name, c.IndexHi, c.IndexLo, 1<<width, c.Rows)
	}
	if lb := c.LineBytes(); lb < zaddr.RowBytes || lb > zaddr.SectorBytes {
		return fmt.Errorf("btb %s: index low bit %d implies %d-byte rows, want %d..%d",
			c.Name, c.IndexLo, lb, zaddr.RowBytes, zaddr.SectorBytes)
	}
	return nil
}

// LineBytes returns the instruction bytes covered by one row, implied by
// the index bit range (bits below IndexLo are the in-line offset).
func (c Config) LineBytes() int { return 1 << (63 - c.IndexLo) }

// Capacity returns the total number of entries.
func (c Config) Capacity() int { return c.Rows * c.Ways }

// Paper geometries (Section 3.1 / Table 3).
var (
	// BTB1Config is the 4k-branch first level: 1k rows x 4 ways, indexed
	// with instruction address bits 49:58.
	BTB1Config = Config{Name: "BTB1", Rows: 1024, Ways: 4, IndexHi: 49, IndexLo: 58}
	// BTBPConfig is the 768-branch preload table: 128 rows x 6 ways,
	// indexed with bits 52:58.
	BTBPConfig = Config{Name: "BTBP", Rows: 128, Ways: 6, IndexHi: 52, IndexLo: 58}
	// BTB2Config is the 24k-branch second level: 4k rows x 6 ways,
	// indexed with bits 47:58.
	BTB2Config = Config{Name: "BTB2", Rows: 4096, Ways: 6, IndexHi: 47, IndexLo: 58}
	// LargeBTB1Config is Table 3 configuration 3: the "unrealistically
	// large" 24k one-level BTB1 (4k rows x 6 ways).
	LargeBTB1Config = Config{Name: "BTB1-24k", Rows: 4096, Ways: 6, IndexHi: 47, IndexLo: 58}
)

// Stats is a point-in-time view of the table's activity counters. The
// canonical storage is the obs metrics (see RegisterMetrics); Stats
// remains the convenient comparable value for tests and reports.
type Stats struct {
	Lookups  int64 // LookupLine calls
	LineHits int64 // lookups that found at least one matching entry
	Installs int64 // new entries written
	Updates  int64 // in-place updates of existing entries
	Evicts   int64 // valid victims displaced by installs
}

// metrics is the table's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	lineHits obs.Counter
	installs obs.Counter
	updates  obs.Counter
	evicts   obs.Counter
}

// Table is a set-associative tagged BTB.
type Table struct {
	cfg   Config
	slots []Entry // rows x ways, flat
	// order holds per-row recency order: order[row*ways+k] is the way
	// index at recency rank k (rank 0 = MRU, rank ways-1 = LRU).
	order []uint8
	// inj, when non-nil, strikes soft errors on valid-entry reads; nil
	// (the default) is the zero-cost disabled state. See fault.go.
	inj *fault.Injector
	met metrics
}

// New builds an empty table; it panics if cfg is invalid (geometry is a
// programming error, not an input error).
func New(cfg Config) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Table{
		cfg:   cfg,
		slots: make([]Entry, cfg.Rows*cfg.Ways),
		order: make([]uint8, cfg.Rows*cfg.Ways),
	}
	for row := 0; row < cfg.Rows; row++ {
		for w := 0; w < cfg.Ways; w++ {
			t.order[row*cfg.Ways+w] = uint8(w)
		}
	}
	return t
}

// Config returns the table geometry.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a view of the activity counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		LineHits: t.met.lineHits.Value(),
		Installs: t.met.installs.Value(),
		Updates:  t.met.updates.Value(),
		Evicts:   t.met.evicts.Value(),
	}
}

// RegisterMetrics enumerates the table's counters (plus a computed
// occupancy gauge) into r under the given prefix, e.g. "btb1_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "searches", "LookupLine congruence-class reads", &t.met.lookups)
	r.Counter(prefix+"line_hits_total", "searches", "lookups finding at least one matching entry", &t.met.lineHits)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.Counter(prefix+"updates_total", "entries", "in-place updates of existing entries", &t.met.updates)
	r.Counter(prefix+"evicts_total", "entries", "valid victims displaced by installs", &t.met.evicts)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// RowFor returns the congruence class the address maps to.
//
//zbp:hotpath
func (t *Table) RowFor(a zaddr.Addr) int {
	return int(zaddr.Bits(a, t.cfg.IndexHi, t.cfg.IndexLo))
}

// tagOf extracts the comparison tag for an address. With TagBits = 0 the
// tag is every bit above the index; otherwise only TagBits bits
// immediately above the index, which lets distinct lines alias.
//
//zbp:hotpath
func (t *Table) tagOf(a zaddr.Addr) uint64 {
	if t.cfg.IndexHi == 0 {
		return 0 // index consumes the whole address; no tag bits remain
	}
	hi := uint(0)
	if t.cfg.TagBits != 0 && t.cfg.TagBits <= t.cfg.IndexHi {
		hi = t.cfg.IndexHi - t.cfg.TagBits
	}
	return zaddr.Bits(a, hi, t.cfg.IndexHi-1)
}

// lineMatch reports whether entry address ea and probe address pa map to
// the same row with equal tags — i.e. whether hardware would consider
// them the same 32-byte line.
//
//zbp:hotpath
func (t *Table) lineMatch(ea, pa zaddr.Addr) bool {
	return t.RowFor(ea) == t.RowFor(pa) && t.tagOf(ea) == t.tagOf(pa)
}

// lineOffset returns a's byte offset within this table's row coverage.
//
//zbp:hotpath
func (t *Table) lineOffset(a zaddr.Addr) uint {
	return uint(zaddr.OffsetWithin(a, uint64(t.cfg.LineBytes())))
}

// entryMatch reports whether an entry would be recognized as the branch
// at address a: same line (per tag policy) and same offset in the line.
//
//zbp:hotpath
func (t *Table) entryMatch(e *Entry, a zaddr.Addr) bool {
	return e.Valid && t.lineMatch(e.Addr, a) && t.lineOffset(e.Addr) == t.lineOffset(a)
}

// Hit describes one matching entry found by LookupLine.
type Hit struct {
	Way   int
	MRU   bool // entry is in the most-recently-used way of its row
	Entry Entry
}

// LookupLine returns all valid entries in the row of line whose tags
// match the line, in way order. This models the parallel read of a full
// congruence class performed each search cycle. The result shares no
// storage with the table.
//
//zbp:hotpath
func (t *Table) LookupLine(line zaddr.Addr, out []Hit) []Hit {
	t.met.lookups.Inc()
	row := t.RowFor(line)
	base := row * t.cfg.Ways
	mruWay := int(t.order[base])
	found := false
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.slots[base+w]
		if !e.Valid {
			continue
		}
		if t.inj != nil {
			t.faultCheck(row, w)
			if !e.Valid {
				continue // parity recovery (or tag upset) dropped it
			}
		}
		if t.lineMatch(e.Addr, line) {
			out = append(out, Hit{Way: w, MRU: w == mruWay, Entry: *e})
			found = true
		}
	}
	if found {
		t.met.lineHits.Inc()
	}
	return out
}

// Find returns a copy of the entry recognized as branch a, if present.
//
//zbp:hotpath
func (t *Table) Find(a zaddr.Addr) (Entry, bool) {
	if e := t.find(a); e != nil {
		return *e, true
	}
	return Entry{}, false
}

//zbp:hotpath
func (t *Table) find(a zaddr.Addr) *Entry {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.slots[base+w]
		if t.inj != nil && e.Valid {
			t.faultCheck(row, w)
		}
		if t.entryMatch(e, a) {
			return e
		}
	}
	return nil
}

// Contains reports whether branch a has an entry.
func (t *Table) Contains(a zaddr.Addr) bool { return t.find(a) != nil }

// Update overwrites the existing entry for branch e.Addr in place,
// preserving its recency rank. It reports whether an entry was found.
//
//zbp:hotpath
func (t *Table) Update(e Entry) bool {
	slot := t.find(e.Addr)
	if slot == nil {
		return false
	}
	e.Valid = true
	*slot = e
	t.met.updates.Inc()
	return true
}

// Insert writes e into the row for e.Addr. If the branch is already
// present it is updated in place and made MRU. Otherwise the entry is
// written over an invalid way if one exists, else over the LRU way, and
// made MRU; the displaced valid entry, if any, is returned as the victim.
//
//zbp:hotpath
func (t *Table) Insert(e Entry) (victim Entry, evicted bool) {
	return t.insert(e, false)
}

// InsertAtLRU writes e like Insert but leaves the new entry at the LRU
// recency rank instead of promoting it. The BTB2's semi-exclusive policy
// uses this for entries that were just copied *out* (made LRU so future
// victims overwrite them first).
//
//zbp:hotpath
func (t *Table) InsertAtLRU(e Entry) (victim Entry, evicted bool) {
	return t.insert(e, true)
}

//zbp:hotpath
func (t *Table) insert(e Entry, atLRU bool) (victim Entry, evicted bool) {
	e.Valid = true
	row := t.RowFor(e.Addr)
	base := row * t.cfg.Ways
	// Already present: in-place update.
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.slots[base+w], e.Addr) {
			t.slots[base+w] = e
			t.met.updates.Inc()
			if atLRU {
				t.demoteWay(row, w)
			} else {
				t.promoteWay(row, w)
			}
			return Entry{}, false
		}
	}
	// Free way?
	way := -1
	for w := 0; w < t.cfg.Ways; w++ {
		if !t.slots[base+w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		// Replace LRU.
		way = int(t.order[base+t.cfg.Ways-1])
		victim = t.slots[base+way]
		evicted = true
		t.met.evicts.Inc()
	}
	t.slots[base+way] = e
	t.met.installs.Inc()
	if atLRU {
		t.demoteWay(row, way)
	} else {
		t.promoteWay(row, way)
	}
	return victim, evicted
}

// Touch makes the entry for branch a most recently used. It reports
// whether the branch was present.
//
//zbp:hotpath
func (t *Table) Touch(a zaddr.Addr) bool {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.slots[base+w], a) {
			t.promoteWay(row, w)
			return true
		}
	}
	return false
}

// Demote makes the entry for branch a least recently used. The paper's
// semi-exclusive policy: "When an entry is copied from BTB2 to BTBP, it
// is made LRU in the BTB2", so subsequent victims/installs replace it.
//
//zbp:hotpath
func (t *Table) Demote(a zaddr.Addr) bool {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.slots[base+w], a) {
			t.demoteWay(row, w)
			return true
		}
	}
	return false
}

// Invalidate removes the entry for branch a, reporting whether it was
// present. The removed way becomes LRU.
//
//zbp:hotpath
func (t *Table) Invalidate(a zaddr.Addr) bool {
	row := t.RowFor(a)
	base := row * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		if t.entryMatch(&t.slots[base+w], a) {
			t.slots[base+w] = Entry{}
			t.demoteWay(row, w)
			return true
		}
	}
	return false
}

// promoteWay moves way w of row to recency rank 0 (MRU).
//
//zbp:hotpath
func (t *Table) promoteWay(row, w int) {
	base := row * t.cfg.Ways
	ord := t.order[base : base+t.cfg.Ways]
	pos := 0
	for ; pos < len(ord); pos++ {
		if int(ord[pos]) == w {
			break
		}
	}
	copy(ord[1:pos+1], ord[0:pos])
	ord[0] = uint8(w)
}

// demoteWay moves way w of row to recency rank ways-1 (LRU).
//
//zbp:hotpath
func (t *Table) demoteWay(row, w int) {
	base := row * t.cfg.Ways
	ord := t.order[base : base+t.cfg.Ways]
	pos := 0
	for ; pos < len(ord); pos++ {
		if int(ord[pos]) == w {
			break
		}
	}
	copy(ord[pos:], ord[pos+1:])
	ord[len(ord)-1] = uint8(w)
}

// MRUWay returns the most recently used way of the row containing a.
func (t *Table) MRUWay(a zaddr.Addr) int {
	return int(t.order[t.RowFor(a)*t.cfg.Ways])
}

// LRUEntry returns a copy of the LRU entry of the row containing a.
func (t *Table) LRUEntry(a zaddr.Addr) Entry {
	base := t.RowFor(a) * t.cfg.Ways
	return t.slots[base+int(t.order[base+t.cfg.Ways-1])]
}

// Entries returns the branch addresses of all valid entries, in storage
// order. Intended for invariant checks and diagnostics.
func (t *Table) Entries() []zaddr.Addr {
	out := make([]zaddr.Addr, 0, t.CountValid())
	for i := range t.slots {
		if t.slots[i].Valid {
			out = append(out, t.slots[i].Addr)
		}
	}
	return out
}

// CountValid returns the number of valid entries in the whole table.
func (t *Table) CountValid() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].Valid {
			n++
		}
	}
	return n
}

// Reset invalidates every entry and restores initial LRU order.
func (t *Table) Reset() {
	for i := range t.slots {
		t.slots[i] = Entry{}
	}
	for row := 0; row < t.cfg.Rows; row++ {
		for w := 0; w < t.cfg.Ways; w++ {
			t.order[row*t.cfg.Ways+w] = uint8(w)
		}
	}
	t.met = metrics{}
}

// checkLRUInvariant verifies that each row's recency order is a
// permutation of its ways. Exposed for tests via export_test.go.
func (t *Table) checkLRUInvariant() error {
	for row := 0; row < t.cfg.Rows; row++ {
		var seen uint64
		base := row * t.cfg.Ways
		for k := 0; k < t.cfg.Ways; k++ {
			w := t.order[base+k]
			if int(w) >= t.cfg.Ways {
				return fmt.Errorf("btb %s row %d: rank %d holds invalid way %d", t.cfg.Name, row, k, w)
			}
			if seen&(1<<w) != 0 {
				return fmt.Errorf("btb %s row %d: way %d appears twice in LRU order", t.cfg.Name, row, w)
			}
			seen |= 1 << w
		}
	}
	return nil
}
