package btb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/zaddr"
)

// small test geometry: 16 rows x 2 ways, same 32-byte lines as hardware.
var testCfg = Config{Name: "test", Rows: 16, Ways: 2, IndexHi: 55, IndexLo: 58}

func entry(a zaddr.Addr) Entry {
	return Entry{Addr: a, Target: a + 0x100, Dir: bht.WeakT, Length: 4}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{BTB1Config, BTBPConfig, BTB2Config, LargeBTB1Config, testCfg} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := []Config{
		{Name: "rows0", Rows: 0, Ways: 2, IndexHi: 55, IndexLo: 58},
		{Name: "rowsNp2", Rows: 3, Ways: 2, IndexHi: 55, IndexLo: 58},
		{Name: "ways0", Rows: 16, Ways: 0, IndexHi: 55, IndexLo: 58},
		{Name: "inverted", Rows: 16, Ways: 2, IndexHi: 58, IndexLo: 55},
		{Name: "rowMismatch", Rows: 32, Ways: 2, IndexHi: 55, IndexLo: 58},
		{Name: "lineSize", Rows: 16, Ways: 2, IndexHi: 49, IndexLo: 52},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", cfg.Name)
		}
	}
}

func TestPaperCapacities(t *testing.T) {
	// Section 3.1: BTB1 4k branches, BTBP 768 branches, BTB2 24k branches.
	if BTB1Config.Capacity() != 4096 {
		t.Errorf("BTB1 capacity = %d", BTB1Config.Capacity())
	}
	if BTBPConfig.Capacity() != 768 {
		t.Errorf("BTBP capacity = %d", BTBPConfig.Capacity())
	}
	if BTB2Config.Capacity() != 24576 {
		t.Errorf("BTB2 capacity = %d", BTB2Config.Capacity())
	}
	if LargeBTB1Config.Capacity() != 24576 {
		t.Errorf("large BTB1 capacity = %d", LargeBTB1Config.Capacity())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(Config{Name: "bad", Rows: 3, Ways: 1, IndexHi: 55, IndexLo: 58})
}

func TestInsertFindUpdate(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x1004)
	if _, ok := tb.Find(a); ok {
		t.Fatal("empty table claims a hit")
	}
	if v, ev := tb.Insert(entry(a)); ev {
		t.Fatalf("insert into empty table evicted %+v", v)
	}
	got, ok := tb.Find(a)
	if !ok || got.Addr != a || got.Target != a+0x100 {
		t.Fatalf("Find after insert: %+v ok=%v", got, ok)
	}
	if !tb.Contains(a) {
		t.Error("Contains = false")
	}
	// Update in place.
	e := got
	e.Dir = bht.StrongT
	if !tb.Update(e) {
		t.Fatal("Update missed existing entry")
	}
	got, _ = tb.Find(a)
	if got.Dir != bht.StrongT {
		t.Error("Update did not stick")
	}
	if tb.Update(Entry{Addr: 0x9999998}) {
		t.Error("Update claimed success for absent branch")
	}
	if tb.CountValid() != 1 {
		t.Errorf("CountValid = %d", tb.CountValid())
	}
}

func TestTwoBranchesSameLine(t *testing.T) {
	// Two branches in the same 32-byte line occupy distinct ways and are
	// distinguished by offset.
	tb := New(testCfg)
	a := zaddr.Addr(0x2000)
	b := zaddr.Addr(0x2010)
	tb.Insert(entry(a))
	tb.Insert(entry(b))
	if !tb.Contains(a) || !tb.Contains(b) {
		t.Fatal("lost one of two same-line branches")
	}
	hits := tb.LookupLine(0x2000, nil)
	if len(hits) != 2 {
		t.Fatalf("LookupLine found %d entries, want 2", len(hits))
	}
}

func TestLookupLineTagMismatch(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x2000)
	tb.Insert(entry(a))
	// Same row index (16 rows x 32B = 512B aliasing stride), full tags:
	// must not hit.
	if hits := tb.LookupLine(0x2000+512, nil); len(hits) != 0 {
		t.Fatalf("full-tag lookup aliased: %v", hits)
	}
	st := tb.Stats()
	if st.Lookups != 1 || st.LineHits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartialTagAliasing(t *testing.T) {
	cfg := testCfg
	cfg.TagBits = 4 // compare only 4 bits above the index
	tb := New(cfg)
	a := zaddr.Addr(0x2000)
	tb.Insert(entry(a))
	// Stride that flips only bits above the 4-bit tag: rows cover bits
	// 55:58, tag bits 51:54, so adding 1<<13 (bit 50) aliases.
	alias := a + (1 << 13)
	if !tb.Contains(alias) {
		t.Error("partial tags should alias across high bits")
	}
	if hits := tb.LookupLine(alias, nil); len(hits) != 1 {
		t.Errorf("aliased lookup found %d hits", len(hits))
	}
}

func TestLRUReplacement(t *testing.T) {
	tb := New(testCfg) // 2 ways
	// Three distinct lines mapping to row 0: stride = rows*32 = 512.
	a := zaddr.Addr(0x0000)
	b := a + 512
	c := a + 1024
	tb.Insert(entry(a))
	tb.Insert(entry(b))
	// a is LRU; inserting c must evict a.
	v, ev := tb.Insert(entry(c))
	if !ev || v.Addr != a {
		t.Fatalf("victim = %+v ev=%v, want a", v, ev)
	}
	if tb.Contains(a) || !tb.Contains(b) || !tb.Contains(c) {
		t.Error("wrong survivor set after eviction")
	}
}

func TestTouchChangesVictim(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x0000)
	b := a + 512
	c := a + 1024
	tb.Insert(entry(a))
	tb.Insert(entry(b))
	if !tb.Touch(a) { // a becomes MRU; b is now LRU
		t.Fatal("Touch missed")
	}
	v, ev := tb.Insert(entry(c))
	if !ev || v.Addr != b {
		t.Fatalf("victim = %+v, want b", v)
	}
	if tb.Touch(0x777777) {
		t.Error("Touch hit an absent branch")
	}
}

func TestDemoteMakesEntryNextVictim(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x0000)
	b := a + 512
	c := a + 1024
	tb.Insert(entry(a))
	tb.Insert(entry(b)) // order: b MRU, a LRU
	if !tb.Demote(b) {  // b forced LRU — the BTB2 semi-exclusive hit rule
		t.Fatal("Demote missed")
	}
	v, ev := tb.Insert(entry(c))
	if !ev || v.Addr != b {
		t.Fatalf("victim = %+v, want demoted b", v)
	}
	if tb.Demote(0x777777) {
		t.Error("Demote hit an absent branch")
	}
}

func TestInsertAtLRU(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x0000)
	b := a + 512
	c := a + 1024
	tb.Insert(entry(a))
	tb.InsertAtLRU(entry(b)) // b sits at LRU despite being newest
	v, ev := tb.Insert(entry(c))
	if !ev || v.Addr != b {
		t.Fatalf("victim = %+v, want b (installed at LRU)", v)
	}
	if !tb.Contains(a) {
		t.Error("a should have survived")
	}
}

func TestInvalidate(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x3000)
	tb.Insert(entry(a))
	if !tb.Invalidate(a) {
		t.Fatal("Invalidate missed")
	}
	if tb.Contains(a) || tb.CountValid() != 0 {
		t.Error("entry survived Invalidate")
	}
	if tb.Invalidate(a) {
		t.Error("double Invalidate reported success")
	}
}

func TestInsertExistingPromotes(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x0000)
	b := a + 512
	tb.Insert(entry(a))
	tb.Insert(entry(b)) // b MRU, a LRU
	// Re-inserting a must not evict and must promote a to MRU.
	if _, ev := tb.Insert(entry(a)); ev {
		t.Fatal("re-insert evicted")
	}
	c := a + 1024
	v, _ := tb.Insert(entry(c))
	if v.Addr != b {
		t.Fatalf("victim = %+v, want b after a was promoted", v)
	}
}

func TestMRUWayAndLRUEntry(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x0000)
	b := a + 512
	tb.Insert(entry(a))
	tb.Insert(entry(b))
	hits := tb.LookupLine(b, nil)
	if len(hits) != 1 || !hits[0].MRU {
		t.Errorf("most recent insert not flagged MRU: %+v", hits)
	}
	if le := tb.LRUEntry(a); le.Addr != a {
		t.Errorf("LRUEntry = %+v, want a", le)
	}
	if tb.MRUWay(a) != tb.MRUWay(b) {
		t.Error("same row must share MRU way")
	}
}

func TestReset(t *testing.T) {
	tb := New(testCfg)
	for i := 0; i < 100; i++ {
		tb.Insert(entry(zaddr.Addr(i * 64)))
	}
	tb.Reset()
	if tb.CountValid() != 0 {
		t.Error("Reset left valid entries")
	}
	if tb.Stats() != (Stats{}) {
		t.Error("Reset left stats")
	}
	if err := tb.CheckLRUInvariant(); err != nil {
		t.Error(err)
	}
}

func TestStatsCounting(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x1000)
	tb.Insert(entry(a))        // install
	tb.Insert(entry(a))        // update (in-place)
	tb.Insert(entry(a + 512))  // install
	tb.Insert(entry(a + 1024)) // install + evict
	tb.LookupLine(a+1024, nil) // hit or miss depending on survivor
	st := tb.Stats()
	if st.Installs != 3 {
		t.Errorf("Installs = %d, want 3", st.Installs)
	}
	if st.Updates != 1 {
		t.Errorf("Updates = %d, want 1", st.Updates)
	}
	if st.Evicts != 1 {
		t.Errorf("Evicts = %d, want 1", st.Evicts)
	}
	if st.Lookups != 1 {
		t.Errorf("Lookups = %d, want 1", st.Lookups)
	}
}

// TestLRUPermutationProperty drives a random operation sequence and
// checks that every row's recency order stays a permutation of the ways
// and that capacity is never exceeded.
func TestLRUPermutationProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tb := New(testCfg)
		ops := int(opsRaw)%500 + 1
		for i := 0; i < ops; i++ {
			a := zaddr.Addr(r.Intn(64) * 128) // many aliasing lines
			switch r.Intn(5) {
			case 0, 1:
				tb.Insert(entry(a))
			case 2:
				tb.InsertAtLRU(entry(a))
			case 3:
				tb.Touch(a)
			case 4:
				tb.Demote(a)
			}
			if err := tb.CheckLRUInvariant(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
		}
		return tb.CountValid() <= testCfg.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNoDuplicateEntries: inserting the same branch repeatedly through
// any path must never create two entries for one branch address.
func TestNoDuplicateEntries(t *testing.T) {
	tb := New(testCfg)
	a := zaddr.Addr(0x5008)
	tb.Insert(entry(a))
	tb.InsertAtLRU(entry(a))
	tb.Insert(entry(a))
	hits := tb.LookupLine(a, nil)
	if len(hits) != 1 {
		t.Fatalf("%d entries for one branch", len(hits))
	}
}

func TestFullGeometryRowMapping(t *testing.T) {
	// With the real BTB1 geometry, addresses 32 bytes apart map to
	// adjacent rows and addresses 32 KB apart map to the same row.
	tb := New(BTB1Config)
	a := zaddr.Addr(0x100000)
	if tb.RowFor(a+32) != (tb.RowFor(a)+1)%1024 {
		t.Error("adjacent lines not in adjacent rows")
	}
	if tb.RowFor(a+32*1024) != tb.RowFor(a) {
		t.Error("32KB stride should wrap to the same BTB1 row")
	}
	tb2 := New(BTB2Config)
	if tb2.RowFor(a+128*1024) != tb2.RowFor(a) {
		t.Error("128KB stride should wrap to the same BTB2 row")
	}
}

func TestEntriesEnumeration(t *testing.T) {
	tb := New(testCfg)
	want := map[zaddr.Addr]bool{}
	for i := 0; i < 10; i++ {
		a := zaddr.Addr(0x1000 + i*64)
		tb.Insert(entry(a))
		want[a] = true
	}
	got := tb.Entries()
	if len(got) != len(want) {
		t.Fatalf("Entries returned %d, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected entry %#x", uint64(a))
		}
	}
}

func TestWideRowEntryMatch(t *testing.T) {
	// A 64-byte-row table distinguishes branches 32 bytes apart within
	// one row by their in-line offset.
	cfg := Config{Name: "wide", Rows: 16, Ways: 4, IndexHi: 54, IndexLo: 57}
	if cfg.LineBytes() != 64 {
		t.Fatalf("line bytes = %d", cfg.LineBytes())
	}
	tb := New(cfg)
	a := zaddr.Addr(0x2000)
	b := a + 32 // same 64-byte row, different offset
	tb.Insert(entry(a))
	tb.Insert(entry(b))
	if !tb.Contains(a) || !tb.Contains(b) {
		t.Error("wide row lost a same-row branch")
	}
	if got, _ := tb.Find(b); got.Addr != b {
		t.Errorf("Find(b) = %#x", uint64(got.Addr))
	}
	if hits := tb.LookupLine(a, nil); len(hits) != 2 {
		t.Errorf("wide-row lookup found %d entries, want 2", len(hits))
	}
}
