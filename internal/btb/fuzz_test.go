package btb

import (
	"testing"

	"bulkpreload/internal/zaddr"
)

// FuzzPackedRow splats raw fuzzer-chosen words into one packed row's
// lanes — tag words, target words, the shared meta word, even the LRU
// word — then drives every read path over it. Decode must never panic,
// and a slot whose valid bit is clear must never produce a hit no
// matter what garbage its other lanes hold (the probe key always
// carries valid=1 and every compare mask includes the valid bit).
func FuzzPackedRow(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0x3210), uint64(0x1234))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0xFFFE), uint64(2), uint64(0x8000_0000_0000_0001),
		uint64(42), uint64(7), uint64(0xF00F), uint64(0xBEEF))
	// Seed one input per declared field boundary of the packed layouts
	// (//zbp:layout in packed.go), so the corpus starts exactly at the
	// bit positions where off-by-one packing bugs live. For the Config
	// below (IndexHi 55, IndexLo 58) the tag word's declared fields sit
	// at valid:0, offset:1..5, tag:6..63.
	for _, bit := range []uint{0, 1, 5, 6, 63} {
		f.Add(uint64(1)<<bit|1, uint64(0), uint64(0), uint64(0),
			uint64(0), uint64(0), uint64(0x3210), uint64(0))
	}
	// Meta lane: dir:0..1, usePHT:2, useCTB:3, length:4..11 inside each
	// of the four 16-bit slots of the shared word.
	for slot := uint(0); slot < 4; slot++ {
		for _, b := range []uint{0, 1, 2, 3, 4, 11, 15} {
			f.Add(uint64(1), uint64(0), uint64(0), uint64(0),
				uint64(0), uint64(1)<<(slot*16+b), uint64(0x3210), uint64(0))
		}
	}
	// LRU word: rank[16] nibbles — flood one rank's nibble per seed.
	for rank := uint(0); rank < 4; rank++ {
		f.Add(uint64(1), uint64(0), uint64(0), uint64(0),
			uint64(0), uint64(0), uint64(0x3210)^uint64(0xF)<<(rank*4), uint64(0))
	}
	f.Fuzz(func(t *testing.T, w0, w1, w2, w3, targ, meta, lruWord, probe uint64) {
		cfg := Config{Name: "fuzz", Rows: 16, Ways: 4, IndexHi: 55, IndexLo: 58, TagBits: 3}
		tbl := New(cfg)
		words := [4]uint64{w0, w1, w2, w3}
		copy(tbl.tags[:4], words[:])
		for i := range words {
			tbl.targets[i] = targ ^ words[i]
		}
		tbl.meta[0] = meta
		tbl.lru[0] = lruWord

		probes := []zaddr.Addr{
			zaddr.Addr(probe),
			zaddr.SetBits(zaddr.Addr(probe), cfg.IndexHi, cfg.IndexLo, 0), // force row 0
			0,
		}
		var hits []Hit
		for _, p := range probes {
			hits = tbl.LookupLine(p, hits[:0])
			for _, h := range hits {
				if !h.Entry.Valid {
					t.Fatalf("LookupLine(%#x) returned an invalid entry: %+v", uint64(p), h)
				}
				if tbl.tags[tbl.RowFor(p)*cfg.Ways+h.Way]&1 == 0 {
					t.Fatalf("LookupLine(%#x) hit way %d whose valid bit is clear", uint64(p), h.Way)
				}
			}
			if e, ok := tbl.Find(p); ok && !e.Valid {
				t.Fatalf("Find(%#x) returned an invalid entry", uint64(p))
			}
			tbl.Contains(p)
			tbl.Touch(p)
			tbl.Demote(p)
			tbl.Invalidate(p)
			tbl.MRUWay(p)
			tbl.LRUEntry(p)
		}
		tbl.CountValid()
		tbl.Entries()
		st := tbl.State()
		for i, s := range st.Slots[:4] {
			if s.Valid != (tbl.tags[i]&1 != 0) {
				t.Fatalf("slot %d: State valid %v disagrees with tag word %#x", i, s.Valid, tbl.tags[i])
			}
		}
		// Restoring the snapshot may legitimately fail (the fuzzed LRU
		// word need not be a permutation); it must not panic, and when
		// it succeeds the re-snapshot must be identical on the slots.
		fresh := New(cfg)
		if err := fresh.RestoreState(st); err == nil {
			st2 := fresh.State()
			for i := range st.Slots {
				if st.Slots[i] != st2.Slots[i] {
					t.Fatalf("slot %d changed across restore: %+v vs %+v", i, st.Slots[i], st2.Slots[i])
				}
			}
		}
	})
}
