package btb

import "fmt"

// State is a serializable copy of a table's architectural contents:
// every slot plus the per-row recency order. Activity counters and the
// fault injector schedule are not part of it — a restored table resumes
// with fresh counters, the way a checkpoint-resumed run should.
//
// The format is layout-independent: both storage backends serialize to
// the same Entry slices, so ZBPC checkpoints written under either
// layout restore into either layout (the layout differential gate
// round-trips checkpoints across layouts to prove it).
type State struct {
	Slots []Entry
	Order []uint8
}

// State returns a deep copy of the table's architectural state.
func (t *Table) State() State {
	if t.ref != nil {
		return State{
			Slots: append([]Entry(nil), t.ref.slots...),
			Order: append([]uint8(nil), t.ref.order...),
		}
	}
	s := State{
		Slots: make([]Entry, len(t.tags)),
		Order: make([]uint8, len(t.tags)),
	}
	for i := range t.tags {
		t.unpackEntry(i/t.cfg.Ways, i%t.cfg.Ways, &s.Slots[i])
	}
	for row := 0; row < t.cfg.Rows; row++ {
		word := t.lru[row]
		for k := 0; k < t.cfg.Ways; k++ {
			s.Order[row*t.cfg.Ways+k] = uint8(word >> (4 * uint(k)) & 0xF)
		}
	}
	return s
}

// RestoreState overwrites the table's contents with s, which must come
// from a table of identical geometry.
func (t *Table) RestoreState(s State) error {
	n := t.cfg.Rows * t.cfg.Ways
	if len(s.Slots) != n || len(s.Order) != n {
		return fmt.Errorf("btb %s: state geometry mismatch: %d slots/%d order, table has %d/%d",
			t.cfg.Name, len(s.Slots), len(s.Order), n, n)
	}
	if t.ref != nil {
		copy(t.ref.slots, s.Slots)
		copy(t.ref.order, s.Order)
	} else {
		// Placement must hold before packing: the packed tag word drops
		// the index bits (the row position carries them), so a misplaced
		// entry would silently re-address itself instead of failing the
		// post-restore check the struct layout relies on.
		for i := range s.Slots {
			if e := &s.Slots[i]; e.Valid && t.RowFor(e.Addr) != i/t.cfg.Ways {
				return fmt.Errorf("btb %s: restored state is corrupt: entry %#x stored in row %d but indexes row %d",
					t.cfg.Name, uint64(e.Addr), i/t.cfg.Ways, t.RowFor(e.Addr))
			}
		}
		for i := range s.Slots {
			if s.Slots[i].Valid {
				t.writeSlot(i, s.Slots[i])
			} else {
				t.clearSlot(i)
			}
		}
		for row := 0; row < t.cfg.Rows; row++ {
			var word uint64
			for k := 0; k < t.cfg.Ways; k++ {
				w := s.Order[row*t.cfg.Ways+k]
				if int(w) >= t.cfg.Ways {
					// The struct layout's invariant check rejects these
					// too; checked here because the 4-bit rank nibble
					// would otherwise truncate the evidence.
					return fmt.Errorf("btb %s: restored state is corrupt: btb %s row %d: rank %d holds invalid way %d",
						t.cfg.Name, t.cfg.Name, row, k, w)
				}
				word |= uint64(w) << (4 * uint(k))
			}
			t.lru[row] = word
		}
	}
	if err := t.checkLRUInvariant(); err != nil {
		return fmt.Errorf("btb %s: restored state is corrupt: %w", t.cfg.Name, err)
	}
	if err := t.CheckPlacement(); err != nil {
		return fmt.Errorf("btb %s: restored state is corrupt: %w", t.cfg.Name, err)
	}
	return nil
}

// CheckPlacement verifies that every valid entry is stored in the row
// its address indexes to — the structural invariant a hardware array
// cannot violate (the index selects the row) and that fault injection
// must therefore never break. The packed layout satisfies it by
// construction (the row position is part of the stored address), so
// the walk doubles as a decode self-check there.
func (t *Table) CheckPlacement() error {
	var e Entry
	for row := 0; row < t.cfg.Rows; row++ {
		for w := 0; w < t.cfg.Ways; w++ {
			if t.ref != nil {
				e = t.ref.slots[row*t.cfg.Ways+w]
			} else {
				t.unpackEntry(row, w, &e)
			}
			if e.Valid && t.RowFor(e.Addr) != row {
				return fmt.Errorf("btb %s: entry %#x stored in row %d but indexes row %d",
					t.cfg.Name, uint64(e.Addr), row, t.RowFor(e.Addr))
			}
		}
	}
	return nil
}
