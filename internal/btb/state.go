package btb

import "fmt"

// State is a serializable copy of a table's architectural contents:
// every slot plus the per-row recency order. Activity counters and the
// fault injector schedule are not part of it — a restored table resumes
// with fresh counters, the way a checkpoint-resumed run should.
type State struct {
	Slots []Entry
	Order []uint8
}

// State returns a deep copy of the table's architectural state.
func (t *Table) State() State {
	return State{
		Slots: append([]Entry(nil), t.slots...),
		Order: append([]uint8(nil), t.order...),
	}
}

// RestoreState overwrites the table's contents with s, which must come
// from a table of identical geometry.
func (t *Table) RestoreState(s State) error {
	if len(s.Slots) != len(t.slots) || len(s.Order) != len(t.order) {
		return fmt.Errorf("btb %s: state geometry mismatch: %d slots/%d order, table has %d/%d",
			t.cfg.Name, len(s.Slots), len(s.Order), len(t.slots), len(t.order))
	}
	copy(t.slots, s.Slots)
	copy(t.order, s.Order)
	if err := t.checkLRUInvariant(); err != nil {
		return fmt.Errorf("btb %s: restored state is corrupt: %w", t.cfg.Name, err)
	}
	if err := t.CheckPlacement(); err != nil {
		return fmt.Errorf("btb %s: restored state is corrupt: %w", t.cfg.Name, err)
	}
	return nil
}

// CheckPlacement verifies that every valid entry is stored in the row
// its address indexes to — the structural invariant a hardware array
// cannot violate (the index selects the row) and that fault injection
// must therefore never break.
func (t *Table) CheckPlacement() error {
	for row := 0; row < t.cfg.Rows; row++ {
		base := row * t.cfg.Ways
		for w := 0; w < t.cfg.Ways; w++ {
			e := &t.slots[base+w]
			if e.Valid && t.RowFor(e.Addr) != row {
				return fmt.Errorf("btb %s: entry %#x stored in row %d but indexes row %d",
					t.cfg.Name, uint64(e.Addr), row, t.RowFor(e.Addr))
			}
		}
	}
	return nil
}
