package btb

import (
	"bulkpreload/internal/fault"
	"bulkpreload/internal/zaddr"
)

// SetInjector attaches (or, with nil, detaches) a fault injector. With an
// injector attached, every read of a valid entry on the lookup paths
// (LookupLine, Find/Contains/Update) may be struck by a soft error per
// the injector's arrival schedule.
func (t *Table) SetInjector(j *fault.Injector) { t.inj = j }

// Injector returns the attached injector (nil when faults are off).
func (t *Table) Injector() *fault.Injector { return t.inj }

// Bit positions of the corruptible entry payload. The branch address
// (index + tag) is deliberately outside the flip domain: hardware stores
// it as a tag whose upset makes the entry mismatch every probe — the
// same observable outcome as losing the entry — so tag upsets are
// modeled as the validBit case rather than as an Addr rewrite, which
// could fabricate aliases that no hardware fault can produce (two tags
// cannot collide inside one row) and would break the hierarchy's
// structural invariants.
//
// The domain is defined over the logical payload, not a layout's
// physical words, so identical injector seeds corrupt identically in
// both storage layouts: bit b maps to a target-lane bit in the packed
// layout and to Entry.Target in the struct layout, and so on. The
// validBit case clears the whole entry in both layouts (all-zero is the
// canonical invalid state; leaving residue in the dead slot would be
// unobservable to predictions but would make the layouts' State
// snapshots diverge).
//
// Dependent packages restate this layout against the exported fact
// (//zbp:layout btb.payload ...), so the bit positions below cannot
// drift from what core's injector wiring assumes:
//
//zbp:layout payload word:payloadWidth dir:dirBit0..dirBit0+1 usePHT:usePHTBit useCTB:useCTBBit length:lengthBit0..lengthBit0+2 valid:validBit target:0..targetBits-1
const (
	targetBits   = 64             // Entry.Target, bits 0..63
	dirBit0      = targetBits     // Entry.Dir, 2-bit bimodal counter
	usePHTBit    = dirBit0 + 2    // Entry.UsePHT
	useCTBBit    = usePHTBit + 1  // Entry.UseCTB
	lengthBit0   = useCTBBit + 1  // Entry.Length, 3 bits
	validBit     = lengthBit0 + 3 // tag/valid upset: entry is lost
	payloadWidth = validBit + 1   // 72
)

// faultCheck strikes way w of row with the injector's next scheduled
// fault, if the current read is the one it lands on. Parity protection
// detects the upset and recovers by invalidation (the way becomes LRU,
// and semi-exclusivity lets first-level entries refetch from BTB2);
// unprotected arrays keep serving the flipped entry. Packed layout.
//
//zbp:hotpath
func (t *Table) faultCheck(row, w int) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	i := row*t.cfg.Ways + w
	if t.inj.Parity() {
		t.clearSlot(i)
		t.demoteWay(row, w)
		t.inj.NoteRecovered()
		return
	}
	t.corruptSlot(i, bits)
	t.inj.NoteSilent()
}

// corruptSlot flips one uniformly chosen payload bit of packed slot i —
// the word-level twin of corruptEntry.
//
//zbp:hotpath
func (t *Table) corruptSlot(i int, bits uint64) {
	b := bits % payloadWidth
	switch {
	case b < dirBit0:
		t.targets[i] ^= 1 << b
	case b < usePHTBit:
		t.xorMetaField(i, 1<<(metaDirShift+(b-dirBit0))) // stays within the 2-bit counter range
	case b == usePHTBit:
		t.xorMetaField(i, 1<<metaUsePHTBit)
	case b == useCTBBit:
		t.xorMetaField(i, 1<<metaUseCTBBit)
	case b < validBit:
		t.xorMetaField(i, 1<<(metaLenShift+(b-lengthBit0)))
	default:
		t.clearSlot(i) // tag/valid upset: entry is lost
	}
}

// refFaultCheck is faultCheck for the struct layout.
//
//zbp:hotpath
func (t *Table) refFaultCheck(row, w int) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	e := &t.ref.slots[row*t.cfg.Ways+w]
	if t.inj.Parity() {
		*e = Entry{}
		t.refDemoteWay(row, w)
		t.inj.NoteRecovered()
		return
	}
	corruptEntry(e, bits)
	t.inj.NoteSilent()
}

// corruptEntry flips one uniformly chosen payload bit of e.
//
//zbp:hotpath
func corruptEntry(e *Entry, bits uint64) {
	b := bits % payloadWidth
	switch {
	case b < dirBit0:
		e.Target = zaddr.FlipBit(e.Target, uint(b))
	case b < usePHTBit:
		e.Dir ^= 1 << (b - dirBit0) // stays within the 2-bit counter range
	case b == usePHTBit:
		e.UsePHT = !e.UsePHT
	case b == useCTBBit:
		e.UseCTB = !e.UseCTB
	case b < validBit:
		e.Length ^= 1 << (b - lengthBit0)
	default:
		*e = Entry{} // tag/valid upset: entry is lost (match packed clearSlot)
	}
}
