package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"bulkpreload/internal/zaddr"
)

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		NotBranch:     "not-branch",
		CondDirect:    "cond-direct",
		UncondDirect:  "uncond-direct",
		Call:          "call",
		Return:        "return",
		IndirectOther: "indirect",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestKindPredicates(t *testing.T) {
	if NotBranch.IsBranch() {
		t.Error("NotBranch.IsBranch() = true")
	}
	for _, k := range []Kind{CondDirect, UncondDirect, Call, Return, IndirectOther} {
		if !k.IsBranch() {
			t.Errorf("%v.IsBranch() = false", k)
		}
	}
	for _, k := range []Kind{UncondDirect, Call, Return} {
		if !k.AlwaysTaken() {
			t.Errorf("%v.AlwaysTaken() = false", k)
		}
	}
	if CondDirect.AlwaysTaken() || IndirectOther.AlwaysTaken() {
		t.Error("conditional kinds reported always-taken")
	}
}

func TestInstFlow(t *testing.T) {
	br := Inst{Addr: 0x1000, Length: 4, Kind: CondDirect, Taken: true, Target: 0x2000}
	if br.FallThrough() != 0x1004 {
		t.Errorf("FallThrough = %#x", uint64(br.FallThrough()))
	}
	if br.NextAddr() != 0x2000 {
		t.Errorf("NextAddr (taken) = %#x", uint64(br.NextAddr()))
	}
	br.Taken = false
	if br.NextAddr() != 0x1004 {
		t.Errorf("NextAddr (not taken) = %#x", uint64(br.NextAddr()))
	}
	plain := Inst{Addr: 0x1000, Length: 6, Kind: NotBranch}
	if plain.NextAddr() != 0x1006 {
		t.Errorf("NextAddr (non-branch) = %#x", uint64(plain.NextAddr()))
	}
}

func TestInstValidate(t *testing.T) {
	good := Inst{Addr: 0x1000, Length: 4, Kind: CondDirect, Taken: true, Target: 0x2000}
	if err := good.Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	cases := []struct {
		name string
		in   Inst
	}{
		{"bad length", Inst{Addr: 0x1000, Length: 3, Kind: NotBranch}},
		{"odd address", Inst{Addr: 0x1001, Length: 4, Kind: NotBranch}},
		{"bad kind", Inst{Addr: 0x1000, Length: 4, Kind: Kind(42)}},
		{"taken non-branch", Inst{Addr: 0x1000, Length: 4, Kind: NotBranch, Taken: true}},
		{"not-taken call", Inst{Addr: 0x1000, Length: 4, Kind: Call, Taken: false}},
		{"odd target", Inst{Addr: 0x1000, Length: 4, Kind: CondDirect, Taken: true, Target: 0x2001}},
	}
	for _, c := range cases {
		if err := c.in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid record", c.name)
		}
	}
}

func TestSliceSource(t *testing.T) {
	ins := []Inst{
		{Addr: 0x100, Length: 4, Kind: NotBranch},
		{Addr: 0x104, Length: 2, Kind: CondDirect, Taken: true, Target: 0x100},
	}
	s := NewSliceSource("test", ins)
	if s.Name() != "test" || s.Len() != 2 {
		t.Fatalf("bad name/len: %q %d", s.Name(), s.Len())
	}
	for pass := 0; pass < 3; pass++ {
		got := 0
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			if in != ins[got] {
				t.Fatalf("pass %d record %d mismatch", pass, got)
			}
			got++
		}
		if got != 2 {
			t.Fatalf("pass %d yielded %d records", pass, got)
		}
		s.Reset()
	}
}

func TestLimitSource(t *testing.T) {
	ins := make([]Inst, 10)
	for i := range ins {
		ins[i] = Inst{Addr: zaddr.Addr(0x1000 + 4*i), Length: 4, Kind: NotBranch}
	}
	l := NewLimitSource(NewSliceSource("x", ins), 4)
	for pass := 0; pass < 2; pass++ {
		n := 0
		for {
			_, ok := l.Next()
			if !ok {
				break
			}
			n++
		}
		if n != 4 {
			t.Fatalf("pass %d: limit source yielded %d, want 4", pass, n)
		}
		l.Reset()
	}
}

func synthInsts(r *rand.Rand, n int) []Inst {
	ins := make([]Inst, n)
	addr := zaddr.Addr(0x10000)
	for i := range ins {
		lengths := []uint8{2, 4, 6}
		l := lengths[r.Intn(3)]
		in := Inst{Addr: addr, Length: l}
		if r.Intn(4) == 0 {
			in.Kind = Kind(1 + r.Intn(int(numKinds)-1))
			if in.Kind == PreloadHint {
				in.HintBranch = zaddr.Addr(0x10000 + 2*uint64(r.Intn(1<<16)))
				in.Target = zaddr.Addr(0x10000 + 2*uint64(r.Intn(1<<16)))
			} else {
				in.Taken = in.Kind.AlwaysTaken() || r.Intn(2) == 0
				if in.Taken {
					in.Target = zaddr.Addr(0x10000 + 2*uint64(r.Intn(1<<16)))
				}
				in.StaticTaken = r.Intn(2) == 0
			}
		}
		ins[i] = in
		addr = in.NextAddr()
		if !in.IsBranch() || !in.Taken {
			addr = in.FallThrough()
		}
	}
	return ins
}

func TestFileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ins := synthInsts(r, 500)
	var buf bytes.Buffer
	if _, err := WriteSlice(&buf, "round-trip", ins); err != nil {
		t.Fatalf("WriteSlice: %v", err)
	}
	name, got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if name != "round-trip" {
		t.Errorf("name = %q", name)
	}
	if len(got) != len(ins) {
		t.Fatalf("len = %d, want %d", len(got), len(ins))
	}
	for i := range got {
		if got[i] != ins[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], ins[i])
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%200 + 1
		ins := synthInsts(rand.New(rand.NewSource(seed)), n)
		var buf bytes.Buffer
		if _, err := WriteSlice(&buf, "p", ins); err != nil {
			return false
		}
		_, got, err := Read(&buf)
		if err != nil || len(got) != len(ins) {
			return false
		}
		for i := range got {
			if got[i] != ins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.zbpt")
	ins := synthInsts(rand.New(rand.NewSource(1)), 100)
	if err := WriteFile(path, NewSliceSource("disk", ins)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	src, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if src.Name() != "disk" || src.Len() != 100 {
		t.Errorf("got %q/%d", src.Name(), src.Len())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("ZBPT"),                 // truncated header
		[]byte("ZBPT\x63\x00\x00\x00"), // wrong version
		append([]byte("ZBPT\x01\x00\x00\x00"), 0xFF), // truncated count
	}
	for i, c := range cases {
		if _, _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestMeasure(t *testing.T) {
	ins := []Inst{
		{Addr: 0x1000, Length: 4, Kind: NotBranch},
		{Addr: 0x1004, Length: 4, Kind: CondDirect, Taken: true, Target: 0x1000},
		{Addr: 0x1000, Length: 4, Kind: NotBranch},
		{Addr: 0x1004, Length: 4, Kind: CondDirect, Taken: false, Target: 0x1000},
		{Addr: 0x1008, Length: 2, Kind: Call, Taken: true, Target: 0x9000},
		{Addr: 0x9000, Length: 4, Kind: Return, Taken: true, Target: 0x100A},
		// Same call site, different target => changing target.
		{Addr: 0x1008, Length: 2, Kind: Call, Taken: true, Target: 0x9000},
		{Addr: 0x9000, Length: 4, Kind: Return, Taken: true, Target: 0x200A},
	}
	st := Measure(NewSliceSource("m", ins))
	if st.Instructions != 8 {
		t.Errorf("Instructions = %d", st.Instructions)
	}
	if st.Branches != 6 {
		t.Errorf("Branches = %d", st.Branches)
	}
	if st.TakenBr != 5 {
		t.Errorf("TakenBr = %d", st.TakenBr)
	}
	if st.UniqueBranches != 3 {
		t.Errorf("UniqueBranches = %d, want 3", st.UniqueBranches)
	}
	if st.UniqueTaken != 3 {
		t.Errorf("UniqueTaken = %d, want 3", st.UniqueTaken)
	}
	if st.ChangingTarget != 1 {
		t.Errorf("ChangingTarget = %d, want 1", st.ChangingTarget)
	}
	if st.Blocks4K != 2 {
		t.Errorf("Blocks4K = %d, want 2", st.Blocks4K)
	}
	if st.LargeFootprint() {
		t.Error("tiny trace classified as large footprint")
	}
	if st.TakenRate() != 5.0/6.0 {
		t.Errorf("TakenRate = %v", st.TakenRate())
	}
	if st.BranchDensity() != 6.0/8.0 {
		t.Errorf("BranchDensity = %v", st.BranchDensity())
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestTopBlocks(t *testing.T) {
	var ins []Inst
	// Block 2 hottest, then block 5, then block 9.
	for i := 0; i < 30; i++ {
		ins = append(ins, Inst{Addr: 2*4096 + zaddr.Addr(4*(i%10)), Length: 4, Kind: NotBranch})
	}
	for i := 0; i < 20; i++ {
		ins = append(ins, Inst{Addr: 5*4096 + zaddr.Addr(4*(i%10)), Length: 4, Kind: NotBranch})
	}
	for i := 0; i < 10; i++ {
		ins = append(ins, Inst{Addr: 9*4096 + zaddr.Addr(4*(i%10)), Length: 4, Kind: NotBranch})
	}
	top := TopBlocks(NewSliceSource("tb", ins), 2)
	if len(top) != 2 || top[0] != 2 || top[1] != 5 {
		t.Errorf("TopBlocks = %v", top)
	}
}

func TestCollect(t *testing.T) {
	ins := synthInsts(rand.New(rand.NewSource(3)), 50)
	s := NewSliceSource("c", ins)
	// Partially drain, then Collect must still return everything.
	s.Next()
	s.Next()
	got := Collect(s)
	if len(got) != 50 {
		t.Fatalf("Collect returned %d records", len(got))
	}
}

// TestReadNeverPanics feeds random byte soup (and mutated valid files)
// into Read: malformed input must produce errors, never panics.
func TestReadNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	// A valid file to mutate.
	valid := func() []byte {
		var buf bytes.Buffer
		if _, err := WriteSlice(&buf, "fuzz", synthInsts(r, 40)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	check := func(data []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Read panicked on %d bytes: %v", len(data), p)
			}
		}()
		Read(bytes.NewReader(data))
	}
	for i := 0; i < 200; i++ {
		// Pure garbage of random length.
		garbage := make([]byte, r.Intn(200))
		r.Read(garbage)
		check(garbage)
		// Valid file with a few corrupted bytes.
		mut := append([]byte(nil), valid...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		}
		check(mut)
		// Truncations.
		check(valid[:r.Intn(len(valid))])
	}
}

// TestWriteSliceNameTooLong exercises the header bound.
func TestWriteSliceNameTooLong(t *testing.T) {
	var buf bytes.Buffer
	long := strings.Repeat("x", 1<<16)
	if _, err := WriteSlice(&buf, long, nil); err == nil {
		t.Error("oversized name accepted")
	}
}
