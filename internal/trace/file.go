package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"bulkpreload/internal/zaddr"
)

// Binary trace file format ("ZBPT", version 2):
//
//	header:  magic "ZBPT" | u16 version | u16 name length | name bytes |
//	         u64 record count
//	records: u64 addr | u64 target | u64 hint branch | u8 length |
//	         u8 kind | u8 flags
//
// flags bit 0 = taken, bit 1 = static-taken. All integers little-endian.
// The hint-branch field is nonzero only for PreloadHint records. The
// format exists so that generated workloads can be exported and
// re-consumed without regeneration (cmd/tracegen writes, ReadFile
// loads).

// The record's byte geometry and the flags byte's bit layout are both
// declared here and proven against the encoder/decoder by packlayout,
// so WriteSlice and decodeRecord cannot drift apart silently.
//
//zbp:layout record word:recordSize unit:byte addr:0..7 target:8..15 hint:16..23 length:24 kind:25 flags:26
//zbp:layout flags word:8 taken:0 staticTaken:1
const (
	fileMagic   = "ZBPT"
	fileVersion = 2
	recordSize  = 8 + 8 + 8 + 1 + 1 + 1 // addr, target, hint branch, length, kind, flags
)

// ErrBadTrace reports a structurally invalid trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// ErrTruncated reports a trace that ends mid-stream: the header promised
// more bytes than the file holds (interrupted write, partial copy,
// filesystem damage). It always accompanies ErrBadTrace, so errors.Is
// works with either sentinel; the message carries the failing byte
// offset rather than a bare io.ErrUnexpectedEOF.
var ErrTruncated = errors.New("trace: truncated trace file")

// Write serializes all instructions from src to w in ZBPT format. It
// resets src, makes one counting pass, resets again and streams records.
func Write(w io.Writer, src Source) (int64, error) {
	ins := Collect(src)
	return WriteSlice(w, src.Name(), ins)
}

// WriteSlice serializes ins to w in ZBPT format under the given name.
//
//zbp:layout record pack
//zbp:layout flags pack
func WriteSlice(w io.Writer, name string, ins []Inst) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.WriteString(fileMagic); err != nil {
		return written, err
	}
	written += int64(len(fileMagic))
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fileVersion)
	if len(name) > 1<<16-1 {
		return written, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 4
	if _, err := bw.WriteString(name); err != nil {
		return written, err
	}
	written += int64(len(name))
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(ins)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return written, err
	}
	written += 8
	var rec [recordSize]byte
	for i := range ins {
		in := &ins[i]
		binary.LittleEndian.PutUint64(rec[0:8], uint64(in.Addr))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(in.Target))
		binary.LittleEndian.PutUint64(rec[16:24], uint64(in.HintBranch))
		rec[24] = in.Length
		rec[25] = uint8(in.Kind)
		var flags uint8
		if in.Taken {
			flags |= 1
		}
		if in.StaticTaken {
			flags |= 2
		}
		rec[26] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += recordSize
	}
	return written, bw.Flush()
}

// readHeader consumes and validates the ZBPT header from r, returning
// the trace name, the promised record count, and the number of header
// bytes consumed (the byte offset of the first record). It is shared by
// the one-shot Read and the streaming BatchDecoder so both report
// identical byte-offset diagnostics.
func readHeader(r io.Reader) (name string, n uint64, off int64, err error) {
	magic := make([]byte, len(fileMagic))
	if k, err := io.ReadFull(r, magic); err != nil {
		return "", 0, 0, fmt.Errorf("%w: %w: magic cut short at byte offset %d (want %d header bytes)",
			ErrBadTrace, ErrTruncated, off+int64(k), len(fileMagic))
	}
	if string(magic) != fileMagic {
		return "", 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	off += int64(len(fileMagic))
	var hdr [4]byte
	if k, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", 0, 0, fmt.Errorf("%w: %w: version/name header cut short at byte offset %d",
			ErrBadTrace, ErrTruncated, off+int64(k))
	}
	off += int64(len(hdr))
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != fileVersion {
		return "", 0, 0, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
	nameBytes := make([]byte, nameLen)
	if k, err := io.ReadFull(r, nameBytes); err != nil {
		return "", 0, 0, fmt.Errorf("%w: %w: name cut short at byte offset %d (want %d name bytes)",
			ErrBadTrace, ErrTruncated, off+int64(k), nameLen)
	}
	off += int64(nameLen)
	name = string(nameBytes)
	var cnt [8]byte
	if k, err := io.ReadFull(r, cnt[:]); err != nil {
		return name, 0, 0, fmt.Errorf("%w: %w: record count cut short at byte offset %d",
			ErrBadTrace, ErrTruncated, off+int64(k))
	}
	off += int64(len(cnt))
	n = binary.LittleEndian.Uint64(cnt[:])
	const maxRecords = 1 << 31
	if n > maxRecords {
		return name, 0, 0, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, n)
	}
	return name, n, off, nil
}

// decodeRecord rebuilds one Inst from its wire image. rec must hold
// recordSize bytes; no validation is performed here.
//
//zbp:hotpath
//zbp:layout record unpack
//zbp:layout flags unpack
func decodeRecord(rec []byte) Inst {
	return Inst{
		Addr:        zaddr.Addr(binary.LittleEndian.Uint64(rec[0:8])),
		Target:      zaddr.Addr(binary.LittleEndian.Uint64(rec[8:16])),
		HintBranch:  zaddr.Addr(binary.LittleEndian.Uint64(rec[16:24])),
		Length:      rec[24],
		Kind:        Kind(rec[25]),
		Taken:       rec[26]&1 != 0,
		StaticTaken: rec[26]&2 != 0,
	}
}

// errRecordCut reports record i of n ending early: off is the byte
// offset of the record's start, got the record bytes actually present.
func errRecordCut(i, n uint64, off int64, got int) error {
	return fmt.Errorf(
		"%w: %w: record %d of %d cut short at byte offset %d (%d of %d record bytes present)",
		ErrBadTrace, ErrTruncated, i, n, off+int64(got), got, recordSize)
}

// errRecordInvalid reports a structurally invalid record i starting at
// byte offset off.
func errRecordInvalid(i uint64, off int64, err error) error {
	return fmt.Errorf("%w: record %d at byte offset %d: %v", ErrBadTrace, i, off, err)
}

// Read deserializes a full ZBPT stream from r, validating every record.
//
// On error, the name and every record parsed before the failure are
// still returned alongside it, so callers that can live with a shorter
// trace (see ReadFileTolerant) may salvage the prefix. Truncation errors
// satisfy errors.Is(err, ErrTruncated) and report the byte offset where
// the stream gave out.
func Read(r io.Reader) (name string, ins []Inst, err error) {
	br := bufio.NewReader(r)
	name, n, off, err := readHeader(br)
	if err != nil {
		return name, nil, err
	}
	// Preallocate from the header's promised count, but bounded: a
	// corrupt or hostile header must not commit gigabytes before a
	// single record has been read. The slice grows on demand past the
	// bound (found by FuzzBatchDecoder cross-checking this path).
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	ins = make([]Inst, 0, capHint)
	var rec [recordSize]byte
	for i := uint64(0); i < n; i++ {
		if k, err := io.ReadFull(br, rec[:]); err != nil {
			return name, ins, errRecordCut(i, n, off, k)
		}
		in := decodeRecord(rec[:])
		if err := in.Validate(); err != nil {
			return name, ins, errRecordInvalid(i, off, err)
		}
		off += recordSize
		ins = append(ins, in)
	}
	return name, ins, nil
}

// WriteFile writes src to the named file in ZBPT format.
func WriteFile(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := Write(f, src); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads the named ZBPT file as a SliceSource.
func ReadFile(path string) (*SliceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name, ins, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return NewSliceSource(name, ins), nil
}

// ReadFileTolerant loads the named ZBPT file, salvaging the valid record
// prefix when the tail is truncated or corrupt (a crashed tracegen, a
// partial copy). The returned source holds every record before the first
// bad byte; diag is non-nil exactly when records were dropped and
// carries Read's byte-offset diagnostic. A file damaged before any
// record could be parsed (bad magic, unsupported version, unreadable
// header) is not salvageable and is returned as an error with a nil
// source.
func ReadFileTolerant(path string) (src *SliceSource, diag error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	name, ins, rerr := Read(f)
	if rerr == nil {
		return NewSliceSource(name, ins), nil, nil
	}
	if len(ins) == 0 {
		return nil, nil, fmt.Errorf("%s: nothing salvageable: %w", path, rerr)
	}
	return NewSliceSource(name, ins), fmt.Errorf("%s: salvaged %d records: %w", path, len(ins), rerr), nil
}
