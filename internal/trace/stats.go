package trace

import (
	"fmt"
	"sort"

	"bulkpreload/internal/zaddr"
)

// Stats summarizes the branch footprint of a trace. The two headline
// numbers — unique branch instruction addresses and unique *ever-taken*
// branch instruction addresses — are exactly the columns of Table 4 of
// the paper; traces with more than 5,000 unique taken branch addresses
// were the paper's candidates for BTB2 benefit.
type Stats struct {
	Name string

	Instructions int64 // total dynamic instructions
	Branches     int64 // dynamic branch executions
	TakenBr      int64 // dynamic taken branch executions

	UniqueBranches int // unique branch instruction addresses
	UniqueTaken    int // unique ever-taken branch instruction addresses

	CodeBytes      int64 // distinct instruction bytes touched (footprint)
	Blocks4K       int   // distinct 4 KB blocks touched
	KindCounts     [numKinds]int64
	ChangingTarget int // taken branch sites observed with >1 target
}

// LargeFootprint reports whether the trace meets the paper's threshold
// for a BTB2-benefit candidate (more than 5,000 unique taken branch
// instruction addresses).
func (s Stats) LargeFootprint() bool { return s.UniqueTaken > 5000 }

// TakenRate returns the fraction of dynamic branches resolved taken.
func (s Stats) TakenRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.TakenBr) / float64(s.Branches)
}

// BranchDensity returns dynamic branches per instruction.
func (s Stats) BranchDensity() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Branches) / float64(s.Instructions)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d insts, %d uniq branches (%d ever-taken), %.1f%% taken, %d 4KB blocks",
		s.Name, s.Instructions, s.UniqueBranches, s.UniqueTaken, 100*s.TakenRate(), s.Blocks4K)
}

// Measure makes one full pass over src and computes its Stats. The source
// is Reset before and left exhausted after.
func Measure(src Source) Stats {
	src.Reset()
	st := Stats{Name: src.Name()}
	branchSeen := make(map[zaddr.Addr]bool)
	takenSeen := make(map[zaddr.Addr]bool)
	firstTarget := make(map[zaddr.Addr]zaddr.Addr)
	changing := make(map[zaddr.Addr]bool)
	codeBytes := make(map[zaddr.Addr]uint8) // inst addr -> length
	blocks := make(map[uint64]bool)

	//zbp:bounded terminates when src.Next reports end-of-trace
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		st.Instructions++
		st.KindCounts[in.Kind]++
		codeBytes[in.Addr] = in.Length
		blocks[zaddr.Block(in.Addr)] = true
		if !in.IsBranch() {
			continue
		}
		st.Branches++
		branchSeen[in.Addr] = true
		if in.Taken {
			st.TakenBr++
			takenSeen[in.Addr] = true
			if prev, ok := firstTarget[in.Addr]; !ok {
				firstTarget[in.Addr] = in.Target
			} else if prev != in.Target && !changing[in.Addr] {
				changing[in.Addr] = true
				st.ChangingTarget++
			}
		}
	}
	st.UniqueBranches = len(branchSeen)
	st.UniqueTaken = len(takenSeen)
	st.Blocks4K = len(blocks)
	for _, l := range codeBytes {
		st.CodeBytes += int64(l)
	}
	return st
}

// TopBlocks returns the n most frequently executed 4 KB block numbers of
// src, in descending execution-count order. Used by steering analyses.
func TopBlocks(src Source, n int) []uint64 {
	src.Reset()
	counts := make(map[uint64]int64)
	//zbp:bounded terminates when src.Next reports end-of-trace
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		counts[zaddr.Block(in.Addr)]++
	}
	blocks := make([]uint64, 0, len(counts))
	for b := range counts {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool {
		if counts[blocks[i]] != counts[blocks[j]] {
			return counts[blocks[i]] > counts[blocks[j]]
		}
		return blocks[i] < blocks[j]
	})
	if len(blocks) > n {
		blocks = blocks[:n]
	}
	return blocks
}
