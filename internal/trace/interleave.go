package trace

import (
	"fmt"
	"strings"
)

// InterleaveSource time-slices several sources onto one logical
// processor in round-robin quanta, modelling the multiprogrammed
// operation the paper's Table 4 includes ("a mix of two of the LSPR
// workloads time sliced on one processor", trace 5) and the inter-thread
// BTB aliasing its background section discusses. Exhausted sources drop
// out of the rotation; the stream ends when all are exhausted.
type InterleaveSource struct {
	name    string
	srcs    []Source
	quantum int

	cur    int
	inQ    int
	done   []bool
	nDone  int
	primed []Inst
	valid  []bool
}

// NewInterleaveSource builds an interleaved source with the given
// per-source quantum (instructions per time slice).
func NewInterleaveSource(quantum int, srcs ...Source) *InterleaveSource {
	if quantum <= 0 {
		panic("trace: interleave quantum must be positive")
	}
	if len(srcs) == 0 {
		panic("trace: interleave needs at least one source")
	}
	names := make([]string, len(srcs))
	for i, s := range srcs {
		names[i] = s.Name()
	}
	is := &InterleaveSource{
		name:    fmt.Sprintf("mix(%s)", strings.Join(names, "+")),
		srcs:    srcs,
		quantum: quantum,
	}
	is.Reset()
	return is
}

// Name implements Source.
func (is *InterleaveSource) Name() string { return is.name }

// Reset implements Source.
func (is *InterleaveSource) Reset() {
	for _, s := range is.srcs {
		s.Reset()
	}
	is.cur = 0
	is.inQ = 0
	is.done = make([]bool, len(is.srcs))
	is.nDone = 0
	is.primed = make([]Inst, len(is.srcs))
	is.valid = make([]bool, len(is.srcs))
}

// rotate advances to the next live source.
func (is *InterleaveSource) rotate() {
	is.inQ = 0
	for i := 1; i <= len(is.srcs); i++ {
		n := (is.cur + i) % len(is.srcs)
		if !is.done[n] {
			is.cur = n
			return
		}
	}
}

// Next implements Source.
func (is *InterleaveSource) Next() (Inst, bool) {
	for is.nDone < len(is.srcs) {
		if is.done[is.cur] {
			is.rotate()
			continue
		}
		if is.inQ >= is.quantum {
			is.rotate()
			continue
		}
		in, ok := is.srcs[is.cur].Next()
		if !ok {
			is.done[is.cur] = true
			is.nDone++
			is.rotate()
			continue
		}
		is.inQ++
		return in, true
	}
	return Inst{}, false
}

var _ Source = (*InterleaveSource)(nil)
