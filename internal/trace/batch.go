package trace

import (
	"fmt"
	"io"
	"os"

	"bulkpreload/internal/obs/span"
)

// Batched decoding: the simulator's hot loop consumes instructions in
// fixed-capacity record batches instead of one interface call per
// record. A Batch is a reusable buffer (allocated once, refilled in
// place), so batch-driven runs are allocation-free in steady state;
// the AllocsPerRun tests in batch_test.go and the hotalloc analyzer
// pin that contract.

// DefaultBatchCapacity is the record count of one decode batch. 1024
// records (~27 KB of wire format, 48 KB of Inst) amortizes call and
// read overhead while staying comfortably inside the L2 cache of the
// worker core that replays the batch.
const DefaultBatchCapacity = 1024

// Batch is a fixed-capacity, reusable buffer of trace records. Ins
// holds the filled prefix; its capacity (fixed at NewBatch) bounds how
// many records one fill delivers. Refills reuse the backing array.
type Batch struct {
	Ins []Inst
}

// NewBatch returns an empty batch with the given capacity (<= 0 selects
// DefaultBatchCapacity).
func NewBatch(capacity int) Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCapacity
	}
	return Batch{Ins: make([]Inst, 0, capacity)}
}

// Len returns the number of records currently in the batch.
func (b *Batch) Len() int { return len(b.Ins) }

// Batcher is a Source that can refill whole batches directly, skipping
// the per-record Next dispatch.
type Batcher interface {
	Source
	// FillBatch refills b (discarding its previous contents) with up to
	// cap(b.Ins) records and returns how many were delivered; 0 means
	// end of stream.
	FillBatch(b *Batch) int
}

// FillBatch refills b from src: batch-capable sources fill directly,
// anything else falls back to a per-record Next loop. Returns the
// number of records delivered; 0 means end of stream.
//
//zbp:hotpath
func FillBatch(src Source, b *Batch) int {
	if bs, ok := src.(Batcher); ok {
		return bs.FillBatch(b)
	}
	b.Ins = b.Ins[:0]
	for len(b.Ins) < cap(b.Ins) {
		in, ok := src.Next()
		if !ok {
			break
		}
		b.Ins = append(b.Ins, in)
	}
	return len(b.Ins)
}

// FillBatch implements Batcher with a single bulk copy from the
// in-memory slice.
//
//zbp:hotpath
func (s *SliceSource) FillBatch(b *Batch) int {
	n := cap(b.Ins)
	if rem := len(s.ins) - s.pos; n > rem {
		n = rem
	}
	b.Ins = append(b.Ins[:0], s.ins[s.pos:s.pos+n]...)
	s.pos += n
	return n
}

// BatchDecoder decodes a ZBPT stream batch-at-a-time: one bulk read of
// up to batchCap records per Next call, decoded into a caller-owned
// Batch with zero allocations in steady state. Byte-offset diagnostics
// (truncation, invalid records) are identical to Read's, so salvage
// tooling sees the same failure point whichever decoder found it.
//
//zbp:allow obsreg FileSource wraps this decoder and records the refill spans around Next
type BatchDecoder struct {
	r       io.Reader
	name    string
	total   uint64 // records the header promises
	read    uint64 // records fully decoded so far
	off     int64  // byte offset of the next record
	dataOff int64  // byte offset of the first record (for Reset)
	buf     []byte // reusable bulk-read buffer, cap = batchCap * recordSize
	err     error  // sticky terminal decode error
}

// NewBatchDecoder consumes the ZBPT header from r and returns a decoder
// delivering at most batchCap records per Next call (<= 0 selects
// DefaultBatchCapacity). The caller keeps ownership of r.
func NewBatchDecoder(r io.Reader, batchCap int) (*BatchDecoder, error) {
	if batchCap <= 0 {
		batchCap = DefaultBatchCapacity
	}
	name, total, off, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	return &BatchDecoder{
		r:       r,
		name:    name,
		total:   total,
		off:     off,
		dataOff: off,
		buf:     make([]byte, 0, batchCap*recordSize),
	}, nil
}

// Name returns the trace name from the header.
func (d *BatchDecoder) Name() string { return d.name }

// Total returns the record count the header promises.
func (d *BatchDecoder) Total() uint64 { return d.total }

// Decoded returns how many records have been fully decoded so far.
func (d *BatchDecoder) Decoded() uint64 { return d.read }

// Reset rewinds the decoder to the first record. The caller must have
// repositioned the byte stream to the same point (e.g. by seeking the
// file back to where the header ended); r replaces the decoder's
// reader so seekable and reopened streams both work.
func (d *BatchDecoder) Reset(r io.Reader) {
	d.r = r
	d.read = 0
	d.off = d.dataOff
	d.err = nil
}

// Next refills b (discarding its previous contents) with up to
// cap(b.Ins) records, bounded by the decoder's batch capacity. It
// returns io.EOF with an empty batch at the clean end of the stream.
// On truncation or a corrupt record the valid records decoded before
// the failure are left in b — callers may salvage them — and the
// returned error carries the same byte-offset diagnostics as Read;
// every later call returns the same error with an empty batch.
//
//zbp:hotpath
func (d *BatchDecoder) Next(b *Batch) error {
	b.Ins = b.Ins[:0]
	if d.err != nil {
		return d.err
	}
	if d.read >= d.total {
		return io.EOF
	}
	want := cap(b.Ins)
	if max := cap(d.buf) / recordSize; want > max {
		want = max
	}
	if rem := d.total - d.read; uint64(want) > rem {
		want = int(rem)
	}
	d.buf = d.buf[:want*recordSize]
	k, rferr := io.ReadFull(d.r, d.buf)
	for i := 0; i+recordSize <= k; i += recordSize {
		in := decodeRecord(d.buf[i : i+recordSize])
		if err := in.Validate(); err != nil {
			d.err = errRecordInvalid(d.read, d.off, err)
			return d.err
		}
		d.read++
		d.off += recordSize
		b.Ins = append(b.Ins, in)
	}
	if rferr != nil {
		d.err = errRecordCut(d.read, d.total, d.off, k%recordSize)
		return d.err
	}
	return nil
}

// FileSource streams a ZBPT file through a reusable decode batch: the
// trace never materializes in memory (unlike ReadFile's SliceSource),
// so arbitrarily large trace files simulate in constant space. It
// implements Source and Batcher; engines that pull whole batches skip
// the per-record dispatch entirely.
//
// A truncated or corrupt tail ends the stream after the last valid
// record — ReadFileTolerant's salvage semantics — with the diagnostic
// available from Err after the pass.
type FileSource struct {
	f     *os.File
	dec   *BatchDecoder
	batch Batch
	pos   int   // next unread record in batch
	diag  error // terminal decode/seek error, nil on clean streams
	done  bool

	// spans, when set via SetSpans, records one KindRefill span per
	// batch refill (disk read + decode) under spanParent, attributing
	// pipeline stall time to trace I/O. Nil costs nothing.
	spans      *span.Recorder
	spanParent span.ID
}

// SetSpans attaches a span recorder to the source: every subsequent
// batch refill is recorded as a refill span under parent. The recorder
// must belong to the goroutine consuming the source (the shard worker);
// call with nil to detach.
func (s *FileSource) SetSpans(rec *span.Recorder, parent span.ID) {
	s.spans = rec
	s.spanParent = parent
}

// OpenFileSource opens path for streaming batched decode. batchCap <= 0
// selects DefaultBatchCapacity. Close releases the file handle.
func OpenFileSource(path string, batchCap int) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	dec, err := NewBatchDecoder(f, batchCap)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &FileSource{f: f, dec: dec, batch: NewBatch(batchCap)}, nil
}

// Name implements Source.
func (s *FileSource) Name() string { return s.dec.Name() }

// Next implements Source, serving records out of the current batch and
// refilling when it drains.
//
//zbp:hotpath
func (s *FileSource) Next() (Inst, bool) {
	if s.pos >= len(s.batch.Ins) && !s.refill() {
		return Inst{}, false
	}
	in := s.batch.Ins[s.pos]
	s.pos++
	return in, true
}

// refill pulls the next batch from the decoder; decode errors end the
// stream after the salvaged records and are reported via Err.
func (s *FileSource) refill() bool {
	if s.done {
		return false
	}
	s.pos = 0
	sp := s.spans.Start(span.KindRefill, "refill", s.spanParent)
	err := s.dec.Next(&s.batch)
	sp.EndArgs(int64(len(s.batch.Ins)), 0)
	if err != nil {
		if err != io.EOF {
			s.diag = err
		}
		s.done = len(s.batch.Ins) == 0
	}
	return len(s.batch.Ins) > 0
}

// FillBatch implements Batcher. With no buffered remainder it decodes
// straight into b; otherwise it drains the remainder first so mixed
// Next/FillBatch consumers never reorder records.
//
//zbp:hotpath
func (s *FileSource) FillBatch(b *Batch) int {
	if rem := len(s.batch.Ins) - s.pos; rem > 0 {
		n := cap(b.Ins)
		if n > rem {
			n = rem
		}
		b.Ins = append(b.Ins[:0], s.batch.Ins[s.pos:s.pos+n]...)
		s.pos += n
		return n
	}
	b.Ins = b.Ins[:0]
	if s.done {
		return 0
	}
	sp := s.spans.Start(span.KindRefill, "refill", s.spanParent)
	err := s.dec.Next(b)
	sp.EndArgs(int64(len(b.Ins)), 0)
	if err != nil {
		if err != io.EOF {
			s.diag = err
		}
		s.done = len(b.Ins) == 0
	}
	return len(b.Ins)
}

// Reset implements Source, rewinding to the first record.
func (s *FileSource) Reset() {
	s.batch.Ins = s.batch.Ins[:0]
	s.pos = 0
	s.done = false
	s.diag = nil
	if _, err := s.f.Seek(s.dec.dataOff, io.SeekStart); err != nil {
		s.diag = err
		s.done = true
		return
	}
	s.dec.Reset(s.f)
}

// Err returns the terminal decode error of the current pass, nil when
// the stream ended cleanly (or has not ended yet).
func (s *FileSource) Err() error { return s.diag }

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }
