// Package trace defines the abstract instruction-stream model consumed by
// the simulator, a binary on-disk trace format, and footprint statistics
// matching Table 4 of the paper.
//
// The branch prediction hierarchy only observes instruction addresses,
// lengths, branch kinds, resolved directions and targets, so a trace
// record carries exactly that. z/Architecture instructions are 2, 4 or 6
// bytes long; generators in internal/workload respect those lengths so
// that footprint estimates (24-30 bytes of instruction space per BTB
// entry) carry over.
package trace

import (
	"fmt"

	"bulkpreload/internal/zaddr"
)

// Kind classifies an instruction for the predictor's purposes.
type Kind uint8

const (
	// NotBranch is any instruction that cannot redirect sequential flow.
	NotBranch Kind = iota
	// CondDirect is a conditional branch with an immediate target
	// (BRC/BRCT-style). Eligible for BHT/PHT direction prediction.
	CondDirect
	// UncondDirect is an always-taken branch with an immediate target.
	UncondDirect
	// Call is a branch-and-link (BRAS/BRASL-style); always taken.
	Call
	// Return is an indirect branch through a register used as a
	// subroutine return; always taken, target varies by call site.
	Return
	// IndirectOther is any other computed branch (branch tables, virtual
	// dispatch); may vary both direction and target. Eligible for CTB
	// target prediction.
	IndirectOther
	// PreloadHint is a branch preload instruction (the z/Architecture
	// BPP-style facility Section 3.1 lists among the BTBP write
	// sources): it names an upcoming branch (HintBranch) and its target
	// so software can install the prediction ahead of execution. It is
	// not itself a branch.
	PreloadHint

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NotBranch:
		return "not-branch"
	case CondDirect:
		return "cond-direct"
	case UncondDirect:
		return "uncond-direct"
	case Call:
		return "call"
	case Return:
		return "return"
	case IndirectOther:
		return "indirect"
	case PreloadHint:
		return "preload-hint"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsBranch reports whether the kind can redirect instruction flow.
func (k Kind) IsBranch() bool {
	return k != NotBranch && k != PreloadHint && k < numKinds
}

// AlwaysTaken reports whether the kind is unconditionally taken when
// executed (unconditional direct branches, calls, returns).
func (k Kind) AlwaysTaken() bool {
	return k == UncondDirect || k == Call || k == Return
}

// Inst is one executed instruction as seen by the simulator. For branch
// kinds, Taken and Target record the resolved outcome of this dynamic
// execution.
type Inst struct {
	Addr   zaddr.Addr // instruction address
	Target zaddr.Addr // resolved target (branches only, taken or not)
	Length uint8      // 2, 4 or 6 bytes
	Kind   Kind
	Taken  bool // resolved direction
	// StaticTaken is the static guess derived from opcode and instruction
	// text, used for surprise branches together with the tagless surprise
	// BHT. Generators set it from the branch's dominant direction with
	// deliberate noise so that static guessing is imperfect, as on real
	// opcodes.
	StaticTaken bool
	// HintBranch is the branch instruction address a PreloadHint names
	// (with Target as its predicted target). Zero for all other kinds.
	HintBranch zaddr.Addr
}

// IsBranch reports whether the instruction is any kind of branch.
func (in Inst) IsBranch() bool { return in.Kind.IsBranch() }

// FallThrough returns the address of the next sequential instruction.
func (in Inst) FallThrough() zaddr.Addr {
	return in.Addr + zaddr.Addr(in.Length)
}

// NextAddr returns the address control actually flowed to after this
// instruction executed.
func (in Inst) NextAddr() zaddr.Addr {
	if in.IsBranch() && in.Taken {
		return in.Target
	}
	return in.FallThrough()
}

// Validate checks structural invariants of a record. It is used by the
// trace reader and by property tests over generators.
func (in Inst) Validate() error {
	switch in.Length {
	case 2, 4, 6:
	default:
		return fmt.Errorf("trace: instruction at %#x has invalid length %d", uint64(in.Addr), in.Length)
	}
	if in.Addr%2 != 0 {
		return fmt.Errorf("trace: instruction address %#x not halfword aligned", uint64(in.Addr))
	}
	if in.Kind >= numKinds {
		return fmt.Errorf("trace: instruction at %#x has invalid kind %d", uint64(in.Addr), uint8(in.Kind))
	}
	if in.Kind == PreloadHint {
		if in.Taken {
			return fmt.Errorf("trace: preload hint at %#x marked taken", uint64(in.Addr))
		}
		if in.HintBranch%2 != 0 || in.Target%2 != 0 {
			return fmt.Errorf("trace: preload hint at %#x has misaligned operands", uint64(in.Addr))
		}
		if in.HintBranch == 0 {
			return fmt.Errorf("trace: preload hint at %#x names no branch", uint64(in.Addr))
		}
		return nil
	}
	if !in.IsBranch() {
		if in.Taken {
			return fmt.Errorf("trace: non-branch at %#x marked taken", uint64(in.Addr))
		}
		if in.HintBranch != 0 {
			return fmt.Errorf("trace: non-hint at %#x carries a hint branch", uint64(in.Addr))
		}
		return nil
	}
	if in.HintBranch != 0 {
		return fmt.Errorf("trace: branch at %#x carries a hint branch", uint64(in.Addr))
	}
	if in.Kind.AlwaysTaken() && !in.Taken {
		return fmt.Errorf("trace: always-taken %v at %#x resolved not-taken", in.Kind, uint64(in.Addr))
	}
	if in.Taken && in.Target%2 != 0 {
		return fmt.Errorf("trace: branch at %#x has misaligned target %#x", uint64(in.Addr), uint64(in.Target))
	}
	return nil
}

// Source is a restartable stream of instructions. Implementations must be
// deterministic: two passes separated by Reset yield identical streams.
// The simulator makes multiple passes (one per configuration) over each
// workload.
type Source interface {
	// Name identifies the workload (e.g. "zos-daytrader-dbserv").
	Name() string
	// Next returns the next instruction. ok is false at end of stream.
	Next() (in Inst, ok bool)
	// Reset restarts the stream from the beginning.
	Reset()
}

// SliceSource adapts an in-memory instruction slice to Source. It is the
// workhorse for unit tests and for directed microbenchmark kernels.
// Refills from a resident slice are not worth span events; file-backed
// streaming (FileSource) is the traced path.
//
//zbp:allow obsreg in-memory refills are not traced; FileSource records refill spans
type SliceSource struct {
	name string
	ins  []Inst
	pos  int
}

// NewSliceSource builds a Source named name over ins. The slice is not
// copied; callers must not mutate it afterwards.
func NewSliceSource(name string, ins []Inst) *SliceSource {
	return &SliceSource{name: name, ins: ins}
}

// Name implements Source.
func (s *SliceSource) Name() string { return s.name }

// Next implements Source.
func (s *SliceSource) Next() (Inst, bool) {
	if s.pos >= len(s.ins) {
		return Inst{}, false
	}
	in := s.ins[s.pos]
	s.pos++
	return in, true
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the source.
func (s *SliceSource) Len() int { return len(s.ins) }

// Collect drains src into a slice (resetting it first) and returns the
// instructions. Intended for tests and for writing trace files.
func Collect(src Source) []Inst {
	src.Reset()
	var out []Inst
	//zbp:bounded terminates when src.Next reports end-of-trace
	for {
		in, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

// LimitSource wraps a Source and truncates it to at most n instructions
// per pass. Used to bound simulation time in sweeps.
type LimitSource struct {
	Src  Source
	N    int
	seen int
}

// NewLimitSource returns a Source yielding at most n instructions of src.
func NewLimitSource(src Source, n int) *LimitSource {
	return &LimitSource{Src: src, N: n}
}

// Name implements Source.
func (l *LimitSource) Name() string { return l.Src.Name() }

// Next implements Source.
func (l *LimitSource) Next() (Inst, bool) {
	if l.seen >= l.N {
		return Inst{}, false
	}
	in, ok := l.Src.Next()
	if ok {
		l.seen++
	}
	return in, ok
}

// Reset implements Source.
func (l *LimitSource) Reset() {
	l.seen = 0
	l.Src.Reset()
}
