package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestReadTruncatedRecordDiagnostic is the regression test for the
// opaque "truncated record N: unexpected EOF" failure mode: a trace cut
// mid-record must produce a descriptive error naming the failing byte
// offset, classified under ErrTruncated/ErrBadTrace, never a bare
// io.ErrUnexpectedEOF — and the intact prefix must still come back.
func TestReadTruncatedRecordDiagnostic(t *testing.T) {
	valid := fuzzSeedTrace(t)
	headerLen := len(valid) - 4*recordSize

	// Cut 5 bytes into the third record.
	cutAt := headerLen + 2*recordSize + 5
	name, ins, err := Read(bytes.NewReader(valid[:cutAt]))
	if err == nil {
		t.Fatal("Read accepted a truncated trace")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("error does not match ErrTruncated: %v", err)
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("error does not match ErrBadTrace: %v", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("io.ErrUnexpectedEOF leaked through: %v", err)
	}
	// The diagnostic names the byte offset where the stream gave out
	// (the cut point itself).
	wantOff := "byte offset " + strconv.Itoa(cutAt)
	if !strings.Contains(err.Error(), wantOff) {
		t.Errorf("error %q does not name %q", err, wantOff)
	}
	if !strings.Contains(err.Error(), "record 2 of 4") {
		t.Errorf("error %q does not identify the failing record", err)
	}
	// Prefix salvage: the two complete records and the name survive.
	if name != "fuzz-seed" || len(ins) != 2 {
		t.Errorf("salvaged prefix = %q/%d records, want fuzz-seed/2", name, len(ins))
	}
}

func TestReadTruncatedAtEveryBoundary(t *testing.T) {
	valid := fuzzSeedTrace(t)
	for cut := 0; cut < len(valid); cut++ {
		_, _, err := Read(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("cut at %d bytes: Read reported success", cut)
		}
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("cut at %d bytes: error not ErrBadTrace: %v", cut, err)
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			t.Fatalf("cut at %d bytes: raw io sentinel leaked: %v", cut, err)
		}
	}
}

func TestReadFileTolerant(t *testing.T) {
	valid := fuzzSeedTrace(t)
	dir := t.TempDir()

	whole := filepath.Join(dir, "whole.zbpt")
	if err := os.WriteFile(whole, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	src, diag, err := ReadFileTolerant(whole)
	if err != nil || diag != nil {
		t.Fatalf("intact file: err=%v diag=%v", err, diag)
	}
	if src.Len() != 4 {
		t.Errorf("intact file: %d records, want 4", src.Len())
	}

	cut := filepath.Join(dir, "cut.zbpt")
	if err := os.WriteFile(cut, valid[:len(valid)-recordSize-3], 0o644); err != nil {
		t.Fatal(err)
	}
	src, diag, err = ReadFileTolerant(cut)
	if err != nil {
		t.Fatalf("salvageable file rejected: %v", err)
	}
	if diag == nil || !errors.Is(diag, ErrTruncated) {
		t.Errorf("diag = %v, want ErrTruncated diagnostic", diag)
	}
	if src.Name() != "fuzz-seed" || src.Len() != 2 {
		t.Errorf("salvaged %q/%d records, want fuzz-seed/2", src.Name(), src.Len())
	}

	hopeless := filepath.Join(dir, "hopeless.zbpt")
	if err := os.WriteFile(hopeless, []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFileTolerant(hopeless); err == nil {
		t.Error("unsalvageable file did not error")
	}
}
