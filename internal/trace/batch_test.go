package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bulkpreload/internal/zaddr"
)

// mkRandomTrace builds n pseudorandom valid records (every Kind, mixed
// flags) — the property-test corpus for decoder equivalence.
func mkRandomTrace(tb testing.TB, n int, seed int64) []Inst {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	evenAddr := func() zaddr.Addr { return zaddr.Addr(r.Uint64()<<1) | 2 }
	kinds := []Kind{NotBranch, CondDirect, UncondDirect, Call, Return, IndirectOther, PreloadHint}
	ins := make([]Inst, 0, n)
	for len(ins) < n {
		k := kinds[r.Intn(len(kinds))]
		in := Inst{
			Addr:   evenAddr(),
			Length: uint8(2 * (1 + r.Intn(3))),
			Kind:   k,
		}
		switch {
		case k == PreloadHint:
			in.Target = evenAddr()
			in.HintBranch = evenAddr()
		case k != NotBranch:
			in.Taken = k.AlwaysTaken() || r.Intn(2) == 0
			in.StaticTaken = r.Intn(2) == 0
			if in.Taken {
				in.Target = evenAddr()
			}
		}
		if err := in.Validate(); err != nil {
			continue // skip combinations the format forbids
		}
		ins = append(ins, in)
	}
	return ins
}

// encode serializes ins under name and returns the wire bytes.
func encode(tb testing.TB, name string, ins []Inst) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := WriteSlice(&buf, name, ins); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// drainDecoder pulls every record out of a BatchDecoder, returning the
// salvaged records and the terminal error (nil on clean EOF).
func drainDecoder(dec *BatchDecoder, batchCap int) ([]Inst, error) {
	b := NewBatch(batchCap)
	var out []Inst
	for {
		err := dec.Next(&b)
		out = append(out, b.Ins...)
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
	}
}

// TestBatchDecoderMatchesRead is the round-trip property: for any batch
// capacity, the batch decoder must deliver exactly the records Read
// does, in order.
func TestBatchDecoderMatchesRead(t *testing.T) {
	for _, n := range []int{0, 1, 3, 63, 64, 65, 1000} {
		ins := mkRandomTrace(t, n, int64(7000+n))
		data := encode(t, "prop", ins)
		wantName, want, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: reference Read failed: %v", n, err)
		}
		for _, batchCap := range []int{1, 2, 7, 64, 1024} {
			dec, err := NewBatchDecoder(bytes.NewReader(data), batchCap)
			if err != nil {
				t.Fatalf("n=%d cap=%d: %v", n, batchCap, err)
			}
			if dec.Name() != wantName || dec.Total() != uint64(n) {
				t.Fatalf("n=%d cap=%d: header %q/%d, want %q/%d",
					n, batchCap, dec.Name(), dec.Total(), wantName, n)
			}
			got, derr := drainDecoder(dec, batchCap)
			if derr != nil {
				t.Fatalf("n=%d cap=%d: decode failed: %v", n, batchCap, derr)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d cap=%d: %d records, want %d", n, batchCap, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d cap=%d: record %d = %+v, want %+v", n, batchCap, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchDecoderTruncationMatchesRead cuts a stream at every byte
// offset — which, across the capacity set, places cuts exactly on and
// around batch boundaries — and demands the decoder salvage the same
// record prefix and report the very same diagnostic string as Read.
func TestBatchDecoderTruncationMatchesRead(t *testing.T) {
	ins := mkRandomTrace(t, 10, 42)
	data := encode(t, "cut", ins)
	for cut := 0; cut < len(data); cut++ {
		_, want, wantErr := Read(bytes.NewReader(data[:cut]))
		for _, batchCap := range []int{1, 2, 4, 64} {
			dec, err := NewBatchDecoder(bytes.NewReader(data[:cut]), batchCap)
			if err != nil {
				// Header-level failure: Read must have failed identically.
				if wantErr == nil {
					t.Fatalf("cut=%d cap=%d: decoder rejected header Read accepted: %v", cut, batchCap, err)
				}
				if err.Error() != wantErr.Error() {
					t.Fatalf("cut=%d cap=%d: header diagnostics differ:\n  decoder: %v\n  read:    %v",
						cut, batchCap, err, wantErr)
				}
				continue
			}
			got, gotErr := drainDecoder(dec, batchCap)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("cut=%d cap=%d: decoder err %v, Read err %v", cut, batchCap, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("cut=%d cap=%d: diagnostics differ:\n  decoder: %v\n  read:    %v",
						cut, batchCap, gotErr, wantErr)
				}
				if !errors.Is(gotErr, ErrBadTrace) {
					t.Fatalf("cut=%d cap=%d: not ErrBadTrace: %v", cut, batchCap, gotErr)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("cut=%d cap=%d: salvaged %d records, Read salvaged %d", cut, batchCap, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cut=%d cap=%d: salvaged record %d differs", cut, batchCap, i)
				}
			}
		}
	}
}

// TestBatchDecoderCorruptRecord plants an invalid record mid-stream and
// checks both decoders agree on the diagnostic and the salvage prefix.
func TestBatchDecoderCorruptRecord(t *testing.T) {
	ins := mkRandomTrace(t, 9, 17)
	data := encode(t, "corrupt", ins)
	headerLen := len(data) - len(ins)*recordSize
	// Poison record 5's kind byte.
	data[headerLen+5*recordSize+25] = 0xee
	_, want, wantErr := Read(bytes.NewReader(data))
	if wantErr == nil || len(want) != 5 {
		t.Fatalf("reference Read: %d records, err=%v; want 5 records and an error", len(want), wantErr)
	}
	for _, batchCap := range []int{1, 3, 64} {
		dec, err := NewBatchDecoder(bytes.NewReader(data), batchCap)
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := drainDecoder(dec, batchCap)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("cap=%d: diagnostic %v, want %v", batchCap, gotErr, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("cap=%d: salvaged %d records, want %d", batchCap, len(got), len(want))
		}
	}
}

// TestFileSourceMatchesReadFileTolerant checks the streaming source's
// salvage semantics against the in-memory tolerant loader, for intact
// and truncated files, across both consumption styles and a Reset.
func TestFileSourceMatchesReadFileTolerant(t *testing.T) {
	ins := mkRandomTrace(t, 300, 5)
	data := encode(t, "stream", ins)
	dir := t.TempDir()

	for _, tc := range []struct {
		name      string
		bytes     []byte
		truncated bool
	}{
		{"whole", data, false},
		{"cut-mid-record", data[:len(data)-recordSize-7], true},
		{"cut-batch-boundary", data[:len(data)-236*recordSize], true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".zbpt")
			if err := os.WriteFile(path, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			ref, refDiag, err := ReadFileTolerant(path)
			if err != nil {
				t.Fatal(err)
			}
			want := Collect(ref)

			src, err := OpenFileSource(path, 64)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			if src.Name() != ref.Name() {
				t.Errorf("name %q, want %q", src.Name(), ref.Name())
			}
			for pass := 0; pass < 2; pass++ {
				got := Collect(src)
				if len(got) != len(want) {
					t.Fatalf("pass %d: %d records, want %d", pass, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("pass %d: record %d differs", pass, i)
					}
				}
				if tc.truncated {
					if src.Err() == nil || !errors.Is(src.Err(), ErrTruncated) {
						t.Fatalf("pass %d: Err() = %v, want ErrTruncated diagnostic", pass, src.Err())
					}
					if refDiag == nil {
						t.Fatalf("reference loader saw no damage")
					}
				} else if src.Err() != nil {
					t.Fatalf("pass %d: Err() = %v on intact file", pass, src.Err())
				}
				src.Reset()
			}

			// Batcher path: FillBatch drains the same sequence.
			b := NewBatch(17)
			var batched []Inst
			for src.FillBatch(&b) > 0 {
				batched = append(batched, b.Ins...)
			}
			if len(batched) != len(want) {
				t.Fatalf("FillBatch: %d records, want %d", len(batched), len(want))
			}
			for i := range want {
				if batched[i] != want[i] {
					t.Fatalf("FillBatch: record %d differs", i)
				}
			}
		})
	}
}

// TestFileSourceMixedConsumption interleaves Next with FillBatch and
// checks no record is reordered or dropped.
func TestFileSourceMixedConsumption(t *testing.T) {
	ins := mkRandomTrace(t, 100, 23)
	path := filepath.Join(t.TempDir(), "mixed.zbpt")
	if err := os.WriteFile(path, encode(t, "mixed", ins), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got []Inst
	b := NewBatch(5)
	for i := 0; ; i++ {
		if i%2 == 0 {
			in, ok := src.Next()
			if !ok {
				break
			}
			got = append(got, in)
			continue
		}
		if src.FillBatch(&b) == 0 {
			break
		}
		got = append(got, b.Ins...)
	}
	if len(got) != len(ins) {
		t.Fatalf("%d records, want %d", len(got), len(ins))
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Fatalf("record %d reordered: %+v, want %+v", i, got[i], ins[i])
		}
	}
}

// TestBatchDecodeZeroAlloc pins the zero-allocation contract of the
// steady-state decode loop: once the decoder and batch exist, Next and
// FillBatch must not allocate (the same contract zbpcheck's hotalloc
// analyzer enforces syntactically).
func TestBatchDecodeZeroAlloc(t *testing.T) {
	ins := mkRandomTrace(t, 4096, 99)
	data := encode(t, "alloc", ins)
	br := bytes.NewReader(data)
	dec, err := NewBatchDecoder(br, 256)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(256)
	var loopErr error
	allocs := testing.AllocsPerRun(200, func() {
		switch err := dec.Next(&b); err {
		case nil:
		case io.EOF:
			if _, serr := br.Seek(dec.dataOff, io.SeekStart); serr != nil {
				loopErr = serr
				return
			}
			dec.Reset(br)
		default:
			loopErr = err
		}
	})
	if loopErr != nil {
		t.Fatal(loopErr)
	}
	if allocs != 0 {
		t.Errorf("BatchDecoder.Next allocates %.1f times per call in steady state, want 0", allocs)
	}

	src := NewSliceSource("alloc", ins)
	allocs = testing.AllocsPerRun(200, func() {
		if FillBatch(src, &b) == 0 {
			src.Reset()
		}
	})
	if allocs != 0 {
		t.Errorf("SliceSource.FillBatch allocates %.1f times per call in steady state, want 0", allocs)
	}
}

// FuzzBatchDecoder cross-checks the batch decoder against Read on
// arbitrary bytes and batch capacities: same salvage prefix, same
// diagnostic string, no panics, no io sentinels leaking.
func FuzzBatchDecoder(f *testing.F) {
	valid := fuzzSeedTrace(f)
	f.Add(valid, uint8(1))
	f.Add(valid, uint8(3))
	f.Add(valid[:len(valid)-1], uint8(2))
	f.Add(valid[:len(valid)-recordSize-5], uint8(4))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("ZBPT"), uint8(9))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, capByte uint8) {
		batchCap := int(capByte)%64 + 1
		wantName, want, wantErr := Read(bytes.NewReader(data))
		dec, err := NewBatchDecoder(bytes.NewReader(data), batchCap)
		if err != nil {
			if wantErr == nil {
				t.Fatalf("decoder rejected header Read accepted: %v", err)
			}
			if err.Error() != wantErr.Error() {
				t.Fatalf("header diagnostics differ:\n  decoder: %v\n  read:    %v", err, wantErr)
			}
			return
		}
		if dec.Name() != wantName {
			t.Fatalf("name %q, want %q", dec.Name(), wantName)
		}
		got, gotErr := drainDecoder(dec, batchCap)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("decoder err %v, Read err %v", gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("diagnostics differ:\n  decoder: %v\n  read:    %v", gotErr, wantErr)
			}
			if !errors.Is(gotErr, ErrBadTrace) {
				t.Fatalf("error not classified as ErrBadTrace: %v", gotErr)
			}
			if errors.Is(gotErr, io.ErrUnexpectedEOF) || errors.Is(gotErr, io.EOF) {
				t.Fatalf("raw io sentinel leaked: %v", gotErr)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("salvaged %d records, Read salvaged %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}
