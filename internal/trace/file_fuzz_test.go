package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeedTrace builds a small valid ZBPT stream for seeding the corpus
// and the truncation tests.
func fuzzSeedTrace(tb testing.TB) []byte {
	tb.Helper()
	ins := []Inst{
		{Addr: 0x1000, Length: 4, Kind: NotBranch},
		{Addr: 0x1004, Length: 2, Kind: CondDirect, Taken: true, Target: 0x2000},
		{Addr: 0x2000, Length: 6, Kind: Call, Taken: true, Target: 0x3000},
		{Addr: 0x3000, Length: 4, Kind: Return, Taken: true, Target: 0x2006},
	}
	var buf bytes.Buffer
	if _, err := WriteSlice(&buf, "fuzz-seed", ins); err != nil {
		tb.Fatalf("writing seed trace: %v", err)
	}
	return buf.Bytes()
}

// FuzzRead throws arbitrary bytes at the trace reader. Whatever the
// input, Read must not panic, must classify every failure under
// ErrBadTrace, must never leak a bare io error, and must hand back a
// round-trippable result on success.
func FuzzRead(f *testing.F) {
	valid := fuzzSeedTrace(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("ZBPT"))
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)-recordSize-5])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, ins, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("error not classified as ErrBadTrace: %v", err)
			}
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				t.Fatalf("raw io sentinel leaked to callers: %v", err)
			}
			return
		}
		// Success must round-trip: re-encoding the result and re-reading
		// it yields the same records.
		var buf bytes.Buffer
		if _, werr := WriteSlice(&buf, name, ins); werr != nil {
			t.Fatalf("re-encoding accepted trace: %v", werr)
		}
		name2, ins2, rerr := Read(&buf)
		if rerr != nil || name2 != name || len(ins2) != len(ins) {
			t.Fatalf("round trip mismatch: err=%v name %q/%q records %d/%d",
				rerr, name, name2, len(ins), len(ins2))
		}
		for i := range ins {
			if ins[i] != ins2[i] {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, ins[i], ins2[i])
			}
		}
	})
}
