package trace

import (
	"testing"

	"bulkpreload/internal/zaddr"
)

func seqSource(name string, base zaddr.Addr, n int) *SliceSource {
	ins := make([]Inst, n)
	for i := range ins {
		ins[i] = Inst{Addr: base + zaddr.Addr(4*i), Length: 4, Kind: NotBranch}
	}
	return NewSliceSource(name, ins)
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := seqSource("a", 0x1000, 6)
	b := seqSource("b", 0x9000, 6)
	is := NewInterleaveSource(2, a, b)
	if is.Name() != "mix(a+b)" {
		t.Errorf("name = %q", is.Name())
	}
	var owners []byte
	for {
		in, ok := is.Next()
		if !ok {
			break
		}
		if in.Addr >= 0x9000 {
			owners = append(owners, 'b')
		} else {
			owners = append(owners, 'a')
		}
	}
	want := "aabbaabbaabb"
	if string(owners) != want {
		t.Errorf("interleave order %q, want %q", owners, want)
	}
}

func TestInterleaveUnequalLengths(t *testing.T) {
	a := seqSource("a", 0x1000, 3)
	b := seqSource("b", 0x9000, 9)
	is := NewInterleaveSource(2, a, b)
	n := 0
	for {
		if _, ok := is.Next(); !ok {
			break
		}
		n++
	}
	if n != 12 {
		t.Errorf("total = %d, want 12 (no instruction lost)", n)
	}
}

func TestInterleaveResetDeterministic(t *testing.T) {
	mk := func() *InterleaveSource {
		return NewInterleaveSource(3, seqSource("a", 0x1000, 10), seqSource("b", 0x9000, 7))
	}
	is := mk()
	first := Collect(is)
	second := Collect(is) // Collect resets
	if len(first) != len(second) || len(first) != 17 {
		t.Fatalf("lengths %d/%d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs after Reset", i)
		}
	}
}

func TestInterleavePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewInterleaveSource(0, seqSource("a", 0, 1)) },
		func() { NewInterleaveSource(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInterleaveSingleSource(t *testing.T) {
	is := NewInterleaveSource(4, seqSource("solo", 0x1000, 10))
	if got := len(Collect(is)); got != 10 {
		t.Errorf("solo interleave lost instructions: %d", got)
	}
}
