package predictor

import (
	"fmt"
	"testing"

	"bulkpreload/internal/zaddr"
)

func TestTicksConversion(t *testing.T) {
	if Cycles(3) != 36 {
		t.Errorf("Cycles(3) = %d", Cycles(3))
	}
	if Cycles(3).ToCycles() != 3 {
		t.Errorf("ToCycles = %d", Cycles(3).ToCycles())
	}
	if Ticks(-5).ToCycles() != 0 {
		t.Error("negative ticks should clamp to 0 cycles")
	}
	if Cycles(1).Float() != 1.0 {
		t.Error("Float conversion wrong")
	}
	if Ticks(6).Float() != 0.5 {
		t.Error("half-cycle Float wrong")
	}
}

func TestDefaultThroughputMatchesTable1(t *testing.T) {
	tp := DefaultThroughput
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// "as fast as one prediction every cycle ... a loop consisting of a
	// single taken branch"
	if tp.Cost(CaseTakenLoop) != Cycles(1) {
		t.Error("taken-loop cost != 1 cycle")
	}
	// "branch predictions are possible every other cycle with the
	// assistance of a ... (FIT)"
	if tp.Cost(CaseTakenFIT) != Cycles(2) {
		t.Error("FIT cost != 2 cycles")
	}
	// "one taken branch every 3 cycles when ... MRU ... column"
	if tp.Cost(CaseTakenMRU) != Cycles(3) {
		t.Error("MRU cost != 3 cycles")
	}
	// "Otherwise ... one taken branch every 4 cycles"
	if tp.Cost(CaseTakenOther) != Cycles(4) {
		t.Error("other-taken cost != 4 cycles")
	}
	// "Not-taken predictions ... 2 predictions every 5 cycles"
	if tp.Cost(CaseNotTakenPaired)*2 != Cycles(5) {
		t.Error("paired not-taken cost != 2.5 cycles")
	}
	// "one not-taken prediction ... every 4 cycles"
	if tp.Cost(CaseNotTaken) != Cycles(4) {
		t.Error("lone not-taken cost != 4 cycles")
	}
	// "the average search rate is 16 bytes per cycle" => 2 cycles/row.
	if tp.SeqSearchPerRow != Cycles(2) {
		t.Error("sequential row cost != 2 cycles")
	}
}

func TestThroughputValidate(t *testing.T) {
	bad := DefaultThroughput
	bad.TakenMRU = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero cost")
	}
}

func TestClassifyTaken(t *testing.T) {
	cases := []struct {
		loop, fit, mru bool
		want           PredCase
	}{
		{true, true, true, CaseTakenLoop},
		{false, true, true, CaseTakenFIT},
		{false, false, true, CaseTakenMRU},
		{false, false, false, CaseTakenOther},
	}
	for _, c := range cases {
		if got := ClassifyTaken(c.loop, c.fit, c.mru); got != c.want {
			t.Errorf("ClassifyTaken(%v,%v,%v) = %v, want %v", c.loop, c.fit, c.mru, got, c.want)
		}
	}
	if ClassifyNotTaken(true) != CaseNotTakenPaired || ClassifyNotTaken(false) != CaseNotTaken {
		t.Error("ClassifyNotTaken wrong")
	}
}

func TestPredCaseString(t *testing.T) {
	for c := CaseTakenLoop; c <= CaseNotTaken; c++ {
		if c.String() == "" {
			t.Errorf("empty string for case %d", c)
		}
	}
	if PredCase(77).String() != "PredCase(77)" {
		t.Error("unknown case string")
	}
}

func TestCostPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cost accepted invalid case")
		}
	}()
	DefaultThroughput.Cost(PredCase(99))
}

func TestSeqSearchCost(t *testing.T) {
	tp := DefaultThroughput
	// 0 or negative bytes: free.
	if tp.SeqSearchCost(0x100, 0) != 0 {
		t.Error("zero-byte search should cost nothing")
	}
	// A search within one row costs one row.
	if got := tp.SeqSearchCost(0x100, 16); got != Cycles(2) {
		t.Errorf("one-row search = %v ticks", got)
	}
	// Crossing a row boundary costs two rows: 0x110..0x12F spans rows
	// 0x100 and 0x120.
	if got := tp.SeqSearchCost(0x110, 32); got != Cycles(4) {
		t.Errorf("two-row search = %v ticks", got)
	}
	// 128 bytes row-aligned = 4 rows = 8 cycles (16 B/cycle average).
	if got := tp.SeqSearchCost(0x200, 128); got != Cycles(8) {
		t.Errorf("128B search = %v ticks", got)
	}
}

func TestMissConfigValidate(t *testing.T) {
	if err := DefaultMissConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultMissConfig.SearchLimit != 4 {
		t.Error("paper setting is 4 searches")
	}
	if err := (MissConfig{SearchLimit: 0}).Validate(); err == nil {
		t.Error("accepted zero limit")
	}
}

func TestMissDetectorTable2Sequence(t *testing.T) {
	// Table 2 walks a 3-search limit: searches at 0x102, 0x120, 0x140 all
	// empty => miss reported at starting search address 0x102.
	d := NewMissDetector(MissConfig{SearchLimit: 3})
	if _, miss := d.ObserveSearch(0x102, false); miss {
		t.Fatal("miss after 1 search")
	}
	if _, miss := d.ObserveSearch(0x120, false); miss {
		t.Fatal("miss after 2 searches")
	}
	at, miss := d.ObserveSearch(0x140, false)
	if !miss || at != 0x102 {
		t.Fatalf("miss=%v at %#x, want miss at 0x102", miss, uint64(at))
	}
	if d.Reported() != 1 {
		t.Errorf("Reported = %d", d.Reported())
	}
}

func TestMissDetectorResetOnHit(t *testing.T) {
	d := NewMissDetector(MissConfig{SearchLimit: 3})
	d.ObserveSearch(0x100, false)
	d.ObserveSearch(0x120, false)
	d.ObserveSearch(0x140, true) // a prediction: window resets
	d.ObserveSearch(0x160, false)
	d.ObserveSearch(0x180, false)
	if _, miss := d.ObserveSearch(0x1A0, false); !miss {
		t.Fatal("expected miss on 3rd empty search of new window")
	}
	at, _ := func() (zaddr.Addr, bool) { return 0x160, true }()
	_ = at
}

func TestMissDetectorWindowAnchor(t *testing.T) {
	d := NewMissDetector(MissConfig{SearchLimit: 2})
	d.ObserveSearch(0x500, true)
	d.ObserveSearch(0x520, false)
	at, miss := d.ObserveSearch(0x540, false)
	if !miss || at != 0x520 {
		t.Fatalf("anchor = %#x, want first empty search 0x520", uint64(at))
	}
}

func TestMissDetectorContinuesAfterReport(t *testing.T) {
	// A long cold run should produce one miss per window.
	d := NewMissDetector(MissConfig{SearchLimit: 4})
	misses := 0
	for i := 0; i < 16; i++ {
		if _, m := d.ObserveSearch(zaddr.Addr(0x1000+i*32), false); m {
			misses++
		}
	}
	if misses != 4 {
		t.Errorf("16 empty searches with limit 4 reported %d misses, want 4", misses)
	}
}

func TestMissDetectorRestart(t *testing.T) {
	d := NewMissDetector(MissConfig{SearchLimit: 2})
	d.ObserveSearch(0x100, false)
	d.Restart() // e.g. a taken-branch redirect
	d.ObserveSearch(0x2000, false)
	at, miss := d.ObserveSearch(0x2020, false)
	if !miss || at != 0x2000 {
		t.Fatalf("after Restart anchor = %#x, want 0x2000", uint64(at))
	}
}

func TestNewMissDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted bad config")
		}
	}()
	NewMissDetector(MissConfig{})
}

func TestPipelineStages(t *testing.T) {
	stages := PipelineStages()
	if len(stages) != 7 {
		t.Fatalf("Table 1 describes 7 stages (b0..b6), got %d", len(stages))
	}
	for i, s := range stages {
		want := fmt.Sprintf("b%d", i)
		if s.Name != want {
			t.Errorf("stage %d named %q, want %q", i, s.Name, want)
		}
		if s.Search == "" {
			t.Errorf("%s: empty search role", s.Name)
		}
	}
	// The FIT re-index happens in b2; the non-FIT MRU assumption in b3 —
	// the one-cycle gap behind the 2- vs 3-cycle taken rates.
	if stages[2].ReindexPrediction == "" || stages[3].ReindexPrediction == "" {
		t.Error("b2/b3 re-index roles missing")
	}
	if MissDetectCycle != 3 {
		t.Errorf("miss detect cycle = %d, paper says b3", MissDetectCycle)
	}
	// The tracker's start delay (7) plus the detect cycle lands on b10,
	// "the fastest the BTB2 search can be started".
	if start := MissDetectCycle + 7; start != 10 {
		t.Errorf("b%d, want b10", start)
	}
}
