package predictor

// Stage describes one cycle of the first-level branch prediction search
// pipeline — the rows of the paper's Table 1. The pipeline is 7 stages
// deep (b0..b6); re-indexing for the next search can begin before the
// current one completes, which is where the variable throughput of
// Throughput comes from.
type Stage struct {
	Name string
	// Search is the stage's role in the search process.
	Search string
	// ReindexPrediction is the stage's role in re-indexing for a
	// predicted branch, when applicable.
	ReindexPrediction string
	// ReindexSequential notes when a sequential next search can issue
	// its own b0 in this cycle.
	ReindexSequential string
}

// PipelineStages returns the Table 1 stage descriptions verbatim from
// the paper. The timing model consumes the derived Throughput rates;
// this table is the authoritative reference they were derived from
// (cmd/experiments -only table1 prints it).
func PipelineStages() []Stage {
	return []Stage{
		{
			Name:              "b0",
			Search:            "index arrays with search address x",
			ReindexSequential: "",
		},
		{
			Name:              "b1",
			Search:            "access arrays",
			ReindexSequential: "b0 (x+1)",
		},
		{
			Name:              "b2",
			Search:            "start hit detection",
			ReindexPrediction: "if under FIT control, re-index (b0) with FIT-supplied index for expected branch prediction",
			ReindexSequential: "b0 (x+2)",
		},
		{
			Name:              "b3",
			Search:            "finish hit detection; select prediction information",
			ReindexPrediction: "if not under FIT control, re-index (b0) assuming taken prediction from MRU column",
		},
		{
			Name:              "b4",
			Search:            "broadcast prediction info for taken prediction from MRU column",
			ReindexPrediction: "if necessary, re-index (b0) for not-taken prediction or taken prediction not from MRU column",
		},
		{
			Name:              "b5",
			Search:            "broadcast prediction info for 1st not-taken prediction or taken prediction not from MRU column",
			ReindexPrediction: "if necessary, re-index (b0) for second not-taken prediction",
		},
		{
			Name:              "b6",
			Search:            "broadcast branch prediction info for 2nd not-taken prediction",
			ReindexSequential: "b0",
		},
	}
}

// MissDetectCycle is the pipeline stage at which a BTB1 miss is known
// ("the miss is detected in the b3 cycle of the search process"); the
// BTB2 search can start StartDelay cycles later (b10 at the earliest).
const MissDetectCycle = 3
