package predictor

import (
	"fmt"

	"bulkpreload/internal/zaddr"
)

// MissConfig parameterizes the speculative BTB1-miss definition of
// Section 3.4: report a miss after SearchLimit consecutive row searches
// (SearchLimit * 32 bytes) with no prediction found. The shipping design
// uses 4 searches / 128 bytes; Figure 6 sweeps this parameter.
type MissConfig struct {
	SearchLimit int
}

// DefaultMissConfig is the zEC12 setting ("the actual setting of 4
// searches, 128 bytes, used in the performance studies").
var DefaultMissConfig = MissConfig{SearchLimit: 4}

// Validate checks the configuration.
func (c MissConfig) Validate() error {
	if c.SearchLimit <= 0 {
		return fmt.Errorf("predictor: miss search limit %d must be positive", c.SearchLimit)
	}
	return nil
}

// MissDetector is the Table 2 state machine. The search process reports
// each row search and whether it produced any prediction; after
// SearchLimit consecutive empty searches the detector reports a BTB1 miss
// anchored at the starting search address of the empty window.
//
// The detector keeps counting after a report so that a long predictionless
// run reports one miss per window (each window covering SearchLimit rows
// of fresh address space), which lets cold-code runs trip multiple
// trackers across 4 KB blocks.
type MissDetector struct {
	cfg MissConfig

	windowStart zaddr.Addr // starting search address of the current window
	emptyCount  int
	haveWindow  bool

	reported int64
}

// NewMissDetector builds a detector; invalid config panics.
func NewMissDetector(cfg MissConfig) *MissDetector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &MissDetector{cfg: cfg}
}

// Config returns the detector's configuration.
func (d *MissDetector) Config() MissConfig { return d.cfg }

// Reported returns the number of misses reported so far.
func (d *MissDetector) Reported() int64 { return d.reported }

// Restart resets the window, e.g. after a pipeline restart or a
// predicted-taken redirect to a new search address.
func (d *MissDetector) Restart() {
	d.haveWindow = false
	d.emptyCount = 0
}

// ObserveSearch records one row search beginning at searchAddr. found
// reports whether the first level produced any prediction from that row.
// When the empty-search limit is reached, ObserveSearch returns the miss
// anchor address and true, and opens a fresh window.
func (d *MissDetector) ObserveSearch(searchAddr zaddr.Addr, found bool) (missAt zaddr.Addr, miss bool) {
	if found {
		d.Restart()
		return 0, false
	}
	if !d.haveWindow {
		d.haveWindow = true
		d.windowStart = searchAddr
		d.emptyCount = 0
	}
	d.emptyCount++
	if d.emptyCount < d.cfg.SearchLimit {
		return 0, false
	}
	anchor := d.windowStart
	d.haveWindow = false
	d.emptyCount = 0
	d.reported++
	return anchor, true
}
