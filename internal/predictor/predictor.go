// Package predictor models the timing behaviour of the first-level
// asynchronous-lookahead search pipeline: the variable prediction
// throughput of Table 1 and the speculative BTB1-miss detection of
// Table 2 / Section 3.4.
//
// The pipeline searches the BTB1 and BTBP asynchronously from (and
// usually ahead of) instruction fetch. Costs are expressed in ticks — a
// fixed-point cycle unit (TicksPerCycle per cycle) — so that fractional
// rates like "2 not-taken predictions every 5 cycles" and "16 bytes per
// cycle average sequential search" stay exact in integer arithmetic.
package predictor

import (
	"fmt"

	"bulkpreload/internal/zaddr"
)

// TicksPerCycle is the fixed-point scale: 12 ticks = 1 cycle. 12 is
// divisible by 2, 3 and 4, covering every fractional rate in the model.
const TicksPerCycle = 12

// Ticks is a fixed-point cycle count.
type Ticks int64

// Cycles converts whole cycles to ticks.
func Cycles(c int) Ticks { return Ticks(c) * TicksPerCycle }

// ToCycles converts ticks to (truncated) whole cycles.
func (t Ticks) ToCycles() uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t / TicksPerCycle)
}

// Float returns ticks as fractional cycles (for reporting).
func (t Ticks) Float() float64 { return float64(t) / TicksPerCycle }

// Throughput holds the Table 1 prediction-rate parameters in cycles.
// The defaults mirror the paper exactly.
type Throughput struct {
	// TakenLoop: "a loop consisting of a single taken branch" predicts
	// every cycle.
	TakenLoop Ticks
	// TakenFIT: under FIT control, predictions every other cycle.
	TakenFIT Ticks
	// TakenMRU: taken predictions from the MRU BTB1 column, one every 3
	// cycles.
	TakenMRU Ticks
	// TakenOther: any other taken prediction, one every 4 cycles.
	TakenOther Ticks
	// NotTakenPaired: when a searched row supplies 2 simultaneous
	// not-taken predictions, the rate is 2 per 5 cycles.
	NotTakenPaired Ticks
	// NotTaken: otherwise one not-taken prediction every 4 cycles.
	NotTaken Ticks
	// SeqSearchPerRow: with no predictions found, the pipeline averages
	// 16 bytes per cycle (3 cycles at 32 B/cycle then 3 re-index cycles),
	// i.e. 2 cycles per 32-byte row.
	SeqSearchPerRow Ticks
}

// DefaultThroughput is the zEC12 Table 1 rate set.
var DefaultThroughput = Throughput{
	TakenLoop:       Cycles(1),
	TakenFIT:        Cycles(2),
	TakenMRU:        Cycles(3),
	TakenOther:      Cycles(4),
	NotTakenPaired:  5 * TicksPerCycle / 2, // 2.5 cycles each
	NotTaken:        Cycles(4),
	SeqSearchPerRow: Cycles(2), // 32 bytes at 16 B/cycle average
}

// Validate checks rate sanity.
func (tp Throughput) Validate() error {
	if tp.TakenLoop <= 0 || tp.TakenFIT <= 0 || tp.TakenMRU <= 0 || tp.TakenOther <= 0 ||
		tp.NotTakenPaired <= 0 || tp.NotTaken <= 0 || tp.SeqSearchPerRow <= 0 {
		return fmt.Errorf("predictor: all throughput ticks must be positive: %+v", tp)
	}
	return nil
}

// PredCase classifies a prediction event for cost purposes.
type PredCase uint8

// Prediction cost cases, in decreasing speed order.
const (
	CaseTakenLoop      PredCase = iota // single taken branch looping to itself
	CaseTakenFIT                       // taken, FIT-accelerated re-index
	CaseTakenMRU                       // taken, hit in the MRU column
	CaseTakenOther                     // taken, any other column
	CaseNotTakenPaired                 // not-taken, paired in one row read
	CaseNotTaken                       // not-taken, alone
)

// String implements fmt.Stringer.
func (c PredCase) String() string {
	switch c {
	case CaseTakenLoop:
		return "taken-loop"
	case CaseTakenFIT:
		return "taken-fit"
	case CaseTakenMRU:
		return "taken-mru"
	case CaseTakenOther:
		return "taken-other"
	case CaseNotTakenPaired:
		return "not-taken-paired"
	case CaseNotTaken:
		return "not-taken"
	default:
		return fmt.Sprintf("PredCase(%d)", uint8(c))
	}
}

// Cost returns the tick cost of a prediction case.
func (tp Throughput) Cost(c PredCase) Ticks {
	switch c {
	case CaseTakenLoop:
		return tp.TakenLoop
	case CaseTakenFIT:
		return tp.TakenFIT
	case CaseTakenMRU:
		return tp.TakenMRU
	case CaseTakenOther:
		return tp.TakenOther
	case CaseNotTakenPaired:
		return tp.NotTakenPaired
	case CaseNotTaken:
		return tp.NotTaken
	default:
		panic(fmt.Sprintf("predictor: unknown case %d", c))
	}
}

// ClassifyTaken picks the cost case for a predicted-taken branch.
//
//	loop   — the branch is the same single branch predicted last time and
//	         jumps back to its own line (tightest loop);
//	fitHit — the FIT supplied the correct re-index;
//	mru    — the hit came from the MRU BTB1 column.
func ClassifyTaken(loop, fitHit, mru bool) PredCase {
	switch {
	case loop:
		return CaseTakenLoop
	case fitHit:
		return CaseTakenFIT
	case mru:
		return CaseTakenMRU
	default:
		return CaseTakenOther
	}
}

// ClassifyNotTaken picks the cost case for a predicted-not-taken branch.
// paired is true when the same row read supplied two not-taken
// predictions (the second of the pair rides along).
func ClassifyNotTaken(paired bool) PredCase {
	if paired {
		return CaseNotTakenPaired
	}
	return CaseNotTaken
}

// SeqSearchCost returns the tick cost of sequentially searching from
// addr over n bytes without finding a prediction.
func (tp Throughput) SeqSearchCost(from zaddr.Addr, bytes int) Ticks {
	if bytes <= 0 {
		return 0
	}
	first := zaddr.RowBase(from)
	last := zaddr.RowBase(from + zaddr.Addr(bytes-1))
	rows := int((last-first)/zaddr.RowBytes) + 1
	return Ticks(rows) * tp.SeqSearchPerRow
}
