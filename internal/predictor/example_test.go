package predictor_test

import (
	"fmt"

	"bulkpreload/internal/predictor"
	"bulkpreload/internal/zaddr"
)

// ExampleMissDetector walks the paper's Table 2 sequence: with a
// 3-search limit, three consecutive empty searches report a BTB1 miss
// anchored at the starting search address.
func ExampleMissDetector() {
	d := predictor.NewMissDetector(predictor.MissConfig{SearchLimit: 3})
	for _, addr := range []uint64{0x102, 0x120, 0x140} {
		if at, miss := d.ObserveSearch(zaddr.Addr(addr), false); miss {
			fmt.Printf("BTB1 miss reported at %#x\n", uint64(at))
		}
	}
	// Output:
	// BTB1 miss reported at 0x102
}

// ExampleThroughput_Cost prints the Table 1 prediction rates.
func ExampleThroughput_Cost() {
	tp := predictor.DefaultThroughput
	for _, c := range []predictor.PredCase{
		predictor.CaseTakenLoop, predictor.CaseTakenFIT,
		predictor.CaseTakenMRU, predictor.CaseTakenOther,
	} {
		fmt.Printf("%s: %v cycles\n", c, tp.Cost(c).Float())
	}
	// Output:
	// taken-loop: 1 cycles
	// taken-fit: 2 cycles
	// taken-mru: 3 cycles
	// taken-other: 4 cycles
}
