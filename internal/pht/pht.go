// Package pht implements the tagged Pattern History Table of the zEC12
// first-level branch predictor: 4,096 entries indexed by the direction of
// the 12 previous predicted branches and the addresses of the 6 previous
// taken branches, tagged with branch instruction address bits. It
// overrides the per-entry bimodal direction for branches the BTB marks
// UsePHT (branches exhibiting multiple directions) — the same family as
// the tagged ppm-like predictors of Michaud.
package pht

import (
	"fmt"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/history"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 PHT size.
const DefaultEntries = 4096

// tagBits is the number of branch-address bits stored as tag per entry.
const tagBits = 10

// entry is one tagged direction record.
type entry struct {
	valid bool
	tag   uint16
	dir   bht.Bimodal
}

// Stats is a point-in-time view of the PHT counters; the canonical
// storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Lookups  int64
	Hits     int64 // tag matches
	Installs int64
	Updates  int64
}

// metrics is the PHT's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	hits     obs.Counter
	installs obs.Counter
	updates  obs.Counter
}

// Table is the pattern history table.
type Table struct {
	entries []entry
	inj     *fault.Injector // soft-error injection on Lookup; nil = off
	met     metrics
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (t *Table) SetInjector(j *fault.Injector) { t.inj = j }

// Injector returns the attached injector (nil when faults are off).
func (t *Table) Injector() *fault.Injector { return t.inj }

// New builds a PHT with the given entry count (power of two).
func New(entries int) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("pht: entries must be a positive power of two")
	}
	return &Table{entries: make([]entry, entries)}
}

// Entries returns the table size.
func (t *Table) Entries() int { return len(t.entries) }

// Stats returns a view of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		Hits:     t.met.hits.Value(),
		Installs: t.met.installs.Value(),
		Updates:  t.met.updates.Value(),
	}
}

// RegisterMetrics enumerates the PHT counters (plus a computed occupancy
// gauge) into r under the given prefix, e.g. "pht_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "lookups", "pattern-history direction lookups", &t.met.lookups)
	r.Counter(prefix+"hits_total", "lookups", "lookups with a valid tag match", &t.met.hits)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.Counter(prefix+"updates_total", "entries", "in-place direction retrains", &t.met.updates)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// CountValid returns the number of valid entries.
func (t *Table) CountValid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

//zbp:hotpath
func tagOf(a zaddr.Addr) uint16 {
	return uint16(zaddr.Halfword(a) & ((1 << tagBits) - 1))
}

// Lookup returns the PHT's direction for the branch at addr under the
// given path history. ok is false on a tag mismatch or invalid entry, in
// which case the caller falls back to the BTB's bimodal direction.
//
//zbp:hotpath
func (t *Table) Lookup(h *history.History, addr zaddr.Addr) (taken bool, ok bool) {
	t.met.lookups.Inc()
	e := &t.entries[h.PHTIndex(addr, len(t.entries))]
	if t.inj != nil && e.valid {
		t.faultCheck(e)
	}
	if !e.valid || e.tag != tagOf(addr) {
		return false, false
	}
	t.met.hits.Inc()
	return e.dir.Taken(), true
}

// faultCheck strikes the entry being read, if this read is the one the
// injector's schedule lands on. The flip domain is the stored payload:
// 10 tag bits and the 2-bit direction counter. Parity recovers by
// invalidation; unprotected flips persist (a flipped tag silently
// redirects the entry to an aliasing branch).
//
//zbp:hotpath
func (t *Table) faultCheck(e *entry) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	if t.inj.Parity() {
		*e = entry{}
		t.inj.NoteRecovered()
		return
	}
	if b := bits % (tagBits + 2); b < tagBits {
		e.tag ^= 1 << b
	} else {
		e.dir ^= 1 << (b - tagBits)
	}
	t.inj.NoteSilent()
}

// Update trains the entry for the branch at addr with a resolved
// direction. On tag mismatch the entry is stolen (retagged and
// re-initialized) — small tagged predictors reallocate on miss.
//
//zbp:hotpath
func (t *Table) Update(h *history.History, addr zaddr.Addr, taken bool) {
	e := &t.entries[h.PHTIndex(addr, len(t.entries))]
	tag := tagOf(addr)
	if e.valid && e.tag == tag {
		e.dir = e.dir.Update(taken)
		t.met.updates.Inc()
		return
	}
	*e = entry{valid: true, tag: tag, dir: bht.Init(taken)}
	t.met.installs.Inc()
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.met = metrics{}
}

// EntryState is the serializable mirror of one PHT entry.
type EntryState struct {
	Valid bool
	Tag   uint16
	Dir   bht.Bimodal
}

// State is a serializable copy of the table's architectural contents.
type State struct{ Entries []EntryState }

// State returns a deep copy of the table's architectural state.
func (t *Table) State() State {
	s := State{Entries: make([]EntryState, len(t.entries))}
	for i, e := range t.entries {
		s.Entries[i] = EntryState{Valid: e.valid, Tag: e.tag, Dir: e.dir}
	}
	return s
}

// RestoreState overwrites the table's contents with s, which must come
// from a table of identical size.
func (t *Table) RestoreState(s State) error {
	if len(s.Entries) != len(t.entries) {
		return fmt.Errorf("pht: state has %d entries, table has %d", len(s.Entries), len(t.entries))
	}
	for i, e := range s.Entries {
		t.entries[i] = entry{valid: e.Valid, tag: e.Tag, dir: e.Dir}
	}
	return nil
}
