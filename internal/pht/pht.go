// Package pht implements the tagged Pattern History Table of the zEC12
// first-level branch predictor: 4,096 entries indexed by the direction of
// the 12 previous predicted branches and the addresses of the 6 previous
// taken branches, tagged with branch instruction address bits. It
// overrides the per-entry bimodal direction for branches the BTB marks
// UsePHT (branches exhibiting multiple directions) — the same family as
// the tagged ppm-like predictors of Michaud.
package pht

import (
	"bulkpreload/internal/bht"
	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 PHT size.
const DefaultEntries = 4096

// tagBits is the number of branch-address bits stored as tag per entry.
const tagBits = 10

// entry is one tagged direction record.
type entry struct {
	valid bool
	tag   uint16
	dir   bht.Bimodal
}

// Stats counts PHT activity.
type Stats struct {
	Lookups  int64
	Hits     int64 // tag matches
	Installs int64
	Updates  int64
}

// Table is the pattern history table.
type Table struct {
	entries []entry
	stats   Stats
}

// New builds a PHT with the given entry count (power of two).
func New(entries int) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("pht: entries must be a positive power of two")
	}
	return &Table{entries: make([]entry, entries)}
}

// Entries returns the table size.
func (t *Table) Entries() int { return len(t.entries) }

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

func tagOf(a zaddr.Addr) uint16 {
	return uint16((uint64(a) >> 1) & ((1 << tagBits) - 1))
}

// Lookup returns the PHT's direction for the branch at addr under the
// given path history. ok is false on a tag mismatch or invalid entry, in
// which case the caller falls back to the BTB's bimodal direction.
func (t *Table) Lookup(h *history.History, addr zaddr.Addr) (taken bool, ok bool) {
	t.stats.Lookups++
	e := &t.entries[h.PHTIndex(addr, len(t.entries))]
	if !e.valid || e.tag != tagOf(addr) {
		return false, false
	}
	t.stats.Hits++
	return e.dir.Taken(), true
}

// Update trains the entry for the branch at addr with a resolved
// direction. On tag mismatch the entry is stolen (retagged and
// re-initialized) — small tagged predictors reallocate on miss.
func (t *Table) Update(h *history.History, addr zaddr.Addr, taken bool) {
	e := &t.entries[h.PHTIndex(addr, len(t.entries))]
	tag := tagOf(addr)
	if e.valid && e.tag == tag {
		e.dir = e.dir.Update(taken)
		t.stats.Updates++
		return
	}
	*e = entry{valid: true, tag: tag, dir: bht.Init(taken)}
	t.stats.Installs++
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.stats = Stats{}
}
