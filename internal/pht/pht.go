// Package pht implements the tagged Pattern History Table of the zEC12
// first-level branch predictor: 4,096 entries indexed by the direction of
// the 12 previous predicted branches and the addresses of the 6 previous
// taken branches, tagged with branch instruction address bits. It
// overrides the per-entry bimodal direction for branches the BTB marks
// UsePHT (branches exhibiting multiple directions) — the same family as
// the tagged ppm-like predictors of Michaud.
//
// The default storage packs each entry into a 13-bit field
// (valid | 10-bit tag | 2-bit direction) stored 16 bits wide, four per
// uint64 word; the original entry-struct slice survives behind the
// structLayout flag of NewLayout as the equivalence oracle.
package pht

import (
	"fmt"

	"bulkpreload/internal/bht"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/history"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 PHT size.
const DefaultEntries = 4096

// tagBits is the number of branch-address bits stored as tag per entry.
const tagBits = 10

// Packed 16-bit field layout (four fields per uint64 word): bit 0 is
// valid, bits 1..10 the tag, bits 11..12 the 2-bit direction counter.
// Both levels are proven by packlayout: the 16-bit field's contents,
// and the four-fields-per-word striding of the uint64 lane.
//
//zbp:layout field word:fieldBits valid:fieldValidBit tag:fieldTagShift..fieldTagShift+tagBits-1 dir:fieldDirShift..fieldDirShift+1
//zbp:layout slots word:64 entry[4]:0..fieldBits-1
const (
	fieldValidBit = 0
	fieldTagShift = 1
	fieldDirShift = fieldTagShift + tagBits
	fieldBits     = 16
)

// entry is one tagged direction record (struct-layout storage).
type entry struct {
	valid bool
	tag   uint16
	dir   bht.Bimodal
}

// Stats is a point-in-time view of the PHT counters; the canonical
// storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Lookups  int64
	Hits     int64 // tag matches
	Installs int64
	Updates  int64
}

// metrics is the PHT's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	hits     obs.Counter
	installs obs.Counter
	updates  obs.Counter
}

// Table is the pattern history table.
type Table struct {
	n     int      // entry count
	words []uint64 // packed fields, four entries per word (default layout)
	ref   []entry  // struct-layout storage; nil when packed
	inj   *fault.Injector // soft-error injection on Lookup; nil = off
	met   metrics
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (t *Table) SetInjector(j *fault.Injector) { t.inj = j }

// Injector returns the attached injector (nil when faults are off).
func (t *Table) Injector() *fault.Injector { return t.inj }

// New builds a PHT with the given entry count (power of two), using the
// packed layout.
func New(entries int) *Table { return NewLayout(entries, false) }

// NewLayout builds a PHT choosing the storage backend: packed 16-bit
// fields (the default) or the retained entry-struct oracle layout. The
// two are observationally equivalent; see the layout equivalence tests.
func NewLayout(entries int, structLayout bool) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("pht: entries must be a positive power of two")
	}
	if structLayout {
		return &Table{n: entries, ref: make([]entry, entries)}
	}
	return &Table{n: entries, words: make([]uint64, (entries+3)/4)}
}

// Entries returns the table size.
func (t *Table) Entries() int { return t.n }

// field returns entry i's packed 16-bit field.
//
//zbp:hotpath
//zbp:layout slots unpack
func (t *Table) field(i int) uint64 {
	return t.words[i>>2] >> (uint(i&3) * fieldBits) & 0xFFFF
}

// setField overwrites entry i's packed field with v, masked to the
// entry width so a wide value can never smear into the neighboring
// entries.
//
//zbp:hotpath
//zbp:layout slots pack
func (t *Table) setField(i int, v uint64) {
	sh := uint(i&3) * fieldBits
	t.words[i>>2] = t.words[i>>2]&^(uint64(0xFFFF)<<sh) | (v&0xFFFF)<<sh
}

// packField builds the packed field for a valid entry.
//
//zbp:hotpath
//zbp:layout field pack
func packField(tag uint16, dir bht.Bimodal) uint64 {
	return 1<<fieldValidBit |
		uint64(tag&((1<<tagBits)-1))<<fieldTagShift |
		uint64(dir&3)<<fieldDirShift
}

// Stats returns a view of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		Hits:     t.met.hits.Value(),
		Installs: t.met.installs.Value(),
		Updates:  t.met.updates.Value(),
	}
}

// RegisterMetrics enumerates the PHT counters (plus a computed occupancy
// gauge) into r under the given prefix, e.g. "pht_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "lookups", "pattern-history direction lookups", &t.met.lookups)
	r.Counter(prefix+"hits_total", "lookups", "lookups with a valid tag match", &t.met.hits)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.Counter(prefix+"updates_total", "entries", "in-place direction retrains", &t.met.updates)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// CountValid returns the number of valid entries.
func (t *Table) CountValid() int {
	n := 0
	if t.ref != nil {
		for i := range t.ref {
			if t.ref[i].valid {
				n++
			}
		}
		return n
	}
	for i := 0; i < t.n; i++ {
		if t.field(i)&(1<<fieldValidBit) != 0 {
			n++
		}
	}
	return n
}

//zbp:hotpath
func tagOf(a zaddr.Addr) uint16 {
	return uint16(zaddr.Halfword(a) & ((1 << tagBits) - 1))
}

// Lookup returns the PHT's direction for the branch at addr under the
// given path history. ok is false on a tag mismatch or invalid entry, in
// which case the caller falls back to the BTB's bimodal direction.
//
//zbp:hotpath
//zbp:layout field uses
func (t *Table) Lookup(h *history.History, addr zaddr.Addr) (taken bool, ok bool) {
	t.met.lookups.Inc()
	i := h.PHTIndex(addr, t.n)
	if t.ref != nil {
		e := &t.ref[i]
		if t.inj != nil && e.valid {
			t.refFaultCheck(e)
		}
		if !e.valid || e.tag != tagOf(addr) {
			return false, false
		}
		t.met.hits.Inc()
		return e.dir.Taken(), true
	}
	f := t.field(i)
	if t.inj != nil && f&(1<<fieldValidBit) != 0 {
		t.faultCheck(i)
		f = t.field(i)
	}
	if f&(1<<fieldValidBit) == 0 || uint16(f>>fieldTagShift)&((1<<tagBits)-1) != tagOf(addr) {
		return false, false
	}
	t.met.hits.Inc()
	return bht.Bimodal(f >> fieldDirShift & 3).Taken(), true
}

// faultCheck strikes the entry being read, if this read is the one the
// injector's schedule lands on. The flip domain is the stored payload:
// 10 tag bits and the 2-bit direction counter — identical positions in
// both layouts, so identical seeds corrupt identically. Parity recovers
// by invalidation; unprotected flips persist (a flipped tag silently
// redirects the entry to an aliasing branch). Packed layout.
//
//zbp:hotpath
func (t *Table) faultCheck(i int) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	if t.inj.Parity() {
		t.setField(i, 0)
		t.inj.NoteRecovered()
		return
	}
	if b := bits % (tagBits + 2); b < tagBits {
		t.setField(i, t.field(i)^1<<(fieldTagShift+b))
	} else {
		t.setField(i, t.field(i)^1<<(fieldDirShift+(b-tagBits)))
	}
	t.inj.NoteSilent()
}

// refFaultCheck is faultCheck for the struct layout.
//
//zbp:hotpath
func (t *Table) refFaultCheck(e *entry) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	if t.inj.Parity() {
		*e = entry{}
		t.inj.NoteRecovered()
		return
	}
	if b := bits % (tagBits + 2); b < tagBits {
		e.tag ^= 1 << b
	} else {
		e.dir ^= 1 << (b - tagBits)
	}
	t.inj.NoteSilent()
}

// Update trains the entry for the branch at addr with a resolved
// direction. On tag mismatch the entry is stolen (retagged and
// re-initialized) — small tagged predictors reallocate on miss.
//
//zbp:hotpath
//zbp:layout field uses
func (t *Table) Update(h *history.History, addr zaddr.Addr, taken bool) {
	i := h.PHTIndex(addr, t.n)
	tag := tagOf(addr)
	if t.ref != nil {
		e := &t.ref[i]
		if e.valid && e.tag == tag {
			e.dir = e.dir.Update(taken)
			t.met.updates.Inc()
			return
		}
		*e = entry{valid: true, tag: tag, dir: bht.Init(taken)}
		t.met.installs.Inc()
		return
	}
	f := t.field(i)
	if f&(1<<fieldValidBit) != 0 && uint16(f>>fieldTagShift)&((1<<tagBits)-1) == tag {
		dir := bht.Bimodal(f >> fieldDirShift & 3).Update(taken)
		t.setField(i, packField(tag, dir))
		t.met.updates.Inc()
		return
	}
	t.setField(i, packField(tag, bht.Init(taken)))
	t.met.installs.Inc()
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	if t.ref != nil {
		for i := range t.ref {
			t.ref[i] = entry{}
		}
	} else {
		for i := range t.words {
			t.words[i] = 0
		}
	}
	t.met = metrics{}
}

// EntryState is the serializable mirror of one PHT entry.
type EntryState struct {
	Valid bool
	Tag   uint16
	Dir   bht.Bimodal
}

// State is a serializable copy of the table's architectural contents.
// The format is layout-independent (see btb.State).
type State struct{ Entries []EntryState }

// State returns a deep copy of the table's architectural state.
//
//zbp:layout field unpack
func (t *Table) State() State {
	s := State{Entries: make([]EntryState, t.n)}
	if t.ref != nil {
		for i, e := range t.ref {
			s.Entries[i] = EntryState{Valid: e.valid, Tag: e.tag, Dir: e.dir}
		}
		return s
	}
	for i := 0; i < t.n; i++ {
		f := t.field(i)
		if f&(1<<fieldValidBit) == 0 {
			continue // zero EntryState, like a cleared struct entry
		}
		s.Entries[i] = EntryState{
			Valid: true,
			Tag:   uint16(f>>fieldTagShift) & ((1 << tagBits) - 1),
			Dir:   bht.Bimodal(f >> fieldDirShift & 3),
		}
	}
	return s
}

// RestoreState overwrites the table's contents with s, which must come
// from a table of identical size.
func (t *Table) RestoreState(s State) error {
	if len(s.Entries) != t.n {
		return fmt.Errorf("pht: state has %d entries, table has %d", len(s.Entries), t.n)
	}
	for i, e := range s.Entries {
		if t.ref != nil {
			t.ref[i] = entry{valid: e.Valid, tag: e.Tag, dir: e.Dir}
		} else if e.Valid {
			t.setField(i, packField(e.Tag, e.Dir))
		} else {
			t.setField(i, 0)
		}
	}
	return nil
}
