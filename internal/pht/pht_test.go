package pht

import (
	"testing"

	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

func TestNewValidation(t *testing.T) {
	if New(DefaultEntries).Entries() != 4096 {
		t.Error("DefaultEntries != 4096")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(1000) did not panic")
		}
	}()
	New(1000)
}

func TestMissThenTrainThenHit(t *testing.T) {
	p := New(256)
	var h history.History
	h.RecordPrediction(0x100, true)
	addr := zaddr.Addr(0x2000)
	if _, ok := p.Lookup(&h, addr); ok {
		t.Fatal("empty PHT hit")
	}
	p.Update(&h, addr, true)
	taken, ok := p.Lookup(&h, addr)
	if !ok || !taken {
		t.Fatalf("after training taken: ok=%v taken=%v", ok, taken)
	}
	st := p.Stats()
	if st.Installs != 1 || st.Hits != 1 || st.Lookups != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPatternLearning(t *testing.T) {
	// A branch alternating with its path: taken after path A, not-taken
	// after path B. The PHT must learn both, which the bimodal cannot.
	p := New(1024)
	pathA := func() *history.History {
		var h history.History
		h.RecordPrediction(0x1000, true)
		return &h
	}
	pathB := func() *history.History {
		var h history.History
		h.RecordPrediction(0x8000, true)
		return &h
	}
	branch := zaddr.Addr(0x4000)
	for i := 0; i < 4; i++ {
		p.Update(pathA(), branch, true)
		p.Update(pathB(), branch, false)
	}
	if taken, ok := p.Lookup(pathA(), branch); !ok || !taken {
		t.Errorf("path A: ok=%v taken=%v, want taken", ok, taken)
	}
	if taken, ok := p.Lookup(pathB(), branch); !ok || taken {
		t.Errorf("path B: ok=%v taken=%v, want not-taken", ok, taken)
	}
}

func TestTagMismatchSteals(t *testing.T) {
	p := New(2) // tiny table: everything collides by index
	var h history.History
	a := zaddr.Addr(0x2000)
	b := a + 4 // different tag bits, may share index
	p.Update(&h, a, true)
	idxA := 0
	_ = idxA
	p.Update(&h, b, false)
	// After b stole (or took another slot), a lookup for b must work.
	if _, ok := p.Lookup(&h, b); !ok {
		// only a failure if they actually collided; check directly
		t.Skip("addresses did not collide in this tiny table")
	}
	st := p.Stats()
	if st.Installs < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUpdateStrengthens(t *testing.T) {
	p := New(256)
	var h history.History
	addr := zaddr.Addr(0x6000)
	p.Update(&h, addr, true) // weak taken
	p.Update(&h, addr, true) // strong taken
	p.Update(&h, addr, false)
	// One not-taken should not flip a strong counter.
	if taken, ok := p.Lookup(&h, addr); !ok || !taken {
		t.Error("strengthened counter flipped after one contrary outcome")
	}
	st := p.Stats()
	if st.Updates != 2 {
		t.Errorf("Updates = %d, want 2", st.Updates)
	}
}

func TestReset(t *testing.T) {
	p := New(256)
	var h history.History
	p.Update(&h, 0x2000, true)
	p.Reset()
	if _, ok := p.Lookup(&h, 0x2000); ok {
		t.Error("Reset left entries")
	}
	if st := p.Stats(); st.Installs != 0 {
		t.Error("Reset left stats")
	}
}
