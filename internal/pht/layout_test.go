package pht

import (
	"math/rand"
	"reflect"
	"testing"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

// TestStructVsPackedModel drives identical randomized Lookup/Update
// sequences — with identically seeded fault injectors striking both
// tables — against the packed and struct layouts and demands identical
// results, Stats, and State at every step.
func TestStructVsPackedModel(t *testing.T) {
	for _, prot := range []fault.Protection{fault.Unprotected, fault.Parity} {
		packed := NewLayout(256, false)
		ref := NewLayout(256, true)
		packed.SetInjector(fault.NewInjector("pht", 2000, prot, 0xFEED, false))
		ref.SetInjector(fault.NewInjector("pht", 2000, prot, 0xFEED, false))
		rng := rand.New(rand.NewSource(1701))
		var h history.History
		for op := 0; op < 30000; op++ {
			addr := zaddr.Addr(rng.Intn(1<<14)) &^ 1
			switch rng.Intn(3) {
			case 0:
				h.RecordPrediction(addr, rng.Intn(2) == 0)
			case 1:
				tP, okP := packed.Lookup(&h, addr)
				tR, okR := ref.Lookup(&h, addr)
				if tP != tR || okP != okR {
					t.Fatalf("prot %v op %d: Lookup diverged: (%v,%v) vs (%v,%v)", prot, op, tP, okP, tR, okR)
				}
			case 2:
				taken := rng.Intn(2) == 0
				packed.Update(&h, addr, taken)
				ref.Update(&h, addr, taken)
			}
		}
		if sP, sR := packed.Stats(), ref.Stats(); sP != sR {
			t.Fatalf("prot %v: Stats diverged: %+v vs %+v", prot, sP, sR)
		}
		if fP, fR := packed.Injector().Stats(), ref.Injector().Stats(); fP != fR {
			t.Fatalf("prot %v: fault stats diverged: %+v vs %+v", prot, fP, fR)
		}
		if cP, cR := packed.CountValid(), ref.CountValid(); cP != cR {
			t.Fatalf("prot %v: CountValid diverged: %d vs %d", prot, cP, cR)
		}
		stP, stR := packed.State(), ref.State()
		if !reflect.DeepEqual(stP, stR) {
			t.Fatalf("prot %v: State diverged between layouts", prot)
		}
		// Cross-layout restore must round-trip bit-identically.
		if err := packed.RestoreState(stR); err != nil {
			t.Fatalf("prot %v: restore struct state into packed: %v", prot, err)
		}
		if err := ref.RestoreState(stP); err != nil {
			t.Fatalf("prot %v: restore packed state into struct: %v", prot, err)
		}
		if !reflect.DeepEqual(packed.State(), ref.State()) {
			t.Fatalf("prot %v: State diverged after cross-layout restore", prot)
		}
	}
}
