package pht

import (
	"testing"

	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

func BenchmarkLookupUpdate(b *testing.B) {
	p := New(DefaultEntries)
	var h history.History
	for i := 0; i < 64; i++ {
		h.RecordPrediction(zaddr.Addr(0x1000+8*i), i%2 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := zaddr.Addr(0x4000 + (i%512)*8)
		p.Lookup(&h, a)
		p.Update(&h, a, i%3 != 0)
	}
}
