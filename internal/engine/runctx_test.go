package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// cancelAtSource cancels a context when record n is served — the
// deterministic way to interrupt a run at a known point.
type cancelAtSource struct {
	src    trace.Source
	cancel context.CancelFunc
	at     int64
	served int64
}

func (c *cancelAtSource) Name() string { return c.src.Name() }
func (c *cancelAtSource) Reset()       { c.src.Reset(); c.served = 0 }
func (c *cancelAtSource) Next() (trace.Inst, bool) {
	c.served++
	if c.served == c.at {
		c.cancel()
	}
	return c.src.Next()
}

// TestRunContextMatchesRun: an uncanceled RunContext must be the serial
// Run loop bit for bit.
func TestRunContextMatchesRun(t *testing.T) {
	prof := checkpointProfile()
	plain := Run(workload.New(prof), core.DefaultConfig(), fastParams(), "ctx")

	e := New(core.DefaultConfig(), fastParams())
	got, err := e.RunContext(context.Background(), workload.New(prof), "ctx", 0)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if got.CPI() != plain.CPI() || got.Instructions != plain.Instructions ||
		got.Outcomes != plain.Outcomes || got.Cycles != plain.Cycles {
		t.Errorf("RunContext diverged from Run: CPI %.9f vs %.9f", got.CPI(), plain.CPI())
	}
}

// TestRunContextCancelCheckpointsAndResumes is the recovery core the
// zsimd service relies on: a canceled run checkpoints its exact
// stopping boundary, and resuming that checkpoint is bit-identical to a
// serial oracle that checkpoints at the same instruction count and
// resumes — the persistence machinery adds zero divergence.
func TestRunContextCancelCheckpointsAndResumes(t *testing.T) {
	prof := checkpointProfile()

	var cks []*Checkpoint
	params := fastParams()
	params.CheckpointSink = func(ck *Checkpoint) { cks = append(cks, ck) }
	e := New(core.DefaultConfig(), params)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAtSource{src: workload.New(prof), cancel: cancel, at: 50_000}
	_, err := e.RunContext(ctx, src, "res", 1_000)
	if !errors.Is(err, ErrRunCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrRunCanceled wrapping context.Canceled", err)
	}
	if len(cks) != 1 {
		t.Fatalf("sink received %d checkpoints on cancel, want 1", len(cks))
	}
	ck := cks[0]
	if ck.Instructions < 50_000 || ck.Instructions >= int64(prof.Instructions) {
		t.Fatalf("cancel checkpoint at %d instructions", ck.Instructions)
	}

	// Resume the canceled run's checkpoint.
	e2 := New(core.DefaultConfig(), fastParams())
	resumed, err := e2.ResumeContext(context.Background(), workload.New(prof), ck, 0)
	if err != nil {
		t.Fatalf("ResumeContext: %v", err)
	}

	// Serial oracle: fresh run checkpointing at exactly ck.Instructions,
	// then Resume. Both the checkpoint and the final result must match
	// the canceled-and-resumed path bit for bit.
	var ocks []*Checkpoint
	op := fastParams()
	op.CheckpointInterval = ck.Instructions
	op.CheckpointSink = func(c *Checkpoint) { ocks = append(ocks, c) }
	Run(workload.New(prof), core.DefaultConfig(), op, "res")
	if len(ocks) == 0 {
		t.Fatal("oracle took no checkpoint")
	}
	if !reflect.DeepEqual(ck, ocks[0]) {
		t.Error("cancel checkpoint differs from the oracle's interval checkpoint at the same boundary")
	}
	e3 := New(core.DefaultConfig(), fastParams())
	oracle, err := e3.Resume(workload.New(prof), ocks[0])
	if err != nil {
		t.Fatalf("oracle Resume: %v", err)
	}
	if !reflect.DeepEqual(stripSnapshots(resumed), stripSnapshots(oracle)) {
		t.Errorf("resumed result diverged from serial checkpoint+resume oracle:\n  resumed: %v\n  oracle:  %v", resumed, oracle)
	}
}

// stripSnapshots drops the registry-snapshot pointers so DeepEqual
// compares the architectural result fields (snapshot equality is the
// diffgate's job and needs obs.Diff's tolerance for bucket layouts).
func stripSnapshots(r Result) Result {
	r.Metrics = nil
	r.Snapshots = nil
	return r
}

// TestResumeContextMatchesResume: the cancellable resume path must
// reproduce Resume exactly when never canceled.
func TestResumeContextMatchesResume(t *testing.T) {
	prof := checkpointProfile()
	var ck *Checkpoint
	params := fastParams()
	params.CheckpointInterval = 60_000
	params.CheckpointSink = func(c *Checkpoint) { ck = c }
	Run(workload.New(prof), core.DefaultConfig(), params, "rc")
	if ck == nil {
		t.Fatal("no checkpoint taken")
	}

	e1 := New(core.DefaultConfig(), fastParams())
	plain, err := e1.Resume(workload.New(prof), ck)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(core.DefaultConfig(), fastParams())
	got, err := e2.ResumeContext(context.Background(), workload.New(prof), ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSnapshots(plain), stripSnapshots(got)) {
		t.Error("ResumeContext diverged from Resume")
	}
}

// TestWriteCheckpointFileDurableRoundTrip: the atomic writer must
// produce a file that round-trips, must overwrite an existing
// checkpoint in place, and must leave no temp debris behind — the
// durability contract the jobq journal and crash recovery sit on.
func TestWriteCheckpointFileDurableRoundTrip(t *testing.T) {
	prof := checkpointProfile()
	var cks []*Checkpoint
	params := fastParams()
	params.CheckpointInterval = 40_000
	params.CheckpointSink = func(c *Checkpoint) { cks = append(cks, c) }
	Run(workload.New(prof), core.DefaultConfig(), params, "dur")
	if len(cks) < 2 {
		t.Fatalf("want >= 2 checkpoints, got %d", len(cks))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "job.ckpt")
	for i, ck := range cks[:2] { // second write overwrites the first
		if err := WriteCheckpointFile(path, ck); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := ReadCheckpointFile(path)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		// Byte-stable round trip: re-persisting what was read must
		// reproduce the on-disk encoding exactly (gob collapses nil and
		// empty slices, so struct-level DeepEqual is too strict — what
		// recovery depends on is that the persisted form is a fixed
		// point).
		var a, b bytes.Buffer
		if err := ck.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := got.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("checkpoint %d not byte-stable across the file round trip", i)
		}
		if got.Instructions != ck.Instructions || got.Trace != ck.Trace {
			t.Errorf("checkpoint %d identity changed: %d/%q", i, got.Instructions, got.Trace)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the checkpoint", len(entries))
	}
}
