package engine

import (
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/workload"
)

// snapshotProfile is a capacity-bound workload big enough to promote,
// transfer, and cross several snapshot intervals.
func snapshotProfile() workload.Profile {
	return workload.Profile{
		Name: "snap-test", UniqueBranches: 10_000, TakenFraction: 0.65,
		Instructions: 120_000, HotFraction: 0.15, WindowFunctions: 48,
		CallsPerTransaction: 6, Seed: 99,
	}
}

func TestSnapshotInterval(t *testing.T) {
	p := fastParams()
	p.SnapshotInterval = 10_000
	var sunk []obs.Snapshot
	p.SnapshotSink = func(s obs.Snapshot) { sunk = append(sunk, s) }
	r := Run(workload.New(snapshotProfile()), core.DefaultConfig(), p, "t")

	// 120k instructions at a 10k interval: 12 interval snapshots plus the
	// end-of-run one.
	if len(r.Snapshots) != 13 {
		t.Fatalf("got %d snapshots, want 13", len(r.Snapshots))
	}
	if len(sunk) != len(r.Snapshots) {
		t.Errorf("sink saw %d snapshots, result holds %d", len(sunk), len(r.Snapshots))
	}
	var prevInsts, prevSeq int64
	for i, s := range r.Snapshots {
		if s.Seq <= prevSeq && i > 0 {
			t.Errorf("snapshot %d: seq %d not increasing", i, s.Seq)
		}
		insts := s.Counter("engine_instructions_total")
		if insts < prevInsts {
			t.Errorf("snapshot %d: instructions went backwards (%d -> %d)", i, prevInsts, insts)
		}
		prevInsts, prevSeq = insts, s.Seq
	}
	if got := r.Snapshots[len(r.Snapshots)-1].Counter("engine_instructions_total"); got != 120_000 {
		t.Errorf("final snapshot instructions = %d, want 120000", got)
	}

	if r.Metrics == nil {
		t.Fatal("Result.Metrics missing")
	}
	// Detail histograms are armed when an interval is set; a
	// capacity-bound workload must promote.
	v, ok := r.Metrics.Get("hier_promotion_age_cycles")
	if !ok {
		t.Fatal("promotion-age histogram not registered")
	}
	if v.Count == 0 {
		t.Error("promotion-age histogram empty in detail mode")
	}
}

func TestMetricsWithoutInterval(t *testing.T) {
	r := Run(workload.New(snapshotProfile()), core.DefaultConfig(), fastParams(), "t")
	if len(r.Snapshots) != 0 {
		t.Errorf("got %d snapshots with no interval set", len(r.Snapshots))
	}
	if r.Metrics == nil {
		t.Fatal("final metrics snapshot must exist even without an interval")
	}
	// No warmup: the raw registry counter equals the reported count.
	if got := r.Metrics.Counter("engine_instructions_total"); got != r.Instructions {
		t.Errorf("registry instructions %d != result %d", got, r.Instructions)
	}
	// Detail histograms stay dormant (and free) without an interval.
	if v, _ := r.Metrics.Get("hier_promotion_age_cycles"); v.Count != 0 {
		t.Errorf("promotion-age histogram observed %d values with detail off", v.Count)
	}
	// The outcome counters partition all branches.
	var sum int64
	for o := stats.Outcome(0); o < stats.NumOutcomes; o++ {
		sum += r.Metrics.Counter(o.MetricName())
	}
	if sum != r.Outcomes.Total() {
		t.Errorf("outcome counters sum to %d, result counts %d", sum, r.Outcomes.Total())
	}
}

func TestSnapshotIntervalValidation(t *testing.T) {
	p := DefaultParams()
	p.SnapshotInterval = -1
	if err := p.Validate(); err == nil {
		t.Error("negative snapshot interval accepted")
	}
}
