package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"bulkpreload/internal/core"
	"bulkpreload/internal/predictor"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// checkpointMagic identifies a checkpoint stream; the trailing byte is
// the format version.
const checkpointMagic = "ZBPC\x01"

// Checkpoint is a restartable snapshot of one simulation: the engine's
// accounting and pipeline position plus the hierarchy's architectural
// state (core.State). It deliberately excludes the instruction caches,
// miss detector, BTB2 trackers, steering, FIT, prefetch bookkeeping and
// all metric counters-of-structures — transients that restart cold at
// resume, costing at most a brief re-warm (see docs/ROBUSTNESS.md).
//
// A checkpoint does not embed Params or the hierarchy Config (both hold
// function values and are code, not data); Resume must be called on an
// engine built from the same configuration the checkpoint was taken
// under. Trace and Config names are carried for cross-checking.
type Checkpoint struct {
	Trace  string
	Config string

	// Instructions is the number of trace records fully processed; a
	// resume skips exactly this many records.
	Instructions int64
	Clock        int64 // decode/completion clock, ticks
	BPClock      int64 // search pipeline clock, ticks

	Outcomes         stats.Counts
	MispredictCycles float64
	SurpriseCycles   float64
	ICacheCycles     float64

	WarmTaken      bool
	WarmCycles     int64
	WarmOutcomes   stats.Counts
	WarmMispredict float64
	WarmSurprise   float64
	WarmICache     float64

	SearchLine    uint64
	SearchOffset  uint64
	HaveSearch    bool
	SearchBlocked bool

	CurFetchLine uint64
	HaveFetch    bool

	PrevTakenBranch uint64
	HavePrevTaken   bool
	LastNTRow       uint64
	LastNTValid     bool

	SnapSeq  int64
	NextSnap int64

	// Seen is the sorted set of ever-executed branch addresses, needed to
	// keep the compulsory/capacity surprise classification stable across
	// a resume.
	Seen []uint64

	Core core.State
}

// Checkpoint captures the engine's current restartable state.
func (e *Engine) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Trace:            e.res.Trace,
		Config:           e.res.Config,
		Instructions:     e.res.Instructions,
		Clock:            int64(e.clock),
		BPClock:          int64(e.bpClock),
		Outcomes:         e.res.Outcomes,
		MispredictCycles: e.res.MispredictCycles,
		SurpriseCycles:   e.res.SurpriseCycles,
		ICacheCycles:     e.res.ICacheCycles,
		WarmTaken:        e.warmTaken,
		WarmCycles:       int64(e.warmCycles),
		WarmOutcomes:     e.warmOutcomes,
		WarmMispredict:   e.warmMispredict,
		WarmSurprise:     e.warmSurprise,
		WarmICache:       e.warmICache,
		SearchLine:       uint64(e.searchLine),
		SearchOffset:     uint64(e.searchOffset),
		HaveSearch:       e.haveSearch,
		SearchBlocked:    e.searchBlocked,
		CurFetchLine:     uint64(e.curFetchLine),
		HaveFetch:        e.haveFetch,
		PrevTakenBranch:  uint64(e.prevTakenBranch),
		HavePrevTaken:    e.havePrevTaken,
		LastNTRow:        uint64(e.lastNTRow),
		LastNTValid:      e.lastNTValid,
		SnapSeq:          e.snapSeq,
		NextSnap:         e.nextSnap,
		Core:             e.hier.State(),
	}
	ck.Seen = make([]uint64, 0, len(e.seen))
	//zbp:allow determinism keys are sorted immediately after collection
	for a := range e.seen {
		ck.Seen = append(ck.Seen, uint64(a))
	}
	sort.Slice(ck.Seen, func(i, j int) bool { return ck.Seen[i] < ck.Seen[j] })
	return ck
}

// restore overwrites the (freshly reset) engine state with ck.
func (e *Engine) restore(ck *Checkpoint) error {
	if err := e.hier.RestoreState(ck.Core); err != nil {
		return err
	}
	e.res.Trace = ck.Trace
	e.res.Config = ck.Config
	e.res.Instructions = ck.Instructions
	e.clock = predictor.Ticks(ck.Clock)
	e.bpClock = predictor.Ticks(ck.BPClock)
	e.res.Outcomes = ck.Outcomes
	e.res.MispredictCycles = ck.MispredictCycles
	e.res.SurpriseCycles = ck.SurpriseCycles
	e.res.ICacheCycles = ck.ICacheCycles
	e.warmTaken = ck.WarmTaken
	e.warmCycles = predictor.Ticks(ck.WarmCycles)
	e.warmOutcomes = ck.WarmOutcomes
	e.warmMispredict = ck.WarmMispredict
	e.warmSurprise = ck.WarmSurprise
	e.warmICache = ck.WarmICache
	e.searchLine = zaddr.Addr(ck.SearchLine)
	e.searchOffset = uint(ck.SearchOffset)
	e.haveSearch = ck.HaveSearch
	e.searchBlocked = ck.SearchBlocked
	e.curFetchLine = zaddr.Addr(ck.CurFetchLine)
	e.haveFetch = ck.HaveFetch
	e.prevTakenBranch = zaddr.Addr(ck.PrevTakenBranch)
	e.havePrevTaken = ck.HavePrevTaken
	e.lastNTRow = zaddr.Addr(ck.LastNTRow)
	e.lastNTValid = ck.LastNTValid
	e.snapSeq = ck.SnapSeq
	e.nextSnap = ck.NextSnap
	for _, a := range ck.Seen {
		e.seen[zaddr.Addr(a)] = true
	}
	if e.params.CheckpointInterval > 0 {
		e.nextCkpt = ck.Instructions + e.params.CheckpointInterval
	}
	return nil
}

// Resume continues a checkpointed simulation: the engine is reset, the
// checkpoint state restored, the already-processed prefix of src skipped,
// and the remainder simulated to completion. The engine must have been
// built from the same hierarchy config and compatible params as the
// original run; src must be the same trace.
func (e *Engine) Resume(src trace.Source, ck *Checkpoint) (Result, error) {
	e.reset()
	src.Reset()
	if n := src.Name(); n != ck.Trace {
		return Result{}, fmt.Errorf("engine: resume trace %q does not match checkpoint trace %q", n, ck.Trace)
	}
	if err := e.restore(ck); err != nil {
		return Result{}, err
	}
	for skipped := int64(0); skipped < ck.Instructions; skipped++ {
		if _, ok := src.Next(); !ok {
			return Result{}, fmt.Errorf("engine: trace ended after %d records while skipping the %d-record checkpoint prefix",
				skipped, ck.Instructions)
		}
	}
	//zbp:bounded terminates when src.Next reports end-of-trace
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		e.step(in)
	}
	e.finishResult()
	return e.res, nil
}

// Write encodes the checkpoint (magic header + gob payload). Gob rather
// than JSON: branch addresses are full uint64s, which JSON would round
// through float64.
func (ck *Checkpoint) Write(w io.Writer) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return fmt.Errorf("engine: writing checkpoint header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("engine: encoding checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint decodes a checkpoint written by Write.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	hdr := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("engine: reading checkpoint header: %w", err)
	}
	if string(hdr) != checkpointMagic {
		return nil, fmt.Errorf("engine: not a checkpoint file (bad magic %q)", hdr)
	}
	ck := new(Checkpoint)
	if err := gob.NewDecoder(r).Decode(ck); err != nil {
		return nil, fmt.Errorf("engine: decoding checkpoint: %w", err)
	}
	return ck, nil
}

// WriteCheckpointFile atomically persists the checkpoint: written to a
// temp file in the target directory, synced, renamed into place, and
// the directory synced, so a crash at any point either leaves the
// previous good checkpoint or the complete new one — never a torn file,
// and never a rename that evaporates with the directory's page cache.
//
//zbp:durable
func WriteCheckpointFile(path string, ck *Checkpoint) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: creating checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	if err := ck.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: installing checkpoint: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making previously renamed/created entries
// durable. A rename is atomic with respect to readers immediately, but
// only survives a power loss once the directory itself reaches disk —
// the gap that used to let a "committed" checkpoint or journal vanish
// on crash.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("engine: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("engine: syncing directory %s: %w", dir, err)
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint persisted by WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: opening checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
