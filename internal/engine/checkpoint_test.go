package engine

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/workload"
)

func checkpointProfile() workload.Profile {
	return workload.Profile{
		Name: "ckpt-test", UniqueBranches: 6_000, TakenFraction: 0.65,
		Instructions: 120_000, HotFraction: 0.15, WindowFunctions: 24,
		CallsPerTransaction: 5, Seed: 21,
	}
}

// TestCheckpointIntervalFeedsSink: the engine must hand a checkpoint to
// the sink at each configured interval, with the right instruction
// counts, while the run's own result is unaffected.
func TestCheckpointIntervalFeedsSink(t *testing.T) {
	prof := checkpointProfile()
	var cks []*Checkpoint
	params := fastParams()
	params.CheckpointInterval = 40_000
	params.CheckpointSink = func(ck *Checkpoint) { cks = append(cks, ck) }
	r := Run(workload.New(prof), core.DefaultConfig(), params, "ckpt")

	plain := Run(workload.New(prof), core.DefaultConfig(), fastParams(), "ckpt")
	if r.CPI() != plain.CPI() || r.Instructions != plain.Instructions {
		t.Errorf("checkpointing changed the result: CPI %.6f vs %.6f", r.CPI(), plain.CPI())
	}
	if len(cks) != 2 { // at 40k and 80k; 120k is the end of the run
		t.Fatalf("sink received %d checkpoints, want 2", len(cks))
	}
	for i, ck := range cks {
		if want := int64(40_000 * (i + 1)); ck.Instructions != want {
			t.Errorf("checkpoint %d at %d instructions, want %d", i, ck.Instructions, want)
		}
		if ck.Trace != "ckpt-test" || ck.Config != "ckpt" {
			t.Errorf("checkpoint %d names %q/%q", i, ck.Trace, ck.Config)
		}
	}
}

func TestCheckpointWriteReadRoundTrip(t *testing.T) {
	prof := checkpointProfile()
	var ck *Checkpoint
	params := fastParams()
	params.CheckpointInterval = 60_000
	params.CheckpointSink = func(c *Checkpoint) { ck = c }
	Run(workload.New(prof), core.DefaultConfig(), params, "rt")
	if ck == nil {
		t.Fatal("no checkpoint taken")
	}

	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Error("checkpoint changed across Write/ReadCheckpoint")
	}

	// File round trip through the atomic writer.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got2) {
		t.Error("checkpoint changed across file round trip")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOPE\x01junk"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("ZBPC\x01 not gob"))); err == nil {
		t.Error("corrupt payload accepted")
	}
}

// TestResumeCompletesRun: a run resumed from a mid-trace checkpoint must
// process exactly the remaining records and finish with plausible
// accounting. (Transient predictor state restarts cold, so the resumed
// result is close to — not bit-identical with — the uninterrupted run;
// see docs/ROBUSTNESS.md.)
func TestResumeCompletesRun(t *testing.T) {
	prof := checkpointProfile()
	var ck *Checkpoint
	params := fastParams()
	params.CheckpointInterval = 60_000
	params.CheckpointSink = func(c *Checkpoint) { ck = c }
	full := Run(workload.New(prof), core.DefaultConfig(), params, "res")
	if ck == nil {
		t.Fatal("no checkpoint taken")
	}
	if ck.Instructions >= full.Instructions {
		t.Fatalf("checkpoint at %d, full run only %d", ck.Instructions, full.Instructions)
	}

	params2 := fastParams()
	e := New(core.DefaultConfig(), params2)
	r, err := e.Resume(workload.New(prof), ck)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != full.Instructions {
		t.Errorf("resumed run processed %d instructions, full run %d", r.Instructions, full.Instructions)
	}
	if r.CPI() <= 0 {
		t.Errorf("resumed CPI %.4f not positive", r.CPI())
	}
	// Cold transients cost at most a brief re-warm: the resumed CPI
	// stays within a few percent of the uninterrupted run.
	if diff := (r.CPI() - full.CPI()) / full.CPI(); diff > 0.05 || diff < -0.05 {
		t.Errorf("resumed CPI %.4f drifted %.1f%% from full run %.4f", r.CPI(), 100*diff, full.CPI())
	}
}

func TestResumeRejectsWrongTrace(t *testing.T) {
	prof := checkpointProfile()
	var ck *Checkpoint
	params := fastParams()
	params.CheckpointInterval = 60_000
	params.CheckpointSink = func(c *Checkpoint) { ck = c }
	Run(workload.New(prof), core.DefaultConfig(), params, "wrong")

	other := prof
	other.Name = "some-other-trace"
	e := New(core.DefaultConfig(), fastParams())
	if _, err := e.Resume(workload.New(other), ck); err == nil {
		t.Error("Resume accepted a mismatched trace")
	}
}

func TestResumeRejectsShortTrace(t *testing.T) {
	prof := checkpointProfile()
	var ck *Checkpoint
	params := fastParams()
	params.CheckpointInterval = 100_000
	params.CheckpointSink = func(c *Checkpoint) { ck = c }
	Run(workload.New(prof), core.DefaultConfig(), params, "short")

	short := prof
	short.Instructions = 50_000 // shorter than the checkpoint prefix
	e := New(core.DefaultConfig(), fastParams())
	if _, err := e.Resume(workload.New(short), ck); err == nil {
		t.Error("Resume accepted a trace shorter than the checkpoint prefix")
	}
}

func TestParamsValidateCheckpointing(t *testing.T) {
	p := DefaultParams()
	p.CheckpointInterval = -1
	if err := p.Validate(); err == nil {
		t.Error("negative interval accepted")
	}
	p = DefaultParams()
	p.CheckpointInterval = 1000
	if err := p.Validate(); err == nil {
		t.Error("interval without sink accepted")
	}
	p.CheckpointSink = func(*Checkpoint) {}
	if err := p.Validate(); err != nil {
		t.Errorf("valid checkpoint params rejected: %v", err)
	}
}

// TestRunWithFaultsDeterministic pins the acceptance criterion that a
// fixed seed reproduces the degradation bit-for-bit at the engine level.
func TestRunWithFaultsDeterministic(t *testing.T) {
	prof := checkpointProfile()
	params := fastParams()
	params.Fault = fault.ZEC12Rates(77, 500, fault.Parity)
	a := Run(workload.New(prof), core.DefaultConfig(), params, "det")
	b := Run(workload.New(prof), core.DefaultConfig(), params, "det")
	if a.Cycles != b.Cycles || a.Outcomes != b.Outcomes || a.Fault != b.Fault {
		t.Errorf("faulted runs diverge: cycles %.2f/%.2f fault %+v/%+v",
			a.Cycles, b.Cycles, a.Fault, b.Fault)
	}
	if a.Fault.Injected == 0 {
		t.Fatal("no faults injected")
	}
	if a.Fault.Recovered != a.Fault.Detected {
		t.Errorf("parity recovered %d != detected %d", a.Fault.Recovered, a.Fault.Detected)
	}
}
