package engine

import (
	"fmt"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/cache"
	"bulkpreload/internal/core"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/obs/span"
	"bulkpreload/internal/predictor"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/tracker"
	"bulkpreload/internal/zaddr"
)

// Result summarizes one simulation run.
type Result struct {
	Trace        string
	Config       string
	Instructions int64
	Cycles       float64 // total cycles (fractional: tick-resolution)

	Outcomes stats.Counts

	// Penalty cycle attribution.
	MispredictCycles float64
	SurpriseCycles   float64
	ICacheCycles     float64

	// Component snapshots.
	Hier    core.Stats
	Tracker tracker.Stats
	L1I     cache.Stats
	L2I     cache.Stats
	BTB1    btb.Stats
	BTBP    btb.Stats
	BTB2    btb.Stats

	MissesReported int64 // BTB1 misses reported by the detector

	// Fault aggregates the run's soft-error injection counters across
	// every structure (all zero when injection is disabled).
	Fault fault.Stats

	// Metrics is the final registry snapshot of the run — every counter,
	// gauge, and histogram of every structure, enumerable by name. Use
	// it for cross-shard aggregation (obs.Snapshot.Merge) and trace
	// reconciliation. Excluded from JSON so golden records stay stable.
	Metrics *obs.Snapshot `json:"-"`

	// Snapshots are the interval snapshots taken every
	// Params.SnapshotInterval instructions (empty when the interval is
	// zero); feed them to report.PhaseTimeline.
	Snapshots []obs.Snapshot `json:"-"`
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.Cycles / float64(r.Instructions)
}

// Improvement returns the percent CPI improvement of r over base
// (positive = r is faster), the paper's Figure 2/3/5/6/7 metric.
func (r Result) Improvement(base Result) float64 {
	if base.CPI() == 0 {
		return 0
	}
	return 100 * (base.CPI() - r.CPI()) / base.CPI()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: CPI %.4f over %d insts (bad branches %.1f%%)",
		r.Trace, r.Config, r.CPI(), r.Instructions, 100*r.Outcomes.BadRate())
}

// Engine runs traces against one hierarchy configuration.
type Engine struct {
	params Params
	hcfg   core.Config

	hier    *core.Hierarchy
	l1i     *cache.Cache
	l2i     *cache.Cache
	missDet *predictor.MissDetector

	// clock is decode/completion time; bpClock is the search pipeline's
	// accumulated position. Both in ticks.
	clock   predictor.Ticks
	bpClock predictor.Ticks

	// search pipeline position along the committed path.
	searchLine   zaddr.Addr // base of the next row to search
	searchOffset uint       // offset within the first row after a redirect
	haveSearch   bool
	// searchBlocked is set when lookahead found a row with first-level
	// content: the pipeline would predict there and re-index, so
	// lookahead pauses until the committed path reaches that row.
	searchBlocked bool

	curFetchLine zaddr.Addr // last 256-byte line demanded from the L1I
	haveFetch    bool

	// prefetchFill records when a prefetched line's data actually
	// arrives, so early prefetches fully hide the miss and late ones
	// hide it partially.
	prefetchFill map[zaddr.Addr]predictor.Ticks

	prevTakenBranch zaddr.Addr // for the single-branch-loop rate
	havePrevTaken   bool
	lastNTRow       zaddr.Addr // row of the last not-taken prediction
	lastNTValid     bool

	seen map[zaddr.Addr]bool // ever-executed branches (compulsory class)

	res Result

	// reg enumerates every metric of the current run's structures; it is
	// rebuilt with them on reset. snapSeq numbers interval snapshots,
	// nextSnap is the instruction count that triggers the next one.
	reg      *obs.Registry
	snapSeq  int64
	nextSnap int64
	// nextCkpt is the instruction count that triggers the next interval
	// checkpoint (0 = checkpointing off).
	nextCkpt int64

	// spans is Params.Spans hoisted onto the engine for the batched
	// path. bulkRecords/slowRecords attribute batched records to the
	// bulk fast path vs the per-record step — plain fields, deliberately
	// outside Result and the registry so the differential gate's
	// bit-identical comparison is unaffected; they surface only through
	// batch span arguments and BatchPathCounts.
	spans       *span.Recorder
	bulkRecords int64
	slowRecords int64

	// Warmup snapshot, subtracted from the result when the trace is long
	// enough to cross the warmup boundary.
	warmTaken      bool
	warmCycles     predictor.Ticks
	warmOutcomes   stats.Counts
	warmMispredict float64
	warmSurprise   float64
	warmICache     float64
}

// New builds an engine; invalid parameters or config panic.
func New(hcfg core.Config, params Params) *Engine {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{params: params, hcfg: hcfg}
	e.reset()
	return e
}

func (e *Engine) reset() {
	hcfg := e.hcfg
	if e.params.Fault.Enabled() {
		hcfg.Fault = e.params.Fault
	}
	e.hier = core.New(hcfg)
	if e.params.EventTracer != nil {
		e.hier.SetTracer(e.params.EventTracer)
	}
	e.l1i = cache.New(e.params.L1I)
	if e.params.FiniteL2 {
		e.l2i = cache.New(e.params.L2I)
	} else {
		e.l2i = nil
	}
	e.missDet = predictor.NewMissDetector(e.hcfg.Miss)
	e.clock = 0
	e.bpClock = 0
	e.haveSearch = false
	e.haveFetch = false
	e.prefetchFill = make(map[zaddr.Addr]predictor.Ticks)
	e.havePrevTaken = false
	e.lastNTValid = false
	e.seen = make(map[zaddr.Addr]bool, 1<<16)
	e.res = Result{}
	e.warmTaken = false
	e.warmCycles = 0
	e.warmOutcomes = stats.Counts{}
	e.warmMispredict = 0
	e.warmSurprise = 0
	e.warmICache = 0

	e.snapSeq = 0
	e.nextSnap = 0
	if e.params.SnapshotInterval > 0 {
		e.nextSnap = e.params.SnapshotInterval
		e.hier.EnableDetailMetrics()
	}
	e.nextCkpt = 0
	if e.params.CheckpointInterval > 0 {
		e.nextCkpt = e.params.CheckpointInterval
	}
	e.spans = e.params.Spans
	e.bulkRecords = 0
	e.slowRecords = 0
	e.buildRegistry()
}

// buildRegistry enumerates every metric of the freshly reset run: the
// hierarchy with all its structures, both instruction caches, and the
// engine's own instruction/cycle/outcome/penalty accounting.
func (e *Engine) buildRegistry() {
	r := obs.NewRegistry()
	e.hier.RegisterMetrics(r)
	e.l1i.RegisterMetrics(r, "l1i_")
	if e.l2i != nil {
		e.l2i.RegisterMetrics(r, "l2i_")
	}
	r.CounterFunc("engine_instructions_total", "instructions", "committed instructions",
		func() int64 { return e.res.Instructions })
	r.GaugeFunc("engine_cycles", "cycles", "decode/completion clock position",
		func() int64 { return int64(e.clock.ToCycles()) })
	r.GaugeFunc("engine_bp_cycles", "cycles", "search pipeline clock position",
		func() int64 { return int64(e.bpClock.ToCycles()) })
	r.CounterFunc("engine_misses_reported_total", "events", "BTB1 misses flagged by the miss detector",
		func() int64 { return e.missDet.Reported() })
	r.CounterFunc("engine_mispredict_cycles_total", "cycles", "cycles charged to mispredict restarts",
		func() int64 { return int64(e.res.MispredictCycles) })
	r.CounterFunc("engine_surprise_cycles_total", "cycles", "cycles charged to surprise redirects",
		func() int64 { return int64(e.res.SurpriseCycles) })
	r.CounterFunc("engine_icache_cycles_total", "cycles", "cycles charged to I-cache misses",
		func() int64 { return int64(e.res.ICacheCycles) })
	for o := stats.Outcome(0); o < stats.NumOutcomes; o++ {
		o := o
		r.CounterFunc(o.MetricName(), "branches", "branches with outcome "+o.String(),
			func() int64 { return e.res.Outcomes.N[o] })
	}
	e.reg = r
}

// Registry exposes the run's metric registry. It belongs to the
// simulation goroutine (see the obs package comment); cross-goroutine
// consumers must go through published snapshots.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// snapshot captures the registry, appends it to the result, and feeds
// the sink if one is configured.
func (e *Engine) snapshot() {
	e.snapSeq++
	s := e.reg.Snapshot(e.snapSeq)
	e.res.Snapshots = append(e.res.Snapshots, s)
	if e.params.SnapshotSink != nil {
		e.params.SnapshotSink(s)
	}
}

// Hierarchy exposes the predictor under test (diagnostics).
func (e *Engine) Hierarchy() *core.Hierarchy { return e.hier }

// BatchPathCounts reports how many records of the current batched run
// took the bulk fast path vs the per-record slow path. Both are zero
// for serial (Run) executions; the sum equals the raw record count
// before warmup subtraction.
func (e *Engine) BatchPathCounts() (bulk, slow int64) { return e.bulkRecords, e.slowRecords }

// Run simulates src to completion under configName and returns the
// result. The engine state is reset first, so one Engine can run several
// traces sequentially (each from power-on state).
func (e *Engine) Run(src trace.Source, configName string) Result {
	e.reset()
	src.Reset()
	e.res.Trace = src.Name()
	e.res.Config = configName
	//zbp:bounded terminates when src.Next reports end-of-trace
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		e.step(in)
	}
	e.finishResult()
	return e.res
}

func (e *Engine) finishResult() {
	// Capture registry state before the warmup subtraction below mutates
	// e.res: registry counters are raw cumulative values, and the final
	// snapshot must stay comparable with the interval ones (and with
	// exported trace event counts).
	if e.params.SnapshotInterval > 0 {
		// Close the timeline with an end-of-run snapshot so the last
		// partial interval is observable too.
		e.snapshot()
	}
	final := e.reg.Snapshot(e.snapSeq + 1)
	e.res.Metrics = &final

	e.res.Cycles = e.clock.Float()
	if e.warmTaken {
		// Subtract the warmup region so reported CPI and outcome shares
		// reflect steady state.
		e.res.Instructions -= e.params.WarmupInstructions
		e.res.Cycles -= e.warmCycles.Float()
		for i := range e.res.Outcomes.N {
			e.res.Outcomes.N[i] -= e.warmOutcomes.N[i]
		}
		e.res.MispredictCycles -= e.warmMispredict
		e.res.SurpriseCycles -= e.warmSurprise
		e.res.ICacheCycles -= e.warmICache
	}
	e.res.Hier = e.hier.Stats()
	e.res.Tracker = e.hier.TrackerStats()
	e.res.L1I = e.l1i.Stats()
	if e.l2i != nil {
		e.res.L2I = e.l2i.Stats()
	}
	e.res.BTB1 = e.hier.BTB1Stats()
	e.res.BTBP = e.hier.BTBPStats()
	e.res.BTB2 = e.hier.BTB2Stats()
	e.res.MissesReported = e.missDet.Reported()
	e.res.Fault = e.hier.FaultStats()
}

// now returns the current cycle for component timing.
func (e *Engine) now() uint64 { return e.clock.ToCycles() }

// step processes one committed instruction.
func (e *Engine) step(in trace.Inst) {
	// Checkpoint before touching this instruction: the captured state is
	// "exactly Instructions records fully processed", so Resume can skip
	// that many records and continue with this one.
	if e.nextCkpt > 0 && e.res.Instructions >= e.nextCkpt {
		e.params.CheckpointSink(e.Checkpoint())
		e.nextCkpt += e.params.CheckpointInterval
	}
	if !e.warmTaken && e.params.WarmupInstructions > 0 &&
		e.res.Instructions == e.params.WarmupInstructions {
		e.warmTaken = true
		e.warmCycles = e.clock
		e.warmOutcomes = e.res.Outcomes
		e.warmMispredict = e.res.MispredictCycles
		e.warmSurprise = e.res.SurpriseCycles
		e.warmICache = e.res.ICacheCycles
	}
	e.res.Instructions++
	if e.nextSnap > 0 && e.res.Instructions >= e.nextSnap {
		e.snapshot()
		e.nextSnap += e.params.SnapshotInterval
	}
	e.clock += e.params.DispatchTicks
	e.fetch(in.Addr)
	e.advanceSearch(in.Addr)
	e.hier.ObserveComplete(in.Addr)

	if in.Kind == trace.PreloadHint {
		// A branch preload instruction: software installs the named
		// branch through the BTBP write port.
		e.hier.PreloadBranch(in.HintBranch, in.Target, 4, e.now())
		return
	}
	if !in.IsBranch() {
		return
	}
	e.branch(in)
}

// fetch models the demand instruction fetch for addr, charging I-cache
// miss penalties and reporting misses to the BTB2 trackers.
func (e *Engine) fetch(addr zaddr.Addr) {
	line := zaddr.Align(addr, uint64(e.params.L1I.LineBytes))
	if e.haveFetch && line == e.curFetchLine {
		return
	}
	e.curFetchLine = line
	e.haveFetch = true
	hit, prefetched := e.l1i.Access(line)
	switch {
	case hit && prefetched:
		// The lookahead predictor prefetched this line; the demand fetch
		// pays only the part of the latency the prefetch lead did not
		// cover.
		if fill, ok := e.prefetchFill[line]; ok {
			if fill > e.clock {
				e.charge(&e.res.ICacheCycles, fill-e.clock)
			}
			delete(e.prefetchFill, line)
		}
	case hit:
	default:
		penalty := e.params.L1IMissPenalty
		if e.l2i != nil {
			if l2hit, _ := e.l2i.Access(line); !l2hit {
				penalty += e.params.L2IMissPenalty
			}
		}
		e.charge(&e.res.ICacheCycles, predictor.Cycles(penalty))
		e.hier.ReportICacheMiss(addr, e.now())
	}
}

// charge adds a penalty to the clock and attributes it.
func (e *Engine) charge(bucket *float64, t predictor.Ticks) {
	e.clock += t
	*bucket += t.Float()
}

// leadRows is how many rows ahead of the committed decode position the
// lookahead search may run — the asynchronous search pipeline's headroom.
const leadRows = 8

// advanceSearch walks the search pipeline forward along the committed
// path up to the row containing addr, then runs ahead of decode through
// empty rows (the asynchronous lookahead), feeding the miss detector.
func (e *Engine) advanceSearch(addr zaddr.Addr) {
	target := zaddr.RowBase(addr)
	if !e.haveSearch {
		e.haveSearch = true
		e.searchLine = target
		e.searchOffset = zaddr.RowOffset(addr)
	}
	if e.searchLine <= target {
		e.searchBlocked = false
	}
	// Bound work: a huge sequential gap (possible with synthetic traces)
	// is capped; the miss detector saturates long before.
	const maxRows = 64
	if e.searchLine < target {
		if rows := int((target - e.searchLine) / zaddr.RowBytes); rows > maxRows {
			e.searchLine = target - maxRows*zaddr.RowBytes
			e.searchOffset = 0
		}
	}
	// Catch up to the committed position.
	for e.searchLine <= target {
		e.searchRow()
	}
	// Lookahead: search ahead of decode through predictionless rows. A
	// row with first-level content stops lookahead (the pipeline would
	// predict there and re-index).
	for !e.searchBlocked && e.searchLine < target+leadRows*zaddr.RowBytes {
		if !e.searchRow() {
			break
		}
	}
}

// searchRow performs one row search at the current search position and
// reports whether the row was empty (lookahead may continue).
func (e *Engine) searchRow() bool {
	probe := e.searchLine + zaddr.Addr(e.searchOffset)
	found, _ := e.hier.SearchLine(probe, e.now())
	if !found {
		// Empty rows cost the sequential search rate. A row with content
		// is *not* charged here: the Table 1 prediction cost charged when
		// its branch is processed covers that row's full pipeline pass.
		e.bpClock += e.params.Throughput.SeqSearchPerRow
	}
	if e.hcfg.MissMode.Speculative() {
		if anchor, miss := e.missDet.ObserveSearch(probe, found); miss {
			e.hier.ReportBTB1Miss(anchor, e.now())
		}
	}
	if found && e.searchLine > zaddr.RowBase(probe) {
		// Defensive: cannot happen (probe derives from searchLine).
		return false
	}
	e.searchLine += zaddr.RowBytes
	e.searchOffset = 0
	if found {
		e.searchBlocked = true
		return false
	}
	return true
}

// branch handles a committed branch instruction.
func (e *Engine) branch(in trace.Inst) {
	now := e.now()
	firstSeen := !e.seen[in.Addr]
	e.seen[in.Addr] = true

	p, hit := e.hier.Predict(in.Addr, now)

	// Clamp the predictor's lead/lag window.
	maxLead := predictor.Cycles(e.params.MaxLeadCycles)
	if e.bpClock < e.clock-maxLead {
		e.bpClock = e.clock - maxLead
	}

	if hit {
		// Charge the Table 1 prediction cost before testing timeliness:
		// the prediction broadcasts at bpClock after its pipeline pass.
		cost := e.predictionCost(in, &p)
		e.bpClock += cost
		onTime := e.bpClock <= e.clock+predictor.Cycles(e.params.PredictionSlack)
		if onTime {
			e.predicted(in, &p)
		} else {
			// Prediction fell behind decode: a latency surprise. The
			// hierarchy still trains from the resolved outcome.
			e.surprise(in, stats.BadSurpriseLatency)
			e.hier.Resolve(in, &p, now)
		}
		return
	}

	// Whole first level missed. In decode-surprise miss mode, an
	// encountered surprise branch that is statically guessed taken is
	// itself the (precise) BTB1-miss report and earns a full search.
	if e.hcfg.MissMode.DecodeSurprise() && e.hier.SurpriseGuess(in) {
		// I-cache-miss validity first so the tracker is fully active
		// when the BTB1 miss lands and launches a full (not partial)
		// search directly.
		e.hier.ReportICacheMiss(in.Addr, now)
		e.hier.ReportBTB1Miss(in.Addr, now)
	}
	// The branch's row was already searched (and, in speculative mode,
	// fed into the miss detector) by advanceSearch; classify the
	// surprise.
	switch {
	case e.hier.PendingSurpriseFor(in.Addr):
		e.surprise(in, stats.BadSurpriseLatency)
	case firstSeen:
		e.surprise(in, stats.BadSurpriseCompulsory)
	default:
		e.surprise(in, stats.BadSurpriseCapacity)
	}
	e.hier.Resolve(in, nil, e.now())
}

// predictionCost classifies the Table 1 case for an on-path prediction.
func (e *Engine) predictionCost(in trace.Inst, p *core.Prediction) predictor.Ticks {
	if p.Taken {
		loop := e.havePrevTaken && e.prevTakenBranch == in.Addr
		fit := e.hier.FITLookup(in.Addr, p.Target)
		c := predictor.ClassifyTaken(loop, fit, p.MRU)
		return e.params.Throughput.Cost(c)
	}
	paired := e.lastNTValid && e.lastNTRow == zaddr.RowBase(in.Addr)
	c := predictor.ClassifyNotTaken(paired)
	return e.params.Throughput.Cost(c)
}

// predicted handles a timely dynamic prediction.
func (e *Engine) predicted(in trace.Inst, p *core.Prediction) {
	now := e.now()
	dirRight := p.Taken == in.Taken
	tgtRight := !in.Taken || !p.Taken || p.Target == in.Target

	switch {
	case dirRight && tgtRight:
		e.res.Outcomes.Add(stats.GoodPredicted)
		if in.Taken {
			// The lookahead predictor steers fetch to the target and
			// prefetches its line ahead of decode.
			e.prefetchTarget(in.Target)
			e.redirectSearch(in.Target)
			e.prevTakenBranch = in.Addr
			e.havePrevTaken = true
			e.lastNTValid = false
		} else {
			e.lastNTRow = zaddr.RowBase(in.Addr)
			e.lastNTValid = true
		}
	case !dirRight:
		e.res.Outcomes.Add(stats.BadWrongDir)
		e.wrongPath(in, p)
		e.charge(&e.res.MispredictCycles, predictor.Cycles(e.params.MispredictPenalty))
		e.restart(in)
	default: // wrong target
		e.res.Outcomes.Add(stats.BadWrongTarget)
		e.wrongPath(in, p)
		e.charge(&e.res.MispredictCycles, predictor.Cycles(e.params.MispredictPenalty))
		e.restart(in)
	}
	e.hier.Resolve(in, p, now)
}

// surprise handles a branch the first level missed (or missed in time).
// class is the latency/compulsory/capacity classification to use if the
// outcome is bad.
func (e *Engine) surprise(in trace.Inst, class stats.Outcome) {
	guessTaken := e.hier.SurpriseGuess(in)
	switch {
	case !guessTaken && !in.Taken:
		// Quietly correct: fall-through continues, no penalty.
		e.res.Outcomes.Add(stats.GoodSurpriseNT)
	case guessTaken && in.Taken:
		// Guessed taken at decode: target computed from instruction
		// text, decode-time redirect penalty only.
		e.res.Outcomes.Add(class)
		e.charge(&e.res.SurpriseCycles, predictor.Cycles(e.params.SurpriseTakenPenalty))
		e.restart(in)
	default:
		// Wrong static guess either way: resolved at execute.
		e.res.Outcomes.Add(class)
		e.charge(&e.res.SurpriseCycles, predictor.Cycles(e.params.MispredictPenalty))
		e.restart(in)
	}
}

// prefetchTarget issues the lookahead prefetch for a predicted-taken
// target, recording when its data will arrive.
func (e *Engine) prefetchTarget(target zaddr.Addr) {
	line := zaddr.Align(target, uint64(e.params.L1I.LineBytes))
	if e.l1i.Probe(line) {
		return
	}
	e.l1i.Prefetch(line)
	// The prefetch is issued at the predictor's current position; the
	// line arrives a full miss latency later. Demand fetches pay only
	// the uncovered remainder.
	issue := e.bpClock
	if issue < e.clock-predictor.Cycles(e.params.MaxLeadCycles) {
		issue = e.clock - predictor.Cycles(e.params.MaxLeadCycles)
	}
	fill := issue + predictor.Cycles(e.params.L1IMissPenalty)
	if e.l2i != nil {
		if l2hit, _ := e.l2i.Access(line); !l2hit {
			fill += predictor.Cycles(e.params.L2IMissPenalty)
		}
	}
	e.prefetchFill[line] = fill
}

// redirectSearch points the search pipeline at a predicted-taken target.
func (e *Engine) redirectSearch(target zaddr.Addr) {
	e.searchLine = zaddr.RowBase(target)
	e.searchOffset = zaddr.RowOffset(target)
	e.searchBlocked = false
	e.missDet.Restart()
}

// wrongPath models the lookahead pipeline running down the mispredicted
// path during the restart window: it searches rows starting at the wrong
// continuation address, feeding the (speculative) miss detector and
// issuing wrong-path prefetches — pollution the paper's C++ model
// captures by simulating wrong-path execution. The path history is not
// advanced (Resolve repairs it with the correct outcome afterwards).
func (e *Engine) wrongPath(in trace.Inst, p *core.Prediction) {
	if !e.params.ModelWrongPath {
		return
	}
	// The wrong continuation: where the (incorrect) prediction steered
	// fetch. Wrong direction taken->NT walks the fall-through; NT->taken
	// or wrong target walks the bogus target.
	wrong := in.FallThrough()
	if p.Taken {
		wrong = p.Target
	}
	now := e.now()
	// The pipeline has roughly the restart penalty's worth of cycles to
	// chase the wrong path at the sequential search rate.
	rows := e.params.MispredictPenalty * predictor.TicksPerCycle /
		int(e.params.Throughput.SeqSearchPerRow)
	if rows <= 0 {
		return
	}
	if rows > leadRows {
		rows = leadRows
	}
	line := zaddr.RowBase(wrong)
	offset := zaddr.RowOffset(wrong)
	e.missDet.Restart()
	for i := 0; i < rows; i++ {
		probe := line + zaddr.Addr(offset)
		found, _ := e.hier.SearchLine(probe, now)
		if e.hcfg.MissMode.Speculative() {
			if anchor, miss := e.missDet.ObserveSearch(probe, found); miss {
				// A wrong-path speculative miss: pollutes the trackers.
				e.hier.ReportBTB1Miss(anchor, now)
			}
		}
		if found {
			// The wrong path would predict and redirect here; without
			// knowing the phantom outcome, stop the walk.
			break
		}
		line += zaddr.RowBytes
		offset = 0
	}
	// Wrong-path instruction fetches disturb the L1I like real ones.
	e.l1i.Prefetch(zaddr.Align(wrong, uint64(e.params.L1I.LineBytes)))
	e.missDet.Restart()
}

// restart re-synchronizes the search pipeline with decode after a
// misprediction or surprise redirect ("upon a restart condition ... both
// instruction fetching and branch prediction start at the same
// instruction address").
func (e *Engine) restart(in trace.Inst) {
	next := in.NextAddr()
	e.searchLine = zaddr.RowBase(next)
	e.searchOffset = zaddr.RowOffset(next)
	e.searchBlocked = false
	e.missDet.Restart()
	e.bpClock = e.clock
	e.havePrevTaken = false
	e.lastNTValid = false
}

// Run is the package-level convenience: build an engine and run one
// trace.
func Run(src trace.Source, hcfg core.Config, params Params, configName string) Result {
	return New(hcfg, params).Run(src, configName)
}
