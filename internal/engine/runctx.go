package engine

import (
	"context"
	"fmt"

	"bulkpreload/internal/trace"
)

// The service-facing run entry points. zsimd executes jobs with
// per-job deadlines and must survive SIGTERM mid-trace, so these
// variants of Run/Resume poll a context between records and, when
// canceled, hand the engine's exact stopping state to the configured
// CheckpointSink before returning — the job resumes from that record
// boundary instead of restarting. The stepping itself is byte-for-byte
// the serial Run loop: a run that is never canceled returns a Result
// bit-identical to Run's, and a resumed run is bit-identical to
// Resume's, which is what lets the load testbed hold recovered jobs
// against the serial checkpoint+resume oracle.

// DefaultCancelPoll is how many records RunContext steps between
// context polls when pollEvery <= 0. Small enough that a deadline or
// drain lands within microseconds of simulated work, large enough that
// the poll is invisible next to the per-record stepping cost.
const DefaultCancelPoll = 1024

// ErrRunCanceled reports a run stopped by its context. Use errors.Is;
// the returned error also wraps the context's own cause
// (context.Canceled or context.DeadlineExceeded).
var ErrRunCanceled = fmt.Errorf("engine: run canceled")

// RunContext is Run with cooperative cancellation: every pollEvery
// records it checks ctx and, once ctx is done, stops at the current
// record boundary. If a CheckpointSink is configured the engine's state
// at that exact boundary is checkpointed to it first, so no progress is
// lost. The returned error wraps both ErrRunCanceled and ctx's error;
// the partial Result carries whatever was committed before the stop and
// must not be reported as a finished run.
func (e *Engine) RunContext(ctx context.Context, src trace.Source, configName string, pollEvery int) (Result, error) {
	e.reset()
	src.Reset()
	e.res.Trace = src.Name()
	e.res.Config = configName
	return e.runLoop(ctx, src, pollEvery)
}

// ResumeContext is Resume with the same cooperative cancellation as
// RunContext: the checkpoint prefix is skipped, then the remainder is
// simulated with a context poll every pollEvery records. A canceled
// resume re-checkpoints at its stopping boundary (strictly later than
// ck), so repeated interrupt/resume cycles ratchet forward.
func (e *Engine) ResumeContext(ctx context.Context, src trace.Source, ck *Checkpoint, pollEvery int) (Result, error) {
	e.reset()
	src.Reset()
	if n := src.Name(); n != ck.Trace {
		return Result{}, fmt.Errorf("engine: resume trace %q does not match checkpoint trace %q", n, ck.Trace)
	}
	if err := e.restore(ck); err != nil {
		return Result{}, err
	}
	for skipped := int64(0); skipped < ck.Instructions; skipped++ {
		if _, ok := src.Next(); !ok {
			return Result{}, fmt.Errorf("engine: trace ended after %d records while skipping the %d-record checkpoint prefix",
				skipped, ck.Instructions)
		}
	}
	return e.runLoop(ctx, src, pollEvery)
}

// runLoop steps src to completion or cancellation. Shared tail of
// RunContext and ResumeContext.
func (e *Engine) runLoop(ctx context.Context, src trace.Source, pollEvery int) (Result, error) {
	if pollEvery <= 0 {
		pollEvery = DefaultCancelPoll
	}
	sincePoll := 0
	for {
		if sincePoll >= pollEvery {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				if e.params.CheckpointSink != nil {
					e.params.CheckpointSink(e.Checkpoint())
				}
				return e.res, fmt.Errorf("%w after %d records: %w", ErrRunCanceled, e.res.Instructions, err)
			}
		}
		in, ok := src.Next()
		if !ok {
			break
		}
		e.step(in)
		sincePoll++
	}
	e.finishResult()
	return e.res, nil
}
