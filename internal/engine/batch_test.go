package engine

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// batchProfile is a workload small enough to run dozens of times in the
// equivalence tests yet rich enough to exercise every step side effect
// (surprises, transfers, search restarts).
func batchProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "batch-eq", UniqueBranches: 6_000, TakenFraction: 0.64,
		Instructions: 60_000, HotFraction: 0.15, WindowFunctions: 32,
		CallsPerTransaction: 6, Seed: seed,
	}
}

// requireResultsEqual fails the test with a field-level report unless
// the two results are bit-identical, including the final metric
// snapshot and every interval snapshot.
func requireResultsEqual(t *testing.T, label string, serial, batched Result) {
	t.Helper()
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(batched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, bj) {
		t.Errorf("%s: result fields differ\n  serial:  %s\n  batched: %s", label, sj, bj)
	}
	if (serial.Metrics == nil) != (batched.Metrics == nil) {
		t.Fatalf("%s: metrics present in one path only", label)
	}
	if serial.Metrics != nil {
		for _, d := range obs.Diff(*serial.Metrics, *batched.Metrics) {
			t.Errorf("%s: metrics: %s", label, d)
		}
	}
	if len(serial.Snapshots) != len(batched.Snapshots) {
		t.Fatalf("%s: snapshot count %d != %d", label, len(serial.Snapshots), len(batched.Snapshots))
	}
	for k := range serial.Snapshots {
		for _, d := range obs.Diff(serial.Snapshots[k], batched.Snapshots[k]) {
			t.Errorf("%s: interval snapshot %d: %s", label, k, d)
		}
	}
}

// TestRunBatchedMatchesRun proves the batched stepping path — including
// the non-branch bulk fast path — is bit-identical to the
// record-at-a-time loop, with warmup, interval snapshots, and
// checkpoints all armed so every counter-triggered boundary lands
// inside batches.
func TestRunBatchedMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Params, *int)
	}{
		{"plain", func(p *Params, _ *int) {}},
		{"warmup", func(p *Params, _ *int) { p.WarmupInstructions = 10_000 }},
		{"snapshots", func(p *Params, _ *int) { p.SnapshotInterval = 7_000 }},
		{"checkpoints", func(p *Params, ckpts *int) {
			p.CheckpointInterval = 9_000
			p.CheckpointSink = func(*Checkpoint) { *ckpts++ }
		}},
		{"everything", func(p *Params, ckpts *int) {
			p.WarmupInstructions = 10_000
			p.SnapshotInterval = 7_000
			p.CheckpointInterval = 9_000
			p.CheckpointSink = func(*Checkpoint) { *ckpts++ }
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, cfg := range []struct {
				name string
				c    core.Config
			}{
				{"one-level", core.OneLevelConfig()},
				{"btb2", core.DefaultConfig()},
			} {
				serialCkpts, batchCkpts := 0, 0

				params := DefaultParams()
				params.WarmupInstructions = 0
				tc.mutate(&params, &serialCkpts)
				serial := New(cfg.c, params).Run(workload.New(batchProfile(4242)), cfg.name)

				params = DefaultParams()
				params.WarmupInstructions = 0
				tc.mutate(&params, &batchCkpts)
				batched := New(cfg.c, params).RunBatched(workload.New(batchProfile(4242)), cfg.name)

				requireResultsEqual(t, tc.name+"/"+cfg.name, serial, batched)
				if serialCkpts != batchCkpts {
					t.Errorf("%s/%s: checkpoint count %d != %d", tc.name, cfg.name, serialCkpts, batchCkpts)
				}
			}
		})
	}
}

// TestStepBatchArbitrarySplits feeds the same trace through StepBatch in
// deliberately awkward chunk sizes (1, primes, the full trace) and
// demands the same answer every time — batch boundaries must be
// invisible.
func TestStepBatchArbitrarySplits(t *testing.T) {
	params := DefaultParams()
	params.WarmupInstructions = 10_000
	params.SnapshotInterval = 7_000
	ins := trace.Collect(workload.New(batchProfile(777)))

	ref := New(core.DefaultConfig(), params).Run(trace.NewSliceSource("splits", ins), "btb2")

	for _, chunk := range []int{1, 7, 97, 1024, len(ins)} {
		e := New(core.DefaultConfig(), params)
		e.reset()
		e.res.Trace, e.res.Config = "splits", "btb2"
		for lo := 0; lo < len(ins); lo += chunk {
			hi := lo + chunk
			if hi > len(ins) {
				hi = len(ins)
			}
			e.StepBatch(ins[lo:hi])
		}
		e.finishResult()
		requireResultsEqual(t, "chunk="+strconv.Itoa(chunk), ref, e.res)
	}
}

// TestBulkFastPathFires measures how often stepBulkOK accepts on a real
// workload: equivalence proofs are vacuous if the fast path never
// fires, so a workload with sequential non-branch runs must show hits.
func TestBulkFastPathFires(t *testing.T) {
	params := DefaultParams()
	params.WarmupInstructions = 0
	ins := trace.Collect(workload.New(batchProfile(99)))
	e := New(core.DefaultConfig(), params)
	e.reset()
	hits := 0
	for i := range ins {
		if e.stepBulkOK(&ins[i], e.res.Instructions) {
			hits++
		}
		e.step(ins[i])
	}
	if hits == 0 {
		t.Fatal("bulk fast path never fired on a real workload")
	}
	t.Logf("bulk fast path accepted %d of %d instructions (%.1f%%)",
		hits, len(ins), 100*float64(hits)/float64(len(ins)))
}

// TestRunBatchedDegenerateBatches covers sources shorter than one batch
// and empty sources.
func TestRunBatchedDegenerateBatches(t *testing.T) {
	params := DefaultParams()
	params.WarmupInstructions = 0

	empty := trace.NewSliceSource("empty", nil)
	res := New(core.DefaultConfig(), params).RunBatched(empty, "btb2")
	if res.Instructions != 0 {
		t.Fatalf("empty source simulated %d instructions", res.Instructions)
	}

	tiny := trace.Collect(workload.New(batchProfile(5)))[:3]
	serial := New(core.DefaultConfig(), params).Run(trace.NewSliceSource("tiny", tiny), "btb2")
	batched := New(core.DefaultConfig(), params).RunBatched(trace.NewSliceSource("tiny", tiny), "btb2")
	requireResultsEqual(t, "tiny", serial, batched)
}
