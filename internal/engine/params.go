// Package engine is the cycle-approximate, trace-driven model of the
// zEC12 core surrounding the branch predictor — the role the authors'
// proprietary C++ performance model plays in the paper (Section 4). It
// executes an instruction trace, drives the asynchronous-lookahead search
// pipeline, the BTB1-miss detector, the I-cache (finite L1, optionally a
// finite L2 for Figure 3's "hardware mode"), applies the Table 1
// throughput rules and penalty accounting, and classifies every branch
// outcome per Figure 4's taxonomy.
//
// The model is deliberately relative-accuracy oriented: absolute CPI is
// parameterized (Params) and uncalibrated, but the CPI *deltas* between
// configurations — the paper's reported quantity — derive from the same
// mechanisms the paper describes: surprise-branch redirect penalties and
// instruction-cache miss exposure.
package engine

import (
	"fmt"

	"bulkpreload/internal/cache"
	"bulkpreload/internal/core"
	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/obs/span"
	"bulkpreload/internal/predictor"
)

// Params fixes the core timing model. All penalties are in cycles.
type Params struct {
	// DispatchTicks is the steady-state cost of one instruction in ticks
	// (12 ticks = 1 cycle): the base CPI absent all modeled penalties.
	// The default 9 (0.75 cycles/instruction) reflects a superscalar
	// core that still stalls on dependences.
	DispatchTicks predictor.Ticks

	// MispredictPenalty is the restart cost of a resolved-wrong branch:
	// wrong dynamic direction, wrong target, or a surprise resolved
	// opposite to its static guess (discovered at execute).
	MispredictPenalty int

	// SurpriseTakenPenalty is the decode-time redirect cost of a surprise
	// branch correctly guessed taken: the target is computed at decode,
	// so the pipeline refetches without waiting for execute.
	SurpriseTakenPenalty int

	// L1IMissPenalty is the demand L1I miss cost when the next level
	// hits. The paper's simulations model L2+ as infinite, so this is
	// the only I-cache penalty in "simulation mode".
	L1IMissPenalty int

	// L2IMissPenalty is the additional cost when the finite L2I also
	// misses; only applied in hardware mode (FiniteL2).
	L2IMissPenalty int

	// MaxLeadCycles caps how far the lookahead predictor may run ahead of
	// decode (prediction-queue depth).
	MaxLeadCycles int

	// PredictionSlack is the number of cycles a prediction may trail the
	// ideal lookahead point and still steer the branch at decode: the
	// fetch-to-decode pipeline depth. Predictions later than this are
	// latency surprises.
	PredictionSlack int

	// WarmupInstructions are executed normally but excluded from the
	// reported cycle and outcome counts, like the paper's representative
	// trace snippets that start with warm predictors. If a trace is
	// shorter than the warmup, everything is counted.
	WarmupInstructions int64

	// Throughput is the Table 1 prediction-rate set.
	Throughput predictor.Throughput

	// L1I is the first-level instruction cache geometry.
	L1I cache.Config

	// FiniteL2 enables the finite second-level instruction cache
	// (hardware mode, Figure 3); otherwise every L1I miss hits beyond.
	FiniteL2 bool
	L2I      cache.Config

	// ModelWrongPath lets the lookahead search pipeline run down the
	// mispredicted path during the restart penalty window, as the
	// paper's C++ model does ("wrong path execution is modeled"): the
	// off-path searches pollute the miss detector, the BTB2 trackers and
	// the I-cache prefetch stream, and the path history is repaired at
	// restart.
	ModelWrongPath bool

	// EventTracer, when non-nil, receives every hierarchy event of the
	// run (see core.Tracer). For observability tooling; adds inline
	// call overhead.
	EventTracer core.Tracer `json:"-"`

	// SnapshotInterval, when positive, makes the engine capture a full
	// registry snapshot every SnapshotInterval committed instructions
	// (and once at the end of the run) into Result.Snapshots, enabling
	// phase timelines over long simulations. It also switches the
	// hierarchy's detail metrics on (promotion age, miss-to-install).
	SnapshotInterval int64

	// SnapshotSink, when non-nil, additionally receives each interval
	// snapshot as it is taken — e.g. obs.(*Live).Publish for live HTTP
	// introspection of a running simulation.
	SnapshotSink func(obs.Snapshot) `json:"-"`

	// Fault configures soft-error injection into the predictor arrays
	// for this run, overriding any fault configuration already in the
	// hierarchy config (the hierarchy config stays the canonical place;
	// this knob exists so studies can sweep fault rates without forking
	// configs). The zero value leaves the hierarchy config untouched.
	Fault fault.Config

	// CheckpointInterval, when positive, makes the engine capture a
	// checkpoint of the simulation state every CheckpointInterval
	// committed instructions, feeding each to CheckpointSink. Long runs
	// resume from the latest one after a crash (see Engine.Resume).
	CheckpointInterval int64

	// CheckpointSink receives each interval checkpoint. Required when
	// CheckpointInterval is positive (a checkpoint nobody persists is
	// pure overhead).
	CheckpointSink func(*Checkpoint) `json:"-"`

	// Spans, when non-nil, receives hierarchical span events from the
	// batched stepping path: one phase span per warmup/steady region and
	// one batch span per StepBatch call, with bulk/slow fast-path
	// attribution. The recorder is goroutine-local like the obs registry
	// — it must belong to the goroutine calling RunBatched. Span data
	// measures host wall time and never reaches Result or the metrics
	// registry (the serial-oracle differential gate compares those
	// bit-for-bit). Nil disables tracing at zero cost.
	Spans *span.Recorder `json:"-"`

	// SpanParent is the span the run's phase spans attach under (the
	// scheduler's unit span); zero makes them roots.
	SpanParent span.ID `json:"-"`
}

// DefaultParams returns the simulation-mode parameter set used throughout
// the experiments.
func DefaultParams() Params {
	return Params{
		DispatchTicks:        9, // 0.75 cycles/instruction base
		MispredictPenalty:    24,
		SurpriseTakenPenalty: 10,
		L1IMissPenalty:       15,
		L2IMissPenalty:       60,
		MaxLeadCycles:        40,
		PredictionSlack:      8,
		WarmupInstructions:   100_000,
		ModelWrongPath:       true,
		Throughput:           predictor.DefaultThroughput,
		L1I:                  cache.L1IConfig,
		L2I:                  cache.L2IConfig,
	}
}

// HardwareParams returns the Figure 3 "hardware mode": identical to
// DefaultParams but with the finite L2I enabled, exposing miss penalties
// the BTB2 cannot remove and shrinking its relative gain, as measured on
// the real machine.
func HardwareParams() Params {
	p := DefaultParams()
	p.FiniteL2 = true
	return p
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	if p.DispatchTicks <= 0 {
		return fmt.Errorf("engine: DispatchTicks must be positive")
	}
	if p.MispredictPenalty < 0 || p.SurpriseTakenPenalty < 0 ||
		p.L1IMissPenalty < 0 || p.L2IMissPenalty < 0 {
		return fmt.Errorf("engine: penalties must be non-negative")
	}
	if p.MaxLeadCycles <= 0 {
		return fmt.Errorf("engine: MaxLeadCycles must be positive")
	}
	if p.PredictionSlack < 0 || p.WarmupInstructions < 0 {
		return fmt.Errorf("engine: PredictionSlack and WarmupInstructions must be non-negative")
	}
	if p.SnapshotInterval < 0 {
		return fmt.Errorf("engine: SnapshotInterval must be non-negative")
	}
	if p.CheckpointInterval < 0 {
		return fmt.Errorf("engine: CheckpointInterval must be non-negative")
	}
	if p.CheckpointInterval > 0 && p.CheckpointSink == nil {
		return fmt.Errorf("engine: CheckpointInterval set without a CheckpointSink")
	}
	if err := p.Fault.Validate(); err != nil {
		return err
	}
	if err := p.Throughput.Validate(); err != nil {
		return err
	}
	if err := p.L1I.Validate(); err != nil {
		return err
	}
	if p.FiniteL2 {
		if err := p.L2I.Validate(); err != nil {
			return err
		}
	}
	return nil
}
