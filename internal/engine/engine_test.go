package engine

import (
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
	"bulkpreload/internal/zaddr"
)

// fastParams returns parameters with no warmup so tiny directed traces
// report everything.
func fastParams() Params {
	p := DefaultParams()
	p.WarmupInstructions = 0
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := HardwareParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.DispatchTicks = 0 },
		func(p *Params) { p.MispredictPenalty = -1 },
		func(p *Params) { p.MaxLeadCycles = 0 },
		func(p *Params) { p.PredictionSlack = -1 },
		func(p *Params) { p.WarmupInstructions = -1 },
		func(p *Params) { p.Throughput.TakenLoop = 0 },
		func(p *Params) { p.L1I.SizeBytes = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// FiniteL2 with bad L2 config must fail.
	p := HardwareParams()
	p.L2I.SizeBytes = 0
	if err := p.Validate(); err == nil {
		t.Error("bad L2 accepted in hardware mode")
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid params")
		}
	}()
	New(core.DefaultConfig(), Params{})
}

func TestSingleTakenLoopMostlyGood(t *testing.T) {
	// A single-branch loop: after warmup installs, every iteration is a
	// correct dynamic prediction.
	src := workload.KernelSingleTakenLoop(5000)
	r := Run(src, core.OneLevelConfig(), fastParams(), "test")
	if r.Instructions != int64(src.Len()) {
		t.Fatalf("instructions = %d", r.Instructions)
	}
	goodRate := r.Outcomes.Rate(stats.GoodPredicted)
	if goodRate < 0.95 {
		t.Errorf("good prediction rate = %.3f, want > 0.95 on a tight loop", goodRate)
	}
	if r.CPI() <= 0 {
		t.Error("non-positive CPI")
	}
}

func TestBranchlessRunHasNoBadBranches(t *testing.T) {
	src := workload.KernelBranchlessRun(2048, 20)
	r := Run(src, core.OneLevelConfig(), fastParams(), "test")
	// Only the loop-back branch exists; after the first iterations it is
	// predicted. Bad outcomes should be a handful at most.
	if r.Outcomes.Bad() > 5 {
		t.Errorf("bad outcomes = %d on branchless code", r.Outcomes.Bad())
	}
	// The run should have triggered speculative BTB1 misses (cold code,
	// no branches), demonstrating Section 3.4's false-miss caveat.
	if r.MissesReported == 0 {
		t.Error("branchless run never tripped the speculative miss detector")
	}
}

func TestColdSweepBTB2RecoversSecondPass(t *testing.T) {
	// Two sweeps over 48 blocks (~768 branch sites, exceeding the 4k?
	// no — exceeding nothing, but evicted from BTBP between sweeps due
	// to distance). Compare bad capacity outcomes with and without BTB2.
	src := workload.KernelColdCodeSweep(48, 4)
	params := fastParams()
	noBTB2 := Run(src, core.OneLevelConfig(), params, "c1")
	withBTB2 := Run(src, core.DefaultConfig(), params, "c2")
	if withBTB2.Outcomes.N[stats.BadSurpriseCapacity] > noBTB2.Outcomes.N[stats.BadSurpriseCapacity] {
		t.Errorf("BTB2 increased capacity surprises: %d vs %d",
			withBTB2.Outcomes.N[stats.BadSurpriseCapacity],
			noBTB2.Outcomes.N[stats.BadSurpriseCapacity])
	}
	if withBTB2.Hier.TransferredHits == 0 {
		t.Error("cold sweep produced no bulk transfers")
	}
}

func TestCapacityPressureOrdering(t *testing.T) {
	// The defining Figure 2 relationship on a capacity-bound workload:
	// CPI(large BTB1) <= CPI(BTB2) <= CPI(no BTB2).
	p := workload.Profile{
		Name: "cap-test", UniqueBranches: 30_000, TakenFraction: 0.7,
		Instructions: 600_000, HotFraction: 0.1, WindowFunctions: 64,
		CallsPerTransaction: 8, Seed: 99,
	}
	params := DefaultParams()
	params.WarmupInstructions = 100_000
	base := Run(workload.New(p), core.OneLevelConfig(), params, "c1")
	btb2 := Run(workload.New(p), core.DefaultConfig(), params, "c2")
	large := Run(workload.New(p), core.LargeOneLevelConfig(), params, "c3")
	if !(btb2.CPI() < base.CPI()) {
		t.Errorf("BTB2 did not improve CPI: %.4f vs %.4f", btb2.CPI(), base.CPI())
	}
	if !(large.CPI() < base.CPI()) {
		t.Errorf("large BTB1 did not improve CPI: %.4f vs %.4f", large.CPI(), base.CPI())
	}
	// And capacity surprises must shrink in that order.
	c1 := base.Outcomes.N[stats.BadSurpriseCapacity]
	c2 := btb2.Outcomes.N[stats.BadSurpriseCapacity]
	c3 := large.Outcomes.N[stats.BadSurpriseCapacity]
	if !(c2 < c1 && c3 < c1) {
		t.Errorf("capacity surprises not reduced: base %d btb2 %d large %d", c1, c2, c3)
	}
}

func TestImprovementMetric(t *testing.T) {
	a := Result{Instructions: 100, Cycles: 200}
	b := Result{Instructions: 100, Cycles: 150}
	if got := b.Improvement(a); got != 25 {
		t.Errorf("Improvement = %v, want 25", got)
	}
	if (Result{}).Improvement(Result{}) != 0 {
		t.Error("zero-division not guarded")
	}
	if (Result{Instructions: 0, Cycles: 10}).CPI() != 0 {
		t.Error("CPI zero-division not guarded")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestWarmupExcluded(t *testing.T) {
	src := workload.KernelSingleTakenLoop(50_000) // 100k instructions
	p := fastParams()
	p.WarmupInstructions = 150_000 // longer than trace: everything counted
	all := Run(src, core.OneLevelConfig(), p, "t")
	p.WarmupInstructions = 50_000
	warm := Run(src, core.OneLevelConfig(), p, "t")
	if all.Instructions != int64(src.Len()) {
		t.Errorf("over-long warmup dropped instructions: %d", all.Instructions)
	}
	if warm.Instructions != int64(src.Len())-50_000 {
		t.Errorf("warmup not subtracted: %d", warm.Instructions)
	}
	// Steady-state CPI (warm) must be no worse than cold-start CPI.
	if warm.CPI() > all.CPI()+0.01 {
		t.Errorf("warm CPI %.4f worse than cold %.4f", warm.CPI(), all.CPI())
	}
}

func TestHardwareModeSlower(t *testing.T) {
	// Finite L2 can only add cycles.
	p := workload.Profile{
		Name: "hw-test", UniqueBranches: 8_000, TakenFraction: 0.7,
		Instructions: 200_000, HotFraction: 0.1, WindowFunctions: 32,
		CallsPerTransaction: 6, Seed: 7,
	}
	simR := Run(workload.New(p), core.DefaultConfig(), DefaultParams(), "sim")
	hwR := Run(workload.New(p), core.DefaultConfig(), HardwareParams(), "hw")
	if hwR.CPI() < simR.CPI() {
		t.Errorf("hardware mode faster than simulation mode: %.4f vs %.4f", hwR.CPI(), simR.CPI())
	}
	if hwR.L2I.Accesses == 0 {
		t.Error("hardware mode never touched the L2I")
	}
}

func TestRunResetsBetweenTraces(t *testing.T) {
	e := New(core.OneLevelConfig(), fastParams())
	src := workload.KernelSingleTakenLoop(1000)
	r1 := e.Run(src, "a")
	r2 := e.Run(src, "b")
	if r1.Instructions != r2.Instructions || r1.Cycles != r2.Cycles {
		t.Errorf("runs differ despite reset: %v vs %v cycles", r1.Cycles, r2.Cycles)
	}
	if r1.Outcomes != r2.Outcomes {
		t.Error("outcome counts differ across reset")
	}
}

func TestDeterminism(t *testing.T) {
	p := workload.Profile{
		Name: "det", UniqueBranches: 3000, TakenFraction: 0.6,
		Instructions: 100_000, HotFraction: 0.2, WindowFunctions: 16,
		CallsPerTransaction: 4, Seed: 5,
	}
	r1 := Run(workload.New(p), core.DefaultConfig(), DefaultParams(), "x")
	r2 := Run(workload.New(p), core.DefaultConfig(), DefaultParams(), "x")
	if r1.Cycles != r2.Cycles || r1.Outcomes != r2.Outcomes {
		t.Error("simulation is nondeterministic")
	}
}

func TestOutcomeTotalsMatchBranchCount(t *testing.T) {
	src := workload.KernelColdCodeSweep(8, 3)
	st := trace.Measure(src)
	r := Run(src, core.DefaultConfig(), fastParams(), "t")
	if r.Outcomes.Total() != st.Branches {
		t.Errorf("outcomes %d != dynamic branches %d", r.Outcomes.Total(), st.Branches)
	}
}

func TestPrefetchHidesTargetMisses(t *testing.T) {
	// A cycle of taken branches hopping across more 256-byte lines than
	// the 64 KB L1I holds: once the branches are warm in the BTB, each
	// predicted-taken target line is gone from the L1I and must be
	// prefetched by the lookahead predictor.
	const sites = 600 // > 256 L1I lines
	var ins []trace.Inst
	// 544-byte stride: coprime with the BTBP's 128-row indexing, so the
	// 600 sites spread across rows instead of thrashing a few of them.
	site := func(i int) zaddr.Addr { return zaddr.Addr(0x100000 + i*544) }
	for rep := 0; rep < 6; rep++ {
		for i := 0; i < sites; i++ {
			// A few sequential instructions keep decode busy long enough
			// for the predictor to stay ahead (back-to-back taken
			// branches saturate the Table 1 rates, as on hardware).
			for k := 0; k < 4; k++ {
				ins = append(ins, trace.Inst{
					Addr: site(i) + zaddr.Addr(4*k), Length: 4, Kind: trace.NotBranch,
				})
			}
			ins = append(ins, trace.Inst{
				Addr: site(i) + 16, Length: 4, Kind: trace.UncondDirect,
				Taken: true, Target: site((i + 1) % sites), StaticTaken: true,
			})
		}
	}
	r := Run(trace.NewSliceSource("line-hopper", ins), core.OneLevelConfig(), fastParams(), "t")
	if r.L1I.Prefetches == 0 {
		t.Error("no prefetches issued for predicted-taken targets")
	}
}

func TestDecodeSurpriseMissMode(t *testing.T) {
	// In decode-surprise mode, the speculative detector is off: misses
	// are reported only when surprise branches are encountered, and they
	// launch full searches (no I-cache filter involvement).
	src := workload.KernelColdCodeSweep(24, 3)
	cfg := core.DefaultConfig()
	cfg.MissMode = core.MissDecodeSurprise
	r := Run(src, cfg, fastParams(), "decode")
	if r.MissesReported != 0 {
		t.Errorf("speculative detector reported %d misses in decode mode", r.MissesReported)
	}
	if r.Tracker.BTB1Misses == 0 {
		t.Error("decode-surprise mode never reported misses to the trackers")
	}
	if r.Hier.TransferredHits == 0 {
		t.Error("decode-surprise mode produced no transfers")
	}
	// Partial searches exist only for speculative misses.
	if r.Tracker.Partial != 0 {
		t.Errorf("decode-surprise mode launched %d partial searches", r.Tracker.Partial)
	}
}

func TestMissModeBothCombines(t *testing.T) {
	src := workload.KernelColdCodeSweep(24, 3)
	cfg := core.DefaultConfig()
	cfg.MissMode = core.MissBoth
	r := Run(src, cfg, fastParams(), "both")
	if r.MissesReported == 0 {
		t.Error("speculative detector inactive in both-mode")
	}
	if r.Tracker.BTB1Misses <= r.MissesReported {
		t.Errorf("decode reports missing: tracker saw %d, detector %d",
			r.Tracker.BTB1Misses, r.MissesReported)
	}
}

func TestPreloadHintsReduceSurprises(t *testing.T) {
	// A hinted workload installs its branches via preload instructions;
	// bad surprises must drop relative to the unhinted twin even though
	// the hinted trace executes extra (hint) instructions.
	plain := workload.Profile{
		Name: "hint-test", UniqueBranches: 15_000, TakenFraction: 0.7,
		Instructions: 250_000, HotFraction: 0.1, WindowFunctions: 48,
		CallsPerTransaction: 8, Seed: 12,
	}
	hinted := plain
	hinted.PreloadHints = true
	params := DefaultParams()
	params.WarmupInstructions = 50_000
	rPlain := Run(workload.New(plain), core.OneLevelConfig(), params, "plain")
	rHinted := Run(workload.New(hinted), core.OneLevelConfig(), params, "hinted")
	if rHinted.Hier.PreloadInstalls == 0 {
		t.Fatal("no preload installs executed")
	}
	plainBad := rPlain.Outcomes.BadSurprises()
	hintedBad := rHinted.Outcomes.BadSurprises()
	// Compare rates (instruction counts differ).
	plainRate := float64(plainBad) / float64(rPlain.Instructions)
	hintedRate := float64(hintedBad) / float64(rHinted.Instructions)
	if hintedRate >= plainRate {
		t.Errorf("hints did not reduce bad-surprise rate: %.4f vs %.4f", hintedRate, plainRate)
	}
}

func TestMultiBlockChaseRuns(t *testing.T) {
	// A realistic workload's functions call across 4 KB blocks, so bulk
	// transfers surface clusters of cross-block targets for the chase to
	// follow (a single stray jump is below the evidence threshold).
	p := workload.Profile{
		Name: "chase-test", UniqueBranches: 15_000, TakenFraction: 0.7,
		Instructions: 250_000, HotFraction: 0.1, WindowFunctions: 48,
		CallsPerTransaction: 8, Seed: 12,
	}
	cfg := core.DefaultConfig()
	cfg.MultiBlockTransfer = true
	r := Run(workload.New(p), cfg, fastParams(), "chase")
	if r.Hier.ChainedSearches == 0 {
		t.Error("multi-block transfer never chased")
	}
}

func TestWrongPathPollution(t *testing.T) {
	// With wrong-path modeling on, the trackers see extra (polluting)
	// miss reports from mispredicted-path searches.
	p := workload.Profile{
		Name: "wp-test", UniqueBranches: 15_000, TakenFraction: 0.7,
		Instructions: 250_000, HotFraction: 0.1, WindowFunctions: 48,
		CallsPerTransaction: 8, Seed: 12,
	}
	on := DefaultParams()
	on.WarmupInstructions = 0
	off := on
	off.ModelWrongPath = false
	rOn := Run(workload.New(p), core.DefaultConfig(), on, "wp-on")
	rOff := Run(workload.New(p), core.DefaultConfig(), off, "wp-off")
	if rOn.Tracker.BTB1Misses <= rOff.Tracker.BTB1Misses {
		t.Errorf("wrong-path modeling added no tracker pollution: %d vs %d",
			rOn.Tracker.BTB1Misses, rOff.Tracker.BTB1Misses)
	}
	// Outcome counts are identical — wrong path perturbs timing and
	// contents, not the committed branch stream.
	if rOn.Outcomes.Total() != rOff.Outcomes.Total() {
		t.Error("wrong-path modeling changed committed branch count")
	}
}

func TestPHTLearnsAlternatingBranch(t *testing.T) {
	// An alternating branch defeats the bimodal counter (~50-100%
	// mispredicts) but the PHT's direction history disambiguates it.
	src := workload.KernelAlternating(4000)
	withPHT := core.OneLevelConfig()
	noPHT := core.OneLevelConfig()
	noPHT.PHTEntries = 0
	rPHT := Run(src, withPHT, fastParams(), "pht")
	rNo := Run(src, noPHT, fastParams(), "no-pht")
	mPHT := rPHT.Outcomes.Mispredicted()
	mNo := rNo.Outcomes.Mispredicted()
	if mPHT*2 >= mNo {
		t.Errorf("PHT did not help the alternating branch: %d vs %d mispredicts", mPHT, mNo)
	}
	if rPHT.Hier.PHTOverrides == 0 {
		t.Error("PHT never engaged")
	}
}

func TestCTBLearnsCorrelatedReturn(t *testing.T) {
	// A return alternating between two call sites mispredicts its target
	// with the plain BTB entry; the path-indexed CTB learns both.
	src := workload.KernelCallerCorrelatedReturn(4000)
	withCTB := core.OneLevelConfig()
	noCTB := core.OneLevelConfig()
	noCTB.CTBEntries = 0
	rCTB := Run(src, withCTB, fastParams(), "ctb")
	rNo := Run(src, noCTB, fastParams(), "no-ctb")
	wCTB := rCTB.Outcomes.N[stats.BadWrongTarget]
	wNo := rNo.Outcomes.N[stats.BadWrongTarget]
	if wCTB*2 >= wNo {
		t.Errorf("CTB did not help the correlated return: %d vs %d wrong targets", wCTB, wNo)
	}
	if rCTB.Hier.CTBOverrides == 0 {
		t.Error("CTB never engaged")
	}
}

func TestFITAcceleratesSmallChain(t *testing.T) {
	// An 8-site taken chain fits the 64-entry FIT: with the FIT the
	// predictor sustains the 2-cycle rate and stays ahead of decode;
	// without it, the 3-4 cycle rates fall behind and latency surprises
	// appear.
	src := workload.KernelTakenChain(8, 4000)
	withFIT := core.OneLevelConfig()
	noFIT := core.OneLevelConfig()
	noFIT.FITEntries = 0
	rFIT := Run(src, withFIT, fastParams(), "fit")
	rNo := Run(src, noFIT, fastParams(), "no-fit")
	if rFIT.CPI() > rNo.CPI() {
		t.Errorf("FIT made the chain slower: %.4f vs %.4f", rFIT.CPI(), rNo.CPI())
	}
}
