package engine

import (
	"bulkpreload/internal/core"
	"bulkpreload/internal/obs/span"
	"bulkpreload/internal/predictor"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// Batched stepping: the engine's hot loop consumes whole record batches
// instead of one Source.Next interface call per instruction, and
// collapses runs of non-branch instructions whose per-record work
// provably degenerates to counter and clock updates into a single bulk
// update. The bulk conditions are exact — the differential gate in
// internal/sim proves batched and record-at-a-time runs produce
// bit-identical results, including full metric snapshots.

// StepBatch processes a batch of committed instructions, equivalent to
// calling step once per record. Runs of consecutive non-branch
// instructions that satisfy stepBulkOK are applied in bulk: one
// instruction-counter add, one clock add (Ticks are integer, so k adds
// of DispatchTicks equal one add of k*DispatchTicks exactly), and one
// batched steering observe.
//
//zbp:hotpath
func (e *Engine) StepBatch(ins []trace.Inst) {
	i := 0
	for i < len(ins) {
		j := i
		for j < len(ins) && e.stepBulkOK(&ins[j], e.res.Instructions+int64(j-i)) {
			j++
		}
		if j > i {
			k := int64(j - i)
			e.res.Instructions += k
			e.clock += e.params.DispatchTicks * predictor.Ticks(k)
			e.hier.ObserveCompleteBatch(ins[i:j])
			e.bulkRecords += k
			i = j
			continue
		}
		e.step(ins[i])
		e.slowRecords++
		i++
	}
}

// stepBulkOK reports whether in may take the bulk fast path: every side
// effect of step must reduce to Instructions++, clock += DispatchTicks,
// and ObserveComplete. insts is the virtual instruction count — the
// value e.res.Instructions will hold when in is processed.
//
//zbp:hotpath
//zbp:inert
func (e *Engine) stepBulkOK(in *trace.Inst, insts int64) bool {
	if in.Kind != trace.NotBranch {
		return false
	}
	// Counter-triggered side effects: checkpoints test the count before
	// the increment, snapshots after it, and the warmup capture fires
	// exactly at the boundary. None may fall inside a bulk run.
	if e.nextCkpt > 0 && insts >= e.nextCkpt {
		return false
	}
	if e.nextSnap > 0 && insts+1 >= e.nextSnap {
		return false
	}
	if !e.warmTaken && e.params.WarmupInstructions > 0 && insts == e.params.WarmupInstructions {
		return false
	}
	// fetch must be a same-line repeat (its early-return path).
	if !e.haveFetch || zaddr.Align(in.Addr, uint64(e.params.L1I.LineBytes)) != e.curFetchLine {
		return false
	}
	// advanceSearch must be a no-op: the committed path strictly behind
	// the search position (no catch-up, no unblocking), and lookahead
	// either blocked or already at its full lead.
	if !e.haveSearch {
		return false
	}
	target := zaddr.RowBase(in.Addr)
	if e.searchLine <= target {
		return false
	}
	if !e.searchBlocked && e.searchLine < target+leadRows*zaddr.RowBytes {
		return false
	}
	return true
}

// RunBatched simulates src to completion under configName like Run, but
// pulls instructions through a reusable batch (see trace.FillBatch) and
// steps them with StepBatch. Results are bit-identical to Run on the
// same source.
//
// When Params.Spans is set, the run is traced: one phase span per
// warmup/steady region (rotated at batch granularity — the first batch
// that crosses the warmup boundary closes the warmup span) and one
// batch span per StepBatch call carrying bulk/slow fast-path
// attribution. Span data never influences the simulation.
func (e *Engine) RunBatched(src trace.Source, configName string) Result {
	e.reset()
	src.Reset()
	e.res.Trace = src.Name()
	e.res.Config = configName
	rec := e.spans
	phaseName := "steady"
	if e.params.WarmupInstructions > 0 {
		phaseName = "warmup"
	}
	phase := rec.Start(span.KindPhase, phaseName, e.params.SpanParent)
	phaseStart := int64(0)
	b := trace.NewBatch(trace.DefaultBatchCapacity)
	for trace.FillBatch(src, &b) > 0 {
		bulk0, slow0 := e.bulkRecords, e.slowRecords
		sb := rec.Start(span.KindBatch, "batch", phase.ID())
		e.StepBatch(b.Ins)
		sb.EndArgs(e.bulkRecords-bulk0, e.slowRecords-slow0)
		if rec.Enabled() && phaseName == "warmup" && e.warmTaken {
			phase.EndArgs(e.res.Instructions-phaseStart, 0)
			phaseName = "steady"
			phaseStart = e.res.Instructions
			phase = rec.Start(span.KindPhase, phaseName, e.params.SpanParent)
		}
	}
	phase.EndArgs(e.res.Instructions-phaseStart, 0)
	e.finishResult()
	return e.res
}

// RunBatched is the package-level convenience: build an engine and run
// one trace through the batched path.
func RunBatched(src trace.Source, hcfg core.Config, params Params, configName string) Result {
	return New(hcfg, params).RunBatched(src, configName)
}
