// Package cache models the instruction-cache levels relevant to the
// paper's study: the finite 64 KB 4-way L1 instruction cache (whose
// misses both gate BTB2 searches and cost fetch latency) and an optional
// finite 1 MB 8-way L2 instruction cache used by the "hardware mode" of
// Figure 3 (the paper's simulations treated the second level and beyond
// as infinite).
//
// The branch predictor runs ahead of instruction fetch, so predicted
// targets can be prefetched into the L1I before decode demands them; the
// model tracks lines installed by prefetch so the engine can credit
// hidden miss latency, which is one of the two mechanisms behind the
// BTB2's gain (Section 5.1).
package cache

import (
	"fmt"

	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Config fixes a cache's geometry.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
}

// zEC12 instruction-side cache geometries (Table 5).
var (
	// L1IConfig is the 64 KB 4-way first-level instruction cache with
	// 256-byte lines.
	L1IConfig = Config{Name: "L1I", SizeBytes: 64 * 1024, LineBytes: 256, Ways: 4}
	// L2IConfig is the 1 MB 8-way second-level instruction cache.
	L2IConfig = Config{Name: "L2I", SizeBytes: 1024 * 1024, LineBytes: 256, Ways: 8}
)

// Validate checks geometry consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of congruence classes.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Stats is a point-in-time view of the cache's activity counters; the
// canonical storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Accesses   int64 // demand accesses
	Misses     int64 // demand misses
	Prefetches int64 // prefetch fills issued (missing lines only)
	// PrefetchedHits are demand accesses that hit a line present only
	// because a prefetch installed it — latency the lookahead predictor
	// hid.
	PrefetchedHits int64
}

// MissRate returns demand misses per demand access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// metrics is the cache's registry-backed counter set.
type metrics struct {
	accesses       obs.Counter
	misses         obs.Counter
	prefetches     obs.Counter
	prefetchedHits obs.Counter
}

type line struct {
	valid      bool
	tag        uint64
	prefetched bool // installed by prefetch; cleared on first demand hit
}

// Cache is a set-associative instruction cache with true LRU.
type Cache struct {
	cfg   Config
	lines []line  // sets x ways
	order []uint8 // recency order per set, rank 0 = MRU
	sets  int
	shift uint // log2(LineBytes)
	mask  uint64
	met   metrics
}

// New builds an empty cache; invalid geometry panics.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:   cfg,
		lines: make([]line, sets*cfg.Ways),
		order: make([]uint8, sets*cfg.Ways),
		sets:  sets,
		mask:  uint64(sets - 1),
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.shift++
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.order[s*cfg.Ways+w] = uint8(w)
		}
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a view of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Accesses:       c.met.accesses.Value(),
		Misses:         c.met.misses.Value(),
		Prefetches:     c.met.prefetches.Value(),
		PrefetchedHits: c.met.prefetchedHits.Value(),
	}
}

// RegisterMetrics enumerates the cache's counters (plus a computed
// occupancy gauge) into r under the given prefix, e.g. "l1i_".
func (c *Cache) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"accesses_total", "lines", "demand accesses", &c.met.accesses)
	r.Counter(prefix+"misses_total", "lines", "demand misses", &c.met.misses)
	r.Counter(prefix+"prefetches_total", "lines", "prefetch fills issued", &c.met.prefetches)
	r.Counter(prefix+"prefetched_hits_total", "lines", "demand hits served from prefetched lines", &c.met.prefetchedHits)
	r.GaugeFunc(prefix+"occupancy_lines", "lines", "resident cache lines",
		func() int64 { return int64(c.CountValid()) })
}

func (c *Cache) setAndTag(a zaddr.Addr) (int, uint64) {
	lineNo := zaddr.ChunkIndex(a, uint64(c.cfg.LineBytes))
	return int(lineNo & c.mask), lineNo >> uint(log2(c.sets))
}

// Access performs a demand access for the line containing a, filling it
// on a miss. It returns hit status and whether a hit was served from a
// prefetched line (first demand touch only).
func (c *Cache) Access(a zaddr.Addr) (hit, prefetched bool) {
	c.met.accesses.Inc()
	set, tag := c.setAndTag(a)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			pf := ln.prefetched
			if pf {
				c.met.prefetchedHits.Inc()
				ln.prefetched = false
			}
			c.promote(set, w)
			return true, pf
		}
	}
	c.met.misses.Inc()
	c.fill(set, tag, false)
	return false, false
}

// Probe reports whether the line containing a is resident, without
// changing any state.
func (c *Cache) Probe(a zaddr.Addr) bool {
	set, tag := c.setAndTag(a)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Prefetch installs the line containing a if absent, marking it
// prefetched. Resident lines are left untouched (no recency change — a
// prefetch must not protect a line the demand stream has abandoned).
func (c *Cache) Prefetch(a zaddr.Addr) {
	set, tag := c.setAndTag(a)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return
		}
	}
	c.met.prefetches.Inc()
	c.fill(set, tag, true)
}

// fill installs tag into set, evicting LRU if needed, and makes it MRU.
func (c *Cache) fill(set int, tag uint64, prefetched bool) {
	base := set * c.cfg.Ways
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.lines[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = int(c.order[base+c.cfg.Ways-1])
	}
	c.lines[base+way] = line{valid: true, tag: tag, prefetched: prefetched}
	c.promote(set, way)
}

func (c *Cache) promote(set, w int) {
	base := set * c.cfg.Ways
	ord := c.order[base : base+c.cfg.Ways]
	pos := 0
	for ; pos < len(ord); pos++ {
		if int(ord[pos]) == w {
			break
		}
	}
	copy(ord[1:pos+1], ord[0:pos])
	ord[0] = uint8(w)
}

// CountValid returns the number of resident lines.
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Reset empties the cache.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.cfg.Ways; w++ {
			c.order[s*c.cfg.Ways+w] = uint8(w)
		}
	}
	c.met = metrics{}
}

func log2(n int) int {
	w := 0
	for n > 1 {
		n >>= 1
		w++
	}
	return w
}
