package cache

import (
	"testing"
	"testing/quick"

	"bulkpreload/internal/zaddr"
)

var tiny = Config{Name: "tiny", SizeBytes: 4 * 64, LineBytes: 64, Ways: 2} // 2 sets x 2 ways

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{L1IConfig, L2IConfig, tiny} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Ways: 2},
		{Name: "lineNp2", SizeBytes: 4 * 60, LineBytes: 60, Ways: 2},
		{Name: "indivisible", SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{Name: "setsNp2", SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", cfg.Name)
		}
	}
}

func TestPaperGeometries(t *testing.T) {
	// Table 5: L1 I-cache 64KB 4-way; L2 instruction 1M 8-way.
	if L1IConfig.Sets() != 64 {
		t.Errorf("L1I sets = %d, want 64", L1IConfig.Sets())
	}
	if L2IConfig.Sets() != 512 {
		t.Errorf("L2I sets = %d, want 512", L2IConfig.Sets())
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := New(tiny)
	hit, pf := c.Access(0x1000)
	if hit || pf {
		t.Fatal("cold access hit")
	}
	hit, pf = c.Access(0x1004) // same 64B line
	if !hit || pf {
		t.Fatalf("warm access: hit=%v pf=%v", hit, pf)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(tiny)          // 2 sets x 2 ways, 64B lines: set = (addr/64)%2
	a := zaddr.Addr(0x0000) // set 0
	b := a + 128            // set 0, different tag
	d := a + 256            // set 0, third tag
	c.Access(a)
	c.Access(b)
	c.Access(a) // a MRU, b LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a evicted wrongly")
	}
	if c.Probe(b) {
		t.Error("b survived; LRU broken")
	}
	if !c.Probe(d) {
		t.Error("d missing after fill")
	}
}

func TestProbeNoStateChange(t *testing.T) {
	c := New(tiny)
	if c.Probe(0x1000) {
		t.Fatal("probe hit empty cache")
	}
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Error("Probe counted as access")
	}
	if c.CountValid() != 0 {
		t.Error("Probe filled a line")
	}
}

func TestPrefetchHiddenLatency(t *testing.T) {
	c := New(tiny)
	c.Prefetch(0x2000)
	hit, pf := c.Access(0x2000)
	if !hit || !pf {
		t.Fatalf("demand after prefetch: hit=%v pf=%v", hit, pf)
	}
	// Second demand touch is an ordinary hit.
	hit, pf = c.Access(0x2000)
	if !hit || pf {
		t.Fatalf("second touch: hit=%v pf=%v", hit, pf)
	}
	st := c.Stats()
	if st.Prefetches != 1 || st.PrefetchedHits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrefetchResidentIsNoop(t *testing.T) {
	c := New(tiny)
	c.Access(0x2000)
	c.Prefetch(0x2000)
	if st := c.Stats(); st.Prefetches != 0 {
		t.Error("prefetch of resident line counted")
	}
	// And it must not mark the line prefetched.
	if _, pf := c.Access(0x2000); pf {
		t.Error("resident line became 'prefetched'")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(tiny)
		for _, a := range addrs {
			c.Access(zaddr.Addr(a))
		}
		return c.CountValid() <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsNoMisses(t *testing.T) {
	// A working set equal to capacity must have only compulsory misses.
	c := New(L1IConfig)
	lines := L1IConfig.SizeBytes / L1IConfig.LineBytes
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(zaddr.Addr(i * L1IConfig.LineBytes))
		}
	}
	st := c.Stats()
	if st.Misses != int64(lines) {
		t.Errorf("misses = %d, want %d compulsory only", st.Misses, lines)
	}
}

func TestWorkingSetThrashes(t *testing.T) {
	// A working set of 2x capacity walked cyclically with LRU misses on
	// every access after warmup.
	c := New(tiny)
	var misses int64
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 8; i++ { // 8 lines, capacity 4, all in 2 sets
			hit, _ := c.Access(zaddr.Addr(i * 64))
			if !hit {
				misses++
			}
		}
	}
	if misses != 32 {
		t.Errorf("misses = %d, want 32 (every access under cyclic LRU thrash)", misses)
	}
}

func TestMissRate(t *testing.T) {
	c := New(tiny)
	c.Access(0x0)
	c.Access(0x0)
	if got := c.Stats().MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("MissRate of empty stats should be 0")
	}
}

func TestReset(t *testing.T) {
	c := New(tiny)
	c.Access(0x1000)
	c.Reset()
	if c.CountValid() != 0 || c.Stats() != (Stats{}) {
		t.Error("Reset incomplete")
	}
	if c.Probe(0x1000) {
		t.Error("line survived Reset")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted bad config")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, LineBytes: 64, Ways: 2})
}
