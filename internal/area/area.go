// Package area models silicon area and access energy for the predictor
// structures, supporting the paper's Section 6 analysis: "Through
// optimal technology usage, the multi-level BTB design will support a
// greater number of predictions per square millimeter than a single
// level BTB designed solely in SRAM. Understanding the trade-offs
// between SRAM and eDRAM may be analyzed for defining an optimal design
// point which consists of SRAM for the BTB1 and eDRAM for the BTB2."
//
// The constants are engineering estimates for a 32 nm-class SOI process
// (the zEC12's node): they are meant for *relative* comparisons between
// design points — exactly how the paper uses the argument — not for
// absolute die-size claims.
package area

import (
	"fmt"
	"math"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/core"
)

// Technology describes a memory implementation technology.
type Technology struct {
	Name string
	// BitAreaUm2 is the storage cell area per bit in square micrometres.
	BitAreaUm2 float64
	// ReadEnergyPJPerBit / WriteEnergyPJPerBit are dynamic access
	// energies per bit touched.
	ReadEnergyPJPerBit  float64
	WriteEnergyPJPerBit float64
	// Overhead multiplies the raw cell array for decoders, sense
	// amplifiers, comparators and wiring.
	Overhead float64
	// LeakPJPerMm2Cycle is static (leakage + refresh) energy per mm^2
	// per cycle while the array is powered. Calibrated to ~0.3 W/mm^2
	// leakage density for a 32 nm-class high-performance process at
	// 5.5 GHz (~50 pJ/mm^2/cycle for SRAM). SRAM 6T cells leak
	// continuously; deep-trench eDRAM leaks far less but pays refresh.
	LeakPJPerMm2Cycle float64
}

// Technology estimates for a 32 nm-class process.
var (
	// SRAM is the 6T cell the first level and the shipping BTB2 use.
	SRAM = Technology{Name: "SRAM", BitAreaUm2: 0.17, ReadEnergyPJPerBit: 0.012,
		WriteEnergyPJPerBit: 0.015, Overhead: 1.45, LeakPJPerMm2Cycle: 50}
	// EDRAM is IBM's deep-trench embedded DRAM: ~3-4x denser than SRAM
	// with somewhat higher access energy and latency — the Section 6
	// candidate for the BTB2.
	EDRAM = Technology{Name: "eDRAM", BitAreaUm2: 0.045, ReadEnergyPJPerBit: 0.020,
		WriteEnergyPJPerBit: 0.024, Overhead: 1.70, LeakPJPerMm2Cycle: 8}
	// RegisterFile is the multi-ported array the BTBP is built from
	// ("implemented as a register file with multiple write ports").
	RegisterFile = Technology{Name: "register file", BitAreaUm2: 0.60,
		ReadEnergyPJPerBit: 0.010, WriteEnergyPJPerBit: 0.010, Overhead: 1.30,
		LeakPJPerMm2Cycle: 60}
)

// Validate checks a technology description.
func (t Technology) Validate() error {
	if t.BitAreaUm2 <= 0 || t.ReadEnergyPJPerBit <= 0 || t.WriteEnergyPJPerBit <= 0 ||
		t.Overhead < 1 || t.LeakPJPerMm2Cycle < 0 {
		return fmt.Errorf("area: implausible technology %+v", t)
	}
	return nil
}

// Entry field widths in bits. Hardware BTBs store partial tags and
// compressed targets; these widths follow common practice for the
// paper's era and are documented assumptions, not zEC12 disclosures.
const (
	ValidBits   = 1
	DefaultTag  = 16 // partial tag compared above the index
	OffsetBase  = 4  // in-line halfword offset for a 32-byte row
	TargetBits  = 31 // target within the current 4 GB region, halfword
	DirBits     = 2  // bimodal state
	ControlBits = 2  // UsePHT + UseCTB
	LengthBits  = 2  // instruction length code
)

// EntryBits returns the bits one BTB entry occupies under the given
// geometry: wider rows need more in-line offset bits; configs with an
// explicit TagBits store that many tag bits, others the default partial
// tag.
func EntryBits(cfg btb.Config) int {
	tag := int(cfg.TagBits)
	if tag == 0 {
		tag = DefaultTag
	}
	offset := OffsetBase
	for lb := cfg.LineBytes(); lb > 32; lb >>= 1 {
		offset++
	}
	return ValidBits + tag + offset + TargetBits + DirBits + ControlBits + LengthBits
}

// Structure is one analyzed array.
type Structure struct {
	Name     string
	Tech     string
	Entries  int
	BitsEach int
	AreaMm2  float64
}

// Report is the area analysis of one hierarchy configuration.
type Report struct {
	Structures []Structure
	TotalMm2   float64
	// Capacity is the total branch entries across BTB levels.
	Capacity int
	// PredictionsPerMm2 is the paper's Section 6 figure of merit.
	PredictionsPerMm2 float64
}

// structArea computes mm^2 for an array.
func structArea(entries, bits int, t Technology) float64 {
	return float64(entries) * float64(bits) * t.BitAreaUm2 * t.Overhead / 1e6
}

// Analyze computes the area report for a hierarchy configuration with
// the given BTB2 technology (the BTB1 is always SRAM and the BTBP a
// register file, as shipped).
func Analyze(cfg core.Config, btb2Tech Technology) Report {
	if err := btb2Tech.Validate(); err != nil {
		panic(err)
	}
	var r Report
	add := func(name string, entries, bits int, t Technology) {
		s := Structure{Name: name, Tech: t.Name, Entries: entries, BitsEach: bits,
			AreaMm2: structArea(entries, bits, t)}
		r.Structures = append(r.Structures, s)
		r.TotalMm2 += s.AreaMm2
	}
	add("BTB1", cfg.BTB1.Capacity(), EntryBits(cfg.BTB1), SRAM)
	add("BTBP", cfg.BTBP.Capacity(), EntryBits(cfg.BTBP), RegisterFile)
	r.Capacity = cfg.BTB1.Capacity() + cfg.BTBP.Capacity()
	if cfg.BTB2Enabled {
		add("BTB2", cfg.BTB2.Capacity(), EntryBits(cfg.BTB2), btb2Tech)
		r.Capacity += cfg.BTB2.Capacity()
	}
	if r.TotalMm2 > 0 {
		r.PredictionsPerMm2 = float64(r.Capacity) / r.TotalMm2
	}
	return r
}

// Energy is the energy accounting of one simulation run: dynamic access
// energy per structure plus static (leakage/refresh) energy. The BTB2's
// static term is scaled by its duty cycle — "the second level predictor
// is only powered up and accessed when content is perceived as missing"
// — while the always-on first level (and a hypothetical large one-level
// BTB1) leaks for the whole run.
type Energy struct {
	BTB1ReadPJ  float64
	BTB1WritePJ float64
	BTBPReadPJ  float64
	BTBPWritePJ float64
	BTB2ReadPJ  float64
	BTB2WritePJ float64

	BTB1LeakPJ float64
	BTBPLeakPJ float64
	BTB2LeakPJ float64
}

// DynamicPJ returns the summed dynamic access energy.
func (e Energy) DynamicPJ() float64 {
	return e.BTB1ReadPJ + e.BTB1WritePJ + e.BTBPReadPJ + e.BTBPWritePJ +
		e.BTB2ReadPJ + e.BTB2WritePJ
}

// StaticPJ returns the summed leakage/refresh energy.
func (e Energy) StaticPJ() float64 { return e.BTB1LeakPJ + e.BTBPLeakPJ + e.BTB2LeakPJ }

// TotalPJ returns dynamic plus static energy.
func (e Energy) TotalPJ() float64 { return e.DynamicPJ() + e.StaticPJ() }

// AccessCounts carries the per-structure access counts of a run (the
// engine's Result exposes exactly these via btb.Stats).
type AccessCounts struct {
	BTB1 btb.Stats
	BTBP btb.Stats
	BTB2 btb.Stats
}

// arrayFactor scales per-bit access energy with array capacity: wire
// (bitline/wordline) capacitance grows roughly with the square root of
// the array's bit count. Normalized to a 64 Kbit reference array. This
// is what makes every-cycle searches of a 24k-entry SRAM BTB1 cost more
// than searches of the 4k BTB1 — the power half of the paper's
// "bigger is better, but latency/area/power limit designers" framing.
func arrayFactor(c btb.Config) float64 {
	bits := float64(c.Capacity() * EntryBits(c))
	const refBits = 64 * 1024
	f := math.Sqrt(bits / refBits)
	if f < 1 {
		return 1
	}
	return f
}

// EstimateEnergy converts a run's access counts into total energy over
// totalCycles machine cycles. A read touches all ways of a row (a full
// congruence-class access); a write touches one entry; per-bit energies
// scale with array size via arrayFactor. btb2ActiveCycles is the number
// of cycles the BTB2 was powered (its search port busy); the first level
// is powered for the whole run.
func EstimateEnergy(cfg core.Config, counts AccessCounts, btb2Tech Technology,
	totalCycles, btb2ActiveCycles float64) Energy {
	rowBits := func(c btb.Config) float64 { return float64(EntryBits(c) * c.Ways) }
	entryBits := func(c btb.Config) float64 { return float64(EntryBits(c)) }
	var e Energy
	f1 := arrayFactor(cfg.BTB1)
	e.BTB1ReadPJ = float64(counts.BTB1.Lookups) * rowBits(cfg.BTB1) * SRAM.ReadEnergyPJPerBit * f1
	e.BTB1WritePJ = float64(counts.BTB1.Installs+counts.BTB1.Updates) * entryBits(cfg.BTB1) * SRAM.WriteEnergyPJPerBit * f1
	fp := arrayFactor(cfg.BTBP)
	e.BTBPReadPJ = float64(counts.BTBP.Lookups) * rowBits(cfg.BTBP) * RegisterFile.ReadEnergyPJPerBit * fp
	e.BTBPWritePJ = float64(counts.BTBP.Installs+counts.BTBP.Updates) * entryBits(cfg.BTBP) * RegisterFile.WriteEnergyPJPerBit * fp
	if cfg.BTB2Enabled {
		f2 := arrayFactor(cfg.BTB2)
		e.BTB2ReadPJ = float64(counts.BTB2.Lookups) * rowBits(cfg.BTB2) * btb2Tech.ReadEnergyPJPerBit * f2
		e.BTB2WritePJ = float64(counts.BTB2.Installs+counts.BTB2.Updates) * entryBits(cfg.BTB2) * btb2Tech.WriteEnergyPJPerBit * f2
	}
	// Static energy: area x leakage density x powered cycles.
	e.BTB1LeakPJ = structArea(cfg.BTB1.Capacity(), EntryBits(cfg.BTB1), SRAM) *
		SRAM.LeakPJPerMm2Cycle * totalCycles
	e.BTBPLeakPJ = structArea(cfg.BTBP.Capacity(), EntryBits(cfg.BTBP), RegisterFile) *
		RegisterFile.LeakPJPerMm2Cycle * totalCycles
	if cfg.BTB2Enabled {
		powered := btb2ActiveCycles
		if powered > totalCycles {
			powered = totalCycles
		}
		e.BTB2LeakPJ = structArea(cfg.BTB2.Capacity(), EntryBits(cfg.BTB2), btb2Tech) *
			btb2Tech.LeakPJPerMm2Cycle * powered
	}
	return e
}
