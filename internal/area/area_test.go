package area

import (
	"testing"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/core"
)

func TestTechnologiesValid(t *testing.T) {
	for _, tech := range []Technology{SRAM, EDRAM, RegisterFile} {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
	}
	if err := (Technology{}).Validate(); err == nil {
		t.Error("zero technology accepted")
	}
}

func TestEDRAMDenserThanSRAM(t *testing.T) {
	// The premise of the Section 6 argument.
	if EDRAM.BitAreaUm2 >= SRAM.BitAreaUm2 {
		t.Error("eDRAM must be denser than SRAM")
	}
	if RegisterFile.BitAreaUm2 <= SRAM.BitAreaUm2 {
		t.Error("register file must be larger than SRAM per bit")
	}
}

func TestEntryBits(t *testing.T) {
	base := EntryBits(btb.BTB1Config)
	if base <= 0 {
		t.Fatal("non-positive entry bits")
	}
	// Wider rows cost extra offset bits.
	wide := btb.Config{Name: "w", Rows: 2048, Ways: 6, IndexHi: 47, IndexLo: 57}
	if EntryBits(wide) != base+1 {
		t.Errorf("64B-row entry = %d bits, want %d", EntryBits(wide), base+1)
	}
	// Explicit partial tags override the default width.
	tagged := btb.BTB1Config
	tagged.TagBits = 10
	if EntryBits(tagged) != base-DefaultTag+10 {
		t.Errorf("tagged entry = %d bits", EntryBits(tagged))
	}
}

func TestAnalyzeShapes(t *testing.T) {
	twoLevelSRAM := Analyze(core.DefaultConfig(), SRAM)
	twoLevelEDRAM := Analyze(core.DefaultConfig(), EDRAM)
	oneLevelBig := Analyze(core.LargeOneLevelConfig(), SRAM)
	baseline := Analyze(core.OneLevelConfig(), SRAM)

	// Structure counts: 3 with BTB2, 2 without.
	if len(twoLevelSRAM.Structures) != 3 || len(baseline.Structures) != 2 {
		t.Fatalf("structure counts wrong: %d / %d",
			len(twoLevelSRAM.Structures), len(baseline.Structures))
	}
	// Same capacity (4k+768+24k vs 24k+768): the two-level holds more.
	if twoLevelSRAM.Capacity != 4096+768+24576 {
		t.Errorf("two-level capacity = %d", twoLevelSRAM.Capacity)
	}
	if oneLevelBig.Capacity != 24576+768 {
		t.Errorf("one-level capacity = %d", oneLevelBig.Capacity)
	}
	// The Section 6 claim: eDRAM BTB2 yields more predictions per mm^2
	// than both the all-SRAM two-level and the big SRAM one-level.
	if !(twoLevelEDRAM.PredictionsPerMm2 > twoLevelSRAM.PredictionsPerMm2) {
		t.Errorf("eDRAM BTB2 not denser: %.0f vs %.0f",
			twoLevelEDRAM.PredictionsPerMm2, twoLevelSRAM.PredictionsPerMm2)
	}
	if !(twoLevelEDRAM.PredictionsPerMm2 > oneLevelBig.PredictionsPerMm2) {
		t.Errorf("two-level eDRAM not denser than big SRAM BTB1: %.0f vs %.0f",
			twoLevelEDRAM.PredictionsPerMm2, oneLevelBig.PredictionsPerMm2)
	}
	// Areas are positive and total is the sum.
	sum := 0.0
	for _, s := range twoLevelSRAM.Structures {
		if s.AreaMm2 <= 0 {
			t.Errorf("%s: non-positive area", s.Name)
		}
		sum += s.AreaMm2
	}
	if diff := sum - twoLevelSRAM.TotalMm2; diff > 1e-9 || diff < -1e-9 {
		t.Error("total != sum of parts")
	}
}

func TestAnalyzePanicsOnBadTech(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Analyze accepted invalid technology")
		}
	}()
	Analyze(core.DefaultConfig(), Technology{})
}

func TestEstimateEnergy(t *testing.T) {
	cfg := core.DefaultConfig()
	counts := AccessCounts{
		BTB1: btb.Stats{Lookups: 1000, Installs: 100, Updates: 50},
		BTBP: btb.Stats{Lookups: 1000, Installs: 200},
		BTB2: btb.Stats{Lookups: 500, Installs: 300},
	}
	e := EstimateEnergy(cfg, counts, SRAM, 1_000_000, 20_000)
	if e.TotalPJ() <= 0 {
		t.Fatal("non-positive energy")
	}
	// Reads touch whole rows; with equal lookup counts the BTB1 (4-way
	// SRAM rows) must cost more read energy than zero and the BTB2 reads
	// must be non-zero.
	if e.BTB1ReadPJ <= 0 || e.BTB2ReadPJ <= 0 {
		t.Error("missing read energy components")
	}
	// Without a BTB2, its energy is zero.
	e2 := EstimateEnergy(core.OneLevelConfig(), counts, SRAM, 1_000_000, 0)
	if e2.BTB2ReadPJ != 0 || e2.BTB2WritePJ != 0 {
		t.Error("BTB2 energy attributed to a one-level config")
	}
	// eDRAM reads cost more per bit.
	e3 := EstimateEnergy(cfg, counts, EDRAM, 1_000_000, 20_000)
	if e3.BTB2ReadPJ <= e.BTB2ReadPJ {
		t.Error("eDRAM read energy not higher than SRAM")
	}
}

// TestEnergyStory verifies the paper's power argument quantitatively:
// under equal access patterns dominated by first-level searches, the
// two-level design (small BTB1 rows + rarely-read BTB2) burns less read
// energy per search than the big one-level BTB1, whose every search
// reads a 6-way row of a 24k array... the per-row read is what matters.
func TestEnergyStory(t *testing.T) {
	searches := int64(1_000_000)
	// Two-level: searches read BTB1 (4-way) + BTBP (6-way RF); BTB2 read
	// only on transfers (say 2% of searches).
	cycles := float64(searches) // ~one search per cycle
	two := EstimateEnergy(core.DefaultConfig(), AccessCounts{
		BTB1: btb.Stats{Lookups: searches},
		BTBP: btb.Stats{Lookups: searches},
		BTB2: btb.Stats{Lookups: searches / 50},
	}, SRAM, cycles, float64(searches/50))
	// One-level 24k: every search reads a 6-way row of the big array
	// (plus the same BTBP).
	big := EstimateEnergy(core.LargeOneLevelConfig(), AccessCounts{
		BTB1: btb.Stats{Lookups: searches},
		BTBP: btb.Stats{Lookups: searches},
	}, SRAM, cycles, 0)
	// Array-size-dependent access energy makes every-search reads of the
	// 24k array dominate: the two-level hierarchy reads less total
	// energy despite its occasional BTB2 bursts — the paper's
	// "minimal impact on ... power" claim.
	if two.TotalPJ() >= big.TotalPJ() {
		t.Errorf("two-level energy %.0f pJ >= big one-level %.0f pJ",
			two.TotalPJ(), big.TotalPJ())
	}
}
