package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
)

// Runtime profiling surface: EnableProfiling extends a Server with the
// standard net/http/pprof handlers (CPU/heap/goroutine/block profiles,
// execution traces) and a /debug/runtime endpoint rendering the Go
// runtime/metrics catalogue as JSON — GC pause distributions, heap
// occupancy, scheduler latencies — next to the simulator's own
// /metrics. Profiling is opt-in (zsim -pprof): the pprof handlers can
// observably perturb a run (stop-the-world heap dumps, 1% CPU for the
// profiler), so they stay off unless asked for.

// EnableProfiling mounts the pprof and runtime-metrics endpoints on the
// server's handler. Call it after NewServer and before Start:
//
//	/debug/pprof/          index of available profiles
//	/debug/pprof/profile   30s CPU profile (go tool pprof)
//	/debug/pprof/heap      heap allocation profile
//	/debug/pprof/trace     execution trace (go tool trace)
//	/debug/runtime         runtime/metrics catalogue as JSON
func (s *Server) EnableProfiling() {
	mux := http.NewServeMux()
	mux.Handle("/", s.srv.Handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", serveRuntimeMetrics)
	s.srv.Handler = mux
}

// serveRuntimeMetrics renders every runtime/metrics sample as a JSON
// object keyed by metric name. Scalar kinds map to numbers; histogram
// kinds to {buckets, counts} pairs (bucket boundaries as float64s, one
// more boundary than counts per the runtime/metrics convention).
func serveRuntimeMetrics(w http.ResponseWriter, _ *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i := range descs {
		samples[i].Name = descs[i].Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for i := range samples {
		s := &samples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			// Boundary buckets are ±Inf, which encoding/json rejects;
			// render them as strings so the object stays valid JSON.
			buckets := make([]any, len(h.Buckets))
			for k, b := range h.Buckets {
				switch {
				case math.IsInf(b, 1):
					buckets[k] = "+Inf"
				case math.IsInf(b, -1):
					buckets[k] = "-Inf"
				default:
					buckets[k] = b
				}
			}
			out[s.Name] = map[string]any{"buckets": buckets, "counts": h.Counts}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Headers are gone; nothing useful left to report to the client.
		return
	}
}
