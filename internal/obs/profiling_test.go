package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestEnableProfiling starts a server with profiling on and checks the
// pprof index, a concrete profile, the runtime-metrics JSON, and that
// the Live endpoints still answer through the wrapping mux.
func TestEnableProfiling(t *testing.T) {
	var live Live
	live.Publish(Snapshot{Seq: 1, Values: []Value{{Name: "x_total", Value: 7}}})
	srv := NewServer(&live)
	srv.EnableProfiling()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Error("pprof index is empty")
	}
	if body := get("/debug/pprof/goroutine?debug=1"); len(body) == 0 {
		t.Error("goroutine profile is empty")
	}

	var rt map[string]any
	if err := json.Unmarshal(get("/debug/runtime"), &rt); err != nil {
		t.Fatalf("/debug/runtime is not valid JSON: %v", err)
	}
	if _, ok := rt["/memory/classes/heap/objects:bytes"]; !ok {
		t.Errorf("/debug/runtime missing heap metric; got %d keys", len(rt))
	}

	// The original Live surface must still be reachable.
	if body := get("/metrics"); len(body) == 0 {
		t.Error("/metrics no longer served with profiling enabled")
	}
}

// TestServerWithoutProfiling checks the default server does NOT expose
// pprof — profiling must remain opt-in.
func TestServerWithoutProfiling(t *testing.T) {
	var live Live
	srv := NewServer(&live)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without EnableProfiling")
	}
}
