package export

import (
	"bufio"
	"fmt"
	"io"

	"bulkpreload/internal/obs/span"
)

// Span exporters: unlike the streaming core.Event exporters above,
// spans are collected in memory by span.Trace (a study produces
// thousands of spans, not millions of events) and written once at the
// end of the run. WriteChromeSpans renders the flame-style timeline —
// one Chrome "process" per worker, spans nested by time containment —
// and WriteJSONLSpans the line-oriented form for jq/pandas.

// WriteChromeSpans writes events as a Chrome trace_event JSON array:
// complete events ("ph":"X") for spans and thread-scoped instants
// ("ph":"i") for markers, with pid = worker number (worker 0 labelled
// "scheduler", others "worker N") so Perfetto shows one track per
// worker and nests study/worker/unit/phase/batch/refill spans by
// containment. Timestamps are microseconds since the trace epoch.
func WriteChromeSpans(w io.Writer, events []span.Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	wrote := false
	sep := func() error {
		if wrote {
			_, err := bw.WriteString(",\n")
			return err
		}
		wrote = true
		return nil
	}
	// One process per worker seen in the event stream, labelled once.
	labelled := make(map[int]bool)
	for _, e := range events {
		if labelled[e.Worker] {
			continue
		}
		labelled[e.Worker] = true
		name := fmt.Sprintf("worker %d", e.Worker)
		if e.Worker == 0 {
			name = "scheduler"
		}
		if err := sep(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw,
			`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%q}}`,
			e.Worker, name); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := sep(); err != nil {
			return err
		}
		ts := float64(e.Start) / 1e3
		if e.Instant {
			if _, err := fmt.Fprintf(bw,
				`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":1,"args":{%s}}`,
				e.Name, e.Kind.String(), ts, e.Worker, spanArgs(e)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw,
			`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":1,"args":{%s}}`,
			e.Name, e.Kind.String(), ts, float64(e.Dur)/1e3, e.Worker, spanArgs(e)); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// spanArgs renders an event's args object body: span identity plus the
// kind's named arguments (unnamed args are omitted).
func spanArgs(e span.Event) string {
	s := fmt.Sprintf(`"id":%d,"parent":%d`, uint64(e.ID), uint64(e.Parent))
	n1, n2 := e.Kind.ArgNames()
	if n1 != "" {
		s += fmt.Sprintf(`,%q:%d`, n1, e.Arg1)
	}
	if n2 != "" {
		s += fmt.Sprintf(`,%q:%d`, n2, e.Arg2)
	}
	return s
}

// WriteJSONLSpans writes one JSON object per event: kind, name, worker,
// span identity, times in nanoseconds since the trace epoch, and the
// kind's named arguments.
func WriteJSONLSpans(w io.Writer, events []span.Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw,
			`{"kind":%q,"name":%q,"worker":%d,"start_ns":%d,"dur_ns":%d,"instant":%t,%s}`+"\n",
			e.Kind.String(), e.Name, e.Worker, e.Start, e.Dur, e.Instant, spanArgs(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
