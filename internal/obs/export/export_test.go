package export

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"bulkpreload/internal/core"
)

func sampleEvents() []core.Event {
	return []core.Event{
		{Cycle: 10, Kind: core.EvPredict, Addr: 0x4000, Aux: 0x4100},
		{Cycle: 12, Kind: core.EvPredict, Addr: 0x4100},
		{Cycle: 30, Kind: core.EvTransferHit, Addr: 0x8000, Aux: 0x8040},
		{Cycle: 31, Kind: core.EvMissReport, Addr: 0x9000},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	for _, e := range sampleEvents() {
		j.Event(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	var first struct {
		Cycle uint64 `json:"cycle"`
		Kind  string `json:"kind"`
		Addr  string `json:"addr"`
		Aux   string `json:"aux"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first.Cycle != 10 || first.Kind != "predict" || first.Addr != "0x4000" || first.Aux != "0x4100" {
		t.Fatalf("line 0 = %+v", first)
	}
	// A zero Aux is omitted entirely.
	if strings.Contains(lines[1], "aux") {
		t.Fatalf("zero aux not omitted: %s", lines[1])
	}

	n := j.Counts()
	if n[core.EvPredict] != 2 || n[core.EvTransferHit] != 1 || n[core.EvMissReport] != 1 {
		t.Fatalf("counts = %v", n)
	}
}

func TestChromeIsValidJSON(t *testing.T) {
	var sb strings.Builder
	c := NewChrome(&sb)
	for _, e := range sampleEvents() {
		c.Event(e)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var arr []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &arr); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, sb.String())
	}
	// NumEventKinds metadata records + 4 instant events.
	if len(arr) != core.NumEventKinds+4 {
		t.Fatalf("got %d records, want %d", len(arr), core.NumEventKinds+4)
	}
	meta, inst := 0, 0
	for _, rec := range arr {
		switch rec["ph"] {
		case "M":
			meta++
		case "i":
			inst++
		default:
			t.Fatalf("unexpected phase %v", rec["ph"])
		}
	}
	if meta != core.NumEventKinds || inst != 4 {
		t.Fatalf("meta/instant = %d/%d", meta, inst)
	}
	if c.Counts()[core.EvPredict] != 2 {
		t.Fatalf("counts = %v", c.Counts())
	}
}

// failWriter errors after the first write to exercise error latching.
type failWriter struct{ writes int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, errShort
	}
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestJSONLWriteErrorLatches(t *testing.T) {
	fw := &failWriter{}
	j := &JSONL{w: bufio.NewWriterSize(fw, 8)} // tiny buffer forces writes through
	for _, e := range sampleEvents() {
		j.Event(e)
	}
	if err := j.Close(); err == nil {
		t.Fatal("write error not surfaced by Close")
	}
}

func TestMetricNameCoverage(t *testing.T) {
	// Every kind must map to a registry counter so exported traces can be
	// reconciled against snapshots.
	for k := 0; k < core.NumEventKinds; k++ {
		if core.EventKind(k).MetricName() == "" {
			t.Fatalf("EventKind %v has no MetricName", core.EventKind(k))
		}
	}
	if core.EventKind(200).MetricName() != "" {
		t.Fatal("unknown kind should map to empty MetricName")
	}
}
