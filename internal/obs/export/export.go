// Package export provides streaming trace exporters: Tracers that write
// each hierarchy event to an io.Writer as it happens, so arbitrarily
// long simulations can be traced without the in-memory cap of
// core.CollectTracer. Two formats are supported: JSON Lines (one event
// object per line, trivially consumed by jq/pandas) and the Chrome
// trace_event format that Perfetto and chrome://tracing load directly.
//
// Exporters keep per-kind event counts, so a finished trace file can be
// reconciled against the run's final registry snapshot: for every event
// kind k, Counts()[k] must equal the snapshot's k.MetricName() counter.
package export

import (
	"bufio"
	"fmt"
	"io"

	"bulkpreload/internal/core"
)

// counts tallies exported events per kind.
type counts [core.NumEventKinds]int64

// JSONL streams events as JSON Lines: one object per event with the
// cycle, kind name, and hex addresses, e.g.
//
//	{"cycle":1041,"kind":"transfer-hit","addr":"0x40f2a0","aux":"0x40f1b8"}
//
// Writes are buffered; call Flush (or Close) before reading the output.
// JSONL is not safe for concurrent use — like all Tracers it belongs to
// the simulation goroutine.
type JSONL struct {
	w   *bufio.Writer
	c   io.Closer // underlying closer when constructed from one, else nil
	n   counts
	err error
}

// NewJSONL wraps w in a streaming JSONL exporter. If w is an io.Closer
// (e.g. an *os.File), Close will close it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Event implements core.Tracer.
func (j *JSONL) Event(e core.Event) {
	if j.err != nil {
		return
	}
	if int(e.Kind) < len(j.n) {
		j.n[e.Kind]++
	}
	if e.Aux != 0 {
		_, j.err = fmt.Fprintf(j.w, "{\"cycle\":%d,\"kind\":%q,\"addr\":\"%#x\",\"aux\":\"%#x\"}\n",
			e.Cycle, e.Kind.String(), uint64(e.Addr), uint64(e.Aux))
		return
	}
	_, j.err = fmt.Fprintf(j.w, "{\"cycle\":%d,\"kind\":%q,\"addr\":\"%#x\"}\n",
		e.Cycle, e.Kind.String(), uint64(e.Addr))
}

// Counts returns the number of events exported so far, indexed by
// core.EventKind.
func (j *JSONL) Counts() [core.NumEventKinds]int64 { return j.n }

// Flush drains the write buffer.
func (j *JSONL) Flush() error {
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying writer if it is closeable.
func (j *JSONL) Close() error {
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Chrome streams events in the Chrome trace_event JSON array format.
// Each hierarchy event becomes an instant event ("ph":"i") whose
// timestamp is the simulation cycle and whose thread is the event kind,
// so Perfetto renders one swim lane per kind. Close terminates the JSON
// array; a file left unterminated by a crash still loads in Perfetto
// (the format tolerates a missing "]").
type Chrome struct {
	w     *bufio.Writer
	c     io.Closer
	n     counts
	err   error
	wrote bool
}

// NewChrome wraps w in a streaming Chrome trace_event exporter and
// writes the per-kind thread metadata up front. If w is an io.Closer,
// Close will close it.
func NewChrome(w io.Writer) *Chrome {
	t := &Chrome{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	_, t.err = t.w.WriteString("[")
	for k := 0; k < core.NumEventKinds && t.err == nil; k++ {
		t.sep()
		_, t.err = fmt.Fprintf(t.w,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			k+1, core.EventKind(k).String())
	}
	return t
}

func (t *Chrome) sep() {
	if t.wrote {
		_, t.err = t.w.WriteString(",\n")
	} else {
		t.wrote = true
		_, t.err = t.w.WriteString("\n")
	}
}

// Event implements core.Tracer.
func (t *Chrome) Event(e core.Event) {
	if t.err != nil {
		return
	}
	if int(e.Kind) < len(t.n) {
		t.n[e.Kind]++
	}
	t.sep()
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w,
		`{"name":"%#x","ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,"args":{"aux":"%#x"}}`,
		uint64(e.Addr), e.Cycle, int(e.Kind)+1, uint64(e.Aux))
}

// Counts returns the number of events exported so far, indexed by
// core.EventKind.
func (t *Chrome) Counts() [core.NumEventKinds]int64 { return t.n }

// Flush drains the write buffer without terminating the array.
func (t *Chrome) Flush() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer if it is closeable.
func (t *Chrome) Close() error {
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]\n")
	}
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
