package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bulkpreload/internal/obs/span"
)

// buildSpans records a small two-worker tree and returns its events.
func buildSpans(t *testing.T) []span.Event {
	t.Helper()
	tr := span.NewTrace()
	sched := tr.NewRecorder(0)
	study := sched.Start(span.KindStudy, "study", 0)
	w1 := tr.NewRecorder(1)
	ws := w1.Start(span.KindWorker, "worker", study.ID())
	us := w1.Start(span.KindUnit, "oltp-1/base", ws.ID())
	us.EndArgs(1000, 0)
	w1.Instant(span.KindSteal, "steal", ws.ID(), 2, 0)
	ws.EndArgs(1, 1)
	study.EndArgs(1, 1)
	tr.Adopt(sched)
	tr.Adopt(w1)
	return tr.Events()
}

func TestWriteChromeSpansIsValidJSON(t *testing.T) {
	evs := buildSpans(t)
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("chrome span output is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant, meta int
	pids := map[float64]bool{}
	for _, obj := range arr {
		switch obj["ph"] {
		case "X":
			complete++
			pids[obj["pid"].(float64)] = true
			if obj["dur"] == nil {
				t.Errorf("complete event missing dur: %v", obj)
			}
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 3 {
		t.Errorf("got %d complete events, want 3 (study, worker, unit)", complete)
	}
	if instant != 1 {
		t.Errorf("got %d instants, want 1 (steal)", instant)
	}
	if meta != 2 {
		t.Errorf("got %d metadata events, want 2 (scheduler + worker 1)", meta)
	}
	if !pids[0] || !pids[1] {
		t.Errorf("expected spans on pids 0 and 1, got %v", pids)
	}
	// Named args must appear under the kind's labels.
	if !strings.Contains(buf.String(), `"instructions":1000`) {
		t.Error("unit span args missing instructions label")
	}
}

func TestWriteJSONLSpans(t *testing.T) {
	evs := buildSpans(t)
	var buf bytes.Buffer
	if err := WriteJSONLSpans(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(evs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(evs))
	}
	kinds := map[string]int{}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, ln)
		}
		kinds[obj["kind"].(string)]++
		if obj["id"].(float64) == 0 {
			t.Errorf("span with zero id: %s", ln)
		}
	}
	want := map[string]int{"study": 1, "worker": 1, "unit": 1, "steal": 1}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("kind %s: got %d, want %d", k, kinds[k], n)
		}
	}
}
