// Package obs is the unified observability layer for the simulator: a
// metrics registry with counters, gauges and fixed-bucket histograms
// that every predictor structure registers into, point-in-time registry
// snapshots for phase timelines and cross-shard aggregation, and a
// race-free live publisher for watching long runs over HTTP.
//
// Design constraints, in order:
//
//  1. The hot path must cost nothing extra. Counters are plain int64
//     increments — exactly what the ad-hoc per-package Stats structs
//     were — with no atomics, locks, or allocations. The registry is
//     purely an enumeration layer holding pointers to metrics that live
//     inside the instrumented structures.
//  2. Metrics are therefore goroutine-local: a Registry and everything
//     registered in it belong to the goroutine running the simulation.
//     Snapshot must be called from that goroutine. Cross-goroutine
//     consumers work with immutable Snapshot values (see Live), and
//     parallel studies aggregate per-shard snapshots with Merge.
//  3. Everything is enumerable: one walk of a Registry or Snapshot
//     reaches every metric with its name, type, and unit, so renderers
//     (Prometheus text, expvar JSON, phase timelines) need no
//     per-metric knowledge.
package obs

import (
	"fmt"
	"sort"
)

// Type classifies a metric.
type Type uint8

// Metric types.
const (
	TypeCounter   Type = iota // monotonically non-decreasing count
	TypeGauge                 // instantaneous level (occupancy, clock)
	TypeHistogram             // fixed-bucket distribution
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Counter is a monotonically non-decreasing count. The zero value is
// ready to use; Inc compiles to a plain int64 increment.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (n must be non-negative for counter semantics; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the level by n.
func (g *Gauge) Add(n int64) { g.v += n }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a fixed-bucket distribution of int64 observations.
// Bounds are inclusive upper bounds in ascending order; one implicit
// overflow bucket catches everything above the last bound. A Histogram
// with no bounds still tracks count and sum. Observe never allocates.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last is the overflow bucket
	count  int64
	sum    int64
}

// SetBounds fixes the bucket upper bounds (ascending). It panics on
// unsorted bounds and must be called before the first Observe.
func (h *Histogram) SetBounds(bounds ...int64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	if h.count != 0 {
		panic("obs: SetBounds after Observe")
	}
	h.bounds = bounds
	h.counts = make([]int64, len(bounds)+1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count++
	h.sum += v
	if h.counts == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Reset clears observations, keeping the bounds.
func (h *Histogram) Reset() {
	h.count, h.sum = 0, 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Desc names and documents one registered metric.
type Desc struct {
	Name string // unique snake_case name, e.g. "btb1_lookups_total"
	Type Type
	Unit string // "cycles", "entries", "events", ...
	Help string // one-line description for the catalogue
}

// metric binds a Desc to its value source. Exactly one source is set.
type metric struct {
	desc Desc
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() int64 // computed metric, read at snapshot time
}

// Registry enumerates the metrics of one simulation shard. It is not
// safe for concurrent use; see the package comment for the ownership
// model. The zero value is not usable — call NewRegistry.
type Registry struct {
	metrics []metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) add(m metric) {
	if m.desc.Name == "" {
		panic("obs: metric with empty name")
	}
	if _, dup := r.names[m.desc.Name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.desc.Name))
	}
	r.names[m.desc.Name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers c under name. The counter keeps living inside the
// instrumented structure; the registry only enumerates it.
func (r *Registry) Counter(name, unit, help string, c *Counter) {
	r.add(metric{desc: Desc{Name: name, Type: TypeCounter, Unit: unit, Help: help}, c: c})
}

// Gauge registers g under name.
func (r *Registry) Gauge(name, unit, help string, g *Gauge) {
	r.add(metric{desc: Desc{Name: name, Type: TypeGauge, Unit: unit, Help: help}, g: g})
}

// Histogram registers h under name.
func (r *Registry) Histogram(name, unit, help string, h *Histogram) {
	r.add(metric{desc: Desc{Name: name, Type: TypeHistogram, Unit: unit, Help: help}, h: h})
}

// GaugeFunc registers a computed gauge. fn is called at snapshot time
// from the owning goroutine — use it for derived state (occupancy,
// queue depth) so the hot path pays nothing.
func (r *Registry) GaugeFunc(name, unit, help string, fn func() int64) {
	r.add(metric{desc: Desc{Name: name, Type: TypeGauge, Unit: unit, Help: help}, fn: fn})
}

// CounterFunc registers a computed counter (a monotone value the
// instrumented code already tracks in a plain field).
func (r *Registry) CounterFunc(name, unit, help string, fn func() int64) {
	r.add(metric{desc: Desc{Name: name, Type: TypeCounter, Unit: unit, Help: help}, fn: fn})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Descs returns the catalogue of registered metrics, sorted by name.
func (r *Registry) Descs() []Desc {
	out := make([]Desc, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.desc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot captures every registered metric's current value. seq tags
// the snapshot (interval snapshots number from 1). Must be called from
// the goroutine that owns the registered metrics.
func (r *Registry) Snapshot(seq int64) Snapshot {
	s := Snapshot{Seq: seq, Values: make([]Value, 0, len(r.metrics))}
	for _, m := range r.metrics {
		v := Value{Name: m.desc.Name, Type: m.desc.Type, Unit: m.desc.Unit}
		switch {
		case m.c != nil:
			v.Value = m.c.Value()
		case m.g != nil:
			v.Value = m.g.Value()
		case m.fn != nil:
			v.Value = m.fn()
		case m.h != nil:
			v.Count = m.h.count
			v.Sum = m.h.sum
			if len(m.h.bounds) > 0 {
				v.Bounds = append([]int64(nil), m.h.bounds...)
				v.Buckets = append([]int64(nil), m.h.counts...)
			}
		}
		s.Values = append(s.Values, v)
	}
	return s
}
