package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync/atomic"
)

// Live publishes registry snapshots across goroutines. The simulation
// goroutine calls Publish at each snapshot interval; HTTP handlers and
// expvar read whatever snapshot was published last. Because snapshots
// are immutable plain data behind an atomic pointer, readers never race
// with the allocation-free hot path. The zero value is ready to use.
type Live struct {
	p atomic.Pointer[Snapshot]
}

// Publish makes s the current snapshot.
func (l *Live) Publish(s Snapshot) {
	s.FillKinds()
	l.p.Store(&s)
}

// Load returns the most recently published snapshot, or nil before the
// first Publish.
func (l *Live) Load() *Snapshot { return l.p.Load() }

// ServeHTTP renders the current snapshot in Prometheus text format
// (mount it at /metrics). Before the first Publish it answers 204.
func (l *Live) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	s := l.Load()
	if s == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WritePrometheus(w)
}

// Var returns the snapshot as an expvar.Var so live registry state shows
// up under /debug/vars alongside the runtime's own variables.
func (l *Live) Var() expvar.Var {
	return expvar.Func(func() any {
		if s := l.Load(); s != nil {
			return s
		}
		return Snapshot{}
	})
}

// Handler returns an http.Handler serving the full live-introspection
// surface: /metrics (Prometheus text), /snapshot (raw snapshot JSON),
// and /debug/vars (expvar, including every var published process-wide).
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", l)
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		s := l.Load()
		if s == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
