package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerServesAndShutsDownGracefully(t *testing.T) {
	var live Live
	r := NewRegistry()
	var c Counter
	r.Counter("test_total", "", "a counter", &c)
	c.Add(7)
	live.Publish(r.Snapshot(1))

	s := NewServer(&live)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scraping live server: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "test_total 7") {
		t.Errorf("scrape missing counter: %q", body)
	}

	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The listener is released: connections now fail.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

func TestServerStartRejectsBadAddress(t *testing.T) {
	s := NewServer(&Live{})
	if _, err := s.Start("256.256.256.256:99999"); err == nil {
		t.Fatal("Start accepted an unbindable address")
	}
	// Shutdown on a never-started server is a no-op.
	if err := s.Shutdown(time.Second); err != nil {
		t.Errorf("Shutdown of unstarted server: %v", err)
	}
}
