package obs

import (
	"fmt"
	"io"
	"strings"
)

// Value is one metric's state inside a Snapshot. Counter and gauge
// values live in Value; histograms carry Count/Sum and, when bucketed,
// parallel Bounds/Buckets slices (Buckets has one extra trailing
// overflow bucket).
type Value struct {
	Name    string  `json:"name"`
	Type    Type    `json:"-"`
	Kind    string  `json:"type"` // Type rendered for JSON consumers
	Unit    string  `json:"unit,omitempty"`
	Value   int64   `json:"value"`
	Count   int64   `json:"count,omitempty"`
	Sum     int64   `json:"sum,omitempty"`
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot is an immutable capture of a whole registry. Snapshots are
// plain data: safe to hand to other goroutines, serialize as JSON, or
// merge across shards.
type Snapshot struct {
	Seq    int64   `json:"seq"`
	Values []Value `json:"values"`
}

// Get returns the named value.
func (s *Snapshot) Get(name string) (Value, bool) {
	for i := range s.Values {
		if s.Values[i].Name == name {
			return s.Values[i], true
		}
	}
	return Value{}, false
}

// Counter returns the named counter/gauge value, or 0 when absent —
// the convenient form for renderers that tolerate missing metrics.
func (s *Snapshot) Counter(name string) int64 {
	v, _ := s.Get(name)
	return v.Value
}

// Merge folds other into s: counters and histograms add, gauges add too
// (for occupancy-style gauges the cross-shard sum is the meaningful
// total). Metrics present only in other are appended. Merge is how
// per-shard registries aggregate in parallelFor-driven studies.
func (s *Snapshot) Merge(other Snapshot) {
	idx := make(map[string]int, len(s.Values))
	for i := range s.Values {
		idx[s.Values[i].Name] = i
	}
	for _, ov := range other.Values {
		i, ok := idx[ov.Name]
		if !ok {
			cp := ov
			cp.Bounds = append([]int64(nil), ov.Bounds...)
			cp.Buckets = append([]int64(nil), ov.Buckets...)
			s.Values = append(s.Values, cp)
			continue
		}
		v := &s.Values[i]
		v.Value += ov.Value
		v.Count += ov.Count
		v.Sum += ov.Sum
		if len(v.Buckets) == len(ov.Buckets) {
			for k := range v.Buckets {
				v.Buckets[k] += ov.Buckets[k]
			}
		}
	}
}

// Delta returns s minus prev for cumulative metrics (counters and
// histograms); gauges keep their current level. Phase timelines are
// rendered from consecutive interval-snapshot deltas.
func (s *Snapshot) Delta(prev *Snapshot) Snapshot {
	out := Snapshot{Seq: s.Seq, Values: make([]Value, len(s.Values))}
	copy(out.Values, s.Values)
	if prev == nil {
		for i := range out.Values {
			out.Values[i].Bounds = append([]int64(nil), s.Values[i].Bounds...)
			out.Values[i].Buckets = append([]int64(nil), s.Values[i].Buckets...)
		}
		return out
	}
	for i := range out.Values {
		v := &out.Values[i]
		v.Bounds = append([]int64(nil), s.Values[i].Bounds...)
		v.Buckets = append([]int64(nil), s.Values[i].Buckets...)
		pv, ok := prev.Get(v.Name)
		if !ok || v.Type == TypeGauge {
			continue
		}
		v.Value -= pv.Value
		v.Count -= pv.Count
		v.Sum -= pv.Sum
		if len(v.Buckets) == len(pv.Buckets) {
			for k := range v.Buckets {
				v.Buckets[k] -= pv.Buckets[k]
			}
		}
	}
	return out
}

// FillKinds populates the JSON-facing Kind field from Type. Callers
// marshalling snapshots (expvar, JSONL sidecars) should invoke it once
// after capture; it is idempotent.
func (s *Snapshot) FillKinds() {
	for i := range s.Values {
		s.Values[i].Kind = s.Values[i].Type.String()
	}
}

// promSanitize maps a metric name to the Prometheus charset (the
// registry already enforces snake_case, so this is belt-and-braces for
// units and dashes).
func promSanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (v0.0.4): one HELP/TYPE pair per metric, histogram buckets as
// cumulative `le` series plus _sum and _count.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for i := range s.Values {
		v := &s.Values[i]
		name := promSanitize(v.Name)
		if v.Unit != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s (%s)\n", name, v.Unit); err != nil {
				return err
			}
		}
		switch v.Type {
		case TypeHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := int64(0)
			for k, b := range v.Bounds {
				if k < len(v.Buckets) {
					cum += v.Buckets[k]
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, v.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, v.Sum, name, v.Count); err != nil {
				return err
			}
		case TypeGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v.Value); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
