package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSnapshotExport drives the ownership model the whole
// observability plane rests on — a single writer goroutine mutating its
// plain-int64 registry and publishing immutable snapshots through Live,
// while reader goroutines concurrently snapshot, export, and diff —
// and checks, under the race detector, that every published snapshot is
// internally consistent no matter when it is read.
//
// The writer maintains the invariant counter == gauge == histogram
// count at every publish point, so any reader observing a mix of two
// publishes (or a snapshot aliasing live registry memory) fails the
// consistency check even without -race.
func TestConcurrentSnapshotExport(t *testing.T) {
	const (
		iters   = 20_000
		every   = 64 // publish cadence in iterations
		readers = 4
	)
	var live Live

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		reg := NewRegistry()
		var c Counter
		var g Gauge
		var h Histogram
		reg.Counter("work_total", "ops", "work items", &c)
		reg.Gauge("level", "ops", "current level", &g)
		reg.Histogram("size", "ops", "work size", &h)
		h.SetBounds(1, 10, 100, 1000)
		seq := int64(0)
		for i := 1; i <= iters; i++ {
			c.Inc()
			g.Set(int64(i))
			h.Observe(int64(i % 500))
			if i%every == 0 {
				seq++
				live.Publish(reg.Snapshot(seq))
			}
		}
		seq++
		live.Publish(reg.Snapshot(seq))
	}()

	check := func(s *Snapshot) {
		c := s.Counter("work_total")
		gv, ok := s.Get("level")
		if !ok {
			t.Error("published snapshot missing gauge 'level'")
			return
		}
		hv, ok := s.Get("size")
		if !ok {
			t.Error("published snapshot missing histogram 'size'")
			return
		}
		if c != gv.Value || c != hv.Count {
			t.Errorf("torn snapshot: counter %d, gauge %d, histogram count %d", c, gv.Value, hv.Count)
		}
	}

	var rg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(id int) {
			defer rg.Done()
			var lastSeq int64
			var prev *Snapshot
			for {
				select {
				case <-done:
					return
				default:
				}
				s := live.Load()
				if s == nil {
					continue
				}
				if s.Seq < lastSeq {
					t.Errorf("reader %d: snapshot sequence went backwards: %d after %d", id, s.Seq, lastSeq)
					return
				}
				lastSeq = s.Seq
				check(s)
				switch id % 3 {
				case 0: // Prometheus text export
					var buf bytes.Buffer
					if err := s.WritePrometheus(&buf); err != nil {
						t.Errorf("reader %d: prometheus export: %v", id, err)
						return
					}
					if !strings.Contains(buf.String(), "work_total") {
						t.Errorf("reader %d: export lost the counter", id)
						return
					}
				case 1: // JSON export (the /snapshot endpoint's encoding)
					if _, err := json.Marshal(s); err != nil {
						t.Errorf("reader %d: json export: %v", id, err)
						return
					}
				case 2: // interval delta (the phase-timeline computation)
					if prev != nil && prev.Seq <= s.Seq {
						d := s.Delta(prev)
						if got := d.Counter("work_total"); got < 0 {
							t.Errorf("reader %d: negative counter delta %d across publishes", id, got)
							return
						}
					}
					cp := *s
					prev = &cp
				}
			}
		}(r)
	}

	wg.Wait()
	close(done)
	rg.Wait()

	// The final published snapshot must reconcile exactly with what the
	// writer did: iters increments, last gauge level, iters observations.
	final := live.Load()
	if final == nil {
		t.Fatal("no snapshot published")
	}
	if got := final.Counter("work_total"); got != iters {
		t.Errorf("final counter = %d, want %d", got, iters)
	}
	if gv, _ := final.Get("level"); gv.Value != iters {
		t.Errorf("final gauge = %d, want %d", gv.Value, iters)
	}
	if hv, _ := final.Get("size"); hv.Count != iters {
		t.Errorf("final histogram count = %d, want %d", hv.Count, iters)
	}
}
