package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server owns the live-introspection HTTP endpoint for one simulation
// run: it binds eagerly (so a bad -metrics-addr fails at startup, not
// silently in a goroutine), serves a Live's handler in the background,
// and shuts down gracefully — in-flight scrapes finish, bounded by a
// timeout — when the simulation ends.
type Server struct {
	srv  *http.Server
	addr string
	done chan error // Serve's exit status
}

// NewServer builds a server for l's introspection surface.
func NewServer(l *Live) *Server {
	return NewHandlerServer(l.Handler())
}

// NewHandlerServer builds a server for an arbitrary handler — the
// zsimd service daemon reuses the bind-eagerly/serve-background/
// drain-on-shutdown lifecycle around its own API surface. The
// ReadHeaderTimeout bounds how long a slow client may dribble request
// headers before the connection is shed; without it one idle socket per
// worker is all it takes to wedge a drain.
func NewHandlerServer(h http.Handler) *Server {
	return &Server{srv: &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}}
}

// Start binds addr and begins serving in a background goroutine. It
// returns the bound address (useful with ":0" in tests) or the bind
// error.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: binding metrics address %s: %w", addr, err)
	}
	s.addr = ln.Addr().String()
	s.done = make(chan error, 1)
	go func() { s.done <- s.srv.Serve(ln) }()
	return s.addr, nil
}

// Addr returns the bound address after a successful Start.
func (s *Server) Addr() string { return s.addr }

// Shutdown stops the server gracefully: no new connections, in-flight
// requests run to completion or until timeout elapses, whichever comes
// first. Safe to call once after Start.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s.done == nil {
		return nil // never started
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if serr := <-s.done; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		err = errors.Join(err, serr)
	}
	return err
}
