// Package span is the hierarchical tracing layer of the observability
// stack: where internal/obs counts *what* happened, span records *when*
// and *under whom*. A sharded study renders as a tree —
//
//	study → shard worker → unit → engine phase → batch → refill
//
// — with scheduler steal decisions as instant events, exportable to the
// Chrome trace_event timeline (internal/obs/export.WriteChromeSpans).
//
// The design mirrors the obs registry's ownership model exactly:
//
//  1. Disabled tracing must cost nothing. Every Recorder and Span
//     method is a nil-receiver no-op, so the hot path pays one
//     predictable branch and zero allocations when no trace is
//     attached. The disabled path is pinned by the hotalloc analyzer
//     and a 0 allocs/op benchmark (span_test.go).
//  2. Recorders are goroutine-local: a Recorder buffers events for the
//     one goroutine that owns it, with plain (non-atomic) appends and
//     sequence counters. Events cross goroutine boundaries only through
//     Trace.Adopt after the owning goroutine has finished (the same
//     result-slot discipline the scheduler uses for obs snapshots).
//  3. Span identity is deterministic: IDs are derived from the worker
//     number and a per-recorder sequence, never from global state, so
//     two runs of the same schedule produce the same span tree shape.
//
// Wall-clock reads live here — and only here — because spans measure
// host execution time, never simulated time; the span layer is
// deliberately outside the determinism analyzer's critical set and no
// span data ever reaches engine.Result or a metrics registry (the
// serial-oracle differential gate compares those bit-for-bit).
package span

import (
	"sort"
	"sync"
	"time"
)

// Kind classifies a span or instant event within the pipeline tree.
type Kind uint8

// Span kinds, from the root of the tree down.
const (
	KindStudy  Kind = iota // one RunUnits invocation
	KindWorker             // one shard worker's lifetime
	KindUnit               // one simulation unit on its worker
	KindPhase              // engine phase: warmup or steady
	KindBatch              // one StepBatch call
	KindRefill             // one FileSource batch refill (disk read + decode)
	KindSteal              // instant: a successful steal (loot count, victim)
	numKinds
)

// String implements fmt.Stringer; the names double as Chrome trace
// categories.
func (k Kind) String() string {
	switch k {
	case KindStudy:
		return "study"
	case KindWorker:
		return "worker"
	case KindUnit:
		return "unit"
	case KindPhase:
		return "phase"
	case KindBatch:
		return "batch"
	case KindRefill:
		return "refill"
	case KindSteal:
		return "steal"
	default:
		return "span"
	}
}

// ArgNames returns the display labels of a kind's two event arguments;
// empty names mean the argument is unused and exporters omit it.
func (k Kind) ArgNames() (string, string) {
	switch k {
	case KindStudy:
		return "units", "workers"
	case KindWorker:
		return "units_run", "units_stolen"
	case KindUnit:
		return "instructions", ""
	case KindPhase:
		return "instructions", ""
	case KindBatch:
		return "bulk_records", "slow_records"
	case KindRefill:
		return "records", ""
	case KindSteal:
		return "units", "victim"
	default:
		return "", ""
	}
}

// ID identifies one span within a Trace. The zero ID means "no parent"
// (a root span). IDs pack the recorder's worker number in the high bits
// and a per-recorder sequence in the low bits, so they are unique
// across workers without any shared state.
type ID uint64

// Event is one completed span or instant, plain data safe to hand
// across goroutines once adopted. Times are nanoseconds since the
// owning Trace's epoch.
type Event struct {
	ID      ID     `json:"id"`
	Parent  ID     `json:"parent,omitempty"`
	Kind    Kind   `json:"-"`
	Name    string `json:"name"`
	Worker  int    `json:"worker"`
	Start   int64  `json:"start_ns"`
	Dur     int64  `json:"dur_ns"`
	Instant bool   `json:"instant,omitempty"`
	Arg1    int64  `json:"arg1"`
	Arg2    int64  `json:"arg2"`
}

// Trace collects the spans of one study. The mutex guards only Adopt
// and Events — recorders buffer locally and adopt in bulk, so the hot
// path never touches it. A nil *Trace is valid and hands out nil
// Recorders, which disables tracing end to end.
type Trace struct {
	epoch time.Time
	mu    sync.Mutex
	// evs holds adopted events.
	//
	//zbp:guardedby mu
	evs []Event
}

// NewTrace returns an empty trace whose epoch is now. All span times
// are reported relative to this instant.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// NewRecorder hands out a goroutine-local recorder labelled with a
// worker number (0 is conventionally the scheduler/driver, shard
// workers are 1-based). On a nil Trace it returns a nil Recorder, whose
// every method is a no-op — the disabled path.
func (t *Trace) NewRecorder(worker int) *Recorder {
	if t == nil {
		return nil
	}
	return &Recorder{t: t, worker: worker}
}

// Adopt moves r's buffered events into the trace. Call it only after
// r's owning goroutine has finished (or from that goroutine); the
// scheduler adopts worker recorders after wg.Wait, exactly like worker
// obs snapshots. Adopting a nil recorder is a no-op.
func (t *Trace) Adopt(r *Recorder) {
	if t == nil || r == nil || len(r.evs) == 0 {
		return
	}
	t.mu.Lock()
	t.evs = append(t.evs, r.evs...)
	t.mu.Unlock()
	r.evs = nil
}

// Len returns the number of adopted events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.evs)
	t.mu.Unlock()
	return n
}

// Events returns every adopted event ordered by start time (ID breaks
// ties), as a copy safe to retain.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.evs))
	copy(out, t.evs)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// workerShift positions the worker number above any plausible
// per-recorder sequence (2^40 events per worker).
const workerShift = 40

// Recorder buffers span events for one goroutine. The zero *Recorder
// (nil) is the disabled recorder: every method no-ops. Recorders are
// not safe for concurrent use — one per goroutine, like obs.Registry.
type Recorder struct {
	t      *Trace
	worker int
	seq    uint64
	evs    []Event
}

// Enabled reports whether the recorder actually records. Use it to
// skip argument computation that is only needed for tracing.
func (r *Recorder) Enabled() bool { return r != nil }

// Worker returns the recorder's worker number (0 when disabled).
func (r *Recorder) Worker() int {
	if r == nil {
		return 0
	}
	return r.worker
}

// now returns nanoseconds since the trace epoch (monotonic).
//
//zbp:hotpath
func (r *Recorder) now() int64 {
	return int64(time.Since(r.t.epoch))
}

// nextID mints the next deterministic span ID for this recorder.
//
//zbp:hotpath
func (r *Recorder) nextID() ID {
	r.seq++
	return ID(uint64(r.worker+1)<<workerShift | r.seq)
}

// Start opens a span of the given kind under parent (0 for a root) and
// returns its handle. On a nil recorder it returns the zero Span, whose
// End/EndArgs are no-ops. Nothing is buffered until the span ends.
//
//zbp:hotpath
func (r *Recorder) Start(kind Kind, name string, parent ID) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, id: r.nextID(), parent: parent, kind: kind, name: name, start: r.now()}
}

// Instant records a zero-duration event (a steal decision, a marker)
// under parent.
//
//zbp:hotpath
func (r *Recorder) Instant(kind Kind, name string, parent ID, arg1, arg2 int64) {
	if r == nil {
		return
	}
	r.evs = append(r.evs, Event{
		ID:      r.nextID(),
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		Worker:  r.worker,
		Start:   r.now(),
		Instant: true,
		Arg1:    arg1,
		Arg2:    arg2,
	})
}

// Span is an open span handle. The zero Span (from a nil recorder) is
// inert. Spans are values: cheap to pass, nothing to free.
type Span struct {
	r      *Recorder
	id     ID
	parent ID
	kind   Kind
	name   string
	start  int64
}

// ID returns the span's identity for parenting children (0 when inert,
// which children interpret as "root").
func (s Span) ID() ID { return s.id }

// End closes the span with no arguments.
//
//zbp:hotpath
func (s Span) End() { s.EndArgs(0, 0) }

// EndArgs closes the span, attaching two kind-specific arguments (see
// Kind.ArgNames). The event is buffered on the owning recorder.
//
//zbp:hotpath
func (s Span) EndArgs(arg1, arg2 int64) {
	if s.r == nil {
		return
	}
	s.r.evs = append(s.r.evs, Event{
		ID:     s.id,
		Parent: s.parent,
		Kind:   s.kind,
		Name:   s.name,
		Worker: s.r.worker,
		Start:  s.start,
		Dur:    s.r.now() - s.start,
		Arg1:   arg1,
		Arg2:   arg2,
	})
}
