package span

import (
	"testing"
)

// TestDisabledPathNoAllocs pins the zero-alloc contract of the nil
// recorder: a pipeline built with tracing off must not pay a single
// allocation for its span calls. This is the runtime half of the
// hotalloc analyzer's static check.
func TestDisabledPathNoAllocs(t *testing.T) {
	var tr *Trace // nil trace: tracing disabled end to end
	rec := tr.NewRecorder(1)
	if rec.Enabled() {
		t.Fatal("nil trace handed out an enabled recorder")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.Start(KindBatch, "batch", 0)
		rec.Instant(KindSteal, "steal", sp.ID(), 3, 2)
		sp.EndArgs(1024, 0)
		sp2 := rec.Start(KindRefill, "refill", sp.ID())
		sp2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocated %v times per run, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace accumulated events")
	}
	tr.Adopt(rec) // must not panic
}

// TestHierarchyRoundTrip records a miniature study tree through two
// recorders and checks identity, parentage, ordering, and args survive
// adoption.
func TestHierarchyRoundTrip(t *testing.T) {
	tr := NewTrace()
	sched := tr.NewRecorder(0)
	study := sched.Start(KindStudy, "study", 0)

	w1 := tr.NewRecorder(1)
	ws := w1.Start(KindWorker, "worker", study.ID())
	us := w1.Start(KindUnit, "oltp-1/base", ws.ID())
	bs := w1.Start(KindBatch, "batch", us.ID())
	bs.EndArgs(1000, 24)
	w1.Instant(KindSteal, "steal", ws.ID(), 2, 3)
	us.EndArgs(150_000, 0)
	ws.EndArgs(1, 0)

	study.EndArgs(1, 1)
	tr.Adopt(sched)
	tr.Adopt(w1)

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	byName := map[string]Event{}
	seen := map[ID]bool{}
	for _, e := range evs {
		if e.ID == 0 {
			t.Errorf("event %q has zero ID", e.Name)
		}
		if seen[e.ID] {
			t.Errorf("duplicate span ID %d", e.ID)
		}
		seen[e.ID] = true
		if e.Dur < 0 {
			t.Errorf("event %q has negative duration %d", e.Name, e.Dur)
		}
		byName[e.Name] = e
	}
	if got := byName["batch"]; got.Parent != byName["oltp-1/base"].ID || got.Arg1 != 1000 || got.Arg2 != 24 {
		t.Errorf("batch span wrong: %+v", got)
	}
	if got := byName["oltp-1/base"]; got.Parent != byName["worker"].ID {
		t.Errorf("unit span not parented to worker: %+v", got)
	}
	if got := byName["worker"]; got.Parent != byName["study"].ID || got.Worker != 1 {
		t.Errorf("worker span wrong: %+v", got)
	}
	if got := byName["steal"]; !got.Instant || got.Arg1 != 2 || got.Arg2 != 3 {
		t.Errorf("steal instant wrong: %+v", got)
	}
	if byName["study"].Worker != 0 {
		t.Errorf("study span should be on worker 0: %+v", byName["study"])
	}
	// Events are sorted by start time; the study opened first.
	if evs[0].Start > evs[len(evs)-1].Start {
		t.Error("events not sorted by start time")
	}
}

// TestDeterministicIDs checks IDs depend only on (worker, sequence) so
// two identical schedules produce identical span identities.
func TestDeterministicIDs(t *testing.T) {
	mint := func() []ID {
		tr := NewTrace()
		var ids []ID
		for w := 0; w < 3; w++ {
			rec := tr.NewRecorder(w)
			for i := 0; i < 4; i++ {
				sp := rec.Start(KindUnit, "u", 0)
				ids = append(ids, sp.ID())
				sp.End()
			}
		}
		return ids
	}
	a, b := mint(), mint()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ID %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "span" {
			t.Errorf("kind %d has no name", k)
		}
		a1, _ := k.ArgNames()
		if a1 == "" {
			t.Errorf("kind %s has no first arg name", k)
		}
	}
}

// BenchmarkDisabledSpan is the disabled-path benchmark mirroring PR 1's
// disabled-metrics benchmarks: run with -benchmem, allocs/op must be 0.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Trace
	rec := tr.NewRecorder(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.Start(KindBatch, "batch", 0)
		sp.EndArgs(int64(i), 0)
	}
}

// BenchmarkEnabledSpan measures the enabled-path cost per span for the
// PERFORMANCE.md numbers; it allocates only on buffer growth.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTrace()
	rec := tr.NewRecorder(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.Start(KindBatch, "batch", 0)
		sp.EndArgs(int64(i), 0)
	}
}
