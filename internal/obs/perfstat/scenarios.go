package perfstat

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"bulkpreload/internal/core"
	"bulkpreload/internal/engine"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// The scenarios mirror the repo's parallel benchmarks
// (bench_parallel_test.go) exactly — same sweep geometry, same warmup,
// same decoder stream — so trajectory entries, `go test -bench` output,
// and the CI gate all describe one workload.

// Scenario names recorded in trajectory entries.
const (
	ScenarioCapacitySweep = "capacity_sweep"
	ScenarioBatchDecode   = "batch_decode"
	ScenarioPackedTables  = "packed_tables"
)

// ScenarioInfo describes one named scenario for listings.
type ScenarioInfo struct {
	Name        string
	Description string
}

// Scenarios lists every scenario the runner measures, in run order.
func Scenarios() []ScenarioInfo {
	return []ScenarioInfo{
		{ScenarioCapacitySweep,
			"Figure 5-style BTB2 capacity sweep (2 profiles x base+5 row counts) " +
				"through the serial oracle and the work-stealing batched scheduler, " +
				"with a differential cross-check"},
		{ScenarioBatchDecode,
			"zero-alloc ZBPT batch decoder over an in-memory stream: " +
				"throughput plus steady-state allocations per batch"},
		{ScenarioPackedTables,
			"per-structure predictor-table microbenchmarks: BTB lookup/insert " +
				"and PHT/CTB lookup rates for the packed structure-of-arrays " +
				"layout vs the struct-layout oracle, with a randomized " +
				"layout-equivalence tripwire"},
	}
}

// Options configures a perfstat run.
type Options struct {
	Workers int    // scheduler workers; 0 means GOMAXPROCS
	Runs    int    // median-of-N repetitions; <= 1 means a single run
	Label   string // free-form tag recorded in the entry, e.g. "PR 6"

	// Instruction counts per scenario. Zero selects the benchmark-suite
	// defaults; tests shrink them to keep the suite fast.
	SweepInstructions  int // per profile trace length (default 150_000)
	DecodeInstructions int // decoder throughput stream (default 200_000)
	PackedOps          int // timed ops per packed-table measurement (default 1_000_000)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Runs < 1 {
		out.Runs = 1
	}
	if out.SweepInstructions <= 0 {
		out.SweepInstructions = 150_000
	}
	if out.DecodeInstructions <= 0 {
		out.DecodeInstructions = 200_000
	}
	if out.PackedOps <= 0 {
		out.PackedOps = 1_000_000
	}
	return out
}

// Run measures every scenario opt.Runs times and returns one trajectory
// entry with per-metric medians (correctness metrics take the maximum
// instead: a mismatch in any run must fail the gate, not be voted away
// by clean reruns).
func Run(ctx context.Context, opt Options) (Entry, error) {
	o := opt.withDefaults()
	runs := make([][]ScenarioResult, 0, o.Runs)
	for i := 0; i < o.Runs; i++ {
		sweep, err := runCapacitySweep(ctx, o.Workers, o.SweepInstructions)
		if err != nil {
			return Entry{}, fmt.Errorf("perfstat: %s run %d: %w", ScenarioCapacitySweep, i+1, err)
		}
		decode, err := runBatchDecode(o.DecodeInstructions)
		if err != nil {
			return Entry{}, fmt.Errorf("perfstat: %s run %d: %w", ScenarioBatchDecode, i+1, err)
		}
		packed, err := runPackedTables(o.PackedOps)
		if err != nil {
			return Entry{}, fmt.Errorf("perfstat: %s run %d: %w", ScenarioPackedTables, i+1, err)
		}
		runs = append(runs, []ScenarioResult{sweep, decode, packed})
	}
	entry := Entry{
		Schema:      SchemaVersion,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Label:       o.Label,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     o.Workers,
		Runs:        o.Runs,
	}
	for s := range runs[0] {
		combined := runs[0][s]
		combined.Metrics = make(map[string]float64, len(runs[0][s].Metrics))
		for name := range runs[0][s].Metrics {
			samples := make([]float64, len(runs))
			for r := range runs {
				samples[r] = runs[r][s].Metrics[name]
			}
			if isZeroMetric(name) {
				combined.Metrics[name] = maxOf(samples)
			} else {
				combined.Metrics[name] = median(samples)
			}
		}
		entry.Scenarios = append(entry.Scenarios, combined)
	}
	return entry, nil
}

func isZeroMetric(name string) bool {
	for _, m := range zeroMetrics {
		if m == name {
			return true
		}
	}
	return false
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: runs counts are tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// SweepUnitLabels exposes the capacity-sweep unit labels at benchmark
// scale so the repo's benchmark suite can pin, in a test, that perfstat
// and `go test -bench` measure the same workload.
func SweepUnitLabels() []string {
	units := sweepUnits(150_000)
	labels := make([]string, len(units))
	for i := range units {
		labels[i] = units[i].Label
	}
	return labels
}

// sweepUnits is the capacity-sweep workload, identical to
// capacitySweepUnits in bench_parallel_test.go: two Table 4 profiles,
// each at the one-level base config plus five BTB2 row counts.
func sweepUnits(insts int) []sim.Unit {
	params := engine.DefaultParams()
	params.WarmupInstructions = 50_000
	if params.WarmupInstructions >= int64(insts) {
		params.WarmupInstructions = int64(insts) / 3
	}
	all := workload.Table4Profiles(insts)
	profiles := []workload.Profile{all[0], all[10]}
	rowCounts := []int{512, 1024, 2048, 4096, 8192}
	var units []sim.Unit
	for _, p := range profiles {
		units = append(units, sim.ProfileUnit(p, core.OneLevelConfig(), params, "base"))
		for _, rows := range rowCounts {
			cfg := core.DefaultConfig()
			cfg.BTB2 = sim.BTB2Geometry(rows)
			units = append(units, sim.ProfileUnit(p, cfg, params, fmt.Sprintf("btb2-%drows", rows)))
		}
	}
	return units
}

// runCapacitySweep times the sweep through the serial oracle and the
// parallel scheduler, cross-checking the two result sets record for
// record. Wall-clock timing here is measurement, not simulation: span
// and perfstat data never reach engine results.
func runCapacitySweep(ctx context.Context, workers, insts int) (ScenarioResult, error) {
	units := sweepUnits(insts)

	start := time.Now()
	serial, err := sim.RunUnitsSerial(units)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("serial oracle: %w", err)
	}
	serialSec := time.Since(start).Seconds()

	start = time.Now()
	parallel, stats, err := sim.RunUnitsStats(ctx, workers, units)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("parallel pipeline: %w", err)
	}
	parallelSec := time.Since(start).Seconds()

	mismatches := 0
	for i := range units {
		mismatches += len(sim.DiffResults(units[i].Label, serial[i], parallel[i]))
	}
	var records int64
	for i := range serial {
		records += serial[i].Instructions
	}
	return ScenarioResult{
		Name:    ScenarioCapacitySweep,
		Units:   len(units),
		Records: records,
		Metrics: map[string]float64{
			MetricSerialSec:   serialSec,
			MetricParallelSec: parallelSec,
			MetricSerialRPS:   float64(records) / serialSec,
			MetricParallelRPS: float64(records) / parallelSec,
			MetricSpeedup:     serialSec / parallelSec,
			MetricSteals:      float64(stats.Steals),
			MetricMismatches:  float64(mismatches),
		},
	}, nil
}

// runBatchDecode measures the bulk decoder alone: full-stream
// throughput over an in-memory ZBPT trace, then steady-state
// allocations per batch on a stream long enough that the measured calls
// never hit EOF (the rewind path allocates by design).
func runBatchDecode(insts int) (ScenarioResult, error) {
	data, err := encodeTrace(insts)
	if err != nil {
		return ScenarioResult{}, err
	}
	// Several full passes over the same stream: one pass is only a few
	// milliseconds, too short for a stable throughput figure, and
	// decoding identical bytes again is the identical workload.
	const passes = 5
	batch := trace.NewBatch(trace.DefaultBatchCapacity)
	var decoded int64
	start := time.Now()
	for p := 0; p < passes; p++ {
		dec, err := trace.NewBatchDecoder(bytes.NewReader(data), trace.DefaultBatchCapacity)
		if err != nil {
			return ScenarioResult{}, err
		}
		for {
			err := dec.Next(&batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				return ScenarioResult{}, fmt.Errorf("decode: %w", err)
			}
			decoded += int64(len(batch.Ins))
		}
	}
	decodeSec := time.Since(start).Seconds()

	const allocRuns = 20
	const allocCap = 64
	allocData, err := encodeTrace(4 * allocRuns * allocCap)
	if err != nil {
		return ScenarioResult{}, err
	}
	adec, err := trace.NewBatchDecoder(bytes.NewReader(allocData), allocCap)
	if err != nil {
		return ScenarioResult{}, err
	}
	abatch := trace.NewBatch(allocCap)
	allocs, err := allocsPerRun(allocRuns, func() error { return adec.Next(&abatch) })
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("decode alloc pass: %w", err)
	}

	return ScenarioResult{
		Name:    ScenarioBatchDecode,
		Records: decoded,
		Metrics: map[string]float64{
			MetricDecodeRPS:   float64(decoded) / decodeSec,
			MetricDecodeAlloc: allocs,
		},
	}, nil
}

// encodeTrace serializes a generated workload to the ZBPT wire format
// in memory (the same stream bench_parallel_test.go decodes).
func encodeTrace(insts int) ([]byte, error) {
	prof, err := workload.ByName("zos-daytrader-dbserv", insts)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := trace.Write(&buf, workload.New(prof)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// allocsPerRun is testing.AllocsPerRun for non-test code: one warmup
// call, then runs timed calls on a single P with mallocs counted via
// runtime.ReadMemStats.
func allocsPerRun(runs int, f func() error) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if err := f(); err != nil {
		return 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs), nil
}
