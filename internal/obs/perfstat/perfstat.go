// Package perfstat is the benchmark-trajectory subsystem: it runs the
// named performance scenarios of the parallel pipeline (the BTB2
// capacity sweep through the serial oracle and the work-stealing
// batched scheduler, and the zero-alloc batch decoder in isolation),
// records structured results, and maintains a git-committed trajectory
// file — BENCH_parallel.json, one entry per PR — that a CI gate
// compares new runs against, failing on throughput or speedup
// regressions beyond a threshold.
//
// The trajectory is schema-versioned plain JSON so the history stays
// diffable and machine-readable across tool revisions. Correctness
// metrics (differential mismatches, decoder allocations per batch) are
// gated unconditionally at zero; throughput metrics are gated only
// against a baseline entry recorded on a comparable host (matching
// GOMAXPROCS — see Baseline), which keeps the gate meaningful on
// developer machines and CI runners with different core counts.
package perfstat

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion is the trajectory schema this package reads and writes.
// Readers accept older schemas (fields only accrete) and refuse newer
// ones.
const SchemaVersion = 1

// Metric names shared by the runner and the gate.
const (
	MetricSerialRPS   = "serial_records_per_sec"
	MetricParallelRPS = "parallel_records_per_sec"
	MetricSpeedup     = "speedup"
	MetricSteals      = "steals"
	MetricSerialSec   = "serial_seconds"
	MetricParallelSec = "parallel_seconds"
	MetricDecodeRPS   = "decode_records_per_sec"
	MetricDecodeAlloc = "decode_allocs_per_batch"
	MetricMismatches  = "differential_mismatches"

	// packed_tables scenario: per-structure lookup/insert rates for the
	// packed structure-of-arrays layout and the retained struct-layout
	// oracle, plus a layout equivalence cross-check.
	MetricBTBPackedLookup = "btb_packed_lookup_ops_per_sec"
	MetricBTBStructLookup = "btb_struct_lookup_ops_per_sec"
	MetricBTBPackedInsert = "btb_packed_insert_ops_per_sec"
	MetricBTBStructInsert = "btb_struct_insert_ops_per_sec"
	MetricPHTPackedLookup = "pht_packed_lookup_ops_per_sec"
	MetricPHTStructLookup = "pht_struct_lookup_ops_per_sec"
	MetricCTBPackedLookup = "ctb_packed_lookup_ops_per_sec"
	MetricCTBStructLookup = "ctb_struct_lookup_ops_per_sec"
	MetricLayoutMismatch  = "layout_mismatches"
)

// throughputMetrics are gated lower-is-worse against the baseline.
// Only the packed (shipping-layout) table rates are gated: the struct
// oracle's rates are recorded for the before/after record but a slower
// oracle is not a regression.
var throughputMetrics = []string{
	MetricSerialRPS, MetricParallelRPS, MetricSpeedup, MetricDecodeRPS,
	MetricBTBPackedLookup, MetricBTBPackedInsert,
	MetricPHTPackedLookup, MetricCTBPackedLookup,
}

// zeroMetrics must be exactly zero in every run, baseline or not: a
// nonzero value means the pipeline is wrong, not slow.
var zeroMetrics = []string{MetricDecodeAlloc, MetricMismatches, MetricLayoutMismatch}

// ScenarioResult is one named scenario's measurements within an entry.
type ScenarioResult struct {
	Name    string             `json:"name"`
	Units   int                `json:"units,omitempty"`
	Records int64              `json:"records"`
	Metrics map[string]float64 `json:"metrics"`
}

// Metric returns the named metric, or 0 when absent.
func (s *ScenarioResult) Metric(name string) float64 { return s.Metrics[name] }

// Entry is one trajectory point: every scenario measured once (or as a
// median of several runs) on one host configuration.
type Entry struct {
	Schema      int              `json:"schema"`
	GeneratedAt string           `json:"generated_at"`
	Label       string           `json:"label,omitempty"` // e.g. "PR 6"
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Workers     int              `json:"workers"`
	Runs        int              `json:"runs"` // median-of-N run count
	Scenarios   []ScenarioResult `json:"scenarios"`
}

// Scenario returns the named scenario result, or nil when absent.
func (e *Entry) Scenario(name string) *ScenarioResult {
	for i := range e.Scenarios {
		if e.Scenarios[i].Name == name {
			return &e.Scenarios[i]
		}
	}
	return nil
}

// Trajectory is the committed benchmark history, oldest entry first.
type Trajectory struct {
	Schema  int     `json:"schema"`
	Entries []Entry `json:"entries"`
}

// LoadTrajectory reads the trajectory file at path. A missing file is
// an empty trajectory (the gate's bootstrap case); a file written by a
// newer schema is an error.
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{Schema: SchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("perfstat: %s: %w", path, err)
	}
	if t.Schema > SchemaVersion {
		return nil, fmt.Errorf("perfstat: %s uses schema %d, newer than this tool's %d",
			path, t.Schema, SchemaVersion)
	}
	return &t, nil
}

// Append adds e to the trajectory, stamping the current schema.
func (t *Trajectory) Append(e Entry) {
	t.Schema = SchemaVersion
	t.Entries = append(t.Entries, e)
}

// Write renders the trajectory as indented JSON at path.
func (t *Trajectory) Write(path string) error {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// Baseline selects the entry the gate compares throughput against: the
// most recent entry whose GOMAXPROCS matches the current host. Entries
// from hosts with different core counts are not comparable on absolute
// records/sec or speedup, so when no entry matches, Baseline returns
// nil and the gate falls back to correctness-only checks.
func (t *Trajectory) Baseline(gomaxprocs int) *Entry {
	for i := len(t.Entries) - 1; i >= 0; i-- {
		if t.Entries[i].GOMAXPROCS == gomaxprocs {
			return &t.Entries[i]
		}
	}
	return nil
}

// Regression is one gate failure: a metric that moved the wrong way.
type Regression struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Reason   string  `json:"reason"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s: %s (baseline %.4g, current %.4g)",
		r.Scenario, r.Metric, r.Reason, r.Baseline, r.Current)
}

// Compare gates current against baseline. Correctness metrics
// (differential mismatches, decoder allocations) must be zero
// unconditionally. Throughput metrics (records/sec, speedup) must not
// fall more than threshold (a fraction, e.g. 0.15 for 15%) below the
// baseline's value; they are skipped for scenarios the baseline lacks,
// and entirely when baseline is nil (no comparable host in the
// trajectory). The returned slice is empty when the gate passes.
func Compare(baseline *Entry, current Entry, threshold float64) []Regression {
	var regs []Regression
	for i := range current.Scenarios {
		cur := &current.Scenarios[i]
		for _, m := range zeroMetrics {
			if v, ok := cur.Metrics[m]; ok && v != 0 {
				regs = append(regs, Regression{
					Scenario: cur.Name, Metric: m, Current: v,
					Reason: "must be exactly zero",
				})
			}
		}
		if baseline == nil {
			continue
		}
		base := baseline.Scenario(cur.Name)
		if base == nil {
			continue
		}
		for _, m := range throughputMetrics {
			bv, ok := base.Metrics[m]
			if !ok || bv <= 0 {
				continue
			}
			cv, ok := cur.Metrics[m]
			if !ok {
				continue
			}
			if cv < bv*(1-threshold) {
				regs = append(regs, Regression{
					Scenario: cur.Name, Metric: m, Baseline: bv, Current: cv,
					Reason: fmt.Sprintf("dropped %.1f%% (threshold %.0f%%)",
						100*(1-cv/bv), 100*threshold),
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Scenario != regs[j].Scenario {
			return regs[i].Scenario < regs[j].Scenario
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
