package perfstat

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func sampleEntry(rps float64) Entry {
	return Entry{
		Schema:     SchemaVersion,
		GOMAXPROCS: 8,
		Workers:    8,
		Runs:       1,
		Scenarios: []ScenarioResult{
			{
				Name: ScenarioCapacitySweep, Units: 12, Records: 1_000_000,
				Metrics: map[string]float64{
					MetricSerialRPS:   rps,
					MetricParallelRPS: 3 * rps,
					MetricSpeedup:     3.0,
					MetricSteals:      4,
					MetricMismatches:  0,
				},
			},
			{
				Name: ScenarioBatchDecode, Records: 200_000,
				Metrics: map[string]float64{
					MetricDecodeRPS:   10 * rps,
					MetricDecodeAlloc: 0,
				},
			},
		},
	}
}

// TestComparePasses checks a current run at or slightly below the
// baseline clears a 15% gate.
func TestComparePasses(t *testing.T) {
	base := sampleEntry(1_000_000)
	cur := sampleEntry(900_000) // 10% down, inside the 15% band
	if regs := Compare(&base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("gate failed on in-band run: %v", regs)
	}
	// Improvements never fail.
	if regs := Compare(&base, sampleEntry(2_000_000), 0.15); len(regs) != 0 {
		t.Fatalf("gate failed on improved run: %v", regs)
	}
}

// TestCompareFailsOnSlowdown checks the gate catches an artificially
// slowed run: every throughput metric 40% down must produce one
// regression per gated metric.
func TestCompareFailsOnSlowdown(t *testing.T) {
	base := sampleEntry(1_000_000)
	slow := sampleEntry(600_000)
	slow.Scenario(ScenarioCapacitySweep).Metrics[MetricSpeedup] = 1.1 // also degrade scaling
	regs := Compare(&base, slow, 0.15)
	if len(regs) != 4 {
		t.Fatalf("got %d regressions, want 4 (serial, parallel, speedup, decode): %v", len(regs), regs)
	}
	seen := map[string]bool{}
	for _, r := range regs {
		seen[r.Metric] = true
		if !strings.Contains(r.String(), "dropped") {
			t.Errorf("regression %v does not explain the drop", r)
		}
	}
	for _, m := range []string{MetricSerialRPS, MetricParallelRPS, MetricSpeedup, MetricDecodeRPS} {
		if !seen[m] {
			t.Errorf("no regression reported for %s", m)
		}
	}
}

// TestCompareZeroMetrics checks correctness metrics fail even with no
// baseline: a diverged pipeline or an allocating decoder is a bug, not
// a slowdown.
func TestCompareZeroMetrics(t *testing.T) {
	bad := sampleEntry(1_000_000)
	bad.Scenario(ScenarioCapacitySweep).Metrics[MetricMismatches] = 2
	bad.Scenario(ScenarioBatchDecode).Metrics[MetricDecodeAlloc] = 1.5
	regs := Compare(nil, bad, 0.15)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	for _, r := range regs {
		if r.Reason != "must be exactly zero" {
			t.Errorf("unexpected reason %q", r.Reason)
		}
	}
	// The same entry with clean correctness metrics passes without a
	// baseline: there is nothing to compare throughput against.
	if regs := Compare(nil, sampleEntry(1), 0.15); len(regs) != 0 {
		t.Fatalf("baseline-free gate failed a clean run: %v", regs)
	}
}

// TestBaselineSelection checks Baseline picks the most recent entry
// with matching GOMAXPROCS and refuses cross-host comparison.
func TestBaselineSelection(t *testing.T) {
	var tr Trajectory
	a := sampleEntry(1)
	a.GOMAXPROCS, a.Label = 4, "old-4"
	b := sampleEntry(2)
	b.GOMAXPROCS, b.Label = 8, "old-8"
	c := sampleEntry(3)
	c.GOMAXPROCS, c.Label = 4, "new-4"
	tr.Append(a)
	tr.Append(b)
	tr.Append(c)
	if got := tr.Baseline(4); got == nil || got.Label != "new-4" {
		t.Errorf("Baseline(4) = %+v, want the most recent 4-proc entry", got)
	}
	if got := tr.Baseline(8); got == nil || got.Label != "old-8" {
		t.Errorf("Baseline(8) = %+v, want the 8-proc entry", got)
	}
	if got := tr.Baseline(16); got != nil {
		t.Errorf("Baseline(16) = %+v, want nil for an unseen host shape", got)
	}
}

// TestTrajectoryRoundTrip checks Load/Append/Write, the missing-file
// bootstrap, and the newer-schema refusal.
func TestTrajectoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	tr, err := LoadTrajectory(path)
	if err != nil {
		t.Fatalf("missing file must load as empty: %v", err)
	}
	if len(tr.Entries) != 0 {
		t.Fatalf("empty trajectory has %d entries", len(tr.Entries))
	}
	e := sampleEntry(1_000_000)
	e.Label = "seed"
	tr.Append(e)
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Label != "seed" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	s := back.Entries[0].Scenario(ScenarioCapacitySweep)
	if s == nil || s.Metric(MetricSerialRPS) != 1_000_000 {
		t.Fatalf("scenario metrics lost in round trip: %+v", s)
	}

	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(path); err == nil {
		t.Fatal("newer schema must refuse to load")
	}
}

// TestMedianAndMax covers the per-metric aggregation rules.
func TestMedianAndMax(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v, want 2.5", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Errorf("median single = %v, want 7", got)
	}
	if got := maxOf([]float64{0, 2, 1}); got != 2 {
		t.Errorf("maxOf = %v, want 2", got)
	}
}

// TestRunSmoke runs the real scenarios at reduced scale and checks the
// entry is self-consistent: all metrics present, correctness metrics
// zero, medians of multiple runs recorded.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	entry, err := Run(context.Background(), Options{
		Workers:            2,
		Runs:               2,
		Label:              "smoke",
		SweepInstructions:  12_000,
		DecodeInstructions: 20_000,
		PackedOps:          20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if entry.Runs != 2 || entry.Workers != 2 || entry.Label != "smoke" {
		t.Errorf("entry header wrong: %+v", entry)
	}
	if entry.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", entry.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	sweep := entry.Scenario(ScenarioCapacitySweep)
	if sweep == nil {
		t.Fatal("no capacity_sweep scenario")
	}
	if sweep.Units != 12 {
		t.Errorf("sweep units = %d, want 12 (2 profiles x base+5 rows)", sweep.Units)
	}
	if sweep.Records <= 0 {
		t.Errorf("sweep records = %d, want > 0", sweep.Records)
	}
	for _, m := range []string{MetricSerialRPS, MetricParallelRPS, MetricSpeedup, MetricSerialSec, MetricParallelSec, MetricSteals, MetricMismatches} {
		if _, ok := sweep.Metrics[m]; !ok {
			t.Errorf("sweep missing metric %s", m)
		}
	}
	if sweep.Metric(MetricMismatches) != 0 {
		t.Errorf("differential mismatches = %v, want 0", sweep.Metric(MetricMismatches))
	}
	decode := entry.Scenario(ScenarioBatchDecode)
	if decode == nil {
		t.Fatal("no batch_decode scenario")
	}
	if decode.Metric(MetricDecodeRPS) <= 0 {
		t.Errorf("decode throughput = %v, want > 0", decode.Metric(MetricDecodeRPS))
	}
	if decode.Metric(MetricDecodeAlloc) != 0 {
		t.Errorf("decode allocs/batch = %v, want 0", decode.Metric(MetricDecodeAlloc))
	}
	packed := entry.Scenario(ScenarioPackedTables)
	if packed == nil {
		t.Fatal("no packed_tables scenario")
	}
	for _, m := range []string{
		MetricBTBPackedLookup, MetricBTBStructLookup,
		MetricBTBPackedInsert, MetricBTBStructInsert,
		MetricPHTPackedLookup, MetricPHTStructLookup,
		MetricCTBPackedLookup, MetricCTBStructLookup,
	} {
		if packed.Metric(m) <= 0 {
			t.Errorf("packed_tables metric %s = %v, want > 0", m, packed.Metric(m))
		}
	}
	if packed.Metric(MetricLayoutMismatch) != 0 {
		t.Errorf("layout mismatches = %v, want 0", packed.Metric(MetricLayoutMismatch))
	}
	// A fresh run gated against itself as baseline must pass.
	if regs := Compare(&entry, entry, 0.15); len(regs) != 0 {
		t.Errorf("self-comparison failed: %v", regs)
	}
}

// TestScenariosListed keeps the listing in sync with the runner.
func TestScenariosListed(t *testing.T) {
	infos := Scenarios()
	if len(infos) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(infos))
	}
	if infos[0].Name != ScenarioCapacitySweep || infos[1].Name != ScenarioBatchDecode ||
		infos[2].Name != ScenarioPackedTables {
		t.Errorf("scenario order wrong: %+v", infos)
	}
	for _, in := range infos {
		if in.Description == "" {
			t.Errorf("scenario %s has no description", in.Name)
		}
	}
}
