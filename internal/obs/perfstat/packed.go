package perfstat

import (
	"math/rand"
	"time"

	"bulkpreload/internal/btb"
	"bulkpreload/internal/ctb"
	"bulkpreload/internal/history"
	"bulkpreload/internal/pht"
	"bulkpreload/internal/zaddr"
)

// The packed_tables scenario: per-structure microbenchmarks of the
// predictor tables' two storage layouts. Each table runs the same
// lookup (and for the BTB, insert/evict) loop once on the packed
// structure-of-arrays layout — the shipping default — and once on the
// retained array-of-structs oracle, so every trajectory entry records
// the packed layout's speedup alongside the absolute rates the CI gate
// pins. A short randomized equivalence sweep runs both layouts side by
// side and counts divergences into the zero-gated layout_mismatches
// metric: a fast entry can never come from a layout that changed
// results.

// packedBenchEntry synthesizes the i-th benchmark branch: addresses
// stride 40 bytes so rows fill unevenly and inserts evict, mirroring
// the internal/btb benchmarks.
func packedBenchEntry(i int) btb.Entry {
	a := zaddr.Addr(0x10_0000 + i*40)
	return btb.Entry{Addr: a, Target: a + 64, Dir: 2, UsePHT: i%3 == 0, Length: uint8(i % 12)}
}

// newPackedBenchBTB builds a fully warmed BTB1-geometry table in the
// requested layout.
func newPackedBenchBTB(structLayout bool) *btb.Table {
	cfg := btb.BTB1Config
	cfg.StructLayout = structLayout
	t := btb.New(cfg)
	for i := 0; i < cfg.Capacity(); i++ {
		t.Insert(packedBenchEntry(i))
	}
	return t
}

// opsPerSec times ops calls of f and returns the call rate.
func opsPerSec(ops int, f func(i int)) float64 {
	start := time.Now()
	for i := 0; i < ops; i++ {
		f(i)
	}
	return float64(ops) / time.Since(start).Seconds()
}

// runPackedTables measures every per-structure layout microbenchmark
// plus the equivalence sweep. ops is the timed iteration count per
// measurement.
func runPackedTables(ops int) (ScenarioResult, error) {
	metrics := make(map[string]float64, 9)
	var records int64

	// BTB lookup and insert, both layouts.
	for _, l := range []struct {
		structLayout   bool
		lookup, insert string
	}{
		{false, MetricBTBPackedLookup, MetricBTBPackedInsert},
		{true, MetricBTBStructLookup, MetricBTBStructInsert},
	} {
		warm := newPackedBenchBTB(l.structLayout)
		var hits []btb.Hit
		metrics[l.lookup] = opsPerSec(ops, func(i int) {
			hits = warm.LookupLine(zaddr.Addr(0x10_0000+(i%4096)*32), hits[:0])
		})
		fresh := newPackedBenchBTB(l.structLayout) // warm, so inserts evict
		metrics[l.insert] = opsPerSec(ops, func(i int) {
			fresh.Insert(packedBenchEntry(i))
		})
		records += int64(2 * ops)
	}

	// PHT and CTB lookups, both layouts, over a warmed table and a
	// recorded global history.
	var h history.History
	for i := 0; i < 64; i++ {
		h.RecordPrediction(zaddr.Addr(0x2000+i*6), i%2 == 0)
	}
	for _, l := range []struct {
		structLayout bool
		pht, ctb     string
	}{
		{false, MetricPHTPackedLookup, MetricCTBPackedLookup},
		{true, MetricPHTStructLookup, MetricCTBStructLookup},
	} {
		pt := pht.NewLayout(pht.DefaultEntries, l.structLayout)
		ct := ctb.NewLayout(ctb.DefaultEntries, l.structLayout)
		for i := 0; i < 4096; i++ {
			a := zaddr.Addr(0x4000 + i*12)
			pt.Update(&h, a, i%2 == 0)
			ct.Update(&h, a, a+zaddr.Addr(i))
		}
		metrics[l.pht] = opsPerSec(ops, func(i int) {
			pt.Lookup(&h, zaddr.Addr(0x4000+(i%4096)*12))
		})
		metrics[l.ctb] = opsPerSec(ops, func(i int) {
			ct.Lookup(&h, zaddr.Addr(0x4000+(i%4096)*12))
		})
		records += int64(2 * ops)
	}

	metrics[MetricLayoutMismatch] = float64(layoutEquivalenceSweep())

	return ScenarioResult{
		Name:    ScenarioPackedTables,
		Records: records,
		Metrics: metrics,
	}, nil
}

// layoutEquivalenceSweep runs a short randomized op sequence against a
// packed/struct table pair for each structure and returns the number of
// diverging observations — the full battery lives in the layout
// differential gate and the per-package model tests; this is the
// trajectory's tripwire.
func layoutEquivalenceSweep() int {
	mismatches := 0
	rng := rand.New(rand.NewSource(0x5EED))

	cfg := btb.BTB1Config
	sCfg := cfg
	sCfg.StructLayout = true
	bp, bs := btb.New(cfg), btb.New(sCfg)
	var hp, hs []btb.Hit
	for op := 0; op < 20_000; op++ {
		a := zaddr.Addr((0x10_0000 + rng.Intn(1<<16)) &^ 1)
		switch rng.Intn(3) {
		case 0:
			e := btb.Entry{Addr: a, Target: a + 64, Dir: 1, Length: uint8(rng.Intn(16))}
			vP, evP := bp.Insert(e)
			vS, evS := bs.Insert(e)
			if vP != vS || evP != evS {
				mismatches++
			}
		case 1:
			hp = bp.LookupLine(a, hp[:0])
			hs = bs.LookupLine(a, hs[:0])
			if len(hp) != len(hs) {
				mismatches++
				continue
			}
			for i := range hp {
				if hp[i] != hs[i] {
					mismatches++
				}
			}
		case 2:
			eP, okP := bp.Find(a)
			eS, okS := bs.Find(a)
			if eP != eS || okP != okS {
				mismatches++
			}
		}
	}

	var h history.History
	pp, ps := pht.NewLayout(1024, false), pht.NewLayout(1024, true)
	cp, cs := ctb.NewLayout(1024, false), ctb.NewLayout(1024, true)
	for op := 0; op < 10_000; op++ {
		a := zaddr.Addr(rng.Intn(1<<14) &^ 1)
		switch rng.Intn(3) {
		case 0:
			h.RecordPrediction(a, rng.Intn(2) == 0)
		case 1:
			taken := rng.Intn(2) == 0
			pp.Update(&h, a, taken)
			ps.Update(&h, a, taken)
			cp.Update(&h, a, a+32)
			cs.Update(&h, a, a+32)
		case 2:
			tP, okP := pp.Lookup(&h, a)
			tS, okS := ps.Lookup(&h, a)
			if tP != tS || okP != okS {
				mismatches++
			}
			gP, cokP := cp.Lookup(&h, a)
			gS, cokS := cs.Lookup(&h, a)
			if gP != gS || cokP != cokS {
				mismatches++
			}
		}
	}
	return mismatches
}
