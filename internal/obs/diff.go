package obs

import "fmt"

// Diff returns a human-readable line for every field-level difference
// between two snapshots; an empty slice means they are bit-identical
// (same sequence number, same metrics in the same order, same values,
// counts, sums, bounds, and buckets). It is the comparator behind the
// serial-oracle differential gate: positional comparison on purpose,
// because registry enumeration order is part of the determinism
// contract.
func Diff(a, b Snapshot) []string {
	var out []string
	if a.Seq != b.Seq {
		out = append(out, fmt.Sprintf("seq: %d != %d", a.Seq, b.Seq))
	}
	n := len(a.Values)
	if len(b.Values) < n {
		n = len(b.Values)
	}
	for i := 0; i < n; i++ {
		out = appendValueDiff(out, i, &a.Values[i], &b.Values[i])
	}
	for i := n; i < len(a.Values); i++ {
		out = append(out, fmt.Sprintf("[%d] %s: only in first snapshot", i, a.Values[i].Name))
	}
	for i := n; i < len(b.Values); i++ {
		out = append(out, fmt.Sprintf("[%d] %s: only in second snapshot", i, b.Values[i].Name))
	}
	return out
}

func appendValueDiff(out []string, i int, va, vb *Value) []string {
	if va.Name != vb.Name {
		// Misaligned registries: every later positional comparison would
		// be noise, so report the misalignment and stop at this value.
		return append(out, fmt.Sprintf("[%d] name: %q != %q", i, va.Name, vb.Name))
	}
	if va.Type != vb.Type {
		out = append(out, fmt.Sprintf("[%d] %s type: %s != %s", i, va.Name, va.Type, vb.Type))
	}
	if va.Unit != vb.Unit {
		out = append(out, fmt.Sprintf("[%d] %s unit: %q != %q", i, va.Name, va.Unit, vb.Unit))
	}
	if va.Value != vb.Value {
		out = append(out, fmt.Sprintf("[%d] %s value: %d != %d", i, va.Name, va.Value, vb.Value))
	}
	if va.Count != vb.Count {
		out = append(out, fmt.Sprintf("[%d] %s count: %d != %d", i, va.Name, va.Count, vb.Count))
	}
	if va.Sum != vb.Sum {
		out = append(out, fmt.Sprintf("[%d] %s sum: %d != %d", i, va.Name, va.Sum, vb.Sum))
	}
	out = appendSliceDiff(out, i, va.Name, "bounds", va.Bounds, vb.Bounds)
	out = appendSliceDiff(out, i, va.Name, "buckets", va.Buckets, vb.Buckets)
	return out
}

func appendSliceDiff(out []string, i int, name, field string, a, b []int64) []string {
	if len(a) != len(b) {
		return append(out, fmt.Sprintf("[%d] %s %s: %d entries != %d entries", i, name, field, len(a), len(b)))
	}
	for k := range a {
		if a[k] != b[k] {
			out = append(out, fmt.Sprintf("[%d] %s %s[%d]: %d != %d", i, name, field, k, a[k], b[k]))
		}
	}
	return out
}
