package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.SetBounds(1, 4, 16)
	for _, v := range []int64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 108 {
		t.Fatalf("count/sum = %d/%d, want 5/108", h.Count(), h.Sum())
	}
	want := []int64{2, 1, 1, 1} // <=1: 0,1; <=4: 2; <=16: 5; overflow: 100
	for i, n := range want {
		if h.counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, h.counts[i], n, h.counts)
		}
	}
	h.Reset()
	if h.Count() != 0 || h.counts[0] != 0 {
		t.Fatal("Reset did not clear observations")
	}
}

func TestHistogramNoBounds(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	if h.Count() != 2 || h.Sum() != 30 {
		t.Fatalf("boundless histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	var h Histogram
	h.SetBounds(4, 1)
}

func buildRegistry(t *testing.T) (*Registry, *Counter, *Gauge, *Histogram) {
	t.Helper()
	r := NewRegistry()
	var c Counter
	var g Gauge
	var h Histogram
	h.SetBounds(10, 100)
	r.Counter("demo_events_total", "events", "demo counter", &c)
	r.Gauge("demo_level", "entries", "demo gauge", &g)
	r.Histogram("demo_latency_cycles", "cycles", "demo histogram", &h)
	r.GaugeFunc("demo_computed", "entries", "computed gauge", func() int64 { return 42 })
	return r, &c, &g, &h
}

func TestRegistrySnapshot(t *testing.T) {
	r, c, g, h := buildRegistry(t)
	c.Add(3)
	g.Set(9)
	h.Observe(5)
	h.Observe(500)

	s := r.Snapshot(1)
	if s.Seq != 1 || len(s.Values) != r.Len() {
		t.Fatalf("snapshot seq/len = %d/%d", s.Seq, len(s.Values))
	}
	if s.Counter("demo_events_total") != 3 {
		t.Fatalf("counter value = %d", s.Counter("demo_events_total"))
	}
	if s.Counter("demo_computed") != 42 {
		t.Fatalf("computed gauge = %d", s.Counter("demo_computed"))
	}
	v, ok := s.Get("demo_latency_cycles")
	if !ok || v.Count != 2 || v.Sum != 505 {
		t.Fatalf("histogram value = %+v", v)
	}
	if len(v.Buckets) != 3 || v.Buckets[0] != 1 || v.Buckets[2] != 1 {
		t.Fatalf("histogram buckets = %v", v.Buckets)
	}

	// Snapshot values are copies: mutating the source must not change s.
	h.Observe(1)
	if v2, _ := s.Get("demo_latency_cycles"); v2.Count != 2 {
		t.Fatal("snapshot shares storage with live histogram")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var c Counter
	r.Counter("x", "", "", &c)
	r.Counter("x", "", "", &c)
}

func TestRegistryDescsSorted(t *testing.T) {
	r, _, _, _ := buildRegistry(t)
	ds := r.Descs()
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Name >= ds[i].Name {
			t.Fatalf("descs not sorted: %q >= %q", ds[i-1].Name, ds[i].Name)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	r, c, g, h := buildRegistry(t)
	c.Add(2)
	g.Set(5)
	h.Observe(50)
	a := r.Snapshot(1)
	c.Add(3)
	h.Observe(5)
	b := r.Snapshot(2)

	a.Merge(b)
	if a.Counter("demo_events_total") != 7 { // 2 + 5
		t.Fatalf("merged counter = %d, want 7", a.Counter("demo_events_total"))
	}
	v, _ := a.Get("demo_latency_cycles")
	if v.Count != 3 || v.Buckets[0] != 1 || v.Buckets[1] != 2 {
		t.Fatalf("merged histogram = %+v", v)
	}

	// A metric only present in other is appended.
	extra := Snapshot{Values: []Value{{Name: "only_other", Type: TypeCounter, Value: 11}}}
	a.Merge(extra)
	if a.Counter("only_other") != 11 {
		t.Fatal("metric unique to other was not appended")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r, c, g, h := buildRegistry(t)
	c.Add(10)
	g.Set(100)
	h.Observe(5)
	first := r.Snapshot(1)
	c.Add(4)
	g.Set(70)
	h.Observe(7)
	second := r.Snapshot(2)

	d := second.Delta(&first)
	if d.Counter("demo_events_total") != 4 {
		t.Fatalf("delta counter = %d, want 4", d.Counter("demo_events_total"))
	}
	if d.Counter("demo_level") != 70 {
		t.Fatalf("delta gauge = %d, want current level 70", d.Counter("demo_level"))
	}
	v, _ := d.Get("demo_latency_cycles")
	if v.Count != 1 || v.Sum != 7 {
		t.Fatalf("delta histogram = %+v", v)
	}
	// Delta against nil is the snapshot itself.
	d0 := first.Delta(nil)
	if d0.Counter("demo_events_total") != 10 {
		t.Fatal("delta against nil changed values")
	}
}

func TestWritePrometheus(t *testing.T) {
	r, c, _, h := buildRegistry(t)
	c.Add(6)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	s := r.Snapshot(1)
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE demo_events_total counter",
		"demo_events_total 6",
		"# TYPE demo_latency_cycles histogram",
		`demo_latency_cycles_bucket{le="10"} 1`,
		`demo_latency_cycles_bucket{le="100"} 2`,
		`demo_latency_cycles_bucket{le="+Inf"} 3`,
		"demo_latency_cycles_sum 5055",
		"demo_latency_cycles_count 3",
		"# TYPE demo_computed gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLivePublishAndServe(t *testing.T) {
	var l Live
	if l.Load() != nil {
		t.Fatal("Load before Publish should be nil")
	}
	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 204 {
		t.Fatalf("pre-publish /metrics status = %d, want 204", rec.Code)
	}

	r, c, _, _ := buildRegistry(t)
	c.Add(9)
	l.Publish(r.Snapshot(3))
	if got := l.Load(); got == nil || got.Seq != 3 {
		t.Fatalf("Load = %+v", got)
	}

	rec = httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "demo_events_total 9") {
		t.Fatalf("/metrics = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if s.Counter("demo_events_total") != 9 {
		t.Fatalf("snapshot JSON counter = %d", s.Counter("demo_events_total"))
	}
	v, _ := s.Get("demo_events_total")
	if v.Kind != "counter" {
		t.Fatalf("published snapshot Kind = %q, want counter", v.Kind)
	}
}

func TestTypeString(t *testing.T) {
	if TypeCounter.String() != "counter" || TypeGauge.String() != "gauge" ||
		TypeHistogram.String() != "histogram" {
		t.Fatal("Type.String mismatch")
	}
	if !strings.HasPrefix(Type(9).String(), "Type(") {
		t.Fatal("unknown Type.String")
	}
}
