package analysis

import (
	"strings"
	"testing"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
	"bulkpreload/internal/zaddr"
)

func loopTrace(iters, bodyInsts int) *trace.SliceSource {
	var ins []trace.Inst
	for i := 0; i < iters; i++ {
		addr := zaddr.Addr(0x1000)
		for k := 0; k < bodyInsts; k++ {
			ins = append(ins, trace.Inst{Addr: addr, Length: 4, Kind: trace.NotBranch})
			addr += 4
		}
		ins = append(ins, trace.Inst{Addr: addr, Length: 4, Kind: trace.CondDirect,
			Taken: true, Target: 0x1000, StaticTaken: true})
	}
	return trace.NewSliceSource("loop", ins)
}

func TestBranchReuseLoop(t *testing.T) {
	// A loop with a 10-instruction body: every branch re-reference is at
	// distance 11 (bucket 2^3).
	h := BranchReuse(loopTrace(100, 10))
	if h.Total != 100 || h.First != 1 {
		t.Fatalf("total=%d first=%d", h.Total, h.First)
	}
	if h.Buckets[3] != 99 {
		t.Errorf("bucket[3] = %d, want 99 (distance 11)", h.Buckets[3])
	}
	if m := h.Median(); m < 8 || m > 16 {
		t.Errorf("median = %d, want ~12", m)
	}
}

func TestFractionBeyond(t *testing.T) {
	h := BranchReuse(loopTrace(100, 10))
	if got := h.FractionBeyond(1); got != 1.0 {
		t.Errorf("FractionBeyond(1) = %v, want 1 (all reuses >= 1)", got)
	}
	if got := h.FractionBeyond(1 << 20); got != 0 {
		t.Errorf("FractionBeyond(1M) = %v, want 0", got)
	}
	var empty ReuseHistogram
	if empty.FractionBeyond(1) != 0 || empty.Median() != 0 {
		t.Error("empty histogram not degenerate-safe")
	}
}

func TestHistogramString(t *testing.T) {
	h := BranchReuse(loopTrace(50, 10))
	s := h.String()
	if !strings.Contains(s, "2^3") || !strings.Contains(s, "#") {
		t.Errorf("rendering missing content:\n%s", s)
	}
}

func TestWorkingSet(t *testing.T) {
	// The loop touches exactly 1 branch site per window.
	avg, max := WorkingSet(loopTrace(100, 10), 44)
	if avg != 1 || max != 1 {
		t.Errorf("avg=%v max=%d, want 1/1", avg, max)
	}
	// Tiny trace smaller than one window still reports its content.
	avg, max = WorkingSet(loopTrace(2, 2), 1_000_000)
	if max != 1 {
		t.Errorf("sub-window max = %d", max)
	}
	_ = avg
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	WorkingSet(loopTrace(1, 1), 0)
}

func TestCoverageMonotone(t *testing.T) {
	p, err := workload.ByName("zos-lspr-cb84", 150_000)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.New(p)
	h := BranchReuse(src)
	st := trace.Measure(src)
	ipb := float64(st.Instructions) / float64(st.Branches)
	cov := h.Coverage(ipb)
	// Structure: each level catches at least as much as the smaller one,
	// and shares are sane percentages.
	if !(cov.BTBPPct <= cov.BTB1Pct && cov.BTB1Pct <= cov.BTB2Pct) {
		t.Errorf("coverage not monotone: %+v", cov)
	}
	if cov.BTB2Pct+cov.BeyondPct < 99.9 || cov.BTB2Pct+cov.BeyondPct > 100.1 {
		t.Errorf("BTB2 + beyond != 100: %+v", cov)
	}
	// A Table 4 large-footprint trace must have meaningful mass beyond
	// the first level — that is what makes it a BTB2 candidate.
	beyondL1 := cov.BTB2Pct - cov.BTB1Pct + cov.BeyondPct
	if beyondL1 < 1 {
		t.Errorf("almost no re-references beyond the first level (%+v)", cov)
	}
}

func TestReuseHistogramAddClamps(t *testing.T) {
	var h ReuseHistogram
	h.Add(0)       // clamps to distance 1 -> bucket 0
	h.Add(1 << 40) // clamps to last bucket
	if h.Buckets[0] != 1 || h.Buckets[MaxLog2Distance] != 1 {
		t.Errorf("clamping broken: %v %v", h.Buckets[0], h.Buckets[MaxLog2Distance])
	}
}
