// Package analysis computes trace-locality measurements that explain
// branch predictor capacity behaviour: the re-reference distance
// histogram of branch sites (which hierarchy level can catch each
// re-reference) and windowed working-set sizes. These are the
// quantities the paper's capacity argument rests on — a first level
// covering ~114-142 KB of footprint misses exactly the re-references
// whose distance exceeds its retention.
package analysis

import (
	"fmt"
	"math"
	"strings"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// MaxLog2Distance bounds the histogram: re-references beyond 2^31
// instructions land in the last bucket.
const MaxLog2Distance = 31

// ReuseHistogram is a log2-bucketed histogram of branch re-reference
// distances, measured in dynamic instructions between consecutive
// executions of the same branch site.
type ReuseHistogram struct {
	// Buckets[i] counts re-references with distance in [2^i, 2^(i+1)).
	Buckets [MaxLog2Distance + 1]int64
	// First counts first-ever executions (no prior reference).
	First int64
	// Total counts all dynamic branch executions.
	Total int64
}

// Add records one re-reference distance.
func (h *ReuseHistogram) Add(distance int64) {
	if distance < 1 {
		distance = 1
	}
	b := int(math.Log2(float64(distance)))
	if b > MaxLog2Distance {
		b = MaxLog2Distance
	}
	h.Buckets[b]++
}

// Reuses returns the number of non-first branch executions.
func (h *ReuseHistogram) Reuses() int64 { return h.Total - h.First }

// FractionBeyond returns the fraction of re-references whose distance is
// at least minDistance instructions — the share a structure retaining
// roughly minDistance instructions' worth of branches will miss.
func (h *ReuseHistogram) FractionBeyond(minDistance int64) float64 {
	reuses := h.Reuses()
	if reuses == 0 {
		return 0
	}
	var n int64
	for b := 0; b <= MaxLog2Distance; b++ {
		if int64(1)<<uint(b+1) > minDistance {
			n += h.Buckets[b]
		}
	}
	return float64(n) / float64(reuses)
}

// Median returns the median re-reference distance (bucket midpoint).
func (h *ReuseHistogram) Median() int64 {
	reuses := h.Reuses()
	if reuses == 0 {
		return 0
	}
	var cum int64
	for b := 0; b <= MaxLog2Distance; b++ {
		cum += h.Buckets[b]
		if 2*cum >= reuses {
			return (int64(1)<<uint(b) + int64(1)<<uint(b+1)) / 2
		}
	}
	return 1 << MaxLog2Distance
}

// String renders the histogram as an ASCII chart.
func (h *ReuseHistogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "branch re-reference distances (%d executions, %d first-time)\n",
		h.Total, h.First)
	var max int64
	for _, n := range h.Buckets {
		if n > max {
			max = n
		}
	}
	for b := 0; b <= MaxLog2Distance; b++ {
		n := h.Buckets[b]
		if n == 0 {
			continue
		}
		width := 0
		if max > 0 {
			width = int(n * 40 / max)
		}
		fmt.Fprintf(&sb, "  2^%-2d %10d |%s\n", b, n, strings.Repeat("#", width))
	}
	return sb.String()
}

// BranchReuse measures the re-reference distance histogram of src's
// branch sites.
func BranchReuse(src trace.Source) ReuseHistogram {
	src.Reset()
	var h ReuseHistogram
	last := make(map[zaddr.Addr]int64, 1<<16)
	var idx int64
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		idx++
		if !in.IsBranch() {
			continue
		}
		h.Total++
		if prev, seen := last[in.Addr]; seen {
			h.Add(idx - prev)
		} else {
			h.First++
		}
		last[in.Addr] = idx
	}
	return h
}

// WorkingSet reports the average and maximum number of distinct branch
// sites executed per window of windowInsts instructions — the footprint
// a predictor must retain to cover one window.
func WorkingSet(src trace.Source, windowInsts int) (avg float64, max int) {
	if windowInsts <= 0 {
		panic("analysis: window must be positive")
	}
	src.Reset()
	seen := make(map[zaddr.Addr]bool, 1<<12)
	var windows, sum, inWindow int
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if in.IsBranch() {
			seen[in.Addr] = true
		}
		inWindow++
		if inWindow == windowInsts {
			windows++
			sum += len(seen)
			if len(seen) > max {
				max = len(seen)
			}
			seen = make(map[zaddr.Addr]bool, len(seen))
			inWindow = 0
		}
	}
	if windows == 0 {
		return float64(len(seen)), len(seen)
	}
	return float64(sum) / float64(windows), max
}

// LevelCoverage summarizes, for the paper's structure capacities, which
// share of re-references each level can plausibly catch, assuming a
// structure holding N branches retains a site for roughly N * instsPerBranch
// dynamic instructions (fully-associative LRU approximation).
type LevelCoverage struct {
	BTBPPct   float64 // caught by the 768-entry BTBP
	BTB1Pct   float64 // caught by BTBP+BTB1 (4.8k entries)
	BTB2Pct   float64 // caught with the 24k BTB2 backing them
	BeyondPct float64 // beyond even the BTB2
}

// Coverage computes LevelCoverage from a reuse histogram and the trace's
// dynamic instructions-per-branch ratio.
func (h *ReuseHistogram) Coverage(instsPerBranch float64) LevelCoverage {
	retention := func(entries int) int64 {
		return int64(float64(entries) * instsPerBranch)
	}
	beyondBTBP := h.FractionBeyond(retention(768))
	beyondL1 := h.FractionBeyond(retention(768 + 4096))
	beyondL2 := h.FractionBeyond(retention(768 + 4096 + 24576))
	return LevelCoverage{
		BTBPPct:   100 * (1 - beyondBTBP),
		BTB1Pct:   100 * (1 - beyondL1),
		BTB2Pct:   100 * (1 - beyondL2),
		BeyondPct: 100 * beyondL2,
	}
}
