package analysis_test

import (
	"fmt"

	"bulkpreload/internal/analysis"
	"bulkpreload/internal/trace"
)

// Example measures the re-reference locality of a tight loop: every
// branch re-execution happens at a distance of three instructions, well
// inside any level's retention.
func Example() {
	var ins []trace.Inst
	for i := 0; i < 1000; i++ {
		ins = append(ins,
			trace.Inst{Addr: 0x1000, Length: 4, Kind: trace.NotBranch},
			trace.Inst{Addr: 0x1004, Length: 4, Kind: trace.NotBranch},
			trace.Inst{Addr: 0x1008, Length: 4, Kind: trace.CondDirect,
				Taken: true, Target: 0x1000, StaticTaken: true},
		)
	}
	h := analysis.BranchReuse(trace.NewSliceSource("loop", ins))
	fmt.Printf("branch executions: %d (first-time: %d)\n", h.Total, h.First)
	fmt.Printf("median re-reference distance: %d instructions\n", h.Median())
	fmt.Printf("beyond first level: %.0f%%\n",
		100*h.FractionBeyond(int64(4864*4)))
	// Output:
	// branch executions: 1000 (first-time: 1)
	// median re-reference distance: 3 instructions
	// beyond first level: 0%
}
