package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"bulkpreload/internal/jobq"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/zsimd"
)

// profiles is the workload pool scenarios draw from: small and varied.
var profiles = []string{"tpf-airline", "zlinux-informix", "zos-lspr-cb84", "zos-appserv"}

// specJSON builds a job spec body.
func specJSON(profile string, instructions int) json.RawMessage {
	b, err := json.Marshal(sim.Spec{Trace: profile, Instructions: instructions, Config: sim.ConfigBTB2})
	if err != nil {
		panic(err)
	}
	return b
}

// tempService starts an in-process service in a fresh directory.
func tempService(cfg zsimd.Config) (*zsimd.Service, func(), error) {
	dir, err := tempDir()
	if err != nil {
		return nil, nil, err
	}
	cfg.Dir = dir
	s, err := zsimd.New(cfg)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	stop := func() {
		_ = s.Shutdown(context.Background())
		os.RemoveAll(dir)
	}
	return s, stop, nil
}

// runSteady: a seeded mixed-tenant workload completes with zero
// retries and zero dead-letters, and two identical specs produce
// byte-identical results (the determinism contract end to end through
// queue, worker, and persistence).
func runSteady(h *harness) error {
	s, stop, err := tempService(zsimd.Config{Workers: 2, CheckpointInterval: -1, MaxQueueDepth: 64})
	if err != nil {
		return err
	}
	defer stop()

	const jobs = 6
	ids := make([]string, 0, jobs+2)
	for i := 0; i < jobs; i++ {
		profile := profiles[h.rng.intn(len(profiles))]
		tenant := fmt.Sprintf("tenant-%d", h.rng.intn(3))
		j, err := s.Queue().Enqueue(tenant, specJSON(profile, 150_000+10_000*h.rng.intn(5)))
		if err != nil {
			return fmt.Errorf("enqueue %d: %w", i, err)
		}
		ids = append(ids, j.ID)
	}
	// The determinism pair: same spec, same config, different job IDs.
	for i := 0; i < 2; i++ {
		j, err := s.Queue().Enqueue("pair", specJSON("tpf-airline", 200_000))
		if err != nil {
			return fmt.Errorf("enqueue pair %d: %w", i, err)
		}
		ids = append(ids, j.ID)
	}
	s.Start()

	if err := waitUntil(120*time.Second, "all jobs done", func() bool {
		d := s.Queue().Depth()
		return d.Done == len(ids) && d.Pending == 0 && d.Running == 0
	}); err != nil {
		return err
	}
	d := s.Queue().Depth()
	if d.Dead != 0 {
		return fmt.Errorf("steady load dead-lettered %d jobs", d.Dead)
	}
	for _, id := range ids {
		j, ok := s.Queue().Get(id)
		if !ok || j.State != jobq.StateDone || len(j.Result) == 0 {
			return fmt.Errorf("job %s did not complete cleanly: %+v", id, j)
		}
		if j.Attempt != 1 {
			return fmt.Errorf("job %s needed %d attempts under steady load", id, j.Attempt)
		}
	}
	a, _ := s.Queue().Get(ids[jobs])
	b, _ := s.Queue().Get(ids[jobs+1])
	if !bytes.Equal(a.Result, b.Result) {
		return fmt.Errorf("identical specs produced different results:\n%s\n%s", a.Result, b.Result)
	}
	h.logf("%d jobs done, determinism pair byte-identical", len(ids))
	return nil
}

// runBurst: flood the admission path far past the depth bound with no
// workers draining. The contract: the backlog never exceeds the bound,
// every shed is a 429 with Retry-After, and once workers start every
// accepted job completes — shed new work, never stall accepted work.
func runBurst(h *harness) error {
	const depth = 4
	s, stop, err := tempService(zsimd.Config{Workers: 2, CheckpointInterval: -1, MaxQueueDepth: depth})
	if err != nil {
		return err
	}
	defer stop()
	ts, tsURL := serveHTTP(s)
	defer ts.Shutdown(time.Second)

	accepted, shed := 0, 0
	for i := 0; i < 20; i++ {
		status, retryAfter, _, err := submit(tsURL, "burst", specJSON(profiles[h.rng.intn(len(profiles))], 120_000))
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		switch status {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			if retryAfter == "" {
				return fmt.Errorf("submit %d: 429 without Retry-After", i)
			}
			shed++
		default:
			return fmt.Errorf("submit %d: unexpected status %d", i, status)
		}
		if p := s.Queue().Depth().Pending; p > depth {
			return fmt.Errorf("pending backlog %d exceeds bound %d", p, depth)
		}
	}
	if accepted != depth || shed != 20-depth {
		return fmt.Errorf("burst split %d accepted / %d shed, want %d / %d", accepted, shed, depth, 20-depth)
	}

	// Zero stalled in-flight work: everything accepted completes.
	s.Start()
	if err := waitUntil(120*time.Second, "accepted jobs to finish", func() bool {
		d := s.Queue().Depth()
		return d.Done == accepted && d.Pending == 0 && d.Running == 0
	}); err != nil {
		return err
	}
	h.logf("bounded at %d pending, %d shed with Retry-After, %d accepted all done", depth, shed, accepted)
	return nil
}

// runTimeout: one job that cannot finish inside the per-job deadline
// dead-letters after its bounded retries; jobs behind it are unharmed.
func runTimeout(h *harness) error {
	// The deadline must separate the two jobs by orders of magnitude,
	// not a constant factor: under the race detector the engine runs
	// ~20x slower, and the meek job still has to finish comfortably
	// inside the same bound that starves the hog.
	s, stop, err := tempService(zsimd.Config{
		Workers:            1,
		MaxAttempts:        2,
		JobDeadline:        2 * time.Second,
		CheckpointInterval: 500_000,
		Retry:              jobq.Backoff{Base: 2 * time.Millisecond, Cap: 5 * time.Millisecond, Factor: 2},
	})
	if err != nil {
		return err
	}
	defer stop()

	// Too long for the deadline at any realistic simulation rate.
	huge, err := s.Queue().Enqueue("hog", specJSON("tpf-airline", 500_000_000))
	if err != nil {
		return err
	}
	// Deliberately tiny: finishes far inside the deadline.
	small, err := s.Queue().Enqueue("meek", specJSON("zlinux-informix", 50_000))
	if err != nil {
		return err
	}
	s.Start()

	if err := waitUntil(120*time.Second, "hog dead-lettered and meek done", func() bool {
		hj, _ := s.Queue().Get(huge.ID)
		sj, _ := s.Queue().Get(small.ID)
		return hj.State == jobq.StateDead && sj.State == jobq.StateDone
	}); err != nil {
		return err
	}
	hj, _ := s.Queue().Get(huge.ID)
	if hj.Attempt != 2 {
		return fmt.Errorf("hog dead-lettered after %d attempts, want 2", hj.Attempt)
	}
	if !strings.Contains(hj.Error, "deadline") {
		return fmt.Errorf("hog error %q does not name the deadline", hj.Error)
	}
	h.logf("hog dead after %d bounded attempts, meek finished untouched", hj.Attempt)
	return nil
}

// runSlowClient: a client that dribbles request headers holds a
// connection open indefinitely; the API must keep answering everyone
// else (the ReadHeaderTimeout shed in obs.NewHandlerServer is the
// backstop that eventually reclaims the socket).
func runSlowClient(h *harness) error {
	s, stop, err := tempService(zsimd.Config{Workers: 1, CheckpointInterval: -1})
	if err != nil {
		return err
	}
	defer stop()
	s.Start()
	ts, tsURL := serveHTTP(s)
	defer ts.Shutdown(time.Second)

	// The slow client: half a request line, then silence.
	conn, err := net.Dial("tcp", strings.TrimPrefix(tsURL, "http://"))
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "POST /v1/jobs HT"); err != nil {
		return err
	}

	// Everyone else stays served while the slow socket idles.
	for i := 0; i < 10; i++ {
		client := &http.Client{Timeout: 2 * time.Second}
		resp, err := client.Get(tsURL + "/healthz")
		if err != nil {
			return fmt.Errorf("healthz %d stalled behind slow client: %w", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz %d = %d", i, resp.StatusCode)
		}
	}
	status, _, _, err := submit(tsURL, "meek", specJSON("tpf-airline", 60_000))
	if err != nil || status != http.StatusAccepted {
		return fmt.Errorf("submit behind slow client: status %d, err %v", status, err)
	}
	if err := waitUntil(60*time.Second, "job behind slow client", func() bool {
		return s.Queue().Depth().Done == 1
	}); err != nil {
		return err
	}
	h.logf("10 healthz + 1 job served while a slow client dribbled headers")
	return nil
}

// serveHTTP starts the service API on a loopback obs.Server (the
// production lifecycle wrapper, ReadHeaderTimeout included).
func serveHTTP(s *zsimd.Service) (*obs.Server, string) {
	srv := obs.NewHandlerServer(s.Handler())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err) // loopback :0 cannot fail for reachable reasons
	}
	return srv, "http://" + addr
}

// submit posts one job and returns (status, Retry-After header, body).
func submit(baseURL, tenant string, spec json.RawMessage) (int, string, []byte, error) {
	body := fmt.Sprintf(`{"tenant":%q,"spec":%s}`, tenant, spec)
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), b, nil
}
