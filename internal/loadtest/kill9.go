package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/jobq"
	"bulkpreload/internal/sim"
)

// kill9CheckpointInterval is the daemon's checkpoint cadence in this
// scenario; the serial oracle must run with the same value so the
// recovered result compares bit-for-bit.
const kill9CheckpointInterval = 50_000

// runKill9 is the crash drill the service exists for: SIGKILL the
// daemon mid-job, restart it on the same directory, and require that
// the job resumes from its durable checkpoint and finishes with a
// Result byte-identical to a serial checkpoint+resume oracle built
// from the checkpoint file the crash left behind.
func runKill9(h *harness) error {
	dir, err := tempDir()
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// First incarnation.
	d, err := startDaemon(h, dir)
	if err != nil {
		return err
	}
	defer d.killHard()

	specBody := specJSON("tpf-airline", 2_500_000)
	status, _, body, err := submit(d.url, "crash", specBody)
	if err != nil || status != http.StatusAccepted {
		return fmt.Errorf("submit: status %d, err %v", status, err)
	}
	var job jobq.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}

	// Let it run until a checkpoint is durable, then pull the plug.
	if err := waitUntil(60*time.Second, "a durable checkpoint", func() bool {
		j, err := d.getJob(job.ID)
		return err == nil && j.CheckpointAt > 0
	}); err != nil {
		return err
	}
	if err := d.killHard(); err != nil {
		return fmt.Errorf("kill -9: %w", err)
	}
	h.logf("killed daemon pid %d mid-job", d.cmd.Process.Pid)

	// The checkpoint file is now frozen: read the exact state the next
	// incarnation will resume from (the oracle's starting point).
	ck, err := engine.ReadCheckpointFile(filepath.Join(dir, job.ID+".ckpt"))
	if err != nil {
		return fmt.Errorf("reading crash checkpoint: %w", err)
	}

	// Second incarnation: recover, resume, finish.
	d2, err := startDaemon(h, dir)
	if err != nil {
		return fmt.Errorf("restarting daemon: %w", err)
	}
	defer d2.killHard()
	if err := waitUntil(240*time.Second, "recovered job to finish", func() bool {
		j, err := d2.getJob(job.ID)
		return err == nil && j.State == jobq.StateDone
	}); err != nil {
		return err
	}
	got, err := d2.getJob(job.ID)
	if err != nil {
		return err
	}
	if got.Recovered != 1 {
		return fmt.Errorf("job Recovered = %d, want 1", got.Recovered)
	}
	if got.ResumedFrom != ck.Instructions {
		return fmt.Errorf("job resumed from %d, checkpoint file says %d", got.ResumedFrom, ck.Instructions)
	}
	if err := d2.stopGraceful(); err != nil {
		return fmt.Errorf("graceful stop after recovery: %w", err)
	}

	// Serial oracle: resume the same checkpoint on a fresh engine with
	// the daemon's parameters. Bit-identical or it does not count.
	var spec sim.Spec
	if err := json.Unmarshal(specBody, &spec); err != nil {
		return err
	}
	unit, err := spec.Unit()
	if err != nil {
		return err
	}
	params := unit.Params
	params.CheckpointInterval = kill9CheckpointInterval
	params.CheckpointSink = func(*engine.Checkpoint) {}
	oracle, err := engine.New(unit.Config, params).
		ResumeContext(context.Background(), unit.NewSource(), ck, engine.DefaultCancelPoll)
	if err != nil {
		return fmt.Errorf("oracle resume: %w", err)
	}
	wantJSON, err := json.Marshal(oracle)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(got.Result), wantJSON) {
		return fmt.Errorf("recovered result diverges from serial checkpoint+resume oracle:\n got %s\nwant %s", got.Result, wantJSON)
	}
	h.logf("resumed from %d instructions after SIGKILL, result bit-identical to oracle", ck.Instructions)
	return nil
}

// daemon is one zsimd subprocess under test.
type daemon struct {
	cmd  *exec.Cmd
	url  string
	dead bool
}

// startDaemon launches the zsimd binary against dir and waits for it
// to publish its bound address.
func startDaemon(h *harness, dir string) (*daemon, error) {
	addrFile := filepath.Join(dir, "zsimd.addr")
	os.Remove(addrFile)
	cmd := exec.Command(h.opts.Bin,
		"-dir", dir,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-checkpoint-every", fmt.Sprint(kill9CheckpointInterval),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", h.opts.Bin, err)
	}
	d := &daemon{cmd: cmd}
	err := waitUntil(30*time.Second, "daemon address file", func() bool {
		b, err := os.ReadFile(addrFile)
		if err != nil || len(bytes.TrimSpace(b)) == 0 {
			return false
		}
		d.url = "http://" + strings.TrimSpace(string(b))
		return true
	})
	if err != nil {
		d.killHard()
		return nil, err
	}
	return d, nil
}

// getJob fetches one job's status from the daemon.
func (d *daemon) getJob(id string) (jobq.Job, error) {
	resp, err := http.Get(d.url + "/v1/jobs/" + id)
	if err != nil {
		return jobq.Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobq.Job{}, fmt.Errorf("job %s: status %d", id, resp.StatusCode)
	}
	var j jobq.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return jobq.Job{}, err
	}
	return j, nil
}

// killHard SIGKILLs the daemon — the crash injection. Idempotent.
func (d *daemon) killHard() error {
	if d.dead {
		return nil
	}
	d.dead = true
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = d.cmd.Wait()
	return nil
}

// stopGraceful sends SIGTERM and waits for the drain to complete.
func (d *daemon) stopGraceful() error {
	if d.dead {
		return nil
	}
	d.dead = true
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("daemon ignored SIGTERM for 30s")
	}
}

// tempDir creates a scratch directory for one scenario.
func tempDir() (string, error) {
	return os.MkdirTemp("", "zsimd-loadtest-*")
}
