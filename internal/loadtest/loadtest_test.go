package loadtest

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// runScenario executes one scenario through the public entry point.
func runScenario(t *testing.T, name, bin string) {
	t.Helper()
	outs := Run(Options{Bin: bin, Filter: name, Seed: 42, Logf: t.Logf})
	if len(outs) != 1 {
		t.Fatalf("filter %q selected %d scenarios", name, len(outs))
	}
	if outs[0].Skipped {
		t.Skipf("scenario %s skipped", name)
	}
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
}

func TestSteadyScenario(t *testing.T)     { runScenario(t, "steady", "") }
func TestBurstScenario(t *testing.T)      { runScenario(t, "burst", "") }
func TestTimeoutScenario(t *testing.T)    { runScenario(t, "timeout", "") }
func TestSlowClientScenario(t *testing.T) { runScenario(t, "slowclient", "") }

// TestKill9Scenario builds the real zsimd binary and runs the
// SIGKILL/restart/oracle drill against it — the full crash-recovery
// acceptance gate, driven from `go test` exactly as from -selftest.
func TestKill9Scenario(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "zsimd")
	build := exec.Command("go", "build", "-o", bin, "bulkpreload/cmd/zsimd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building zsimd: %v", err)
	}
	runScenario(t, "kill9", bin)
}

// TestScenarioNamesStable pins the scenario catalogue the CI selftest
// job and the runbook reference by name.
func TestScenarioNamesStable(t *testing.T) {
	want := []string{"steady", "burst", "timeout", "slowclient", "kill9"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("scenario names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scenario names = %v, want %v", got, want)
		}
	}
}

// TestDeterministicSeeding pins the rng stream: the same seed must
// select the same workload mix forever, or "deterministic testbed"
// stops meaning anything.
func TestDeterministicSeeding(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.intn(1000), b.intn(1000); x != y {
			t.Fatalf("rng diverged at draw %d: %d != %d", i, x, y)
		}
	}
	// Distinct seeds diverge somewhere in the first draws.
	a, c := newRNG(1), newRNG(2)
	diverged := false
	for i := 0; i < 10; i++ {
		if a.intn(1_000_000) != c.intn(1_000_000) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
}
