// Package loadtest is the fault-injecting load testbed for the zsimd
// service: a set of named, deterministic scenarios that drive a real
// service instance — in-process for load and timeout shapes, as a
// killed-and-restarted subprocess for crash recovery — and verify the
// robustness contracts the service documents:
//
//	steady      a mixed-tenant workload completes with zero retries,
//	            and identical specs produce byte-identical results
//	burst       overload is shed with 429 + Retry-After at a bounded
//	            queue depth, and every accepted job still completes
//	timeout     a job that overruns its deadline dead-letters after
//	            bounded retries without wedging the queue
//	slowclient  a client dribbling request headers cannot stall the
//	            API or the drain path
//	kill9       SIGKILL mid-job, restart, and the resumed result is
//	            bit-identical to a serial checkpoint+resume oracle
//
// Scenarios are seeded and reproducible: workload mixes derive from
// Options.Seed through splitmix64, the same generator discipline the
// fault-injection layer uses. Run them via `zsimd -selftest`, the CI
// selftest job, or the package tests.
package loadtest

import (
	"fmt"
	"strings"
	"time"
)

// Options configures a testbed run.
type Options struct {
	// Bin is the zsimd binary for subprocess scenarios (kill9). Empty
	// skips them with Outcome.Skipped set.
	Bin string

	// Filter, when non-empty, selects scenarios whose name contains it.
	Filter string

	// Seed drives the deterministic workload mixes (0 selects 1).
	Seed uint64

	// Logf receives scenario progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Outcome reports one scenario's result.
type Outcome struct {
	Name    string
	Err     error
	Skipped bool
	Dur     time.Duration
}

// Failed reports whether any outcome failed.
func Failed(outs []Outcome) bool {
	for _, o := range outs {
		if o.Err != nil {
			return true
		}
	}
	return false
}

// scenario is one named testbed case.
type scenario struct {
	name     string
	needsBin bool
	run      func(h *harness) error
}

// scenarios in execution order: cheap in-process shapes first, the
// subprocess crash drill last.
var scenarios = []scenario{
	{name: "steady", run: runSteady},
	{name: "burst", run: runBurst},
	{name: "timeout", run: runTimeout},
	{name: "slowclient", run: runSlowClient},
	{name: "kill9", needsBin: true, run: runKill9},
}

// Names lists the available scenario names.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = s.name
	}
	return out
}

// Run executes every scenario Options selects and returns their
// outcomes.
func Run(opts Options) []Outcome {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	var outs []Outcome
	for _, sc := range scenarios {
		if opts.Filter != "" && !strings.Contains(sc.name, opts.Filter) {
			continue
		}
		if sc.needsBin && opts.Bin == "" {
			opts.Logf("loadtest: %s: skipped (no zsimd binary)", sc.name)
			outs = append(outs, Outcome{Name: sc.name, Skipped: true})
			continue
		}
		h := &harness{
			opts: opts,
			rng:  newRNG(opts.Seed),
			logf: func(format string, args ...any) {
				opts.Logf("loadtest: "+sc.name+": "+format, args...)
			},
		}
		start := time.Now()
		err := sc.run(h)
		dur := time.Since(start)
		if err != nil {
			opts.Logf("loadtest: %s: FAIL (%v): %v", sc.name, dur.Round(time.Millisecond), err)
		} else {
			opts.Logf("loadtest: %s: ok (%v)", sc.name, dur.Round(time.Millisecond))
		}
		outs = append(outs, Outcome{Name: sc.name, Err: err, Dur: dur})
	}
	return outs
}

// harness is the per-scenario context.
type harness struct {
	opts Options
	rng  *rng
	logf func(format string, args ...any)
}

// rng is a splitmix64 stream — the deterministic-seeding idiom the
// fault layer uses, so scenario workload mixes replay exactly.
type rng struct{ x uint64 }

func newRNG(seed uint64) *rng { return &rng{x: seed} }

func (r *rng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a deterministic value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// waitUntil polls cond every few milliseconds until it holds or the
// timeout lapses.
func waitUntil(timeout time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v waiting for %s", timeout, what)
}
