// Package zaddr provides address bit-field arithmetic in the big-endian
// bit-numbering convention used by z/Architecture and throughout the
// HPCA 2013 paper "Two Level Bulk Preload Branch Prediction": bit 0 is the
// most significant bit of a 64-bit address and bit 63 the least
// significant. All structure index ranges quoted in the paper (BTB1 bits
// 49:58, BTBP bits 52:58, BTB2 bits 47:58, block bits 0:51) follow that
// convention and map directly onto the helpers here.
package zaddr

import (
	"fmt"
	"math/bits"
)

// Addr is a 64-bit instruction address.
type Addr uint64

// Paper-defined geometry constants. A BTB row covers 32 bytes of
// instruction space; BTB2 bulk transfers operate on 4 KB blocks divided
// into 32 sectors of 128 bytes, grouped as four 1 KB quartiles of eight
// sectors each.
const (
	RowBytes     = 32   // instruction bytes covered by one BTB row
	SectorBytes  = 128  // ordering-table sector granule
	QuartileSize = 1024 // 1 KB quartile
	BlockBytes   = 4096 // BTB2 bulk-transfer block

	SectorsPerBlock    = BlockBytes / SectorBytes   // 32
	QuartilesPerBlock  = BlockBytes / QuartileSize  // 4
	SectorsPerQuartile = QuartileSize / SectorBytes // 8
	RowsPerBlock       = BlockBytes / RowBytes      // 128
	RowsPerSector      = SectorBytes / RowBytes     // 4
)

// Bits extracts big-endian bit range hi..lo (inclusive, hi <= lo, bit 0 =
// MSB) from a. For example Bits(a, 49, 58) yields the 10-bit BTB1 index.
func Bits(a Addr, hi, lo uint) uint64 {
	if hi > lo || lo > 63 {
		panic(fmt.Sprintf("zaddr: invalid bit range %d:%d (want big-endian hi <= lo <= 63)", hi, lo))
	}
	width := lo - hi + 1
	shift := 63 - lo
	if width == 64 {
		return uint64(a)
	}
	return (uint64(a) >> shift) & ((1 << width) - 1)
}

// SetBits returns a with big-endian bit range hi..lo replaced by v's low
// bits. It is the inverse of Bits and is used by trace generators to
// compose addresses field-by-field.
func SetBits(a Addr, hi, lo uint, v uint64) Addr {
	if hi > lo || lo > 63 {
		panic(fmt.Sprintf("zaddr: invalid bit range %d:%d (want big-endian hi <= lo <= 63)", hi, lo))
	}
	width := lo - hi + 1
	shift := 63 - lo
	var mask uint64
	if width == 64 {
		mask = ^uint64(0)
	} else {
		mask = ((1 << width) - 1) << shift
	}
	return Addr((uint64(a) &^ mask) | ((v << shift) & mask))
}

// RowIndex returns the index of the 32-byte BTB row containing a, within
// an unbounded address space (i.e. a / 32).
func RowIndex(a Addr) uint64 { return uint64(a) / RowBytes }

// RowBase returns the lowest address of the 32-byte row containing a.
//
//zbp:inert
func RowBase(a Addr) Addr { return a &^ (RowBytes - 1) }

// RowOffset returns a's byte offset within its 32-byte row (bits 59:63).
func RowOffset(a Addr) uint { return uint(a & (RowBytes - 1)) }

// Block returns the 4 KB block number containing a (address bits 0:51).
func Block(a Addr) uint64 { return uint64(a) / BlockBytes }

// BlockBase returns the lowest address of the 4 KB block containing a.
func BlockBase(a Addr) Addr { return a &^ (BlockBytes - 1) }

// BlockOffset returns a's byte offset within its 4 KB block.
func BlockOffset(a Addr) uint { return uint(a & (BlockBytes - 1)) }

// SameBlock reports whether a and b fall in the same 4 KB block.
func SameBlock(a, b Addr) bool { return Block(a) == Block(b) }

// Sector returns the 128-byte sector index (0..31) of a within its block.
func Sector(a Addr) int { return int(BlockOffset(a) / SectorBytes) }

// Quartile returns the 1 KB quartile index (0..3) of a within its block.
func Quartile(a Addr) int { return int(BlockOffset(a) / QuartileSize) }

// SectorQuartile returns the quartile (0..3) a sector index (0..31)
// belongs to.
func SectorQuartile(sector int) int { return sector / SectorsPerQuartile }

// SectorBase returns the lowest address of sector s (0..31) within the
// block containing a.
func SectorBase(a Addr, s int) Addr {
	return BlockBase(a) + Addr(s*SectorBytes)
}

// NextRow returns the first address of the row following the one
// containing a. The search pipeline uses it for sequential re-indexing.
func NextRow(a Addr) Addr { return RowBase(a) + RowBytes }

// Align truncates a to a multiple of n (n must be a power of two).
//
//zbp:inert
func Align(a Addr, n uint64) Addr {
	if n == 0 || n&(n-1) != 0 {
		panic("zaddr: Align size must be a power of two")
	}
	return a &^ Addr(n-1)
}

// Halfword returns a as a halfword count (a >> 1). z instruction
// addresses are 2-byte aligned, so bit 63 carries no information; table
// index and tag hashes drop it before mixing.
func Halfword(a Addr) uint64 { return uint64(a) >> 1 }

// OffsetWithin returns a's byte offset inside the aligned power-of-two
// region of the given size that contains it. It generalizes RowOffset /
// BlockOffset to configurable granules (cache lines, BTB row coverage).
func OffsetWithin(a Addr, size uint64) uint64 {
	if size == 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("zaddr: OffsetWithin size %d must be a power of two", size))
	}
	return uint64(a) & (size - 1)
}

// ChunkIndex returns the index of the size-byte aligned chunk holding a
// within an unbounded address space (a / size, size a power of two). It
// generalizes RowIndex / Block to configurable granules.
func ChunkIndex(a Addr, size uint64) uint64 {
	if size == 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("zaddr: ChunkIndex size %d must be a power of two", size))
	}
	return uint64(a) >> uint(bits.TrailingZeros64(size))
}

// FlipBit returns a with little-endian bit b (0 = LSB, the convention
// hardware fault models use for payload words) inverted. It is the
// single-event-upset primitive for the fault injectors.
func FlipBit(a Addr, b uint) Addr { return a ^ Addr(uint64(1)<<(b&63)) }
