package zaddr

import (
	"testing"
	"testing/quick"
)

func TestBitsKnownValues(t *testing.T) {
	tests := []struct {
		a      Addr
		hi, lo uint
		want   uint64
	}{
		{0xFFFFFFFFFFFFFFFF, 0, 63, 0xFFFFFFFFFFFFFFFF},
		{0x8000000000000000, 0, 0, 1},
		{0x8000000000000000, 1, 63, 0},
		{0x0000000000000001, 63, 63, 1},
		{0x0000000000000001, 0, 62, 0},
		// BTB1 index: bits 49:58 (10 bits). Address 0x0000_0000_0000_4000:
		// bit 49 corresponds to value 1<<14.
		{1 << 14, 49, 58, 1 << 9},
		{1 << 5, 49, 58, 1}, // bit 58 = 1<<5
		{1 << 4, 49, 58, 0}, // bit 59 is below the range
		// BTB2 index: bits 47:58 (12 bits).
		{1 << 16, 47, 58, 1 << 11},
		// BTBP index: bits 52:58 (7 bits).
		{1 << 11, 52, 58, 1 << 6},
	}
	for _, tt := range tests {
		if got := Bits(tt.a, tt.hi, tt.lo); got != tt.want {
			t.Errorf("Bits(%#x, %d, %d) = %#x, want %#x", uint64(tt.a), tt.hi, tt.lo, got, tt.want)
		}
	}
}

func TestBitsSetBitsRoundTrip(t *testing.T) {
	f := func(a uint64, hiRaw, widthRaw uint8) bool {
		hi := uint(hiRaw) % 64
		width := uint(widthRaw)%(64-hi) + 1
		lo := hi + width - 1
		v := Bits(Addr(a), hi, lo)
		back := SetBits(Addr(a), hi, lo, v)
		return back == Addr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBitsThenBits(t *testing.T) {
	f := func(a, v uint64, hiRaw, widthRaw uint8) bool {
		hi := uint(hiRaw) % 64
		width := uint(widthRaw)%(64-hi) + 1
		lo := hi + width - 1
		masked := v
		if width < 64 {
			masked = v & ((1 << width) - 1)
		}
		got := Bits(SetBits(Addr(a), hi, lo, v), hi, lo)
		return got == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bit range")
		}
	}()
	Bits(0, 10, 5)
}

func TestRowGeometry(t *testing.T) {
	a := Addr(0x1234567) // arbitrary
	if RowBase(a)%RowBytes != 0 {
		t.Errorf("RowBase not aligned: %#x", uint64(RowBase(a)))
	}
	if RowBase(a) > a || a-RowBase(a) >= RowBytes {
		t.Errorf("address %#x not within its row base %#x", uint64(a), uint64(RowBase(a)))
	}
	if got := RowOffset(a); got != uint(a-RowBase(a)) {
		t.Errorf("RowOffset = %d, want %d", got, uint(a-RowBase(a)))
	}
	if NextRow(a) != RowBase(a)+RowBytes {
		t.Errorf("NextRow = %#x", uint64(NextRow(a)))
	}
	if RowIndex(a) != uint64(a)/RowBytes {
		t.Errorf("RowIndex = %d", RowIndex(a))
	}
}

func TestBlockSectorQuartileGeometry(t *testing.T) {
	// A block is 4 KB = 4 quartiles of 1 KB = 32 sectors of 128 B.
	if SectorsPerBlock != 32 || QuartilesPerBlock != 4 || SectorsPerQuartile != 8 {
		t.Fatalf("geometry constants wrong: %d %d %d", SectorsPerBlock, QuartilesPerBlock, SectorsPerQuartile)
	}
	if RowsPerBlock != 128 || RowsPerSector != 4 {
		t.Fatalf("row constants wrong: %d %d", RowsPerBlock, RowsPerSector)
	}
	a := Addr(0x7F3C) // block 7, offset 0xF3C
	if Block(a) != 7 {
		t.Errorf("Block = %d, want 7", Block(a))
	}
	if BlockBase(a) != 0x7000 {
		t.Errorf("BlockBase = %#x, want 0x7000", uint64(BlockBase(a)))
	}
	if BlockOffset(a) != 0xF3C {
		t.Errorf("BlockOffset = %#x", BlockOffset(a))
	}
	if Sector(a) != int(0xF3C/128) {
		t.Errorf("Sector = %d", Sector(a))
	}
	if Quartile(a) != 3 {
		t.Errorf("Quartile = %d, want 3", Quartile(a))
	}
	if !SameBlock(a, 0x7000) || SameBlock(a, 0x8000) {
		t.Error("SameBlock misclassifies")
	}
}

func TestSectorQuartileConsistency(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		s := Sector(a)
		q := Quartile(a)
		if s < 0 || s >= SectorsPerBlock || q < 0 || q >= QuartilesPerBlock {
			return false
		}
		return SectorQuartile(s) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectorBase(t *testing.T) {
	a := Addr(0x12345000)
	for s := 0; s < SectorsPerBlock; s++ {
		base := SectorBase(a, s)
		if Sector(base) != s {
			t.Errorf("SectorBase(%d) lands in sector %d", s, Sector(base))
		}
		if !SameBlock(base, a) {
			t.Errorf("SectorBase(%d) left the block", s)
		}
	}
}

func TestAlign(t *testing.T) {
	if Align(0x1237, 16) != 0x1230 {
		t.Errorf("Align(0x1237,16) = %#x", uint64(Align(0x1237, 16)))
	}
	if Align(0x1230, 16) != 0x1230 {
		t.Error("Align not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	Align(0, 12)
}

func TestPaperIndexWidths(t *testing.T) {
	// The paper's index ranges must produce exactly the row counts of the
	// shipping structures: BTB1 1k rows, BTBP 128 rows, BTB2 4k rows.
	max := Addr(^uint64(0))
	if got := Bits(max, 49, 58) + 1; got != 1024 {
		t.Errorf("BTB1 index space = %d, want 1024", got)
	}
	if got := Bits(max, 52, 58) + 1; got != 128 {
		t.Errorf("BTBP index space = %d, want 128", got)
	}
	if got := Bits(max, 47, 58) + 1; got != 4096 {
		t.Errorf("BTB2 index space = %d, want 4096", got)
	}
	// Bits 59:63 cover the 32 bytes within a row.
	if got := Bits(max, 59, 63) + 1; got != RowBytes {
		t.Errorf("row offset space = %d, want %d", got, RowBytes)
	}
}
