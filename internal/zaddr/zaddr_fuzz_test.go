package zaddr

import (
	"strings"
	"testing"
	"testing/quick"
)

// FuzzBitsSetBitsRoundTrip cross-checks the two core laws of the
// bit-field pair on fuzzer-chosen inputs: extract-then-insert is the
// identity, and insert-then-extract recovers the inserted value mod the
// field width. Out-of-contract ranges must panic rather than wrap.
func FuzzBitsSetBitsRoundTrip(f *testing.F) {
	f.Add(uint64(0x0000123456789ABC), uint64(0xFFF), uint(49), uint(58))
	f.Add(uint64(0), uint64(0), uint(0), uint(63))
	f.Add(^uint64(0), ^uint64(0), uint(63), uint(63))
	f.Add(uint64(1<<14), uint64(5), uint(47), uint(58))
	f.Fuzz(func(t *testing.T, a, v uint64, hi, lo uint) {
		if hi > lo || lo > 63 {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Bits(%#x, %d, %d): expected panic for invalid range", a, hi, lo)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "bit range") {
					t.Fatalf("panic %v does not describe the bit range", r)
				}
			}()
			Bits(Addr(a), hi, lo)
			return
		}
		width := lo - hi + 1
		if got := SetBits(Addr(a), hi, lo, Bits(Addr(a), hi, lo)); got != Addr(a) {
			t.Fatalf("SetBits(a, %d, %d, Bits(a, %d, %d)) = %#x, want %#x", hi, lo, hi, lo, uint64(got), a)
		}
		masked := v
		if width < 64 {
			masked = v & ((1 << width) - 1)
		}
		if got := Bits(SetBits(Addr(a), hi, lo, v), hi, lo); got != masked {
			t.Fatalf("Bits(SetBits(a, %d, %d, %#x)) = %#x, want %#x", hi, lo, v, got, masked)
		}
		// Bits outside hi:lo must be untouched by SetBits.
		changed := uint64(SetBits(Addr(a), hi, lo, v)) ^ a
		var fieldMask uint64
		if width == 64 {
			fieldMask = ^uint64(0)
		} else {
			fieldMask = ((1 << width) - 1) << (63 - lo)
		}
		if changed&^fieldMask != 0 {
			t.Fatalf("SetBits(a, %d, %d, %#x) disturbed bits outside the field: %#x", hi, lo, v, changed&^fieldMask)
		}
	})
}

// TestSetBitsPreservesOutsideField is the quick-check twin of the fuzz
// target's untouched-bits law, so the property is exercised on every
// plain `go test` run.
func TestSetBitsPreservesOutsideField(t *testing.T) {
	f := func(a, v uint64, hiRaw, widthRaw uint8) bool {
		hi := uint(hiRaw) % 64
		width := uint(widthRaw)%(64-hi) + 1
		lo := hi + width - 1
		var fieldMask uint64
		if width == 64 {
			fieldMask = ^uint64(0)
		} else {
			fieldMask = ((1 << width) - 1) << (63 - lo)
		}
		changed := uint64(SetBits(Addr(a), hi, lo, v)) ^ a
		return changed&^fieldMask == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidRangePanicNamesOffendingBits(t *testing.T) {
	cases := []struct{ hi, lo uint }{{10, 5}, {0, 64}, {70, 80}}
	for _, c := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Bits(0, %d, %d): expected panic", c.hi, c.lo)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %v is not a string", r)
				}
				if !strings.Contains(msg, "bit range") || !strings.Contains(msg, "hi <= lo") {
					t.Fatalf("panic %q does not explain the contract", msg)
				}
			}()
			Bits(0, c.hi, c.lo)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetBits(0, %d, %d, 0): expected panic", c.hi, c.lo)
				}
			}()
			SetBits(0, c.hi, c.lo, 0)
		}()
	}
}

func TestGranuleHelpers(t *testing.T) {
	a := Addr(0x12345)
	if got, want := Halfword(a), uint64(a)>>1; got != want {
		t.Errorf("Halfword(%#x) = %#x, want %#x", uint64(a), got, want)
	}
	if got, want := OffsetWithin(a, 64), uint64(a)%64; got != want {
		t.Errorf("OffsetWithin(%#x, 64) = %d, want %d", uint64(a), got, want)
	}
	if got, want := ChunkIndex(a, 64), uint64(a)/64; got != want {
		t.Errorf("ChunkIndex(%#x, 64) = %d, want %d", uint64(a), got, want)
	}
	// The generalized helpers must agree with the fixed-geometry ones.
	if OffsetWithin(a, RowBytes) != uint64(RowOffset(a)) {
		t.Error("OffsetWithin(RowBytes) disagrees with RowOffset")
	}
	if ChunkIndex(a, BlockBytes) != Block(a) {
		t.Error("ChunkIndex(BlockBytes) disagrees with Block")
	}
	if FlipBit(FlipBit(a, 7), 7) != a {
		t.Error("FlipBit is not an involution")
	}
	if FlipBit(a, 0) != a^1 {
		t.Errorf("FlipBit(a, 0) must flip the LSB")
	}
	defer func() {
		if recover() == nil {
			t.Error("OffsetWithin with non-power-of-two size must panic")
		}
	}()
	OffsetWithin(a, 48)
}
