package bht

import (
	"testing"
	"testing/quick"

	"bulkpreload/internal/zaddr"
)

func TestBimodalTransitions(t *testing.T) {
	// Exhaustive transition table.
	cases := []struct {
		from  Bimodal
		taken bool
		want  Bimodal
	}{
		{StrongNT, false, StrongNT},
		{StrongNT, true, WeakNT},
		{WeakNT, false, StrongNT},
		{WeakNT, true, WeakT},
		{WeakT, false, WeakNT},
		{WeakT, true, StrongT},
		{StrongT, false, WeakT},
		{StrongT, true, StrongT},
	}
	for _, c := range cases {
		if got := c.from.Update(c.taken); got != c.want {
			t.Errorf("%v.Update(%v) = %v, want %v", c.from, c.taken, got, c.want)
		}
	}
}

func TestBimodalPredicates(t *testing.T) {
	if StrongNT.Taken() || WeakNT.Taken() {
		t.Error("not-taken states predict taken")
	}
	if !WeakT.Taken() || !StrongT.Taken() {
		t.Error("taken states predict not-taken")
	}
	if !StrongNT.Strong() || WeakNT.Strong() || WeakT.Strong() || !StrongT.Strong() {
		t.Error("Strong() misclassifies")
	}
}

func TestBimodalInit(t *testing.T) {
	if Init(true) != WeakT || Init(false) != WeakNT {
		t.Error("Init must produce weak states")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	// A strongly-taken counter needs two not-taken outcomes to flip its
	// prediction — the defining property of 2-bit counters.
	b := StrongT
	b = b.Update(false)
	if !b.Taken() {
		t.Fatal("one not-taken flipped a strong counter")
	}
	b = b.Update(false)
	if b.Taken() {
		t.Fatal("two not-takens did not flip the counter")
	}
}

func TestBimodalSaturationProperty(t *testing.T) {
	f := func(start uint8, outcomes []bool) bool {
		b := Bimodal(start % 4)
		for _, o := range outcomes {
			b = b.Update(o)
			if b > StrongT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBimodalString(t *testing.T) {
	for b, want := range map[Bimodal]string{
		StrongNT: "strong-nt", WeakNT: "weak-nt", WeakT: "weak-t", StrongT: "strong-t", Bimodal(9): "invalid",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestSurpriseBHT(t *testing.T) {
	s := NewSurpriseBHT(1024)
	if s.Entries() != 1024 {
		t.Fatalf("Entries = %d", s.Entries())
	}
	a := zaddr.Addr(0x4000)
	if s.Taken(a) {
		t.Error("fresh table predicts taken")
	}
	s.Update(a, true)
	if !s.Taken(a) {
		t.Error("update not visible")
	}
	s.Update(a, false)
	if s.Taken(a) {
		t.Error("second update not visible")
	}
}

func TestSurpriseBHTAliasing(t *testing.T) {
	s := NewSurpriseBHT(64)
	// Addresses 2*64 halfwords apart alias in a 64-entry table.
	a := zaddr.Addr(0x1000)
	b := a + 64*2
	s.Update(a, true)
	if !s.Taken(b) {
		t.Error("expected aliasing between congruent addresses")
	}
	// Halfword-adjacent addresses must not collapse to one entry.
	s2 := NewSurpriseBHT(1024)
	s2.Update(0x1000, true)
	if s2.Taken(0x1002) {
		t.Error("adjacent halfwords alias; index must use bits above bit 63")
	}
}

func TestSurpriseBHTReset(t *testing.T) {
	s := NewSurpriseBHT(64)
	for i := 0; i < 64; i++ {
		s.Update(zaddr.Addr(i*2), true)
	}
	s.Reset()
	for i := 0; i < 64; i++ {
		if s.Taken(zaddr.Addr(i * 2)) {
			t.Fatal("Reset left state behind")
		}
	}
}

func TestSurpriseBHTBadSize(t *testing.T) {
	for _, n := range []int{0, -8, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSurpriseBHT(%d) did not panic", n)
				}
			}()
			NewSurpriseBHT(n)
		}()
	}
}

func TestDefaultSurpriseEntries(t *testing.T) {
	// The paper specifies a 32k-entry one-bit BHT.
	if DefaultSurpriseEntries != 32768 {
		t.Errorf("DefaultSurpriseEntries = %d", DefaultSurpriseEntries)
	}
}
