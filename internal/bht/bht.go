// Package bht implements the direction-prediction state machines of the
// zEC12 first-level branch predictor: the 2-bit bimodal counter stored in
// every BTB1/BTBP/BTB2 entry, and the tagless 32k-entry 1-bit surprise
// BHT used to guess the direction of branches that miss the whole first
// level ("surprise branches").
package bht

import (
	"fmt"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Bimodal is the classic 2-bit saturating direction counter stored per
// BTB entry. The zero value is StrongNT.
type Bimodal uint8

// Bimodal counter states, from strongly not-taken to strongly taken.
const (
	StrongNT Bimodal = iota
	WeakNT
	WeakT
	StrongT
)

// Taken reports the direction the counter currently predicts.
func (b Bimodal) Taken() bool { return b >= WeakT }

// Strong reports whether the counter is in a saturated state.
func (b Bimodal) Strong() bool { return b == StrongNT || b == StrongT }

// Update returns the counter state after observing an outcome.
func (b Bimodal) Update(taken bool) Bimodal {
	if taken {
		if b == StrongT {
			return StrongT
		}
		return b + 1
	}
	if b == StrongNT {
		return StrongNT
	}
	return b - 1
}

// Init returns the counter state appropriate for a newly installed entry
// that was just observed with the given outcome (weakly biased, as a
// single observation warrants).
func Init(taken bool) Bimodal {
	if taken {
		return WeakT
	}
	return WeakNT
}

// String implements fmt.Stringer.
func (b Bimodal) String() string {
	switch b {
	case StrongNT:
		return "strong-nt"
	case WeakNT:
		return "weak-nt"
	case WeakT:
		return "weak-t"
	case StrongT:
		return "strong-t"
	default:
		return "invalid"
	}
}

// SurpriseBHT is the tagless one-bit branch history table consulted for
// surprise branches, combined by the caller with the static opcode guess.
// The shipping design has 32k entries. Slots that have never been trained
// defer to the static opcode/instruction-text guess (Guess), modelling
// the paper's "guessed based on a tagless 32k entry one-bit BHT, its
// opcode and other instruction text fields".
type SurpriseBHT struct {
	bits    []bool
	touched []bool
	mask    uint64
	inj     *fault.Injector // soft-error injection on Guess; nil = off
	met     surpriseMetrics
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (s *SurpriseBHT) SetInjector(j *fault.Injector) { s.inj = j }

// Injector returns the attached injector (nil when faults are off).
func (s *SurpriseBHT) Injector() *fault.Injector { return s.inj }

// surpriseMetrics is the surprise BHT's registry-backed counter set.
type surpriseMetrics struct {
	guesses        obs.Counter
	trainedGuesses obs.Counter
	updates        obs.Counter
}

// Stats is a point-in-time view of the surprise BHT counters.
type Stats struct {
	Guesses        int64 // direction guesses served
	TrainedGuesses int64 // guesses answered by a trained slot
	Updates        int64 // resolved directions recorded
}

// DefaultSurpriseEntries is the zEC12 surprise BHT size.
const DefaultSurpriseEntries = 32 * 1024

// NewSurpriseBHT builds a surprise BHT with the given number of entries
// (must be a power of two).
func NewSurpriseBHT(entries int) *SurpriseBHT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bht: surprise BHT entries must be a positive power of two")
	}
	return &SurpriseBHT{
		bits:    make([]bool, entries),
		touched: make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

// index hashes a branch address to a table slot. Instruction addresses
// are halfword aligned, so bit 63 carries no information; drop it.
//
//zbp:hotpath
func (s *SurpriseBHT) index(a zaddr.Addr) uint64 { return zaddr.Halfword(a) & s.mask }

// Taken returns the table's direction guess for the branch at a.
//
//zbp:hotpath
func (s *SurpriseBHT) Taken(a zaddr.Addr) bool { return s.bits[s.index(a)] }

// Guess combines the table with the static opcode-derived guess: trained
// slots supply the dynamic bit, untrained slots fall back to the static
// guess.
//
//zbp:hotpath
func (s *SurpriseBHT) Guess(a zaddr.Addr, staticTaken bool) bool {
	s.met.guesses.Inc()
	i := s.index(a)
	if s.inj != nil && s.touched[i] {
		s.faultCheck(i)
	}
	if s.touched[i] {
		s.met.trainedGuesses.Inc()
		return s.bits[i]
	}
	return staticTaken
}

// faultCheck strikes trained slot i, if this read is the one the
// injector's schedule lands on. The only stored payload is the one
// direction bit, so an unprotected fault flips it; parity recovery
// clears the slot back to untrained (the static guess takes over until
// the branch retrains it).
//
//zbp:hotpath
func (s *SurpriseBHT) faultCheck(i uint64) {
	if _, ok := s.inj.Strike(); !ok {
		return
	}
	if s.inj.Parity() {
		s.bits[i] = false
		s.touched[i] = false
		s.inj.NoteRecovered()
		return
	}
	s.bits[i] = !s.bits[i]
	s.inj.NoteSilent()
}

// Update records a resolved direction for the branch at a.
//
//zbp:hotpath
func (s *SurpriseBHT) Update(a zaddr.Addr, taken bool) {
	s.met.updates.Inc()
	i := s.index(a)
	s.bits[i] = taken
	s.touched[i] = true
}

// Stats returns a view of the counters.
func (s *SurpriseBHT) Stats() Stats {
	return Stats{
		Guesses:        s.met.guesses.Value(),
		TrainedGuesses: s.met.trainedGuesses.Value(),
		Updates:        s.met.updates.Value(),
	}
}

// RegisterMetrics enumerates the surprise BHT counters (plus a computed
// trained-slot occupancy gauge) into r under the given prefix, e.g.
// "sbht_".
func (s *SurpriseBHT) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"guesses_total", "guesses", "surprise-branch direction guesses served", &s.met.guesses)
	r.Counter(prefix+"trained_guesses_total", "guesses", "guesses answered by a trained slot", &s.met.trainedGuesses)
	r.Counter(prefix+"updates_total", "updates", "resolved directions recorded", &s.met.updates)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "trained one-bit slots",
		func() int64 { return int64(s.CountTrained()) })
}

// CountTrained returns the number of slots that have been trained.
func (s *SurpriseBHT) CountTrained() int {
	n := 0
	for i := range s.touched {
		if s.touched[i] {
			n++
		}
	}
	return n
}

// Entries returns the table size.
func (s *SurpriseBHT) Entries() int { return len(s.bits) }

// Reset clears all history.
func (s *SurpriseBHT) Reset() {
	for i := range s.bits {
		s.bits[i] = false
		s.touched[i] = false
	}
	s.met = surpriseMetrics{}
}

// State is a serializable copy of the surprise BHT's architectural
// contents.
type State struct {
	Bits    []bool
	Touched []bool
}

// State returns a deep copy of the table's architectural state.
func (s *SurpriseBHT) State() State {
	return State{
		Bits:    append([]bool(nil), s.bits...),
		Touched: append([]bool(nil), s.touched...),
	}
}

// RestoreState overwrites the table's contents with st, which must come
// from a table of identical size.
func (s *SurpriseBHT) RestoreState(st State) error {
	if len(st.Bits) != len(s.bits) || len(st.Touched) != len(s.touched) {
		return fmt.Errorf("bht: state has %d/%d slots, table has %d", len(st.Bits), len(st.Touched), len(s.bits))
	}
	copy(s.bits, st.Bits)
	copy(s.touched, st.Touched)
	return nil
}
