// Package bht implements the direction-prediction state machines of the
// zEC12 first-level branch predictor: the 2-bit bimodal counter stored in
// every BTB1/BTBP/BTB2 entry, and the tagless 32k-entry 1-bit surprise
// BHT used to guess the direction of branches that miss the whole first
// level ("surprise branches").
package bht

import "bulkpreload/internal/zaddr"

// Bimodal is the classic 2-bit saturating direction counter stored per
// BTB entry. The zero value is StrongNT.
type Bimodal uint8

// Bimodal counter states, from strongly not-taken to strongly taken.
const (
	StrongNT Bimodal = iota
	WeakNT
	WeakT
	StrongT
)

// Taken reports the direction the counter currently predicts.
func (b Bimodal) Taken() bool { return b >= WeakT }

// Strong reports whether the counter is in a saturated state.
func (b Bimodal) Strong() bool { return b == StrongNT || b == StrongT }

// Update returns the counter state after observing an outcome.
func (b Bimodal) Update(taken bool) Bimodal {
	if taken {
		if b == StrongT {
			return StrongT
		}
		return b + 1
	}
	if b == StrongNT {
		return StrongNT
	}
	return b - 1
}

// Init returns the counter state appropriate for a newly installed entry
// that was just observed with the given outcome (weakly biased, as a
// single observation warrants).
func Init(taken bool) Bimodal {
	if taken {
		return WeakT
	}
	return WeakNT
}

// String implements fmt.Stringer.
func (b Bimodal) String() string {
	switch b {
	case StrongNT:
		return "strong-nt"
	case WeakNT:
		return "weak-nt"
	case WeakT:
		return "weak-t"
	case StrongT:
		return "strong-t"
	default:
		return "invalid"
	}
}

// SurpriseBHT is the tagless one-bit branch history table consulted for
// surprise branches, combined by the caller with the static opcode guess.
// The shipping design has 32k entries. Slots that have never been trained
// defer to the static opcode/instruction-text guess (Guess), modelling
// the paper's "guessed based on a tagless 32k entry one-bit BHT, its
// opcode and other instruction text fields".
type SurpriseBHT struct {
	bits    []bool
	touched []bool
	mask    uint64
}

// DefaultSurpriseEntries is the zEC12 surprise BHT size.
const DefaultSurpriseEntries = 32 * 1024

// NewSurpriseBHT builds a surprise BHT with the given number of entries
// (must be a power of two).
func NewSurpriseBHT(entries int) *SurpriseBHT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bht: surprise BHT entries must be a positive power of two")
	}
	return &SurpriseBHT{
		bits:    make([]bool, entries),
		touched: make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

// index hashes a branch address to a table slot. Instruction addresses
// are halfword aligned, so bit 63 carries no information; drop it.
func (s *SurpriseBHT) index(a zaddr.Addr) uint64 { return (uint64(a) >> 1) & s.mask }

// Taken returns the table's direction guess for the branch at a.
func (s *SurpriseBHT) Taken(a zaddr.Addr) bool { return s.bits[s.index(a)] }

// Guess combines the table with the static opcode-derived guess: trained
// slots supply the dynamic bit, untrained slots fall back to the static
// guess.
func (s *SurpriseBHT) Guess(a zaddr.Addr, staticTaken bool) bool {
	i := s.index(a)
	if s.touched[i] {
		return s.bits[i]
	}
	return staticTaken
}

// Update records a resolved direction for the branch at a.
func (s *SurpriseBHT) Update(a zaddr.Addr, taken bool) {
	i := s.index(a)
	s.bits[i] = taken
	s.touched[i] = true
}

// Entries returns the table size.
func (s *SurpriseBHT) Entries() int { return len(s.bits) }

// Reset clears all history.
func (s *SurpriseBHT) Reset() {
	for i := range s.bits {
		s.bits[i] = false
		s.touched[i] = false
	}
}
