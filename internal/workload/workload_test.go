package workload

import (
	"strings"
	"testing"

	"bulkpreload/internal/trace"
)

func smallProfile() Profile {
	return Profile{
		Name:                "test-small",
		UniqueBranches:      2000,
		TakenFraction:       0.7,
		Instructions:        60_000,
		HotFraction:         0.2,
		WindowFunctions:     16,
		CallsPerTransaction: 6,
		Seed:                42,
	}
}

func TestProfileValidate(t *testing.T) {
	if err := smallProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.UniqueBranches = 5 },
		func(p *Profile) { p.TakenFraction = 0 },
		func(p *Profile) { p.TakenFraction = 1.5 },
		func(p *Profile) { p.Instructions = 0 },
		func(p *Profile) { p.HotFraction = 1.0 },
		func(p *Profile) { p.WindowFunctions = 0 },
		func(p *Profile) { p.CallsPerTransaction = 0 },
	}
	for i, mutate := range bad {
		p := smallProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEveryInstructionValid(t *testing.T) {
	s := New(smallProfile())
	n := 0
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("instruction %d: %v", n, err)
		}
		n++
	}
	if n != 60_000 {
		t.Fatalf("emitted %d instructions, want 60000", n)
	}
}

func TestDeterministicAcrossReset(t *testing.T) {
	s := New(smallProfile())
	first := trace.Collect(s)
	second := trace.Collect(s)
	if len(first) != len(second) {
		t.Fatalf("pass lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("instruction %d differs across Reset", i)
		}
	}
}

func TestControlFlowConsistency(t *testing.T) {
	// Every instruction must start where the previous one said control
	// goes (NextAddr) — the interpreter must never teleport.
	s := New(smallProfile())
	prev, ok := s.Next()
	if !ok {
		t.Fatal("empty source")
	}
	for i := 1; ; i++ {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.Addr != prev.NextAddr() {
			t.Fatalf("instruction %d at %#x, expected %#x (after %+v)",
				i, uint64(in.Addr), uint64(prev.NextAddr()), prev)
		}
		prev = in
	}
}

func TestFootprintApproximatesProfile(t *testing.T) {
	p := smallProfile()
	s := New(p)
	st := trace.Measure(s)
	// Unique executed branches should be within 45%..110% of the target
	// (coverage depends on the walk), and the taken fraction within 20
	// points.
	lo, hi := int(float64(p.UniqueBranches)*0.45), int(float64(p.UniqueBranches)*1.10)
	if st.UniqueBranches < lo || st.UniqueBranches > hi {
		t.Errorf("unique branches = %d, want %d..%d", st.UniqueBranches, lo, hi)
	}
	gotFrac := float64(st.UniqueTaken) / float64(st.UniqueBranches)
	if gotFrac < p.TakenFraction-0.2 || gotFrac > p.TakenFraction+0.2 {
		t.Errorf("taken fraction = %.2f, want ~%.2f", gotFrac, p.TakenFraction)
	}
	// Plausible branch density for commercial code: 1 branch per 3..9
	// instructions.
	d := st.BranchDensity()
	if d < 1.0/9 || d > 1.0/3 {
		t.Errorf("branch density = %.3f, implausible", d)
	}
}

func TestStaticSitesBoundExecuted(t *testing.T) {
	s := New(smallProfile())
	st := trace.Measure(s)
	if st.UniqueBranches > s.StaticBranchSites() {
		t.Errorf("executed %d unique branches > %d static sites",
			st.UniqueBranches, s.StaticBranchSites())
	}
	if s.Functions() < 4 {
		t.Errorf("too few functions: %d", s.Functions())
	}
	if s.blockSpan() < 2 {
		t.Errorf("program spans only %d blocks", s.blockSpan())
	}
}

func TestTable4Registry(t *testing.T) {
	ps := Table4Profiles(0)
	if len(ps) != 13 {
		t.Fatalf("Table 4 has 13 traces, registry has %d", len(ps))
	}
	seenNames := map[string]bool{}
	seenSeeds := map[int64]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Instructions != DefaultInstructions {
			t.Errorf("%s: default instructions not applied", p.Name)
		}
		if seenNames[p.Name] || seenSeeds[p.Seed] {
			t.Errorf("%s: duplicate name or seed", p.Name)
		}
		seenNames[p.Name] = true
		seenSeeds[p.Seed] = true
	}
	// Spot-check the paper numbers.
	cics, err := ByName("zos-lspr-cicsdb2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cics.UniqueBranches != 40_667 {
		t.Errorf("CICS/DB2 unique branches = %d", cics.UniqueBranches)
	}
	if cics.Instructions != 1000 {
		t.Errorf("instruction override ignored")
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Error("ByName accepted unknown name")
	}
	if len(Names()) != 13 {
		t.Error("Names() wrong length")
	}
}

func TestKernelsValidAndConsistent(t *testing.T) {
	kernels := []*trace.SliceSource{
		KernelSingleTakenLoop(100),
		KernelTakenChain(8, 50),
		KernelNotTakenRun(4, 20),
		KernelBranchlessRun(512, 10),
		KernelColdCodeSweep(4, 2),
	}
	for _, k := range kernels {
		ins := trace.Collect(k)
		if len(ins) == 0 {
			t.Fatalf("%s: empty", k.Name())
		}
		for i, in := range ins {
			if err := in.Validate(); err != nil {
				t.Fatalf("%s inst %d: %v", k.Name(), i, err)
			}
		}
	}
}

func TestKernelSingleTakenLoopShape(t *testing.T) {
	k := KernelSingleTakenLoop(10)
	st := trace.Measure(k)
	if st.UniqueBranches != 1 {
		t.Errorf("loop kernel has %d unique branches, want 1", st.UniqueBranches)
	}
	if st.TakenBr != 9 { // last iteration falls through
		t.Errorf("taken executions = %d, want 9", st.TakenBr)
	}
}

func TestKernelColdSweepBlocks(t *testing.T) {
	k := KernelColdCodeSweep(8, 1)
	st := trace.Measure(k)
	if st.Blocks4K != 8 {
		t.Errorf("cold sweep spans %d blocks, want 8", st.Blocks4K)
	}
	if st.UniqueBranches != 8*17 { // 16 cond + 1 jump per block
		t.Errorf("unique branches = %d, want %d", st.UniqueBranches, 8*17)
	}
}

func TestLargeProfileSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("large profile in -short mode")
	}
	// The biggest Table 4 profile compiles and streams.
	p, _ := ByName("zos-lspr-wasdb-cbw2", 50_000)
	s := New(p)
	st := trace.Measure(s)
	if st.Instructions != 50_000 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestNewPanicsOnBadProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid profile")
		}
	}()
	New(Profile{})
}

func TestDisassemble(t *testing.T) {
	var buf strings.Builder
	s := New(smallProfile())
	if err := s.Disassemble(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fn0:", "fn1:", "fn2:", "br    %r14", "brc "} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	if strings.Contains(out, "fn3:") {
		t.Error("maxFns not honored")
	}
	// Hinted programs render bpp instructions.
	hp := smallProfile()
	hp.PreloadHints = true
	buf.Reset()
	if err := New(hp).Disassemble(&buf, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bpp ") {
		t.Error("preload hints not rendered")
	}
	// maxFns <= 0 dumps everything without error.
	buf.Reset()
	if err := New(smallProfile()).Disassemble(&buf, 0); err != nil {
		t.Fatal(err)
	}
}
