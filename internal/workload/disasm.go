package workload

import (
	"fmt"
	"io"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// Disassemble writes a human-readable listing of the compiled program's
// first maxFns functions: addresses, pseudo-mnemonics, targets and
// behavioural annotations (loop trip counts, taken biases, periodic
// patterns). It makes the synthetic workloads inspectable the way a
// real trace's binary would be.
func (s *Source) Disassemble(w io.Writer, maxFns int) error {
	if maxFns <= 0 || maxFns > len(s.prog.fns) {
		maxFns = len(s.prog.fns)
	}
	for fi := 0; fi < maxFns; fi++ {
		f := &s.prog.fns[fi]
		if _, err := fmt.Fprintf(w, "fn%d: ; entry %#x, %d ops\n", fi, uint64(f.entry), len(f.ops)); err != nil {
			return err
		}
		for oi := range f.ops {
			if err := disasmOp(w, s.prog, fi, oi); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// disasmOp renders one instruction site.
func disasmOp(w io.Writer, prog *program, fi, oi int) error {
	f := &prog.fns[fi]
	o := &f.ops[oi]
	target := func(idx int) zaddr.Addr { return f.ops[idx].addr }
	var text string
	switch o.kind {
	case trace.NotBranch:
		text = fmt.Sprintf("op.%d", o.length)
	case trace.CondDirect:
		switch {
		case o.tripCount > 0:
			text = fmt.Sprintf("brct  %#x        ; loop, %d trips", uint64(target(o.targetIdx)), o.tripCount)
		case o.patPeriod > 0:
			text = fmt.Sprintf("brc   %#x        ; periodic, NT every %d", uint64(target(o.targetIdx)), o.patPeriod)
		case o.takenBias == 0:
			text = fmt.Sprintf("brc   %#x        ; never taken", uint64(target(o.targetIdx)))
		default:
			text = fmt.Sprintf("brc   %#x        ; p(taken)=%.2f", uint64(target(o.targetIdx)), o.takenBias)
		}
	case trace.UncondDirect:
		text = fmt.Sprintf("j     %#x", uint64(target(o.targetIdx)))
	case trace.Call:
		text = fmt.Sprintf("brasl fn%d          ; %#x", o.calleeFn, uint64(prog.fns[o.calleeFn].entry))
	case trace.Return:
		text = "br    %r14          ; return"
	case trace.IndirectOther:
		text = fmt.Sprintf("br    %%r1           ; %d targets, first %#x",
			len(o.indirectTargets), uint64(target(o.indirectTargets[0])))
	case trace.PreloadHint:
		text = fmt.Sprintf("bpp   %#x        ; preload hint", uint64(target(o.targetIdx)))
	default:
		text = fmt.Sprintf("?kind=%d", o.kind)
	}
	_, err := fmt.Fprintf(w, "  %#08x  %s\n", uint64(o.addr), text)
	return err
}
