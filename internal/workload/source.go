package workload

import (
	"math/rand"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// maxCallDepth bounds the interpreter's call stack; deeper calls become
// tail calls (the frame is not pushed), which keeps traces finite while
// preserving call/return branch behaviour.
const maxCallDepth = 16

// dispatchQuantum is the maximum instruction count between visits to the
// transaction dispatcher: once exceeded, the next Return unwinds the
// whole stack (a timer-interrupt-style context switch, typical of the
// commercial transaction workloads Table 4 models). It guarantees the
// working-set window keeps rotating even through call-dense code
// clusters.
const dispatchQuantum = 1200

type frame struct {
	fn, op int
}

// Source is the deterministic interpreter that walks a compiled program
// and implements trace.Source. Two passes separated by Reset yield
// identical streams.
type Source struct {
	prog *program

	r         *rand.Rand
	emitted   int
	stack     []frame
	curFn     int
	curOp     int
	window    int
	txnLeft   int
	sinceDisp int // instructions since the last dispatcher visit
	// loops tracks in-flight loop iteration counts, keyed by
	// fn<<32|opIdx.
	loops map[int64]int
	// pats tracks periodic-branch execution counts, same key scheme.
	pats map[int64]int
	// lastInvoked is the previous dispatcher choice, re-invoked in
	// bursts (transaction workloads hammer the same service paths
	// repeatedly before moving on).
	lastInvoked int
	haveLast    bool
	// recent is a ring of recently dispatched functions; re-invoking
	// from it produces the medium-distance, recency-skewed reuse real
	// transaction mixes exhibit (and which LRU retention exploits).
	recent    []int
	recentPos int
}

// recentCap bounds the recency ring.
const recentCap = 192

// New compiles a profile and returns its trace source; invalid profiles
// panic (profiles are code).
func New(p Profile) *Source {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s := &Source{prog: buildProgram(p)}
	s.Reset()
	return s
}

// Name implements trace.Source.
func (s *Source) Name() string { return s.prog.profile.Name }

// Profile returns the generating profile.
func (s *Source) Profile() Profile { return s.prog.profile }

// Functions returns the number of functions in the compiled program.
func (s *Source) Functions() int { return len(s.prog.fns) }

// StaticBranchSites returns the number of branch instruction sites in the
// compiled program (the upper bound on unique executed branches).
func (s *Source) StaticBranchSites() int {
	n := 0
	for i := range s.prog.fns {
		for j := range s.prog.fns[i].ops {
			if s.prog.fns[i].ops[j].kind.IsBranch() {
				n++
			}
		}
	}
	return n
}

// Reset implements trace.Source.
func (s *Source) Reset() {
	s.r = rand.New(rand.NewSource(s.prog.profile.Seed + 1))
	s.emitted = 0
	s.stack = s.stack[:0]
	s.window = 0
	s.txnLeft = 0
	s.sinceDisp = 0
	s.loops = make(map[int64]int)
	s.pats = make(map[int64]int)
	s.haveLast = false
	s.recent = s.recent[:0]
	s.recentPos = 0
	s.curFn = s.nextInvocation()
	s.curOp = 0
}

// nextInvocation picks the next top-level function: hot set with
// probability HotFraction, else a function from the sliding window.
func (s *Source) nextInvocation() int {
	p := s.prog.profile
	if s.txnLeft == 0 {
		// Advance the working-set window; sweeping it across the whole
		// function list produces re-reference distances far beyond the
		// BTB1's capacity. The fast advance (half a window per
		// transaction) makes cold re-entries the dominant branch-miss
		// class, as in the paper's large-footprint traces.
		s.window = (s.window + p.WindowFunctions) % len(s.prog.fns)
		s.txnLeft = p.CallsPerTransaction
	}
	s.txnLeft--
	// Burst re-invocation: transaction code re-runs the same service
	// function several times before moving on, giving freshly-installed
	// BTBP entries the short-distance re-reference they need to be
	// promoted into the BTB1.
	if s.haveLast && s.r.Float64() < 0.32 {
		return s.lastInvoked
	}
	var pick int
	switch roll := s.r.Float64(); {
	case roll < p.HotFraction:
		pick = s.prog.hotFns[s.r.Intn(len(s.prog.hotFns))]
	case roll < p.HotFraction+0.20 && len(s.recent) > 0:
		// Medium-distance reuse from the recency ring.
		pick = s.recent[s.r.Intn(len(s.recent))]
	default:
		pick = (s.window + s.r.Intn(p.WindowFunctions)) % len(s.prog.fns)
	}
	if len(s.recent) < recentCap {
		s.recent = append(s.recent, pick)
	} else {
		s.recent[s.recentPos] = pick
		s.recentPos = (s.recentPos + 1) % recentCap
	}
	s.lastInvoked = pick
	s.haveLast = true
	return pick
}

// Next implements trace.Source.
func (s *Source) Next() (trace.Inst, bool) {
	if s.emitted >= s.prog.profile.Instructions {
		return trace.Inst{}, false
	}
	s.emitted++
	s.sinceDisp++

	f := &s.prog.fns[s.curFn]
	o := &f.ops[s.curOp]
	in := trace.Inst{
		Addr:   o.addr,
		Length: o.length,
		Kind:   o.kind,
	}

	switch o.kind {
	case trace.NotBranch:
		s.curOp++

	case trace.CondDirect:
		var taken bool
		if o.patPeriod > 0 {
			key := int64(s.curFn)<<32 | int64(s.curOp)
			c := s.pats[key]
			s.pats[key] = c + 1
			taken = c%o.patPeriod != o.patPeriod-1
		} else if o.tripCount > 0 {
			// Loop backedge: taken tripCount-1 times per loop entry.
			key := int64(s.curFn)<<32 | int64(s.curOp)
			c := s.loops[key] + 1
			if c < o.tripCount {
				s.loops[key] = c
				taken = true
			} else {
				delete(s.loops, key)
				taken = false
			}
		} else {
			taken = s.r.Float64() < o.takenBias
		}
		in.Taken = taken
		in.Target = f.ops[o.targetIdx].addr
		in.StaticTaken = o.staticTaken
		if taken {
			s.curOp = o.targetIdx
		} else {
			s.curOp++
		}

	case trace.UncondDirect:
		in.Taken = true
		in.Target = f.ops[o.targetIdx].addr
		in.StaticTaken = true
		s.curOp = o.targetIdx

	case trace.Call:
		in.Taken = true
		in.StaticTaken = true
		callee := o.calleeFn
		in.Target = s.prog.fns[callee].entry
		if len(s.stack) < maxCallDepth {
			s.stack = append(s.stack, frame{fn: s.curFn, op: s.curOp + 1})
		} else {
			// Depth cap: redirect the innermost return to just after this
			// call site, so the stack keeps draining and every function
			// still completes (a bounded-stack approximation).
			s.stack[len(s.stack)-1] = frame{fn: s.curFn, op: s.curOp + 1}
		}
		s.curFn = callee
		s.curOp = 0

	case trace.Return:
		in.Taken = true
		in.StaticTaken = true
		if s.sinceDisp > dispatchQuantum {
			// Quantum expired: unwind to the dispatcher.
			s.stack = s.stack[:0]
		}
		if n := len(s.stack); n > 0 {
			fr := s.stack[n-1]
			s.stack = s.stack[:n-1]
			s.curFn, s.curOp = fr.fn, fr.op
		} else {
			// Top-level return: the transaction dispatcher invokes the
			// next function.
			s.sinceDisp = 0
			s.curFn = s.nextInvocation()
			s.curOp = 0
		}
		in.Target = s.prog.fns[s.curFn].ops[s.curOp].addr

	case trace.PreloadHint:
		// Software branch preload: name the branch op and its static
		// target. Calls preload their callee's entry; direct branches
		// preload their jump target.
		br := &f.ops[o.targetIdx]
		in.HintBranch = br.addr
		switch br.kind {
		case trace.Call:
			in.Target = s.prog.fns[br.calleeFn].entry
		default:
			in.Target = f.ops[br.targetIdx].addr
		}
		s.curOp++

	case trace.IndirectOther:
		in.Taken = true
		in.StaticTaken = true
		// Indirect branches favour a dominant target (85%), like real
		// dispatch sites; the remainder exercises the CTB.
		tgt := o.indirectTargets[0]
		if s.r.Float64() >= 0.85 && len(o.indirectTargets) > 1 {
			tgt = o.indirectTargets[1+s.r.Intn(len(o.indirectTargets)-1)]
		}
		in.Target = f.ops[tgt].addr
		s.curOp = tgt
	}

	// Guard: a function's op list always ends in Return, so curOp stays
	// in range; defensively wrap anyway.
	if s.curOp >= len(s.prog.fns[s.curFn].ops) {
		s.curOp = len(s.prog.fns[s.curFn].ops) - 1
	}
	return in, true
}

var _ trace.Source = (*Source)(nil)

// blockSpan reports how many 4 KB blocks the program's code occupies
// (diagnostics for steering/transfer analyses).
func (s *Source) blockSpan() int {
	blocks := map[uint64]bool{}
	for i := range s.prog.fns {
		for j := range s.prog.fns[i].ops {
			blocks[zaddr.Block(s.prog.fns[i].ops[j].addr)] = true
		}
	}
	return len(blocks)
}
