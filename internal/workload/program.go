// Package workload synthesizes instruction traces with controlled branch
// footprints. The paper evaluates on proprietary IBM traces (LSPR,
// Trade6, TPF, DayTrader, Informix — Table 4); those are unavailable, so
// this package builds, per trace, a synthetic program whose *unique
// branch site count*, *ever-taken fraction*, and *re-reference locality*
// match the published Table 4 characteristics. Branch-prediction capacity
// behaviour — the paper's subject — is driven by exactly those
// properties.
//
// A program is a set of functions laid out in memory; each function is a
// list of z-style instructions (2/4/6 bytes) with conditional branches
// (biased, some never-taken), loops (backedges), calls, returns and
// indirect branches. A deterministic interpreter walks the program,
// driven by a transaction loop that sweeps a working-set window across
// the function list so that branch re-reference distances exceed the
// BTB1's 4k capacity — the regime where the BTB2 pays off.
package workload

import (
	"fmt"
	"math/rand"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// op is one static instruction site.
type op struct {
	addr   zaddr.Addr
	length uint8
	kind   trace.Kind
	// Conditional-direct fields.
	takenBias   float64 // probability taken; 0 = never taken
	staticTaken bool    // opcode-derived static guess
	targetIdx   int     // jump target: instruction index within the function
	// tripCount > 0 marks a loop backedge taken exactly tripCount-1
	// times per loop entry (predictable iterations, mispredicted exit —
	// classic loop-branch behaviour).
	tripCount int
	// patPeriod > 0 marks a periodic conditional: not-taken every
	// patPeriod-th execution, taken otherwise. Mostly learnable by the
	// direction predictors, unlike pure noise.
	patPeriod int
	// Call target.
	calleeFn int
	// Indirect target set (absolute addresses filled after layout).
	indirectTargets []int // instruction indices within the function
}

// fn is one function: a contiguous run of instruction sites.
type fn struct {
	ops   []op
	entry zaddr.Addr
}

// Profile parameterizes one synthetic workload.
type Profile struct {
	Name string
	// UniqueBranches approximates Table 4 column 2 (total unique branch
	// instruction addresses in the program).
	UniqueBranches int
	// TakenFraction approximates column 3 / column 2: the share of
	// branch sites that are ever taken.
	TakenFraction float64
	// Instructions is the dynamic trace length to emit.
	Instructions int
	// HotFraction is the share of dynamic work spent in the small hot
	// set (dispatcher-like functions that stay resident).
	HotFraction float64
	// WindowFunctions is the size of the rotating working-set window in
	// functions; the window advances every transaction, producing
	// re-reference distances that overwhelm the BTB1.
	WindowFunctions int
	// CallsPerTransaction is how many window functions one transaction
	// invokes.
	CallsPerTransaction int
	// Seed fixes all generation randomness.
	Seed int64
	// PreloadHints inserts branch-preload instructions (z BPP-style) at
	// each function entry naming up to three of the function's
	// statically-targetable taken branches — a software analogue of the
	// hardware bulk preload, used by the preload study.
	PreloadHints bool
}

// Validate checks profile sanity.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if p.UniqueBranches < 16 {
		return fmt.Errorf("workload %s: UniqueBranches %d too small", p.Name, p.UniqueBranches)
	}
	if p.TakenFraction <= 0 || p.TakenFraction > 1 {
		return fmt.Errorf("workload %s: TakenFraction %v out of (0,1]", p.Name, p.TakenFraction)
	}
	if p.Instructions <= 0 {
		return fmt.Errorf("workload %s: Instructions must be positive", p.Name)
	}
	if p.HotFraction < 0 || p.HotFraction >= 1 {
		return fmt.Errorf("workload %s: HotFraction %v out of [0,1)", p.Name, p.HotFraction)
	}
	if p.WindowFunctions <= 0 || p.CallsPerTransaction <= 0 {
		return fmt.Errorf("workload %s: window/calls must be positive", p.Name)
	}
	return nil
}

// program is the immutable compiled form shared by all passes.
type program struct {
	profile Profile
	fns     []fn
	hotFns  []int // indices of the hot set
}

// average branch sites per generated function; functions then span
// roughly 1-2 KB so a 4 KB bulk-transfer block recovers 2-4 functions.
const branchesPerFn = 14

// buildProgram compiles a profile into a static program.
func buildProgram(p Profile) *program {
	r := rand.New(rand.NewSource(p.Seed))
	nFns := p.UniqueBranches / branchesPerFn
	if nFns < 4 {
		nFns = 4
	}
	prog := &program{profile: p, fns: make([]fn, nFns)}

	// Lay functions out contiguously from a base address, with small
	// inter-function gaps, so several functions share each 4 KB block.
	addr := zaddr.Addr(0x100000)
	for i := range prog.fns {
		prog.fns[i] = buildFn(r, p, addr, i, nFns)
		last := prog.fns[i].ops[len(prog.fns[i].ops)-1]
		addr = last.addr + zaddr.Addr(last.length)
		// Halfword-aligned gap of 0-14 bytes between functions.
		addr += zaddr.Addr(r.Intn(8) * 2)
	}

	// Hot set: ~3% of functions, at least 2.
	nHot := nFns / 32
	if nHot < 2 {
		nHot = 2
	}
	perm := r.Perm(nFns)
	prog.hotFns = perm[:nHot]
	return prog
}

// buildFn synthesizes one function at base address.
func buildFn(r *rand.Rand, p Profile, base zaddr.Addr, self, nFns int) fn {
	nBranches := branchesPerFn - 3 + r.Intn(7) // 11..17
	var ops []op
	addr := base
	emit := func(o op) {
		o.addr = addr
		addr += zaddr.Addr(o.length)
		ops = append(ops, o)
	}
	instLen := func() uint8 { return []uint8{2, 4, 4, 4, 6}[r.Intn(5)] }

	// Preload-hint slots at the function entry; the fixup pass below
	// points them at suitable branches (unused slots become plain
	// instructions). Emitting them first keeps the rng stream identical
	// with and without hints, so hinted and unhinted programs share the
	// same topology.
	const hintSlots = 3
	if p.PreloadHints {
		for i := 0; i < hintSlots; i++ {
			emit(op{length: 4, kind: trace.PreloadHint, targetIdx: -1})
		}
	}

	for b := 0; b < nBranches-1; b++ {
		// A run of 2-7 non-branch instructions.
		for n := 2 + r.Intn(6); n > 0; n-- {
			emit(op{length: instLen(), kind: trace.NotBranch})
		}
		// Then a branch site.
		roll := r.Float64()
		if roll < 0.12 && b <= 1 {
			// Too early in the function for a backedge: emit a plain
			// conditional so the roll does not fall through into the
			// call band (which would concentrate calls at entry points).
			emit(op{length: 4, kind: trace.CondDirect,
				takenBias: 0.5, staticTaken: true, targetIdx: -1})
			continue
		}
		switch {
		case roll < 0.12:
			// Loop backedge: a conditional jumping to an earlier op with
			// a fixed trip count. Loop bodies must contain neither call
			// sites (a looped call would multiply the dynamic call rate)
			// nor other backedges (nested loops multiply iteration counts
			// exponentially), so the body floor sits after the last
			// structural op.
			floor := 0
			for i := len(ops) - 1; i >= 0; i-- {
				if ops[i].kind == trace.Call || (ops[i].kind == trace.CondDirect && ops[i].tripCount > 0) {
					floor = i + 1
					break
				}
			}
			if floor >= len(ops)-2 {
				// No room for a loop body: plain conditional instead.
				emit(op{length: 4, kind: trace.CondDirect,
					takenBias: 0.5, staticTaken: true, targetIdx: -1})
				break
			}
			tgt := floor + r.Intn(len(ops)-2-floor)
			emit(op{
				length: 4, kind: trace.CondDirect,
				staticTaken: true, targetIdx: tgt,
				tripCount: 2 + r.Intn(3), // 2..4 iterations per entry
			})
		case roll < 0.16:
			// Call to another function. The call graph is a DAG: callees
			// always have a higher function index, so every call chain
			// reaches call-free functions and drains back to the
			// transaction dispatcher — no attractor cycles can capture
			// the walk. Callees are mostly nearby (call locality clusters
			// related code in neighbouring 4 KB blocks, which is what
			// makes block-granular bulk transfers productive), sometimes
			// far.
			if self >= nFns-2 {
				emit(op{length: 4, kind: trace.CondDirect,
					takenBias: 0.5, staticTaken: true, targetIdx: -1})
				break
			}
			span := nFns - 1 - self
			reach := span
			if r.Float64() < 0.7 && reach > 24 {
				reach = 24
			}
			emit(op{length: 4, kind: trace.Call, calleeFn: self + 1 + r.Intn(reach)})
		case roll < 0.25:
			// Indirect branch with 2-4 forward targets (resolved after
			// all ops exist; store placeholder indices).
			emit(op{length: 4, kind: trace.IndirectOther,
				indirectTargets: []int{-2 - r.Intn(3)}}) // marker; fixed below
		case roll < 0.29:
			// Unconditional forward jump.
			emit(op{length: 4, kind: trace.UncondDirect, targetIdx: -1}) // fixed below
		default:
			// Conditional forward branch; a (1-TakenFraction) share of
			// sites is never taken. Ever-taken sites get a bimodal bias
			// distribution like real code: mostly strongly biased one
			// way, a minority genuinely mixed (the PHT's clientele).
			bias := 0.0
			static := false
			period := 0
			if r.Float64() < p.TakenFraction {
				switch roll2 := r.Float64(); {
				case roll2 < 0.60:
					bias = 0.955 + 0.04*r.Float64() // strongly taken
				case roll2 < 0.92:
					bias = 0.01 + 0.04*r.Float64() // rarely taken
				default:
					// Periodic data-dependent branch: deterministic
					// pattern the predictors can (partly) learn.
					period = 2 + r.Intn(5)
					bias = 1 // ever-taken by construction
				}
				static = bias > 0.5
			}
			emit(op{length: 4, kind: trace.CondDirect,
				takenBias: bias, staticTaken: static, targetIdx: -1,
				patPeriod: period}) // target fixed below
		}
	}
	// Trailing run and the return.
	for n := 1 + r.Intn(3); n > 0; n-- {
		emit(op{length: instLen(), kind: trace.NotBranch})
	}
	emit(op{length: 2, kind: trace.Return})

	// Point the preload-hint slots at statically-targetable taken
	// branches: calls, unconditional jumps, loop backedges and
	// taken-biased conditionals (indirects and returns have no static
	// target to preload).
	if p.PreloadHints {
		hint := 0
		for i := range ops {
			if hint >= hintSlots {
				break
			}
			suitable := false
			switch ops[i].kind {
			case trace.Call, trace.UncondDirect:
				suitable = true
			case trace.CondDirect:
				suitable = ops[i].tripCount > 0 || ops[i].takenBias > 0.5
			}
			if suitable {
				ops[hint].targetIdx = i
				hint++
			}
		}
		// Unused slots degrade to ordinary instructions.
		for ; hint < hintSlots; hint++ {
			ops[hint].kind = trace.NotBranch
			ops[hint].targetIdx = 0
		}
	}

	// Fix up forward targets now that the op count is known.
	for i := range ops {
		o := &ops[i]
		switch o.kind {
		case trace.CondDirect, trace.UncondDirect:
			if o.targetIdx == -1 {
				// Forward skip of 1..9 ops, clamped inside the function,
				// so taken branches regularly skip later call sites and
				// the dynamic call rate stays below one per execution.
				tgt := i + 1 + r.Intn(9)
				if tgt >= len(ops) {
					tgt = len(ops) - 1
				}
				o.targetIdx = tgt
			}
		case trace.IndirectOther:
			if len(o.indirectTargets) == 1 && o.indirectTargets[0] < 0 {
				n := -o.indirectTargets[0]
				tgts := make([]int, n)
				for j := range tgts {
					tgt := i + 1 + r.Intn(8)
					if tgt >= len(ops) {
						tgt = len(ops) - 1
					}
					tgts[j] = tgt
				}
				o.indirectTargets = tgts
			}
		}
	}
	return fn{ops: ops, entry: base}
}
