package workload_test

import (
	"fmt"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/workload"
)

// Example builds the paper's DayTrader DBServ stand-in and measures its
// Table 4 footprint characteristics.
func Example() {
	profile, err := workload.ByName("zos-daytrader-dbserv", 200_000)
	if err != nil {
		panic(err)
	}
	src := workload.New(profile)
	st := trace.Measure(src)
	fmt.Printf("trace %s: %d instructions\n", st.Name, st.Instructions)
	fmt.Printf("large footprint (>5000 unique taken): %v\n", st.LargeFootprint())
	fmt.Printf("branch density plausible: %v\n",
		st.BranchDensity() > 1.0/9 && st.BranchDensity() < 1.0/3)
	// Output:
	// trace zos-daytrader-dbserv: 200000 instructions
	// large footprint (>5000 unique taken): true
	// branch density plausible: true
}

// ExampleProfile shows a custom workload profile: the knobs that shape
// the branch working set and its re-reference locality.
func ExampleProfile() {
	p := workload.Profile{
		Name:                "custom",
		UniqueBranches:      8_000, // ~2x the BTB1's capacity
		TakenFraction:       0.7,
		Instructions:        50_000,
		HotFraction:         0.15,
		WindowFunctions:     32,
		CallsPerTransaction: 6,
		Seed:                1,
	}
	src := workload.New(p)
	fmt.Printf("compiled %d functions, valid: %v\n",
		src.Functions(), p.Validate() == nil)
	// Output:
	// compiled 571 functions, valid: true
}
