package workload

import (
	"fmt"

	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

// DefaultInstructions is the default dynamic trace length. The paper's
// traces are "often only portions of an entire benchmark in order to
// minimize trace size and therefore also simulation time"; one million
// instructions sweeps the synthetic working set several times.
const DefaultInstructions = 1_000_000

// Table4Profiles returns the 13 large-footprint workload profiles of
// Table 4, with UniqueBranches / TakenFraction matched to the published
// unique-branch-address counts. instructions <= 0 selects
// DefaultInstructions.
func Table4Profiles(instructions int) []Profile {
	if instructions <= 0 {
		instructions = DefaultInstructions
	}
	mk := func(name string, unique, taken int, window, calls int, hot float64, seed int64) Profile {
		return Profile{
			Name:                name,
			UniqueBranches:      unique,
			TakenFraction:       float64(taken) / float64(unique),
			Instructions:        instructions,
			HotFraction:         hot,
			WindowFunctions:     window,
			CallsPerTransaction: calls,
			Seed:                seed,
		}
	}
	return []Profile{
		// Table 4 rows: name, unique branch addresses, unique taken.
		mk("zos-lspr-cb84", 15_244, 10_963, 48, 6, 0.20, 8401),
		mk("zos-lspr-cicsdb2", 40_667, 27_500, 80, 8, 0.15, 8402),
		mk("zos-lspr-ims", 29_692, 19_673, 64, 8, 0.15, 8403),
		mk("zos-lspr-cbl", 25_622, 16_612, 64, 6, 0.20, 8404),
		mk("zos-lspr-wasdb-cbw2", 114_955, 51_371, 128, 10, 0.10, 8405),
		mk("zos-trade6", 115_509, 56_017, 128, 10, 0.10, 8406),
		mk("tpf-airline", 11_160, 9_317, 32, 6, 0.25, 8407),
		mk("zos-appserv", 26_340, 16_980, 64, 8, 0.15, 8408),
		mk("zos-dbserv", 38_655, 20_020, 80, 8, 0.15, 8409),
		mk("zos-daytrader-appserv", 67_336, 30_165, 96, 10, 0.12, 8410),
		mk("zos-daytrader-dbserv", 34_819, 22_217, 96, 8, 0.10, 8411),
		mk("zlinux-informix", 16_810, 11_765, 48, 6, 0.20, 8412),
		mk("zlinux-trade6", 69_847, 31_897, 112, 10, 0.12, 8413),
	}
}

// ByName returns the Table 4 profile with the given name.
func ByName(name string, instructions int) (Profile, error) {
	for _, p := range Table4Profiles(instructions) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Names lists the Table 4 profile names in order.
func Names() []string {
	ps := Table4Profiles(1)
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// --- Directed microkernels (Table 1 / Table 2 experiments) ---

// KernelSingleTakenLoop returns the fastest Table 1 case: one taken
// branch looping to itself (via a short body), predicted every cycle.
func KernelSingleTakenLoop(iters int) *trace.SliceSource {
	const base = zaddr.Addr(0x2000)
	body := trace.Inst{Addr: base, Length: 4, Kind: trace.NotBranch}
	loop := trace.Inst{Addr: base + 4, Length: 4, Kind: trace.CondDirect,
		Taken: true, Target: base, StaticTaken: true}
	ins := make([]trace.Inst, 0, 2*iters)
	for i := 0; i < iters; i++ {
		ins = append(ins, body, loop)
	}
	// Final iteration falls through.
	ins[len(ins)-1].Taken = false
	return trace.NewSliceSource("kernel-single-taken-loop", ins)
}

// KernelTakenChain returns a chain of distinct taken branches cycling
// through n sites — exercising the MRU / non-MRU taken rates. Each site
// carries a short run of sequential instructions so decode does not
// outrun the Table 1 prediction rates, and sites sit at a 544-byte
// stride (coprime with the BTBP's 128-row indexing) so the chain spreads
// across congruence classes instead of thrashing a few.
func KernelTakenChain(nSites, iters int) *trace.SliceSource {
	const stride = 544
	var sites []trace.Inst
	for i := 0; i < nSites; i++ {
		addr := zaddr.Addr(0x4000 + i*stride)
		next := zaddr.Addr(0x4000 + ((i+1)%nSites)*stride)
		for k := 0; k < 3; k++ {
			sites = append(sites, trace.Inst{Addr: addr + zaddr.Addr(4*k), Length: 4, Kind: trace.NotBranch})
		}
		sites = append(sites, trace.Inst{Addr: addr + 12, Length: 4, Kind: trace.UncondDirect,
			Taken: true, Target: next, StaticTaken: true})
	}
	ins := make([]trace.Inst, 0, len(sites)*iters)
	for i := 0; i < iters; i++ {
		ins = append(ins, sites...)
	}
	return trace.NewSliceSource("kernel-taken-chain", ins)
}

// KernelNotTakenRun returns straight-line code whose conditional branches
// are never taken, two per 32-byte row — the paired not-taken rate.
func KernelNotTakenRun(rows, iters int) *trace.SliceSource {
	var pattern []trace.Inst
	addr := zaddr.Addr(0x8000)
	for rI := 0; rI < rows; rI++ {
		// Each 32-byte row: nb(4) br(4) nb(4) br(4) nb(6) nb(6) nb(4).
		for _, spec := range []struct {
			l  uint8
			br bool
		}{{4, false}, {4, true}, {4, false}, {4, true}, {6, false}, {6, false}, {4, false}} {
			in := trace.Inst{Addr: addr, Length: spec.l, Kind: trace.NotBranch}
			if spec.br {
				in.Kind = trace.CondDirect
				in.Target = addr + 64
			}
			pattern = append(pattern, in)
			addr += zaddr.Addr(spec.l)
		}
	}
	// Loop the pattern with a final taken branch back to the top.
	back := trace.Inst{Addr: addr, Length: 4, Kind: trace.CondDirect,
		Taken: true, Target: 0x8000, StaticTaken: true}
	var ins []trace.Inst
	for i := 0; i < iters; i++ {
		ins = append(ins, pattern...)
		ins = append(ins, back)
	}
	return trace.NewSliceSource("kernel-not-taken-run", ins)
}

// KernelBranchlessRun returns a long run of branch-free code (an
// "unrolled loop") repeated iters times — the case that makes speculative
// BTB1-miss detection fire without any capacity problem (Section 3.4).
func KernelBranchlessRun(bytes, iters int) *trace.SliceSource {
	var pattern []trace.Inst
	addr := zaddr.Addr(0x10000)
	for b := 0; b < bytes; b += 4 {
		pattern = append(pattern, trace.Inst{Addr: addr, Length: 4, Kind: trace.NotBranch})
		addr += 4
	}
	back := trace.Inst{Addr: addr, Length: 4, Kind: trace.CondDirect,
		Taken: true, Target: 0x10000, StaticTaken: true}
	var ins []trace.Inst
	for i := 0; i < iters; i++ {
		ins = append(ins, pattern...)
		ins = append(ins, back)
	}
	return trace.NewSliceSource("kernel-branchless-run", ins)
}

// KernelColdCodeSweep returns a single pass over a large stretch of cold
// code with regular branches — the bulk-preload stress case: every block
// is entered exactly twice (two sweeps), so the second sweep measures how
// much the BTB2 recovered.
func KernelColdCodeSweep(blocks4K, sweeps int) *trace.SliceSource {
	var pattern []trace.Inst
	for blk := 0; blk < blocks4K; blk++ {
		base := zaddr.Addr(0x40000 + blk*zaddr.BlockBytes)
		addr := base
		// 16 branch sites per block, evenly spread.
		for s := 0; s < 16; s++ {
			for n := 0; n < 10; n++ {
				pattern = append(pattern, trace.Inst{Addr: addr, Length: 4, Kind: trace.NotBranch})
				addr += 4
			}
			tgt := addr + 24*2
			pattern = append(pattern, trace.Inst{Addr: addr, Length: 4,
				Kind: trace.CondDirect, Taken: true, Target: tgt, StaticTaken: true})
			addr = tgt
		}
		// Jump to the next block (the last block wraps to the first so
		// repeated sweeps form a consistent cycle).
		next := base + zaddr.BlockBytes
		if blk == blocks4K-1 {
			next = 0x40000
		}
		pattern = append(pattern, trace.Inst{Addr: addr, Length: 4,
			Kind: trace.UncondDirect, Taken: true, Target: next, StaticTaken: true})
	}
	var ins []trace.Inst
	for i := 0; i < sweeps; i++ {
		ins = append(ins, pattern...)
	}
	return trace.NewSliceSource("kernel-cold-code-sweep", ins)
}

// KernelAlternating returns a branch whose direction alternates T,NT
// with its loop — bimodal-hostile, PHT-friendly: the pattern history
// disambiguates the two phases.
func KernelAlternating(iters int) *trace.SliceSource {
	const (
		base = zaddr.Addr(0x6000)
		tgt  = zaddr.Addr(0x6100)
	)
	var ins []trace.Inst
	for i := 0; i < iters; i++ {
		taken := i%2 == 0
		br := trace.Inst{Addr: base, Length: 4, Kind: trace.CondDirect,
			Taken: taken, Target: tgt, StaticTaken: true}
		ins = append(ins, br)
		if taken {
			// Target block jumps back.
			ins = append(ins,
				trace.Inst{Addr: tgt, Length: 4, Kind: trace.NotBranch},
				trace.Inst{Addr: tgt + 4, Length: 4, Kind: trace.UncondDirect,
					Taken: true, Target: base, StaticTaken: true})
		} else {
			// Fall-through block jumps back.
			ins = append(ins,
				trace.Inst{Addr: base + 4, Length: 4, Kind: trace.NotBranch},
				trace.Inst{Addr: base + 8, Length: 4, Kind: trace.UncondDirect,
					Taken: true, Target: base, StaticTaken: true})
		}
	}
	return trace.NewSliceSource("kernel-alternating", ins)
}

// KernelCallerCorrelatedReturn returns a callee shared by two call sites
// in strict alternation: its return target flips every execution —
// wrong for a plain BTB target, learnable by the path-indexed CTB.
func KernelCallerCorrelatedReturn(iters int) *trace.SliceSource {
	const (
		callee = zaddr.Addr(0x9000)
		siteA  = zaddr.Addr(0x7000)
		siteB  = zaddr.Addr(0x8000)
		retA   = siteA + 4
		retB   = siteB + 4
	)
	var ins []trace.Inst
	jump := func(from, to zaddr.Addr) trace.Inst {
		return trace.Inst{Addr: from, Length: 4, Kind: trace.UncondDirect,
			Taken: true, Target: to, StaticTaken: true}
	}
	for i := 0; i < iters; i++ {
		site, ret, otherSite := siteA, retA, siteB
		if i%2 == 1 {
			site, ret, otherSite = siteB, retB, siteA
		}
		ins = append(ins,
			trace.Inst{Addr: site, Length: 4, Kind: trace.Call, Taken: true,
				Target: callee, StaticTaken: true},
			trace.Inst{Addr: callee, Length: 4, Kind: trace.NotBranch},
			trace.Inst{Addr: callee + 4, Length: 2, Kind: trace.Return, Taken: true,
				Target: ret, StaticTaken: true},
			jump(ret, otherSite),
		)
	}
	return trace.NewSliceSource("kernel-caller-correlated-return", ins)
}
