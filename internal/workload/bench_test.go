package workload

import "testing"

func BenchmarkGenerate(b *testing.B) {
	p := smallProfile()
	p.Instructions = 100_000
	s := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		n := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			n++
		}
		if n != p.Instructions {
			b.Fatalf("emitted %d", n)
		}
	}
	b.ReportMetric(float64(p.Instructions), "insts/iter")
}

func BenchmarkCompileProgram(b *testing.B) {
	p, err := ByName("zos-lspr-cicsdb2", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if New(p) == nil {
			b.Fatal("nil source")
		}
	}
}
