package ctb

import (
	"testing"

	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

func TestNewValidation(t *testing.T) {
	if New(DefaultEntries).Entries() != 2048 {
		t.Error("DefaultEntries != 2048")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(100) did not panic")
		}
	}()
	New(100)
}

func TestMissTrainHit(t *testing.T) {
	c := New(256)
	var h history.History
	h.RecordPrediction(0x100, true)
	ret := zaddr.Addr(0x9000)
	if _, ok := c.Lookup(&h, ret); ok {
		t.Fatal("empty CTB hit")
	}
	c.Update(&h, ret, 0x1234)
	target, ok := c.Lookup(&h, ret)
	if !ok || target != 0x1234 {
		t.Fatalf("lookup = %#x ok=%v", uint64(target), ok)
	}
	st := c.Stats()
	if st.Installs != 1 || st.Hits != 1 || st.Lookups != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPathCorrelatedTargets(t *testing.T) {
	// The defining CTB behaviour: one return site, two callers, two
	// targets — each path must retrieve its own target.
	c := New(1024)
	caller := func(site zaddr.Addr) *history.History {
		var h history.History
		h.RecordPrediction(site, true) // the call itself is a taken branch
		return &h
	}
	ret := zaddr.Addr(0x9000)
	c.Update(caller(0x1000), ret, 0x1008)
	c.Update(caller(0x2000), ret, 0x2008)
	if tgt, ok := c.Lookup(caller(0x1000), ret); !ok || tgt != 0x1008 {
		t.Errorf("caller 1: tgt=%#x ok=%v", uint64(tgt), ok)
	}
	if tgt, ok := c.Lookup(caller(0x2000), ret); !ok || tgt != 0x2008 {
		t.Errorf("caller 2: tgt=%#x ok=%v", uint64(tgt), ok)
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New(256)
	var h history.History
	c.Update(&h, 0x9000, 0x1000)
	c.Update(&h, 0x9000, 0x2000)
	if tgt, _ := c.Lookup(&h, 0x9000); tgt != 0x2000 {
		t.Errorf("target = %#x, want latest", uint64(tgt))
	}
	if st := c.Stats(); st.Updates != 1 || st.Installs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	c := New(256)
	var h history.History
	c.Update(&h, 0x9000, 0x1000)
	c.Reset()
	if _, ok := c.Lookup(&h, 0x9000); ok {
		t.Error("Reset left entries")
	}
}
