package ctb

import (
	"testing"

	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

// benchTable builds a warmed table in the requested layout with a
// recorded history the lookups index through.
func benchTable(structLayout bool) (*Table, *history.History) {
	t := NewLayout(DefaultEntries, structLayout)
	var h history.History
	for i := 0; i < 64; i++ {
		h.RecordPrediction(zaddr.Addr(0x2000+i*6), true)
	}
	for i := 0; i < 4096; i++ {
		a := zaddr.Addr(0x4000 + i*12)
		t.Update(&h, a, a+64)
	}
	return t, &h
}

// BenchmarkLookupLayout compares the CTB lookup hot path across the
// packed bit-field layout and the struct-layout oracle.
func BenchmarkLookupLayout(b *testing.B) {
	for _, l := range []struct {
		name         string
		structLayout bool
	}{{"packed", false}, {"struct", true}} {
		b.Run(l.name, func(b *testing.B) {
			t, h := benchTable(l.structLayout)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Lookup(h, zaddr.Addr(0x4000+(i%4096)*12))
			}
		})
	}
}

// BenchmarkUpdateLayout compares the CTB install/update path across
// layouts.
func BenchmarkUpdateLayout(b *testing.B) {
	for _, l := range []struct {
		name         string
		structLayout bool
	}{{"packed", false}, {"struct", true}} {
		b.Run(l.name, func(b *testing.B) {
			t, h := benchTable(l.structLayout)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := zaddr.Addr(0x4000 + (i%4096)*12)
				t.Update(h, a, a+64)
			}
		})
	}
}
