// Package ctb implements the Changing Target Buffer of the zEC12
// first-level branch predictor: 2,048 tagged entries indexed by the
// instruction addresses of the 12 previous taken branches. It supplies
// targets for branches the BTB marks UseCTB (branches exhibiting multiple
// targets, such as returns and virtual dispatch).
package ctb

import (
	"bulkpreload/internal/history"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 CTB size.
const DefaultEntries = 2048

// tagBits is the number of branch-address bits stored as tag per entry.
const tagBits = 10

type entry struct {
	valid  bool
	tag    uint16
	target zaddr.Addr
}

// Stats counts CTB activity.
type Stats struct {
	Lookups  int64
	Hits     int64
	Installs int64
	Updates  int64
}

// Table is the changing target buffer.
type Table struct {
	entries []entry
	stats   Stats
}

// New builds a CTB with the given entry count (power of two).
func New(entries int) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("ctb: entries must be a positive power of two")
	}
	return &Table{entries: make([]entry, entries)}
}

// Entries returns the table size.
func (t *Table) Entries() int { return len(t.entries) }

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

func tagOf(a zaddr.Addr) uint16 {
	return uint16((uint64(a) >> 1) & ((1 << tagBits) - 1))
}

// Lookup returns the path-correlated target for the branch at addr. ok is
// false on tag mismatch, in which case the caller uses the BTB target.
func (t *Table) Lookup(h *history.History, addr zaddr.Addr) (target zaddr.Addr, ok bool) {
	t.stats.Lookups++
	e := &t.entries[h.CTBIndex(addr, len(t.entries))]
	if !e.valid || e.tag != tagOf(addr) {
		return 0, false
	}
	t.stats.Hits++
	return e.target, true
}

// Update trains the entry for the branch at addr with a resolved target.
func (t *Table) Update(h *history.History, addr, target zaddr.Addr) {
	e := &t.entries[h.CTBIndex(addr, len(t.entries))]
	tag := tagOf(addr)
	if e.valid && e.tag == tag {
		e.target = target
		t.stats.Updates++
		return
	}
	*e = entry{valid: true, tag: tag, target: target}
	t.stats.Installs++
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.stats = Stats{}
}
