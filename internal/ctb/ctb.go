// Package ctb implements the Changing Target Buffer of the zEC12
// first-level branch predictor: 2,048 tagged entries indexed by the
// instruction addresses of the 12 previous taken branches. It supplies
// targets for branches the BTB marks UseCTB (branches exhibiting multiple
// targets, such as returns and virtual dispatch).
package ctb

import (
	"fmt"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/history"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 CTB size.
const DefaultEntries = 2048

// tagBits is the number of branch-address bits stored as tag per entry.
const tagBits = 10

type entry struct {
	valid  bool
	tag    uint16
	target zaddr.Addr
}

// Stats is a point-in-time view of the CTB counters; the canonical
// storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Lookups  int64
	Hits     int64
	Installs int64
	Updates  int64
}

// metrics is the CTB's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	hits     obs.Counter
	installs obs.Counter
	updates  obs.Counter
}

// Table is the changing target buffer.
type Table struct {
	entries []entry
	inj     *fault.Injector // soft-error injection on Lookup; nil = off
	met     metrics
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (t *Table) SetInjector(j *fault.Injector) { t.inj = j }

// Injector returns the attached injector (nil when faults are off).
func (t *Table) Injector() *fault.Injector { return t.inj }

// New builds a CTB with the given entry count (power of two).
func New(entries int) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("ctb: entries must be a positive power of two")
	}
	return &Table{entries: make([]entry, entries)}
}

// Entries returns the table size.
func (t *Table) Entries() int { return len(t.entries) }

// Stats returns a view of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		Hits:     t.met.hits.Value(),
		Installs: t.met.installs.Value(),
		Updates:  t.met.updates.Value(),
	}
}

// RegisterMetrics enumerates the CTB counters (plus a computed occupancy
// gauge) into r under the given prefix, e.g. "ctb_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "lookups", "path-correlated target lookups", &t.met.lookups)
	r.Counter(prefix+"hits_total", "lookups", "lookups with a valid tag match", &t.met.hits)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.Counter(prefix+"updates_total", "entries", "in-place target retrains", &t.met.updates)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// CountValid returns the number of valid entries.
func (t *Table) CountValid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

//zbp:hotpath
func tagOf(a zaddr.Addr) uint16 {
	return uint16(zaddr.Halfword(a) & ((1 << tagBits) - 1))
}

// Lookup returns the path-correlated target for the branch at addr. ok is
// false on tag mismatch, in which case the caller uses the BTB target.
//
//zbp:hotpath
func (t *Table) Lookup(h *history.History, addr zaddr.Addr) (target zaddr.Addr, ok bool) {
	t.met.lookups.Inc()
	e := &t.entries[h.CTBIndex(addr, len(t.entries))]
	if t.inj != nil && e.valid {
		t.faultCheck(e)
	}
	if !e.valid || e.tag != tagOf(addr) {
		return 0, false
	}
	t.met.hits.Inc()
	return e.target, true
}

// faultCheck strikes the entry being read, if this read is the one the
// injector's schedule lands on. The flip domain is the stored payload:
// the 64-bit target and 10 tag bits. Parity recovers by invalidation;
// unprotected flips persist (a flipped target silently misdirects every
// multi-target branch that hits this entry).
//
//zbp:hotpath
func (t *Table) faultCheck(e *entry) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	if t.inj.Parity() {
		*e = entry{}
		t.inj.NoteRecovered()
		return
	}
	if b := bits % (64 + tagBits); b < 64 {
		e.target = zaddr.FlipBit(e.target, uint(b))
	} else {
		e.tag ^= 1 << (b - 64)
	}
	t.inj.NoteSilent()
}

// Update trains the entry for the branch at addr with a resolved target.
//
//zbp:hotpath
func (t *Table) Update(h *history.History, addr, target zaddr.Addr) {
	e := &t.entries[h.CTBIndex(addr, len(t.entries))]
	tag := tagOf(addr)
	if e.valid && e.tag == tag {
		e.target = target
		t.met.updates.Inc()
		return
	}
	*e = entry{valid: true, tag: tag, target: target}
	t.met.installs.Inc()
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.met = metrics{}
}

// EntryState is the serializable mirror of one CTB entry.
type EntryState struct {
	Valid  bool
	Tag    uint16
	Target zaddr.Addr
}

// State is a serializable copy of the table's architectural contents.
type State struct{ Entries []EntryState }

// State returns a deep copy of the table's architectural state.
func (t *Table) State() State {
	s := State{Entries: make([]EntryState, len(t.entries))}
	for i, e := range t.entries {
		s.Entries[i] = EntryState{Valid: e.valid, Tag: e.tag, Target: e.target}
	}
	return s
}

// RestoreState overwrites the table's contents with s, which must come
// from a table of identical size.
func (t *Table) RestoreState(s State) error {
	if len(s.Entries) != len(t.entries) {
		return fmt.Errorf("ctb: state has %d entries, table has %d", len(s.Entries), len(t.entries))
	}
	for i, e := range s.Entries {
		t.entries[i] = entry{valid: e.Valid, tag: e.Tag, target: e.Target}
	}
	return nil
}
