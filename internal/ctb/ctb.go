// Package ctb implements the Changing Target Buffer of the zEC12
// first-level branch predictor: 2,048 tagged entries indexed by the
// instruction addresses of the 12 previous taken branches. It supplies
// targets for branches the BTB marks UseCTB (branches exhibiting multiple
// targets, such as returns and virtual dispatch).
//
// The default storage is two packed lanes: a raw uint64 target word per
// entry plus an 11-bit valid|tag field stored 16 bits wide, four per
// uint64 word. The original entry-struct slice survives behind the
// structLayout flag of NewLayout as the equivalence oracle.
package ctb

import (
	"fmt"

	"bulkpreload/internal/fault"
	"bulkpreload/internal/history"
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 CTB size.
const DefaultEntries = 2048

// tagBits is the number of branch-address bits stored as tag per entry.
const tagBits = 10

// Packed 16-bit tag field layout (four fields per uint64 word): bit 0
// is valid, bits 1..10 the tag. Targets live in their own word lane.
// Both levels are proven by packlayout: the 16-bit field's contents,
// and the four-fields-per-word striding of the uint64 lane.
//
//zbp:layout field word:fieldBits valid:fieldValidBit tag:fieldTagShift..fieldTagShift+tagBits-1
//zbp:layout slots word:64 entry[4]:0..fieldBits-1
const (
	fieldValidBit = 0
	fieldTagShift = 1
	fieldBits     = 16
)

type entry struct {
	valid  bool
	tag    uint16
	target zaddr.Addr
}

// Stats is a point-in-time view of the CTB counters; the canonical
// storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Lookups  int64
	Hits     int64
	Installs int64
	Updates  int64
}

// metrics is the CTB's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	hits     obs.Counter
	installs obs.Counter
	updates  obs.Counter
}

// Table is the changing target buffer.
type Table struct {
	n       int      // entry count
	tags    []uint64 // packed valid|tag fields, four entries per word
	targets []uint64 // raw target addresses, one word per entry
	ref     []entry  // struct-layout storage; nil when packed
	inj     *fault.Injector // soft-error injection on Lookup; nil = off
	met     metrics
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (t *Table) SetInjector(j *fault.Injector) { t.inj = j }

// Injector returns the attached injector (nil when faults are off).
func (t *Table) Injector() *fault.Injector { return t.inj }

// New builds a CTB with the given entry count (power of two), using the
// packed layout.
func New(entries int) *Table { return NewLayout(entries, false) }

// NewLayout builds a CTB choosing the storage backend: packed lanes
// (the default) or the retained entry-struct oracle layout. The two are
// observationally equivalent; see the layout equivalence tests.
func NewLayout(entries int, structLayout bool) *Table {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("ctb: entries must be a positive power of two")
	}
	if structLayout {
		return &Table{n: entries, ref: make([]entry, entries)}
	}
	return &Table{
		n:       entries,
		tags:    make([]uint64, (entries+3)/4),
		targets: make([]uint64, entries),
	}
}

// Entries returns the table size.
func (t *Table) Entries() int { return t.n }

// field returns entry i's packed valid|tag field.
//
//zbp:hotpath
//zbp:layout slots unpack
func (t *Table) field(i int) uint64 {
	return t.tags[i>>2] >> (uint(i&3) * fieldBits) & 0xFFFF
}

// setField overwrites entry i's packed valid|tag field with v, masked
// to the entry width so a wide value can never smear into the
// neighboring entries.
//
//zbp:hotpath
//zbp:layout slots pack
func (t *Table) setField(i int, v uint64) {
	sh := uint(i&3) * fieldBits
	t.tags[i>>2] = t.tags[i>>2]&^(uint64(0xFFFF)<<sh) | (v&0xFFFF)<<sh
}

// packField builds the packed valid|tag field for a valid entry.
//
//zbp:hotpath
//zbp:layout field pack
func packField(tag uint16) uint64 {
	return 1<<fieldValidBit | uint64(tag&((1<<tagBits)-1))<<fieldTagShift
}

// Stats returns a view of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		Hits:     t.met.hits.Value(),
		Installs: t.met.installs.Value(),
		Updates:  t.met.updates.Value(),
	}
}

// RegisterMetrics enumerates the CTB counters (plus a computed occupancy
// gauge) into r under the given prefix, e.g. "ctb_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "lookups", "path-correlated target lookups", &t.met.lookups)
	r.Counter(prefix+"hits_total", "lookups", "lookups with a valid tag match", &t.met.hits)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.Counter(prefix+"updates_total", "entries", "in-place target retrains", &t.met.updates)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// CountValid returns the number of valid entries.
func (t *Table) CountValid() int {
	n := 0
	if t.ref != nil {
		for i := range t.ref {
			if t.ref[i].valid {
				n++
			}
		}
		return n
	}
	for i := 0; i < t.n; i++ {
		if t.field(i)&(1<<fieldValidBit) != 0 {
			n++
		}
	}
	return n
}

//zbp:hotpath
func tagOf(a zaddr.Addr) uint16 {
	return uint16(zaddr.Halfword(a) & ((1 << tagBits) - 1))
}

// Lookup returns the path-correlated target for the branch at addr. ok is
// false on tag mismatch, in which case the caller uses the BTB target.
//
//zbp:hotpath
//zbp:layout field uses
func (t *Table) Lookup(h *history.History, addr zaddr.Addr) (target zaddr.Addr, ok bool) {
	t.met.lookups.Inc()
	i := h.CTBIndex(addr, t.n)
	if t.ref != nil {
		e := &t.ref[i]
		if t.inj != nil && e.valid {
			t.refFaultCheck(e)
		}
		if !e.valid || e.tag != tagOf(addr) {
			return 0, false
		}
		t.met.hits.Inc()
		return e.target, true
	}
	f := t.field(i)
	if t.inj != nil && f&(1<<fieldValidBit) != 0 {
		t.faultCheck(i)
		f = t.field(i)
	}
	if f&(1<<fieldValidBit) == 0 || uint16(f>>fieldTagShift)&((1<<tagBits)-1) != tagOf(addr) {
		return 0, false
	}
	t.met.hits.Inc()
	return zaddr.Addr(t.targets[i]), true
}

// faultCheck strikes the entry being read, if this read is the one the
// injector's schedule lands on. The flip domain is the stored payload:
// the 64-bit target and 10 tag bits — identical positions in both
// layouts, so identical seeds corrupt identically. Parity recovers by
// invalidation; unprotected flips persist (a flipped target silently
// misdirects every multi-target branch that hits this entry). Packed
// layout.
//
//zbp:hotpath
func (t *Table) faultCheck(i int) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	if t.inj.Parity() {
		t.setField(i, 0)
		t.targets[i] = 0
		t.inj.NoteRecovered()
		return
	}
	if b := bits % (64 + tagBits); b < 64 {
		t.targets[i] ^= 1 << b
	} else {
		t.setField(i, t.field(i)^1<<(fieldTagShift+(b-64)))
	}
	t.inj.NoteSilent()
}

// refFaultCheck is faultCheck for the struct layout.
//
//zbp:hotpath
func (t *Table) refFaultCheck(e *entry) {
	bits, ok := t.inj.Strike()
	if !ok {
		return
	}
	if t.inj.Parity() {
		*e = entry{}
		t.inj.NoteRecovered()
		return
	}
	if b := bits % (64 + tagBits); b < 64 {
		e.target = zaddr.FlipBit(e.target, uint(b))
	} else {
		e.tag ^= 1 << (b - 64)
	}
	t.inj.NoteSilent()
}

// Update trains the entry for the branch at addr with a resolved target.
//
//zbp:hotpath
//zbp:layout field uses
func (t *Table) Update(h *history.History, addr, target zaddr.Addr) {
	i := h.CTBIndex(addr, t.n)
	tag := tagOf(addr)
	if t.ref != nil {
		e := &t.ref[i]
		if e.valid && e.tag == tag {
			e.target = target
			t.met.updates.Inc()
			return
		}
		*e = entry{valid: true, tag: tag, target: target}
		t.met.installs.Inc()
		return
	}
	f := t.field(i)
	if f&(1<<fieldValidBit) != 0 && uint16(f>>fieldTagShift)&((1<<tagBits)-1) == tag {
		t.targets[i] = uint64(target)
		t.met.updates.Inc()
		return
	}
	t.setField(i, packField(tag))
	t.targets[i] = uint64(target)
	t.met.installs.Inc()
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	if t.ref != nil {
		for i := range t.ref {
			t.ref[i] = entry{}
		}
	} else {
		for i := range t.tags {
			t.tags[i] = 0
		}
		for i := range t.targets {
			t.targets[i] = 0
		}
	}
	t.met = metrics{}
}

// EntryState is the serializable mirror of one CTB entry.
type EntryState struct {
	Valid  bool
	Tag    uint16
	Target zaddr.Addr
}

// State is a serializable copy of the table's architectural contents.
// The format is layout-independent (see btb.State).
type State struct{ Entries []EntryState }

// State returns a deep copy of the table's architectural state.
//
//zbp:layout field unpack
func (t *Table) State() State {
	s := State{Entries: make([]EntryState, t.n)}
	if t.ref != nil {
		for i, e := range t.ref {
			s.Entries[i] = EntryState{Valid: e.valid, Tag: e.tag, Target: e.target}
		}
		return s
	}
	for i := 0; i < t.n; i++ {
		f := t.field(i)
		if f&(1<<fieldValidBit) == 0 {
			continue // zero EntryState, like a cleared struct entry
		}
		s.Entries[i] = EntryState{
			Valid:  true,
			Tag:    uint16(f>>fieldTagShift) & ((1 << tagBits) - 1),
			Target: zaddr.Addr(t.targets[i]),
		}
	}
	return s
}

// RestoreState overwrites the table's contents with s, which must come
// from a table of identical size.
func (t *Table) RestoreState(s State) error {
	if len(s.Entries) != t.n {
		return fmt.Errorf("ctb: state has %d entries, table has %d", len(s.Entries), t.n)
	}
	for i, e := range s.Entries {
		if t.ref != nil {
			t.ref[i] = entry{valid: e.Valid, tag: e.Tag, target: e.Target}
		} else if e.Valid {
			t.setField(i, packField(e.Tag))
			t.targets[i] = uint64(e.Target)
		} else {
			t.setField(i, 0)
			t.targets[i] = 0
		}
	}
	return nil
}
