// Package steering implements the BTB2 search-steering ordering table of
// Section 3.7. When a 4 KB block is bulk-transferred out of the BTB2,
// transferring its 128 rows in plain sequential order wastes cycles on
// code the block's control flow never reaches; the ordering table records
// which 128-byte sectors of each block actually completed instructions,
// and which quartiles the entry (demand) quartile handed control to, and
// uses that to return the likely-useful sectors first.
//
// Geometry from the paper: 512 entries, 2-way set associative, one entry
// per 4 KB block (2 MB reach). Each entry holds, per 1 KB quartile, eight
// 1-bit sector marks and three cross-quartile reference marks.
package steering

import (
	"fmt"

	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Default geometry from the paper.
const (
	DefaultEntries = 512
	DefaultWays    = 2
)

// quartileInfo is the per-quartile tracking state: which of its eight
// sectors saw an instruction complete, and which *other* quartiles were
// entered while this quartile was the demand quartile ("three markings to
// denote a reference to the other quartiles").
type quartileInfo struct {
	sectors uint8 // bit s = sector s of this quartile was active
	refs    uint8 // bit q = quartile q referenced from here (self unused)
}

type entry struct {
	valid bool
	tag   uint64
	q     [zaddr.QuartilesPerBlock]quartileInfo
}

// Stats is a point-in-time view of the ordering-table counters; the
// canonical storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Lookups  int64
	Hits     int64
	Installs int64
	Merges   int64 // block-exit merges into an existing entry
}

// metrics is the ordering table's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	hits     obs.Counter
	installs obs.Counter
	merges   obs.Counter
}

// Table is the tagged ordering table plus the live tracking state for the
// block currently being executed.
type Table struct {
	sets  int
	ways  int
	ents  []entry // sets x ways
	order []uint8 // recency per set (rank 0 = MRU)
	met   metrics

	// Live tracking (Section 3.7: maintained "as a function of
	// instruction checkpoint" until another block is entered).
	curValid  bool
	curBlock  uint64
	curDemand int // demand quartile of the current visit
	cur       [zaddr.QuartilesPerBlock]quartileInfo
}

// New builds an ordering table with the given total entry count and
// associativity.
func New(entries, ways int) *Table {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("steering: bad geometry %d/%d", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("steering: set count must be a power of two")
	}
	t := &Table{
		sets:  sets,
		ways:  ways,
		ents:  make([]entry, entries),
		order: make([]uint8, entries),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			t.order[s*ways+w] = uint8(w)
		}
	}
	return t
}

// NewDefault builds the paper's 512-entry 2-way table.
func NewDefault() *Table { return New(DefaultEntries, DefaultWays) }

// Stats returns a view of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		Hits:     t.met.hits.Value(),
		Installs: t.met.installs.Value(),
		Merges:   t.met.merges.Value(),
	}
}

// RegisterMetrics enumerates the ordering-table counters (plus a computed
// occupancy gauge) into r under the given prefix, e.g. "steering_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "searches", "ordering lookups at full-search launch", &t.met.lookups)
	r.Counter(prefix+"hits_total", "searches", "lookups finding a recorded ordering", &t.met.hits)
	r.Counter(prefix+"installs_total", "entries", "new ordering entries written at block exit", &t.met.installs)
	r.Counter(prefix+"merges_total", "entries", "block-exit merges into an existing entry", &t.met.merges)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid ordering entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// CountValid returns the number of valid ordering entries.
func (t *Table) CountValid() int {
	n := 0
	for i := range t.ents {
		if t.ents[i].valid {
			n++
		}
	}
	return n
}

func (t *Table) setAndTag(block uint64) (int, uint64) {
	return int(block & uint64(t.sets-1)), block >> uint(log2(t.sets))
}

// ObserveComplete feeds one completed instruction address into the live
// tracking state. Crossing into a different 4 KB block flushes the
// accumulated state of the previous block into the tagged array and
// begins a new visit whose entry quartile becomes the demand quartile.
func (t *Table) ObserveComplete(a zaddr.Addr) {
	block := zaddr.Block(a)
	q := zaddr.Quartile(a)
	if !t.curValid || block != t.curBlock {
		t.flush()
		t.curValid = true
		t.curBlock = block
		t.curDemand = q
		t.cur = [zaddr.QuartilesPerBlock]quartileInfo{}
		// Returning to a known block: retrieve and continue updating.
		if e := t.find(block); e != nil {
			t.cur = e.q
		}
	}
	// Mark the sector active.
	sector := zaddr.Sector(a)
	within := uint(sector % zaddr.SectorsPerQuartile)
	t.cur[q].sectors |= 1 << within
	// Entering a quartile other than the demand quartile marks the
	// reference bit in the demand quartile.
	if q != t.curDemand {
		t.cur[t.curDemand].refs |= 1 << uint(q)
	}
}

// flush stores the live visit state into the tagged array.
func (t *Table) flush() {
	if !t.curValid {
		return
	}
	block := t.curBlock
	if e := t.find(block); e != nil {
		for i := range e.q {
			e.q[i].sectors |= t.cur[i].sectors
			e.q[i].refs |= t.cur[i].refs
		}
		t.met.merges.Inc()
		t.touch(block)
		return
	}
	set, tag := t.setAndTag(block)
	base := set * t.ways
	way := -1
	for w := 0; w < t.ways; w++ {
		if !t.ents[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = int(t.order[base+t.ways-1]) // LRU
	}
	t.ents[base+way] = entry{valid: true, tag: tag, q: t.cur}
	t.met.installs.Inc()
	t.promote(set, way)
}

func (t *Table) find(block uint64) *entry {
	set, tag := t.setAndTag(block)
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		e := &t.ents[base+w]
		if e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

func (t *Table) touch(block uint64) {
	set, tag := t.setAndTag(block)
	base := set * t.ways
	for w := 0; w < t.ways; w++ {
		if e := &t.ents[base+w]; e.valid && e.tag == tag {
			t.promote(set, w)
			return
		}
	}
}

func (t *Table) promote(set, w int) {
	base := set * t.ways
	ord := t.order[base : base+t.ways]
	pos := 0
	for ; pos < len(ord); pos++ {
		if int(ord[pos]) == w {
			break
		}
	}
	copy(ord[1:pos+1], ord[0:pos])
	ord[0] = uint8(w)
}

// snapshotFor returns the stored quartile info for block, folding in the
// live state if the block is the one currently being tracked.
func (t *Table) snapshotFor(block uint64) ([zaddr.QuartilesPerBlock]quartileInfo, bool) {
	var q [zaddr.QuartilesPerBlock]quartileInfo
	found := false
	if e := t.find(block); e != nil {
		q = e.q
		found = true
	}
	if t.curValid && t.curBlock == block {
		for i := range q {
			q[i].sectors |= t.cur[i].sectors
			q[i].refs |= t.cur[i].refs
		}
		found = true
	}
	return q, found
}

// Order computes the sector transfer order for a BTB2 bulk search of the
// block containing entryAddr, entered at entryAddr. The returned slice is
// a permutation of the 32 sector indices. On a table hit the paper's
// priority applies:
//
//  1. active sectors of the demand quartile,
//  2. active sectors of quartiles referenced from the demand quartile,
//  3. all remaining active sectors,
//  4. the same three classes again for inactive sectors.
//
// On a miss, sectors are returned sequentially beginning with the demand
// quartile (wrapping around the block). Within every class, sectors are
// visited starting from the entry sector's position and wrapping, so the
// code about to execute is transferred soonest.
func (t *Table) Order(entryAddr zaddr.Addr) []int {
	t.met.lookups.Inc()
	block := zaddr.Block(entryAddr)
	demand := zaddr.Quartile(entryAddr)
	entrySector := zaddr.Sector(entryAddr)
	q, ok := t.snapshotFor(block)
	if !ok {
		// Sequential from the demand quartile's entry point.
		out := make([]int, 0, zaddr.SectorsPerBlock)
		for i := 0; i < zaddr.SectorsPerBlock; i++ {
			out = append(out, (entrySector+i)%zaddr.SectorsPerBlock)
		}
		return out
	}
	t.met.hits.Inc()

	active := func(s int) bool {
		qi := zaddr.SectorQuartile(s)
		return q[qi].sectors&(1<<uint(s%zaddr.SectorsPerQuartile)) != 0
	}
	inDemand := func(s int) bool { return zaddr.SectorQuartile(s) == demand }
	referenced := func(s int) bool {
		return q[demand].refs&(1<<uint(zaddr.SectorQuartile(s))) != 0 && !inDemand(s)
	}

	// classOf maps a sector to its priority class 0..5.
	classOf := func(s int) int {
		base := 0
		if !active(s) {
			base = 3
		}
		switch {
		case inDemand(s):
			return base
		case referenced(s):
			return base + 1
		default:
			return base + 2
		}
	}

	out := make([]int, 0, zaddr.SectorsPerBlock)
	for class := 0; class < 6; class++ {
		for i := 0; i < zaddr.SectorsPerBlock; i++ {
			s := (entrySector + i) % zaddr.SectorsPerBlock
			if classOf(s) == class {
				out = append(out, s)
			}
		}
	}
	return out
}

// Reset clears the table and the live tracking state.
func (t *Table) Reset() {
	for i := range t.ents {
		t.ents[i] = entry{}
	}
	for s := 0; s < t.sets; s++ {
		for w := 0; w < t.ways; w++ {
			t.order[s*t.ways+w] = uint8(w)
		}
	}
	t.curValid = false
	t.met = metrics{}
}

func log2(n int) int {
	w := 0
	for n > 1 {
		n >>= 1
		w++
	}
	return w
}
