package steering

import (
	"testing"
	"testing/quick"

	"bulkpreload/internal/zaddr"
)

func block(n uint64) zaddr.Addr { return zaddr.Addr(n * zaddr.BlockBytes) }

func isPermutation(order []int) bool {
	if len(order) != zaddr.SectorsPerBlock {
		return false
	}
	var seen uint32
	for _, s := range order {
		if s < 0 || s >= zaddr.SectorsPerBlock || seen&(1<<uint(s)) != 0 {
			return false
		}
		seen |= 1 << uint(s)
	}
	return true
}

func TestNewValidation(t *testing.T) {
	NewDefault()
	for _, bad := range [][2]int{{0, 2}, {512, 0}, {513, 2}, {384, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}

func TestMissIsSequentialFromEntry(t *testing.T) {
	tb := NewDefault()
	entry := block(5) + 9*zaddr.SectorBytes + 4 // sector 9
	order := tb.Order(entry)
	if !isPermutation(order) {
		t.Fatalf("not a permutation: %v", order)
	}
	for i, s := range order {
		if s != (9+i)%32 {
			t.Fatalf("miss order[%d] = %d, want sequential wrap from 9", i, s)
		}
	}
	st := tb.Stats()
	if st.Lookups != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDemandQuartileFirstOnHit(t *testing.T) {
	tb := NewDefault()
	b := block(7)
	// Visit: enter in quartile 1 (sector 8), touch sectors 8, 9, then
	// jump to quartile 3 (sector 24). Then leave the block.
	tb.ObserveComplete(b + 8*zaddr.SectorBytes)
	tb.ObserveComplete(b + 9*zaddr.SectorBytes)
	tb.ObserveComplete(b + 24*zaddr.SectorBytes)
	tb.ObserveComplete(block(99)) // exit flushes
	// Re-enter at sector 8 and ask for the order.
	order := tb.Order(b + 8*zaddr.SectorBytes)
	if !isPermutation(order) {
		t.Fatalf("not a permutation: %v", order)
	}
	// Class 0: active demand-quartile sectors {8,9} from entry 8.
	if order[0] != 8 || order[1] != 9 {
		t.Fatalf("demand-quartile active sectors not first: %v", order[:4])
	}
	// Class 1: active sectors of referenced quartile 3 => sector 24.
	if order[2] != 24 {
		t.Fatalf("referenced-quartile active sector not third: %v", order[:4])
	}
	// All remaining (inactive) sectors must come after.
	if st := tb.Stats(); st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInactiveDemandBeforeInactiveOthers(t *testing.T) {
	tb := NewDefault()
	b := block(3)
	// Activate only sector 0 (quartile 0, also demand).
	tb.ObserveComplete(b)
	tb.ObserveComplete(block(50))
	order := tb.Order(b)
	if order[0] != 0 {
		t.Fatalf("active demand sector must be first: %v", order[:4])
	}
	// Sectors 1..7 (inactive, demand quartile) must precede sectors of
	// other quartiles (inactive, unreferenced).
	pos := make(map[int]int)
	for i, s := range order {
		pos[s] = i
	}
	for s := 1; s < 8; s++ {
		if pos[s] > pos[8] {
			t.Fatalf("inactive demand sector %d after other-quartile sector 8: %v", s, order)
		}
	}
}

func TestLiveStateIncludedWithoutFlush(t *testing.T) {
	tb := NewDefault()
	b := block(11)
	tb.ObserveComplete(b + 2*zaddr.SectorBytes) // still live, not flushed
	order := tb.Order(b + 2*zaddr.SectorBytes)
	if order[0] != 2 {
		t.Fatalf("live visit state ignored: %v", order[:4])
	}
	if st := tb.Stats(); st.Hits != 1 {
		t.Error("live-state lookup should count as a hit")
	}
}

func TestReturnToBlockMergesHistory(t *testing.T) {
	tb := NewDefault()
	b := block(4)
	tb.ObserveComplete(b + 1*zaddr.SectorBytes)
	tb.ObserveComplete(block(60)) // flush visit 1
	tb.ObserveComplete(b + 5*zaddr.SectorBytes)
	tb.ObserveComplete(block(60)) // flush visit 2 (merge)
	order := tb.Order(b + 1*zaddr.SectorBytes)
	pos := make(map[int]int)
	for i, s := range order {
		pos[s] = i
	}
	// Both sector 1 and sector 5 are active demand-quartile sectors.
	if pos[1] > 7 || pos[5] > 7 {
		t.Fatalf("merged sectors not prioritized: %v", order[:8])
	}
	if st := tb.Stats(); st.Merges != 1 {
		t.Errorf("Merges = %d, want 1", st.Merges)
	}
}

func TestDemandQuartileIsPerVisit(t *testing.T) {
	tb := NewDefault()
	b := block(9)
	// Visit entering quartile 0, touching quartile 2 => ref 0->2.
	tb.ObserveComplete(b + 0*zaddr.SectorBytes)
	tb.ObserveComplete(b + 16*zaddr.SectorBytes)
	tb.ObserveComplete(block(70))
	// Search entering at quartile 1: demand is 1 now; quartile 2 is only
	// prioritized if referenced *from quartile 1*, which it is not.
	order := tb.Order(b + 8*zaddr.SectorBytes)
	pos := make(map[int]int)
	for i, s := range order {
		pos[s] = i
	}
	// Active sector 0 (class 2: active, not demand, not referenced from 1)
	// must still precede inactive non-demand sectors but come after the
	// inactive demand quartile? No: class 2 (active other) < class 3
	// (inactive demand). Check class order: sector 0 active-other before
	// inactive demand sector 9.
	if pos[0] > pos[9] {
		t.Fatalf("active sector 0 should precede inactive demand sector 9: %v", order)
	}
	// Sector 16 (active, quartile 2, not referenced from demand 1) is
	// class 2 as well.
	if pos[16] > pos[9] {
		t.Fatalf("active sector 16 should precede inactive demand sector 9: %v", order)
	}
}

func TestOrderAlwaysPermutation(t *testing.T) {
	f := func(seed uint32, touches []uint16, entryRaw uint16) bool {
		tb := New(64, 2)
		b := block(uint64(seed % 100))
		for _, tv := range touches {
			blk := b
			if tv%7 == 0 {
				blk = block(uint64(tv % 5)) // occasionally other blocks
			}
			tb.ObserveComplete(blk + zaddr.Addr(tv%zaddr.BlockBytes)&^1)
		}
		entry := b + zaddr.Addr(entryRaw%zaddr.BlockBytes)&^1
		return isPermutation(tb.Order(entry))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCapacityEviction(t *testing.T) {
	tb := New(4, 2) // 2 sets x 2 ways: blocks alias mod 2
	// Fill set 0 with blocks 0 and 2, then flush block 4 into set 0.
	tb.ObserveComplete(block(0))
	tb.ObserveComplete(block(2))
	tb.ObserveComplete(block(4))
	tb.ObserveComplete(block(99)) // flush 4
	// Block 0 (LRU of set 0) must be gone: its order is sequential now.
	order := tb.Order(block(0) + 3*zaddr.SectorBytes)
	for i, s := range order {
		if s != (3+i)%32 {
			t.Fatalf("evicted block still steered: %v", order[:4])
		}
	}
}

func TestReset(t *testing.T) {
	tb := NewDefault()
	tb.ObserveComplete(block(1))
	tb.ObserveComplete(block(2))
	tb.Reset()
	if st := tb.Stats(); st != (Stats{}) {
		t.Error("Reset left stats")
	}
	order := tb.Order(block(1))
	for i, s := range order {
		if s != i%32 {
			t.Fatal("Reset left steering state")
		}
	}
}

func TestPaperGeometryReach(t *testing.T) {
	// 512 entries x 4 KB blocks = 2 MB instruction footprint.
	if DefaultEntries*zaddr.BlockBytes != 2*1024*1024 {
		t.Error("ordering table reach is not 2 MB")
	}
}
