package steering_test

import (
	"fmt"

	"bulkpreload/internal/steering"
	"bulkpreload/internal/zaddr"
)

// Example shows the Section 3.7 transfer ordering: after a visit that
// entered a block in quartile 0 and referenced quartile 2, a re-entry
// search returns the demand quartile's active sectors first, then the
// referenced quartile's.
func Example() {
	t := steering.NewDefault()
	block := zaddr.Addr(0x10000)

	// Execute sectors 0 and 1 (quartile 0), then 16 and 17 (quartile 2).
	for _, sector := range []int{0, 1, 16, 17} {
		t.ObserveComplete(block + zaddr.Addr(sector*zaddr.SectorBytes))
	}
	t.ObserveComplete(0x90000) // leaving the block stores the visit

	order := t.Order(block) // re-entry at sector 0
	fmt.Println("first six sectors transferred:", order[:6])
	// Output:
	// first six sectors transferred: [0 1 16 17 2 3]
}
