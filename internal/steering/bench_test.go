package steering

import (
	"testing"

	"bulkpreload/internal/zaddr"
)

func BenchmarkObserveComplete(b *testing.B) {
	t := NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Walk addresses across blocks so flushes and sector marking both
		// run.
		t.ObserveComplete(zaddr.Addr(0x100000 + (i%100000)*36))
	}
}

func BenchmarkOrder(b *testing.B) {
	t := NewDefault()
	// Train a handful of blocks.
	for blk := 0; blk < 16; blk++ {
		base := zaddr.Addr(0x100000 + blk*zaddr.BlockBytes)
		for s := 0; s < 8; s++ {
			t.ObserveComplete(base + zaddr.Addr(s*zaddr.SectorBytes))
		}
		t.ObserveComplete(0x900000) // flush
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Order(zaddr.Addr(0x100000 + (i%16)*zaddr.BlockBytes + 2*zaddr.SectorBytes))
	}
}
