// Package tracker implements the BTB2 search trackers of Section 3.6.
// Three trackers each own one 4 KB block of address space and remember
// two validity bits: a BTB1-miss indication and an instruction-cache-miss
// indication for that block.
//
//   - BTB1 miss + I-cache miss (fully active): launch a full search of
//     all 128 BTB2 rows of the block, ordered by the steering table.
//   - BTB1 miss only: launch a partial search of the 4 rows (128 bytes)
//     around the miss address; if the I-cache-miss bit is still invalid
//     when the partial search completes, the tracker is invalidated.
//   - I-cache miss only: no search.
//
// Timing: a search starts at the earliest 7 cycles after the miss is
// detected (b3 -> b10); the BTB2 search pipeline is 8 cycles deep and
// retires one row per cycle, so a full 4 KB transfer takes 128 + 8 = 136
// cycles. The BTB2 has a single search port, so concurrent trackers
// serialize row reads.
package tracker

import (
	"fmt"

	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// Orderer supplies the sector transfer order for a block entered at a
// given address. *steering.Table satisfies it; tests substitute fixed
// orders.
type Orderer interface {
	Order(entryAddr zaddr.Addr) []int
}

// Config fixes the tracker array and search timing parameters.
type Config struct {
	Count          int  // number of trackers (paper: 3)
	PartialRows    int  // BTB2 rows searched by a partial search (paper: 4 = 128 B)
	StartDelay     int  // cycles from miss detection to search start (paper: 7)
	PipeDepth      int  // BTB2 search pipeline depth in cycles (paper: 8)
	FilterByICache bool // gate full searches on I-cache misses (paper: true)
	// RowBytes is the instruction bytes one BTB2 row covers (paper: 32;
	// the future-work congruence-class study widens it to 64 or 128,
	// which shortens full-block transfers proportionally). 0 selects 32.
	RowBytes int
}

// rowBytes returns the effective row coverage.
func (c Config) rowBytes() int {
	if c.RowBytes == 0 {
		return zaddr.RowBytes
	}
	return c.RowBytes
}

// RowsPerBlock returns how many BTB2 rows one 4 KB block spans.
func (c Config) RowsPerBlock() int { return zaddr.BlockBytes / c.rowBytes() }

// DefaultConfig is the shipping zEC12 configuration.
var DefaultConfig = Config{
	Count:          3,
	PartialRows:    4,
	StartDelay:     7,
	PipeDepth:      8,
	FilterByICache: true,
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	if c.Count <= 0 {
		return fmt.Errorf("tracker: count %d must be positive", c.Count)
	}
	switch c.rowBytes() {
	case 32, 64, 128:
	default:
		return fmt.Errorf("tracker: row bytes %d not one of 32/64/128", c.RowBytes)
	}
	if c.PartialRows <= 0 || c.PartialRows > c.RowsPerBlock() {
		return fmt.Errorf("tracker: partial rows %d out of range", c.PartialRows)
	}
	if c.StartDelay < 0 || c.PipeDepth <= 0 {
		return fmt.Errorf("tracker: invalid timing (delay %d, depth %d)", c.StartDelay, c.PipeDepth)
	}
	return nil
}

// Read is one scheduled BTB2 row read: search the BTB2 congruence class
// for Line and write any hits into the BTBP when Ready arrives.
type Read struct {
	Line  zaddr.Addr // 32-byte row base address
	Ready uint64     // cycle at which the row's hits reach the BTBP
}

// Stats is a point-in-time view of the tracker counters; the canonical
// storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	BTB1Misses   int64 // miss reports delivered
	ICacheMisses int64
	Partial      int64 // partial searches launched
	Full         int64 // full searches launched (incl. upgrades)
	Upgrades     int64 // partial searches upgraded to full
	Invalidated  int64 // partial searches whose tracker died un-upgraded
	Dropped      int64 // miss reports dropped because all trackers were busy
	RowsRead     int64 // total BTB2 row reads scheduled
}

type state uint8

const (
	idle          state = iota
	icacheOnly          // I-cache miss bit only; no search
	partialActive       // partial search scheduled/in flight
	fullActive          // full search scheduled/in flight
)

type slot struct {
	st        state
	block     uint64
	missAddr  zaddr.Addr // BTB1 miss address (search anchor)
	icache    bool       // I-cache miss validity bit
	lastReady uint64     // Ready of the final scheduled row
	allocTime uint64
	searched  [zaddr.RowsPerBlock / 64]uint64 // bitmap of rows already scheduled (sized for 32 B rows)
}

func (s *slot) markRow(row int)        { s.searched[row/64] |= 1 << uint(row%64) }
func (s *slot) rowMarked(row int) bool { return s.searched[row/64]&(1<<uint(row%64)) != 0 }

// Trackers is the tracker array plus the serialized BTB2 search port.
type Trackers struct {
	cfg   Config
	ord   Orderer
	slots []slot
	// queue holds scheduled reads in Ready order (the single search port
	// guarantees monotone Ready assignment).
	queue []Read
	// portFree is the next cycle at which the search port can accept a
	// row read.
	portFree uint64
	met      metrics
}

// metrics is the tracker array's registry-backed counter set.
type metrics struct {
	btb1Misses   obs.Counter
	icacheMisses obs.Counter
	partial      obs.Counter
	full         obs.Counter
	upgrades     obs.Counter
	invalidated  obs.Counter
	dropped      obs.Counter
	rowsRead     obs.Counter
}

// New builds a tracker array; invalid config panics.
func New(cfg Config, ord Orderer) *Trackers {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if ord == nil {
		panic("tracker: nil Orderer")
	}
	return &Trackers{cfg: cfg, ord: ord, slots: make([]slot, cfg.Count)}
}

// Config returns the tracker configuration.
func (t *Trackers) Config() Config { return t.cfg }

// Stats returns a view of the counters.
func (t *Trackers) Stats() Stats {
	return Stats{
		BTB1Misses:   t.met.btb1Misses.Value(),
		ICacheMisses: t.met.icacheMisses.Value(),
		Partial:      t.met.partial.Value(),
		Full:         t.met.full.Value(),
		Upgrades:     t.met.upgrades.Value(),
		Invalidated:  t.met.invalidated.Value(),
		Dropped:      t.met.dropped.Value(),
		RowsRead:     t.met.rowsRead.Value(),
	}
}

// RegisterMetrics enumerates the tracker counters (plus a pending-reads
// gauge) into r under the given prefix, e.g. "tracker_".
func (t *Trackers) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"btb1_misses_total", "events", "BTB1 miss reports delivered", &t.met.btb1Misses)
	r.Counter(prefix+"icache_misses_total", "events", "I-cache miss reports delivered", &t.met.icacheMisses)
	r.Counter(prefix+"partial_searches_total", "searches", "partial searches launched", &t.met.partial)
	r.Counter(prefix+"full_searches_total", "searches", "full searches launched (incl. upgrades)", &t.met.full)
	r.Counter(prefix+"upgrades_total", "searches", "partial searches upgraded to full", &t.met.upgrades)
	r.Counter(prefix+"invalidated_total", "searches", "partial searches whose tracker died un-upgraded", &t.met.invalidated)
	r.Counter(prefix+"dropped_total", "events", "miss reports dropped with all trackers busy", &t.met.dropped)
	r.Counter(prefix+"rows_read_total", "rows", "BTB2 row reads scheduled", &t.met.rowsRead)
	r.GaugeFunc(prefix+"pending_reads", "rows", "scheduled but undrained row reads",
		func() int64 { return int64(t.PendingReads()) })
}

// ActiveSearches returns the number of trackers with a search in flight.
//
//zbp:hotpath
func (t *Trackers) ActiveSearches(now uint64) int {
	n := 0
	for i := range t.slots {
		s := &t.slots[i]
		if (s.st == partialActive || s.st == fullActive) && s.lastReady > now {
			n++
		}
	}
	return n
}

// reap frees trackers whose searches have fully completed by now. A
// partial search completing without an I-cache miss invalidates its
// tracker; with one, the tracker upgrades (handled in OnICacheMiss, but a
// late reap here catches the already-upgraded full searches too).
//
//zbp:hotpath
func (t *Trackers) reap(now uint64) {
	for i := range t.slots {
		s := &t.slots[i]
		switch s.st {
		case partialActive:
			if now >= s.lastReady {
				// Partial done; I-cache bit still invalid => invalidate.
				if !s.icache {
					t.met.invalidated.Inc()
					*s = slot{}
				} else {
					// Upgrade raced with completion: finish as full.
					t.upgrade(i, now)
				}
			}
		case fullActive:
			if now >= s.lastReady {
				*s = slot{}
			}
		}
	}
}

func (t *Trackers) findSlot(block uint64) int {
	for i := range t.slots {
		if t.slots[i].st != idle && t.slots[i].block == block {
			return i
		}
	}
	return -1
}

// allocate returns a slot index for a new tracker, preferring idle slots,
// then the oldest I-cache-only tracker. -1 means every slot is running a
// search and the event must be dropped.
func (t *Trackers) allocate() int {
	for i := range t.slots {
		if t.slots[i].st == idle {
			return i
		}
	}
	best := -1
	for i := range t.slots {
		if t.slots[i].st == icacheOnly {
			if best < 0 || t.slots[i].allocTime < t.slots[best].allocTime {
				best = i
			}
		}
	}
	return best
}

// OnBTB1Miss reports a perceived first-level miss detected at cycle now
// with starting search address addr (Section 3.4's definition).
func (t *Trackers) OnBTB1Miss(addr zaddr.Addr, now uint64) {
	t.met.btb1Misses.Inc()
	t.reap(now)
	block := zaddr.Block(addr)
	if i := t.findSlot(block); i >= 0 {
		s := &t.slots[i]
		switch s.st {
		case icacheOnly:
			// Fully active now: full search.
			s.missAddr = addr
			t.launchFull(i, now)
		case partialActive, fullActive:
			// Already searching this block; nothing further.
		}
		return
	}
	i := t.allocate()
	if i < 0 {
		t.met.dropped.Inc()
		return
	}
	t.slots[i] = slot{block: block, missAddr: addr, allocTime: now}
	if !t.cfg.FilterByICache {
		// Ablation mode: every BTB1 miss earns a full search.
		t.launchFull(i, now)
		return
	}
	t.launchPartial(i, now)
}

// OnICacheMiss reports a first-level instruction cache miss at address
// addr at cycle now.
func (t *Trackers) OnICacheMiss(addr zaddr.Addr, now uint64) {
	t.met.icacheMisses.Inc()
	t.reap(now)
	block := zaddr.Block(addr)
	if i := t.findSlot(block); i >= 0 {
		s := &t.slots[i]
		if s.icache {
			return
		}
		s.icache = true
		if s.st == partialActive {
			// BTB1 miss + I-cache miss: upgrade to a full search.
			t.upgrade(i, now)
		}
		return
	}
	i := t.allocate()
	if i < 0 {
		t.met.dropped.Inc()
		return
	}
	t.slots[i] = slot{st: icacheOnly, block: block, icache: true, allocTime: now}
}

// launchPartial schedules the partial search around the miss address
// (PartialRows BTB2 rows, 128 bytes in the shipping geometry).
func (t *Trackers) launchPartial(i int, now uint64) {
	s := &t.slots[i]
	s.st = partialActive
	t.met.partial.Inc()
	rb := t.cfg.rowBytes()
	sectorBase := zaddr.Align(s.missAddr, zaddr.SectorBytes)
	startRow := int(zaddr.BlockOffset(sectorBase)) / rb
	rows := make([]int, 0, t.cfg.PartialRows)
	for r := 0; r < t.cfg.PartialRows && startRow+r < t.cfg.RowsPerBlock(); r++ {
		rows = append(rows, startRow+r)
	}
	t.schedule(i, rows, now)
}

// launchFull schedules a full-block search ordered by the steering table.
func (t *Trackers) launchFull(i int, now uint64) {
	s := &t.slots[i]
	s.st = fullActive
	t.met.full.Inc()
	t.schedule(i, t.fullRowOrder(s), now)
}

// upgrade extends a partial search to the full block, skipping rows the
// partial pass already covered.
func (t *Trackers) upgrade(i int, now uint64) {
	s := &t.slots[i]
	s.st = fullActive
	t.met.upgrades.Inc()
	t.met.full.Inc()
	t.schedule(i, t.fullRowOrder(s), now)
}

// fullRowOrder expands the steering sector order into row indices,
// anchored at the tracker's miss address. Wider BTB2 rows cover several
// 128-byte sectors each; duplicate rows are filtered by the schedule
// bitmap.
func (t *Trackers) fullRowOrder(s *slot) []int {
	rb := t.cfg.rowBytes()
	sectors := t.ord.Order(s.missAddr)
	rows := make([]int, 0, t.cfg.RowsPerBlock())
	if rb <= zaddr.SectorBytes {
		perSector := zaddr.SectorBytes / rb
		for _, sec := range sectors {
			for r := 0; r < perSector; r++ {
				rows = append(rows, sec*perSector+r)
			}
		}
		return rows
	}
	// Row wider than a sector: one row per covered sector, first
	// occurrence wins (the bitmap drops repeats).
	for _, sec := range sectors {
		rows = append(rows, sec*zaddr.SectorBytes/rb)
	}
	return rows
}

// schedule pushes row reads through the single search port. Rows already
// scheduled for this tracker are skipped (upgrade path).
func (t *Trackers) schedule(i int, rows []int, now uint64) {
	s := &t.slots[i]
	start := now + uint64(t.cfg.StartDelay)
	if t.portFree > start {
		start = t.portFree
	}
	blockBase := zaddr.Addr(s.block * zaddr.BlockBytes)
	rb := t.cfg.rowBytes()
	cycle := start
	for _, row := range rows {
		if s.rowMarked(row) {
			continue
		}
		s.markRow(row)
		ready := cycle + uint64(t.cfg.PipeDepth)
		t.queue = append(t.queue, Read{
			Line:  blockBase + zaddr.Addr(row*rb),
			Ready: ready,
		})
		t.met.rowsRead.Inc()
		if ready > s.lastReady {
			s.lastReady = ready
		}
		cycle++
	}
	t.portFree = cycle
}

// Drain returns (and removes) all scheduled reads whose Ready cycle is at
// or before now, in Ready order. The caller performs the BTB2 lookups and
// BTBP installs for each.
func (t *Trackers) Drain(now uint64) []Read {
	n := 0
	for n < len(t.queue) && t.queue[n].Ready <= now {
		n++
	}
	if n == 0 {
		t.reap(now)
		return nil
	}
	out := make([]Read, n)
	copy(out, t.queue[:n])
	t.queue = t.queue[:copy(t.queue, t.queue[n:])]
	t.reap(now)
	return out
}

// PendingReads returns the number of scheduled but undrained row reads.
func (t *Trackers) PendingReads() int { return len(t.queue) }

// Reset clears all trackers and the port state.
func (t *Trackers) Reset() {
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	t.queue = t.queue[:0]
	t.portFree = 0
	t.met = metrics{}
}
