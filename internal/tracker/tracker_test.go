package tracker

import (
	"testing"

	"bulkpreload/internal/steering"
	"bulkpreload/internal/zaddr"
)

// seqOrder is a trivial Orderer returning sectors 0..31 in order.
type seqOrder struct{}

func (seqOrder) Order(zaddr.Addr) []int {
	out := make([]int, zaddr.SectorsPerBlock)
	for i := range out {
		out[i] = i
	}
	return out
}

func newT(t *testing.T, cfg Config) *Trackers {
	t.Helper()
	return New(cfg, seqOrder{})
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Count: 0, PartialRows: 4, StartDelay: 7, PipeDepth: 8},
		{Count: 3, PartialRows: 0, StartDelay: 7, PipeDepth: 8},
		{Count: 3, PartialRows: 999, StartDelay: 7, PipeDepth: 8},
		{Count: 3, PartialRows: 4, StartDelay: -1, PipeDepth: 8},
		{Count: 3, PartialRows: 4, StartDelay: 7, PipeDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPaperTiming(t *testing.T) {
	// "a full 4 KB bulk transfer takes 128 + 8 = 136 cycles" starting 7
	// cycles after the miss detect.
	tr := newT(t, DefaultConfig)
	addr := zaddr.Addr(0x10000)
	tr.OnBTB1Miss(addr, 100)
	tr.OnICacheMiss(addr, 100) // fully active immediately
	reads := tr.Drain(100 + 7 + 136)
	if len(reads) != zaddr.RowsPerBlock {
		t.Fatalf("drained %d rows, want 128", len(reads))
	}
	// First row data arrives at start (107) + pipeline depth (8) = 115.
	if reads[0].Ready != 115 {
		t.Errorf("first row ready at %d, want 115", reads[0].Ready)
	}
	// Last row: 107 + 8 + 127 = 242 (within 107+136 = 243 cycle window).
	if last := reads[len(reads)-1].Ready; last != 242 {
		t.Errorf("last row ready at %d, want 242", last)
	}
}

func TestPartialSearchOnly4Rows(t *testing.T) {
	tr := newT(t, DefaultConfig)
	// Miss in sector 3 of a block: partial search covers the sector's 4
	// rows (128 bytes).
	addr := zaddr.Addr(0x20000 + 3*zaddr.SectorBytes + 40)
	tr.OnBTB1Miss(addr, 0)
	reads := tr.Drain(10000)
	if len(reads) != 4 {
		t.Fatalf("partial search read %d rows, want 4", len(reads))
	}
	wantBase := zaddr.Addr(0x20000 + 3*zaddr.SectorBytes)
	for i, r := range reads {
		if r.Line != wantBase+zaddr.Addr(i*zaddr.RowBytes) {
			t.Errorf("row %d = %#x, want %#x", i, uint64(r.Line), uint64(wantBase)+uint64(i*zaddr.RowBytes))
		}
	}
	st := tr.Stats()
	if st.Partial != 1 || st.Full != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartialInvalidatedWithoutICacheMiss(t *testing.T) {
	tr := newT(t, DefaultConfig)
	addr := zaddr.Addr(0x30000)
	tr.OnBTB1Miss(addr, 0)
	tr.Drain(10000) // partial completes, no I-cache miss => invalidated
	if st := tr.Stats(); st.Invalidated != 1 {
		t.Errorf("Invalidated = %d, want 1", st.Invalidated)
	}
	// The block is no longer tracked: a new miss relaunches a search.
	tr.OnBTB1Miss(addr, 20000)
	if got := tr.PendingReads(); got != 4 {
		t.Errorf("re-miss scheduled %d reads, want 4", got)
	}
}

func TestUpgradeToFullOnICacheMiss(t *testing.T) {
	tr := newT(t, DefaultConfig)
	addr := zaddr.Addr(0x40000)
	tr.OnBTB1Miss(addr, 0)
	// I-cache miss arrives while the partial search is in flight.
	tr.OnICacheMiss(addr+64, 5)
	reads := tr.Drain(100000)
	if len(reads) != zaddr.RowsPerBlock {
		t.Fatalf("after upgrade drained %d rows, want 128 (no duplicates)", len(reads))
	}
	seen := map[zaddr.Addr]bool{}
	for _, r := range reads {
		if seen[r.Line] {
			t.Fatalf("row %#x read twice", uint64(r.Line))
		}
		seen[r.Line] = true
	}
	st := tr.Stats()
	if st.Upgrades != 1 || st.Partial != 1 || st.Full != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestICacheOnlyNoSearch(t *testing.T) {
	tr := newT(t, DefaultConfig)
	tr.OnICacheMiss(0x50000, 0)
	if tr.PendingReads() != 0 {
		t.Fatal("I-cache-only tracker launched a search")
	}
	// A later BTB1 miss for the same block makes it fully active.
	tr.OnBTB1Miss(0x50040, 10)
	if tr.PendingReads() != zaddr.RowsPerBlock {
		t.Fatalf("fully active tracker scheduled %d rows, want 128", tr.PendingReads())
	}
	if st := tr.Stats(); st.Full != 1 || st.Partial != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoFilterAblation(t *testing.T) {
	cfg := DefaultConfig
	cfg.FilterByICache = false
	tr := newT(t, cfg)
	tr.OnBTB1Miss(0x60000, 0)
	if tr.PendingReads() != zaddr.RowsPerBlock {
		t.Fatalf("unfiltered miss scheduled %d rows, want full block", tr.PendingReads())
	}
}

func TestDuplicateMissIgnoredWhileTracked(t *testing.T) {
	tr := newT(t, DefaultConfig)
	tr.OnBTB1Miss(0x70000, 0)
	tr.OnBTB1Miss(0x70080, 1) // same block
	if tr.PendingReads() != 4 {
		t.Fatalf("duplicate miss scheduled extra reads: %d", tr.PendingReads())
	}
	tr.OnICacheMiss(0x70000, 2)
	tr.OnICacheMiss(0x70010, 3) // duplicate icache: ignored
	if st := tr.Stats(); st.Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", st.Upgrades)
	}
}

func TestTrackerExhaustionDrops(t *testing.T) {
	cfg := DefaultConfig
	cfg.Count = 2
	tr := newT(t, cfg)
	tr.OnBTB1Miss(0x10000, 0)
	tr.OnICacheMiss(0x10000, 0)
	tr.OnBTB1Miss(0x20000, 1)
	tr.OnICacheMiss(0x20000, 1)
	// Both trackers have long full searches in flight; a third block's
	// miss must be dropped.
	tr.OnBTB1Miss(0x30000, 2)
	if st := tr.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestICacheOnlyTrackerIsReplaceable(t *testing.T) {
	cfg := DefaultConfig
	cfg.Count = 1
	tr := newT(t, cfg)
	tr.OnICacheMiss(0x10000, 0)
	// A BTB1 miss for another block replaces the icache-only tracker.
	tr.OnBTB1Miss(0x20000, 1)
	if tr.PendingReads() != 4 {
		t.Fatalf("replacement failed: %d reads", tr.PendingReads())
	}
	if st := tr.Stats(); st.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", st.Dropped)
	}
}

func TestPortSerialization(t *testing.T) {
	// Two fully-active trackers: the second search's rows must queue
	// behind the first (one row per cycle on a single port).
	tr := newT(t, DefaultConfig)
	tr.OnBTB1Miss(0x10000, 0)
	tr.OnICacheMiss(0x10000, 0)
	tr.OnBTB1Miss(0x20000, 0)
	tr.OnICacheMiss(0x20000, 0)
	reads := tr.Drain(1 << 20)
	if len(reads) != 2*zaddr.RowsPerBlock {
		t.Fatalf("drained %d", len(reads))
	}
	// Ready cycles strictly increase by 1 across the whole sequence.
	for i := 1; i < len(reads); i++ {
		if reads[i].Ready != reads[i-1].Ready+1 {
			t.Fatalf("read %d ready %d, prev %d (port not serialized)", i, reads[i].Ready, reads[i-1].Ready)
		}
	}
	// Block 2's first row comes after all of block 1's rows.
	if zaddr.Block(reads[127].Line) != zaddr.Block(0x10000) || zaddr.Block(reads[128].Line) != zaddr.Block(0x20000) {
		t.Error("second tracker's rows interleaved with first")
	}
}

func TestDrainPartialThenRest(t *testing.T) {
	tr := newT(t, DefaultConfig)
	tr.OnBTB1Miss(0x10000, 0)
	tr.OnICacheMiss(0x10000, 0)
	early := tr.Drain(7 + 8 + 9) // first 10 rows ready by cycle 24
	if len(early) != 10 {
		t.Fatalf("early drain = %d rows, want 10", len(early))
	}
	rest := tr.Drain(1 << 20)
	if len(early)+len(rest) != zaddr.RowsPerBlock {
		t.Fatalf("total = %d", len(early)+len(rest))
	}
}

func TestSteeredOrderUsed(t *testing.T) {
	// With a real steering table trained to prioritize sector 9, the
	// first full-search rows must belong to sector 9.
	st := steering.NewDefault()
	base := zaddr.Addr(0x80000)
	st.ObserveComplete(base + 9*zaddr.SectorBytes)
	st.ObserveComplete(zaddr.Addr(0x200000)) // flush
	tr := New(DefaultConfig, st)
	tr.OnBTB1Miss(base+9*zaddr.SectorBytes+16, 0)
	tr.OnICacheMiss(base+9*zaddr.SectorBytes, 0)
	reads := tr.Drain(1 << 20)
	if len(reads) != zaddr.RowsPerBlock {
		t.Fatalf("drained %d", len(reads))
	}
	if zaddr.Sector(reads[0].Line) != 9 {
		t.Errorf("first row in sector %d, want demand sector 9", zaddr.Sector(reads[0].Line))
	}
}

func TestActiveSearchesAndReset(t *testing.T) {
	tr := newT(t, DefaultConfig)
	tr.OnBTB1Miss(0x10000, 0)
	if tr.ActiveSearches(0) != 1 {
		t.Errorf("ActiveSearches = %d", tr.ActiveSearches(0))
	}
	tr.Reset()
	if tr.PendingReads() != 0 || tr.ActiveSearches(0) != 0 {
		t.Error("Reset incomplete")
	}
	if tr.Stats() != (Stats{}) {
		t.Error("Reset left stats")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted bad config")
		}
	}()
	New(Config{}, seqOrder{})
}

func TestNilOrdererPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted nil orderer")
		}
	}()
	New(DefaultConfig, nil)
}

func TestWideRowGeometry(t *testing.T) {
	// 64-byte BTB2 rows: a full block is 64 reads at 64-byte strides, so
	// the whole transfer finishes in roughly half the shipping time.
	cfg := DefaultConfig
	cfg.RowBytes = 64
	cfg.PartialRows = 2 // keep the 128-byte partial coverage
	tr := New(cfg, seqOrder{})
	tr.OnBTB1Miss(0x10000, 0)
	tr.OnICacheMiss(0x10000, 0)
	reads := tr.Drain(1 << 20)
	if len(reads) != 64 {
		t.Fatalf("64B-row full search read %d rows, want 64", len(reads))
	}
	for i, r := range reads {
		if uint64(r.Line)%64 != 0 {
			t.Fatalf("read %d line %#x not 64B aligned", i, uint64(r.Line))
		}
	}
	// Completion: start 7 + depth 8 + 64 rows => last ready at 7+8+63.
	if last := reads[len(reads)-1].Ready; last != 7+8+63 {
		t.Errorf("last ready %d, want %d", last, 7+8+63)
	}
}

func TestRowBytesValidation(t *testing.T) {
	cfg := DefaultConfig
	cfg.RowBytes = 48
	if err := cfg.Validate(); err == nil {
		t.Error("48-byte rows accepted")
	}
	cfg.RowBytes = 128
	cfg.PartialRows = 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("128-byte rows rejected: %v", err)
	}
	if cfg.RowsPerBlock() != 32 {
		t.Errorf("rows per block = %d, want 32", cfg.RowsPerBlock())
	}
}
