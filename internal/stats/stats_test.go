package stats

import "testing"

func TestOutcomeStrings(t *testing.T) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.String() == "" {
			t.Errorf("outcome %d has empty string", o)
		}
	}
	if Outcome(99).String() != "Outcome(99)" {
		t.Error("unknown outcome string wrong")
	}
}

func TestBadClassification(t *testing.T) {
	// Figure 4: bad outcomes are dynamic mispredicts plus surprise
	// branches guessed or resolved taken.
	good := []Outcome{GoodPredicted, GoodSurpriseNT}
	bad := []Outcome{BadWrongDir, BadWrongTarget, BadSurpriseCompulsory,
		BadSurpriseLatency, BadSurpriseCapacity}
	for _, o := range good {
		if o.Bad() {
			t.Errorf("%v classified bad", o)
		}
	}
	for _, o := range bad {
		if !o.Bad() {
			t.Errorf("%v classified good", o)
		}
	}
}

func TestSurpriseClassification(t *testing.T) {
	surprises := []Outcome{GoodSurpriseNT, BadSurpriseCompulsory,
		BadSurpriseLatency, BadSurpriseCapacity}
	for _, o := range surprises {
		if !o.Surprise() {
			t.Errorf("%v not classified surprise", o)
		}
	}
	for _, o := range []Outcome{GoodPredicted, BadWrongDir, BadWrongTarget} {
		if o.Surprise() {
			t.Errorf("%v classified surprise", o)
		}
	}
}

func TestCountsArithmetic(t *testing.T) {
	var c Counts
	c.Add(GoodPredicted)
	c.Add(GoodPredicted)
	c.Add(GoodSurpriseNT)
	c.Add(BadWrongDir)
	c.Add(BadWrongTarget)
	c.Add(BadSurpriseCapacity)
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Bad() != 3 {
		t.Errorf("Bad = %d", c.Bad())
	}
	if c.BadRate() != 0.5 {
		t.Errorf("BadRate = %v", c.BadRate())
	}
	if c.Rate(GoodPredicted) != 2.0/6.0 {
		t.Errorf("Rate = %v", c.Rate(GoodPredicted))
	}
	if c.Mispredicted() != 2 {
		t.Errorf("Mispredicted = %d", c.Mispredicted())
	}
	if c.BadSurprises() != 1 {
		t.Errorf("BadSurprises = %d", c.BadSurprises())
	}
}

func TestEmptyCounts(t *testing.T) {
	var c Counts
	if c.BadRate() != 0 || c.Rate(GoodPredicted) != 0 || c.Total() != 0 {
		t.Error("empty counts not zero")
	}
}

func TestMerge(t *testing.T) {
	var a, b Counts
	a.Add(GoodPredicted)
	b.Add(GoodPredicted)
	b.Add(BadWrongDir)
	a.Merge(b)
	if a.N[GoodPredicted] != 2 || a.N[BadWrongDir] != 1 {
		t.Errorf("Merge wrong: %+v", a)
	}
}
