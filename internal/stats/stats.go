// Package stats defines the branch-outcome taxonomy of Section 5.1 /
// Figure 4 and the counter set the engine accumulates per run.
//
// "Bad branch outcomes are those that incur a performance penalty.
// Specifically they consist of dynamically mispredicted branches and
// surprise branches which are guessed or resolved taken. These bad
// surprise branches are classified as compulsory (first time that branch
// is seen), latency (surprise because a prediction wasn't available in
// time ...), or capacity (branch was seen before, and not categorized as
// missed due to latency)."
package stats

import (
	"fmt"
	"strings"
)

// Outcome classifies one dynamic branch execution.
type Outcome uint8

// Branch outcomes. The Bad* outcomes incur pipeline penalties.
const (
	// GoodPredicted: dynamically predicted, correct direction and target.
	GoodPredicted Outcome = iota
	// GoodSurpriseNT: surprise branch guessed not-taken and resolved
	// not-taken — no penalty, not a bad outcome.
	GoodSurpriseNT
	// BadWrongDir: dynamically predicted with the wrong direction
	// (guessed taken/resolved not-taken or vice versa).
	BadWrongDir
	// BadWrongTarget: predicted taken, resolved taken, wrong target.
	BadWrongTarget
	// BadSurpriseCompulsory: bad surprise, first time the branch is seen.
	BadSurpriseCompulsory
	// BadSurpriseLatency: bad surprise because the prediction was not
	// available in time (search behind decode, or install latency).
	BadSurpriseLatency
	// BadSurpriseCapacity: bad surprise, branch seen before and not a
	// latency miss — the capacity misses the BTB2 exists to eliminate.
	BadSurpriseCapacity

	NumOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case GoodPredicted:
		return "good-predicted"
	case GoodSurpriseNT:
		return "good-surprise-nt"
	case BadWrongDir:
		return "bad-wrong-dir"
	case BadWrongTarget:
		return "bad-wrong-target"
	case BadSurpriseCompulsory:
		return "bad-surprise-compulsory"
	case BadSurpriseLatency:
		return "bad-surprise-latency"
	case BadSurpriseCapacity:
		return "bad-surprise-capacity"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// MetricName returns the registry counter name under which the engine
// publishes this outcome, e.g. "engine_outcome_bad_wrong_dir_total".
func (o Outcome) MetricName() string {
	return "engine_outcome_" + strings.ReplaceAll(o.String(), "-", "_") + "_total"
}

// Bad reports whether the outcome incurs a penalty.
func (o Outcome) Bad() bool { return o >= BadWrongDir && o < NumOutcomes }

// Surprise reports whether the outcome came from a first-level miss.
func (o Outcome) Surprise() bool {
	return o == GoodSurpriseNT || o == BadSurpriseCompulsory ||
		o == BadSurpriseLatency || o == BadSurpriseCapacity
}

// Counts accumulates outcome tallies.
type Counts struct {
	N [NumOutcomes]int64
}

// Add records one outcome.
func (c *Counts) Add(o Outcome) { c.N[o]++ }

// Total returns the number of recorded branch outcomes.
func (c *Counts) Total() int64 {
	var t int64
	for _, n := range c.N {
		t += n
	}
	return t
}

// Bad returns the number of bad outcomes.
func (c *Counts) Bad() int64 {
	var t int64
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.Bad() {
			t += c.N[o]
		}
	}
	return t
}

// BadRate returns bad outcomes as a fraction of all outcomes (Figure 4's
// y-axis).
func (c *Counts) BadRate() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.Bad()) / float64(total)
}

// Rate returns one outcome's share of all outcomes.
func (c *Counts) Rate(o Outcome) float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.N[o]) / float64(total)
}

// Mispredicted returns the dynamically-mispredicted count (direction or
// target).
func (c *Counts) Mispredicted() int64 {
	return c.N[BadWrongDir] + c.N[BadWrongTarget]
}

// BadSurprises returns the bad-surprise count across all three classes.
func (c *Counts) BadSurprises() int64 {
	return c.N[BadSurpriseCompulsory] + c.N[BadSurpriseLatency] + c.N[BadSurpriseCapacity]
}

// Merge adds other's tallies into c.
func (c *Counts) Merge(other Counts) {
	for i := range c.N {
		c.N[i] += other.N[i]
	}
}
