package fit

import (
	"testing"

	"bulkpreload/internal/zaddr"
)

func TestNewValidation(t *testing.T) {
	if New(DefaultEntries).Entries() != 64 {
		t.Error("DefaultEntries != 64")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestTrainLookup(t *testing.T) {
	f := New(4)
	br, tgt := zaddr.Addr(0x1000), zaddr.Addr(0x2000)
	if f.Lookup(br, tgt) {
		t.Fatal("empty FIT hit")
	}
	f.Train(br, tgt)
	if !f.Lookup(br, tgt) {
		t.Fatal("trained entry missed")
	}
	st := f.Stats()
	if st.Hits != 1 || st.Installs != 1 || st.Lookups != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStaleIndexRejected(t *testing.T) {
	f := New(4)
	br := zaddr.Addr(0x1000)
	f.Train(br, 0x2000)
	// Branch now goes elsewhere: the FIT entry is stale and must not be
	// honored as an accelerated re-index.
	if f.Lookup(br, 0x3000) {
		t.Fatal("stale FIT entry honored")
	}
	if st := f.Stats(); st.Stale != 1 {
		t.Errorf("Stale = %d, want 1", st.Stale)
	}
	// Retraining fixes it in place without a second install.
	f.Train(br, 0x3000)
	if !f.Lookup(br, 0x3000) {
		t.Fatal("retrained entry missed")
	}
	if st := f.Stats(); st.Installs != 1 {
		t.Errorf("Installs = %d, want 1 (in-place retrain)", st.Installs)
	}
}

func TestLRUCapacity(t *testing.T) {
	f := New(4)
	for i := 0; i < 5; i++ {
		f.Train(zaddr.Addr(0x1000+0x100*i), 0x9000)
	}
	// Oldest (0x1000) must be evicted; the rest survive.
	if f.Lookup(0x1000, 0x9000) {
		t.Error("LRU entry survived over-capacity train")
	}
	for i := 1; i < 5; i++ {
		if !f.Lookup(zaddr.Addr(0x1000+0x100*i), 0x9000) {
			t.Errorf("entry %d evicted wrongly", i)
		}
	}
}

func TestLookupPromotes(t *testing.T) {
	f := New(2)
	f.Train(0x1000, 0x9000)
	f.Train(0x2000, 0x9000)
	// Touch 0x1000 so 0x2000 becomes LRU.
	f.Lookup(0x1000, 0x9000)
	f.Train(0x3000, 0x9000)
	if f.Lookup(0x2000, 0x9000) {
		t.Error("expected 0x2000 to be the victim")
	}
	if !f.Lookup(0x1000, 0x9000) {
		t.Error("recently used entry was evicted")
	}
}

func TestReset(t *testing.T) {
	f := New(4)
	f.Train(0x1000, 0x2000)
	f.Reset()
	if f.Lookup(0x1000, 0x2000) {
		t.Error("Reset left entries")
	}
	if st := f.Stats(); st.Installs != 0 {
		t.Error("Reset left stats")
	}
}
