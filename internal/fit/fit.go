// Package fit implements the Fast Index Table: a 64-branch
// fully-associative cache that accelerates branch-prediction re-indexing
// for a subset of BTB1 branches. When a predicted-taken branch hits in
// the FIT, the search pipeline re-indexes with the FIT-supplied index in
// cycle b2 instead of waiting for hit detection in b3, making
// back-to-back predictions possible every other cycle (Table 1).
//
// The FIT learns (branch address -> next search address) pairs from
// completed predictions; a FIT hit is only honored when the supplied
// index matches what the full BTB1 search subsequently confirms, so a
// stale entry costs nothing but the lost acceleration.
package fit

import (
	"bulkpreload/internal/obs"
	"bulkpreload/internal/zaddr"
)

// DefaultEntries is the zEC12 FIT size (a "64 branch Fast Index Table").
const DefaultEntries = 64

type entry struct {
	valid  bool
	branch zaddr.Addr // predicted-taken branch address
	next   zaddr.Addr // search address to re-index to (the branch target)
}

// Stats is a point-in-time view of the FIT counters; the canonical
// storage is the obs metrics (see RegisterMetrics).
type Stats struct {
	Lookups  int64
	Hits     int64 // branch found with a matching next-index
	Stale    int64 // branch found but the stored index was wrong
	Installs int64
}

// metrics is the FIT's registry-backed counter set.
type metrics struct {
	lookups  obs.Counter
	hits     obs.Counter
	stale    obs.Counter
	installs obs.Counter
}

// Table is the fast index table: fully associative with true LRU.
type Table struct {
	entries []entry
	// lru[i] is the slot index at recency rank i (0 = MRU).
	lru []int
	met metrics
}

// New builds a FIT with n entries.
func New(n int) *Table {
	if n <= 0 {
		panic("fit: entries must be positive")
	}
	t := &Table{entries: make([]entry, n), lru: make([]int, n)}
	for i := range t.lru {
		t.lru[i] = i
	}
	return t
}

// Entries returns the table size.
func (t *Table) Entries() int { return len(t.entries) }

// Stats returns a view of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:  t.met.lookups.Value(),
		Hits:     t.met.hits.Value(),
		Stale:    t.met.stale.Value(),
		Installs: t.met.installs.Value(),
	}
}

// RegisterMetrics enumerates the FIT counters (plus a computed occupancy
// gauge) into r under the given prefix, e.g. "fit_".
func (t *Table) RegisterMetrics(r *obs.Registry, prefix string) {
	r.Counter(prefix+"lookups_total", "lookups", "accelerated re-index probes", &t.met.lookups)
	r.Counter(prefix+"hits_total", "lookups", "probes confirmed by the full BTB1 search", &t.met.hits)
	r.Counter(prefix+"stale_total", "lookups", "probes whose stored index was wrong", &t.met.stale)
	r.Counter(prefix+"installs_total", "entries", "new entries written", &t.met.installs)
	r.GaugeFunc(prefix+"occupancy_entries", "entries", "valid entries currently resident",
		func() int64 { return int64(t.CountValid()) })
}

// CountValid returns the number of valid entries.
func (t *Table) CountValid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// Lookup checks whether the taken branch at addr has a FIT entry whose
// stored re-index address equals next. Only such confirmed hits earn the
// accelerated 2-cycle re-index; mismatches are counted as stale.
//
//zbp:hotpath
func (t *Table) Lookup(addr, next zaddr.Addr) bool {
	t.met.lookups.Inc()
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.branch == addr {
			if e.next == next {
				t.met.hits.Inc()
				t.promote(i)
				return true
			}
			t.met.stale.Inc()
			return false
		}
	}
	return false
}

// Train records that the taken branch at addr redirected the search to
// next, installing or refreshing its FIT entry.
//
//zbp:hotpath
func (t *Table) Train(addr, next zaddr.Addr) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.branch == addr {
			e.next = next
			t.promote(i)
			return
		}
	}
	victim := t.lru[len(t.lru)-1]
	t.entries[victim] = entry{valid: true, branch: addr, next: next}
	t.met.installs.Inc()
	t.promote(victim)
}

// promote moves slot to MRU.
//
//zbp:hotpath
func (t *Table) promote(slot int) {
	pos := 0
	for ; pos < len(t.lru); pos++ {
		if t.lru[pos] == slot {
			break
		}
	}
	copy(t.lru[1:pos+1], t.lru[0:pos])
	t.lru[0] = slot
}

// Reset invalidates every entry.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	for i := range t.lru {
		t.lru[i] = i
	}
	t.met = metrics{}
}
