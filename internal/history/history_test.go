package history

import (
	"testing"
	"testing/quick"

	"bulkpreload/internal/zaddr"
)

func TestRecordPredictionDirs(t *testing.T) {
	var h History
	// taken, not-taken, taken => dirs = 0b101
	h.RecordPrediction(0x1000, true)
	h.RecordPrediction(0x1004, false)
	h.RecordPrediction(0x1008, true)
	if h.DirBits() != 0b101 {
		t.Errorf("DirBits = %b, want 101", h.DirBits())
	}
	if h.TakenDepthUsed() != 2 {
		t.Errorf("TakenDepthUsed = %d, want 2", h.TakenDepthUsed())
	}
}

func TestDirHistoryDepthLimit(t *testing.T) {
	var h History
	for i := 0; i < 100; i++ {
		h.RecordPrediction(zaddr.Addr(i*4), true)
	}
	if h.DirBits() != (1<<DirDepth)-1 {
		t.Errorf("DirBits = %b after 100 takens", h.DirBits())
	}
	if h.TakenDepthUsed() != TakenAddrDepth {
		t.Errorf("TakenDepthUsed = %d, want %d", h.TakenDepthUsed(), TakenAddrDepth)
	}
}

func TestSnapshotRestore(t *testing.T) {
	var h History
	h.RecordPrediction(0x100, true)
	h.RecordPrediction(0x200, true)
	snap := h.Snapshot()
	idxBefore := h.PHTIndex(0x300, 4096)
	ctbBefore := h.CTBIndex(0x300, 2048)
	h.RecordPrediction(0x400, false)
	h.RecordPrediction(0x500, true)
	h.Restore(snap)
	if h.PHTIndex(0x300, 4096) != idxBefore {
		t.Error("PHT index changed across Snapshot/Restore")
	}
	if h.CTBIndex(0x300, 2048) != ctbBefore {
		t.Error("CTB index changed across Snapshot/Restore")
	}
}

func TestReset(t *testing.T) {
	var h History
	h.RecordPrediction(0x100, true)
	h.Reset()
	if h.DirBits() != 0 || h.TakenDepthUsed() != 0 {
		t.Error("Reset left state")
	}
}

func TestIndexInRangeProperty(t *testing.T) {
	f := func(seed uint32, addrRaw uint64) bool {
		var h History
		for i := 0; i < int(seed%40); i++ {
			h.RecordPrediction(zaddr.Addr((uint64(seed)*31+uint64(i)*8)&^1), i%3 != 0)
		}
		addr := zaddr.Addr(addrRaw &^ 1)
		p := h.PHTIndex(addr, 4096)
		c := h.CTBIndex(addr, 2048)
		return p >= 0 && p < 4096 && c >= 0 && c < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathSensitivity(t *testing.T) {
	// Two different paths to the same branch should (almost always) index
	// differently; that is the whole point of path history.
	var h1, h2 History
	h1.RecordPrediction(0x1000, true)
	h1.RecordPrediction(0x2000, true)
	h2.RecordPrediction(0x3000, true)
	h2.RecordPrediction(0x4000, true)
	branch := zaddr.Addr(0x5000)
	if h1.PHTIndex(branch, 4096) == h2.PHTIndex(branch, 4096) &&
		h1.CTBIndex(branch, 2048) == h2.CTBIndex(branch, 2048) {
		t.Error("different paths hash identically in both tables (suspicious)")
	}
}

func TestDirectionSensitivity(t *testing.T) {
	// Same taken addresses, different direction pattern => different PHT
	// index (directions are part of the PHT index only).
	var h1, h2 History
	h1.RecordPrediction(0x1000, true)
	h1.RecordPrediction(0x2000, false)
	h1.RecordPrediction(0x2004, false)
	h2.RecordPrediction(0x1000, true)
	h2.RecordPrediction(0x2000, false)
	h2.RecordPrediction(0x2004, false)
	h2.RecordPrediction(0x2008, false) // one extra not-taken
	branch := zaddr.Addr(0x5000)
	if h1.PHTIndex(branch, 4096) == h2.PHTIndex(branch, 4096) {
		t.Error("PHT index ignores direction history")
	}
	// CTB index must be unchanged by extra not-taken predictions.
	if h1.CTBIndex(branch, 2048) != h2.CTBIndex(branch, 2048) {
		t.Error("CTB index depends on not-taken predictions; it must not")
	}
}

func TestPathOrderMatters(t *testing.T) {
	// A->B and B->A paths must index differently (rotation by age).
	var h1, h2 History
	h1.RecordPrediction(0x1000, true)
	h1.RecordPrediction(0x2000, true)
	h2.RecordPrediction(0x2000, true)
	h2.RecordPrediction(0x1000, true)
	branch := zaddr.Addr(0x5000)
	if h1.CTBIndex(branch, 2048) == h2.CTBIndex(branch, 2048) {
		t.Error("CTB index is order-insensitive; paths A,B and B,A collide")
	}
}

func TestLog2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two table size")
		}
	}()
	var h History
	h.PHTIndex(0, 1000)
}

func TestDeterminism(t *testing.T) {
	build := func() *History {
		var h History
		for i := 0; i < 30; i++ {
			h.RecordPrediction(zaddr.Addr(0x1000+8*i), i%2 == 0)
		}
		return &h
	}
	a, b := build(), build()
	for _, addr := range []zaddr.Addr{0x10, 0x5000, 0xABCDE0} {
		if a.PHTIndex(addr, 4096) != b.PHTIndex(addr, 4096) {
			t.Fatal("PHTIndex nondeterministic")
		}
		if a.CTBIndex(addr, 2048) != b.CTBIndex(addr, 2048) {
			t.Fatal("CTBIndex nondeterministic")
		}
	}
}
