// Package history maintains the global prediction-path history registers
// shared by the PHT and CTB. Per the paper, the PHT is "indexed based on
// the direction of the 12 previous predicted branches and the instruction
// addresses of the 6 previous taken branches" and the CTB "based on the
// instruction addresses of the 12 previous taken branches".
//
// Histories are updated speculatively at prediction time; Snapshot and
// Restore support repairing them when a misprediction restarts the search
// pipeline.
package history

import "bulkpreload/internal/zaddr"

// Depth constants from the paper.
const (
	DirDepth       = 12 // predicted directions folded into the PHT index
	TakenAddrDepth = 12 // taken-branch addresses retained (CTB uses all 12, PHT the newest 6)
	PHTAddrDepth   = 6  // taken-branch addresses folded into the PHT index
)

// History is the global path history. The zero value is an empty history.
type History struct {
	// dirs holds the last DirDepth predicted directions; bit 0 is the
	// most recent.
	dirs uint16
	// taken is a ring of the last TakenAddrDepth taken-branch addresses;
	// head points at the most recent entry.
	taken [TakenAddrDepth]zaddr.Addr
	head  int
	count int // number of valid taken entries, saturates at TakenAddrDepth
}

// Snapshot is an immutable copy of a History, used to repair state after
// a pipeline restart.
type Snapshot struct{ h History }

// RecordPrediction shifts a predicted direction into the history; for
// taken predictions the branch's instruction address is also recorded.
//
//zbp:hotpath
func (h *History) RecordPrediction(addr zaddr.Addr, taken bool) {
	h.dirs <<= 1
	if taken {
		h.dirs |= 1
	}
	h.dirs &= (1 << DirDepth) - 1
	if taken {
		h.head = (h.head + 1) % TakenAddrDepth
		h.taken[h.head] = addr
		if h.count < TakenAddrDepth {
			h.count++
		}
	}
}

// Snapshot captures the current state.
func (h *History) Snapshot() Snapshot { return Snapshot{h: *h} }

// Restore rewinds the history to a prior snapshot.
func (h *History) Restore(s Snapshot) { *h = s.h }

// State is the serializable (exported-field) mirror of a History, used
// by checkpoint encoding where Snapshot's unexported field cannot go.
type State struct {
	Dirs  uint16
	Taken [TakenAddrDepth]zaddr.Addr
	Head  int
	Count int
}

// State returns the current state in serializable form.
func (h *History) State() State {
	return State{Dirs: h.dirs, Taken: h.taken, Head: h.head, Count: h.count}
}

// RestoreState overwrites the history with a previously captured State.
func (h *History) RestoreState(s State) {
	h.dirs = s.Dirs
	h.taken = s.Taken
	h.head = s.Head
	h.count = s.Count
}

// Reset clears all history.
func (h *History) Reset() { *h = History{} }

// fold XOR-folds a 64-bit value down to width bits.
//
//zbp:hotpath
func fold(v uint64, width uint) uint64 {
	var out uint64
	for v != 0 {
		out ^= v & ((1 << width) - 1)
		v >>= width
	}
	return out
}

// recentTaken returns the i-th most recent taken address (i = 0 is the
// newest); ok is false when fewer than i+1 taken branches have occurred.
//
//zbp:hotpath
func (h *History) recentTaken(i int) (zaddr.Addr, bool) {
	if i >= h.count {
		return 0, false
	}
	idx := (h.head - i + TakenAddrDepth) % TakenAddrDepth
	return h.taken[idx], true
}

// PHTIndex computes the PHT congruence class for the branch at addr in a
// table of the given size (power of two). The index mixes the branch
// address with the 12-direction history and the 6 most recent
// taken-branch addresses, each rotated by age so that path order matters.
//
//zbp:hotpath
func (h *History) PHTIndex(addr zaddr.Addr, entries int) int {
	width := log2(entries)
	v := fold(zaddr.Halfword(addr), width) ^ uint64(h.dirs)
	for i := 0; i < PHTAddrDepth; i++ {
		a, ok := h.recentTaken(i)
		if !ok {
			break
		}
		v ^= rotl(fold(zaddr.Halfword(a), width), uint(i+1), width)
	}
	return int(v & uint64(entries-1))
}

// CTBIndex computes the CTB congruence class for the branch at addr: the
// path of the 12 previous taken-branch addresses, mixed with the branch
// address.
//
//zbp:hotpath
func (h *History) CTBIndex(addr zaddr.Addr, entries int) int {
	width := log2(entries)
	v := fold(zaddr.Halfword(addr), width)
	for i := 0; i < TakenAddrDepth; i++ {
		a, ok := h.recentTaken(i)
		if !ok {
			break
		}
		v ^= rotl(fold(zaddr.Halfword(a), width), uint(i+1), width)
	}
	return int(v & uint64(entries-1))
}

// DirBits returns the raw direction history register (diagnostics/tests).
func (h *History) DirBits() uint16 { return h.dirs }

// TakenDepthUsed returns how many taken addresses are currently recorded.
func (h *History) TakenDepthUsed() int { return h.count }

//zbp:hotpath
func rotl(v uint64, by, width uint) uint64 {
	by %= width
	mask := uint64(1)<<width - 1
	return ((v << by) | (v >> (width - by))) & mask
}

func log2(n int) uint {
	if n <= 0 || n&(n-1) != 0 {
		panic("history: table size must be a positive power of two")
	}
	var w uint
	for n > 1 {
		n >>= 1
		w++
	}
	return w
}
