// Package report renders the experiment outputs as text tables and
// ASCII bar charts mirroring the paper's tables and figures. All
// formatters write to an io.Writer so the binaries and EXPERIMENTS.md
// generation share one code path.
package report

import (
	"fmt"
	"io"
	"strings"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
)

// bar renders a horizontal bar of width proportional to v/max (max
// chars wide at cap).
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Figure2 renders the per-trace CPI-improvement chart: bottom bars are
// the BTB2 benefit, top bars the unrealistically-large-BTB1 benefit, and
// the right column the BTB2 effectiveness ratio — the layout of the
// paper's Figure 2.
func Figure2(w io.Writer, cs []sim.Comparison) {
	fmt.Fprintln(w, "Figure 2. CPI improvement vs configuration 1 (no BTB2)")
	fmt.Fprintln(w, "  (top bar: 24k BTB1 / config 3; bottom bar: BTB2 / config 2)")
	max := 0.0
	for _, c := range cs {
		if li := c.LargeImprovement(); li > max {
			max = li
		}
		if bi := c.BTB2Improvement(); bi > max {
			max = bi
		}
	}
	for _, c := range cs {
		fmt.Fprintf(w, "  %-26s large %6.2f%% |%-30s|\n",
			c.Trace, c.LargeImprovement(), bar(c.LargeImprovement(), max, 30))
		fmt.Fprintf(w, "  %-26s btb2  %6.2f%% |%-30s| effectiveness %5.1f%%\n",
			"", c.BTB2Improvement(), bar(c.BTB2Improvement(), max, 30), c.Effectiveness())
	}
	fmt.Fprintf(w, "  AVERAGE: btb2 %.2f%%, effectiveness %.1f%%\n",
		sim.AverageBTB2Improvement(cs), sim.AverageEffectiveness(cs))
}

// Figure3 renders the hardware-mode comparison: simulation-mode gain vs
// finite-L2 "hardware" gain for single-core WASDB+CBW2 and the 4-core
// Web CICS/DB2 aggregate.
func Figure3(w io.Writer, rows []sim.HardwareResult) {
	fmt.Fprintln(w, "Figure 3. Benefit of BTB2, simulation mode vs hardware mode")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s sim %6.2f%%   hardware %6.2f%%\n", r.Name, r.SimGain, r.HardwareGain)
	}
}

// Figure4 renders the bad-branch-outcome breakdown for one trace under
// two configurations (the paper's DayTrader DBServ chart).
func Figure4(w io.Writer, trace string, without, with engine.Result) {
	fmt.Fprintf(w, "Figure 4. Bad branch outcomes on %s (%% of all branch outcomes)\n", trace)
	row := func(tag string, r engine.Result) {
		o := &r.Outcomes
		fmt.Fprintf(w, "  %-10s total bad %5.1f%% = mispredict %4.1f%% (dir %4.1f%%, tgt %4.1f%%)"+
			" + surprise %5.1f%% (compulsory %4.1f%%, latency %4.1f%%, capacity %4.1f%%)\n",
			tag, 100*o.BadRate(),
			100*(o.Rate(stats.BadWrongDir)+o.Rate(stats.BadWrongTarget)),
			100*o.Rate(stats.BadWrongDir), 100*o.Rate(stats.BadWrongTarget),
			100*(o.Rate(stats.BadSurpriseCompulsory)+o.Rate(stats.BadSurpriseLatency)+o.Rate(stats.BadSurpriseCapacity)),
			100*o.Rate(stats.BadSurpriseCompulsory), 100*o.Rate(stats.BadSurpriseLatency),
			100*o.Rate(stats.BadSurpriseCapacity))
	}
	row("no BTB2", without)
	row("BTB2", with)
}

// Sweep renders a Figure 5/6/7-style parameter sweep; the shipping
// configuration is marked with an asterisk (the paper uses stripes).
func Sweep(w io.Writer, title string, pts []sim.SweepPoint) {
	fmt.Fprintln(w, title)
	max := 0.0
	for _, p := range pts {
		if p.Improvement > max {
			max = p.Improvement
		}
	}
	for _, p := range pts {
		mark := " "
		if p.Shipping {
			mark = "*"
		}
		fmt.Fprintf(w, "  %s %-22s %6.2f%% |%-30s|\n", mark, p.Label, p.Improvement,
			bar(p.Improvement, max, 30))
	}
}

// Table4 renders the trace-footprint table: paper targets vs measured
// values from the synthetic generators.
func Table4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4. Large footprint traces (paper target vs generated)")
	fmt.Fprintf(w, "  %-26s %12s %12s %12s %12s\n",
		"trace", "uniq(paper)", "uniq(gen)", "taken(paper)", "taken(gen)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s %12d %12d %12d %12d\n",
			r.Name, r.PaperUnique, r.GenUnique, r.PaperTaken, r.GenTaken)
	}
}

// Table4Row pairs the paper's Table 4 targets with measured values.
type Table4Row struct {
	Name        string
	PaperUnique int
	GenUnique   int
	PaperTaken  int
	GenTaken    int
}

// MeasureTable4Row builds a Table4Row from a trace source and its paper
// targets.
func MeasureTable4Row(name string, paperUnique, paperTaken int, src trace.Source) Table4Row {
	st := trace.Measure(src)
	return Table4Row{
		Name:        name,
		PaperUnique: paperUnique,
		GenUnique:   st.UniqueBranches,
		PaperTaken:  paperTaken,
		GenTaken:    st.UniqueTaken,
	}
}

// Ablations renders the design-choice study.
func Ablations(w io.Writer, abs []sim.Ablation) {
	fmt.Fprintln(w, "Ablations. Average CPI improvement vs configuration 1")
	max := 0.0
	for _, a := range abs {
		if a.Improvement > max {
			max = a.Improvement
		}
	}
	for _, a := range abs {
		fmt.Fprintf(w, "  %-50s %6.2f%% |%-24s|\n", a.Name, a.Improvement, bar(a.Improvement, max, 24))
	}
}

// Result renders one engine result in full detail (cmd/zsim output).
func Result(w io.Writer, r engine.Result) {
	fmt.Fprintf(w, "trace %s, configuration %s\n", r.Trace, r.Config)
	fmt.Fprintf(w, "  instructions       %12d\n", r.Instructions)
	fmt.Fprintf(w, "  cycles             %15.2f\n", r.Cycles)
	fmt.Fprintf(w, "  CPI                %15.4f\n", r.CPI())
	fmt.Fprintf(w, "  penalty cycles     mispredict %.0f, surprise %.0f, icache %.0f\n",
		r.MispredictCycles, r.SurpriseCycles, r.ICacheCycles)
	o := &r.Outcomes
	fmt.Fprintf(w, "  branch outcomes    %d total, %.2f%% bad\n", o.Total(), 100*o.BadRate())
	for i := stats.Outcome(0); i < stats.NumOutcomes; i++ {
		fmt.Fprintf(w, "    %-26s %10d (%5.2f%%)\n", i.String(), o.N[i], 100*o.Rate(i))
	}
	fmt.Fprintf(w, "  predictor          %d predictions (BTB1 %d, BTBP %d), %d promotions\n",
		r.Hier.Predictions, r.Hier.BTB1Hits, r.Hier.BTBPHits, r.Hier.Promotions)
	fmt.Fprintf(w, "  second level       %d transferred hits over %d row reads, %d BTB2 writes\n",
		r.Hier.TransferredHits, r.Hier.TransferReads, r.Hier.BTB2Writes)
	fmt.Fprintf(w, "  trackers           %d BTB1 misses, %d full / %d partial searches (%d upgraded, %d invalidated, %d dropped)\n",
		r.Tracker.BTB1Misses, r.Tracker.Full, r.Tracker.Partial,
		r.Tracker.Upgrades, r.Tracker.Invalidated, r.Tracker.Dropped)
	fmt.Fprintf(w, "  L1I                %.2f%% miss rate, %d prefetches (%d useful)\n",
		100*r.L1I.MissRate(), r.L1I.Prefetches, r.L1I.PrefetchedHits)
}
