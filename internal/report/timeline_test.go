package report

import (
	"bytes"
	"strings"
	"testing"

	"bulkpreload/internal/core"
	"bulkpreload/internal/trace"
	"bulkpreload/internal/zaddr"
)

func TestTransferTimeline(t *testing.T) {
	events := []core.Event{
		{Cycle: 100, Kind: core.EvICacheReport, Addr: 0x40010},
		{Cycle: 105, Kind: core.EvMissReport, Addr: 0x40000},
		{Cycle: 120, Kind: core.EvTransferHit, Addr: 0x40020, Aux: 0x40100},
		{Cycle: 125, Kind: core.EvTransferHit, Addr: 0x40040, Aux: 0x40200},
		{Cycle: 130, Kind: core.EvChase, Addr: 0x42000},
		// A miss in another block with no icache miss and no hits: the
		// partial-search-only story.
		{Cycle: 200, Kind: core.EvMissReport, Addr: 0x90000},
		// Unrelated event kinds are ignored.
		{Cycle: 300, Kind: core.EvPredict, Addr: 0x40020, Aux: 0x40100},
	}
	var buf bytes.Buffer
	TransferTimeline(&buf, events, 0)
	out := buf.String()
	for _, want := range []string{
		"block 0x40000", "icache-miss @100", "btb1-miss @105",
		"2 entries preloaded @120..125",
		"block 0x90000", "partial search only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q in:\n%s", want, out)
		}
	}
	// maxBlocks bounds the output.
	buf.Reset()
	TransferTimeline(&buf, events, 1)
	if strings.Contains(buf.String(), "0x90000") {
		t.Error("maxBlocks not honored")
	}
}

func TestTransferTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	TransferTimeline(&buf, nil, 0)
	if !strings.Contains(buf.String(), "no transfer activity") {
		t.Error("empty timeline message missing")
	}
}

func TestTransferTimelineEndToEnd(t *testing.T) {
	// Drive a real hierarchy and render its captured events.
	h := core.New(core.DefaultConfig())
	tr := &core.CollectTracer{}
	h.SetTracer(tr)
	for i := 0; i < 6; i++ {
		h.Resolve(takenInst(0x40000+i*200, 0x41000), nil, 0)
	}
	h.ReportBTB1Miss(0x40000, 500)
	h.ReportICacheMiss(0x40000, 500)
	h.Advance(900)
	var buf bytes.Buffer
	TransferTimeline(&buf, tr.Events, 0)
	if !strings.Contains(buf.String(), "entries preloaded") {
		t.Errorf("real transfer not rendered:\n%s", buf.String())
	}
}

// takenInst builds a taken conditional for timeline tests.
func takenInst(addr, target int) trace.Inst {
	return trace.Inst{Addr: zaddr.Addr(addr), Target: zaddr.Addr(target),
		Length: 4, Kind: trace.CondDirect, Taken: true, StaticTaken: true}
}
