package report

import (
	"fmt"
	"io"
	"sort"

	"bulkpreload/internal/core"
	"bulkpreload/internal/zaddr"
)

// blockStory collects the per-4KB-block lifecycle extracted from a
// hierarchy event trace.
type blockStory struct {
	block        uint64
	firstCycle   uint64
	missCycle    uint64
	icacheCycle  uint64
	hasMiss      bool
	hasICache    bool
	transferHits int
	firstHit     uint64
	lastHit      uint64
	chased       bool
}

// TransferTimeline renders the bulk-preload stories found in a hierarchy
// event trace: for each 4 KB block with a reported BTB1 miss, when the
// miss and the I-cache miss arrived, how many entries the transfer
// delivered and over which cycle window — the paper's Section 3.6 flow
// made visible. maxBlocks bounds the output (0 = all).
func TransferTimeline(w io.Writer, events []core.Event, maxBlocks int) {
	stories := map[uint64]*blockStory{}
	order := []uint64{}
	get := func(a zaddr.Addr, cycle uint64) *blockStory {
		b := zaddr.Block(a)
		s, ok := stories[b]
		if !ok {
			s = &blockStory{block: b, firstCycle: cycle}
			stories[b] = s
			order = append(order, b)
		}
		return s
	}
	for _, ev := range events {
		switch ev.Kind {
		case core.EvMissReport:
			s := get(ev.Addr, ev.Cycle)
			if !s.hasMiss {
				s.hasMiss = true
				s.missCycle = ev.Cycle
			}
		case core.EvICacheReport:
			s := get(ev.Addr, ev.Cycle)
			if !s.hasICache {
				s.hasICache = true
				s.icacheCycle = ev.Cycle
			}
		case core.EvTransferHit:
			s := get(ev.Addr, ev.Cycle)
			if s.transferHits == 0 {
				s.firstHit = ev.Cycle
			}
			s.transferHits++
			s.lastHit = ev.Cycle
		case core.EvChase:
			get(ev.Addr, ev.Cycle).chased = true
		}
	}

	// Only blocks with a miss story, in first-event order.
	var shown []uint64
	for _, b := range order {
		if stories[b].hasMiss || stories[b].transferHits > 0 {
			shown = append(shown, b)
		}
	}
	sort.Slice(shown, func(i, j int) bool {
		return stories[shown[i]].firstCycle < stories[shown[j]].firstCycle
	})
	if maxBlocks > 0 && len(shown) > maxBlocks {
		shown = shown[:maxBlocks]
	}

	fmt.Fprintln(w, "bulk-preload timeline (per 4 KB block)")
	for _, b := range shown {
		s := stories[b]
		fmt.Fprintf(w, "  block %#x:", b*zaddr.BlockBytes)
		if s.hasICache {
			fmt.Fprintf(w, " icache-miss @%d", s.icacheCycle)
		}
		if s.hasMiss {
			fmt.Fprintf(w, " btb1-miss @%d", s.missCycle)
		}
		switch {
		case s.transferHits > 0:
			fmt.Fprintf(w, " -> %d entries preloaded @%d..%d", s.transferHits, s.firstHit, s.lastHit)
		case s.hasMiss && !s.hasICache:
			fmt.Fprintf(w, " -> partial search only (no icache miss), nothing found")
		case s.hasMiss:
			fmt.Fprintf(w, " -> full search, nothing found")
		}
		if s.chased {
			fmt.Fprintf(w, " [chased]")
		}
		fmt.Fprintln(w)
	}
	if len(shown) == 0 {
		fmt.Fprintln(w, "  (no transfer activity in the captured events)")
	}
}
