package report

import (
	"strings"
	"testing"

	"bulkpreload/internal/obs"
	"bulkpreload/internal/stats"
)

// phaseSnap builds a synthetic interval snapshot with cumulative
// instruction/cycle totals and a flat outcome mix.
func phaseSnap(seq, insts, cycles, good, bad int64) obs.Snapshot {
	s := obs.Snapshot{Seq: seq, Values: []obs.Value{
		{Name: "engine_instructions_total", Type: obs.TypeCounter, Value: insts},
		{Name: "engine_cycles", Type: obs.TypeGauge, Value: cycles},
		{Name: stats.GoodPredicted.MetricName(), Type: obs.TypeCounter, Value: good},
		{Name: stats.BadWrongDir.MetricName(), Type: obs.TypeCounter, Value: bad},
	}}
	return s
}

func TestPhaseTimeline(t *testing.T) {
	snaps := []obs.Snapshot{
		phaseSnap(1, 1000, 1100, 90, 10),
		phaseSnap(2, 2000, 2100, 190, 20), // second phase: 1000 insts, 1000 cycles
		phaseSnap(3, 2000, 2100, 190, 20), // end-of-run duplicate: zero delta, skipped
	}
	var sb strings.Builder
	PhaseTimeline(&sb, snaps)
	out := sb.String()
	if got := PhaseCount(snaps); got != 2 {
		t.Errorf("PhaseCount = %d, want 2 (zero-delta snapshot skipped)", got)
	}
	if !strings.Contains(out, "1.1000") {
		t.Errorf("phase 1 CPI (1100/1000) missing:\n%s", out)
	}
	if !strings.Contains(out, "1.0000") {
		t.Errorf("phase 2 CPI (1000/1000) missing:\n%s", out)
	}
	// The duplicate end-of-run snapshot must not render a row: the table
	// lines are the header plus two phases.
	if lines := strings.Count(out, "│"); lines != 3 {
		t.Errorf("got %d table lines, want header + 2 phases:\n%s", lines, out)
	}
	// Phase 1 bad share: 10 bad of 100 outcomes.
	if !strings.Contains(out, "10.0%") {
		t.Errorf("bad%% column missing:\n%s", out)
	}
}

func TestPhaseTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	PhaseTimeline(&sb, nil)
	if !strings.Contains(sb.String(), "no snapshots") {
		t.Errorf("empty timeline message missing: %q", sb.String())
	}
	if PhaseCount(nil) != 0 {
		t.Error("PhaseCount(nil) != 0")
	}
}

func TestPhaseTimelineNoBranches(t *testing.T) {
	// Instructions advanced but no branch outcomes: the row renders with
	// a placeholder mix instead of dividing by zero.
	snaps := []obs.Snapshot{phaseSnap(1, 500, 600, 0, 0)}
	var sb strings.Builder
	PhaseTimeline(&sb, snaps)
	if !strings.Contains(sb.String(), "(no branches)") {
		t.Errorf("zero-branch phase not handled:\n%s", sb.String())
	}
}
