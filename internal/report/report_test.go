package report

import (
	"bytes"
	"strings"
	"testing"

	"bulkpreload/internal/engine"
	"bulkpreload/internal/sim"
	"bulkpreload/internal/stats"
	"bulkpreload/internal/trace"
)

func sampleResult(cycles float64) engine.Result {
	r := engine.Result{
		Trace:        "sample",
		Config:       "btb2",
		Instructions: 1000,
		Cycles:       cycles,
	}
	r.Outcomes.N[stats.GoodPredicted] = 150
	r.Outcomes.N[stats.GoodSurpriseNT] = 40
	r.Outcomes.N[stats.BadWrongDir] = 6
	r.Outcomes.N[stats.BadSurpriseCapacity] = 20
	return r
}

func sampleComparison() sim.Comparison {
	return sim.Comparison{
		Trace:     "sample",
		Base:      sampleResult(2000),
		BTB2:      sampleResult(1800),
		LargeBTB1: sampleResult(1700),
	}
}

func TestFigure2Rendering(t *testing.T) {
	var buf bytes.Buffer
	Figure2(&buf, []sim.Comparison{sampleComparison()})
	out := buf.String()
	for _, want := range []string{"Figure 2", "sample", "effectiveness", "AVERAGE"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// 10% and 15% improvements must appear.
	if !strings.Contains(out, "10.00%") || !strings.Contains(out, "15.00%") {
		t.Errorf("improvements not rendered:\n%s", out)
	}
}

func TestFigure3Rendering(t *testing.T) {
	var buf bytes.Buffer
	Figure3(&buf, []sim.HardwareResult{
		{Name: "WASDB+CBW2 (1 core)", Cores: 1, SimGain: 8.5, HardwareGain: 5.3},
	})
	out := buf.String()
	if !strings.Contains(out, "8.50%") || !strings.Contains(out, "5.30%") {
		t.Errorf("gains not rendered:\n%s", out)
	}
}

func TestFigure4Rendering(t *testing.T) {
	var buf bytes.Buffer
	Figure4(&buf, "sample", sampleResult(2000), sampleResult(1800))
	out := buf.String()
	for _, want := range []string{"Figure 4", "capacity", "compulsory", "latency", "no BTB2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSweepRendering(t *testing.T) {
	var buf bytes.Buffer
	Sweep(&buf, "Test sweep", []sim.SweepPoint{
		{Label: "a", Improvement: 1.0},
		{Label: "b", Improvement: 2.0, Shipping: true},
	})
	out := buf.String()
	if !strings.Contains(out, "* b") {
		t.Errorf("shipping marker missing:\n%s", out)
	}
	// The larger value gets the longer bar.
	linesOut := strings.Split(strings.TrimSpace(out), "\n")
	if len(linesOut) != 3 {
		t.Fatalf("lines = %d", len(linesOut))
	}
	if strings.Count(linesOut[2], "#") <= strings.Count(linesOut[1], "#") {
		t.Error("bars not proportional")
	}
}

func TestTable4Rendering(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf, []Table4Row{{Name: "t", PaperUnique: 100, GenUnique: 90, PaperTaken: 70, GenTaken: 60}})
	if !strings.Contains(buf.String(), "90") {
		t.Error("row values missing")
	}
}

func TestMeasureTable4Row(t *testing.T) {
	ins := []trace.Inst{
		{Addr: 0x100, Length: 4, Kind: trace.CondDirect, Taken: true, Target: 0x200},
		{Addr: 0x200, Length: 4, Kind: trace.CondDirect, Taken: false, Target: 0x300},
	}
	row := MeasureTable4Row("x", 10, 5, trace.NewSliceSource("x", ins))
	if row.GenUnique != 2 || row.GenTaken != 1 {
		t.Errorf("row = %+v", row)
	}
}

func TestAblationsRendering(t *testing.T) {
	var buf bytes.Buffer
	Ablations(&buf, []sim.Ablation{{Name: "x", Improvement: 3.0}})
	if !strings.Contains(buf.String(), "x") {
		t.Error("ablation name missing")
	}
}

func TestResultRendering(t *testing.T) {
	var buf bytes.Buffer
	Result(&buf, sampleResult(2000))
	out := buf.String()
	for _, want := range []string{"CPI", "branch outcomes", "trackers", "L1I", "second level"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestBarClamps(t *testing.T) {
	if bar(10, 5, 10) != strings.Repeat("#", 10) {
		t.Error("bar not clamped at width")
	}
	if bar(-1, 5, 10) != "" || bar(1, 0, 10) != "" {
		t.Error("degenerate bars not empty")
	}
}
