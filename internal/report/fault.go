package report

import (
	"fmt"
	"io"

	"bulkpreload/internal/sim"
)

// FaultTable renders the soft-error degradation study: one row per
// (rate, protection) point with the CPI and accuracy hit relative to the
// fault-free run, plus the injection counters that explain it.
func FaultTable(w io.Writer, title string, pts []sim.FaultPoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %10s %-12s %8s %9s %8s %10s %9s %9s %8s\n",
		"faults/M", "protection", "CPI", "dCPI", "bad%", "injected", "detected", "recovered", "silent")
	for _, p := range pts {
		fmt.Fprintf(w, "  %10.3g %-12s %8.4f %+8.2f%% %7.2f%% %10d %9d %9d %8d\n",
			p.RatePerM, p.Protection, p.CPI, p.DeltaCPIPct, p.BadRate,
			p.Stats.Injected, p.Stats.Detected, p.Stats.Recovered, p.Stats.Silent)
	}
}
