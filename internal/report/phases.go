package report

import (
	"fmt"
	"io"
	"strings"

	"bulkpreload/internal/stats"

	"bulkpreload/internal/obs"
)

// phaseRow is the per-interval view PhaseTimeline derives from a pair of
// consecutive registry snapshots.
type phaseRow struct {
	seq          int64
	instructions int64
	cycles       int64
	outcomes     [stats.NumOutcomes]int64
	transfers    int64
	surprises    int64
}

func phaseRows(snaps []obs.Snapshot) []phaseRow {
	rows := make([]phaseRow, 0, len(snaps))
	var prev *obs.Snapshot
	for i := range snaps {
		d := snaps[i].Delta(prev)
		row := phaseRow{
			seq:          snaps[i].Seq,
			instructions: d.Counter("engine_instructions_total"),
			transfers:    d.Counter("hier_transferred_hits_total"),
			surprises:    d.Counter("hier_surprise_installs_total"),
		}
		// engine_cycles is a gauge (a clock level); delta it by hand.
		row.cycles = snaps[i].Counter("engine_cycles")
		if prev != nil {
			row.cycles -= prev.Counter("engine_cycles")
		}
		for o := stats.Outcome(0); o < stats.NumOutcomes; o++ {
			row.outcomes[o] = d.Counter(o.MetricName())
		}
		prev = &snaps[i]
		rows = append(rows, row)
	}
	return rows
}

// PhaseTimeline renders interval snapshots as a per-phase table: CPI and
// the Figure 4 outcome mix of each interval, exposing warm-up, phase
// changes, and steady state over a long simulation. Each snapshot in
// snaps closes one phase (the engine emits one every
// Params.SnapshotInterval instructions plus one at the end of the run).
func PhaseTimeline(w io.Writer, snaps []obs.Snapshot) {
	fmt.Fprintln(w, "phase timeline (per snapshot interval)")
	if len(snaps) == 0 {
		fmt.Fprintln(w, "  (no snapshots; set a snapshot interval)")
		return
	}
	fmt.Fprintf(w, "  %5s %12s %8s %7s │ %s\n",
		"phase", "insts", "CPI", "bad%", "outcome mix (good/dir/tgt/comp/lat/cap)")
	for _, r := range phaseRows(snaps) {
		if r.instructions == 0 {
			continue
		}
		total := int64(0)
		bad := int64(0)
		for o := stats.Outcome(0); o < stats.NumOutcomes; o++ {
			total += r.outcomes[o]
			if o.Bad() {
				bad += r.outcomes[o]
			}
		}
		badPct := 0.0
		if total > 0 {
			badPct = 100 * float64(bad) / float64(total)
		}
		mix := formatMix(r.outcomes, total)
		fmt.Fprintf(w, "  %5d %12d %8.4f %6.1f%% │ %s\n",
			r.seq, r.instructions,
			float64(r.cycles)/float64(r.instructions), badPct, mix)
	}
}

// mixOutcomes is the render order of the outcome-mix column: the good
// outcomes folded together, then each bad class.
var mixOutcomes = []stats.Outcome{
	stats.BadWrongDir, stats.BadWrongTarget,
	stats.BadSurpriseCompulsory, stats.BadSurpriseLatency, stats.BadSurpriseCapacity,
}

func formatMix(n [stats.NumOutcomes]int64, total int64) string {
	if total == 0 {
		return "(no branches)"
	}
	var sb strings.Builder
	good := n[stats.GoodPredicted] + n[stats.GoodSurpriseNT]
	fmt.Fprintf(&sb, "%5.1f%%", 100*float64(good)/float64(total))
	for _, o := range mixOutcomes {
		fmt.Fprintf(&sb, " %4.1f%%", 100*float64(n[o])/float64(total))
	}
	return sb.String()
}

// PhaseCount returns how many phases PhaseTimeline would render (the
// snapshots with a non-empty instruction delta).
func PhaseCount(snaps []obs.Snapshot) int {
	n := 0
	for _, r := range phaseRows(snaps) {
		if r.instructions > 0 {
			n++
		}
	}
	return n
}
