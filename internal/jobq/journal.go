// Package jobq is the crash-safe persistence core of the zsimd
// simulation service: a write-ahead journaled job queue with bounded
// depth, retry/backoff/dead-letter semantics, and per-tenant admission
// control.
//
// Durability model, in order of the guarantees the service needs:
//
//  1. An acknowledged Enqueue survives kill -9: every journal append is
//     framed (length + CRC32 + payload), written, and fsynced before
//     the call returns. The journal is append-only between restarts,
//     so a crash can only ever tear the final record.
//  2. Recovery is total: Open replays the journal, tolerating a torn
//     tail the way trace.ReadFileTolerant tolerates a truncated trace
//     — the intact prefix is recovered and the damage is reported as a
//     typed error (ErrTruncated with the byte offset) instead of a
//     refusal to start. Jobs that were running at the crash go back to
//     pending, carrying their checkpoint so the engine resumes
//     mid-trace instead of restarting.
//  3. The journal is compacted on every Open: the replayed state is
//     rewritten as one snapshot record per job (temp file, fsync,
//     rename, directory fsync — the engine checkpoint idiom), so
//     journal growth is bounded by live state, not history.
package jobq

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// bufferedReader wraps journal reads (replay is sequential and chatty).
func bufferedReader(r io.Reader) io.Reader { return bufio.NewReaderSize(r, 64<<10) }

// journalMagic identifies a jobq journal; the trailing byte is the
// format version.
const journalMagic = "ZBPJ\x01"

// frameSize is the fixed per-record frame header: a u32 little-endian
// payload length followed by the u32 CRC32 (IEEE) of the payload.
// packlayout proves the writer (appendRecord) and the reader
// (replayJournal) against this declaration, so the two framing codecs
// cannot drift apart.
//
//zbp:layout frame word:frameSize unit:byte length:0..3 crc:4..7
const frameSize = 8

// maxRecordBytes bounds one journal record. Payloads are job specs and
// results (kilobytes); anything larger is a corrupt length field, and
// refusing it keeps a flipped length bit from allocating gigabytes.
const maxRecordBytes = 16 << 20

// ErrTruncated reports a journal that ends mid-record: a crash tore the
// final append. Recovery salvages every complete record before the
// tear; errors.Is(err, ErrTruncated) identifies the condition and the
// wrapping error carries the byte offset where the intact prefix ends.
var ErrTruncated = errors.New("jobq: truncated journal")

// ErrCorrupt reports a record whose checksum does not match its
// payload — bit rot or an interleaved write, not a clean tear. The
// intact prefix is still salvaged.
var ErrCorrupt = errors.New("jobq: corrupt journal record")

// op enumerates journal record types. Values are part of the on-disk
// format.
const (
	opEnqueue    = "enqueue"    // a new job entered the queue
	opStart      = "start"      // a worker began (or re-began) the job
	opCheckpoint = "checkpoint" // a ZBPC checkpoint for the job reached disk
	opDone       = "done"       // the job finished; payload carries the result
	opFail       = "fail"       // an attempt failed; job returns to pending
	opDead       = "dead"       // attempts exhausted; job is dead-lettered
	opRelease    = "release"    // a graceful shutdown returned the job to pending
	opSnapshot   = "job"        // compaction: one job's full current state
)

// record is one journal entry. Exactly the fields the op needs are set.
type record struct {
	Op string `json:"op"`
	ID string `json:"id,omitempty"`

	// Enqueue fields.
	Tenant  string          `json:"tenant,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Seq     int64           `json:"seq,omitempty"`

	Attempt      int             `json:"attempt,omitempty"`      // start/fail
	Instructions int64           `json:"instructions,omitempty"` // checkpoint
	Error        string          `json:"error,omitempty"`        // fail/dead
	Result       json.RawMessage `json:"result,omitempty"`       // done

	// Snapshot (compaction) payload: the job's full state.
	Job *Job `json:"job,omitempty"`
}

// appendRecord frames and writes one record: u32 little-endian payload
// length, u32 CRC32 (IEEE) of the payload, payload bytes. The caller
// owns syncing.
//
//zbp:layout frame pack
func appendRecord(w io.Writer, rec *record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobq: encoding %s record: %w", rec.Op, err)
	}
	var hdr [frameSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("jobq: writing record header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("jobq: writing record payload: %w", err)
	}
	return nil
}

// replayJournal reads a journal stream and applies every intact record
// to a fresh queue state. It mirrors trace.ReadFileTolerant: the intact
// prefix always comes back, and damage is reported as a typed error —
// ErrTruncated for a clean tear at the tail, ErrCorrupt for a checksum
// mismatch — wrapped with the byte offset where salvage stopped. A
// journal missing its magic header entirely is rejected (that is a
// wrong file, not a torn one).
//
//zbp:layout frame unpack
func replayJournal(r io.Reader) (*state, int64, error) {
	hdr := make([]byte, len(journalMagic))
	if n, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Even the magic was torn — salvage is the empty queue.
			return newState(), 0, fmt.Errorf("jobq: journal header torn after %d bytes: %w", n, ErrTruncated)
		}
		return nil, 0, fmt.Errorf("jobq: reading journal header: %w", err)
	}
	if string(hdr) != journalMagic {
		return nil, 0, fmt.Errorf("jobq: not a job journal (bad magic %q)", hdr)
	}

	st := newState()
	off := int64(len(journalMagic))
	var frame [frameSize]byte
	//zbp:bounded terminates when the journal stream hits EOF or a damaged record
	for {
		if n, err := io.ReadFull(r, frame[:]); err != nil {
			if errors.Is(err, io.EOF) && n == 0 {
				return st, off, nil // clean end
			}
			return st, off, fmt.Errorf("jobq: record header torn at offset %d: %w", off, ErrTruncated)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > maxRecordBytes {
			return st, off, fmt.Errorf("jobq: record at offset %d claims %d bytes (max %d): %w",
				off, length, maxRecordBytes, ErrCorrupt)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return st, off, fmt.Errorf("jobq: record payload torn at offset %d: %w", off, ErrTruncated)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return st, off, fmt.Errorf("jobq: checksum mismatch at offset %d: %w", off, ErrCorrupt)
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return st, off, fmt.Errorf("jobq: undecodable record at offset %d: %v: %w", off, err, ErrCorrupt)
		}
		if err := st.apply(&rec); err != nil {
			return st, off, fmt.Errorf("jobq: record at offset %d: %v: %w", off, err, ErrCorrupt)
		}
		off += frameSize + int64(length)
	}
}

// state is the in-memory queue image a journal replay produces.
type state struct {
	jobs    map[string]*Job
	order   []string // IDs in first-appearance order (stable scheduling)
	nextSeq int64
}

func newState() *state {
	return &state{jobs: make(map[string]*Job), nextSeq: 1}
}

// apply folds one journal record into the state. Errors mean the
// journal semantics are violated (e.g. a start for an unknown job) —
// corruption that passed the checksum, or a format bug.
func (st *state) apply(rec *record) error {
	switch rec.Op {
	case opEnqueue:
		if rec.ID == "" {
			return errors.New("enqueue without id")
		}
		if _, dup := st.jobs[rec.ID]; dup {
			return fmt.Errorf("duplicate enqueue %q", rec.ID)
		}
		st.jobs[rec.ID] = &Job{
			ID: rec.ID, Tenant: rec.Tenant, Payload: rec.Payload,
			Seq: rec.Seq, State: StatePending,
		}
		st.order = append(st.order, rec.ID)
		if rec.Seq >= st.nextSeq {
			st.nextSeq = rec.Seq + 1
		}
	case opSnapshot:
		if rec.Job == nil || rec.Job.ID == "" {
			return errors.New("snapshot without job")
		}
		if _, dup := st.jobs[rec.Job.ID]; dup {
			return fmt.Errorf("duplicate snapshot %q", rec.Job.ID)
		}
		j := *rec.Job
		st.jobs[j.ID] = &j
		st.order = append(st.order, j.ID)
		if j.Seq >= st.nextSeq {
			st.nextSeq = j.Seq + 1
		}
	case opStart:
		j, err := st.lookup(rec)
		if err != nil {
			return err
		}
		j.State = StateRunning
		j.Attempt = rec.Attempt
	case opCheckpoint:
		j, err := st.lookup(rec)
		if err != nil {
			return err
		}
		j.CheckpointAt = rec.Instructions
	case opDone:
		j, err := st.lookup(rec)
		if err != nil {
			return err
		}
		j.State = StateDone
		j.Result = rec.Result
		j.Error = ""
	case opFail:
		j, err := st.lookup(rec)
		if err != nil {
			return err
		}
		j.State = StatePending
		j.Attempt = rec.Attempt
		j.Error = rec.Error
	case opDead:
		j, err := st.lookup(rec)
		if err != nil {
			return err
		}
		j.State = StateDead
		j.Error = rec.Error
	case opRelease:
		j, err := st.lookup(rec)
		if err != nil {
			return err
		}
		j.State = StatePending
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

func (st *state) lookup(rec *record) (*Job, error) {
	j, ok := st.jobs[rec.ID]
	if !ok {
		return nil, fmt.Errorf("%s for unknown job %q", rec.Op, rec.ID)
	}
	return j, nil
}

// writeCompacted writes the state as a fresh journal at path via the
// atomic temp+fsync+rename+dirsync sequence. Each live job becomes one
// snapshot record, in first-appearance order.
//
//zbp:durable
func writeCompacted(path string, st *state) error {
	dir, base := splitPath(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("jobq: creating compaction temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := io.WriteString(f, journalMagic); err != nil {
		return fail(fmt.Errorf("jobq: writing journal header: %w", err))
	}
	for _, id := range st.order {
		j := *st.jobs[id]
		if err := appendRecord(f, &record{Op: opSnapshot, Job: &j}); err != nil {
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("jobq: syncing compacted journal: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobq: closing compacted journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobq: installing compacted journal: %w", err)
	}
	return syncDir(dir)
}

func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i], path[i+1:]
		}
	}
	return ".", path
}

// syncDir makes renamed/created directory entries durable (see
// engine.SyncDir; duplicated here so jobq does not pull in the engine).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobq: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("jobq: syncing directory %s: %w", dir, err)
	}
	return nil
}
