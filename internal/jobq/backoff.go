package jobq

import (
	"hash/fnv"
	"math"
	"sync"
	"time"
)

// Backoff is the retry delay policy: capped exponential growth with
// deterministic jitter. Jitter is a pure function of (job ID, attempt)
// — a splitmix64 finalizer over an FNV-1a hash, the seed-derivation
// idiom internal/fault uses — so the load testbed can predict every
// retry schedule exactly while distinct jobs still decorrelate.
type Backoff struct {
	Base   time.Duration // delay after the first failure (default 100ms)
	Cap    time.Duration // upper bound on any delay (default 30s)
	Factor float64       // growth per attempt (default 2)
}

// DefaultBackoff is the service's retry policy.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Cap: 30 * time.Second, Factor: 2}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Cap <= 0 {
		b.Cap = DefaultBackoff.Cap
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoff.Factor
	}
	return b
}

// Delay returns the backoff before retrying the given failed attempt
// (attempt counts from 1). The raw exponential delay is scaled by a
// jitter factor in [0.5, 1.0) to decorrelate retry storms.
func (b Backoff) Delay(jobID string, attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt-1))
	if d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	j := 0.5 + 0.5*jitter01(jobID, attempt)
	return time.Duration(d * j)
}

// jitter01 maps (id, attempt) to a deterministic value in [0, 1).
func jitter01(id string, attempt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	x := h.Sum64() ^ (uint64(attempt) * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// TokenBucket is one tenant's admission rate limiter: Rate tokens per
// second refill up to Burst. Not safe for concurrent use on its own —
// TenantLimiter serializes access.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   int64 // unix nanos of the last refill
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate float64, burst int, now int64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// Take attempts to consume one token at the given time. On refusal it
// reports how long until a token will be available — the Retry-After
// the admission layer hands back with the 429.
func (tb *TokenBucket) Take(now int64) (ok bool, retryAfter time.Duration) {
	if now > tb.last {
		tb.tokens += tb.rate * float64(now-tb.last) / float64(time.Second)
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	if tb.rate <= 0 {
		return false, time.Hour // effectively never
	}
	need := 1 - tb.tokens
	return false, time.Duration(need / tb.rate * float64(time.Second))
}

// TenantLimiter hands each tenant an independent token bucket.
type TenantLimiter struct {
	mu    sync.Mutex
	rate  float64
	burst int
	now   func() time.Time
	// buckets lazily materializes one bucket per tenant.
	//
	//zbp:guardedby mu
	buckets map[string]*TokenBucket
}

// NewTenantLimiter builds a limiter giving every tenant rate
// requests/sec with the given burst. rate <= 0 disables limiting
// (every Allow succeeds). now nil means time.Now.
func NewTenantLimiter(rate float64, burst int, now func() time.Time) *TenantLimiter {
	if now == nil {
		now = time.Now
	}
	return &TenantLimiter{rate: rate, burst: burst, now: now, buckets: make(map[string]*TokenBucket)}
}

// Allow consumes one admission token for the tenant, reporting the
// Retry-After delay on refusal.
func (l *TenantLimiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now().UnixNano()
	tb, found := l.buckets[tenant]
	if !found {
		tb = NewTokenBucket(l.rate, l.burst, now)
		l.buckets[tenant] = tb
	}
	return tb.Take(now)
}
