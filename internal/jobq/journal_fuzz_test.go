package jobq

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the journal replayer. The
// contract under fuzzing: never panic, never loop, and classify every
// input as clean, truncated (ErrTruncated), corrupt (ErrCorrupt), or
// not-a-journal — with the salvage offset inside the input. Wired into
// the CI fuzz smoke job next to the trace-reader fuzzers.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a real journal, its truncations, and a corruption.
	dir := f.TempDir()
	q, _, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	j, _ := q.Enqueue("fuzz", json.RawMessage(`{"trace":"tpf-airline","instructions":1000}`))
	if _, err := q.Next(context.Background()); err != nil {
		f.Fatal(err)
	}
	q.MarkCheckpoint(j.ID, 512)
	q.Done(j.ID, json.RawMessage(`{"cpi":1.0}`))
	q.Close()
	seed, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(journalMagic)+3])
	flipped := append([]byte(nil), seed...)
	if len(flipped) > 20 {
		flipped[20] ^= 0x10
	}
	f.Add(flipped)
	f.Add([]byte(journalMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, off, err := replayJournal(bytes.NewReader(data))
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("salvage offset %d outside [0, %d]", off, len(data))
		}
		if err == nil {
			if st == nil {
				t.Fatal("clean replay returned nil state")
			}
			// A clean replay must re-serialize and replay to the same
			// job set (round trip through compaction).
			tmp := filepath.Join(t.TempDir(), "compact.wal")
			if err := writeCompacted(tmp, st); err != nil {
				t.Fatalf("compacting clean state: %v", err)
			}
			f2, err := os.Open(tmp)
			if err != nil {
				t.Fatal(err)
			}
			defer f2.Close()
			st2, _, err := replayJournal(bufferedReader(f2))
			if err != nil {
				t.Fatalf("compacted journal does not replay: %v", err)
			}
			if len(st2.jobs) != len(st.jobs) {
				t.Fatalf("compaction changed job count: %d -> %d", len(st.jobs), len(st2.jobs))
			}
			return
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			// The only other refusal is a wrong/torn header, which must
			// mention the magic, or a real decode violation mapped to
			// ErrCorrupt above. Anything else is a classification gap.
			if len(data) >= len(journalMagic) && string(data[:len(journalMagic)]) == journalMagic {
				t.Fatalf("journal-magic input refused with untyped error: %v", err)
			}
		}
	})
}
