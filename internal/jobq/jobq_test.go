package jobq

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is an injectable wall clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

func openTestQueue(t *testing.T, dir string, opts Options) *Queue {
	t.Helper()
	q, _, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func TestEnqueueNextDoneLifecycle(t *testing.T) {
	q := openTestQueue(t, t.TempDir(), Options{})
	j, err := q.Enqueue("acme", json.RawMessage(`{"trace":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.State != StatePending || j.Seq != 1 {
		t.Fatalf("enqueued job %+v", j)
	}

	got, err := q.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || got.State != StateRunning || got.Attempt != 1 {
		t.Fatalf("Next returned %+v", got)
	}
	if err := q.Done(j.ID, json.RawMessage(`{"cpi":1}`)); err != nil {
		t.Fatal(err)
	}
	final, ok := q.Get(j.ID)
	if !ok || final.State != StateDone || string(final.Result) != `{"cpi":1}` {
		t.Fatalf("final job %+v", final)
	}
	d := q.Depth()
	if d.Done != 1 || d.Pending != 0 || d.Running != 0 {
		t.Fatalf("depth %+v", d)
	}
}

func TestEnqueueBoundedDepth(t *testing.T) {
	q := openTestQueue(t, t.TempDir(), Options{MaxDepth: 2})
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue("t", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Enqueue("t", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue: %v, want ErrQueueFull", err)
	}
	// Draining one admits one more: the bound covers the pending
	// backlog, not running or finished work.
	j, err := q.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("t", nil); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	if err := q.Done(j.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFailRetriesWithBackoffThenDeadLetters(t *testing.T) {
	clock := newFakeClock()
	q := openTestQueue(t, t.TempDir(), Options{
		MaxAttempts: 2,
		Retry:       Backoff{Base: time.Second, Cap: 10 * time.Second, Factor: 2},
		Now:         clock.now,
	})
	j, err := q.Enqueue("t", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1 fails: job returns to pending with a backoff.
	if _, err := q.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	dead, delay, err := q.Fail(j.ID, "transient")
	if err != nil || dead {
		t.Fatalf("first Fail: dead=%v err=%v", dead, err)
	}
	if delay < 500*time.Millisecond || delay > time.Second {
		t.Fatalf("first retry delay %v outside [base/2, base)", delay)
	}
	// Deterministic jitter: the same (id, attempt) always maps to the
	// same delay.
	if d2 := q.opts.Retry.Delay(j.ID, 1); d2 != delay {
		t.Fatalf("jitter not deterministic: %v vs %v", delay, d2)
	}

	// Not eligible until the backoff expires.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, err := q.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next before backoff expiry: %v", err)
	}
	cancel()

	clock.advance(2 * time.Second)
	got, err := q.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || got.Attempt != 2 {
		t.Fatalf("retry pick %+v", got)
	}

	// Attempt 2 fails: MaxAttempts reached, dead-letter.
	dead, _, err = q.Fail(j.ID, "still broken")
	if err != nil || !dead {
		t.Fatalf("second Fail: dead=%v err=%v", dead, err)
	}
	final, _ := q.Get(j.ID)
	if final.State != StateDead || final.Error != "still broken" {
		t.Fatalf("dead job %+v", final)
	}
	// A poisoned job must not wedge the queue: new work still flows.
	if _, err := q.Enqueue("t", nil); err != nil {
		t.Fatal(err)
	}
	if next, err := q.Next(context.Background()); err != nil || next.ID == j.ID {
		t.Fatalf("queue wedged after dead-letter: %+v err=%v", next, err)
	}
}

func TestReleaseReturnsJobWithoutAttemptPenalty(t *testing.T) {
	q := openTestQueue(t, t.TempDir(), Options{})
	j, _ := q.Enqueue("t", nil)
	if _, err := q.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Release(j.ID); err != nil {
		t.Fatal(err)
	}
	got, err := q.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Release does not burn an attempt, but the restart is journaled.
	if got.Attempt != 2 {
		t.Fatalf("attempt after release = %d", got.Attempt)
	}
	dead, _, err := q.Fail(j.ID, "x")
	if err != nil {
		t.Fatal(err)
	}
	if dead {
		t.Fatal("dead after a single real failure despite MaxAttempts=3")
	}
}

// TestRestartPersistsEverything: a clean close and reopen reconstructs
// jobs in every state, and an acknowledged enqueue is never lost.
func TestRestartPersistsEverything(t *testing.T) {
	dir := t.TempDir()
	q, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := q.Enqueue("a", json.RawMessage(`{"n":1}`))
	pend, _ := q.Enqueue("b", json.RawMessage(`{"n":2}`))
	if _, err := q.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Done(done.ID, json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if rec.Damage != nil || rec.Replayed != 2 || len(rec.Requeued) != 0 {
		t.Fatalf("recovery %+v (damage %v)", rec, rec.Damage)
	}
	gotDone, _ := q2.Get(done.ID)
	if gotDone.State != StateDone || string(gotDone.Result) != `{"ok":true}` {
		t.Fatalf("done job lost: %+v", gotDone)
	}
	gotPend, _ := q2.Get(pend.ID)
	if gotPend.State != StatePending || string(gotPend.Payload) != `{"n":2}` {
		t.Fatalf("pending job lost: %+v", gotPend)
	}
	// Sequence numbering continues where it left off.
	j3, _ := q2.Enqueue("c", nil)
	if j3.Seq != 3 {
		t.Fatalf("seq after restart = %d, want 3", j3.Seq)
	}
}

// TestCrashRecoveryRequeuesRunning: a queue abandoned without Close —
// the kill -9 image, since every append is fsynced — reopens with the
// running job back in pending, its checkpoint marker intact.
func TestCrashRecoveryRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	q, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := q.Enqueue("a", json.RawMessage(`{"spec":1}`))
	if _, err := q.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkCheckpoint(j.ID, 40_000); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Release. The OS file handle leaks until test
	// exit, exactly like the process dying.

	q2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if len(rec.Requeued) != 1 || rec.Requeued[0] != j.ID {
		t.Fatalf("requeued %v, want [%s]", rec.Requeued, j.ID)
	}
	got, _ := q2.Get(j.ID)
	if got.State != StatePending || got.CheckpointAt != 40_000 || got.Recovered != 1 {
		t.Fatalf("recovered job %+v", got)
	}
	// The recovered job is dispatchable immediately.
	next, err := q2.Next(context.Background())
	if err != nil || next.ID != j.ID {
		t.Fatalf("post-recovery Next: %+v err=%v", next, err)
	}
}

// TestCompactionBoundsJournal: restarting over and over must not grow
// the journal — compaction rewrites live state only.
func TestCompactionBoundsJournal(t *testing.T) {
	dir := t.TempDir()
	q, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := q.Enqueue("a", json.RawMessage(`{"spec":1}`))
	for i := 0; i < 20; i++ { // churn: starts and releases
		if _, err := q.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := q.Release(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	churned, err := os.Stat(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}

	q2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q2.Close()
	compacted, err := os.Stat(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= churned.Size() {
		t.Errorf("compaction did not shrink the journal: %d -> %d bytes", churned.Size(), compacted.Size())
	}
}

func TestNextBlocksUntilEnqueue(t *testing.T) {
	q := openTestQueue(t, t.TempDir(), Options{})
	got := make(chan Job, 1)
	go func() {
		j, err := q.Next(context.Background())
		if err == nil {
			got <- j
		}
	}()
	time.Sleep(20 * time.Millisecond)
	j, err := q.Enqueue("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case picked := <-got:
		if picked.ID != j.ID {
			t.Fatalf("picked %s, want %s", picked.ID, j.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on enqueue")
	}
}

func TestTokenBucketAdmission(t *testing.T) {
	clock := newFakeClock()
	l := NewTenantLimiter(1, 2, clock.now) // 1/sec, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("third immediate take admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter %v", retry)
	}
	// Tenants are independent.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("tenant b starved by tenant a")
	}
	// Refill restores admission.
	clock.advance(1100 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("take after refill refused")
	}
}

func TestBackoffCapAndGrowth(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 1 * time.Second, Factor: 2}
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := b.Delay("job-x", attempt)
		raw := float64(b.Base) * float64(int(1)<<(attempt-1))
		if raw > float64(b.Cap) {
			raw = float64(b.Cap)
		}
		if d < time.Duration(raw/2) || d > time.Duration(raw) {
			t.Errorf("attempt %d: delay %v outside [%v/2, %v]", attempt, d, time.Duration(raw), time.Duration(raw))
		}
		if d > time.Second {
			t.Errorf("attempt %d: delay %v exceeds cap", attempt, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < 500*time.Millisecond {
		t.Errorf("delays never approached the cap: max %v", prevMax)
	}
}
