package jobq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State uint8

// Job states. Pending jobs wait (possibly under a retry backoff),
// running jobs occupy a worker, done and dead jobs are terminal.
const (
	StatePending State = iota
	StateRunning
	StateDone
	StateDead
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for _, c := range []State{StatePending, StateRunning, StateDone, StateDead} {
		if c.String() == name {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("jobq: unknown state %q", name)
}

// Job is one unit of service work. The queue is payload-agnostic: the
// service layer stores a serialized sim spec in Payload and the final
// engine result in Result. All fields are data (journal snapshots
// marshal the whole struct); NotBefore is scheduling state that resets
// at restart — a recovered job is immediately eligible.
type Job struct {
	ID      string          `json:"id"`
	Tenant  string          `json:"tenant"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Seq     int64           `json:"seq"`

	State   State  `json:"state"`
	Attempt int    `json:"attempt"`         // execution attempts started
	Error   string `json:"error,omitempty"` // last failure, "" when none

	// CheckpointAt is the instruction count of the job's last durable
	// ZBPC checkpoint (0 when none); the checkpoint file itself lives at
	// Queue.CheckpointPath(ID).
	CheckpointAt int64 `json:"checkpointAt,omitempty"`

	// ResumedFrom is the checkpoint instruction count the current (or
	// last) attempt resumed from, 0 for a from-scratch run. Set by the
	// service; journaled via snapshots so post-crash status is honest.
	ResumedFrom int64 `json:"resumedFrom,omitempty"`

	// Recovered counts crash recoveries that re-queued this job.
	Recovered int `json:"recovered,omitempty"`

	Result json.RawMessage `json:"result,omitempty"`

	// NotBefore is the earliest eligible dispatch time (unix nanos, 0 =
	// immediately) — in-memory retry backoff state, reset by restart.
	NotBefore int64 `json:"-"`
}

// ErrQueueFull is returned by Enqueue when the pending backlog is at
// MaxDepth. The admission layer translates it into 429 + Retry-After:
// shedding new work keeps accepted work flowing.
var ErrQueueFull = errors.New("jobq: queue full")

// ErrUnknownJob reports an operation on a job ID the queue never saw.
var ErrUnknownJob = errors.New("jobq: unknown job")

// Options tunes a Queue. Zero values select the documented defaults.
type Options struct {
	// MaxDepth bounds the pending backlog (not running or terminal
	// jobs). <= 0 selects 64.
	MaxDepth int

	// MaxAttempts dead-letters a job after this many failed attempts.
	// <= 0 selects 3.
	MaxAttempts int

	// Retry shapes the backoff between attempts; zero fields take the
	// DefaultBackoff values.
	Retry Backoff

	// Now supplies the wall clock (tests inject a fake one). Nil means
	// time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 64
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	o.Retry = o.Retry.withDefaults()
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Recovery reports what Open found in an existing journal.
type Recovery struct {
	// Replayed is the number of jobs reconstructed from the journal.
	Replayed int

	// Requeued lists jobs that were running at the crash and went back
	// to pending (resuming from their checkpoint if one reached disk).
	Requeued []string

	// Damage is nil for a clean journal; otherwise the typed replay
	// error (ErrTruncated / ErrCorrupt, with the byte offset where the
	// intact prefix ends). The prefix is recovered either way.
	Damage error
}

// Queue is a persistent job queue. All methods are safe for concurrent
// use; every state transition is journaled and fsynced before the
// mutating call returns.
type Queue struct {
	dir  string
	opts Options

	mu sync.Mutex
	// st is the replayed in-memory image of the journal.
	//
	//zbp:guardedby mu
	st *state
	// f is the append-only journal handle.
	//
	//zbp:guardedby mu
	f *os.File
	// closed fails mutating operations after Close.
	//
	//zbp:guardedby mu
	closed bool

	// notify wakes blocked Next callers after any transition that could
	// make a job eligible.
	notify chan struct{}
}

// JournalName is the queue's write-ahead journal file within its
// directory.
const JournalName = "queue.wal"

// Open loads (or creates) the queue persisted in dir. An existing
// journal is replayed — tolerating a torn tail per Recovery.Damage —
// compacted, and reopened for appends. Jobs found running are requeued
// as pending: whoever was executing them is gone.
func Open(dir string, opts Options) (*Queue, Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("jobq: creating queue directory: %w", err)
	}
	path := filepath.Join(dir, JournalName)

	var rec Recovery
	st := newState()
	if f, err := os.Open(path); err == nil {
		replayed, _, rerr := replayJournal(bufferedReader(f))
		f.Close()
		if rerr != nil && !errors.Is(rerr, ErrTruncated) && !errors.Is(rerr, ErrCorrupt) {
			return nil, Recovery{}, rerr // wrong file, not damage
		}
		st = replayed
		rec.Damage = rerr
		rec.Replayed = len(st.jobs)
		for _, id := range st.order {
			if j := st.jobs[id]; j.State == StateRunning {
				j.State = StatePending
				j.Recovered++
				rec.Requeued = append(rec.Requeued, id)
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, Recovery{}, fmt.Errorf("jobq: opening journal: %w", err)
	}

	// Compact: the replayed image becomes the new journal, atomically.
	if err := writeCompacted(path, st); err != nil {
		return nil, Recovery{}, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("jobq: reopening journal for append: %w", err)
	}
	return &Queue{
		dir:    dir,
		opts:   opts,
		st:     st,
		f:      f,
		notify: make(chan struct{}, 1),
	}, rec, nil
}

// Close releases the journal handle. In-memory state stays readable;
// mutating operations fail afterwards.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	//zbp:locked closing the handle after closed=true must be atomic with the flag, or a racing append writes to a closed file
	return q.f.Close()
}

// Dir returns the queue's directory.
func (q *Queue) Dir() string { return q.dir }

// CheckpointPath is where the job's ZBPC checkpoint file lives.
func (q *Queue) CheckpointPath(id string) string {
	return filepath.Join(q.dir, id+".ckpt")
}

// append journals one record and fsyncs. The append-then-fsync pair
// runs inside the caller's critical section by design: releasing the
// lock between the write and the Sync would let a concurrent append
// interleave frames, and acknowledging before the Sync would break the
// crash-durability contract.
//
//zbp:caller-holds mu
//zbp:locked append-then-fsync inside the lock is the journal's durability contract
//zbp:durable
func (q *Queue) append(rec *record) error {
	if q.closed {
		return errors.New("jobq: queue closed")
	}
	if err := appendRecord(q.f, rec); err != nil {
		return err
	}
	if err := q.f.Sync(); err != nil {
		return fmt.Errorf("jobq: syncing journal: %w", err)
	}
	return nil
}

func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Enqueue admits a new job, journaled and fsynced before returning: an
// acknowledged job survives kill -9. Returns ErrQueueFull when the
// pending backlog is at MaxDepth.
//
//zbp:durable
func (q *Queue) Enqueue(tenant string, payload json.RawMessage) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.pendingLocked() >= q.opts.MaxDepth {
		return Job{}, fmt.Errorf("%w: %d pending (max %d)", ErrQueueFull, q.pendingLocked(), q.opts.MaxDepth)
	}
	seq := q.st.nextSeq
	id := fmt.Sprintf("j-%06d", seq)
	rec := &record{Op: opEnqueue, ID: id, Tenant: tenant, Payload: payload, Seq: seq}
	if err := q.append(rec); err != nil {
		return Job{}, err
	}
	if err := q.st.apply(rec); err != nil {
		return Job{}, err
	}
	q.wake()
	return *q.st.jobs[id], nil
}

// pendingLocked counts jobs waiting for a worker.
//
//zbp:caller-holds mu
func (q *Queue) pendingLocked() int {
	n := 0
	for _, id := range q.st.order {
		if q.st.jobs[id].State == StatePending {
			n++
		}
	}
	return n
}

// Next blocks until a pending job is eligible (lowest Seq first,
// respecting retry backoff times), marks it running, journals the start,
// and returns a copy. It returns ctx.Err() once ctx is done.
func (q *Queue) Next(ctx context.Context) (Job, error) {
	for {
		j, wait, claimed, err := q.tryNext()
		if err != nil {
			return Job{}, err
		}
		if claimed {
			return j, nil
		}

		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return Job{}, ctx.Err()
		case <-q.notify:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// tryNext claims the eligible pending job with the lowest Seq under a
// single lock hold, journaling the start record. claimed is false when
// nothing is eligible; wait then says how long until the earliest
// backoff expires.
//
//zbp:durable
func (q *Queue) tryNext() (Job, time.Duration, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, wait := q.pickLocked()
	if j == nil {
		return Job{}, wait, false, nil
	}
	rec := &record{Op: opStart, ID: j.ID, Attempt: j.Attempt + 1}
	if err := q.append(rec); err != nil {
		return Job{}, 0, false, err
	}
	if err := q.st.apply(rec); err != nil {
		return Job{}, 0, false, err
	}
	return *j, 0, true, nil
}

// pickLocked returns the eligible pending job with the lowest Seq, or
// (nil, wait) where wait is how long until the earliest backoff expires
// (a long poll when nothing is pending at all).
//
//zbp:caller-holds mu
func (q *Queue) pickLocked() (*Job, time.Duration) {
	now := q.opts.Now().UnixNano()
	var best *Job
	earliest := int64(0)
	for _, id := range q.st.order {
		j := q.st.jobs[id]
		if j.State != StatePending {
			continue
		}
		if j.NotBefore > now {
			if earliest == 0 || j.NotBefore < earliest {
				earliest = j.NotBefore
			}
			continue
		}
		if best == nil || j.Seq < best.Seq {
			best = j
		}
	}
	if best != nil {
		return best, 0
	}
	if earliest > 0 {
		return nil, time.Duration(earliest-now) + time.Millisecond
	}
	return nil, time.Second
}

// MarkCheckpoint journals that a durable checkpoint for the job reached
// instructions. Call after engine.WriteCheckpointFile succeeds — the
// journal must never point at a checkpoint that is not on disk.
//
//zbp:durable
func (q *Queue) MarkCheckpoint(id string, instructions int64) error {
	return q.transition(&record{Op: opCheckpoint, ID: id, Instructions: instructions})
}

// MarkResumedFrom records which checkpoint the current attempt resumed
// from (status honesty; snapshot-persisted at the next compaction).
func (q *Queue) MarkResumedFrom(id string, instructions int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.st.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.ResumedFrom = instructions
	return nil
}

// Done completes a job with its serialized result and removes the
// job's checkpoint file (no longer needed).
//
//zbp:durable
func (q *Queue) Done(id string, result json.RawMessage) error {
	if err := q.transition(&record{Op: opDone, ID: id, Result: result}); err != nil {
		return err
	}
	os.Remove(q.CheckpointPath(id))
	return nil
}

// Fail records a failed attempt. The job dead-letters once MaxAttempts
// is reached; otherwise it returns to pending with a capped
// exponential backoff (deterministic jitter keyed by job ID and
// attempt). Returns whether the job is now dead and, if not, the retry
// delay applied.
//
//zbp:durable
func (q *Queue) Fail(id string, cause string) (dead bool, delay time.Duration, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.st.jobs[id]
	if !ok {
		return false, 0, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.Attempt >= q.opts.MaxAttempts {
		rec := &record{Op: opDead, ID: id, Error: cause}
		if err := q.append(rec); err != nil {
			return false, 0, err
		}
		if err := q.st.apply(rec); err != nil {
			return false, 0, err
		}
		//zbp:locked removing a stale checkpoint is a local unlink, ordered after the dead-letter record on purpose
		os.Remove(q.CheckpointPath(id))
		return true, 0, nil
	}
	// The backoff is pure arithmetic over (id, attempt); computing it
	// before the journal append keeps the post-Sync tail free of writes.
	//zbp:locked the jitter hash writes to an in-memory fnv state, never to I/O
	delay = q.opts.Retry.Delay(id, j.Attempt)
	rec := &record{Op: opFail, ID: id, Attempt: j.Attempt, Error: cause}
	if err := q.append(rec); err != nil {
		return false, 0, err
	}
	if err := q.st.apply(rec); err != nil {
		return false, 0, err
	}
	j.NotBefore = q.opts.Now().Add(delay).UnixNano()
	q.wake() // re-arm Next's backoff timer
	return false, delay, nil
}

// Release returns a running job to pending without counting an attempt
// — the graceful-shutdown path: the job did not fail, its worker is
// going away. Any checkpoint taken during the drain stays, so the next
// run resumes.
//
//zbp:durable
func (q *Queue) Release(id string) error {
	if err := q.transition(&record{Op: opRelease, ID: id}); err != nil {
		return err
	}
	q.mu.Lock()
	q.wake()
	q.mu.Unlock()
	return nil
}

// transition journals and applies a single-job record.
//
//zbp:durable
func (q *Queue) transition(rec *record) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.st.jobs[rec.ID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, rec.ID)
	}
	if err := q.append(rec); err != nil {
		return err
	}
	return q.st.apply(rec)
}

// Get returns a copy of the job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.st.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of every job, ordered by Seq.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.st.order))
	for _, id := range q.st.order {
		out = append(out, *q.st.jobs[id])
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// Depth reports the queue's occupancy by state.
type Depth struct {
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Dead    int `json:"dead"`
}

// Depth counts jobs by state.
func (q *Queue) Depth() Depth {
	q.mu.Lock()
	defer q.mu.Unlock()
	var d Depth
	for _, id := range q.st.order {
		switch q.st.jobs[id].State {
		case StatePending:
			d.Pending++
		case StateRunning:
			d.Running++
		case StateDone:
			d.Done++
		case StateDead:
			d.Dead++
		}
	}
	return d
}

// MaxDepth returns the configured pending-backlog bound.
func (q *Queue) MaxDepth() int { return q.opts.MaxDepth }

// MaxAttempts returns the configured dead-letter threshold.
func (q *Queue) MaxAttempts() int { return q.opts.MaxAttempts }
